// Command hourglass-trace generates, inspects and converts spot-price
// traces. The synthetic months Hourglass simulates against can be
// exported to CSV, and real AWS spot-price-history dumps (CSV rows of
// "seconds,price") can be inspected with the same statistics the
// provisioner's eviction model derives.
//
//	hourglass-trace -stats                      # market summary of a synthetic month
//	hourglass-trace -gen r4.4xlarge -out t.csv  # export a synthetic trace
//	hourglass-trace -in t.csv -instance r4.4xlarge -stats
//
// It also folds execution traces (the JSONL event streams written by
// `hourglass-sim -trace-out` and `hourglass-serve -trace-out`) into a
// Table-2-style cost / evictions / deadline summary:
//
//	hourglass-trace -summary run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"hourglass/internal/cloud"
	"hourglass/internal/obs"
	"hourglass/internal/units"
)

func main() {
	var (
		stats    = flag.Bool("stats", false, "print market statistics")
		gen      = flag.String("gen", "", "generate a synthetic trace for this instance type")
		in       = flag.String("in", "", "read a trace CSV instead of generating")
		instance = flag.String("instance", "r4.2xlarge", "instance type for -in")
		out      = flag.String("out", "", "write the trace as CSV to this file")
		days     = flag.Float64("days", 10, "synthetic trace length")
		seed     = flag.Int64("seed", 42, "synthetic trace seed")
		step     = flag.Float64("step", 60, "resample step for -in (seconds)")
		summary  = flag.String("summary", "", "fold a JSONL execution trace into a cost/evictions/misses summary")
	)
	flag.Parse()

	switch {
	case *summary != "":
		f, err := os.Open(*summary)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		events, err := obs.ReadJSONL(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(obs.Summarize(events).String())
	case *in != "":
		it, err := cloud.InstanceByName(*instance)
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := cloud.ReadTraceCSV(f, it.Name, units.Seconds(*step))
		if err != nil {
			fatal(err)
		}
		emit(it, tr, *stats, *out)
	case *gen != "":
		it, err := cloud.InstanceByName(*gen)
		if err != nil {
			fatal(err)
		}
		tr := cloud.Generate(it, cloud.GenParams{Days: *days, Seed: *seed})
		emit(it, tr, *stats, *out)
	case *stats:
		fmt.Printf("synthetic market, %g days, seed %d\n", *days, *seed)
		fmt.Printf("%-12s %9s %9s %9s %10s %10s %12s %12s\n",
			"instance", "od $/h", "spot $/h", "median", "discount", "evict/day", "unavail", "MTTF")
		for _, it := range cloud.Catalogue() {
			tr := cloud.Generate(it, cloud.GenParams{Days: *days, Seed: *seed})
			s := cloud.ComputeMarketStats(it, tr)
			fmt.Printf("%-12s %9.3f %9.3f %9.3f %9.1f%% %10.2f %11.2f%% %12v\n",
				s.Instance, s.OnDemand, s.MeanSpot, s.MedianSpot,
				s.MeanDiscount*100, s.CrossingsPday, s.AboveBidFrac*100, s.MTTF)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(it cloud.InstanceType, tr *cloud.PriceTrace, stats bool, out string) {
	if stats {
		s := cloud.ComputeMarketStats(it, tr)
		fmt.Printf("%s: %d samples over %v\n", s.Instance, len(tr.Prices), tr.Duration())
		fmt.Printf("  on-demand    $%.3f/h\n", s.OnDemand)
		fmt.Printf("  mean spot    $%.3f/h (%.1f%% discount; median $%.3f)\n",
			s.MeanSpot, s.MeanDiscount*100, s.MedianSpot)
		fmt.Printf("  evictions    %.2f/day, unavailable %.2f%% of the time, MTTF %v\n",
			s.CrossingsPday, s.AboveBidFrac*100, s.MTTF)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := cloud.WriteTraceCSV(f, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", out, len(tr.Prices))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hourglass-trace:", err)
	os.Exit(1)
}
