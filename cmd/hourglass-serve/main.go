// hourglass-serve is the recurrent-job controller daemon: the §3
// workload model ("time-constrained graph jobs executed recurrently
// with a deadline") run as a long-lived service. It owns a table of
// recurring jobs, fires each recurrence against the shared spot
// market, and exposes an HTTP control plane with per-job history and
// Prometheus metrics.
//
//	hourglass-serve -addr :8080 -seed 42 -state /tmp/hourglass.json
//
//	# submit a recurrent PageRank (every 30m, 48 runs, 50% slack)
//	curl -s -X POST localhost:8080/jobs -d '{
//	  "kind":"pagerank","strategy":"hourglass",
//	  "slack":0.5,"period":"30m","runs":48}'
//
//	curl -s localhost:8080/jobs/job-1/history | head
//	curl -s localhost:8080/metrics | grep hourglass_cost
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/scheduler"
)

func main() {
	addr := flag.String("addr", ":8080", "control-plane listen address")
	seed := flag.Int64("seed", 42, "market trace + offset seed")
	traceDays := flag.Float64("trace-days", 10, "length of the generated market month")
	workers := flag.Int("workers", 4, "concurrent recurrence executions")
	history := flag.Int("history", 1024, "retained run records per job")
	state := flag.String("state", "", "state file: restored at boot, written on shutdown")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	sys, err := hourglass.New(hourglass.Options{Seed: *seed, TraceDays: *traceDays})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	// The controller snapshots into a Datastore (the S3 stand-in);
	// -state mirrors that object to a local file across restarts.
	const snapshotKey = "scheduler/state.json"
	store := cloud.NewDatastore()
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			store.Put(snapshotKey, data)
			log.Printf("loaded state from %s (%d bytes)", *state, len(data))
		} else if !os.IsNotExist(err) {
			log.Fatalf("reading state file: %v", err)
		}
	}

	ctrl, err := scheduler.New(scheduler.Options{
		Backend:      scheduler.SystemBackend{Sys: sys},
		Workers:      *workers,
		HistoryLimit: *history,
		Seed:         *seed,
		Store:        store,
		SnapshotKey:  snapshotKey,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("starting controller: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: ctrl.Handler()}
	go func() {
		log.Printf("hourglass-serve listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (draining up to %v)...", *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := ctrl.Shutdown(ctx); err != nil {
		log.Printf("controller shutdown: %v", err)
	}
	if *state != "" {
		if data, _, err := store.Get(snapshotKey); err == nil {
			if err := os.WriteFile(*state, data, 0o644); err != nil {
				log.Printf("writing state file: %v", err)
			} else {
				log.Printf("state saved to %s (%d bytes)", *state, len(data))
			}
		}
	}
}
