// hourglass-serve is the recurrent-job controller daemon: the §3
// workload model ("time-constrained graph jobs executed recurrently
// with a deadline") run as a long-lived service. It owns a table of
// recurring jobs, fires each recurrence against the shared spot
// market, and exposes an HTTP control plane with per-job history and
// Prometheus metrics.
//
//	hourglass-serve -addr :8080 -seed 42 -state /tmp/hourglass.json
//
//	# submit a recurrent PageRank (every 30m, 48 runs, 50% slack)
//	curl -s -X POST localhost:8080/jobs -d '{
//	  "kind":"pagerank","strategy":"hourglass",
//	  "slack":0.5,"period":"30m","runs":48}'
//
//	curl -s localhost:8080/jobs/job-1/history | head
//	curl -s localhost:8080/metrics | grep hourglass_cost
//	curl -s localhost:8080/debug/trace | tail        # recent trace events
//	go tool pprof localhost:8080/debug/pprof/profile # CPU profile
//
// With -backend=engine each recurrence executes a real vertex program
// through the eviction-aware runtime (internal/runtime): evictions are
// injected from the market traces, checkpoints reload across
// worker-count changes, and a wall-clock watchdog bounds wedged
// supersteps.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hourglass"
	"hourglass/internal/admission"
	"hourglass/internal/cloud"
	"hourglass/internal/faultinject"
	"hourglass/internal/obs"
	"hourglass/internal/scheduler"
	"hourglass/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "control-plane listen address")
	seed := flag.Int64("seed", 42, "market trace + offset seed")
	traceDays := flag.Float64("trace-days", 10, "length of the generated market month")
	workers := flag.Int("workers", 4, "concurrent recurrence executions")
	history := flag.Int("history", 1024, "retained run records per job")
	state := flag.String("state", "", "state file: restored at boot, written on shutdown")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	traceRing := flag.Int("trace-ring", 4096, "trace events retained for /debug/trace (0 disables tracing)")
	traceOut := flag.String("trace-out", "", "append the full trace event stream to this JSONL file")
	chaos := flag.Bool("chaos", false, "inject seeded faults into the snapshot store (soak testing)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed")
	chaosErr := flag.Float64("chaos-error-rate", 0.2, "probability of a transient store error per op")
	chaosCorrupt := flag.Float64("chaos-corrupt-rate", 0.05, "probability of durable write corruption per put")
	chaosLatency := flag.Duration("chaos-latency", 2*time.Second, "max injected (virtual) latency per op")
	backendName := flag.String("backend", "sim", `recurrence executor: "sim" (trace-driven simulator), "engine" (eviction-aware execution runtime running real vertex programs) or "dist" (coordinator + shard workers over loopback TCP)`)
	distShards := flag.Int("dist-shards", 4, "shard workers per recurrence (dist backend)")
	distStore := flag.String("dist-store", "", "checkpoint blob directory for shard state (dist backend; empty = in-memory)")
	distKillAt := flag.Int("dist-kill-at", 0, "chaos: kill one shard mid-superstep N on every recurrence's first session (dist backend)")
	distDeltaChain := flag.Int("dist-delta-chain", 0, "delta checkpoints per full checkpoint, 0 = always full (dist backend)")
	distBarrier := flag.Duration("dist-barrier-timeout", 0, "coordinator barrier watchdog window, 0 = 30s (dist backend)")
	engineScale := flag.Int("engine-graph-scale", 10, "RMAT scale of the benchmark graph (engine backend)")
	engineWatchdog := flag.Duration("engine-watchdog", 30*time.Second, "wall-clock budget per superstep before a wedged run is reloaded (engine backend)")
	engineRestarts := flag.Int("engine-restart-budget", 8, "restarts before the last-resort on-demand pin (engine backend)")
	engineChaos := flag.Bool("engine-chaos", false, "inject seeded faults into the engine checkpoint store (engine backend)")
	admit := flag.Bool("admission", false, "enable the multi-tenant admission gate: price every submission against the market, pack admitted jobs onto shared deployments, queue or reject the rest")
	admitPool := flag.Int("admission-pool", 16, "max live shared deployments (admission gate)")
	admitQueue := flag.Int("admission-queue", 64, "wait-queue depth before 429 (admission gate)")
	flag.Parse()

	sys, err := hourglass.New(hourglass.Options{Seed: *seed, TraceDays: *traceDays})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	// The controller snapshots into a Datastore (the S3 stand-in);
	// -state mirrors that object to a local file across restarts.
	const snapshotKey = "scheduler/state.json"
	base := cloud.NewDatastore()
	var store cloud.BlobStore = base
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			if _, err := base.Put(snapshotKey, data); err != nil {
				log.Fatalf("seeding state object: %v", err)
			}
			log.Printf("loaded state from %s (%d bytes)", *state, len(data))
		} else if !os.IsNotExist(err) {
			log.Fatalf("reading state file: %v", err)
		}
	}
	if *chaos {
		// Soak mode: the controller's snapshot/restore path runs
		// against a misbehaving store, exercising the retry, checksum
		// and corrupt-skip machinery in a live daemon.
		store = faultinject.Wrap(store, faultinject.Policy{
			Seed:          *chaosSeed,
			PError:        *chaosErr,
			PWriteCorrupt: *chaosCorrupt,
			PReadCorrupt:  *chaosCorrupt,
			PTruncate:     *chaosCorrupt / 2,
			MaxLatency:    units.Seconds(chaosLatency.Seconds()),
		})
		log.Printf("chaos mode: seed=%d error=%.2f corrupt=%.2f latency<=%v",
			*chaosSeed, *chaosErr, *chaosCorrupt, *chaosLatency)
	}

	// The trace plane: a ring answers /debug/trace, optionally teeing
	// the full stream to a JSONL file. The same sink sees the
	// controller's per-run events and the simulator's per-decision
	// stream (wired through the backend).
	var sink obs.Sink
	if *traceRing > 0 {
		var out obs.Sink
		if *traceOut != "" {
			f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("opening trace file: %v", err)
			}
			defer f.Close()
			out = obs.NewJSONL(f)
		}
		sink = obs.NewTracer(*traceRing, out)
	}

	// The recurrence executor: the trace-driven simulator by default, or
	// the eviction-aware execution runtime (real vertex programs, real
	// checkpoint reloads across worker-count changes) with -backend=engine.
	var backend scheduler.Backend
	switch *backendName {
	case "sim":
		backend = scheduler.SystemBackend{Sys: sys, Sink: sink}
	case "engine":
		var ckptStore cloud.BlobStore = cloud.NewDatastore()
		if *engineChaos {
			ckptStore = faultinject.Wrap(ckptStore, faultinject.Policy{
				Seed:           *chaosSeed,
				PError:         *chaosErr,
				PWriteCorrupt:  *chaosCorrupt,
				PReadCorrupt:   *chaosCorrupt,
				PTruncate:      *chaosCorrupt / 2,
				MaxLatency:     units.Seconds(chaosLatency.Seconds()),
				MaxConsecutive: 2,
			})
			log.Printf("engine chaos: checkpoint store faults seed=%d error=%.2f corrupt=%.2f",
				*chaosSeed, *chaosErr, *chaosCorrupt)
		}
		backend = &scheduler.EngineBackend{
			Sys:           sys,
			Store:         ckptStore,
			Sink:          sink,
			GraphScale:    *engineScale,
			Watchdog:      *engineWatchdog,
			RestartBudget: *engineRestarts,
			Logf:          log.Printf,
		}
		log.Printf("engine backend: graph scale %d, watchdog %v, restart budget %d",
			*engineScale, *engineWatchdog, *engineRestarts)
	case "dist":
		var blobStore cloud.BlobStore
		if *distStore != "" {
			fsStore, err := cloud.NewFSStore(*distStore)
			if err != nil {
				log.Fatalf("opening dist store: %v", err)
			}
			blobStore = fsStore
		}
		backend = &scheduler.DistBackend{
			Sys:             sys,
			Store:           blobStore,
			Sink:            sink,
			Shards:          *distShards,
			GraphScale:      *engineScale,
			BarrierTimeout:  *distBarrier,
			DeltaChain:      *distDeltaChain,
			KillAtSuperstep: *distKillAt,
			Logf:            log.Printf,
		}
		log.Printf("dist backend: %d shards, graph scale %d, delta chain %d, store %q",
			*distShards, *engineScale, *distDeltaChain, *distStore)
	default:
		log.Fatalf("unknown -backend %q (want sim, engine or dist)", *backendName)
	}

	var admissionCfg *admission.Config
	if *admit {
		admissionCfg = &admission.Config{MaxDeployments: *admitPool, QueueDepth: *admitQueue}
		log.Printf("admission gate: pool %d deployments, queue depth %d", *admitPool, *admitQueue)
	}

	ctrl, err := scheduler.New(scheduler.Options{
		Backend:      backend,
		Workers:      *workers,
		HistoryLimit: *history,
		Seed:         *seed,
		Store:        store,
		SnapshotKey:  snapshotKey,
		Sink:         sink,
		Admission:    admissionCfg,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("starting controller: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: ctrl.Handler()}
	go func() {
		log.Printf("hourglass-serve listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (draining up to %v)...", *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := ctrl.Shutdown(ctx); err != nil {
		log.Printf("controller shutdown: %v", err)
	}
	// Mirror from the underlying datastore, not the chaos wrapper:
	// the injector must never corrupt the local state file.
	if *state != "" {
		if data, _, err := base.Get(snapshotKey); err == nil {
			if err := os.WriteFile(*state, data, 0o644); err != nil {
				log.Printf("writing state file: %v", err)
			} else {
				log.Printf("state saved to %s (%d bytes)", *state, len(data))
			}
		}
	}
}
