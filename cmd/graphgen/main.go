// Command graphgen generates the synthetic benchmark datasets and
// prints Table 2 of the paper (dataset inventory) for both the paper's
// original sizes and the scaled stand-ins generated locally.
//
// Usage:
//
//	graphgen -stats                  # print Table 2
//	graphgen -dataset twitter -scale 0.25 -out twitter.el
//	graphgen -rmat 18 -out rmat18.el
package main

import (
	"flag"
	"fmt"
	"os"

	"hourglass/internal/graph"
)

func main() {
	var (
		stats   = flag.Bool("stats", false, "print Table 2 dataset statistics")
		dataset = flag.String("dataset", "", "dataset to generate (human-gene, hollywood, orkut, wiki, twitter)")
		rmat    = flag.Int("rmat", 0, "generate RMAT-N instead of a named dataset")
		scale   = flag.Float64("scale", 1.0, "scale factor for the synthetic stand-in")
		out     = flag.String("out", "", "write edge list to this file (default stdout)")
	)
	flag.Parse()

	switch {
	case *stats:
		printTable2(*scale)
	case *rmat > 0:
		d := graph.RMATDataset(*rmat)
		emit(d, *scale, *out)
	case *dataset != "":
		d, err := graph.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		emit(d, *scale, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printTable2(scale float64) {
	fmt.Println("Table 2: graph datasets (paper sizes vs. generated synthetic stand-ins)")
	fmt.Printf("%-12s %-14s %14s %16s | %10s %12s %8s\n",
		"Name", "Network", "Paper |V|", "Paper |E|", "Gen |V|", "Gen |E|", "AvgDeg")
	for _, d := range graph.Datasets() {
		g := graph.Load(d, scale)
		st := graph.ComputeStats(d, g)
		fmt.Printf("%-12s %-14s %14d %16d | %10d %12d %8.1f\n",
			d.Name, d.Network, d.PaperVertices, d.PaperEdges,
			st.Vertices, st.Edges, st.AvgDegree)
	}
	for _, n := range []int{14, 16} {
		d := graph.RMATDataset(n)
		g := d.Generate(1.0)
		st := graph.ComputeStats(d, g)
		fmt.Printf("%-12s %-14s %14d %16d | %10d %12d %8.1f\n",
			d.Name, d.Network, d.PaperVertices, d.PaperEdges,
			st.Vertices, st.Edges, st.AvgDegree)
	}
}

func emit(d graph.Dataset, scale float64, out string) {
	g := d.Generate(scale)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d vertices, %d edges\n", d.Name, g.NumVertices(), g.NumLogicalEdges())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
