// Command hourglass-part regenerates Figure 8 of the paper: partition
// quality (edge-cut %) of the Hourglass micro-partition clustering
// (M-MICRO / F-MICRO) versus running the base partitioner (METIS-like
// multilevel / FENNEL) directly, versus random assignment, across the
// Table 2 datasets and partition counts 2…64.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		micros   = flag.Int("micros", 64, "number of micro-partitions")
		datasets = flag.String("datasets", "orkut,human-gene,wiki,hollywood,twitter", "comma-separated datasets")
		seed     = flag.Int64("seed", 1, "partitioner seed")
	)
	flag.Parse()

	ks := []int{2, 4, 8, 16, 32, 64}
	bases := []struct {
		label string
		p     partition.Partitioner
	}{
		{"METIS", partition.Multilevel{Seed: *seed}},
		{"FENNEL", partition.Fennel{Seed: *seed}},
	}

	for _, name := range strings.Split(*datasets, ",") {
		d, err := graph.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hourglass-part:", err)
			os.Exit(1)
		}
		g := graph.Load(d, *scale)
		fmt.Printf("\n== %s (%d vertices, %d edges) ==\n", d.Name, g.NumVertices(), g.NumLogicalEdges())
		for _, base := range bases {
			mp, err := micro.Build(g, base.p, *micros, partition.Multilevel{Seed: *seed + 1})
			if err != nil {
				fmt.Fprintln(os.Stderr, "hourglass-part:", err)
				os.Exit(1)
			}
			fmt.Printf("\n%-10s", "#parts")
			for _, k := range ks {
				fmt.Printf("%9d", k)
			}
			fmt.Printf("\n%-10s", base.label)
			for _, k := range ks {
				p := base.p.Partition(g, k)
				fmt.Printf("%8.1f%%", 100*partition.EdgeCutFraction(g, p.Assign))
			}
			fmt.Printf("\n%-10s", base.label[:1]+"-MICRO")
			for _, k := range ks {
				if k > mp.Count {
					fmt.Printf("%9s", "-")
					continue
				}
				va, err := mp.VertexAssignment(k)
				if err != nil {
					fmt.Fprintln(os.Stderr, "hourglass-part:", err)
					os.Exit(1)
				}
				fmt.Printf("%8.1f%%", 100*partition.EdgeCutFraction(g, va.Assign))
			}
			fmt.Printf("\n%-10s", "Random")
			for _, k := range ks {
				fmt.Printf("%8.1f%%", 100*partition.RandomCutExpectation(k))
			}
			fmt.Println()
		}
	}
}
