// Command hourglass-verify sweeps every job × slack × deadline-keeping
// strategy and reports any run that misses its deadline. Hourglass and
// the +DP wrappers are supposed to never miss (the paper's core
// guarantee); a non-empty report is a bug.
//
//	hourglass-verify -runs 60 -seed 42
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"hourglass"
	"hourglass/internal/core"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

func main() {
	var (
		runs = flag.Int("runs", 60, "runs per cell")
		seed = flag.Int64("seed", 42, "trace seed")
		days = flag.Float64("days", 10, "synthetic month length")
	)
	flag.Parse()

	sys, err := hourglass.New(hourglass.Options{Seed: *seed, TraceDays: *days})
	if err != nil {
		fatal(err)
	}
	type task struct {
		job   hourglass.JobKind
		env   *core.Env
		frac  float64
		start units.Seconds
		rel   units.Seconds
		mk    func() core.Provisioner
		name  string
	}
	var tasks []task
	for _, job := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(job)
		if err != nil {
			fatal(err)
		}
		for slack := 1; slack <= 10; slack++ {
			frac := float64(slack) / 10
			rel := env.LRC.Fixed + env.LRC.Exec + units.Seconds(frac*float64(env.LRC.Exec))
			rng := rand.New(rand.NewSource(*seed + int64(frac*1000)))
			horizon := units.Seconds(*days) * units.Day
			for i := 0; i < *runs; i++ {
				start := units.Seconds(rng.Float64() * float64(horizon))
				for _, strat := range []struct {
					name string
					mk   func() core.Provisioner
				}{
					{"hourglass", func() core.Provisioner { return core.NewSlackAware(env) }},
					{"proteus+dp", func() core.Provisioner { return core.NewDP(core.NewGreedy(env), env) }},
					{"spoton+dp", func() core.Provisioner { return core.NewDP(core.NewSpotOn(env), env) }},
				} {
					tasks = append(tasks, task{job, env, frac, start, rel, strat.mk, strat.name})
				}
			}
		}
	}

	var misses atomic.Int64
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				runner := &sim.Runner{Env: tk.env}
				res, err := runner.Run(tk.mk(), tk.start, tk.start+tk.rel)
				switch {
				case err != nil:
					mu.Lock()
					fmt.Printf("ERROR %s %s slack=%.0f%%: %v\n", tk.name, tk.job, tk.frac*100, err)
					mu.Unlock()
					misses.Add(1)
				case res.MissedDeadline || !res.Finished:
					mu.Lock()
					fmt.Printf("MISS %s %s slack=%.0f%% start=%v late=%v\n",
						tk.name, tk.job, tk.frac*100, tk.start, res.Completion-(tk.start+tk.rel))
					mu.Unlock()
					misses.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("verified %d runs: %d deadline misses\n", len(tasks), misses.Load())
	if misses.Load() > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hourglass-verify:", err)
	os.Exit(1)
}
