// hourglass-shard is one node of the distributed BSP engine
// (internal/dist). In its default role it is a shard worker: it
// connects to a coordinator, receives its vertex partition in the
// welcome handshake, and runs the superstep protocol over the wire
// message plane until the job halts or the process is torn down. With
// -coordinate it is the other side: it listens, accepts the shard
// workers, drives the job and prints the result.
//
//	# a two-process PageRank on loopback, checkpoints under /tmp/ckpt
//	hourglass-shard -coordinate -coordinator localhost:9090 \
//	  -shards 2 -program pagerank -store /tmp/ckpt &
//	hourglass-shard -coordinator localhost:9090 -store /tmp/ckpt &
//	hourglass-shard -coordinator localhost:9090 -store /tmp/ckpt &
//
// By default a worker serves sessions in a loop (reconnecting after
// each one), so a single process survives the successive sessions a
// recovering job goes through. With -once it serves exactly one
// session and exits — nonzero when the session ended in an injected
// death, which is how the recovery tests model a spot eviction killing
// the worker process. A coordinator likewise retries after a lost
// shard (resuming from the newest sealed checkpoint) until the job
// completes or -max-sessions is exhausted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"hourglass/internal/cloud"
	"hourglass/internal/dist"
)

func main() {
	coordinator := flag.String("coordinator", "localhost:9090", "coordinator address (listen address with -coordinate)")
	storeDir := flag.String("store", "", "checkpoint blob directory (shared by coordinator and workers)")
	once := flag.Bool("once", false, "worker: serve one session and exit instead of reconnecting")
	peerListen := flag.String("peer", "", "worker: peer-mesh listen address (default 127.0.0.1:0)")
	peerAdvertise := flag.String("peer-advertise", "", "worker: peer-mesh address announced to the coordinator (default the bound -peer address)")
	dieAt := flag.Int("die-at", 0, "worker fault injection: drop the connection mid-superstep N (0 = never)")
	muteAt := flag.Int("mute-at", 0, "worker fault injection: stop voting at superstep N (0 = never)")
	dropPeersAt := flag.Int("drop-peers-at", 0, "worker fault injection: sever the peer-mesh connections mid-superstep N (0 = never)")
	prefetchJob := flag.String("prefetch-job", "", "worker: warm the blob cache with this job's newest checkpoint chain before the handshake (warm standby)")

	coordinate := flag.Bool("coordinate", false, "run as the coordinator instead of a worker")
	shards := flag.Int("shards", 2, "coordinator: shard workers to accept")
	program := flag.String("program", "pagerank", "coordinator: vertex program (pagerank, sssp, wcc, bfs, graphcoloring)")
	iterations := flag.Int("iterations", 10, "coordinator: pagerank iterations")
	source := flag.Int64("source", 0, "coordinator: sssp/bfs source vertex")
	scale := flag.Int("scale", 10, "coordinator: RMAT graph scale (2^scale vertices)")
	graphSeed := flag.Int64("graph-seed", 7, "coordinator: RMAT graph seed")
	ckptEvery := flag.Int("checkpoint-every", 2, "coordinator: checkpoint every N supersteps (0 = never)")
	deltaChain := flag.Int("delta-chain", 0, "coordinator: delta checkpoints per full checkpoint (0 = always full)")
	barrierTimeout := flag.Duration("barrier-timeout", 0, "coordinator: barrier watchdog window (0 = dist default)")
	job := flag.String("job", "cli", "coordinator: checkpoint namespace under the store")
	maxSessions := flag.Int("max-sessions", 8, "coordinator: give up after this many lost-shard sessions")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("hourglass-shard: ")
	// SIGINT/SIGTERM cancel the session context: barrier waits, peer
	// dials and inbox drains all unwind within the watchdog window, so
	// an orchestrator's soft kill is enough to stop a live cluster.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *storeDir == "" {
		log.Fatal("-store is required")
	}
	store, err := cloud.NewFSStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}

	if *coordinate {
		pspec := dist.ProgramSpec{Name: *program}
		switch *program {
		case "pagerank":
			pspec.Iterations = *iterations
		case "sssp", "bfs":
			pspec.Source = *source
		}
		cfg := dist.Config{
			Job:             *job,
			Program:         pspec,
			Graph:           dist.GraphSpec{Scale: *scale, Seed: *graphSeed, Undirected: true, Weighted: true},
			Canonical:       true,
			CheckpointEvery: *ckptEvery,
			DeltaChain:      *deltaChain,
			BarrierTimeout:  *barrierTimeout,
			Store:           store,
			Logf:            log.Printf,
		}
		ln, err := net.Listen("tcp", *coordinator)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("coordinating %q on %s, waiting for %d shards", *program, ln.Addr(), *shards)
		var rep *dist.Report
		for session := 0; ; session++ {
			rep, err = dist.AcceptAndRun(ctx, ln, *shards, cfg)
			if err == nil {
				break
			}
			var lost *dist.ShardLostError
			if !errors.As(err, &lost) || session+1 >= *maxSessions {
				log.Fatal(err)
			}
			log.Printf("session %d: %v — resuming from the newest checkpoint", session, err)
		}
		fmt.Printf("program=%s shards=%d supersteps=%d messages=%d remote=%d frames=%d wirebytes=%d checkpoints=%d resumed=%v\n",
			*program, *shards, rep.Stats.Supersteps, rep.Stats.MessagesSent, rep.Stats.RemoteMessages,
			rep.WireFrames, rep.WireBytes, rep.Checkpoints, rep.Resumed)
		for v := 0; v < len(rep.Values) && v < 4; v++ {
			fmt.Printf("vertex[%d] = %v\n", v, rep.Values[v])
		}
		return
	}

	opts := dist.ShardOptions{
		Store:                store,
		PeerListen:           *peerListen,
		PeerAdvertise:        *peerAdvertise,
		DieAtSuperstep:       *dieAt,
		MuteAtSuperstep:      *muteAt,
		DropPeersAtSuperstep: *dropPeersAt,
		PrefetchJob:          *prefetchJob,
		Logf:                 log.Printf,
	}
	if *once {
		if err := dist.Dial(ctx, *coordinator, opts); err != nil {
			log.Print(err)
			if errors.Is(err, dist.ErrShardDied) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		return
	}
	if err := dist.Serve(ctx, *coordinator, opts); err != nil {
		log.Fatal(err)
	}
}
