// Command hourglass-engine runs a vertex program on a benchmark
// dataset with the real BSP engine, optionally exercising the durable
// checkpoint path (pause → persist → resume on a different worker
// count), which is the engine-level fast-reload demonstration.
//
//	hourglass-engine -app pagerank -dataset twitter -scale 0.1 -workers 8
//	hourglass-engine -app coloring -dataset orkut -durable
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/obs"
	"hourglass/internal/partition"
	"hourglass/internal/units"
)

// stopProfiling flushes any active profiles; fatal() calls it so
// profiles survive error exits.
var stopProfiling = func() {}

func main() {
	var (
		app        = flag.String("app", "pagerank", "pagerank | sssp | bfs | wcc | coloring | labelprop | kcore | triangles | degree")
		dataset    = flag.String("dataset", "orkut", "Table 2 dataset name")
		scale      = flag.Float64("scale", 0.1, "dataset scale factor")
		workers    = flag.Int("workers", 8, "worker goroutines")
		iters      = flag.Int("iters", 30, "iterations (pagerank/labelprop)")
		k          = flag.Int("k", 3, "K for kcore")
		source     = flag.Int("source", 0, "source vertex (sssp/bfs)")
		durable    = flag.Bool("durable", false, "checkpoint every 4 supersteps to the datastore and resume on half the workers")
		usePart    = flag.Bool("partitioned", true, "assign vertices via micro-partitioning instead of hashing")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime/trace to this file")
		traceOut   = flag.String("trace-out", "", "write per-superstep engine events (JSONL) to this file")
	)
	flag.Parse()

	if err := startProfiling(*cpuprofile, *memprofile, *traceFile); err != nil {
		fatal(err)
	}
	defer stopProfiling()

	d, err := graph.ByName(*dataset)
	if err != nil {
		fatal(err)
	}
	g := graph.Load(d, *scale)
	fmt.Printf("%s: %d vertices, %d edges\n", d.Name, g.NumVertices(), g.NumLogicalEdges())

	prog, err := makeProgram(*app, *iters, *k, graph.VertexID(*source))
	if err != nil {
		fatal(err)
	}

	cfg := engine.Config{Workers: *workers}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Sink = obs.NewJSONL(f)
	}
	if *usePart {
		mp, err := micro.BuildForConfigs(g, partition.Multilevel{Seed: 1}, []int{*workers}, nil)
		if err != nil {
			fatal(err)
		}
		va, err := mp.VertexAssignment(*workers)
		if err != nil {
			fatal(err)
		}
		cfg.Assign = va.Assign
		fmt.Printf("partitioned: %d micro-partitions, edge cut %.1f%%\n",
			mp.Count, 100*partition.EdgeCutFraction(g, va.Assign))
	}

	start := time.Now()
	var res engine.Result
	if *durable {
		m := &engine.CheckpointManager{Store: cloud.NewDatastore(), Job: *app + "/" + d.Name}
		var ioTime units.Seconds
		res, ioTime, err = m.RunDurable(g, prog, cfg, 4)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("durable run: checkpoint I/O %v (virtual)\n", ioTime)
	} else {
		res, err = engine.Run(g, prog, cfg)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("finished in %v wall time: %d supersteps, %d messages, %d compute calls\n",
		elapsed, res.Stats.Supersteps, res.Stats.MessagesSent, res.Stats.ComputeCalls)
	summarize(*app, g, res.Values)
}

func makeProgram(app string, iters, k int, source graph.VertexID) (engine.Program, error) {
	switch app {
	case "pagerank":
		return &engine.PageRank{Iterations: iters}, nil
	case "sssp":
		return &engine.SSSP{Source: source}, nil
	case "bfs":
		return &engine.BFS{Source: source}, nil
	case "wcc":
		return engine.WCC{}, nil
	case "coloring":
		return &engine.GraphColoring{}, nil
	case "labelprop":
		return &engine.LabelPropagation{Rounds: iters}, nil
	case "kcore":
		return &engine.KCore{K: k}, nil
	case "triangles":
		return engine.TriangleCount{}, nil
	case "degree":
		return engine.DegreeCentrality{}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

func summarize(app string, g *graph.Graph, values []float64) {
	switch app {
	case "pagerank":
		type vr struct {
			v int
			r float64
		}
		top := make([]vr, len(values))
		for i, r := range values {
			top[i] = vr{i, r}
		}
		sort.Slice(top, func(a, b int) bool { return top[a].r > top[b].r })
		fmt.Printf("top-5 ranks:")
		for i := 0; i < 5 && i < len(top); i++ {
			fmt.Printf(" %d(%.2e)", top[i].v, top[i].r)
		}
		fmt.Println()
	case "sssp", "bfs":
		reached := 0
		maxDist := 0.0
		for _, d := range values {
			if !math.IsInf(d, 1) {
				reached++
				if d > maxDist {
					maxDist = d
				}
			}
		}
		fmt.Printf("reached %d/%d vertices, eccentricity %.2f\n", reached, len(values), maxDist)
	case "wcc", "labelprop":
		fmt.Printf("%d components/communities\n", engine.Communities(values))
	case "coloring":
		colors, ok := engine.ValidateColoring(g, values)
		fmt.Printf("%d colors, valid=%v\n", colors, ok)
	case "kcore":
		in := 0
		for _, v := range values {
			if v == 1 {
				in++
			}
		}
		fmt.Printf("%d vertices in the core\n", in)
	case "triangles":
		fmt.Printf("%d triangles\n", engine.TotalTriangles(values))
	case "degree":
		max := 0.0
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		fmt.Printf("max degree %v\n", max)
	}
}

// startProfiling wires the standard pprof/trace outputs so engine hot
// paths can be profiled without writing a test harness:
//
//	hourglass-engine -app sssp -cpuprofile cpu.pb.gz -memprofile mem.pb.gz -trace trace.out
func startProfiling(cpu, mem, traceOut string) error {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return err
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hourglass-engine: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface live allocations, not GC garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hourglass-engine: memprofile:", err)
			}
		})
	}
	stopProfiling = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		stopProfiling = func() {}
	}
	return nil
}

func fatal(err error) {
	stopProfiling()
	fmt.Fprintln(os.Stderr, "hourglass-engine:", err)
	os.Exit(1)
}
