// Command hourglass-decide regenerates Figure 9 of the paper: the time
// to reach a provisioning decision with the exact EC formulation
// (integral of §5.2) versus the Hourglass approximation (§5.3), plus
// the approximation's distance from optimum (DFO), across the three
// benchmark jobs and slack sizes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"hourglass"
	"hourglass/internal/core"
	"hourglass/internal/units"
)

func main() {
	var (
		seed   = flag.Int64("seed", 42, "trace seed")
		days   = flag.Float64("days", 10, "synthetic month length")
		step   = flag.Float64("step", 1, "exact-EC integral discretisation (seconds; paper uses 1)")
		budget = flag.Int64("budget", 2e7, "exact-EC operation budget (DNF beyond)")
	)
	flag.Parse()

	sys, err := hourglass.New(hourglass.Options{Seed: *seed, TraceDays: *days})
	if err != nil {
		fatal(err)
	}
	jobs := []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC}
	slacks := []float64{0.1, 0.25, 0.5, 0.75, 1.0}

	fmt.Println("Figure 9: decision time (exact vs approximate EC) and distance from optimum")
	for _, job := range jobs {
		env, err := sys.Env(job)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n== %s ==\n%-8s %14s %14s %10s\n", job, "slack", "optimal", "hourglass", "DFO")
		for _, slack := range slacks {
			rel, err := sys.DeadlineFor(job, slack)
			if err != nil {
				fatal(err)
			}
			s := core.State{Now: 0, WorkLeft: 1, Deadline: rel}

			approx := core.NewSlackAware(env)
			t0 := time.Now()
			approxCost := approx.Evaluate(s)
			approxTime := time.Since(t0)

			exact := core.NewExactEC(env)
			exact.Step = units.Seconds(*step)
			exact.OpBudget = *budget
			t0 = time.Now()
			exactCost, err := exact.Evaluate(s)
			exactTime := time.Since(t0)

			switch {
			case errors.Is(err, core.ErrBudget):
				fmt.Printf("%6.0f%% %14s %14s %10s\n", slack*100, "DNF", fmtDur(approxTime), "-")
			case err != nil:
				fatal(err)
			default:
				dfo := math.Abs(float64(approxCost-exactCost)) / float64(exactCost) * 100
				fmt.Printf("%6.0f%% %14s %14s %9.1f%%\n", slack*100, fmtDur(exactTime), fmtDur(approxTime), dfo)
			}
		}
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hourglass-decide:", err)
	os.Exit(1)
}
