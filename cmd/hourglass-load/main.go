// Command hourglass-load regenerates Figure 6 of the paper: loading
// times of the Stream, Hash and Micro loaders across datasets and
// cluster sizes (2–16 machines), on the simulated network substrate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hourglass/internal/graph"
	"hourglass/internal/loader"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		datasets = flag.String("datasets", "orkut,rmat-14,rmat-15,rmat-16,twitter", "comma-separated datasets (rmat-N allowed)")
		seed     = flag.Int64("seed", 1, "partitioner seed")
	)
	flag.Parse()

	model := loader.DefaultModel()
	machines := []int{2, 4, 8, 16}

	fmt.Printf("Figure 6: loading times (simulated seconds); dataset size doubles left to right\n")
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		g, label, err := load(name, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hourglass-load:", err)
			os.Exit(1)
		}
		fmt.Printf("\n== %s (%d vertices, %d edges, %.1f MB on disk) ==\n",
			label, g.NumVertices(), g.NumLogicalEdges(), float64(model.DiskBytes(g))/1e6)
		fmt.Printf("%-14s", "#machines")
		for _, m := range machines {
			fmt.Printf("%12d", m)
		}
		fmt.Println()

		mp, err := micro.BuildForConfigs(g, partition.Multilevel{Seed: *seed}, machines, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hourglass-load:", err)
			os.Exit(1)
		}

		rows := []struct {
			label string
			f     func(k int) (loader.Result, error)
		}{
			{"Stream", func(k int) (loader.Result, error) { return model.Stream(g, k) }},
			{"Hash", func(k int) (loader.Result, error) {
				assign := partition.Hash{}.Partition(g, k).Assign
				return model.Hash(g, assign, k)
			}},
			{"Micro", func(k int) (loader.Result, error) {
				va, err := mp.VertexAssignment(k)
				if err != nil {
					return loader.Result{}, err
				}
				return model.Micro(g, va.Assign, k)
			}},
		}
		for _, row := range rows {
			fmt.Printf("%-14s", row.label+" Loader")
			for _, m := range machines {
				r, err := row.f(m)
				if err != nil {
					fmt.Fprintln(os.Stderr, "hourglass-load:", err)
					os.Exit(1)
				}
				fmt.Printf("%11.3fs", float64(r.Total()))
			}
			fmt.Println()
		}
	}
}

func load(name string, scale float64) (*graph.Graph, string, error) {
	if strings.HasPrefix(name, "rmat-") {
		var n int
		if _, err := fmt.Sscanf(name, "rmat-%d", &n); err != nil {
			return nil, "", fmt.Errorf("bad rmat dataset %q", name)
		}
		d := graph.RMATDataset(n)
		return graph.Load(d, 1.0), d.Name, nil
	}
	d, err := graph.ByName(name)
	if err != nil {
		return nil, "", err
	}
	return graph.Load(d, scale), d.Name, nil
}
