// Command hourglass-sim regenerates the provisioning experiments of
// the paper:
//
//	hourglass-sim -fig 1    # Figure 1: the dilemma (GC, 50% slack)
//	hourglass-sim -fig 5    # Figure 5: 5 provisioners × 3 jobs × 10 slacks
//	hourglass-sim -fig 7    # Figure 7: GC ablation (micro-partitioning on/off)
//
// Results are trace-driven simulations over synthetic spot-price
// months (deterministic per seed); bars print as normalized cost vs.
// the on-demand baseline with the missed-deadline percentage alongside,
// matching the figures' layout.
//
// With -trace-out, a single seeded run executes instead and its full
// decision/lifecycle event stream is exported as JSONL; fold it back
// into a summary with `hourglass-trace -summary`:
//
//	hourglass-sim -trace-out run.jsonl -job graphcoloring -strategy hourglass -slack 0.5
//	hourglass-trace -summary run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"hourglass"
	"hourglass/internal/obs"
	"hourglass/internal/perfmodel"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

func main() {
	var (
		fig      = flag.Int("fig", 5, "figure to regenerate (1, 5, or 7)")
		runs     = flag.Int("runs", 200, "simulations per bar (paper: 2000)")
		seed     = flag.Int64("seed", 42, "trace seed")
		days     = flag.Float64("days", 10, "length of each synthetic price month")
		traceOut = flag.String("trace-out", "", "run one traced simulation and write its JSONL event stream here")
		jobKind  = flag.String("job", "pagerank", "job for -trace-out (sssp | pagerank | graphcoloring)")
		strategy = flag.String("strategy", "hourglass", "provisioning strategy for -trace-out")
		slack    = flag.Float64("slack", 0.5, "slack fraction for -trace-out")
		start    = flag.Float64("start", 0, "trace start offset in seconds for -trace-out")
	)
	flag.Parse()

	if *traceOut != "" {
		tracedRun(*traceOut, *jobKind, *strategy, *slack, *start, *seed, *days)
		return
	}
	switch *fig {
	case 1:
		figure1(*runs, *seed, *days)
	case 5:
		figure5(*runs, *seed, *days)
	case 7:
		figure7(*runs, *seed, *days)
	default:
		fmt.Fprintln(os.Stderr, "hourglass-sim: -fig must be 1, 5 or 7")
		os.Exit(2)
	}
}

// tracedRun executes one simulation with the obs sink attached and
// prints the same cost/evictions/deadline numbers the folded trace
// reproduces.
func tracedRun(out, jobName, strategy string, slack, start float64, seed int64, days float64) {
	kind, err := hourglass.ParseJobKind(jobName)
	if err != nil {
		fatal(err)
	}
	st := hourglass.Strategy(strategy)
	if err := hourglass.ValidateStrategy(st); err != nil {
		fatal(err)
	}
	sys := newSystem(seed, days, nil)
	env, err := sys.Env(kind)
	if err != nil {
		fatal(err)
	}
	prov, err := sys.Provisioner(kind, st)
	if err != nil {
		fatal(err)
	}
	deadline, err := sys.DeadlineFor(kind, slack)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sink := obs.NewJSONL(f)

	runner := &sim.Runner{Env: env, Sink: sink}
	res, err := runner.Run(prov, units.Seconds(start), units.Seconds(start)+deadline)
	if err != nil {
		fatal(err)
	}
	if err := sink.Err(); err != nil {
		fatal(err)
	}
	met := "met"
	if res.MissedDeadline || !res.Finished {
		met = "MISSED"
	}
	fmt.Printf("%s/%s slack %.0f%%: cost $%.4f, deadline %s, %d evictions, %d reconfigs, %d checkpoints, %d decisions\n",
		jobName, strategy, slack*100, float64(res.Cost), met,
		res.Evictions, res.Reconfigs, res.Checkpoints, res.Decisions)
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

func newSystem(seed int64, days float64, model *perfmodel.Model) *hourglass.System {
	sys, err := hourglass.New(hourglass.Options{Seed: seed, TraceDays: days, Model: model})
	if err != nil {
		fatal(err)
	}
	return sys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hourglass-sim:", err)
	os.Exit(1)
}

// figure1 reproduces the motivating comparison: eager (greedy) vs the
// naive DP fix vs slack-aware vs slack-aware + fast reload, on the GC
// job with a 50% slack (the paper's 4h job / 6h period scenario).
func figure1(runs int, seed int64, days float64) {
	const slack = 0.5
	fmt.Printf("Figure 1: GC job, %d runs per bar, slack %.0f%% (cost normalized to on-demand)\n\n", runs, slack*100)
	fmt.Printf("%-36s %14s %10s\n", "strategy", "norm. cost", "missed")

	// Eager and the naive fix use hash loading (no offline phase, full
	// shuffle on every reload); the slack-aware bar without fast
	// reload pays per-config offline METIS plus shuffle reloads; fast
	// reload switches to micro-partitions (one offline run, shuffle-free
	// reloads).
	hash := perfmodel.Default().WithLoading(perfmodel.LoadHash)
	metis := perfmodel.Default().WithLoading(perfmodel.LoadMETIS)
	fast := perfmodel.Default().WithLoading(perfmodel.LoadMicro)

	bars := []struct {
		label    string
		model    *perfmodel.Model
		strategy hourglass.Strategy
	}{
		{"Eager (greedy, SpotOn-like)", hash, hourglass.StrategyProteus},
		{"Hourglass Naive (greedy+DP)", hash, hourglass.StrategyNaive},
		{"Hourglass Slack-Aware", metis, hourglass.StrategyHourglass},
		{"Hourglass Slack-Aware + Fast Reload", fast, hourglass.StrategyHourglass},
	}
	for _, b := range bars {
		sys := newSystem(seed, days, b.model)
		res, err := sys.Simulate(hourglass.GC, b.strategy, slack, runs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-36s %13.2f× %9.0f%%\n", b.label, res.MeanNormCost, res.MissedFraction*100)
	}
}

// figure5 reproduces the 30-scenario comparison: {SSSP, PageRank, GC} ×
// slacks 10–100% × {Hourglass, Proteus, SpotOn, Proteus+DP, SpotOn+DP}.
func figure5(runs int, seed int64, days float64) {
	jobs := []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC}
	strategies := []hourglass.Strategy{
		hourglass.StrategyHourglass, hourglass.StrategyProteus, hourglass.StrategySpotOn,
		hourglass.StrategyProteusDP, hourglass.StrategySpotOnDP,
	}
	sys := newSystem(seed, days, nil)
	fmt.Printf("Figure 5: normalized cost (missed%%), %d runs per cell\n", runs)
	for _, job := range jobs {
		fmt.Printf("\n== %s ==\n%-14s", job, "slack")
		for s := 1; s <= 10; s++ {
			fmt.Printf("%14d%%", s*10)
		}
		fmt.Println()
		for _, st := range strategies {
			fmt.Printf("%-14s", st)
			for s := 1; s <= 10; s++ {
				res, err := sys.Simulate(job, st, float64(s)/10, runs)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("   %5.2f (%3.0f%%)", res.MeanNormCost, res.MissedFraction*100)
			}
			fmt.Println()
		}
	}
}

// figure7 zooms into GC: the slack-aware strategy with and without
// micro-partitioning, against SpotOn+DP with micro-partitioning.
func figure7(runs int, seed int64, days float64) {
	fmt.Printf("Figure 7: GC cost reductions, %d runs per point\n\n%-26s", runs, "slack")
	slacks := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	for _, s := range slacks {
		fmt.Printf("%9.0f%%", s*100)
	}
	fmt.Println()

	metis := perfmodel.Default().WithLoading(perfmodel.LoadMETIS)
	micro := perfmodel.Default().WithLoading(perfmodel.LoadMicro)
	rows := []struct {
		label    string
		model    *perfmodel.Model
		strategy hourglass.Strategy
	}{
		{"SlackAware+METIS", metis, hourglass.StrategyHourglass},
		{"SlackAware+microMETIS", micro, hourglass.StrategyHourglass},
		{"SpotOn+DP+microMETIS", micro, hourglass.StrategySpotOnDP},
	}
	for _, r := range rows {
		sys := newSystem(seed, days, r.model)
		fmt.Printf("%-26s", r.label)
		for _, s := range slacks {
			res, err := sys.Simulate(hourglass.GC, r.strategy, s, runs)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%9.2f", res.MeanNormCost)
		}
		fmt.Println()
	}
}
