module hourglass

go 1.22
