// Fast reload: demonstrates the §6 micro-partitioning pipeline on a
// real graph — one offline partitioning, then instant re-clustering to
// whatever deployment gets provisioned, including a mid-job eviction
// recovery onto a different worker count with the real BSP engine.
//
//	go run ./examples/fastreload
package main

import (
	"errors"
	"fmt"
	"log"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/loader"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
)

func main() {
	d, err := graph.ByName("orkut")
	if err != nil {
		log.Fatal(err)
	}
	g := graph.Load(d, 0.25)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumLogicalEdges())

	// Offline: one METIS-like run into lcm(4,8,16) = 16 micro-partitions.
	workerCounts := []int{4, 8, 16}
	mp, err := micro.BuildForConfigs(g, partition.Multilevel{Seed: 1}, workerCounts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d micro-partitions via %s (quotient graph: %d vertices, %d edges)\n\n",
		mp.Count, mp.BaseName, mp.Quotient().NumVertices(), mp.Quotient().NumLogicalEdges())

	// Online: cluster to each configuration and compare edge cut and
	// simulated load time against a from-scratch partitioning + hash load.
	model := loader.DefaultModel()
	fmt.Printf("%-10s %12s %12s %14s %14s\n", "workers", "µ edge-cut", "direct cut", "µ load", "hash load")
	for _, k := range workerCounts {
		va, err := mp.VertexAssignment(k)
		if err != nil {
			log.Fatal(err)
		}
		direct := partition.Multilevel{Seed: 1}.Partition(g, k)
		microLoad, err := model.Micro(g, va.Assign, k)
		if err != nil {
			log.Fatal(err)
		}
		hashLoad, err := model.Hash(g, partition.Hash{}.Partition(g, k).Assign, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %11.1f%% %11.1f%% %14v %14v\n",
			k,
			100*partition.EdgeCutFraction(g, va.Assign),
			100*partition.EdgeCutFraction(g, direct.Assign),
			microLoad.Total(), hashLoad.Total())
	}

	// Eviction recovery across configurations: run WCC on 8 workers,
	// pause mid-flight (the "eviction"), resume on 4 workers with the
	// re-clustered assignment — results must be identical.
	fmt.Printf("\neviction recovery: WCC paused on 8 workers, resumed on 4\n")
	eight, err := mp.VertexAssignment(8)
	if err != nil {
		log.Fatal(err)
	}
	paused, err := engine.Run(g, engine.WCC{}, engine.Config{
		Workers: 8, Assign: eight.Assign, StopAfter: 2,
	})
	if err != nil && !errors.Is(err, engine.ErrPaused) {
		log.Fatal(err)
	}
	four, err := mp.VertexAssignment(4)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := engine.Resume(g, engine.WCC{}, paused.Snapshot, engine.Config{
		Workers: 4, Assign: four.Assign,
	})
	if err != nil {
		log.Fatal(err)
	}
	reference, err := engine.Run(g, engine.WCC{}, engine.Config{Workers: 8, Assign: eight.Assign})
	if err != nil {
		log.Fatal(err)
	}
	for v := range reference.Values {
		if reference.Values[v] != resumed.Values[v] {
			log.Fatalf("recovery diverged at vertex %d", v)
		}
	}
	fmt.Printf("recovered run matches the uninterrupted one (%d components)\n",
		countComponents(resumed.Values))
}

func countComponents(labels []float64) int {
	set := map[float64]bool{}
	for _, l := range labels {
		set[l] = true
	}
	return len(set)
}
