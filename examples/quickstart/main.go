// Quickstart: provision a deadline-bound graph-processing job with
// Hourglass and compare its cost against always-on-demand.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hourglass"
)

func main() {
	// A System bundles synthetic spot-price months (deterministic for
	// the seed), the eviction model fitted on the "historical" month,
	// and the calibrated performance model.
	sys, err := hourglass.New(hourglass.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's headline scenario: a 4-hour graph-coloring job that
	// must finish within a 6-hour window (50% slack), re-run 4×/day.
	const slack = 0.5
	deadline, err := sys.DeadlineFor(hourglass.GC, slack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphColoring: deadline %v after snapshot (50%% slack)\n\n", deadline)

	for _, strategy := range []hourglass.Strategy{
		hourglass.StrategyOnDemand,
		hourglass.StrategyHourglass,
	} {
		res, err := sys.Simulate(hourglass.GC, strategy, slack, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  cost %.2f× on-demand   missed deadlines %.0f%%   evictions/run %.1f\n",
			strategy, res.MeanNormCost, res.MissedFraction*100, res.MeanEvictions)
	}

	// A single run in detail.
	start, _ := sys.DeadlineFor(hourglass.GC, 0) // arbitrary trace offset
	one, err := sys.SimulateOne(hourglass.GC, hourglass.StrategyHourglass, start, start+deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample run: cost %v, finished=%v, evictions=%d, reconfigs=%d, checkpoints=%d\n",
		one.Cost, one.Finished, one.Evictions, one.Reconfigs, one.Checkpoints)
}
