// Custom market: replace the synthetic spot months with your own price
// traces (e.g. exported from `aws ec2 describe-spot-price-history`).
// This example writes a synthetic month to CSV, re-ingests it through
// the public trace reader — exactly the path a real AWS dump takes —
// and simulates Hourglass against the ingested market.
//
//	go run ./examples/custom-market
package main

import (
	"bytes"
	"fmt"
	"log"

	"hourglass"
	"hourglass/internal/cloud"
)

func main() {
	// 1. Export a market to CSV (stand-in for a real AWS dump).
	var csvs = map[string]*bytes.Buffer{}
	for _, it := range cloud.Catalogue() {
		tr := cloud.Generate(it, cloud.GenParams{Days: 7, Seed: 123})
		buf := &bytes.Buffer{}
		if err := cloud.WriteTraceCSV(buf, tr); err != nil {
			log.Fatal(err)
		}
		csvs[it.Name] = buf
		s := cloud.ComputeMarketStats(it, tr)
		fmt.Printf("%-12s %.1f%% discount, %.1f evictions/day, MTTF %v\n",
			it.Name, s.MeanDiscount*100, s.CrossingsPday, s.MTTF)
	}

	// 2. Ingest the CSVs back — the same call works on real dumps.
	live := cloud.TraceSet{}
	for name, buf := range csvs {
		tr, err := cloud.ReadTraceCSV(buf, name, 60)
		if err != nil {
			log.Fatal(err)
		}
		live[name] = tr
	}

	// 3. Simulate against the ingested market.
	sys, err := hourglass.New(hourglass.Options{Seed: 99, LiveTraces: live})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, st := range []hourglass.Strategy{hourglass.StrategyOnDemand, hourglass.StrategyHourglass} {
		res, err := sys.Simulate(hourglass.PageRank, st, 0.5, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s cost %.2f× on-demand, missed %.0f%%\n",
			st, res.MeanNormCost, res.MissedFraction*100)
	}
}
