// Deadline sweep: a miniature Figure 5 — compare every provisioning
// strategy across slack sizes for one job, printing the cost/deadline
// trade-off table.
//
//	go run ./examples/deadline-sweep [-job graphcoloring] [-runs 40]
package main

import (
	"flag"
	"fmt"
	"log"

	"hourglass"
)

func main() {
	var (
		jobName = flag.String("job", "pagerank", "job: sssp, pagerank, graphcoloring")
		runs    = flag.Int("runs", 40, "simulations per cell")
		seed    = flag.Int64("seed", 99, "trace seed")
	)
	flag.Parse()
	job := hourglass.JobKind(*jobName)

	sys, err := hourglass.New(hourglass.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	slacks := []float64{0.1, 0.25, 0.5, 0.75, 1.0}

	fmt.Printf("deadline sweep: %s, %d runs per cell — normalized cost (missed%%)\n\n", job, *runs)
	fmt.Printf("%-14s", "strategy")
	for _, s := range slacks {
		fmt.Printf("%15.0f%%", s*100)
	}
	fmt.Println()
	for _, st := range hourglass.Strategies() {
		if st == hourglass.StrategyNaive {
			continue // identical to proteus+dp
		}
		fmt.Printf("%-14s", st)
		for _, s := range slacks {
			res, err := sys.Simulate(job, st, s, *runs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %5.2f (%3.0f%%)", res.MeanNormCost, res.MissedFraction*100)
		}
		fmt.Println()
	}
	fmt.Println("\nhourglass should show 0% missed everywhere while approaching the greedy cost at high slack.")
}
