// Recurrent PageRank: the §1 motivation — a recurring analysis that
// must keep up with a stream of graph snapshots. Every 30 minutes a
// new snapshot arrives; the 20-minute PageRank job on the previous
// snapshot must finish before the next one starts being processed
// (the staleness bound). The example runs the real BSP engine on a
// synthetic Twitter-like graph to produce actual ranks, while the
// provisioning layer decides spot vs. on-demand for each window.
//
//	go run ./examples/recurrent-pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"hourglass"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/units"
)

func main() {
	// --- The graph computation itself (real engine, scaled graph).
	twitter, err := graph.ByName("twitter")
	if err != nil {
		log.Fatal(err)
	}
	g := graph.Load(twitter, 0.1)
	fmt.Printf("snapshot: %d vertices, %d edges (scaled twitter stand-in)\n",
		g.NumVertices(), g.NumLogicalEdges())

	res, err := engine.Run(g, &engine.PageRank{Iterations: 30}, engine.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	top := topVertices(res.Values, 5)
	fmt.Printf("PageRank converged in %d supersteps (%d messages); top vertices: %v\n\n",
		res.Stats.Supersteps, res.Stats.MessagesSent, top)

	// --- The provisioning loop across 8 consecutive windows.
	sys, err := hourglass.New(hourglass.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	env, err := sys.Env(hourglass.PageRank)
	if err != nil {
		log.Fatal(err)
	}
	period := 30 * units.Minute
	fmt.Printf("recurrent schedule: one PageRank per %v window (staleness bound)\n", period)
	fmt.Printf("%-8s %12s %10s %10s %10s\n", "window", "cost", "norm", "evictions", "met?")

	var total, baseline units.USD
	base, _ := sys.Baseline(hourglass.PageRank)
	for w := 0; w < 8; w++ {
		start := units.Seconds(w) * period * 4 // spread windows over the trace
		run, err := sys.SimulateOne(hourglass.PageRank, hourglass.StrategyHourglass,
			start, start+period)
		if err != nil {
			log.Fatal(err)
		}
		run.Cost += env.OfflineCost / 8 // offline partitioning amortised
		total += run.Cost
		baseline += base
		fmt.Printf("%-8d %12v %9.2f× %10d %10v\n",
			w, run.Cost, float64(run.Cost)/float64(base), run.Evictions, !run.MissedDeadline)
	}
	fmt.Printf("\n8-window total: %v vs on-demand %v — %.0f%% saved, every staleness bound met\n",
		total, baseline, (1-float64(total)/float64(baseline))*100)
}

func topVertices(ranks []float64, n int) []int {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}
