#!/usr/bin/env bash
# Local mirror of the CI lint job: run before pushing to catch what
# the required checks would bounce. Go checks always run; staticcheck,
# shellcheck and actionlint run when installed and are skipped (with a
# note) otherwise — CI installs pinned versions of all three.
#
#   scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet" >&2
go vet ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck" >&2
  staticcheck ./... || fail=1
else
  echo "== staticcheck: not installed, skipped (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)" >&2
fi

if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck scripts/*.sh" >&2
  shellcheck scripts/*.sh || fail=1
else
  echo "== shellcheck: not installed, skipped" >&2
fi

if command -v actionlint >/dev/null 2>&1; then
  echo "== actionlint" >&2
  actionlint || fail=1
else
  echo "== actionlint: not installed, skipped (go install github.com/rhysd/actionlint/cmd/actionlint@v1.7.7)" >&2
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: ok" >&2
