#!/usr/bin/env bash
# Controller-throughput benchmark harness (internal/admission
# BenchmarkControllerThroughput: a seeded multi-tenant arrival stream
# replayed into a gated scheduler controller — every decision runs the
# real pricing machinery, runs complete instantly, so ns/op is the
# admission path itself):
#
#   scripts/bench_controller.sh [output.json]   # regenerate BENCH_CONTROLLER.json + BENCHMARK.md
#   scripts/bench_controller.sh --check [ref]   # regression gate vs committed numbers
#   scripts/bench_controller.sh --report [ref]  # regenerate BENCHMARK.md from the committed JSON only
#
# BENCHTIME (default 2000x) controls -benchtime. A fixed iteration
# count — not a duration — keeps the admit/queue/reject fractions
# comparable across machines: every run replays the same 2000 arrivals.
#
# The emitted JSON carries a frozen "baseline" section (the numbers at
# the benchmark's introduction) and a "current" section (this run).
# --check reruns the benchmark and fails if any case's ns/op regresses
# by more than 25% against the committed "current" section. --report
# rebuilds BENCHMARK.md deterministically from the committed JSON
# without running anything — CI diffs the result against the checked-in
# file, so the JSON and the human-readable table cannot drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2000x}"

run_bench() {
  go test ./internal/admission/ -run NONE -bench BenchmarkControllerThroughput \
    -benchtime "$benchtime"
}

# parse_bench <raw>: one
# "case ns_per_op decisions_per_sec admit_frac queued_frac reject_frac"
# row per line.
parse_bench() {
  awk '
    /^BenchmarkControllerThroughput\// {
      name = $1
      sub(/^BenchmarkControllerThroughput\//, "", name)
      sub(/-[0-9]+$/, "", name)
      ns = dps = adm = que = rej = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")         ns = $(i - 1)
        if ($i == "decisions/sec") dps = $(i - 1)
        if ($i == "admit_frac")    adm = $(i - 1)
        if ($i == "queued_frac")   que = $(i - 1)
        if ($i == "reject_frac")   rej = $(i - 1)
      }
      print name, ns, dps, adm, que, rej
    }
  ' <<<"$1"
}

# json_rows <file> <section>: extract the same row shape from a
# committed JSON's "baseline" results or top-level "current" array.
json_rows() {
  awk -v want="$2" '
    /"baseline": \{/ { section = "baseline" }
    /"current": \[/  { section = "current" }
    section == want && /"case":/ {
      line = $0
      gsub(/[",{}\[\]:]/, " ", line)
      n = split(line, f, /[ \t]+/)
      ns = dps = adm = que = rej = "null"
      for (i = 1; i <= n; i++) {
        if (f[i] == "case")              name = f[i + 1]
        if (f[i] == "ns_per_op")         ns = f[i + 1]
        if (f[i] == "decisions_per_sec") dps = f[i + 1]
        if (f[i] == "admit_frac")        adm = f[i + 1]
        if (f[i] == "queued_frac")       que = f[i + 1]
        if (f[i] == "reject_frac")       rej = f[i + 1]
      }
      print name, ns, dps, adm, que, rej
    }
  ' "$1"
}

# write_report <ref.json> <out.md>: BENCHMARK.md is a pure function of
# the committed JSON — no dates, no host re-detection — so CI can
# regenerate it and `git diff --exit-code` the result.
write_report() {
  local ref="$1" out="$2"
  local bt goos goarch cpu
  bt="$(awk -F'"' '/"benchtime":/ { print $4; exit }' "$ref")"
  goos="$(awk -F'"' '/"goos":/ { print $4; exit }' "$ref")"
  goarch="$(awk -F'"' '/"goarch":/ { print $4; exit }' "$ref")"
  cpu="$(awk -F'"' '/"cpu":/ { print $4; exit }' "$ref")"
  {
    echo "# Controller throughput"
    echo
    echo "Sustained admission-decision rate of the multi-tenant scheduler"
    echo "controller (\`internal/admission\` + \`internal/scheduler\`): a seeded"
    echo "three-tenant arrival stream is replayed into a gated controller on"
    echo "the virtual clock, every submission priced against the live spot"
    echo "market, then packed onto a shared deployment, queued, or rejected."
    echo "Runs complete instantly, so ns/decision is the controller's own"
    echo "admission path — validate, price (one simulator decision pass),"
    echo "pack — not graph execution."
    echo
    echo "Fixed workload: \`-benchtime ${bt}\` (same arrivals every run);"
    echo "recorded on ${goos}/${goarch}, ${cpu}."
    echo
    echo "## Current (\`BENCH_CONTROLLER.json\`)"
    echo
    echo "| case | ns/decision | decisions/sec | admitted | queued | rejected |"
    echo "|------|------------:|--------------:|---------:|-------:|---------:|"
    json_rows "$ref" current | awk '{ printf("| %s | %d | %.1f | %.1f%% | %.1f%% | %.1f%% |\n", $1, $2, $3, $4 * 100, $5 * 100, $6 * 100) }'
    echo
    echo "## Baseline (frozen at the benchmark's introduction)"
    echo
    echo "| case | ns/decision | decisions/sec | admitted | queued | rejected |"
    echo "|------|------------:|--------------:|---------:|-------:|---------:|"
    json_rows "$ref" baseline | awk '{ printf("| %s | %d | %.1f | %.1f%% | %.1f%% | %.1f%% |\n", $1, $2, $3, $4 * 100, $5 * 100, $6 * 100) }'
    echo
    echo "## Reproducing"
    echo
    echo '```'
    echo "scripts/bench_controller.sh           # rerun + refreeze BENCH_CONTROLLER.json + this file"
    echo "scripts/bench_controller.sh --check   # regression gate (>25% ns/decision fails)"
    echo "scripts/bench_controller.sh --report  # rebuild this file from the committed JSON"
    echo '```'
    echo
    echo "Generated by \`scripts/bench_controller.sh\` from"
    echo "\`scripts/BENCH_CONTROLLER.json\` — edit neither by hand; CI fails if"
    echo "they drift apart."
  } > "$out"
  echo "wrote $out" >&2
}

if [[ "${1:-}" == "--report" ]]; then
  ref="${2:-scripts/BENCH_CONTROLLER.json}"
  [[ -f "$ref" ]] || { echo "bench report: reference $ref not found" >&2; exit 2; }
  write_report "$ref" BENCHMARK.md
  exit 0
fi

if [[ "${1:-}" == "--check" ]]; then
  ref="${2:-scripts/BENCH_CONTROLLER.json}"
  [[ -f "$ref" ]] || { echo "bench check: reference $ref not found" >&2; exit 2; }

  raw="$(run_bench)"
  echo "$raw" >&2

  parse_bench "$raw" | awk -v ref="$(json_rows "$ref" current)" -v refname="$ref" '
    BEGIN {
      n = split(ref, lines, "\n")
      for (i = 1; i <= n; i++) {
        split(lines[i], f, " ")
        if (f[1] != "") refns[f[1]] = f[2]
      }
      printf("%-12s %14s %14s %8s\n", "case", "ns/decision", "ref", "ratio")
    }
    {
      name = $1; ns = $2
      if (!(name in refns)) {
        printf("%-12s (new case, no reference — skipped)\n", name)
        next
      }
      r = ns / refns[name]
      flag = ""
      if (r > 1.25) { flag = " SLOW"; bad = 1 }
      printf("%-12s %14d %14d %7.2fx%s\n", name, ns, refns[name], r, flag)
      checked++
    }
    END {
      if (checked == 0) { print "bench check: no cases matched " refname > "/dev/stderr"; exit 2 }
      if (bad) {
        print "bench check: FAILED (>25% ns/decision vs " refname ")" > "/dev/stderr"
        exit 1
      }
      print "bench check: ok (" checked " cases within thresholds)" > "/dev/stderr"
    }
  '
  exit $?
fi

out="${1:-scripts/BENCH_CONTROLLER.json}"

raw="$(run_bench)"
echo "$raw" >&2

{
  printf '{\n'
  printf '  "benchmark": "BenchmarkControllerThroughput",\n'
  printf '  "benchtime": "%s",\n' "$benchtime"
  awk '
    $1 == "goos:"   { printf("  \"goos\": \"%s\",\n", $2) }
    $1 == "goarch:" { printf("  \"goarch\": \"%s\",\n", $2) }
    $1 == "cpu:"    { $1 = ""; sub(/^ /, ""); printf("  \"cpu\": \"%s\",\n", $0) }
  ' <<<"$raw"
  # Frozen numbers at the benchmark's introduction (2000 fixed
  # iterations of the seed-42 stream, pricing against the seed-11
  # market month).
  cat <<'BASELINE'
  "baseline": {
    "note": "admission path at introduction: per-submission sim.Decide pricing, FFD packing, EDF wait queue",
    "results": [
      {"case": "pool=8", "ns_per_op": 5049480, "decisions_per_sec": 198.0, "admit_frac": 0.9365, "queued_frac": 0.0275, "reject_frac": 0.036},
      {"case": "pool=64", "ns_per_op": 5428884, "decisions_per_sec": 184.2, "admit_frac": 0.964, "queued_frac": 0, "reject_frac": 0.036}
    ]
  },
BASELINE
  printf '  "current": [\n'
  parse_bench "$raw" | awk '
    {
      if (n++) printf(",\n")
      printf("    {\"case\": \"%s\", \"ns_per_op\": %s, \"decisions_per_sec\": %s, \"admit_frac\": %s, \"queued_frac\": %s, \"reject_frac\": %s}", $1, $2, $3, $4, $5, $6)
    }
    END { printf("\n") }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
write_report "$out" BENCHMARK.md
