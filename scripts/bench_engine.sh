#!/usr/bin/env bash
# Engine message-plane microbenchmark harness
# (internal/engine BenchmarkEngineMessagePlane plus its loopback-TCP
# twin internal/dist BenchmarkEngineMessagePlaneDist — dist cases are
# recorded under a "dist/" prefix; the ns/superstep gap between the
# two is the price of the process split — and the checkpoint plane
# BenchmarkCheckpointPlaneDist under "ckpt/", recording full- vs
# delta-checkpoint bytes):
#
#   scripts/bench_engine.sh [output.json]   # regenerate BENCH_ENGINE.json
#   scripts/bench_engine.sh --check [ref]   # regression gate vs committed numbers
#
# BENCHTIME (default 2s) controls -benchtime.
#
# The emitted JSON carries three sections: "baseline" holds the frozen
# pre-message-plane numbers (per-vertex inbox slices, O(V) liveness
# scan) measured on the same benchmark immediately before the rewrite,
# "dist_baseline" holds the frozen pre-mesh distributed numbers (every
# batch relayed through the coordinator, compute and send serialized),
# and "current" holds this run.
#
# --check reruns the benchmark and compares each case against the
# "current" section of the committed BENCH_ENGINE.json (or [ref]).
# It fails if any case's ns/superstep regresses by more than 25%, its
# allocs/op more than doubles, for dist/ cases its wirebytes/superstep
# grows by more than 25%, or for ckpt/ cases its deltabytes/ckpt grows
# by more than 25%. Wall-clock numbers on
# shared CI runners are noisy — the job that runs this is advisory —
# but the alloc and wirebyte gates are deterministic: they keep the
# observability hooks, engine work and the peer-mesh data plane honest
# about hot-path allocations and bytes on the wire.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"

run_bench() {
  go test ./internal/engine/ -run NONE -bench BenchmarkEngineMessagePlane \
    -benchmem -benchtime "$benchtime"
  go test ./internal/dist/ -run NONE \
    -bench 'BenchmarkEngineMessagePlaneDist|BenchmarkCheckpointPlaneDist' \
    -benchmem -benchtime "$benchtime"
}

# parse_bench <raw>: one
# "case ns_per_op ns_per_superstep bytes allocs frames wirebytes fullb deltab"
# row per line (frames/wirebytes are null for in-process cases,
# fullb/deltab only set for the ckpt/ checkpoint-plane cases).
parse_bench() {
  awk '
    /^Benchmark(EngineMessagePlane(Dist)?|CheckpointPlaneDist)\// {
      name = $1
      sub(/^BenchmarkCheckpointPlaneDist\//, "ckpt/", name)
      sub(/^BenchmarkEngineMessagePlaneDist\//, "dist/", name)
      sub(/^BenchmarkEngineMessagePlane\//, "", name)
      sub(/-[0-9]+$/, "", name)
      ns = bytes = allocs = step = frames = wbytes = fullb = deltab = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")               ns = $(i - 1)
        if ($i == "ns/superstep")        step = $(i - 1)
        if ($i == "B/op")                bytes = $(i - 1)
        if ($i == "allocs/op")           allocs = $(i - 1)
        if ($i == "frames/superstep")    frames = $(i - 1)
        if ($i == "wirebytes/superstep") wbytes = $(i - 1)
        if ($i == "fullbytes/ckpt")      fullb = $(i - 1)
        if ($i == "deltabytes/ckpt")     deltab = $(i - 1)
      }
      print name, ns, step, bytes, allocs, frames, wbytes, fullb, deltab
    }
  ' <<<"$1"
}

if [[ "${1:-}" == "--check" ]]; then
  ref="${2:-BENCH_ENGINE.json}"
  [[ -f "$ref" ]] || { echo "bench check: reference $ref not found" >&2; exit 2; }

  raw="$(run_bench)"
  echo "$raw" >&2

  # Reference rows from the committed JSON's "current" section (same
  # row shape as the baseline section, so gate on the section marker).
  ref_rows="$(awk '
    /"current": \[/ { in_cur = 1; next }
    in_cur && /^  \]/ { in_cur = 0 }
    in_cur && /"case":/ {
      line = $0
      gsub(/[",{}:]/, " ", line)
      n = split(line, f, /[ \t]+/)
      wbytes = deltab = "null"
      for (i = 1; i <= n; i++) {
        if (f[i] == "case")                    name = f[i + 1]
        if (f[i] == "ns_per_superstep")        step = f[i + 1]
        if (f[i] == "allocs_per_op")           allocs = f[i + 1]
        if (f[i] == "wirebytes_per_superstep") wbytes = f[i + 1]
        if (f[i] == "deltabytes_per_ckpt")     deltab = f[i + 1]
      }
      print name, step, allocs, wbytes, deltab
    }
  ' "$ref")"

  parse_bench "$raw" | awk -v ref="$ref_rows" -v refname="$ref" '
    BEGIN {
      n = split(ref, lines, "\n")
      for (i = 1; i <= n; i++) {
        split(lines[i], f, " ")
        if (f[1] != "") {
          refstep[f[1]] = f[2]; refallocs[f[1]] = f[3]
          refwbytes[f[1]] = f[4]; refdeltab[f[1]] = f[5]
        }
      }
      printf("%-28s %14s %14s %8s %10s %10s %8s %8s\n",
             "case", "ns/superstep", "ref", "ratio", "allocs/op", "ref", "ratio", "wbytes")
    }
    {
      name = $1; step = $3; allocs = $5; wbytes = $7; deltab = $9
      if (!(name in refstep)) {
        printf("%-28s (new case, no reference — skipped)\n", name)
        next
      }
      sr = step / refstep[name]
      ar = refallocs[name] > 0 ? allocs / refallocs[name] : (allocs > 0 ? 99 : 1)
      flag = ""
      if (sr > 1.25) { flag = flag " SLOW"; bad = 1 }
      if (ar > 2.0)  { flag = flag " ALLOCS"; bad = 1 }
      # dist cases also report wire traffic; gate bytes/superstep so a
      # data-plane change cannot silently inflate what crosses the mesh.
      wr = "    -   "
      if (wbytes != "null" && refwbytes[name] != "null" && refwbytes[name] > 0) {
        w = wbytes / refwbytes[name]
        wr = sprintf("%7.2fx", w)
        if (w > 1.25) { flag = flag " WIREBYTES"; bad = 1 }
      }
      # ckpt cases report the delta-checkpoint payload; gate it so an
      # encoder change cannot silently fatten the chain back towards
      # full snapshots (the wcc-materiality floor lives in the
      # benchmark itself).
      if (deltab != "null" && refdeltab[name] != "null" && refdeltab[name] > 0) {
        d = deltab / refdeltab[name]
        wr = sprintf("%7.2fx", d)
        if (d > 1.25) { flag = flag " DELTABYTES"; bad = 1 }
      }
      printf("%-28s %14d %14d %7.2fx %10d %10d %7.2fx %s%s\n",
             name, step, refstep[name], sr, allocs, refallocs[name], ar, wr, flag)
      checked++
    }
    END {
      if (checked == 0) { print "bench check: no cases matched " refname > "/dev/stderr"; exit 2 }
      if (bad) {
        print "bench check: FAILED (>25% ns/superstep, >2x allocs/op, or >25% wirebytes/superstep vs " refname ")" > "/dev/stderr"
        exit 1
      }
      print "bench check: ok (" checked " cases within thresholds)" > "/dev/stderr"
    }
  '
  exit $?
fi

out="${1:-BENCH_ENGINE.json}"

raw="$(run_bench)"
echo "$raw" >&2

{
  printf '{\n'
  printf '  "benchmark": "BenchmarkEngineMessagePlane + BenchmarkEngineMessagePlaneDist",\n'
  printf '  "benchtime": "%s",\n' "$benchtime"
  # run_bench invokes `go test` twice (engine + dist), so each header
  # key appears twice in the raw output — emit only the first of each,
  # or the JSON carries duplicated keys.
  awk '
    $1 == "goos:"   && !seen_goos++   { printf("  \"goos\": \"%s\",\n", $2) }
    $1 == "goarch:" && !seen_goarch++ { printf("  \"goarch\": \"%s\",\n", $2) }
    $1 == "cpu:"    && !seen_cpu++    { $1 = ""; sub(/^ /, ""); printf("  \"cpu\": \"%s\",\n", $0) }
  ' <<<"$raw"
  # Frozen pre-rewrite numbers (engine as of PR 1, 2s benchtime, same
  # benchmark and graph: RMAT scale 12, undirected, weighted).
  cat <<'BASELINE'
  "baseline": {
    "note": "message plane before sender-side combining / worklists / pooled arenas",
    "results": [
      {"case": "pagerank/workers=1", "ns_per_op": 10624802, "ns_per_superstep": 965890, "bytes_per_op": 9173688, "allocs_per_op": 3507},
      {"case": "pagerank/workers=4", "ns_per_op": 14297795, "ns_per_superstep": 1299799, "bytes_per_op": 6650680, "allocs_per_op": 3936},
      {"case": "pagerank/workers=8", "ns_per_op": 13178718, "ns_per_superstep": 1198064, "bytes_per_op": 5834360, "allocs_per_op": 4685},
      {"case": "pagerank-plain/workers=1", "ns_per_op": 21694357, "ns_per_superstep": 1972212, "bytes_per_op": 11334136, "allocs_per_op": 14961},
      {"case": "pagerank-plain/workers=4", "ns_per_op": 26171153, "ns_per_superstep": 2379194, "bytes_per_op": 8811128, "allocs_per_op": 15390},
      {"case": "pagerank-plain/workers=8", "ns_per_op": 20140811, "ns_per_superstep": 1830981, "bytes_per_op": 7994821, "allocs_per_op": 16139},
      {"case": "sssp/workers=1", "ns_per_op": 7953578, "ns_per_superstep": 611813, "bytes_per_op": 7289296, "allocs_per_op": 3512},
      {"case": "sssp/workers=4", "ns_per_op": 10732655, "ns_per_superstep": 825588, "bytes_per_op": 5929616, "allocs_per_op": 3965},
      {"case": "sssp/workers=8", "ns_per_op": 9647343, "ns_per_superstep": 742103, "bytes_per_op": 5308688, "allocs_per_op": 4745},
      {"case": "wcc/workers=1", "ns_per_op": 4101052, "ns_per_superstep": 820209, "bytes_per_op": 9172336, "allocs_per_op": 3460},
      {"case": "wcc/workers=4", "ns_per_op": 4950940, "ns_per_superstep": 990187, "bytes_per_op": 6646688, "allocs_per_op": 3796},
      {"case": "wcc/workers=8", "ns_per_op": 4335742, "ns_per_superstep": 867147, "bytes_per_op": 5826848, "allocs_per_op": 4421}
    ]
  },
BASELINE
  # Frozen pre-mesh distributed numbers (PR 6 plane: batches relayed
  # through the coordinator via batchToOffset, compute → flush → barrier
  # fully serialized, graph rebuilt per shard per session; 2s benchtime,
  # same RMAT scale-12 graph).
  cat <<'DIST_BASELINE'
  "dist_baseline": {
    "note": "distributed plane before the shard-to-shard peer mesh, compute/send overlap and the memoized graph build (all batches relayed through the coordinator)",
    "results": [
      {"case": "dist/pagerank/shards=2", "ns_per_op": 255041329, "ns_per_superstep": 23185552, "bytes_per_op": 125845638, "allocs_per_op": 33405, "frames_per_superstep": 12.55, "wirebytes_per_superstep": 892669},
      {"case": "dist/pagerank/shards=4", "ns_per_op": 398117845, "ns_per_superstep": 36192503, "bytes_per_op": 194296477, "allocs_per_op": 41042, "frames_per_superstep": 39.64, "wirebytes_per_superstep": 1415851},
      {"case": "dist/sssp/shards=2", "ns_per_op": 206613239, "ns_per_superstep": 15893310, "bytes_per_op": 54336096, "allocs_per_op": 2378, "frames_per_superstep": 12.31, "wirebytes_per_superstep": 41355},
      {"case": "dist/sssp/shards=4", "ns_per_op": 299840231, "ns_per_superstep": 23064601, "bytes_per_op": 91425372, "allocs_per_op": 6469, "frames_per_superstep": 37.69, "wirebytes_per_superstep": 86011}
    ]
  },
DIST_BASELINE
  printf '  "current": [\n'
  parse_bench "$raw" | awk '
    {
      if (n++) printf(",\n")
      printf("    {\"case\": \"%s\", \"ns_per_op\": %s, \"ns_per_superstep\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", $1, $2, $3, $4, $5)
      if ($6 != "null") printf(", \"frames_per_superstep\": %s, \"wirebytes_per_superstep\": %s", $6, $7)
      if ($8 != "null") printf(", \"fullbytes_per_ckpt\": %s, \"deltabytes_per_ckpt\": %s", $8, $9)
      printf("}")
    }
    END { printf("\n") }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
