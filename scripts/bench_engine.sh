#!/usr/bin/env bash
# Regenerates BENCH_ENGINE.json from the engine message-plane
# microbenchmarks (internal/engine BenchmarkEngineMessagePlane):
#
#   scripts/bench_engine.sh [output.json]
#
# BENCHTIME (default 2s) controls -benchtime. The emitted JSON carries
# two sections: "baseline" holds the frozen pre-message-plane numbers
# (per-vertex inbox slices, O(V) liveness scan) measured on the same
# benchmark immediately before the rewrite, and "current" holds this
# run. Comparing allocs_per_op between the two is the engine's
# regression gate: PageRank must stay ≥5× below the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ENGINE.json}"
benchtime="${BENCHTIME:-2s}"

raw="$(go test ./internal/engine/ -run NONE -bench BenchmarkEngineMessagePlane -benchmem -benchtime "$benchtime")"
echo "$raw" >&2

{
  printf '{\n'
  printf '  "benchmark": "BenchmarkEngineMessagePlane",\n'
  printf '  "benchtime": "%s",\n' "$benchtime"
  awk '
    $1 == "goos:"   { printf("  \"goos\": \"%s\",\n", $2) }
    $1 == "goarch:" { printf("  \"goarch\": \"%s\",\n", $2) }
    $1 == "cpu:"    { $1 = ""; sub(/^ /, ""); printf("  \"cpu\": \"%s\",\n", $0) }
  ' <<<"$raw"
  # Frozen pre-rewrite numbers (engine as of PR 1, 2s benchtime, same
  # benchmark and graph: RMAT scale 12, undirected, weighted).
  cat <<'BASELINE'
  "baseline": {
    "note": "message plane before sender-side combining / worklists / pooled arenas",
    "results": [
      {"case": "pagerank/workers=1", "ns_per_op": 10624802, "ns_per_superstep": 965890, "bytes_per_op": 9173688, "allocs_per_op": 3507},
      {"case": "pagerank/workers=4", "ns_per_op": 14297795, "ns_per_superstep": 1299799, "bytes_per_op": 6650680, "allocs_per_op": 3936},
      {"case": "pagerank/workers=8", "ns_per_op": 13178718, "ns_per_superstep": 1198064, "bytes_per_op": 5834360, "allocs_per_op": 4685},
      {"case": "pagerank-plain/workers=1", "ns_per_op": 21694357, "ns_per_superstep": 1972212, "bytes_per_op": 11334136, "allocs_per_op": 14961},
      {"case": "pagerank-plain/workers=4", "ns_per_op": 26171153, "ns_per_superstep": 2379194, "bytes_per_op": 8811128, "allocs_per_op": 15390},
      {"case": "pagerank-plain/workers=8", "ns_per_op": 20140811, "ns_per_superstep": 1830981, "bytes_per_op": 7994821, "allocs_per_op": 16139},
      {"case": "sssp/workers=1", "ns_per_op": 7953578, "ns_per_superstep": 611813, "bytes_per_op": 7289296, "allocs_per_op": 3512},
      {"case": "sssp/workers=4", "ns_per_op": 10732655, "ns_per_superstep": 825588, "bytes_per_op": 5929616, "allocs_per_op": 3965},
      {"case": "sssp/workers=8", "ns_per_op": 9647343, "ns_per_superstep": 742103, "bytes_per_op": 5308688, "allocs_per_op": 4745},
      {"case": "wcc/workers=1", "ns_per_op": 4101052, "ns_per_superstep": 820209, "bytes_per_op": 9172336, "allocs_per_op": 3460},
      {"case": "wcc/workers=4", "ns_per_op": 4950940, "ns_per_superstep": 990187, "bytes_per_op": 6646688, "allocs_per_op": 3796},
      {"case": "wcc/workers=8", "ns_per_op": 4335742, "ns_per_superstep": 867147, "bytes_per_op": 5826848, "allocs_per_op": 4421}
    ]
  },
BASELINE
  printf '  "current": [\n'
  awk '
    /^BenchmarkEngineMessagePlane\// {
      name = $1
      sub(/^BenchmarkEngineMessagePlane\//, "", name)
      sub(/-[0-9]+$/, "", name)
      ns = bytes = allocs = step = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")        ns = $(i - 1)
        if ($i == "ns/superstep") step = $(i - 1)
        if ($i == "B/op")         bytes = $(i - 1)
        if ($i == "allocs/op")    allocs = $(i - 1)
      }
      if (n++) printf(",\n")
      printf("    {\"case\": \"%s\", \"ns_per_op\": %s, \"ns_per_superstep\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, step, bytes, allocs)
    }
    END { printf("\n") }
  ' <<<"$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
