#!/usr/bin/env bash
# Engine message-plane microbenchmark harness
# (internal/engine BenchmarkEngineMessagePlane plus its loopback-TCP
# twin internal/dist BenchmarkEngineMessagePlaneDist — dist cases are
# recorded under a "dist/" prefix; the ns/superstep gap between the
# two is the price of the process split):
#
#   scripts/bench_engine.sh [output.json]   # regenerate BENCH_ENGINE.json
#   scripts/bench_engine.sh --check [ref]   # regression gate vs committed numbers
#
# BENCHTIME (default 2s) controls -benchtime.
#
# The emitted JSON carries two sections: "baseline" holds the frozen
# pre-message-plane numbers (per-vertex inbox slices, O(V) liveness
# scan) measured on the same benchmark immediately before the rewrite,
# and "current" holds this run.
#
# --check reruns the benchmark and compares each case against the
# "current" section of the committed BENCH_ENGINE.json (or [ref]).
# It fails if any case's ns/superstep regresses by more than 25% or
# its allocs/op more than doubles. Wall-clock numbers on shared CI
# runners are noisy — the job that runs this is advisory — but the
# alloc gate is deterministic: it is what keeps the observability
# hooks and future engine work honest about hot-path allocations.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"

run_bench() {
  go test ./internal/engine/ -run NONE -bench BenchmarkEngineMessagePlane \
    -benchmem -benchtime "$benchtime"
  go test ./internal/dist/ -run NONE -bench BenchmarkEngineMessagePlaneDist \
    -benchmem -benchtime "$benchtime"
}

# parse_bench <raw>: one
# "case ns_per_op ns_per_superstep bytes allocs frames wirebytes"
# row per line (frames/wirebytes are null for in-process cases).
parse_bench() {
  awk '
    /^BenchmarkEngineMessagePlane(Dist)?\// {
      name = $1
      sub(/^BenchmarkEngineMessagePlaneDist\//, "dist/", name)
      sub(/^BenchmarkEngineMessagePlane\//, "", name)
      sub(/-[0-9]+$/, "", name)
      ns = bytes = allocs = step = frames = wbytes = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")               ns = $(i - 1)
        if ($i == "ns/superstep")        step = $(i - 1)
        if ($i == "B/op")                bytes = $(i - 1)
        if ($i == "allocs/op")           allocs = $(i - 1)
        if ($i == "frames/superstep")    frames = $(i - 1)
        if ($i == "wirebytes/superstep") wbytes = $(i - 1)
      }
      print name, ns, step, bytes, allocs, frames, wbytes
    }
  ' <<<"$1"
}

if [[ "${1:-}" == "--check" ]]; then
  ref="${2:-BENCH_ENGINE.json}"
  [[ -f "$ref" ]] || { echo "bench check: reference $ref not found" >&2; exit 2; }

  raw="$(run_bench)"
  echo "$raw" >&2

  # Reference rows from the committed JSON's "current" section (same
  # row shape as the baseline section, so gate on the section marker).
  ref_rows="$(awk '
    /"current": \[/ { in_cur = 1; next }
    in_cur && /^  \]/ { in_cur = 0 }
    in_cur && /"case":/ {
      line = $0
      gsub(/[",{}:]/, " ", line)
      n = split(line, f, /[ \t]+/)
      for (i = 1; i <= n; i++) {
        if (f[i] == "case")             name = f[i + 1]
        if (f[i] == "ns_per_superstep") step = f[i + 1]
        if (f[i] == "allocs_per_op")    allocs = f[i + 1]
      }
      print name, step, allocs
    }
  ' "$ref")"

  parse_bench "$raw" | awk -v ref="$ref_rows" -v refname="$ref" '
    BEGIN {
      n = split(ref, lines, "\n")
      for (i = 1; i <= n; i++) {
        split(lines[i], f, " ")
        if (f[1] != "") { refstep[f[1]] = f[2]; refallocs[f[1]] = f[3] }
      }
      printf("%-28s %14s %14s %8s %10s %10s %8s\n",
             "case", "ns/superstep", "ref", "ratio", "allocs/op", "ref", "ratio")
    }
    {
      name = $1; step = $3; allocs = $5
      if (!(name in refstep)) {
        printf("%-28s (new case, no reference — skipped)\n", name)
        next
      }
      sr = step / refstep[name]
      ar = refallocs[name] > 0 ? allocs / refallocs[name] : (allocs > 0 ? 99 : 1)
      flag = ""
      if (sr > 1.25) { flag = flag " SLOW"; bad = 1 }
      if (ar > 2.0)  { flag = flag " ALLOCS"; bad = 1 }
      printf("%-28s %14d %14d %7.2fx %10d %10d %7.2fx%s\n",
             name, step, refstep[name], sr, allocs, refallocs[name], ar, flag)
      checked++
    }
    END {
      if (checked == 0) { print "bench check: no cases matched " refname > "/dev/stderr"; exit 2 }
      if (bad) {
        print "bench check: FAILED (>25% ns/superstep or >2x allocs/op vs " refname ")" > "/dev/stderr"
        exit 1
      }
      print "bench check: ok (" checked " cases within thresholds)" > "/dev/stderr"
    }
  '
  exit $?
fi

out="${1:-BENCH_ENGINE.json}"

raw="$(run_bench)"
echo "$raw" >&2

{
  printf '{\n'
  printf '  "benchmark": "BenchmarkEngineMessagePlane + BenchmarkEngineMessagePlaneDist",\n'
  printf '  "benchtime": "%s",\n' "$benchtime"
  awk '
    $1 == "goos:"   { printf("  \"goos\": \"%s\",\n", $2) }
    $1 == "goarch:" { printf("  \"goarch\": \"%s\",\n", $2) }
    $1 == "cpu:"    { $1 = ""; sub(/^ /, ""); printf("  \"cpu\": \"%s\",\n", $0) }
  ' <<<"$raw"
  # Frozen pre-rewrite numbers (engine as of PR 1, 2s benchtime, same
  # benchmark and graph: RMAT scale 12, undirected, weighted).
  cat <<'BASELINE'
  "baseline": {
    "note": "message plane before sender-side combining / worklists / pooled arenas",
    "results": [
      {"case": "pagerank/workers=1", "ns_per_op": 10624802, "ns_per_superstep": 965890, "bytes_per_op": 9173688, "allocs_per_op": 3507},
      {"case": "pagerank/workers=4", "ns_per_op": 14297795, "ns_per_superstep": 1299799, "bytes_per_op": 6650680, "allocs_per_op": 3936},
      {"case": "pagerank/workers=8", "ns_per_op": 13178718, "ns_per_superstep": 1198064, "bytes_per_op": 5834360, "allocs_per_op": 4685},
      {"case": "pagerank-plain/workers=1", "ns_per_op": 21694357, "ns_per_superstep": 1972212, "bytes_per_op": 11334136, "allocs_per_op": 14961},
      {"case": "pagerank-plain/workers=4", "ns_per_op": 26171153, "ns_per_superstep": 2379194, "bytes_per_op": 8811128, "allocs_per_op": 15390},
      {"case": "pagerank-plain/workers=8", "ns_per_op": 20140811, "ns_per_superstep": 1830981, "bytes_per_op": 7994821, "allocs_per_op": 16139},
      {"case": "sssp/workers=1", "ns_per_op": 7953578, "ns_per_superstep": 611813, "bytes_per_op": 7289296, "allocs_per_op": 3512},
      {"case": "sssp/workers=4", "ns_per_op": 10732655, "ns_per_superstep": 825588, "bytes_per_op": 5929616, "allocs_per_op": 3965},
      {"case": "sssp/workers=8", "ns_per_op": 9647343, "ns_per_superstep": 742103, "bytes_per_op": 5308688, "allocs_per_op": 4745},
      {"case": "wcc/workers=1", "ns_per_op": 4101052, "ns_per_superstep": 820209, "bytes_per_op": 9172336, "allocs_per_op": 3460},
      {"case": "wcc/workers=4", "ns_per_op": 4950940, "ns_per_superstep": 990187, "bytes_per_op": 6646688, "allocs_per_op": 3796},
      {"case": "wcc/workers=8", "ns_per_op": 4335742, "ns_per_superstep": 867147, "bytes_per_op": 5826848, "allocs_per_op": 4421}
    ]
  },
BASELINE
  printf '  "current": [\n'
  parse_bench "$raw" | awk '
    {
      if (n++) printf(",\n")
      printf("    {\"case\": \"%s\", \"ns_per_op\": %s, \"ns_per_superstep\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", $1, $2, $3, $4, $5)
      if ($6 != "null") printf(", \"frames_per_superstep\": %s, \"wirebytes_per_superstep\": %s", $6, $7)
      printf("}")
    }
    END { printf("\n") }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
