package hourglass_test

import (
	"testing"

	"hourglass"
	"hourglass/internal/cloud"
)

func newSystem(t testing.TB) *hourglass.System {
	t.Helper()
	sys, err := hourglass.New(hourglass.Options{Seed: 5, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemConstruction(t *testing.T) {
	sys := newSystem(t)
	for _, job := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(job)
		if err != nil {
			t.Fatalf("%s: %v", job, err)
		}
		if env.LRC.Config.Transient {
			t.Errorf("%s: transient LRC", job)
		}
		base, err := sys.Baseline(job)
		if err != nil || base <= 0 {
			t.Errorf("%s: baseline %v, %v", job, base, err)
		}
	}
	if _, err := sys.Env(hourglass.JobKind("nope")); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestEnvMemoised(t *testing.T) {
	sys := newSystem(t)
	a, err := sys.Env(hourglass.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys.Env(hourglass.SSSP)
	if a != b {
		t.Error("Env not memoised")
	}
}

func TestProvisionerFactory(t *testing.T) {
	sys := newSystem(t)
	for _, st := range hourglass.Strategies() {
		p, err := sys.Provisioner(hourglass.PageRank, st)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty provisioner name", st)
		}
	}
	if _, err := sys.Provisioner(hourglass.PageRank, hourglass.Strategy("nope")); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestDeadlineForGrowsWithSlack(t *testing.T) {
	sys := newSystem(t)
	d1, err := sys.DeadlineFor(hourglass.GC, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sys.DeadlineFor(hourglass.GC, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("deadline did not grow with slack: %v vs %v", d1, d2)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	sys := newSystem(t)
	hg, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyHourglass, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hg.MissedFraction != 0 {
		t.Errorf("hourglass missed %.0f%%", hg.MissedFraction*100)
	}
	od, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyOnDemand, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hg.MeanNormCost >= od.MeanNormCost {
		t.Errorf("hourglass %.2f not cheaper than on-demand %.2f", hg.MeanNormCost, od.MeanNormCost)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t)
	ra, err := a.Simulate(hourglass.SSSP, hourglass.StrategyHourglass, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Simulate(hourglass.SSSP, hourglass.StrategyHourglass, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ra.MeanCost != rb.MeanCost || ra.MissedFraction != rb.MissedFraction {
		t.Errorf("same seed diverged: %+v vs %+v", ra, rb)
	}
}

func TestSimulateOne(t *testing.T) {
	sys := newSystem(t)
	deadline, err := sys.DeadlineFor(hourglass.SSSP, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SimulateOne(hourglass.SSSP, hourglass.StrategyHourglass, 1000, 1000+deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Cost <= 0 {
		t.Errorf("run: %+v", res)
	}
}

// newCalmSystem builds a System over hand-made flat spot traces (deep
// discount, never crossing the bid).
func newCalmSystem(t testing.TB) *hourglass.System {
	t.Helper()
	calm := cloud.TraceSet{}
	for _, it := range cloud.Catalogue() {
		prices := make([]float64, 10*24*60) // 10 days at 1-minute steps
		for i := range prices {
			prices[i] = float64(it.OnDemand) * 0.2
		}
		calm[it.Name] = &cloud.PriceTrace{Instance: it.Name, Step: 60, Prices: prices}
	}
	// The eviction model needs *some* evictions to be finite; fit it on
	// a synthetic month but simulate against the calm market.
	sys, err := hourglass.New(hourglass.Options{Seed: 3, TraceDays: 10, LiveTraces: calm})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCustomTraceOverride(t *testing.T) {
	// Calm custom market (no spikes): Hourglass runs entirely on spot
	// with zero evictions and an ~80% discount.
	sys := newCalmSystem(t)
	res, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyHourglass, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanEvictions != 0 {
		t.Errorf("calm market produced %.2f evictions/run", res.MeanEvictions)
	}
	if res.MissedFraction != 0 {
		t.Errorf("missed %.2f", res.MissedFraction)
	}
}
