package hourglass_test

import (
	"math"
	"sync"
	"testing"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

func newSystem(t testing.TB) *hourglass.System {
	t.Helper()
	sys, err := hourglass.New(hourglass.Options{Seed: 5, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemConstruction(t *testing.T) {
	sys := newSystem(t)
	for _, job := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(job)
		if err != nil {
			t.Fatalf("%s: %v", job, err)
		}
		if env.LRC.Config.Transient {
			t.Errorf("%s: transient LRC", job)
		}
		base, err := sys.Baseline(job)
		if err != nil || base <= 0 {
			t.Errorf("%s: baseline %v, %v", job, base, err)
		}
	}
	if _, err := sys.Env(hourglass.JobKind("nope")); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestEnvMemoised(t *testing.T) {
	sys := newSystem(t)
	a, err := sys.Env(hourglass.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys.Env(hourglass.SSSP)
	if a != b {
		t.Error("Env not memoised")
	}
}

func TestProvisionerFactory(t *testing.T) {
	sys := newSystem(t)
	for _, st := range hourglass.Strategies() {
		p, err := sys.Provisioner(hourglass.PageRank, st)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty provisioner name", st)
		}
	}
	if _, err := sys.Provisioner(hourglass.PageRank, hourglass.Strategy("nope")); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestSimulateConcurrent drives one System from many goroutines
// across all jobs — the scheduler-daemon usage pattern. Run under
// -race it guards the mutex on the lazy env cache.
func TestSimulateConcurrent(t *testing.T) {
	sys := newSystem(t)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for _, k := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(k hourglass.JobKind) {
				defer wg.Done()
				if _, err := sys.Simulate(k, hourglass.StrategyHourglass, 0.5, 3); err != nil {
					errs <- err
				}
			}(k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSimulateRejectsUnknownStrategy(t *testing.T) {
	sys := newSystem(t)
	// Must return an error up front — never panic mid-batch.
	if _, err := sys.Simulate(hourglass.PageRank, hourglass.Strategy("warp-drive"), 0.5, 2); err == nil {
		t.Error("unknown strategy accepted by Simulate")
	}
	if err := hourglass.ValidateStrategy(hourglass.StrategyHourglass); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	for _, st := range hourglass.Strategies() {
		if err := hourglass.ValidateStrategy(st); err != nil {
			t.Errorf("%s rejected: %v", st, err)
		}
	}
}

func TestParseJobKind(t *testing.T) {
	for _, name := range []string{"sssp", "pagerank", "graphcoloring"} {
		k, err := hourglass.ParseJobKind(name)
		if err != nil || string(k) != name {
			t.Errorf("ParseJobKind(%q) = %q, %v", name, k, err)
		}
	}
	if _, err := hourglass.ParseJobKind("nope"); err == nil {
		t.Error("unknown job kind parsed")
	}
}

func TestDeadlineForMatchesEnv(t *testing.T) {
	sys := newSystem(t)
	for _, k := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, slack := range []float64{0, 0.1, 0.5, 1.0} {
			got, err := sys.DeadlineFor(k, slack)
			if err != nil {
				t.Fatalf("%s slack %v: %v", k, slack, err)
			}
			want := env.LRC.Fixed + env.LRC.Exec + units.Seconds(slack*float64(env.LRC.Exec))
			if math.Abs(float64(got-want)) > 1e-9 {
				t.Errorf("%s slack %v: deadline %v, want %v", k, slack, got, want)
			}
			if got <= 0 {
				t.Errorf("%s slack %v: non-positive deadline %v", k, slack, got)
			}
		}
	}
	if _, err := sys.DeadlineFor(hourglass.JobKind("nope"), 0.5); err == nil {
		t.Error("DeadlineFor accepted unknown job")
	}
}

func TestBaselineMatchesLRC(t *testing.T) {
	sys := newSystem(t)
	for _, k := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(k)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sys.Baseline(k)
		if err != nil {
			t.Fatal(err)
		}
		// One uninterrupted run on the last-resort config at the
		// on-demand rate (§8.2 normalisation).
		want := units.USD(float64(env.LRC.Config.OnDemandRate()) *
			(float64(env.LRC.Fixed) + float64(env.LRC.Exec)))
		if math.Abs(float64(base-want)) > 1e-9 {
			t.Errorf("%s: baseline %v, want %v", k, base, want)
		}
	}
	if _, err := sys.Baseline(hourglass.JobKind("nope")); err == nil {
		t.Error("Baseline accepted unknown job")
	}
}

func TestHorizonPositive(t *testing.T) {
	sys := newSystem(t)
	h, err := sys.Horizon(hourglass.PageRank)
	if err != nil || h <= 0 {
		t.Errorf("horizon %v, %v", h, err)
	}
	if _, err := sys.Horizon(hourglass.JobKind("nope")); err == nil {
		t.Error("Horizon accepted unknown job")
	}
}

func TestDeadlineForGrowsWithSlack(t *testing.T) {
	sys := newSystem(t)
	d1, err := sys.DeadlineFor(hourglass.GC, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sys.DeadlineFor(hourglass.GC, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("deadline did not grow with slack: %v vs %v", d1, d2)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	sys := newSystem(t)
	hg, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyHourglass, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hg.MissedFraction != 0 {
		t.Errorf("hourglass missed %.0f%%", hg.MissedFraction*100)
	}
	od, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyOnDemand, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hg.MeanNormCost >= od.MeanNormCost {
		t.Errorf("hourglass %.2f not cheaper than on-demand %.2f", hg.MeanNormCost, od.MeanNormCost)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t)
	ra, err := a.Simulate(hourglass.SSSP, hourglass.StrategyHourglass, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Simulate(hourglass.SSSP, hourglass.StrategyHourglass, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ra.MeanCost != rb.MeanCost || ra.MissedFraction != rb.MissedFraction {
		t.Errorf("same seed diverged: %+v vs %+v", ra, rb)
	}
}

func TestSimulateOne(t *testing.T) {
	sys := newSystem(t)
	deadline, err := sys.DeadlineFor(hourglass.SSSP, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SimulateOne(hourglass.SSSP, hourglass.StrategyHourglass, 1000, 1000+deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Cost <= 0 {
		t.Errorf("run: %+v", res)
	}
}

// newCalmSystem builds a System over hand-made flat spot traces (deep
// discount, never crossing the bid).
func newCalmSystem(t testing.TB) *hourglass.System {
	t.Helper()
	calm := cloud.TraceSet{}
	for _, it := range cloud.Catalogue() {
		prices := make([]float64, 10*24*60) // 10 days at 1-minute steps
		for i := range prices {
			prices[i] = float64(it.OnDemand) * 0.2
		}
		calm[it.Name] = &cloud.PriceTrace{Instance: it.Name, Step: 60, Prices: prices}
	}
	// The eviction model needs *some* evictions to be finite; fit it on
	// a synthetic month but simulate against the calm market.
	sys, err := hourglass.New(hourglass.Options{Seed: 3, TraceDays: 10, LiveTraces: calm})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCustomTraceOverride(t *testing.T) {
	// Calm custom market (no spikes): Hourglass runs entirely on spot
	// with zero evictions and an ~80% discount.
	sys := newCalmSystem(t)
	res, err := sys.Simulate(hourglass.PageRank, hourglass.StrategyHourglass, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanEvictions != 0 {
		t.Errorf("calm market produced %.2f evictions/run", res.MeanEvictions)
	}
	if res.MissedFraction != 0 {
		t.Errorf("missed %.2f", res.MissedFraction)
	}
}
