// Package hourglass is the public API of the Hourglass reproduction —
// a resource-provisioning engine for time-constrained graph-processing
// jobs on transient cloud resources (Joaquim, Bravo, Rodrigues, Matos;
// EuroSys 2019).
//
// The package wires together the internal substrates (graph engine,
// partitioners, micro-partitioning, spot market, performance model,
// provisioning strategies, simulator) behind a small surface:
//
//	sys, _ := hourglass.New(hourglass.Options{Seed: 42})
//	res, _ := sys.Simulate(hourglass.GC, hourglass.StrategyHourglass, 0.5, 200)
//	fmt.Printf("cost %.2f×OD, missed %.0f%%\n", res.MeanNormCost, res.MissedFraction*100)
//
// See the examples/ directory for runnable scenarios and DESIGN.md for
// the system inventory.
package hourglass

import (
	"fmt"
	"sync"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/perfmodel"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// JobKind names one of the paper's benchmark jobs.
type JobKind string

// The three §8 benchmark jobs.
const (
	SSSP     JobKind = "sssp"
	PageRank JobKind = "pagerank"
	GC       JobKind = "graphcoloring"
)

// job resolves a kind to its calibrated model.
func job(k JobKind) (perfmodel.Job, error) {
	switch k {
	case SSSP:
		return perfmodel.JobSSSP, nil
	case PageRank:
		return perfmodel.JobPageRank, nil
	case GC:
		return perfmodel.JobGC, nil
	default:
		return perfmodel.Job{}, fmt.Errorf("hourglass: unknown job %q", k)
	}
}

// ParseJobKind validates a job-kind name, for admission checks on
// external input (CLI flags, HTTP job specs).
func ParseJobKind(s string) (JobKind, error) {
	k := JobKind(s)
	if _, err := job(k); err != nil {
		return "", err
	}
	return k, nil
}

// Strategy names a provisioning strategy.
type Strategy string

// Provisioning strategies available to Simulate.
const (
	StrategyHourglass Strategy = "hourglass"  // slack-aware (the contribution)
	StrategyProteus   Strategy = "proteus"    // greedy cost-per-work
	StrategySpotOn    Strategy = "spoton"     // greedy + replication choice
	StrategyProteusDP Strategy = "proteus+dp" // greedy with deadline protection
	StrategySpotOnDP  Strategy = "spoton+dp"
	StrategyOnDemand  Strategy = "ondemand"
	StrategyNaive     Strategy = "naive" // §2's "Hourglass Naive": greedy then DP
	// StrategyRelaxed is the §8.2 "relaxed-Hourglass": slack-aware
	// against an inflated deadline (half the LRC exec time extra),
	// trading occasional misses for savings on soft deadlines.
	StrategyRelaxed Strategy = "hourglass-relaxed"
)

// Strategies lists every selectable strategy.
func Strategies() []Strategy {
	return []Strategy{StrategyHourglass, StrategyProteus, StrategySpotOn,
		StrategyProteusDP, StrategySpotOnDP, StrategyOnDemand, StrategyNaive,
		StrategyRelaxed}
}

// ValidateStrategy rejects strategy names Provisioner cannot build.
// Long-running callers (the scheduler daemon) validate specs at
// admission so a bad strategy can never surface mid-batch.
func ValidateStrategy(st Strategy) error {
	switch st {
	case StrategyHourglass, StrategyProteus, StrategySpotOn,
		StrategyProteusDP, StrategySpotOnDP, StrategyOnDemand,
		StrategyNaive, StrategyRelaxed:
		return nil
	}
	return fmt.Errorf("hourglass: unknown strategy %q", st)
}

// Options configure a System.
type Options struct {
	// Seed drives the synthetic spot-price traces (historical and
	// live months derive decorrelated sub-seeds). Same seed ⇒ every
	// experiment reproduces exactly.
	Seed int64
	// TraceDays is the length of each generated month (0 = 10).
	TraceDays float64
	// Model overrides the performance model (nil = calibrated default
	// with micro-partition loading).
	Model *perfmodel.Model
	// Configs overrides the deployment configuration set (nil = the
	// paper's capacity-capped spot + on-demand grid).
	Configs []cloud.Config
	// LiveTraces overrides the simulated market month and
	// HistoricalTraces the month the eviction model is fitted on
	// (both nil = synthetic seeded months). Build sets from real AWS
	// spot-price-history dumps with cloud.ReadTraceCSV.
	LiveTraces, HistoricalTraces cloud.TraceSet
}

// System is a ready-to-simulate Hourglass deployment environment.
// A System is safe for concurrent use: the market, eviction model and
// per-job environments are immutable once built, and the lazy env
// cache is mutex-guarded, so one System can back many concurrent
// scheduler workers.
type System struct {
	opts      Options
	market    *cloud.Market
	evictions *cloud.EvictionModel
	model     *perfmodel.Model
	configs   []cloud.Config

	mu   sync.Mutex // guards envs
	envs map[JobKind]*core.Env
}

// New builds a System: generates the historical and live price traces,
// fits the eviction model, and prepares per-job environments lazily.
func New(opts Options) (*System, error) {
	if opts.TraceDays == 0 {
		opts.TraceDays = 10
	}
	model := opts.Model
	if model == nil {
		model = perfmodel.Default()
	}
	configs := opts.Configs
	if configs == nil {
		configs = cloud.DefaultConfigs()
	}
	historical := opts.HistoricalTraces
	if historical == nil {
		historical = cloud.GenerateSet(cloud.Catalogue(),
			cloud.GenParams{Days: opts.TraceDays, Seed: opts.Seed ^ 0x0C70BE5}) // "October"
	}
	evictions, err := cloud.BuildEvictionModel(historical, 512)
	if err != nil {
		return nil, err
	}
	live := opts.LiveTraces
	if live == nil {
		live = cloud.GenerateSet(cloud.Catalogue(),
			cloud.GenParams{Days: opts.TraceDays, Seed: opts.Seed ^ 0x404E4B5}) // "November"
	}
	return &System{
		opts:      opts,
		market:    cloud.NewMarket(live),
		evictions: evictions,
		model:     model,
		configs:   configs,
		envs:      map[JobKind]*core.Env{},
	}, nil
}

// Env returns (building on first use) the provisioning environment for
// a job. Concurrent callers racing on the first build serialise on the
// System mutex; the built Env itself is read-only.
func (s *System) Env(k JobKind) (*core.Env, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.envs[k]; ok {
		return e, nil
	}
	j, err := job(k)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEnv(j, s.model, s.configs, s.market, s.evictions)
	if err != nil {
		return nil, err
	}
	s.envs[k] = e
	return e, nil
}

// Provisioner instantiates a fresh strategy bound to the job's
// environment. Wrappers with latch state (DP) must be rebuilt per run,
// which Simulate does automatically.
func (s *System) Provisioner(k JobKind, st Strategy) (core.Provisioner, error) {
	env, err := s.Env(k)
	if err != nil {
		return nil, err
	}
	switch st {
	case StrategyHourglass:
		return core.NewSlackAware(env), nil
	case StrategyProteus:
		return core.NewGreedy(env), nil
	case StrategySpotOn:
		return core.NewSpotOn(env), nil
	case StrategyProteusDP, StrategyNaive:
		return core.NewDP(core.NewGreedy(env), env), nil
	case StrategySpotOnDP:
		return core.NewDP(core.NewSpotOn(env), env), nil
	case StrategyOnDemand:
		return &core.OnDemandOnly{Env: env}, nil
	case StrategyRelaxed:
		return core.NewRelaxed(env, env.LRC.Exec/2), nil
	default:
		return nil, fmt.Errorf("hourglass: unknown strategy %q", st)
	}
}

// Result re-exports the batch aggregate.
type Result = sim.BatchResult

// Simulate runs `runs` trace-driven executions of the job under the
// strategy with the given slack fraction (0.1 = deadline leaves 10% of
// the LRC execution time as slack) and random start offsets.
func (s *System) Simulate(k JobKind, st Strategy, slackFraction float64, runs int) (Result, error) {
	env, err := s.Env(k)
	if err != nil {
		return Result{}, err
	}
	if err := ValidateStrategy(st); err != nil {
		return Result{}, err
	}
	runner := &sim.Runner{Env: env}
	return runner.RunBatch(func() core.Provisioner {
		// Job and strategy were both validated above, so Provisioner
		// cannot fail here.
		p, _ := s.Provisioner(k, st)
		return p
	}, slackFraction, runs, s.opts.Seed+int64(slackFraction*1000))
}

// SimulateOne runs a single execution starting at a fixed trace offset
// with an absolute deadline, returning the detailed result.
func (s *System) SimulateOne(k JobKind, st Strategy, start, deadline units.Seconds) (sim.RunResult, error) {
	env, err := s.Env(k)
	if err != nil {
		return sim.RunResult{}, err
	}
	p, err := s.Provisioner(k, st)
	if err != nil {
		return sim.RunResult{}, err
	}
	runner := &sim.Runner{Env: env}
	return runner.Run(p, start, deadline)
}

// DeadlineFor translates a slack fraction into a relative deadline for
// the job (fixed + exec + slack·exec), the §8.2 scheme.
func (s *System) DeadlineFor(k JobKind, slackFraction float64) (units.Seconds, error) {
	env, err := s.Env(k)
	if err != nil {
		return 0, err
	}
	return env.LRC.Fixed + env.LRC.Exec + units.Seconds(slackFraction*float64(env.LRC.Exec)), nil
}

// Baseline returns the on-demand normalisation cost for the job.
func (s *System) Baseline(k JobKind) (units.USD, error) {
	env, err := s.Env(k)
	if err != nil {
		return 0, err
	}
	return sim.Baseline(env), nil
}

// Horizon returns the usable trace horizon for the job's market —
// the bound on random start offsets. External schedulers drawing
// their own offsets (cmd/hourglass-serve) use it to stay on-trace.
func (s *System) Horizon(k JobKind) (units.Seconds, error) {
	env, err := s.Env(k)
	if err != nil {
		return 0, err
	}
	return (&sim.Runner{Env: env}).Horizon(), nil
}
