// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark prints or reports the quantities the
// corresponding exhibit plots; run the cmd/ tools for full-resolution
// sweeps. Custom metrics use b.ReportMetric, so `go test -bench=.`
// output doubles as the experiment record in EXPERIMENTS.md.
package hourglass_test

import (
	"errors"
	"fmt"
	"testing"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/loader"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
	"hourglass/internal/perfmodel"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

const benchRuns = 30 // simulations per bar (paper: 2000; CLI flag -runs scales up)

// --- Table 2: graph datasets ------------------------------------------------

func BenchmarkTable2Datasets(b *testing.B) {
	for _, d := range graph.Datasets() {
		b.Run(d.Name, func(b *testing.B) {
			var st graph.Stats
			for i := 0; i < b.N; i++ {
				g := d.Generate(0.1)
				st = graph.ComputeStats(d, g)
			}
			b.ReportMetric(float64(st.Vertices), "vertices")
			b.ReportMetric(float64(st.Edges), "edges")
		})
	}
}

// --- Figure 1: the provisioning dilemma -------------------------------------

func BenchmarkFigure1Motivation(b *testing.B) {
	bars := []struct {
		name     string
		model    *perfmodel.Model
		strategy hourglass.Strategy
	}{
		{"eager", perfmodel.Default().WithLoading(perfmodel.LoadHash), hourglass.StrategyProteus},
		{"naive", perfmodel.Default().WithLoading(perfmodel.LoadHash), hourglass.StrategyNaive},
		{"slackaware", perfmodel.Default().WithLoading(perfmodel.LoadMETIS), hourglass.StrategyHourglass},
		{"slackaware+fastreload", perfmodel.Default(), hourglass.StrategyHourglass},
	}
	for _, bar := range bars {
		b.Run(bar.name, func(b *testing.B) {
			sys, err := hourglass.New(hourglass.Options{Seed: 42, TraceDays: 8, Model: bar.model})
			if err != nil {
				b.Fatal(err)
			}
			var res hourglass.Result
			for i := 0; i < b.N; i++ {
				res, err = sys.Simulate(hourglass.GC, bar.strategy, 0.5, benchRuns)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanNormCost, "normcost")
			b.ReportMetric(res.MissedFraction*100, "missed%")
		})
	}
}

// --- Figure 5: cost and missed deadlines across jobs, slacks, strategies ----

func benchmarkFigure5(b *testing.B, job hourglass.JobKind) {
	strategies := []hourglass.Strategy{
		hourglass.StrategyHourglass, hourglass.StrategyProteus,
		hourglass.StrategyProteusDP, hourglass.StrategySpotOnDP,
	}
	sys, err := hourglass.New(hourglass.Options{Seed: 42, TraceDays: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range strategies {
		for _, slack := range []float64{0.2, 0.6, 1.0} {
			b.Run(fmt.Sprintf("%s/slack%.0f%%", st, slack*100), func(b *testing.B) {
				var res hourglass.Result
				for i := 0; i < b.N; i++ {
					res, err = sys.Simulate(job, st, slack, benchRuns)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.MeanNormCost, "normcost")
				b.ReportMetric(res.MissedFraction*100, "missed%")
			})
		}
	}
}

func BenchmarkFigure5SSSP(b *testing.B)     { benchmarkFigure5(b, hourglass.SSSP) }
func BenchmarkFigure5PageRank(b *testing.B) { benchmarkFigure5(b, hourglass.PageRank) }
func BenchmarkFigure5GC(b *testing.B)       { benchmarkFigure5(b, hourglass.GC) }

// --- Figure 6: loading strategies --------------------------------------------

func BenchmarkFigure6Loaders(b *testing.B) {
	d, err := graph.ByName("twitter")
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Load(d, 0.25)
	model := loader.DefaultModel()
	mp, err := micro.BuildForConfigs(g, partition.Multilevel{Seed: 1}, []int{2, 4, 8, 16}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 16} {
		hashAssign := partition.Hash{}.Partition(g, k).Assign
		va, err := mp.VertexAssignment(k)
		if err != nil {
			b.Fatal(err)
		}
		rows := []struct {
			name string
			f    func() (loader.Result, error)
		}{
			{"stream", func() (loader.Result, error) { return model.Stream(g, k) }},
			{"hash", func() (loader.Result, error) { return model.Hash(g, hashAssign, k) }},
			{"micro", func() (loader.Result, error) { return model.Micro(g, va.Assign, k) }},
		}
		for _, row := range rows {
			b.Run(fmt.Sprintf("%s/machines%d", row.name, k), func(b *testing.B) {
				var r loader.Result
				for i := 0; i < b.N; i++ {
					r, err = row.f()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Total()), "simload-s")
			})
		}
	}
}

// --- Figure 7: micro-partitioning ablation ----------------------------------

func BenchmarkFigure7Ablation(b *testing.B) {
	rows := []struct {
		name     string
		model    *perfmodel.Model
		strategy hourglass.Strategy
	}{
		{"slackaware+metis", perfmodel.Default().WithLoading(perfmodel.LoadMETIS), hourglass.StrategyHourglass},
		{"slackaware+micrometis", perfmodel.Default().WithLoading(perfmodel.LoadMicro).WithMetisBase(), hourglass.StrategyHourglass},
		{"spoton+dp+micrometis", perfmodel.Default().WithLoading(perfmodel.LoadMicro).WithMetisBase(), hourglass.StrategySpotOnDP},
	}
	for _, row := range rows {
		for _, slack := range []float64{0.1, 0.5, 1.0} {
			b.Run(fmt.Sprintf("%s/slack%.0f%%", row.name, slack*100), func(b *testing.B) {
				sys, err := hourglass.New(hourglass.Options{Seed: 42, TraceDays: 8, Model: row.model})
				if err != nil {
					b.Fatal(err)
				}
				var res hourglass.Result
				for i := 0; i < b.N; i++ {
					res, err = sys.Simulate(hourglass.GC, row.strategy, slack, benchRuns)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.MeanNormCost, "normcost")
			})
		}
	}
}

// --- Figure 8: partition quality ---------------------------------------------

func BenchmarkFigure8Quality(b *testing.B) {
	for _, name := range []string{"orkut", "hollywood", "wiki"} {
		d, err := graph.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		g := graph.Load(d, 0.15)
		bases := []struct {
			label string
			p     partition.Partitioner
		}{
			{"metis", partition.Multilevel{Seed: 1}},
			{"fennel", partition.Fennel{Seed: 1}},
		}
		for _, base := range bases {
			b.Run(fmt.Sprintf("%s/%s", name, base.label), func(b *testing.B) {
				var microCut, directCut float64
				for i := 0; i < b.N; i++ {
					mp, err := micro.Build(g, base.p, 64, partition.Multilevel{Seed: 2})
					if err != nil {
						b.Fatal(err)
					}
					va, err := mp.VertexAssignment(8)
					if err != nil {
						b.Fatal(err)
					}
					microCut = partition.EdgeCutFraction(g, va.Assign)
					directCut = partition.EdgeCutFraction(g, base.p.Partition(g, 8).Assign)
				}
				b.ReportMetric(microCut*100, "microcut%")
				b.ReportMetric(directCut*100, "directcut%")
				b.ReportMetric((microCut-directCut)*100, "degradation-pts")
			})
		}
	}
}

// --- Figure 9: decision time and DFO ------------------------------------------

func BenchmarkFigure9Decision(b *testing.B) {
	sys, err := hourglass.New(hourglass.Options{Seed: 42, TraceDays: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, job := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		env, err := sys.Env(job)
		if err != nil {
			b.Fatal(err)
		}
		rel, err := sys.DeadlineFor(job, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		s := core.State{Now: 0, WorkLeft: 1, Deadline: rel}

		b.Run(fmt.Sprintf("approx/%s", job), func(b *testing.B) {
			p := core.NewSlackAware(env)
			for i := 0; i < b.N; i++ {
				p.Evaluate(s)
			}
		})
		b.Run(fmt.Sprintf("exact/%s", job), func(b *testing.B) {
			x := core.NewExactEC(env)
			x.Step = 5
			x.OpBudget = 5e6
			dnf := 0
			for i := 0; i < b.N; i++ {
				if _, err := x.Evaluate(s); errors.Is(err, core.ErrBudget) {
					dnf++
				}
			}
			b.ReportMetric(float64(dnf)/float64(b.N)*100, "dnf%")
		})
	}
}

// --- Ablations beyond the paper's figures -------------------------------------

// BenchmarkAblationCheckpointInterval verifies the Daly interval is
// near-optimal in end-to-end cost: scaling it off the optimum should
// not reduce cost.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x0C7})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		b.Fatal(err)
	}
	live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x40E})
	for _, scale := range []float64{0.25, 1, 4} {
		b.Run(fmt.Sprintf("daly_x%g", scale), func(b *testing.B) {
			env, err := core.NewEnv(perfmodel.JobGC, perfmodel.Default(), cloud.DefaultConfigs(),
				cloud.NewMarket(live), em)
			if err != nil {
				b.Fatal(err)
			}
			for i := range env.Stats {
				if env.Stats[i].Config.Transient {
					env.Stats[i].Ckpt *= units.Seconds(scale)
				}
			}
			runner := &sim.Runner{Env: env}
			var batch sim.BatchResult
			for i := 0; i < b.N; i++ {
				batch, err = runner.RunBatch(func() core.Provisioner {
					return core.NewSlackAware(env)
				}, 0.5, benchRuns, 9)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batch.MeanNormCost, "normcost")
		})
	}
}

// BenchmarkAblationEvictionWarning measures the §9 extension: a
// 120-second eviction warning that fits an emergency checkpoint should
// reduce cost (less lost work) without affecting deadline safety.
func BenchmarkAblationEvictionWarning(b *testing.B) {
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x0C7})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		b.Fatal(err)
	}
	live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x40E})
	for _, warning := range []units.Seconds{0, 120} {
		b.Run(fmt.Sprintf("warning%ds", int(warning)), func(b *testing.B) {
			env, err := core.NewEnv(perfmodel.JobGC, perfmodel.Default(), cloud.DefaultConfigs(),
				cloud.NewMarket(live), em)
			if err != nil {
				b.Fatal(err)
			}
			runner := &sim.Runner{Env: env, WarningWindow: warning}
			var batch sim.BatchResult
			for i := 0; i < b.N; i++ {
				batch, err = runner.RunBatch(func() core.Provisioner {
					p := core.NewSlackAware(env)
					p.WarningWindow = warning
					return p
				}, 0.3, benchRuns, 9)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batch.MeanNormCost, "normcost")
			b.ReportMetric(batch.MissedFraction*100, "missed%")
		})
	}
}

// BenchmarkEngineSupersteps measures the real BSP engine's throughput
// (the calibration source for the performance model).
func BenchmarkEngineSupersteps(b *testing.B) {
	g := graph.Load(graph.RMATDataset(13), 1.0)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pagerank10/%dworkers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(g, &engine.PageRank{Iterations: 10},
					engine.Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(g.SizeBytes())
		})
	}
}

// BenchmarkAblationRelaxedDeadline quantifies the §8.2 discussion:
// relaxed-Hourglass (inflated target) risks misses for extra savings.
func BenchmarkAblationRelaxedDeadline(b *testing.B) {
	sys, err := hourglass.New(hourglass.Options{Seed: 42, TraceDays: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range []hourglass.Strategy{hourglass.StrategyHourglass, hourglass.StrategyRelaxed} {
		b.Run(string(st), func(b *testing.B) {
			var res hourglass.Result
			for i := 0; i < b.N; i++ {
				res, err = sys.Simulate(hourglass.GC, st, 0.2, benchRuns)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanNormCost, "normcost")
			b.ReportMetric(res.MissedFraction*100, "missed%")
		})
	}
}

// BenchmarkAblationBisectionVsKWay compares the recursive-bisection
// formulation against direct k-way multilevel partitioning.
func BenchmarkAblationBisectionVsKWay(b *testing.B) {
	d, err := graph.ByName("orkut")
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Load(d, 0.15)
	parts := []partition.Partitioner{
		partition.Multilevel{Seed: 1},
		partition.RecursiveBisection{Seed: 1},
	}
	for _, p := range parts {
		b.Run(p.Name(), func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				res := p.Partition(g, 8)
				cut = partition.EdgeCutFraction(g, res.Assign)
			}
			b.ReportMetric(cut*100, "cut%")
		})
	}
}

// BenchmarkAblationBidSensitivity explores the pre-2017 bid-based
// eviction model: bidding above the on-demand price delays evictions
// and lowers Hourglass's cost; the paper's bid-=-on-demand policy is
// the conservative point.
func BenchmarkAblationBidSensitivity(b *testing.B) {
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x0C7})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		b.Fatal(err)
	}
	live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 0x40E})
	for _, factor := range []float64{1.0, 2.0} {
		b.Run(fmt.Sprintf("bid_x%g", factor), func(b *testing.B) {
			market := cloud.NewMarket(live)
			market.BidFactor = factor
			env, err := core.NewEnv(perfmodel.JobGC, perfmodel.Default(), cloud.DefaultConfigs(),
				market, em)
			if err != nil {
				b.Fatal(err)
			}
			runner := &sim.Runner{Env: env}
			var batch sim.BatchResult
			for i := 0; i < b.N; i++ {
				batch, err = runner.RunBatch(func() core.Provisioner {
					return core.NewSlackAware(env)
				}, 0.3, benchRuns, 9)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batch.MeanNormCost, "normcost")
			b.ReportMetric(batch.MeanEvictions, "evictions")
		})
	}
}
