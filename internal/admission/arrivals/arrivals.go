// Package arrivals generates seeded open-loop submission streams for
// admission stress tests and the controller-throughput benchmark: a
// Poisson process (exponential inter-arrival gaps) over a virtual
// horizon, with arrivals weighted across tenants and a per-tenant
// fraction of deliberately infeasible deadlines. The stream is purely
// deterministic in the seed, so CI can replay a failing soak by seed
// alone.
package arrivals

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Tenant describes one submitting tenant in the mix.
type Tenant struct {
	// Name labels the tenant ("team-a").
	Name string
	// Weight is the tenant's share of arrivals (relative; <=0 means 1).
	Weight float64
	// SlackMin/SlackMax bound the uniform slack factor drawn per job
	// (the paper's §8.2 deadline scheme: deadline = fixed + (1+slack)·exec
	// on the last-resort configuration).
	SlackMin, SlackMax float64
	// InfeasibleFraction of this tenant's jobs carry a deadline below
	// the feasibility bound (DeadlineScale < 1 on the minimum feasible
	// deadline), exercising the 422 path.
	InfeasibleFraction float64
}

// Arrival is one generated submission.
type Arrival struct {
	// At is the arrival offset from the stream start.
	At time.Duration
	// Tenant is the submitting tenant's name.
	Tenant string
	// Kind is the job kind ("sssp", "pagerank", ...).
	Kind string
	// Slack is the slack factor for a feasible deadline.
	Slack float64
	// Infeasible marks a deliberately un-meetable deadline;
	// DeadlineScale (< 1) then scales the minimum feasible deadline.
	Infeasible    bool
	DeadlineScale float64
}

// Spec parameterises a stream.
type Spec struct {
	// Seed fully determines the stream.
	Seed int64
	// PerHour is the mean arrival rate (jobs per virtual hour).
	PerHour float64
	// Horizon is the stream length in virtual time.
	Horizon time.Duration
	// Tenants is the submitting mix (at least one required).
	Tenants []Tenant
	// Kinds cycles job kinds per arrival (defaults to sssp+pagerank).
	Kinds []string
}

// Generate produces the stream, sorted by arrival offset. The output
// is a pure function of the Spec.
func (s Spec) Generate() ([]Arrival, error) {
	if s.PerHour <= 0 {
		return nil, fmt.Errorf("arrivals: PerHour must be positive, got %g", s.PerHour)
	}
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("arrivals: Horizon must be positive, got %s", s.Horizon)
	}
	if len(s.Tenants) == 0 {
		return nil, fmt.Errorf("arrivals: at least one tenant required")
	}
	kinds := s.Kinds
	if len(kinds) == 0 {
		kinds = []string{"sssp", "pagerank"}
	}
	var totalWeight float64
	weights := make([]float64, len(s.Tenants))
	for i, t := range s.Tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		totalWeight += w
	}

	rng := rand.New(rand.NewSource(s.Seed))
	meanGap := float64(time.Hour) / s.PerHour
	var out []Arrival
	at := time.Duration(rng.ExpFloat64() * meanGap)
	for at < s.Horizon {
		// Weighted tenant draw.
		pick := rng.Float64() * totalWeight
		ti := 0
		for i, w := range weights {
			pick -= w
			if pick < 0 {
				ti = i
				break
			}
		}
		t := s.Tenants[ti]
		a := Arrival{
			At:     at,
			Tenant: t.Name,
			Kind:   kinds[len(out)%len(kinds)],
			Slack:  t.SlackMin + rng.Float64()*(t.SlackMax-t.SlackMin),
		}
		if t.InfeasibleFraction > 0 && rng.Float64() < t.InfeasibleFraction {
			a.Infeasible = true
			// 40–90% of the minimum feasible deadline: clearly short,
			// never borderline.
			a.DeadlineScale = 0.4 + 0.5*rng.Float64()
		}
		out = append(out, a)
		at += time.Duration(rng.ExpFloat64() * meanGap)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
