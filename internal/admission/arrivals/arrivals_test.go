package arrivals

import (
	"testing"
	"time"
)

func testSpec(seed int64) Spec {
	return Spec{
		Seed:    seed,
		PerHour: 1200,
		Horizon: time.Hour,
		Tenants: []Tenant{
			{Name: "team-a", Weight: 3, SlackMin: 0.5, SlackMax: 1.5},
			{Name: "team-b", Weight: 2, SlackMin: 0.8, SlackMax: 2, InfeasibleFraction: 0.2},
			{Name: "team-c", Weight: 1, SlackMin: 1, SlackMax: 3},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := testSpec(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := testSpec(8).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	arr, err := testSpec(42).Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Poisson with mean 1200: the count should land well inside ±25%.
	if len(arr) < 900 || len(arr) > 1500 {
		t.Fatalf("arrival count %d far from the 1200/hour rate", len(arr))
	}
	tenants := map[string]int{}
	infeasible := 0
	for i, a := range arr {
		if i > 0 && arr[i-1].At > a.At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if a.At < 0 || a.At >= time.Hour {
			t.Fatalf("arrival %d outside horizon: %v", i, a.At)
		}
		tenants[a.Tenant]++
		if a.Infeasible {
			infeasible++
			if a.Tenant != "team-b" {
				t.Fatalf("infeasible arrival from %s (fraction 0 configured)", a.Tenant)
			}
			if a.DeadlineScale < 0.4 || a.DeadlineScale >= 0.9 {
				t.Fatalf("deadline scale %f outside [0.4, 0.9)", a.DeadlineScale)
			}
		}
		if a.Kind != "sssp" && a.Kind != "pagerank" {
			t.Fatalf("unexpected kind %q", a.Kind)
		}
	}
	if len(tenants) != 3 {
		t.Fatalf("tenants seen: %v, want all 3", tenants)
	}
	// Weighted 3:2:1 — the heaviest tenant should dominate the lightest.
	if tenants["team-a"] <= tenants["team-c"] {
		t.Errorf("weights not respected: %v", tenants)
	}
	if infeasible == 0 {
		t.Error("no infeasible arrivals despite fraction 0.2")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := (Spec{PerHour: 0, Horizon: time.Hour, Tenants: []Tenant{{Name: "x"}}}).Generate(); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := (Spec{PerHour: 10, Horizon: 0, Tenants: []Tenant{{Name: "x"}}}).Generate(); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := (Spec{PerHour: 10, Horizon: time.Hour}).Generate(); err == nil {
		t.Error("empty tenant mix accepted")
	}
}
