// Package admission is the multi-tenant gate between the scheduler
// controller and the execution backends. Every submission is priced
// against the current market (the backend's Estimate consults the
// same perfmodel/sim.Decide machinery the provisioner runs on): a
// deadline that cannot be met even on the last-resort configuration
// is rejected outright with a typed error; a feasible job is packed
// onto a shared live deployment by first-fit-decreasing bin-packing
// of EDF utilization shares, or parked in a bounded deadline-ordered
// wait queue when the deployment pool is saturated. Completions and
// deletions release shares and promote waiters in deadline order.
//
// The gate is clock-free — callers pass `now` explicitly — so the
// whole layer runs deterministically on the scheduler's virtual
// clock, and it publishes per-tenant counters, queue-wait and
// decision-latency histograms, and a max/min tenant-cost fairness
// gauge through an obs.Registry (nil disables metrics, a nil sink
// disables events, matching the repo-wide convention).
package admission

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hourglass/internal/obs"
)

// Admission metric names (the hourglass_admission_* section of
// /metrics).
const (
	MetricAdmitted           = "hourglass_admission_admitted_total"
	MetricQueued             = "hourglass_admission_queued_total"
	MetricRejected           = "hourglass_admission_rejected_total"
	MetricRejectedInfeasible = "hourglass_admission_rejected_infeasible_total"
	MetricRejectedOverflow   = "hourglass_admission_rejected_overflow_total"
	MetricQueueDepth         = "hourglass_admission_queue_depth"
	MetricDeploymentsLive    = "hourglass_admission_deployments_live"
	MetricPackedResidents    = "hourglass_admission_packed_residents"
	MetricSharedPlacements   = "hourglass_admission_shared_placements_total"
	MetricTenantCost         = "hourglass_admission_tenant_cost_usd_total"
	MetricQueueWait          = "hourglass_admission_queue_wait_seconds"
	MetricFairness           = "hourglass_admission_fairness_ratio"
	MetricDecision           = "hourglass_admission_decision_seconds"
)

var metricHelp = map[string]string{
	MetricAdmitted:           "Jobs admitted (immediately or by promotion), by tenant.",
	MetricQueued:             "Jobs parked in the wait queue at submission, by tenant.",
	MetricRejected:           "Jobs rejected at submission, by tenant.",
	MetricRejectedInfeasible: "Rejections because the deadline is infeasible at current market prices.",
	MetricRejectedOverflow:   "Rejections because the wait queue was full.",
	MetricQueueDepth:         "Jobs currently waiting for deployment capacity.",
	MetricDeploymentsLive:    "Live shared deployments in the pool.",
	MetricPackedResidents:    "Jobs currently holding a share of a live deployment.",
	MetricSharedPlacements:   "Placements that landed on an already-occupied deployment.",
	MetricTenantCost:         "Accumulated execution cost in USD, by tenant.",
	MetricQueueWait:          "Virtual-clock wait between enqueue and promotion.",
	MetricFairness:           "Max/min accumulated cost share across tenants (1 = perfectly even).",
	MetricDecision:           "Wall-clock admission decision latency.",
}

// Histogram buckets: queue waits are virtual-clock seconds (jobs wait
// minutes to hours), decision latency is wall-clock (micro- to
// milliseconds).
var (
	queueWaitBuckets = []float64{1, 10, 60, 300, 1800, 3600, 4 * 3600, 24 * 3600}
	decisionBuckets  = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}
)

// ErrQueueFull reports a submission bounced because the wait queue is
// at capacity. The HTTP layer maps it to 429.
var ErrQueueFull = errors.New("admission: wait queue full")

// InfeasibleError reports a deadline that cannot be met even on the
// last-resort configuration at current market prices. The HTTP layer
// maps it to 422 with the gap in the body.
type InfeasibleError struct {
	Job             string
	Tenant          string
	DeadlineSeconds float64
	RequiredSeconds float64
}

// GapSeconds is how far the deadline falls short of the minimum
// feasible one.
func (e *InfeasibleError) GapSeconds() float64 {
	return e.RequiredSeconds - e.DeadlineSeconds
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("admission: %s deadline %.0fs infeasible at current prices: needs %.0fs (gap %.0fs)",
		e.Job, e.DeadlineSeconds, e.RequiredSeconds, e.GapSeconds())
}

// Estimate is the backend's market consultation for one submission:
// the relative deadline the job runs under, the minimum feasible
// relative deadline (last-resort fixed + exec time), the EDF
// utilization share the job needs on the configuration the market
// chose, and that configuration's identity.
type Estimate struct {
	DeadlineSeconds float64
	RequiredSeconds float64
	// ConfigID is the deployment configuration class the market picked
	// (first decision of a fresh run); packing shares deployments only
	// within a class.
	ConfigID string
	// Demand is the EDF utilization share on ConfigID
	// (perfmodel.DeadlineUtilization). Shares above 1 occupy a full
	// deployment alone.
	Demand float64
	// ExpectedCostUSD is the provisioner's cost estimate at admission.
	ExpectedCostUSD float64
}

// Feasible reports whether the deadline clears the last-resort bound.
func (e Estimate) Feasible() bool {
	return e.DeadlineSeconds >= e.RequiredSeconds && !math.IsInf(e.RequiredSeconds, 1)
}

// Request is one admission decision's input.
type Request struct {
	JobID  string
	Tenant string
	Est    Estimate
	Now    time.Time
}

// Outcome is a successful decision: admitted onto a deployment, or
// queued at a position.
type Outcome struct {
	Queued     bool
	Deployment string
	QueuePos   int
	Shared     bool // placed onto an already-occupied deployment
}

// Promotion records a queued job admitted during a Release.
type Promotion struct {
	JobID       string
	Tenant      string
	Deployment  string
	WaitSeconds float64
}

// Config sizes the gate.
type Config struct {
	// MaxDeployments bounds the live shared-deployment pool (<=0: 16).
	MaxDeployments int
	// QueueDepth bounds the wait queue (<=0: 64).
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxDeployments <= 0 {
		c.MaxDeployments = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// waiter is one queued submission.
type waiter struct {
	jobID    string
	tenant   string
	est      Estimate
	queuedAt time.Time
	deadline time.Time // absolute: queuedAt + relative deadline
	seq      int       // FIFO tie-break
	index    int       // heap bookkeeping
}

// waitQueue is a min-heap on absolute deadline (EDF order).
type waitQueue []*waiter

func (q waitQueue) Len() int           { return len(q) }
func (q waitQueue) Less(i, j int) bool { return edfLess(q[i], q[j]) }
func (q waitQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *waitQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waitQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}

// Gate is the admission controller. All methods are safe for
// concurrent use; the internal mutex is a leaf lock (the gate calls
// out only to the registry and sink), so callers may hold their own
// locks across gate calls.
type Gate struct {
	mu     sync.Mutex
	cfg    Config
	packer *Packer
	queue  waitQueue
	byJob  map[string]*waiter
	seq    int
	costs  map[string]float64
	reg    *obs.Registry
	sink   obs.Sink
}

// NewGate builds a gate. reg and sink may be nil (metrics/events
// disabled).
func NewGate(cfg Config, reg *obs.Registry, sink obs.Sink) *Gate {
	cfg = cfg.withDefaults()
	g := &Gate{
		cfg:    cfg,
		packer: NewPacker(cfg.MaxDeployments),
		byJob:  map[string]*waiter{},
		costs:  map[string]float64{},
	}
	g.reg = reg
	g.sink = sink
	if reg != nil {
		for name, help := range metricHelp {
			reg.SetHelp(name, help)
		}
		for _, name := range []string{MetricRejectedInfeasible, MetricRejectedOverflow, MetricSharedPlacements} {
			reg.Add(name, 0)
		}
		for _, name := range []string{MetricQueueDepth, MetricDeploymentsLive, MetricPackedResidents, MetricFairness} {
			reg.SetGauge(name, 0)
		}
		reg.RegisterHistogram(MetricQueueWait, queueWaitBuckets)
		reg.RegisterHistogram(MetricDecision, decisionBuckets)
	}
	return g
}

// Submit decides one submission: *InfeasibleError (never deployable),
// ErrQueueFull (pool and queue both saturated), a queued Outcome, or
// an admitted Outcome naming the deployment the job was packed onto.
func (g *Gate) Submit(req Request) (Outcome, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if !req.Est.Feasible() {
		g.count(MetricRejected, req.Tenant)
		g.inc(MetricRejectedInfeasible)
		err := &InfeasibleError{
			Job:             req.JobID,
			Tenant:          req.Tenant,
			DeadlineSeconds: req.Est.DeadlineSeconds,
			RequiredSeconds: req.Est.RequiredSeconds,
		}
		g.emit(obs.Event{
			Type: obs.EvReject, Job: req.JobID, Tenant: req.Tenant,
			Config: req.Est.ConfigID, GapSec: err.GapSeconds(),
		})
		return Outcome{}, err
	}

	if d, ok := g.packer.Place(req.JobID, req.Est.ConfigID, req.Est.Demand); ok {
		shared := len(d.Residents()) > 1
		g.admitted(req.JobID, req.Tenant, d, 0, shared)
		return Outcome{Deployment: d.ID, Shared: shared}, nil
	}

	if len(g.queue) >= g.cfg.QueueDepth {
		g.count(MetricRejected, req.Tenant)
		g.inc(MetricRejectedOverflow)
		g.emit(obs.Event{Type: obs.EvReject, Job: req.JobID, Tenant: req.Tenant, Config: req.Est.ConfigID})
		return Outcome{}, fmt.Errorf("admission: %s: %w", req.JobID, ErrQueueFull)
	}

	w := &waiter{
		jobID:    req.JobID,
		tenant:   req.Tenant,
		est:      req.Est,
		queuedAt: req.Now,
		deadline: req.Now.Add(time.Duration(req.Est.DeadlineSeconds * float64(time.Second))),
		seq:      g.seq,
	}
	g.seq++
	heap.Push(&g.queue, w)
	g.byJob[req.JobID] = w
	pos := g.positionLocked(req.JobID)
	g.count(MetricQueued, req.Tenant)
	g.gauge(MetricQueueDepth, float64(len(g.queue)))
	g.emit(obs.Event{
		Type: obs.EvQueue, Job: req.JobID, Tenant: req.Tenant,
		Config: req.Est.ConfigID, QueuePos: pos,
	})
	return Outcome{Queued: true, QueuePos: pos}, nil
}

// Release frees a job's deployment share (or removes it from the wait
// queue) and promotes waiters in deadline order — EDF-first with
// backfill: the earliest-deadline waiter that fits is seated, and
// smaller later-deadline waiters may fill remaining gaps. Returns the
// promotions so the caller can activate them. Idempotent: releasing
// an unknown job only attempts promotion.
func (g *Gate) Release(jobID string, now time.Time) []Promotion {
	g.mu.Lock()
	defer g.mu.Unlock()

	if w, ok := g.byJob[jobID]; ok {
		heap.Remove(&g.queue, w.index)
		delete(g.byJob, jobID)
		g.gauge(MetricQueueDepth, float64(len(g.queue)))
		return nil
	}
	if d, gone := g.packer.Release(jobID); d != nil {
		g.gauge(MetricDeploymentsLive, float64(g.packer.Live()))
		g.gauge(MetricPackedResidents, float64(len(g.packer.byJob)))
		ev := obs.Event{Type: obs.EvRelease, Job: jobID, Deployment: d.ID, Config: d.ConfigID}
		ev.Done = gone // deployment torn down with the last resident
		g.emit(ev)
	}
	return g.promoteLocked(now)
}

// promoteLocked seats waiters while capacity lasts, scanning in
// deadline order so the most urgent job gets first pick but a large
// head cannot block smaller backfills behind it.
func (g *Gate) promoteLocked(now time.Time) []Promotion {
	if len(g.queue) == 0 {
		return nil
	}
	ordered := g.edfOrderLocked()
	var promos []Promotion
	for _, w := range ordered {
		d, ok := g.packer.Place(w.jobID, w.est.ConfigID, w.est.Demand)
		if !ok {
			continue
		}
		heap.Remove(&g.queue, w.index)
		delete(g.byJob, w.jobID)
		wait := now.Sub(w.queuedAt).Seconds()
		if wait < 0 {
			wait = 0
		}
		g.observe(MetricQueueWait, wait)
		g.admitted(w.jobID, w.tenant, d, wait, len(d.Residents()) > 1)
		promos = append(promos, Promotion{
			JobID: w.jobID, Tenant: w.tenant, Deployment: d.ID, WaitSeconds: wait,
		})
	}
	if len(promos) > 0 {
		g.gauge(MetricQueueDepth, float64(len(g.queue)))
	}
	return promos
}

// admitted records metrics and events for a placement (immediate or
// promoted). Callers hold g.mu.
func (g *Gate) admitted(jobID, tenant string, d *Deployment, waitSec float64, shared bool) {
	g.count(MetricAdmitted, tenant)
	if shared {
		g.inc(MetricSharedPlacements)
	}
	g.gauge(MetricDeploymentsLive, float64(g.packer.Live()))
	g.gauge(MetricPackedResidents, float64(len(g.packer.byJob)))
	g.emit(obs.Event{
		Type: obs.EvAdmit, Job: jobID, Tenant: tenant,
		Deployment: d.ID, Config: d.ConfigID, DurSec: waitSec,
	})
	g.emit(obs.Event{
		Type: obs.EvPack, Job: jobID, Tenant: tenant,
		Deployment: d.ID, Config: d.ConfigID,
		Active: int64(len(d.residents)), WorkLeft: d.used,
	})
}

// ObserveCost accrues execution spend to a tenant and refreshes the
// fairness gauge (max/min accumulated cost across tenants that have
// spent anything; 1 = perfectly even, +Inf never rendered — a tenant
// at zero is ignored until it spends).
func (g *Gate) ObserveCost(tenant string, usd float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if tenant == "" || usd <= 0 {
		return
	}
	g.costs[tenant] += usd
	if g.reg != nil {
		g.reg.AddLabeled(MetricTenantCost, "tenant", tenant, usd)
	}
	g.gauge(MetricFairness, fairness(g.costs))
}

// fairness is max/min over positive tenant costs (0 when fewer than
// one tenant has spent).
func fairness(costs map[string]float64) float64 {
	min, max := math.Inf(1), 0.0
	for _, c := range costs {
		if c <= 0 {
			continue
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max == 0 || math.IsInf(min, 1) {
		return 0
	}
	return max / min
}

// ObserveDecision records one admission decision's wall-clock latency.
func (g *Gate) ObserveDecision(wallSeconds float64) {
	// Observe is registry-locked; no g.mu needed.
	g.observe(MetricDecision, wallSeconds)
}

// Position returns a queued job's 1-based EDF position (0 = not
// queued).
func (g *Gate) Position(jobID string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.positionLocked(jobID)
}

func (g *Gate) positionLocked(jobID string) int {
	w, ok := g.byJob[jobID]
	if !ok {
		return 0
	}
	pos := 1
	for _, other := range g.queue {
		if other != w && edfLess(other, w) {
			pos++
		}
	}
	return pos
}

// edfLess compares two waiters in EDF order.
func edfLess(a, b *waiter) bool {
	if !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

// edfOrderLocked returns the waiters sorted in EDF order without
// disturbing the heap's index bookkeeping (sorting a waitQueue copy
// would, via its Swap). Callers hold g.mu.
func (g *Gate) edfOrderLocked() []*waiter {
	ordered := append([]*waiter(nil), g.queue...)
	sort.Slice(ordered, func(i, j int) bool { return edfLess(ordered[i], ordered[j]) })
	return ordered
}

// QueueDepth returns the number of waiting jobs.
func (g *Gate) QueueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

// Reseat force-places a job onto a named deployment — the
// snapshot-restore path, reproducing the pre-restart packing exactly.
func (g *Gate) Reseat(jobID, configID, deploymentID string, demand float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.packer.Seat(jobID, configID, deploymentID, demand)
	g.gauge(MetricDeploymentsLive, float64(g.packer.Live()))
	g.gauge(MetricPackedResidents, float64(len(g.packer.byJob)))
}

// Requeue restores a waiter from a snapshot, preserving its original
// enqueue time (so queue-wait accounting survives a restart). No
// counters move — the job was already counted when first queued.
func (g *Gate) Requeue(jobID, tenant string, est Estimate, queuedAt time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byJob[jobID]; dup {
		return
	}
	w := &waiter{
		jobID:    jobID,
		tenant:   tenant,
		est:      est,
		queuedAt: queuedAt,
		deadline: queuedAt.Add(time.Duration(est.DeadlineSeconds * float64(time.Second))),
		seq:      g.seq,
	}
	g.seq++
	heap.Push(&g.queue, w)
	g.byJob[jobID] = w
	g.gauge(MetricQueueDepth, float64(len(g.queue)))
}

// DeploymentView is one live deployment in a View.
type DeploymentView struct {
	ID        string   `json:"id"`
	ConfigID  string   `json:"config"`
	Used      float64  `json:"used"`
	Residents []string `json:"residents"`
}

// QueueView is one waiter in a View, in EDF order.
type QueueView struct {
	JobID      string    `json:"job"`
	Tenant     string    `json:"tenant"`
	DeadlineAt time.Time `json:"deadlineAt"`
	QueuedAt   time.Time `json:"queuedAt"`
}

// View is the gate's introspection snapshot (GET /admission).
type View struct {
	QueueDepth  int                `json:"queueDepth"`
	Deployments []DeploymentView   `json:"deployments"`
	Queue       []QueueView        `json:"queue"`
	TenantCosts map[string]float64 `json:"tenantCosts"`
	Fairness    float64            `json:"fairness"`
}

// Snapshot returns the current view.
func (g *Gate) Snapshot() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := View{
		QueueDepth:  len(g.queue),
		TenantCosts: map[string]float64{},
		Fairness:    fairness(g.costs),
	}
	for t, c := range g.costs {
		v.TenantCosts[t] = c
	}
	for _, d := range g.packer.Deployments() {
		v.Deployments = append(v.Deployments, DeploymentView{
			ID: d.ID, ConfigID: d.ConfigID, Used: d.used, Residents: d.Residents(),
		})
	}
	for _, w := range g.edfOrderLocked() {
		v.Queue = append(v.Queue, QueueView{
			JobID: w.jobID, Tenant: w.tenant, DeadlineAt: w.deadline, QueuedAt: w.queuedAt,
		})
	}
	return v
}

// QueuedAt returns a queued job's enqueue time (zero time if not
// queued) — the snapshot path persists it.
func (g *Gate) QueuedAt(jobID string) (time.Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w, ok := g.byJob[jobID]; ok {
		return w.queuedAt, true
	}
	return time.Time{}, false
}

// metric helpers — every one tolerates a nil registry.

func (g *Gate) count(name, tenant string) {
	if g.reg != nil {
		g.reg.AddLabeled(name, "tenant", tenant, 1)
	}
}

func (g *Gate) inc(name string) {
	if g.reg != nil {
		g.reg.Inc(name)
	}
}

func (g *Gate) gauge(name string, v float64) {
	if g.reg != nil {
		g.reg.SetGauge(name, v)
	}
}

func (g *Gate) observe(name string, v float64) {
	if g.reg != nil {
		g.reg.Observe(name, v)
	}
}

func (g *Gate) emit(e obs.Event) {
	if g.sink != nil {
		g.sink.Emit(e)
	}
}
