package admission_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/admission"
	"hourglass/internal/admission/arrivals"
	"hourglass/internal/scheduler"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// instantBackend prices submissions through the real market machinery
// (SystemBackend.Admit and Estimate, including the simulator's
// first-decision pass) but completes dispatched runs instantly, so
// BenchmarkControllerThroughput measures the controller's admission
// path — validate, price, pack or queue — not graph execution.
type instantBackend struct {
	scheduler.SystemBackend
}

func (b instantBackend) Run(ctx context.Context, spec scheduler.JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	return sim.RunResult{Cost: 0.25, Finished: true, Completion: start}, nil
}

// BenchmarkControllerThroughput replays a seeded multi-tenant arrival
// stream into a gated controller on the virtual clock and reports the
// sustained decision rate. scripts/bench_controller.sh freezes these
// numbers into BENCH_CONTROLLER.json and CI gates regressions; run
// with a fixed iteration count (-benchtime 2000x) for comparable
// admit/queue fractions across machines.
func BenchmarkControllerThroughput(b *testing.B) {
	sys, err := hourglass.New(hourglass.Options{Seed: 11, TraceDays: 10})
	if err != nil {
		b.Fatal(err)
	}
	required := map[string]units.Seconds{}
	for _, k := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank} {
		r, err := sys.DeadlineFor(k, 0)
		if err != nil {
			b.Fatal(err)
		}
		required[string(k)] = r
	}
	arr, err := arrivals.Spec{
		Seed:    42,
		PerHour: 2500,
		Horizon: 4 * time.Hour,
		Tenants: []arrivals.Tenant{
			{Name: "team-a", Weight: 3, SlackMin: 0.5, SlackMax: 1.5},
			{Name: "team-b", Weight: 2, SlackMin: 0.8, SlackMax: 2, InfeasibleFraction: 0.1},
			{Name: "team-c", Weight: 1, SlackMin: 1, SlackMax: 3},
		},
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}

	for _, pool := range []int{8, 64} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			vc := scheduler.NewVirtualClock(epoch)
			ctrl, err := scheduler.New(scheduler.Options{
				Backend:    instantBackend{scheduler.SystemBackend{Sys: sys}},
				Clock:      vc,
				Workers:    8,
				QueueDepth: 1024,
				Seed:       11,
				Admission:  &admission.Config{MaxDeployments: pool, QueueDepth: 256},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = ctrl.Shutdown(ctx)
			}()

			var admitted, queued, rejected int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % len(arr)
				a := arr[idx]
				if idx > 0 {
					vc.Advance(a.At - arr[idx-1].At)
				} else {
					vc.Advance(a.At)
				}
				spec := scheduler.JobSpec{
					ID:       fmt.Sprintf("bench-%07d", i),
					Kind:     hourglass.JobKind(a.Kind),
					Strategy: hourglass.StrategyHourglass,
					Slack:    a.Slack,
					Period:   scheduler.Duration(time.Hour),
					Runs:     1,
					Tenant:   a.Tenant,
				}
				if a.Infeasible {
					spec.Deadline = scheduler.Duration(
						time.Duration(a.DeadlineScale * float64(required[a.Kind].Duration())))
				}
				st, err := ctrl.Submit(spec)
				var inf *admission.InfeasibleError
				switch {
				case errors.As(err, &inf), errors.Is(err, admission.ErrQueueFull):
					rejected++
				case err != nil:
					b.Fatal(err)
				case st.Queued:
					queued++
				default:
					admitted++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/sec")
			b.ReportMetric(float64(admitted)/float64(b.N), "admit_frac")
			b.ReportMetric(float64(queued)/float64(b.N), "queued_frac")
			b.ReportMetric(float64(rejected)/float64(b.N), "reject_frac")
		})
	}
}
