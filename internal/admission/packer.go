package admission

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DeploymentCapacity is the utilization budget of one shared
// deployment. Each resident job occupies the EDF share
// perfmodel.DeadlineUtilization computes for it on the deployment's
// configuration; as long as the shares sum to at most 1 the worker
// set can be time-multiplexed deadline-first with every resident's
// deadline met, so 1.0 is the principled bin capacity rather than a
// tunable.
const DeploymentCapacity = 1.0

// capacityEps absorbs float noise when shares sum to exactly 1.
const capacityEps = 1e-9

// Deployment is one shared live worker set: a bin of utilization
// shares keyed by the configuration the market chose for its
// residents.
type Deployment struct {
	// ID is the packer-assigned identity ("dep-3"), stable across
	// snapshot/restore.
	ID string
	// ConfigID is the deployment configuration class (cloud.Config ID)
	// every resident of this deployment shares.
	ConfigID string
	// used is the summed utilization shares of the residents.
	used float64
	// residents maps job ID to its share.
	residents map[string]float64
}

// Used returns the occupied share of the deployment.
func (d *Deployment) Used() float64 { return d.used }

// Residents returns the resident job IDs, sorted.
func (d *Deployment) Residents() []string {
	out := make([]string, 0, len(d.residents))
	for id := range d.residents {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Packer assigns jobs to shared deployments by first-fit (single
// placements) and first-fit-decreasing (batches) bin-packing, bounded
// by a live-deployment pool limit. It is not safe for concurrent use;
// the Gate serializes access.
type Packer struct {
	maxDeployments int
	seq            int
	deps           []*Deployment // creation order = first-fit scan order
	byJob          map[string]*Deployment
}

// NewPacker builds a packer bounded to at most maxDeployments live
// deployments (<=0 means 16).
func NewPacker(maxDeployments int) *Packer {
	if maxDeployments <= 0 {
		maxDeployments = 16
	}
	return &Packer{maxDeployments: maxDeployments, byJob: map[string]*Deployment{}}
}

// Live returns the number of live (non-empty) deployments.
func (p *Packer) Live() int { return len(p.deps) }

// Deployments returns the live deployments in first-fit scan order.
func (p *Packer) Deployments() []*Deployment {
	return append([]*Deployment(nil), p.deps...)
}

// DeploymentFor returns the deployment hosting a job.
func (p *Packer) DeploymentFor(jobID string) (*Deployment, bool) {
	d, ok := p.byJob[jobID]
	return d, ok
}

// Place seats one job by first-fit: the oldest deployment of the same
// configuration with room takes it; otherwise a new deployment boots
// if the pool has headroom. The boolean reports success (false = the
// pool is saturated). A demand above the bin capacity is clamped to a
// full bin — the job simply never shares.
func (p *Packer) Place(jobID, configID string, demand float64) (*Deployment, bool) {
	if _, dup := p.byJob[jobID]; dup {
		return nil, false
	}
	if demand > DeploymentCapacity {
		demand = DeploymentCapacity
	}
	if demand <= 0 {
		demand = capacityEps
	}
	for _, d := range p.deps {
		if d.ConfigID == configID && d.used+demand <= DeploymentCapacity+capacityEps {
			p.seat(d, jobID, demand)
			return d, true
		}
	}
	if len(p.deps) >= p.maxDeployments {
		return nil, false
	}
	d := p.boot(configID)
	p.seat(d, jobID, demand)
	return d, true
}

// PlaceItem is one job in a batch placement.
type PlaceItem struct {
	JobID    string
	ConfigID string
	Demand   float64
}

// PlaceBatch packs a batch first-fit-decreasing: items sorted by
// decreasing demand (job ID tie-break for determinism), each placed
// first-fit. Items the pool cannot hold are returned unplaced, in
// sorted order, for the caller to queue.
func (p *Packer) PlaceBatch(items []PlaceItem) (placed map[string]*Deployment, unplaced []PlaceItem) {
	sorted := append([]PlaceItem(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Demand != sorted[j].Demand {
			return sorted[i].Demand > sorted[j].Demand
		}
		return sorted[i].JobID < sorted[j].JobID
	})
	placed = map[string]*Deployment{}
	for _, it := range sorted {
		if d, ok := p.Place(it.JobID, it.ConfigID, it.Demand); ok {
			placed[it.JobID] = d
		} else {
			unplaced = append(unplaced, it)
		}
	}
	return placed, unplaced
}

// Release removes a job from its deployment, tearing the deployment
// down once empty (the pool slot frees). Returns the deployment the
// job occupied (nil if the job was not placed) and whether the
// deployment is now gone.
func (p *Packer) Release(jobID string) (*Deployment, bool) {
	d, ok := p.byJob[jobID]
	if !ok {
		return nil, false
	}
	delete(p.byJob, jobID)
	d.used -= d.residents[jobID]
	if d.used < 0 {
		d.used = 0
	}
	delete(d.residents, jobID)
	if len(d.residents) > 0 {
		return d, false
	}
	for i, dd := range p.deps {
		if dd == d {
			p.deps = append(p.deps[:i], p.deps[i+1:]...)
			break
		}
	}
	return d, true
}

// Seat force-places a job into a named deployment, creating it on
// first reference — the snapshot-restore path, which must reproduce
// the pre-restart placement exactly rather than re-pack. The pool
// bound is not enforced here: a snapshot is trusted.
func (p *Packer) Seat(jobID, configID, deploymentID string, demand float64) *Deployment {
	var d *Deployment
	for _, dd := range p.deps {
		if dd.ID == deploymentID {
			d = dd
			break
		}
	}
	if d == nil {
		d = &Deployment{ID: deploymentID, ConfigID: configID, residents: map[string]float64{}}
		p.deps = append(p.deps, d)
		if n, err := strconv.Atoi(strings.TrimPrefix(deploymentID, "dep-")); err == nil && n >= p.seq {
			p.seq = n + 1
		}
	}
	p.seat(d, jobID, demand)
	return d
}

func (p *Packer) boot(configID string) *Deployment {
	d := &Deployment{
		ID:        fmt.Sprintf("dep-%d", p.seq),
		ConfigID:  configID,
		residents: map[string]float64{},
	}
	p.seq++
	p.deps = append(p.deps, d)
	return d
}

func (p *Packer) seat(d *Deployment, jobID string, demand float64) {
	d.residents[jobID] = demand
	d.used += demand
	p.byJob[jobID] = d
}
