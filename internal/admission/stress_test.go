package admission_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/admission"
	"hourglass/internal/admission/arrivals"
	"hourglass/internal/obs"
	"hourglass/internal/scheduler"
	"hourglass/internal/units"
)

// -arrivals-seed-base rotates the soak's stream seeds; nightly CI
// passes a date-derived base so every night replays different
// arrival patterns (a failure reproduces from the logged seed).
var arrivalsSeedBase = flag.Int64("arrivals-seed-base", 1000, "base seed for the rotating arrival soak")

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// eventLog is a concurrency-safe obs sink.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *eventLog) Emit(e obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) byType(typ string) []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obs.Event
	for _, e := range l.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func testContext(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stressOutcome tallies one open-loop arrival stream driven through a
// gated controller on the virtual clock.
type stressOutcome struct {
	admitted, queued   int
	rejectedInfeasible int
	rejectedOverflow   int
	tenantsSeen        map[string]bool
	submittedJobs      int
}

// driveArrivals replays a generated stream into the controller,
// advancing the virtual clock to each arrival instant. Infeasible
// arrivals carry an explicit deadline under the per-kind feasibility
// bound; every such submission must come back as InfeasibleError.
func driveArrivals(t *testing.T, ctrl *scheduler.Controller, vc *scheduler.VirtualClock,
	sys *hourglass.System, arr []arrivals.Arrival, label string) stressOutcome {
	t.Helper()
	required := map[string]units.Seconds{}
	for _, k := range []hourglass.JobKind{hourglass.SSSP, hourglass.PageRank, hourglass.GC} {
		// Slack 0 resolves to exactly fixed + exec on the last-resort
		// configuration — the feasibility bound.
		r, err := sys.DeadlineFor(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		required[string(k)] = r
	}

	out := stressOutcome{tenantsSeen: map[string]bool{}}
	var last time.Duration
	for i, a := range arr {
		vc.Advance(a.At - last)
		last = a.At
		spec := scheduler.JobSpec{
			ID:       fmt.Sprintf("%s-%s-%04d", label, a.Tenant, i),
			Kind:     hourglass.JobKind(a.Kind),
			Strategy: hourglass.StrategyHourglass,
			Slack:    a.Slack,
			Period:   scheduler.Duration(time.Hour),
			Runs:     1,
			Tenant:   a.Tenant,
		}
		if a.Infeasible {
			short := time.Duration(a.DeadlineScale * float64(required[a.Kind].Duration()))
			spec.Deadline = scheduler.Duration(short)
		}
		st, err := ctrl.Submit(spec)
		var inf *admission.InfeasibleError
		switch {
		case errors.As(err, &inf):
			out.rejectedInfeasible++
			if !a.Infeasible {
				t.Fatalf("feasible arrival %d rejected as infeasible: %v", i, err)
			}
			if _, ok := ctrl.Get(spec.ID); ok {
				t.Fatalf("rejected job %s entered the table", spec.ID)
			}
		case errors.Is(err, admission.ErrQueueFull):
			out.rejectedOverflow++
		case err != nil:
			t.Fatalf("arrival %d: %v", i, err)
		case st.Queued:
			if a.Infeasible {
				t.Fatalf("infeasible arrival %d queued instead of rejected", i)
			}
			out.queued++
			out.tenantsSeen[a.Tenant] = true
			out.submittedJobs++
		default:
			if a.Infeasible {
				t.Fatalf("infeasible arrival %d admitted (deadline %v, required %v)",
					i, time.Duration(spec.Deadline), required[a.Kind])
			}
			if st.Deployment == "" {
				t.Fatalf("admitted job %s has no deployment", spec.ID)
			}
			out.admitted++
			out.tenantsSeen[a.Tenant] = true
			out.submittedJobs++
		}
		if a.Infeasible && err == nil {
			t.Fatalf("infeasible arrival %d not rejected", i)
		}
	}
	return out
}

// TestOpenLoopStress is the acceptance stress: thousands of
// virtual-clock arrivals across three tenants through the real
// pricing machinery, asserting every infeasible submission bounces
// before deployment, no admitted job misses its deadline, and
// concurrent recurrences demonstrably share deployments.
func TestOpenLoopStress(t *testing.T) {
	perHour, horizon := 2500.0, time.Hour
	if testing.Short() {
		perHour = 400
	}
	sys, err := hourglass.New(hourglass.Options{Seed: 11, TraceDays: 10})
	if err != nil {
		t.Fatal(err)
	}
	sink := &eventLog{}
	vc := scheduler.NewVirtualClock(epoch)
	ctrl, err := scheduler.New(scheduler.Options{
		Backend:    scheduler.SystemBackend{Sys: sys},
		Clock:      vc,
		Workers:    8,
		QueueDepth: 512,
		Seed:       11,
		Sink:       sink,
		Admission:  &admission.Config{MaxDeployments: 6, QueueDepth: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown(testContext(t))

	stream := arrivals.Spec{
		Seed:    42,
		PerHour: perHour,
		Horizon: horizon,
		Tenants: []arrivals.Tenant{
			{Name: "team-a", Weight: 3, SlackMin: 0.5, SlackMax: 1.5},
			{Name: "team-b", Weight: 2, SlackMin: 0.8, SlackMax: 2, InfeasibleFraction: 0.15},
			{Name: "team-c", Weight: 1, SlackMin: 1, SlackMax: 3},
		},
	}
	arr, err := stream.Generate()
	if err != nil {
		t.Fatal(err)
	}
	out := driveArrivals(t, ctrl, vc, sys, arr, "stress")

	total := out.admitted + out.queued + out.rejectedInfeasible + out.rejectedOverflow
	if !testing.Short() && total < 2000 {
		t.Fatalf("only %d arrivals decided (admitted %d, queued %d, infeasible %d, overflow %d), want >= 2000",
			total, out.admitted, out.queued, out.rejectedInfeasible, out.rejectedOverflow)
	}
	if len(out.tenantsSeen) < 3 {
		t.Fatalf("only %d tenants admitted/queued, want >= 3", len(out.tenantsSeen))
	}
	if out.rejectedInfeasible == 0 {
		t.Fatal("stream produced no infeasible rejections")
	}

	// Drain: every job left in the table has Runs=1, so completions
	// release deployment shares and pull the queue dry.
	waitFor(t, "all admitted jobs to finish", func() bool {
		for _, st := range ctrl.List() {
			if !st.Done {
				return false
			}
		}
		return true
	})

	misses, failures := 0, 0
	for _, st := range ctrl.List() {
		misses += st.Agg.Missed
		failures += st.Agg.Failed
	}
	if misses != 0 {
		t.Errorf("%d deadline misses among admitted jobs, want 0", misses)
	}
	if failures != 0 {
		t.Errorf("%d failed runs among admitted jobs, want 0", failures)
	}

	// Packing proof from the event stream: at least one EvPack landed
	// on a deployment that already had a resident.
	sharedPacks := 0
	for _, e := range sink.byType(obs.EvPack) {
		if e.Active >= 2 {
			sharedPacks++
		}
	}
	if sharedPacks == 0 {
		t.Error("no EvPack event shows >= 2 concurrent residents on one deployment")
	}
	admits := sink.byType(obs.EvAdmit)
	if len(admits) != out.admitted+out.queued {
		t.Errorf("EvAdmit count %d != admitted %d + promoted %d", len(admits), out.admitted, out.queued)
	}
	if got := len(sink.byType(obs.EvReject)); got != out.rejectedInfeasible+out.rejectedOverflow {
		t.Errorf("EvReject count %d != %d", got, out.rejectedInfeasible+out.rejectedOverflow)
	}
	t.Logf("stress: %d arrivals → %d admitted, %d queued, %d infeasible, %d overflow; %d shared packs",
		total, out.admitted, out.queued, out.rejectedInfeasible, out.rejectedOverflow, sharedPacks)
}

// TestArrivalSoak replays several smaller rotating-seed streams — the
// nightly workflow varies -arrivals-seed-base so each night exercises
// fresh arrival patterns.
func TestArrivalSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for i := int64(0); i < 3; i++ {
		seed := *arrivalsSeedBase + i
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sys, err := hourglass.New(hourglass.Options{Seed: seed, TraceDays: 10})
			if err != nil {
				t.Fatal(err)
			}
			vc := scheduler.NewVirtualClock(epoch)
			ctrl, err := scheduler.New(scheduler.Options{
				Backend:    scheduler.SystemBackend{Sys: sys},
				Clock:      vc,
				Workers:    4,
				QueueDepth: 256,
				Seed:       seed,
				Admission:  &admission.Config{MaxDeployments: 4, QueueDepth: 32},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ctrl.Shutdown(testContext(t))
			arr, err := arrivals.Spec{
				Seed:    seed,
				PerHour: 700,
				Horizon: 30 * time.Minute,
				Tenants: []arrivals.Tenant{
					{Name: "t1", Weight: 2, SlackMin: 0.5, SlackMax: 1.5, InfeasibleFraction: 0.1},
					{Name: "t2", Weight: 1, SlackMin: 1, SlackMax: 2.5},
					{Name: "t3", Weight: 1, SlackMin: 0.8, SlackMax: 2},
				},
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			out := driveArrivals(t, ctrl, vc, sys, arr, "soak")
			waitFor(t, "soak drain", func() bool {
				for _, st := range ctrl.List() {
					if !st.Done {
						return false
					}
				}
				return true
			})
			misses := 0
			for _, st := range ctrl.List() {
				misses += st.Agg.Missed
			}
			if misses != 0 {
				t.Errorf("seed %d: %d deadline misses", seed, misses)
			}
			if got := len(ctrl.List()); got != out.submittedJobs {
				t.Errorf("seed %d: table has %d jobs, %d were accepted", seed, got, out.submittedJobs)
			}
		})
	}
}
