package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hourglass/internal/obs"
)

// collector is a thread-safe event sink for assertions.
type collector struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collector) Emit(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) byType(typ string) []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.Event
	for _, e := range c.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

var t0 = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)

func feasible(deadline, demand float64) Estimate {
	return Estimate{
		DeadlineSeconds: deadline,
		RequiredSeconds: 600,
		ConfigID:        "spot/r4.4xlarge x8",
		Demand:          demand,
	}
}

func TestPackerFirstFitDecreasing(t *testing.T) {
	p := NewPacker(8)
	placed, unplaced := p.PlaceBatch([]PlaceItem{
		{JobID: "a", ConfigID: "c1", Demand: 0.3},
		{JobID: "b", ConfigID: "c1", Demand: 0.6},
		{JobID: "c", ConfigID: "c1", Demand: 0.5},
		{JobID: "d", ConfigID: "c1", Demand: 0.4},
		{JobID: "e", ConfigID: "c1", Demand: 0.2},
	})
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	// FFD order b(0.6) c(0.5) d(0.4) a(0.3) e(0.2): b→dep-0, c→dep-1,
	// d→dep-0 (1.0), a→dep-1 (0.8), e→dep-1 (1.0). Two bins, both full.
	if p.Live() != 2 {
		t.Fatalf("FFD used %d deployments, want 2", p.Live())
	}
	if placed["b"] != placed["d"] {
		t.Errorf("b and d should share: %s vs %s", placed["b"].ID, placed["d"].ID)
	}
	if placed["c"] != placed["a"] || placed["c"] != placed["e"] {
		t.Errorf("c, a, e should share one deployment")
	}
	for _, d := range p.Deployments() {
		if d.Used() > DeploymentCapacity+capacityEps {
			t.Errorf("deployment %s over capacity: %f", d.ID, d.Used())
		}
	}
}

func TestPackerConfigClassesNeverShare(t *testing.T) {
	p := NewPacker(8)
	d1, ok1 := p.Place("a", "c1", 0.2)
	d2, ok2 := p.Place("b", "c2", 0.2)
	if !ok1 || !ok2 {
		t.Fatal("placements failed")
	}
	if d1.ID == d2.ID {
		t.Fatal("different config classes packed onto one deployment")
	}
}

func TestPackerPoolBoundAndRelease(t *testing.T) {
	p := NewPacker(2)
	p.Place("a", "c1", 1.0)
	p.Place("b", "c1", 1.0)
	if _, ok := p.Place("c", "c1", 0.5); ok {
		t.Fatal("placed past the pool bound")
	}
	// Oversized demand is clamped to a full bin, so "a" never shared.
	if _, ok := p.Place("big", "c1", 3.0); ok {
		t.Fatal("oversized job placed with a saturated pool")
	}
	if d, gone := p.Release("a"); d == nil || !gone {
		t.Fatalf("releasing sole resident should tear down: d=%v gone=%v", d, gone)
	}
	if _, ok := p.Place("c", "c1", 0.5); !ok {
		t.Fatal("release did not free a pool slot")
	}
}

func TestPackerSeatRecoversSequence(t *testing.T) {
	p := NewPacker(4)
	p.Seat("a", "c1", "dep-7", 0.5)
	d, ok := p.Place("b", "c2", 0.5)
	if !ok {
		t.Fatal("place failed")
	}
	if d.ID != "dep-8" {
		t.Fatalf("sequence not recovered from seat: got %s, want dep-8", d.ID)
	}
	if got, _ := p.DeploymentFor("a"); got.ID != "dep-7" {
		t.Fatalf("seated job on %s, want dep-7", got.ID)
	}
}

func TestGateInfeasibleReject(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &collector{}
	g := NewGate(Config{}, reg, sink)
	est := feasible(400, 0.5) // required 600 > deadline 400
	_, err := g.Submit(Request{JobID: "j1", Tenant: "t1", Est: est, Now: t0})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	if inf.GapSeconds() != 200 {
		t.Errorf("gap = %f, want 200", inf.GapSeconds())
	}
	if v := reg.Value(MetricRejectedInfeasible); v != 1 {
		t.Errorf("%s = %f, want 1", MetricRejectedInfeasible, v)
	}
	if v := reg.LabeledValue(MetricRejected, "t1"); v != 1 {
		t.Errorf("%s{t1} = %f, want 1", MetricRejected, v)
	}
	rejects := sink.byType(obs.EvReject)
	if len(rejects) != 1 || rejects[0].GapSec != 200 {
		t.Errorf("reject events = %+v", rejects)
	}
}

func TestGateQueuePromoteEDF(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &collector{}
	g := NewGate(Config{MaxDeployments: 1, QueueDepth: 8}, reg, sink)

	out, err := g.Submit(Request{JobID: "a", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	if err != nil || out.Queued {
		t.Fatalf("a: out=%+v err=%v", out, err)
	}
	// b (late deadline) queues first, c (early deadline) jumps ahead.
	outB, err := g.Submit(Request{JobID: "b", Tenant: "t1", Est: feasible(7200, 1.0), Now: t0})
	if err != nil || !outB.Queued || outB.QueuePos != 1 {
		t.Fatalf("b: out=%+v err=%v", outB, err)
	}
	outC, err := g.Submit(Request{JobID: "c", Tenant: "t2", Est: feasible(1800, 1.0), Now: t0})
	if err != nil || !outC.Queued || outC.QueuePos != 1 {
		t.Fatalf("c should queue at position 1: out=%+v err=%v", outC, err)
	}
	if pos := g.Position("b"); pos != 2 {
		t.Fatalf("b pushed to position %d, want 2", pos)
	}

	promos := g.Release("a", t0.Add(30*time.Second))
	if len(promos) != 1 || promos[0].JobID != "c" {
		t.Fatalf("EDF promotion order wrong: %+v", promos)
	}
	if promos[0].WaitSeconds != 30 {
		t.Errorf("wait = %f, want 30", promos[0].WaitSeconds)
	}
	if g.QueueDepth() != 1 {
		t.Errorf("queue depth = %d, want 1 (b still waiting)", g.QueueDepth())
	}
	if got := reg.HistogramCount(MetricQueueWait); got != 1 {
		t.Errorf("queue-wait observations = %d, want 1", got)
	}
}

func TestGatePromotionBackfill(t *testing.T) {
	g := NewGate(Config{MaxDeployments: 1, QueueDepth: 8}, nil, nil)
	g.Submit(Request{JobID: "a", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	// Head waiter needs a full bin; the two behind it fit in one.
	g.Submit(Request{JobID: "big", Tenant: "t1", Est: feasible(1800, 1.0), Now: t0})
	g.Submit(Request{JobID: "s1", Tenant: "t1", Est: feasible(3600, 0.4), Now: t0})
	g.Submit(Request{JobID: "s2", Tenant: "t1", Est: feasible(3600, 0.4), Now: t0})

	promos := g.Release("a", t0.Add(time.Minute))
	if len(promos) != 1 || promos[0].JobID != "big" {
		t.Fatalf("head should promote first: %+v", promos)
	}
	promos = g.Release("big", t0.Add(2*time.Minute))
	if len(promos) != 2 {
		t.Fatalf("backfill should seat both small waiters: %+v", promos)
	}
	if promos[0].Deployment != promos[1].Deployment {
		t.Errorf("small waiters should share one deployment: %+v", promos)
	}
}

func TestGateOverflow(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(Config{MaxDeployments: 1, QueueDepth: 1}, reg, nil)
	g.Submit(Request{JobID: "a", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	g.Submit(Request{JobID: "b", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	_, err := g.Submit(Request{JobID: "c", Tenant: "t2", Est: feasible(3600, 1.0), Now: t0})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if v := reg.Value(MetricRejectedOverflow); v != 1 {
		t.Errorf("%s = %f, want 1", MetricRejectedOverflow, v)
	}
}

func TestGateReleaseRemovesQueued(t *testing.T) {
	g := NewGate(Config{MaxDeployments: 1, QueueDepth: 8}, nil, nil)
	g.Submit(Request{JobID: "a", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	g.Submit(Request{JobID: "b", Tenant: "t1", Est: feasible(3600, 1.0), Now: t0})
	if promos := g.Release("b", t0); promos != nil {
		t.Fatalf("removing a waiter must not promote: %+v", promos)
	}
	if g.QueueDepth() != 0 {
		t.Errorf("queue depth = %d, want 0", g.QueueDepth())
	}
	// Releasing an unknown job is a no-op promotion attempt.
	if promos := g.Release("ghost", t0); promos != nil {
		t.Errorf("ghost release promoted: %+v", promos)
	}
}

func TestGateFairnessGauge(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(Config{}, reg, nil)
	g.ObserveCost("t1", 3)
	g.ObserveCost("t2", 1)
	g.ObserveCost("t2", 0.5)
	if v := reg.Value(MetricFairness); v != 2 {
		t.Errorf("fairness = %f, want 2 (3 / 1.5)", v)
	}
	if v := reg.LabeledValue(MetricTenantCost, "t1"); v != 3 {
		t.Errorf("%s{t1} = %f, want 3", MetricTenantCost, v)
	}
	view := g.Snapshot()
	if view.Fairness != 2 || view.TenantCosts["t2"] != 1.5 {
		t.Errorf("view = %+v", view)
	}
}

func TestGateSharedPlacementEvents(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &collector{}
	g := NewGate(Config{}, reg, sink)
	out1, _ := g.Submit(Request{JobID: "a", Tenant: "t1", Est: feasible(3600, 0.4), Now: t0})
	out2, _ := g.Submit(Request{JobID: "b", Tenant: "t2", Est: feasible(3600, 0.4), Now: t0})
	if out1.Deployment != out2.Deployment {
		t.Fatalf("expected shared deployment: %+v vs %+v", out1, out2)
	}
	if !out2.Shared {
		t.Error("second placement not marked shared")
	}
	if v := reg.Value(MetricSharedPlacements); v != 1 {
		t.Errorf("%s = %f, want 1", MetricSharedPlacements, v)
	}
	packs := sink.byType(obs.EvPack)
	if len(packs) != 2 || packs[1].Active != 2 {
		t.Fatalf("pack events = %+v", packs)
	}
	g.Release("a", t0)
	g.Release("b", t0)
	rels := sink.byType(obs.EvRelease)
	if len(rels) != 2 || rels[0].Done || !rels[1].Done {
		t.Fatalf("release events = %+v", rels)
	}
}

func TestGateRequeueAndReseat(t *testing.T) {
	g := NewGate(Config{MaxDeployments: 2}, nil, nil)
	g.Reseat("a", "c1", "dep-3", 0.7)
	g.Requeue("w", "t1", feasible(3600, 0.7), t0)
	if g.Position("w") != 1 {
		t.Fatalf("requeued waiter position = %d", g.Position("w"))
	}
	if at, ok := g.QueuedAt("w"); !ok || !at.Equal(t0) {
		t.Fatalf("queuedAt = %v %v", at, ok)
	}
	// Releasing the reseated job promotes the restored waiter.
	promos := g.Release("a", t0.Add(time.Hour))
	if len(promos) != 1 || promos[0].JobID != "w" || promos[0].WaitSeconds != 3600 {
		t.Fatalf("promotions = %+v", promos)
	}
	view := g.Snapshot()
	if len(view.Deployments) != 1 || view.Deployments[0].Residents[0] != "w" {
		t.Fatalf("view = %+v", view)
	}
}
