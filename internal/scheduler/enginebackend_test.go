package scheduler_test

// EngineBackend tests: the controller drives real engine executions
// through the eviction-aware runtime instead of the abstract
// simulator, and recurrences still finish, bill, and record.

import (
	"context"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/faultinject"
	"hourglass/internal/scheduler"
	"hourglass/internal/units"
)

func TestEngineBackendRunsAllKinds(t *testing.T) {
	sys, err := hourglass.New(hourglass.Options{Seed: 5, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	be := &scheduler.EngineBackend{Sys: sys, GraphScale: 9, Logf: t.Logf}
	for _, kind := range []hourglass.JobKind{hourglass.PageRank, hourglass.SSSP, hourglass.GC} {
		t.Run(string(kind), func(t *testing.T) {
			spec := scheduler.JobSpec{
				ID: "t-" + string(kind), Kind: kind,
				Strategy: hourglass.StrategyHourglass, Slack: 0.5,
				Period: scheduler.Duration(30 * time.Minute), Runs: 1,
			}
			deadline, horizon, baseline, err := be.Admit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if deadline <= 0 || horizon <= 0 || baseline <= 0 {
				t.Fatalf("admission constants: dl=%v hz=%v base=%v", deadline, horizon, baseline)
			}
			res, err := be.Run(context.Background(), spec, 0, deadline)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Finished {
				t.Fatalf("run did not finish: %+v", res)
			}
			if res.Cost <= 0 {
				t.Fatalf("no cost billed: %+v", res)
			}
			if res.Reconfigs < 1 || res.Decisions < 1 {
				t.Fatalf("no deployments recorded: %+v", res)
			}
		})
	}
}

// TestControllerWithEngineBackend wires the backend into a live
// controller on a virtual clock: two recurrences of a real PageRank
// execution, with a fault-injected checkpoint store.
func TestControllerWithEngineBackend(t *testing.T) {
	sys, err := hourglass.New(hourglass.Options{Seed: 6, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	be := &scheduler.EngineBackend{
		Sys:        sys,
		GraphScale: 9,
		Store: faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{
			Seed: 9, PError: 0.2, PWriteCorrupt: 0.05, PReadCorrupt: 0.05,
			MaxLatency: units.Seconds(2), MaxConsecutive: 2,
		}),
		Logf: t.Logf,
	}
	vc := scheduler.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	ctrl, err := scheduler.New(scheduler.Options{
		Backend: be, Clock: vc, Workers: 2, Seed: 6, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ctrl.Shutdown(ctx)
	}()

	st, err := ctrl.Submit(scheduler.JobSpec{
		Kind: hourglass.PageRank, Strategy: hourglass.StrategyHourglass,
		Slack: 0.5, Period: scheduler.Duration(30 * time.Minute), Runs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(30 * time.Minute)
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, ok := ctrl.Get(st.Spec.ID)
		if ok && cur.Completed == 2 {
			if cur.Agg.Failed != 0 {
				t.Fatalf("failed recurrences: %+v", cur.Agg)
			}
			if cur.Agg.CostUSD <= 0 {
				t.Fatalf("no cost aggregated: %+v", cur.Agg)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", cur)
		}
		time.Sleep(3 * time.Millisecond)
	}
}
