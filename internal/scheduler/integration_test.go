package scheduler_test

// The ISSUE-1 acceptance test: boot the daemon on a virtual clock,
// submit recurrent jobs over HTTP, advance time through three
// recurrences each, and assert histories, metrics, graceful shutdown
// and the snapshot/restore round trip — all against the real
// hourglass.System and market.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/scheduler"
)

func mustJSON(t *testing.T, resp *http.Response, wantCode int, into any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("status %d (want %d): %s", resp.StatusCode, wantCode, buf.String())
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
}

func postJob(t *testing.T, base string, spec string) scheduler.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st scheduler.JobStatus
	mustJSON(t, resp, http.StatusCreated, &st)
	return st
}

func getHistory(t *testing.T, base, id string) []scheduler.RunRecord {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist []scheduler.RunRecord
	mustJSON(t, resp, http.StatusOK, &hist)
	return hist
}

func waitHistoryLen(t *testing.T, base, id string, n int) []scheduler.RunRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if hist := getHistory(t, base, id); len(hist) >= n {
			return hist
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %d history entries (have %d)",
		id, n, len(getHistory(t, base, id)))
	return nil
}

// metricValue scrapes one sample from the Prometheus exposition.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, buf.String())
	return 0
}

func TestDaemonIntegration(t *testing.T) {
	sys, err := hourglass.New(hourglass.Options{Seed: 11, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	vc := scheduler.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	store := cloud.NewDatastore()
	newController := func() *scheduler.Controller {
		c, err := scheduler.New(scheduler.Options{
			Backend: scheduler.SystemBackend{Sys: sys},
			Clock:   vc,
			Workers: 3,
			Seed:    11,
			Store:   store,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ctrl := newController()
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	// Health before anything else.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	mustJSON(t, resp, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	// Two recurrent jobs, different kinds and strategies, same period
	// so one clock sweep drives both.
	pr := postJob(t, srv.URL,
		`{"kind":"pagerank","strategy":"hourglass","slack":0.6,"period":"30m","runs":3}`)
	ss := postJob(t, srv.URL,
		`{"kind":"sssp","strategy":"ondemand","slack":0.5,"period":"30m","runs":3}`)
	if pr.Spec.ID == ss.Spec.ID {
		t.Fatalf("duplicate IDs issued: %s", pr.Spec.ID)
	}

	// A bad spec is rejected at admission, not mid-batch.
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"pagerank","strategy":"warp-drive","slack":0.5,"period":"30m"}`))
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusBadRequest, nil)

	// Recurrence 1 fires at submit; advance the virtual clock through
	// two more periods for three recurrences each.
	waitHistoryLen(t, srv.URL, pr.Spec.ID, 1)
	waitHistoryLen(t, srv.URL, ss.Spec.ID, 1)
	vc.Advance(30 * time.Minute)
	waitHistoryLen(t, srv.URL, pr.Spec.ID, 2)
	waitHistoryLen(t, srv.URL, ss.Spec.ID, 2)
	vc.Advance(30 * time.Minute)
	prHist := waitHistoryLen(t, srv.URL, pr.Spec.ID, 3)
	ssHist := waitHistoryLen(t, srv.URL, ss.Spec.ID, 3)

	if len(prHist) != 3 || len(ssHist) != 3 {
		t.Fatalf("history lengths %d/%d, want 3/3", len(prHist), len(ssHist))
	}
	for _, hist := range [][]scheduler.RunRecord{prHist, ssHist} {
		for _, rec := range hist {
			if rec.Error != "" || !rec.Finished {
				t.Errorf("recurrence failed: %+v", rec)
			}
			if rec.Cost <= 0 || rec.NormCost <= 0 {
				t.Errorf("no cost recorded: %+v", rec)
			}
		}
	}

	// Per-job status: both exhausted and done.
	var prStatus scheduler.JobStatus
	resp, err = http.Get(srv.URL + "/jobs/" + pr.Spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &prStatus)
	if !prStatus.Done || prStatus.Completed != 3 || prStatus.NextRun != nil {
		t.Errorf("pagerank status: %+v", prStatus)
	}
	if prStatus.Agg.MeanNormCost <= 0 || prStatus.Agg.MeanNormCost >= 1 {
		t.Errorf("hourglass strategy should beat the on-demand baseline: norm %.3f",
			prStatus.Agg.MeanNormCost)
	}

	// Control-plane list and metrics counters.
	var list []scheduler.JobStatus
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &list)
	if len(list) != 2 {
		t.Fatalf("job list has %d entries", len(list))
	}
	if v := metricValue(t, srv.URL, "hourglass_runs_started_total"); v != 6 {
		t.Errorf("runs started %v, want 6", v)
	}
	if v := metricValue(t, srv.URL, "hourglass_runs_finished_total"); v != 6 {
		t.Errorf("runs finished %v, want 6", v)
	}
	if v := metricValue(t, srv.URL, "hourglass_deadline_missed_total"); v != 0 {
		t.Errorf("deadline misses %v, want 0", v)
	}
	if v := metricValue(t, srv.URL, "hourglass_cost_usd_total"); v <= 0 {
		t.Errorf("cost total %v", v)
	}
	if v := metricValue(t, srv.URL, "hourglass_jobs_active"); v != 0 {
		t.Errorf("active gauge %v, want 0 (both jobs done)", v)
	}
	if v := metricValue(t, srv.URL, "hourglass_run_duration_seconds_count"); v != 6 {
		t.Errorf("latency histogram count %v, want 6", v)
	}

	// Graceful shutdown writes the snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ctrl.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !store.Exists("scheduler/state.json") {
		t.Fatal("no snapshot in the datastore after shutdown")
	}

	// Restore: a fresh daemon over the same store resumes the table.
	ctrl2 := newController()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ctrl2.Shutdown(ctx)
	}()
	srv2 := httptest.NewServer(ctrl2.Handler())
	defer srv2.Close()

	var restored []scheduler.JobStatus
	resp, err = http.Get(srv2.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &restored)
	if len(restored) != 2 {
		t.Fatalf("restored %d jobs, want 2", len(restored))
	}
	for _, st := range restored {
		if !st.Done || st.Completed != 3 {
			t.Errorf("restored job %s: %+v", st.Spec.ID, st)
		}
	}
	h := waitHistoryLen(t, srv2.URL, pr.Spec.ID, 3)
	if len(h) != 3 {
		t.Fatalf("restored history length %d", len(h))
	}
	// Restored runs replay identical trace offsets (index-derived, not
	// order-derived).
	for i := range h {
		if h[i].Offset != prHist[i].Offset {
			t.Errorf("recurrence %d offset drifted across restore: %v vs %v",
				i, h[i].Offset, prHist[i].Offset)
		}
	}
	// And DELETE works on the restored table.
	req, _ := http.NewRequest(http.MethodDelete, srv2.URL+"/jobs/"+ss.Spec.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv2.URL + "/jobs/" + ss.Spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", resp.StatusCode)
	}
}

// TestDaemonConcurrentJobsShareOneSystem exercises the concurrency
// fix on hourglass.System: many jobs of all three kinds running on
// overlapping workers against a single System (run under -race).
func TestDaemonConcurrentJobsShareOneSystem(t *testing.T) {
	sys, err := hourglass.New(hourglass.Options{Seed: 3, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	vc := scheduler.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	ctrl, err := scheduler.New(scheduler.Options{
		Backend: scheduler.SystemBackend{Sys: sys},
		Clock:   vc,
		Workers: 8,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ctrl.Shutdown(ctx)
	}()

	kinds := []hourglass.JobKind{hourglass.PageRank, hourglass.SSSP, hourglass.GC}
	ids := make([]string, 6)
	for i := range ids {
		st, err := ctrl.Submit(scheduler.JobSpec{
			Kind:     kinds[i%len(kinds)],
			Strategy: hourglass.StrategyHourglass,
			Slack:    0.5,
			Period:   scheduler.Duration(20 * time.Minute),
			Runs:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.Spec.ID
	}
	vc.Advance(20 * time.Minute)
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			st, ok := ctrl.Get(id)
			if ok && st.Completed == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck: %+v", id, st)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}
	if v := ctrl.Metrics().Value(scheduler.MetricRunsFailed); v != 0 {
		t.Fatalf("%v failed runs", v)
	}
}
