package scheduler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hourglass/internal/admission"
	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

// estBackend is a stub backend with a deterministic market estimate:
// required seconds and the per-job utilization share are fixed, so
// admission outcomes are scripted by deadlines and pool sizing alone.
type estBackend struct {
	stubBackend
	required float64
	demand   float64
}

func (b *estBackend) Estimate(spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error) {
	return admission.Estimate{
		DeadlineSeconds: float64(deadline),
		RequiredSeconds: b.required,
		ConfigID:        "od/r4.8xlarge x4",
		Demand:          b.demand,
	}, nil
}

// newGatedController builds a controller with the admission gate and
// a short shutdown budget (blocked stub runs only unblock on cancel).
func newGatedController(t *testing.T, b Backend, vc *VirtualClock, store cloud.BlobStore, cfg admission.Config) *Controller {
	t.Helper()
	c, err := New(Options{
		Backend: b, Clock: vc, Workers: 2, Seed: 7,
		Store: store, Admission: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c
}

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestAdmissionHTTPSurface(t *testing.T) {
	b := &estBackend{required: 500, demand: 1.0}
	b.block = true // runs park, so seats stay held until DELETE
	c := newGatedController(t, b, NewVirtualClock(epoch), nil, admission.Config{MaxDeployments: 1, QueueDepth: 1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Admitted: 201 with the deployment in the body.
	resp, body := postJob(t, srv, `{"id":"a","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status = %d, want 201 (%v)", resp.StatusCode, body)
	}
	if body["deployment"] != "dep-0" {
		t.Errorf("deployment = %v, want dep-0", body["deployment"])
	}

	// Queued: 202 with the queue position.
	resp, body = postJob(t, srv, `{"id":"b","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue status = %d, want 202 (%v)", resp.StatusCode, body)
	}
	if body["queued"] != true || body["queuePos"] != float64(1) {
		t.Errorf("queued body = %v", body)
	}

	// Overflow: 429.
	resp, body = postJob(t, srv, `{"id":"c","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (%v)", resp.StatusCode, body)
	}

	// Infeasible deadline: 422 with the feasibility gap.
	resp, body = postJob(t, srv, `{"id":"d","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m","deadline":300}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status = %d, want 422 (%v)", resp.StatusCode, body)
	}
	if body["gapSeconds"] != float64(200) || body["requiredSeconds"] != float64(500) || body["deadlineSeconds"] != float64(300) {
		t.Errorf("422 body = %v", body)
	}

	// Rejected submissions never enter the table.
	if _, ok := c.Get("c"); ok {
		t.Error("overflow-rejected job entered the table")
	}
	if _, ok := c.Get("d"); ok {
		t.Error("infeasible job entered the table")
	}

	// Duplicate IDs still conflict ahead of admission.
	resp, _ = postJob(t, srv, `{"id":"a","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d, want 409", resp.StatusCode)
	}

	// GET /admission exposes the gate.
	gresp, err := http.Get(srv.URL + "/admission")
	if err != nil {
		t.Fatal(err)
	}
	var view admission.View
	if err := json.NewDecoder(gresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if view.QueueDepth != 1 || len(view.Deployments) != 1 || view.Queue[0].JobID != "b" {
		t.Errorf("admission view = %+v", view)
	}

	// /metrics carries the hourglass_admission_* section.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := c.metrics.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, want := range []string{
		admission.MetricQueueDepth + " 1",
		admission.MetricDeploymentsLive + " 1",
		`hourglass_admission_admitted_total{tenant="default"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Deleting the resident promotes the waiter.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/a", nil)
	if dresp, err := http.DefaultClient.Do(req); err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", dresp, err)
	}
	st, ok := c.Get("b")
	if !ok || st.Queued || st.Deployment == "" {
		t.Fatalf("waiter not promoted after delete: %+v", st)
	}
}

func TestAdmissionViewDisabled(t *testing.T) {
	c := newTestController(t, &stubBackend{}, NewVirtualClock(epoch), nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admission")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when the gate is disabled", resp.StatusCode)
	}
}

func TestAdmissionRequiresEstimator(t *testing.T) {
	_, err := New(Options{
		Backend:   &stubBackend{}, // no Estimate method
		Clock:     NewVirtualClock(epoch),
		Admission: &admission.Config{},
	})
	if err == nil || !strings.Contains(err.Error(), "Estimator") {
		t.Fatalf("want Estimator requirement error, got %v", err)
	}
}

func TestAdmissionSnapshotRoundTripsQueue(t *testing.T) {
	store := cloud.NewDatastore()
	vc := NewVirtualClock(epoch)
	b := &estBackend{required: 500, demand: 1.0}
	b.block = true
	cfg := admission.Config{MaxDeployments: 1, QueueDepth: 4}

	c1, err := New(Options{Backend: b, Clock: vc, Workers: 2, Seed: 7, Store: store, Admission: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(JobSpec{ID: "a", Kind: "pagerank", Strategy: "hourglass", Slack: 0.5, Period: Duration(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	// b waits with the default deadline (1000s), c with a later
	// explicit one (3000s) — EDF order b before c must survive the
	// restart.
	if st, err := c1.Submit(JobSpec{ID: "b", Kind: "pagerank", Strategy: "hourglass", Slack: 0.5, Period: Duration(time.Hour)}); err != nil || !st.Queued {
		t.Fatalf("b: %+v %v", st, err)
	}
	if st, err := c1.Submit(JobSpec{ID: "c", Kind: "pagerank", Strategy: "hourglass", Slack: 0.5, Period: Duration(time.Hour), Deadline: Duration(3000 * time.Second)}); err != nil || !st.Queued || st.QueuePos != 2 {
		t.Fatalf("c: %+v %v", st, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	c2, err := New(Options{Backend: b, Clock: vc, Workers: 2, Seed: 7, Store: store, Admission: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		_ = c2.Shutdown(ctx)
	})

	if st, ok := c2.Get("a"); !ok || st.Queued || st.Deployment != "dep-0" {
		t.Fatalf("restored resident a = %+v (ok=%v)", st, ok)
	}
	if st, ok := c2.Get("b"); !ok || !st.Queued || st.QueuePos != 1 {
		t.Fatalf("restored waiter b = %+v (ok=%v)", st, ok)
	}
	if st, ok := c2.Get("c"); !ok || !st.Queued || st.QueuePos != 2 {
		t.Fatalf("restored waiter c = %+v (ok=%v)", st, ok)
	}
	view, ok := c2.AdmissionView()
	if !ok || view.QueueDepth != 2 || view.Queue[0].JobID != "b" || view.Queue[1].JobID != "c" {
		t.Fatalf("restored view = %+v (ok=%v)", view, ok)
	}

	// The restored gate keeps working: releasing the resident promotes
	// the earliest-deadline waiter, not the other one.
	c2.Delete("a")
	if st, _ := c2.Get("b"); st.Queued || st.Deployment == "" {
		t.Fatalf("b not promoted after restore+delete: %+v", st)
	}
	if st, _ := c2.Get("c"); !st.Queued || c2.gate.Position("c") != 1 {
		t.Fatalf("c should head the queue now: %+v", st)
	}
}
