package scheduler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/dist"
	"hourglass/internal/obs"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// DistBackend executes recurrences on the distributed BSP engine
// (internal/dist): every recurrence runs coordinator + N shard workers
// over loopback TCP with real wire frames, real per-shard checkpoint
// blobs and seeded shard kills. It is the process-sharded sibling of
// EngineBackend, and deliberately simpler on the billing side: dist
// runs are billed at the env's reserved baseline plus offline cost
// (flat on-demand execution — the market interplay stays with the sim
// and engine backends).
//
// The zero value is not usable; set Sys.
type DistBackend struct {
	// Sys supplies envs and admission constants (required).
	Sys *hourglass.System
	// Store holds dist checkpoint blobs (nil = a private in-memory
	// Datastore; use a cloud.FSStore to exercise real files).
	Store cloud.BlobStore
	// Sink receives superstep/checkpoint/evict events.
	Sink obs.Sink
	// Shards is the worker-process count per recurrence (0 = 4).
	Shards int
	// GraphScale is the RMAT scale of the benchmark graph (0 = 10).
	GraphScale int
	// GraphSeed seeds the benchmark graph (0 = 7).
	GraphSeed int64
	// BarrierTimeout is the coordinator's wall-clock watchdog window
	// per recurrence session (0 = 30s). Lower it when driving chaos
	// soaks whose injected failures should resolve fast; raise it for
	// slow shared CI machines.
	BarrierTimeout time.Duration
	// DeltaChain bounds the dist checkpoint delta chain: up to
	// DeltaChain consecutive delta checkpoints follow each full one
	// (0 = every checkpoint full).
	DeltaChain int
	// KillAtSuperstep, when > 0, kills one shard mid-superstep on the
	// first session of every recurrence, forcing a checkpoint resume
	// (chaos soak; the recurrence still completes).
	KillAtSuperstep int
	// ShardOpts, when non-nil, supplies per-shard options for each
	// recovery attempt and overrides KillAtSuperstep — the chaos seam
	// tests use to script multi-session failures. A zero Store inherits
	// the backend's store.
	ShardOpts func(attempt, shard int) dist.ShardOptions
	// Logf receives diagnostics (nil = discard).
	Logf func(format string, args ...any)

	mu      sync.Mutex
	store   cloud.BlobStore
	seq     int
	pending map[string]string // jobID → namespace of a failed, resumable run
}

// Admit delegates to the simulator backend: deadlines, horizons and
// baselines are properties of the pricing env, not of how recurrences
// execute.
func (b *DistBackend) Admit(spec JobSpec) (units.Seconds, units.Seconds, units.USD, error) {
	return SystemBackend{Sys: b.Sys}.Admit(spec)
}

// distProgramFor maps a job kind to its distributed program spec.
// GraphColoring carries aux state the dist plane does not checkpoint,
// so the GC kind runs WCC under GC admission pricing — the same
// stand-in the runtime chaos harness uses.
func distProgramFor(k hourglass.JobKind) (dist.ProgramSpec, error) {
	switch k {
	case hourglass.PageRank:
		return dist.ProgramSpec{Name: "pagerank", Iterations: 10}, nil
	case hourglass.SSSP:
		return dist.ProgramSpec{Name: "sssp", Source: 0}, nil
	case hourglass.GC:
		return dist.ProgramSpec{Name: "wcc"}, nil
	default:
		return dist.ProgramSpec{}, fmt.Errorf("scheduler: no dist program for job kind %q", k)
	}
}

// blobStore lazily resolves the shared store.
func (b *DistBackend) blobStore() cloud.BlobStore {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store == nil {
		if b.Store != nil {
			b.store = b.Store
		} else {
			b.store = cloud.NewDatastore()
		}
	}
	return b.store
}

// namespace reserves a checkpoint namespace for a recurrence. A run
// that failed leaves its namespace pending, and the job's next attempt
// gets the same one back — so the checkpoint blobs a failed run left
// behind are actually resumable, instead of being stranded under a
// name no future run will ever look at.
func (b *DistBackend) namespace(jobID string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ns, ok := b.pending[jobID]; ok {
		return ns
	}
	b.seq++
	return fmt.Sprintf("%s-%d", jobID, b.seq)
}

// settle records a run's outcome for its namespace: success forgets it
// (the blobs are cleared), failure parks it for the job's next attempt.
func (b *DistBackend) settle(jobID, ns string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		delete(b.pending, jobID)
		return
	}
	if b.pending == nil {
		b.pending = make(map[string]string)
	}
	b.pending[jobID] = ns
}

// Run executes one recurrence on a loopback shard cluster.
func (b *DistBackend) Run(ctx context.Context, spec JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	env, err := b.Sys.Env(spec.Kind)
	if err != nil {
		return sim.RunResult{}, err
	}
	pspec, err := distProgramFor(spec.Kind)
	if err != nil {
		return sim.RunResult{}, err
	}
	shards := b.Shards
	if shards <= 0 {
		shards = 4
	}
	scale, seed := b.GraphScale, b.GraphSeed
	if scale <= 0 {
		scale = 10
	}
	if seed == 0 {
		seed = 7
	}
	store := b.blobStore()
	barrier := b.BarrierTimeout
	if barrier <= 0 {
		barrier = 30 * time.Second
	}
	cfg := dist.Config{
		Job:             b.namespace(spec.ID),
		Program:         pspec,
		Graph:           dist.GraphSpec{Scale: scale, Seed: seed, Undirected: true},
		Canonical:       true,
		CheckpointEvery: 2,
		DeltaChain:      b.DeltaChain,
		BarrierTimeout:  barrier,
		Store:           store,
		Sink:            b.Sink,
		Logf:            b.Logf,
	}
	shardOpts := b.ShardOpts
	if shardOpts == nil && b.KillAtSuperstep > 0 {
		kill := b.KillAtSuperstep
		shardOpts = func(attempt, shard int) dist.ShardOptions {
			opts := dist.ShardOptions{Store: store}
			if attempt == 0 && shard == 0 {
				opts.DieAtSuperstep = kill
			}
			return opts
		}
	}
	if shardOpts != nil {
		inner := shardOpts
		shardOpts = func(attempt, shard int) dist.ShardOptions {
			opts := inner(attempt, shard)
			if opts.Store == nil {
				opts.Store = store
			}
			return opts
		}
	}
	// ctx rides into the cluster: a cancelled scheduler context aborts
	// the live session at its next barrier wait (within BarrierTimeout),
	// not after the job finished on its own.
	rep, restarts, err := dist.ExecuteWithRecovery(ctx, cfg, dist.FixedShards(shards), shards, shardOpts)
	b.settle(spec.ID, cfg.Job, err == nil)
	if err != nil {
		// The namespace keeps its checkpoint blobs: the next attempt
		// for this job resumes from them instead of starting over.
		return sim.RunResult{}, err
	}
	// Clearing only a successful run's blobs is what makes the failed
	// path above resumable.
	if cerr := dist.ClearJob(store, cfg.Job); cerr != nil && b.Logf != nil {
		b.Logf("scheduler: clearing dist job %s: %v", cfg.Job, cerr)
	}
	res := sim.RunResult{
		// Flat on-demand billing: the reserved baseline for the env
		// plus the §8.2 offline partitioning cost.
		Cost:        sim.Baseline(env) + env.OfflineCost,
		Finished:    true,
		Completion:  start + env.LRC.Fixed + env.LRC.Exec,
		Checkpoints: rep.Checkpoints,
		Evictions:   restarts,
	}
	return res, nil
}

var _ Backend = (*DistBackend)(nil)
