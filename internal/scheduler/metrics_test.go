package scheduler

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestRunSecondsHistogramCumulative is a regression test for the
// Prometheus exposition of the run-latency histogram: internal counts
// are per-bucket, and cumulativity is derived at render time. A broken
// render produces buckets that are not monotonically non-decreasing,
// or a +Inf bucket that disagrees with _count — both silently corrupt
// quantile math in Prometheus.
func TestRunSecondsHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	for _, s := range []float64{0.0005, 0.003, 0.003, 0.07, 0.7, 7, 700} {
		m.ObserveRunSeconds(s)
	}
	var b bytes.Buffer
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}

	var cums []uint64
	var count uint64
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, metricRunSeconds+"_bucket{"):
			f := strings.Fields(line)
			v, err := strconv.ParseUint(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cums = append(cums, v)
		case strings.HasPrefix(line, metricRunSeconds+"_count "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, metricRunSeconds+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if len(cums) < 2 {
		t.Fatalf("histogram render produced %d buckets:\n%s", len(cums), b.String())
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("bucket %d not cumulative: %d < %d", i, cums[i], cums[i-1])
		}
	}
	if count != 7 {
		t.Errorf("_count = %d, want 7", count)
	}
	if last := cums[len(cums)-1]; last != count {
		t.Errorf("+Inf bucket %d != _count %d", last, count)
	}
}

// TestMetricsConcurrentObserveDuringRender: Observe and WriteTo from
// concurrent goroutines must be race-clean (run under -race) and every
// render must be internally consistent.
func TestMetricsConcurrentObserveDuringRender(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.ObserveRunSeconds(float64(i%100) / 50)
				m.Add(MetricRunsStarted, 1)
				m.AddJob(MetricJobRuns, "job-1", 1)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b bytes.Buffer
		if _, err := m.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), metricRunSeconds+"_count ") {
			t.Fatal("render missing histogram count")
		}
	}
	close(stop)
	wg.Wait()
}
