package scheduler

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"hourglass/internal/admission"
	"hourglass/internal/units"
)

// snapshotState is the JSON document persisted to the datastore: the
// whole job table plus the ID sequence, enough for a restarted daemon
// to resume scheduling exactly where it stopped. In-flight
// recurrences are not persisted — a restore re-dispatches them
// (dispatched is reset to completed), and the deterministic offset
// derivation replays them against the same trace window.
type snapshotState struct {
	SavedAt time.Time     `json:"savedAt"`
	Seq     int           `json:"seq"`
	Jobs    []snapshotJob `json:"jobs"`
}

type snapshotJob struct {
	Spec      JobSpec     `json:"spec"`
	Created   time.Time   `json:"created"`
	NextRun   time.Time   `json:"nextRun"`
	Completed int         `json:"completed"`
	History   []RunRecord `json:"history"`
	Agg       Aggregates  `json:"aggregates"`
	// Admission state: a queued job re-enters the wait queue at its
	// original enqueue time, a placed one is reseated onto its named
	// deployment (same packing class and share), so a restart neither
	// re-prices nor re-packs what was already admitted.
	Queued     bool      `json:"queued,omitempty"`
	QueuedAt   time.Time `json:"queuedAt,omitempty"`
	Deployment string    `json:"deployment,omitempty"`
	PackConfig string    `json:"packConfig,omitempty"`
	Demand     float64   `json:"demand,omitempty"`
}

// snapshotEnvelope wraps the state document with a CRC32 (IEEE)
// checksum over the raw State bytes, so a corrupted or truncated
// snapshot is detected at restore instead of silently reloading
// garbage. The envelope is itself JSON, keeping the persisted object
// (and the daemon's -state file mirror) plain text.
type snapshotEnvelope struct {
	CRC32 string          `json:"crc32"`
	State json.RawMessage `json:"state"`
}

// stateCRC checksums the *compacted* state document. JSON encoders
// re-indent nested RawMessage bytes, so the exact byte layout is not
// stable across a seal/open round trip — the whitespace-free form is.
func stateCRC(state []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, state); err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(compact.Bytes())), nil
}

// sealSnapshot wraps state bytes in a checksummed envelope.
func sealSnapshot(state []byte) ([]byte, error) {
	crc, err := stateCRC(state)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(snapshotEnvelope{CRC32: crc, State: state}, "", "  ")
}

// openSnapshot validates an envelope and returns the state bytes. A
// legacy snapshot (plain snapshotState document, no envelope) is
// accepted without checksum verification so pre-envelope state files
// still restore.
func openSnapshot(blob []byte) ([]byte, error) {
	var env snapshotEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("parsing snapshot envelope: %w", err)
	}
	if env.CRC32 == "" && env.State == nil {
		// Legacy format: the blob is the state document itself.
		return blob, nil
	}
	want, err := stateCRC(env.State)
	if err != nil {
		return nil, fmt.Errorf("compacting snapshot state: %w", err)
	}
	if env.CRC32 != want {
		return nil, fmt.Errorf("snapshot checksum mismatch: header %s, computed %s", env.CRC32, want)
	}
	return env.State, nil
}

// Snapshot serialises the job table to the configured datastore key,
// sealed with a checksum and retried across transient store errors.
func (c *Controller) Snapshot() error {
	if c.store == nil {
		return fmt.Errorf("scheduler: no snapshot store configured")
	}
	c.mu.Lock()
	state := snapshotState{SavedAt: c.clock.Now(), Seq: c.seq}
	for _, e := range c.jobs {
		// Rewind the schedule over dispatched-but-unfinished
		// recurrences: a restore resets dispatched to completed, so
		// the rewound nextRun makes collectDue re-dispatch the lost
		// runs at their original indices (and, offsets being
		// index-derived, against their original trace windows).
		pending := e.dispatched - e.completed
		nextRun := e.nextRun.Add(-time.Duration(pending) * time.Duration(e.spec.Period))
		state.Jobs = append(state.Jobs, snapshotJob{
			Spec:       e.spec,
			Created:    e.created,
			NextRun:    nextRun,
			Completed:  e.completed,
			History:    append([]RunRecord(nil), e.history...),
			Agg:        e.agg,
			Queued:     e.queued,
			QueuedAt:   e.queuedAt,
			Deployment: e.deployment,
			PackConfig: e.packConfig,
			Demand:     e.demand,
		})
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	sealed, err := sealSnapshot(data)
	if err != nil {
		return err
	}
	// The retrier's delay is virtual time; the controller runs on the
	// wall clock, so only the outcome matters here.
	if _, err := c.retry.Do(func() error {
		_, err := c.store.Put(c.snapshotKey, sealed)
		return err
	}); err != nil {
		return fmt.Errorf("scheduler: writing snapshot %s: %w", c.snapshotKey, err)
	}
	c.metrics.Inc(MetricSnapshots)
	c.logf("scheduler: snapshot %s (%d jobs, %d bytes)", c.snapshotKey, len(state.Jobs), len(sealed))
	return nil
}

// restore loads a snapshot into an empty controller (called from New
// before the loop starts, so no locking hazards). Every spec is
// re-admitted through the backend so deadline/horizon/baseline come
// from the live market, not the snapshot.
//
// A snapshot that cannot be read or fails its checksum is *skipped* —
// the daemon logs the damage and starts with an empty job table
// rather than refusing to boot or restoring corrupt state. Re-admit
// failures, by contrast, are real configuration errors and abort.
func (c *Controller) restore() error {
	var blob []byte
	if _, err := c.retry.Do(func() error {
		b, _, err := c.store.Get(c.snapshotKey)
		blob = b
		return err
	}); err != nil {
		c.logf("scheduler: snapshot %s unreadable (%v), starting fresh", c.snapshotKey, err)
		return nil
	}
	data, err := openSnapshot(blob)
	if err != nil {
		c.logf("scheduler: snapshot %s corrupt (%v), starting fresh", c.snapshotKey, err)
		return nil
	}
	var state snapshotState
	if err := json.Unmarshal(data, &state); err != nil {
		c.logf("scheduler: snapshot %s undecodable (%v), starting fresh", c.snapshotKey, err)
		return nil
	}
	c.seq = state.Seq
	for _, sj := range state.Jobs {
		deadline, horizon, baseline, err := c.backend.Admit(sj.Spec)
		if err != nil {
			return fmt.Errorf("re-admitting %s: %w", sj.Spec.ID, err)
		}
		if sj.Spec.Deadline > 0 {
			deadline = units.FromDuration(time.Duration(sj.Spec.Deadline))
		}
		e := &jobEntry{
			spec:       sj.Spec,
			created:    sj.Created,
			nextRun:    sj.NextRun,
			deadline:   deadline,
			horizon:    horizon,
			baseline:   baseline,
			dispatched: sj.Completed, // in-flight runs are re-dispatched
			completed:  sj.Completed,
			history:    sj.History,
			agg:        sj.Agg,
			deployment: sj.Deployment,
			packConfig: sj.PackConfig,
			demand:     sj.Demand,
		}
		if c.gate != nil {
			switch {
			case sj.Queued:
				e.queued = true
				e.queuedAt = sj.QueuedAt
				c.gate.Requeue(sj.Spec.ID, sj.Spec.TenantOrDefault(), admission.Estimate{
					DeadlineSeconds: float64(deadline),
					ConfigID:        sj.PackConfig,
					Demand:          sj.Demand,
				}, sj.QueuedAt)
			case sj.Deployment != "":
				c.gate.Reseat(sj.Spec.ID, sj.PackConfig, sj.Deployment, sj.Demand)
			}
			// A pre-admission snapshot entry (no deployment, not queued)
			// keeps running unpacked; Release tolerates it.
		}
		c.jobs[sj.Spec.ID] = e
	}
	c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
	c.logf("scheduler: restored %d jobs from %s (saved %v)",
		len(state.Jobs), c.snapshotKey, state.SavedAt)
	return nil
}
