package scheduler

import (
	"encoding/json"
	"fmt"
	"time"
)

// snapshotState is the JSON document persisted to the datastore: the
// whole job table plus the ID sequence, enough for a restarted daemon
// to resume scheduling exactly where it stopped. In-flight
// recurrences are not persisted — a restore re-dispatches them
// (dispatched is reset to completed), and the deterministic offset
// derivation replays them against the same trace window.
type snapshotState struct {
	SavedAt time.Time     `json:"savedAt"`
	Seq     int           `json:"seq"`
	Jobs    []snapshotJob `json:"jobs"`
}

type snapshotJob struct {
	Spec      JobSpec     `json:"spec"`
	Created   time.Time   `json:"created"`
	NextRun   time.Time   `json:"nextRun"`
	Completed int         `json:"completed"`
	History   []RunRecord `json:"history"`
	Agg       Aggregates  `json:"aggregates"`
}

// Snapshot serialises the job table to the configured datastore key.
func (c *Controller) Snapshot() error {
	if c.store == nil {
		return fmt.Errorf("scheduler: no snapshot store configured")
	}
	c.mu.Lock()
	state := snapshotState{SavedAt: c.clock.Now(), Seq: c.seq}
	for _, e := range c.jobs {
		// Rewind the schedule over dispatched-but-unfinished
		// recurrences: a restore resets dispatched to completed, so
		// the rewound nextRun makes collectDue re-dispatch the lost
		// runs at their original indices (and, offsets being
		// index-derived, against their original trace windows).
		pending := e.dispatched - e.completed
		nextRun := e.nextRun.Add(-time.Duration(pending) * time.Duration(e.spec.Period))
		state.Jobs = append(state.Jobs, snapshotJob{
			Spec:      e.spec,
			Created:   e.created,
			NextRun:   nextRun,
			Completed: e.completed,
			History:   append([]RunRecord(nil), e.history...),
			Agg:       e.agg,
		})
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	c.store.Put(c.snapshotKey, data)
	c.metrics.Inc(MetricSnapshots)
	c.logf("scheduler: snapshot %s (%d jobs, %d bytes)", c.snapshotKey, len(state.Jobs), len(data))
	return nil
}

// restore loads a snapshot into an empty controller (called from New
// before the loop starts, so no locking hazards). Every spec is
// re-admitted through the backend so deadline/horizon/baseline come
// from the live market, not the snapshot.
func (c *Controller) restore() error {
	data, _, err := c.store.Get(c.snapshotKey)
	if err != nil {
		return err
	}
	var state snapshotState
	if err := json.Unmarshal(data, &state); err != nil {
		return err
	}
	c.seq = state.Seq
	for _, sj := range state.Jobs {
		deadline, horizon, baseline, err := c.backend.Admit(sj.Spec)
		if err != nil {
			return fmt.Errorf("re-admitting %s: %w", sj.Spec.ID, err)
		}
		c.jobs[sj.Spec.ID] = &jobEntry{
			spec:       sj.Spec,
			created:    sj.Created,
			nextRun:    sj.NextRun,
			deadline:   deadline,
			horizon:    horizon,
			baseline:   baseline,
			dispatched: sj.Completed, // in-flight runs are re-dispatched
			completed:  sj.Completed,
			history:    sj.History,
			agg:        sj.Agg,
		}
	}
	c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
	c.logf("scheduler: restored %d jobs from %s (saved %v)",
		len(state.Jobs), c.snapshotKey, state.SavedAt)
	return nil
}
