package scheduler

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Metrics is the daemon's instrumentation: monotonically increasing
// counters, one gauge, and a latency histogram, all exposed in
// Prometheus text format on /metrics. It is dependency-free by
// design — the container must not grow a client_golang dependency —
// and safe for concurrent observation.
type Metrics struct {
	mu sync.Mutex

	counters map[string]float64
	gauges   map[string]float64

	// run wall-time histogram (decision latency per recurrence).
	buckets []float64 // upper bounds, seconds
	counts  []uint64  // cumulative per bucket is derived at render
	sum     float64
	total   uint64
}

// Counter and gauge names. Keeping them as constants documents the
// exposition surface in one place.
const (
	MetricJobsSubmitted = "hourglass_jobs_submitted_total"
	MetricJobsDeleted   = "hourglass_jobs_deleted_total"
	MetricJobsActive    = "hourglass_jobs_active"
	MetricRunsStarted   = "hourglass_runs_started_total"
	MetricRunsFinished  = "hourglass_runs_finished_total"
	MetricRunsFailed    = "hourglass_runs_failed_total"
	MetricRunsMissed    = "hourglass_deadline_missed_total"
	MetricEvictions     = "hourglass_evictions_total"
	MetricReconfigs     = "hourglass_reconfigs_total"
	MetricDecisions     = "hourglass_decisions_total"
	MetricCostUSD       = "hourglass_cost_usd_total"
	MetricBaselineUSD   = "hourglass_baseline_usd_total"
	MetricSnapshots     = "hourglass_snapshots_total"
	metricRunSeconds    = "hourglass_run_duration_seconds"
)

var metricHelp = map[string]string{
	MetricJobsSubmitted: "Recurrent job specs accepted by the control plane.",
	MetricJobsDeleted:   "Jobs removed via DELETE /jobs/{id}.",
	MetricJobsActive:    "Jobs currently in the table and not done.",
	MetricRunsStarted:   "Recurrences handed to the worker pool.",
	MetricRunsFinished:  "Recurrences that completed simulation.",
	MetricRunsFailed:    "Recurrences that returned an error.",
	MetricRunsMissed:    "Recurrences that missed their deadline.",
	MetricEvictions:     "Spot evictions suffered across all recurrences.",
	MetricReconfigs:     "Deployment reconfigurations across all recurrences.",
	MetricDecisions:     "Provisioner decisions across all recurrences.",
	MetricCostUSD:       "Cumulative simulated spend (USD).",
	MetricBaselineUSD:   "Cumulative on-demand baseline spend (USD).",
	MetricSnapshots:     "State snapshots written to the datastore.",
	metricRunSeconds:    "Wall-clock latency of one recurrence (simulation + decisions).",
}

// NewMetrics builds a registry with every named counter pre-registered
// at zero (so scrapes see the full surface before any event) and
// latency buckets spanning sub-millisecond simulations to multi-second
// decision storms.
func NewMetrics() *Metrics {
	m := &Metrics{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		buckets:  []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10},
		counts:   make([]uint64, 10),
	}
	for _, name := range []string{
		MetricJobsSubmitted, MetricJobsDeleted, MetricRunsStarted,
		MetricRunsFinished, MetricRunsFailed, MetricRunsMissed,
		MetricEvictions, MetricReconfigs, MetricDecisions,
		MetricCostUSD, MetricBaselineUSD, MetricSnapshots,
	} {
		m.counters[name] = 0
	}
	m.gauges[MetricJobsActive] = 0
	return m
}

// Add increments a counter by delta.
func (m *Metrics) Add(name string, delta float64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Inc increments a counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// SetGauge records an instantaneous value.
func (m *Metrics) SetGauge(name string, v float64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// ObserveRunSeconds records one recurrence latency into the histogram.
func (m *Metrics) ObserveRunSeconds(s float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sum += s
	m.total++
	for i, ub := range m.buckets {
		if s <= ub {
			m.counts[i]++
			return
		}
	}
	m.counts[len(m.buckets)]++ // +Inf overflow bucket
}

// Value reads a counter (for tests).
func (m *Metrics) Value(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.counters[name]; ok {
		return v
	}
	return m.gauges[name]
}

// WriteTo renders the registry in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	emit := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	names := make([]string, 0, len(m.counters)+len(m.gauges))
	for name := range m.counters {
		names = append(names, name)
	}
	for name := range m.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kind, v := "counter", m.counters[name]
		if gv, ok := m.gauges[name]; ok {
			kind, v = "gauge", gv
		}
		if help := metricHelp[name]; help != "" {
			if err := emit("# HELP %s %s\n", name, help); err != nil {
				return n, err
			}
		}
		if err := emit("# TYPE %s %s\n%s %s\n", name, kind, name, fmtFloat(v)); err != nil {
			return n, err
		}
	}
	// Histogram block.
	if err := emit("# HELP %s %s\n# TYPE %s histogram\n",
		metricRunSeconds, metricHelp[metricRunSeconds], metricRunSeconds); err != nil {
		return n, err
	}
	var cum uint64
	for i, ub := range m.buckets {
		cum += m.counts[i]
		if err := emit("%s_bucket{le=\"%s\"} %d\n", metricRunSeconds, fmtFloat(ub), cum); err != nil {
			return n, err
		}
	}
	cum += m.counts[len(m.buckets)]
	if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		metricRunSeconds, cum, metricRunSeconds, fmtFloat(m.sum), metricRunSeconds, cum); err != nil {
		return n, err
	}
	return n, nil
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
