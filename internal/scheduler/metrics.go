package scheduler

import (
	"hourglass/internal/obs"
)

// Metrics is the daemon's instrumentation, a thin wrapper over the
// shared obs.Registry: monotonically increasing counters, one gauge,
// a latency histogram, and per-job labeled series, all exposed in
// Prometheus text format on /metrics. It is dependency-free by
// design — the container must not grow a client_golang dependency —
// and safe for concurrent observation. Add/Inc/SetGauge/AddLabeled/
// Value/WriteTo are promoted from the embedded registry.
type Metrics struct {
	*obs.Registry
}

// Counter and gauge names. Keeping them as constants documents the
// exposition surface in one place.
const (
	MetricJobsSubmitted = "hourglass_jobs_submitted_total"
	MetricJobsDeleted   = "hourglass_jobs_deleted_total"
	MetricJobsActive    = "hourglass_jobs_active"
	MetricRunsStarted   = "hourglass_runs_started_total"
	MetricRunsFinished  = "hourglass_runs_finished_total"
	MetricRunsFailed    = "hourglass_runs_failed_total"
	MetricRunsMissed    = "hourglass_deadline_missed_total"
	MetricEvictions     = "hourglass_evictions_total"
	MetricReconfigs     = "hourglass_reconfigs_total"
	MetricDecisions     = "hourglass_decisions_total"
	MetricCostUSD       = "hourglass_cost_usd_total"
	MetricBaselineUSD   = "hourglass_baseline_usd_total"
	MetricSnapshots     = "hourglass_snapshots_total"
	MetricStoreAttempts = "hourglass_store_attempts_total"
	MetricStoreRetries  = "hourglass_store_retried_ops_total"
	metricRunSeconds    = "hourglass_run_duration_seconds"
)

// Per-job counter families (label key "job"): the §7 evaluation is a
// per-run cost/evictions/misses story, so the daemon breaks the same
// aggregates down by job id.
const (
	MetricJobRuns      = "hourglass_job_runs_total"
	MetricJobCostUSD   = "hourglass_job_cost_usd_total"
	MetricJobEvictions = "hourglass_job_evictions_total"
	MetricJobMissed    = "hourglass_job_deadline_missed_total"
)

var metricHelp = map[string]string{
	MetricJobsSubmitted: "Recurrent job specs accepted by the control plane.",
	MetricJobsDeleted:   "Jobs removed via DELETE /jobs/{id}.",
	MetricJobsActive:    "Jobs currently in the table and not done.",
	MetricRunsStarted:   "Recurrences handed to the worker pool.",
	MetricRunsFinished:  "Recurrences that completed simulation.",
	MetricRunsFailed:    "Recurrences that returned an error.",
	MetricRunsMissed:    "Recurrences that missed their deadline.",
	MetricEvictions:     "Spot evictions suffered across all recurrences.",
	MetricReconfigs:     "Deployment reconfigurations across all recurrences.",
	MetricDecisions:     "Provisioner decisions across all recurrences.",
	MetricCostUSD:       "Cumulative simulated spend (USD).",
	MetricBaselineUSD:   "Cumulative on-demand baseline spend (USD).",
	MetricSnapshots:     "State snapshots written to the datastore.",
	MetricStoreAttempts: "Datastore operation attempts (first tries + retries).",
	MetricStoreRetries:  "Datastore operations that needed more than one attempt.",
	metricRunSeconds:    "Wall-clock latency of one recurrence (simulation + decisions).",
	MetricJobRuns:       "Recurrences completed, by job.",
	MetricJobCostUSD:    "Simulated spend (USD), by job.",
	MetricJobEvictions:  "Spot evictions suffered, by job.",
	MetricJobMissed:     "Deadline misses, by job.",
}

// NewMetrics builds a registry with every named counter pre-registered
// at zero (so scrapes see the full surface before any event) and
// latency buckets spanning sub-millisecond simulations to multi-second
// decision storms.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	for name, help := range metricHelp {
		r.SetHelp(name, help)
	}
	for _, name := range []string{
		MetricJobsSubmitted, MetricJobsDeleted, MetricRunsStarted,
		MetricRunsFinished, MetricRunsFailed, MetricRunsMissed,
		MetricEvictions, MetricReconfigs, MetricDecisions,
		MetricCostUSD, MetricBaselineUSD, MetricSnapshots,
		MetricStoreAttempts, MetricStoreRetries,
	} {
		r.Add(name, 0)
	}
	r.SetGauge(MetricJobsActive, 0)
	r.RegisterHistogram(metricRunSeconds,
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10})
	return &Metrics{Registry: r}
}

// ObserveRunSeconds records one recurrence latency into the histogram.
func (m *Metrics) ObserveRunSeconds(s float64) {
	m.Observe(metricRunSeconds, s)
}

// AddJob increments one per-job series.
func (m *Metrics) AddJob(name, jobID string, delta float64) {
	m.AddLabeled(name, "job", jobID, delta)
}
