package scheduler

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualClockAdvanceFiresTimers(t *testing.T) {
	c := NewVirtualClock(epoch)
	a := c.Until(epoch.Add(10 * time.Minute))
	b := c.Until(epoch.Add(30 * time.Minute))

	c.Advance(5 * time.Minute)
	select {
	case <-a:
		t.Fatal("timer fired before its deadline")
	default:
	}

	c.Advance(5 * time.Minute) // exactly the deadline
	select {
	case at := <-a:
		if !at.Equal(epoch.Add(10 * time.Minute)) {
			t.Errorf("fired with time %v", at)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d, want 1", c.Pending())
	}

	c.Advance(time.Hour) // crosses the second deadline
	select {
	case <-b:
	default:
		t.Fatal("second timer did not fire")
	}
}

func TestVirtualClockPastDeadlineFiresImmediately(t *testing.T) {
	c := NewVirtualClock(epoch)
	c.Advance(time.Hour)
	select {
	case <-c.Until(epoch.Add(30 * time.Minute)):
	default:
		t.Fatal("past deadline did not fire immediately")
	}
	select {
	case <-c.Until(c.Now()):
	default:
		t.Fatal("now-deadline did not fire immediately")
	}
}

func TestVirtualClockNow(t *testing.T) {
	c := NewVirtualClock(epoch)
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(epoch.Add(90 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
}

func TestWallClockUntil(t *testing.T) {
	var c WallClock
	select {
	case <-c.Until(time.Now().Add(-time.Second)):
	default:
		t.Fatal("past wall deadline did not fire immediately")
	}
	select {
	case <-c.Until(time.Now().Add(5 * time.Millisecond)):
	case <-time.After(2 * time.Second):
		t.Fatal("short wall timer never fired")
	}
}
