package scheduler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/obs"
	"hourglass/internal/partition"
	"hourglass/internal/runtime"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// EngineBackend executes recurrences with the eviction-aware execution
// runtime (internal/runtime) instead of the abstract simulator: every
// recurrence runs a real vertex program over a real graph, suffers
// market-drawn evictions, reloads checkpoints and re-clusters
// micro-partitions across worker-count changes. Costs remain virtual
// (market-priced), so histories from the two backends are comparable.
//
// The zero value is not usable; set Sys. The backend is safe for
// concurrent use: per-kind state (graph, partitioning, reference
// superstep counts) is built lazily under a lock and shared across
// recurrences, while each recurrence gets its own checkpoint
// namespace.
type EngineBackend struct {
	// Sys supplies envs, provisioners and admission constants
	// (required).
	Sys *hourglass.System
	// Store holds checkpoints (nil = a private in-memory Datastore).
	// Wrap with faultinject.Wrap for storage-chaos soaks.
	Store cloud.BlobStore
	// Sink receives the runtime's decision/lifecycle event stream.
	Sink obs.Sink
	// GraphScale is the RMAT scale of the benchmark graph (0 = 10).
	GraphScale int
	// GraphSeed seeds the benchmark graph (0 = 7).
	GraphSeed int64
	// Watchdog bounds wall-clock seconds per superstep (0 = 30s).
	Watchdog time.Duration
	// RestartBudget bounds restarts before the last-resort pin
	// (0 = runtime default).
	RestartBudget int
	// Logf receives diagnostics (nil = discard).
	Logf func(format string, args ...any)

	mu    sync.Mutex
	store cloud.BlobStore
	g     *graph.Graph
	part  *micro.Partitioning
	kinds map[hourglass.JobKind]*engineKindState
	seq   int
}

// engineKindState caches what one job kind needs across recurrences.
type engineKindState struct {
	fresh func() engine.Program
	total int // supersteps of the uninterrupted reference run
}

// Admit delegates to the simulator backend: deadlines, horizons and
// baselines are properties of the pricing env, not of how recurrences
// execute.
func (b *EngineBackend) Admit(spec JobSpec) (units.Seconds, units.Seconds, units.USD, error) {
	return SystemBackend{Sys: b.Sys}.Admit(spec)
}

// programFor maps a job kind to its engine vertex program.
func programFor(k hourglass.JobKind) (func() engine.Program, error) {
	switch k {
	case hourglass.PageRank:
		return func() engine.Program { return &engine.PageRank{Iterations: 10} }, nil
	case hourglass.SSSP:
		return func() engine.Program { return &engine.SSSP{Source: 0} }, nil
	case hourglass.GC:
		return func() engine.Program { return &engine.GraphColoring{} }, nil
	default:
		return nil, fmt.Errorf("scheduler: no engine program for job kind %q", k)
	}
}

// kindState lazily builds the shared graph/partitioning and the
// per-kind reference run, then hands out the cached state.
func (b *EngineBackend) kindState(k hourglass.JobKind) (*engineKindState, *graph.Graph, *micro.Partitioning, cloud.BlobStore, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store == nil {
		if b.Store != nil {
			b.store = b.Store
		} else {
			b.store = cloud.NewDatastore()
		}
	}
	if b.g == nil {
		scale, seed := b.GraphScale, b.GraphSeed
		if scale <= 0 {
			scale = 10
		}
		if seed == 0 {
			seed = 7
		}
		p := graph.DefaultRMAT(scale, seed)
		p.Undirected = true
		b.g = graph.RMAT(p)

		env, err := b.Sys.Env(k)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		seen := map[int]bool{}
		var counts []int
		for i := range env.Stats {
			if n := env.Stats[i].Config.Count; !seen[n] {
				seen[n] = true
				counts = append(counts, n)
			}
		}
		b.part, err = micro.BuildForConfigs(b.g, partition.Hash{}, counts, partition.Multilevel{Seed: 1})
		if err != nil {
			b.g = nil
			return nil, nil, nil, nil, fmt.Errorf("scheduler: building micro-partitioning: %w", err)
		}
	}
	if b.kinds == nil {
		b.kinds = map[hourglass.JobKind]*engineKindState{}
	}
	st, ok := b.kinds[k]
	if !ok {
		fresh, err := programFor(k)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ref, err := engine.Run(b.g, fresh(), engine.Config{Workers: 4, Canonical: true})
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("scheduler: %s reference run: %w", k, err)
		}
		st = &engineKindState{fresh: fresh, total: ref.Stats.Supersteps}
		b.kinds[k] = st
	}
	return st, b.g, b.part, b.store, nil
}

// namespace reserves a unique checkpoint namespace per recurrence so
// concurrent recurrences of the same job never cross-load blobs.
func (b *EngineBackend) namespace(jobID string) string {
	b.mu.Lock()
	b.seq++
	n := b.seq
	b.mu.Unlock()
	return fmt.Sprintf("runtime/%s/%d", jobID, n)
}

// Run executes one recurrence end-to-end under injected evictions.
func (b *EngineBackend) Run(ctx context.Context, spec JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	env, err := b.Sys.Env(spec.Kind)
	if err != nil {
		return sim.RunResult{}, err
	}
	prov, err := b.Sys.Provisioner(spec.Kind, spec.Strategy)
	if err != nil {
		return sim.RunResult{}, err
	}
	st, g, part, store, err := b.kindState(spec.Kind)
	if err != nil {
		return sim.RunResult{}, err
	}
	watchdog := b.Watchdog
	if watchdog <= 0 {
		watchdog = 30 * time.Second
	}
	mgr := &engine.CheckpointManager{Store: store, Job: b.namespace(spec.ID), Logf: b.Logf}
	rep, err := runtime.Execute(ctx, runtime.Options{
		Env:             env,
		Prov:            prov,
		Graph:           g,
		NewProgram:      st.fresh,
		Part:            part,
		Manager:         mgr,
		TotalSupersteps: st.total,
		CheckpointEvery: 2,
		RestartBudget:   b.RestartBudget,
		Watchdog:        watchdog,
		Canonical:       true,
		Sink:            b.Sink,
		Logf:            b.Logf,
	}, start, deadline)
	// The runtime clears its namespace on success; clear again
	// defensively so failed runs don't strand blobs in a shared store.
	if cerr := mgr.Clear(); cerr != nil && b.Logf != nil {
		b.Logf("scheduler: clearing %s: %v", mgr.Job, cerr)
	}
	if err != nil {
		return sim.RunResult{}, err
	}
	res := sim.RunResult{
		Cost:           rep.Cost + env.OfflineCost, // §8.2: include offline partitioning
		Finished:       rep.Finished,
		MissedDeadline: rep.MissedDeadline,
		Completion:     rep.Completion,
		Evictions:      rep.Evictions,
		Reconfigs:      rep.Reconfigs,
		Checkpoints:    rep.Checkpoints,
		Decisions:      rep.Decisions,
	}
	return res, nil
}

var _ Backend = (*EngineBackend)(nil)
