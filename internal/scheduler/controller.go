package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hourglass"
	"hourglass/internal/admission"
	"hourglass/internal/cloud"
	"hourglass/internal/obs"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// ErrJobExists reports a Submit whose explicit ID collides with a job
// already in the table. The HTTP layer maps it to 409 Conflict with
// errors.Is — never by sniffing error strings.
var ErrJobExists = errors.New("scheduler: job already exists")

// Backend abstracts the simulation system the controller drives, so
// tests can substitute a stub and the daemon binds to a shared
// *hourglass.System.
type Backend interface {
	// Admit validates a spec and resolves the per-recurrence relative
	// deadline, the market trace horizon bounding start offsets, and
	// the on-demand baseline cost.
	Admit(spec JobSpec) (deadline, horizon units.Seconds, baseline units.USD, err error)
	// Run executes one recurrence against the market from the given
	// trace offset. It must be safe for concurrent use.
	Run(ctx context.Context, spec JobSpec, start, deadline units.Seconds) (sim.RunResult, error)
}

// SystemBackend adapts the public hourglass.System (now safe for
// concurrent use) to the Backend interface.
type SystemBackend struct {
	Sys *hourglass.System
	// Sink, when set, receives the simulator's decision/lifecycle
	// trace events for every recurrence.
	Sink obs.Sink
}

// Admit resolves spec-derived constants via the shared System.
func (b SystemBackend) Admit(spec JobSpec) (units.Seconds, units.Seconds, units.USD, error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, 0, err
	}
	deadline, err := b.Sys.DeadlineFor(spec.Kind, spec.Slack)
	if err != nil {
		return 0, 0, 0, err
	}
	horizon, err := b.Sys.Horizon(spec.Kind)
	if err != nil {
		return 0, 0, 0, err
	}
	baseline, err := b.Sys.Baseline(spec.Kind)
	if err != nil {
		return 0, 0, 0, err
	}
	return deadline, horizon, baseline, nil
}

// Run simulates one recurrence with a fresh provisioner (DP wrappers
// carry latch state, so each recurrence rebuilds).
func (b SystemBackend) Run(ctx context.Context, spec JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	env, err := b.Sys.Env(spec.Kind)
	if err != nil {
		return sim.RunResult{}, err
	}
	prov, err := b.Sys.Provisioner(spec.Kind, spec.Strategy)
	if err != nil {
		return sim.RunResult{}, err
	}
	runner := &sim.Runner{Env: env, Sink: b.Sink}
	res, err := runner.RunCtx(ctx, prov, start, deadline)
	if err != nil {
		return res, err
	}
	// §8.2: reported costs include the offline partitioning phase.
	res.Cost += env.OfflineCost
	return res, nil
}

// Options configure a Controller.
type Options struct {
	// Backend executes recurrences (required).
	Backend Backend
	// Clock drives the scheduling loop (nil = WallClock).
	Clock Clock
	// Workers bounds concurrent recurrences (0 = 4).
	Workers int
	// QueueDepth bounds dispatched-but-not-started recurrences
	// (0 = 64).
	QueueDepth int
	// HistoryLimit caps the retained per-job history; aggregates keep
	// counting past it (0 = 1024).
	HistoryLimit int
	// Seed derives deterministic per-recurrence trace offsets.
	Seed int64
	// Store, when set, enables state snapshot on shutdown and restore
	// at construction under SnapshotKey. Any BlobStore works, including
	// a faultinject.Store: snapshot I/O is retried and checksummed.
	Store cloud.BlobStore
	// SnapshotKey names the state object ("" = "scheduler/state.json").
	SnapshotKey string
	// Sink, when set, receives one obs.EvRun trace event per executed
	// recurrence (and snapshot-retry events from the store path). Pass
	// the same sink to the Backend to also capture the per-decision
	// simulator stream.
	Sink obs.Sink
	// Admission, when set, enables the multi-tenant admission gate:
	// submissions are priced against the market (the Backend must
	// implement Estimator), packed onto shared deployments, queued
	// when the pool is saturated, or rejected when infeasible. Nil
	// disables the gate (every submission schedules immediately).
	Admission *admission.Config
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

// task is one recurrence handed to the worker pool.
type task struct {
	id          string
	index       int
	scheduledAt time.Time
}

// Controller is the recurrent-job daemon: it owns the job table,
// fires recurrences on schedule, executes them on a bounded worker
// pool, and snapshots state for restart.
type Controller struct {
	backend      Backend
	clock        Clock
	seed         int64
	historyLimit int
	store        cloud.BlobStore
	snapshotKey  string
	retry        *cloud.Retrier
	sink         obs.Sink
	logf         func(string, ...any)

	metrics   *Metrics
	gate      *admission.Gate // nil when admission is disabled
	estimator Estimator       // set iff gate is set

	mu   sync.Mutex
	jobs map[string]*jobEntry
	seq  int

	wake     chan struct{}
	tasks    chan task
	stop     chan struct{}
	loopDone chan struct{}
	workerWG sync.WaitGroup

	runCtx    context.Context
	runCancel context.CancelFunc

	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds and starts a controller: restores any snapshot in the
// store, then launches the scheduling loop and worker pool.
func New(opts Options) (*Controller, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("scheduler: Options.Backend is required")
	}
	if opts.Clock == nil {
		opts.Clock = WallClock{}
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.HistoryLimit <= 0 {
		opts.HistoryLimit = 1024
	}
	if opts.SnapshotKey == "" {
		opts.SnapshotKey = "scheduler/state.json"
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	runCtx, runCancel := context.WithCancel(context.Background())
	c := &Controller{
		backend:      opts.Backend,
		clock:        opts.Clock,
		seed:         opts.Seed,
		historyLimit: opts.HistoryLimit,
		store:        opts.Store,
		snapshotKey:  opts.SnapshotKey,
		retry:        cloud.NewRetrier(cloud.RetryPolicy{Seed: opts.Seed}),
		sink:         opts.Sink,
		logf:         opts.Logf,
		metrics:      NewMetrics(),
		jobs:         map[string]*jobEntry{},
		wake:         make(chan struct{}, 1),
		tasks:        make(chan task, opts.QueueDepth),
		stop:         make(chan struct{}),
		loopDone:     make(chan struct{}),
		runCtx:       runCtx,
		runCancel:    runCancel,
	}
	c.retry.Sink = opts.Sink
	if opts.Admission != nil {
		est, ok := opts.Backend.(Estimator)
		if !ok {
			runCancel()
			return nil, fmt.Errorf("scheduler: Options.Admission requires a Backend implementing Estimator, got %T", opts.Backend)
		}
		c.estimator = est
		c.gate = admission.NewGate(*opts.Admission, c.metrics.Registry, opts.Sink)
	}
	if c.store != nil && c.store.Exists(c.snapshotKey) {
		if err := c.restore(); err != nil {
			runCancel()
			return nil, fmt.Errorf("scheduler: restoring snapshot: %w", err)
		}
	}
	for i := 0; i < opts.Workers; i++ {
		c.workerWG.Add(1)
		go c.worker()
	}
	go c.loop()
	return c, nil
}

// Metrics exposes the registry (the HTTP layer renders it).
func (c *Controller) Metrics() *Metrics { return c.metrics }

// Submit admits a job spec, assigns an ID when absent, and schedules
// its first recurrence immediately. With the admission gate enabled,
// the submission is priced against the market first: an infeasible
// deadline returns *admission.InfeasibleError, a saturated pool and
// full wait queue return admission.ErrQueueFull, and an accepted job
// either starts (packed onto a shared deployment) or waits in the
// queue (JobStatus.Queued).
func (c *Controller) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	deadline, horizon, baseline, err := c.backend.Admit(spec)
	if err != nil {
		return JobStatus{}, err
	}
	if spec.Deadline > 0 {
		deadline = units.FromDuration(time.Duration(spec.Deadline))
	}
	now := c.clock.Now()
	c.mu.Lock()
	if spec.ID == "" {
		c.seq++
		spec.ID = formatJobID(c.seq)
	} else if _, exists := c.jobs[spec.ID]; exists {
		c.mu.Unlock()
		return JobStatus{}, fmt.Errorf("job %q already exists: %w", spec.ID, ErrJobExists)
	}
	e := &jobEntry{
		spec:     spec,
		created:  now,
		nextRun:  now, // first recurrence fires immediately
		deadline: deadline,
		horizon:  horizon,
		baseline: baseline,
	}
	if c.gate != nil {
		// Withhold from the scheduling loop until the gate decides;
		// the entry reserves the ID against concurrent submissions.
		e.queued = true
		e.queuedAt = now
	}
	c.jobs[spec.ID] = e
	st := c.statusLocked(e)
	c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
	c.mu.Unlock()

	if c.gate != nil {
		st, err = c.admit(e, spec, deadline, horizon, now)
		if err != nil {
			return JobStatus{}, err
		}
	}
	c.metrics.Inc(MetricJobsSubmitted)
	c.logf("scheduler: submitted %s (%s/%s tenant=%s slack=%.2f period=%v runs=%d)",
		spec.ID, spec.Kind, spec.Strategy, spec.TenantOrDefault(), spec.Slack, time.Duration(spec.Period), spec.Runs)
	c.kick()
	return st, nil
}

// admit runs the gate for a freshly inserted (withheld) entry: price
// the submission at its first recurrence's trace offset, then place,
// queue, or reject it. The placeholder entry is removed on rejection.
func (c *Controller) admit(e *jobEntry, spec JobSpec, deadline, horizon units.Seconds, now time.Time) (JobStatus, error) {
	wallStart := time.Now()
	est, err := c.estimator.Estimate(spec, deadline, offsetFor(c.seed, spec.ID, 0, horizon))
	var out admission.Outcome
	if err == nil {
		out, err = c.gate.Submit(admission.Request{
			JobID:  spec.ID,
			Tenant: spec.TenantOrDefault(),
			Est:    est,
			Now:    now,
		})
	}
	c.gate.ObserveDecision(time.Since(wallStart).Seconds())
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if cur, ok := c.jobs[spec.ID]; ok && cur == e {
			delete(c.jobs, spec.ID)
			c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
		}
		c.logf("scheduler: rejected %s (tenant=%s): %v", spec.ID, spec.TenantOrDefault(), err)
		return JobStatus{}, err
	}
	// The entry may have been deleted while the gate deliberated; the
	// gate's seat (or queue slot) is then released again.
	cur, ok := c.jobs[spec.ID]
	if !ok || cur != e {
		promos := c.gate.Release(spec.ID, now)
		c.activatePromotionsLocked(promos, now)
		return JobStatus{}, fmt.Errorf("job %q deleted during admission", spec.ID)
	}
	e.packConfig = est.ConfigID
	e.demand = est.Demand
	if out.Queued {
		c.logf("scheduler: queued %s (tenant=%s, position %d)", spec.ID, spec.TenantOrDefault(), out.QueuePos)
	} else {
		e.queued = false
		e.deployment = out.Deployment
		e.nextRun = now
	}
	return c.statusLocked(e), nil
}

// activatePromotionsLocked wakes queued entries the gate promoted
// during a Release. Callers hold c.mu and must kick the loop after
// unlocking.
func (c *Controller) activatePromotionsLocked(promos []admission.Promotion, now time.Time) {
	for _, p := range promos {
		e, ok := c.jobs[p.JobID]
		if !ok || !e.queued {
			continue
		}
		e.queued = false
		e.deployment = p.Deployment
		e.nextRun = now
		c.logf("scheduler: promoted %s onto %s after %.0fs in queue", p.JobID, p.Deployment, p.WaitSeconds)
	}
}

// statusLocked builds a JobStatus with admission context; callers
// hold c.mu (the gate's lock is a leaf, so nesting is safe).
func (c *Controller) statusLocked(e *jobEntry) JobStatus {
	st := e.status()
	if e.queued && c.gate != nil {
		st.QueuePos = c.gate.Position(e.spec.ID)
	}
	return st
}

// AdmissionView returns the gate's introspection snapshot; ok is
// false when admission is disabled.
func (c *Controller) AdmissionView() (admission.View, bool) {
	if c.gate == nil {
		return admission.View{}, false
	}
	return c.gate.Snapshot(), true
}

// Delete removes a job. In-flight recurrences finish but are
// discarded on completion; pending ones are skipped.
func (c *Controller) Delete(id string) bool {
	now := c.clock.Now()
	c.mu.Lock()
	e, ok := c.jobs[id]
	if ok {
		e.cancelled = true
		delete(c.jobs, id)
		if c.gate != nil {
			promos := c.gate.Release(id, now)
			c.activatePromotionsLocked(promos, now)
		}
		c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
	}
	c.mu.Unlock()
	if ok {
		c.metrics.Inc(MetricJobsDeleted)
		c.logf("scheduler: deleted %s", id)
		c.kick()
	}
	return ok
}

// Get returns one job's status.
func (c *Controller) Get(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(e), true
}

// List returns every job's status, ordered by ID.
func (c *Controller) List() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, 0, len(c.jobs))
	for _, e := range c.jobs {
		out = append(out, c.statusLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// History returns a copy of a job's retained run records.
func (c *Controller) History(id string) ([]RunRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return append([]RunRecord(nil), e.history...), true
}

// Shutdown stops scheduling, drains in-flight recurrences (aborting
// them if ctx expires first), and writes a state snapshot when a
// store is configured. Safe to call more than once.
func (c *Controller) Shutdown(ctx context.Context) error {
	c.shutdownOnce.Do(func() {
		close(c.stop)
		<-c.loopDone
		close(c.tasks)
		drained := make(chan struct{})
		go func() {
			c.workerWG.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			c.logf("scheduler: drain deadline hit, cancelling in-flight runs")
			c.runCancel()
			<-drained
		}
		c.runCancel()
		if c.store != nil {
			c.shutdownErr = c.Snapshot()
		}
		c.logf("scheduler: shut down")
	})
	return c.shutdownErr
}

// kick nudges the scheduling loop to recompute its next wake-up.
func (c *Controller) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// activeLocked counts not-done jobs; callers hold c.mu.
func (c *Controller) activeLocked() int {
	n := 0
	for _, e := range c.jobs {
		if !e.done() {
			n++
		}
	}
	return n
}

// loop is the scheduling goroutine: dispatch everything due, then
// sleep until the earliest next recurrence (or a wake/stop signal).
func (c *Controller) loop() {
	defer close(c.loopDone)
	for {
		due, next, hasNext := c.collectDue()
		for _, t := range due {
			select {
			case c.tasks <- t:
			case <-c.stop:
				return
			}
		}
		if len(due) > 0 {
			// Time may have moved while blocked on the queue; rescan.
			continue
		}
		var timer <-chan time.Time
		if hasNext {
			timer = c.clock.Until(next)
		}
		select {
		case <-c.stop:
			return
		case <-c.wake:
		case <-timer:
		}
	}
}

// collectDue advances every due job's schedule, returning the tasks
// to dispatch and the earliest future recurrence time. A job whose
// schedule fell behind (daemon restart, long advance of a virtual
// clock) catches up: every missed recurrence is dispatched.
func (c *Controller) collectDue() (due []task, next time.Time, hasNext bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.jobs {
		if e.queued {
			// Waiting for admission capacity; promotion resets nextRun.
			continue
		}
		for !e.cancelled && !e.exhausted() && !e.nextRun.After(now) {
			due = append(due, task{id: e.spec.ID, index: e.dispatched, scheduledAt: e.nextRun})
			e.dispatched++
			e.nextRun = e.nextRun.Add(time.Duration(e.spec.Period))
		}
		if !e.cancelled && !e.exhausted() {
			if !hasNext || e.nextRun.Before(next) {
				next, hasNext = e.nextRun, true
			}
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].scheduledAt.Equal(due[j].scheduledAt) {
			return due[i].scheduledAt.Before(due[j].scheduledAt)
		}
		return due[i].id < due[j].id
	})
	return due, next, hasNext
}

// worker executes recurrences until the task channel closes.
func (c *Controller) worker() {
	defer c.workerWG.Done()
	for t := range c.tasks {
		c.execute(t)
	}
}

// execute runs one recurrence and records its outcome.
func (c *Controller) execute(t task) {
	c.mu.Lock()
	e, ok := c.jobs[t.id]
	if !ok || e.cancelled {
		c.mu.Unlock()
		return
	}
	spec, deadline, horizon, baseline := e.spec, e.deadline, e.horizon, e.baseline
	c.mu.Unlock()

	c.metrics.Inc(MetricRunsStarted)
	offset := offsetFor(c.seed, t.id, t.index, horizon)
	startedAt := c.clock.Now()
	wallStart := time.Now()
	res, err := c.backend.Run(c.runCtx, spec, offset, offset+deadline)
	wall := time.Since(wallStart).Seconds()

	rec := RunRecord{
		Index:          t.index,
		ScheduledAt:    t.scheduledAt,
		StartedAt:      startedAt,
		FinishedAt:     c.clock.Now(),
		Offset:         float64(offset),
		WallSeconds:    wall,
		Cost:           float64(res.Cost),
		Finished:       res.Finished,
		MissedDeadline: res.MissedDeadline,
		Evictions:      res.Evictions,
		Reconfigs:      res.Reconfigs,
		Checkpoints:    res.Checkpoints,
		Decisions:      res.Decisions,
	}
	if baseline > 0 {
		rec.NormCost = float64(res.Cost) / float64(baseline)
	}
	if err != nil {
		rec.Error = err.Error()
		c.metrics.Inc(MetricRunsFailed)
		c.logf("scheduler: %s run %d failed: %v", t.id, t.index, err)
	} else {
		c.metrics.Inc(MetricRunsFinished)
		if rec.MissedDeadline || !rec.Finished {
			c.metrics.Inc(MetricRunsMissed)
		}
	}
	c.metrics.ObserveRunSeconds(wall)
	c.metrics.Add(MetricEvictions, float64(rec.Evictions))
	c.metrics.Add(MetricReconfigs, float64(rec.Reconfigs))
	c.metrics.Add(MetricDecisions, float64(rec.Decisions))
	c.metrics.Add(MetricCostUSD, rec.Cost)
	c.metrics.Add(MetricBaselineUSD, float64(baseline))
	c.metrics.AddJob(MetricJobRuns, t.id, 1)
	c.metrics.AddJob(MetricJobCostUSD, t.id, rec.Cost)
	c.metrics.AddJob(MetricJobEvictions, t.id, float64(rec.Evictions))
	if err == nil && (rec.MissedDeadline || !rec.Finished) {
		c.metrics.AddJob(MetricJobMissed, t.id, 1)
	}
	if c.sink != nil {
		ev := obs.Event{
			Type:   obs.EvRun,
			Job:    t.id,
			T:      float64(offset),
			USD:    obs.Finite(rec.Cost),
			Missed: rec.MissedDeadline,
			Done:   rec.Finished,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		c.sink.Emit(ev)
	}

	if c.gate != nil {
		c.gate.ObserveCost(spec.TenantOrDefault(), rec.Cost)
	}

	promoted := false
	c.mu.Lock()
	e, ok = c.jobs[t.id] // the job may have been deleted mid-run
	if !ok || e.cancelled {
		c.mu.Unlock()
		return
	}
	e.completed++
	e.agg.observe(rec, baseline)
	e.history = append(e.history, rec)
	if len(e.history) > c.historyLimit {
		e.history = e.history[len(e.history)-c.historyLimit:]
	}
	if e.done() {
		c.metrics.SetGauge(MetricJobsActive, float64(c.activeLocked()))
		c.logf("scheduler: %s completed all %d runs (norm cost %.2f×OD, %d missed)",
			t.id, e.completed, e.agg.MeanNormCost, e.agg.Missed)
		if c.gate != nil {
			// The finished job frees its deployment share; waiters with
			// capacity now get their first recurrence scheduled.
			now := c.clock.Now()
			promos := c.gate.Release(t.id, now)
			c.activatePromotionsLocked(promos, now)
			promoted = len(promos) > 0
		}
	}
	c.mu.Unlock()
	if promoted {
		c.kick()
	}
}
