package scheduler_test

// DistBackend regression tests for the runtime→dist control-plane PR:
// cancellation aborts a live cluster, failed runs keep their
// checkpoint blobs (and the next attempt resumes them), and the
// reported eviction count is the actual restart count.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/dist"
	"hourglass/internal/obs"
	"hourglass/internal/scheduler"
)

func distTestSystem(t *testing.T) *hourglass.System {
	t.Helper()
	sys, err := hourglass.New(hourglass.Options{Seed: 5, TraceDays: 6})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func distTestSpec(id string) scheduler.JobSpec {
	return scheduler.JobSpec{
		ID: id, Kind: hourglass.PageRank,
		Strategy: hourglass.StrategyHourglass, Slack: 0.5,
		Period: scheduler.Duration(30 * time.Minute), Runs: 1,
	}
}

// switchSink is a backend sink whose behaviour changes between runs:
// while armed it cancels a context at the nth superstep or first
// checkpoint; disarmed it just records.
type switchSink struct {
	mu        sync.Mutex
	cancel    context.CancelFunc // nil once disarmed
	onEvCkpt  bool               // cancel on checkpoint instead of superstep
	atStep    int                // cancel at the nth superstep event
	steps     int
	recorded  []obs.Event
	cancelled bool
}

func (s *switchSink) Emit(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorded = append(s.recorded, e)
	if s.cancel == nil || s.cancelled {
		return
	}
	switch {
	case s.onEvCkpt && e.Type == obs.EvCheckpoint:
		s.cancelled = true
		s.cancel()
	case !s.onEvCkpt && e.Type == obs.EvSuperstep:
		s.steps++
		if s.steps >= s.atStep {
			s.cancelled = true
			s.cancel()
		}
	}
}

func (s *switchSink) disarm() {
	s.mu.Lock()
	s.cancel = nil
	s.recorded = s.recorded[:0]
	s.mu.Unlock()
}

func (s *switchSink) events() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.recorded...)
}

// TestDistBackendCancelAborts is the ctx satellite's regression test:
// cancelling the scheduler context mid-run must abort the live cluster
// within the barrier timeout, not be noticed only after the job
// finished on its own.
func TestDistBackendCancelAborts(t *testing.T) {
	sys := distTestSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &switchSink{cancel: cancel, atStep: 2}
	be := &scheduler.DistBackend{Sys: sys, GraphScale: 8, Sink: sink, Logf: t.Logf}
	spec := distTestSpec("t-cancel")
	deadline, _, _, err := be.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	_, err = be.Run(ctx, spec, 0, deadline)
	elapsed := time.Since(begin)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, beyond the 30s barrier timeout", elapsed)
	}
}

// TestDistBackendKeepsBlobsOnFailure is the cleanup satellite's
// regression test: a failed run must NOT clear its checkpoint blobs,
// and the job's next attempt must resume from them (then clear on
// success).
func TestDistBackendKeepsBlobsOnFailure(t *testing.T) {
	sys := distTestSystem(t)
	store := cloud.NewDatastore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &switchSink{cancel: cancel, onEvCkpt: true}
	be := &scheduler.DistBackend{Sys: sys, GraphScale: 8, Store: store, Sink: sink, Logf: t.Logf}
	spec := distTestSpec("t-keep")
	deadline, _, _, err := be.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(ctx, spec, 0, deadline); err == nil {
		t.Fatal("run survived a cancelled context")
	}
	keys := store.Keys()
	if len(keys) == 0 {
		t.Fatal("failed run cleared its checkpoint blobs — nothing left to resume")
	}

	// The next attempt for the same job must pick the blobs up: its
	// first superstep is past 1 because the session resumed from the
	// failed run's checkpoint.
	sink.disarm()
	res, err := be.Run(context.Background(), spec, 0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("resumed run did not finish: %+v", res)
	}
	first := 0
	for _, e := range sink.events() {
		if e.Type == obs.EvSuperstep {
			first = e.Superstep
			break
		}
	}
	if first <= 1 {
		t.Fatalf("resumed run started at superstep %d, want a checkpoint resume past 1", first)
	}
	if keys := store.Keys(); len(keys) != 0 {
		t.Fatalf("%d keys survived the successful resume: %v", len(keys), keys)
	}
}

// TestDistBackendReportsRestartCount is the eviction-count satellite's
// regression test: the result must report the actual number of
// restarts, not a hardcoded 1.
func TestDistBackendReportsRestartCount(t *testing.T) {
	sys := distTestSystem(t)
	be := &scheduler.DistBackend{
		Sys: sys, GraphScale: 8, Logf: t.Logf,
		ShardOpts: func(attempt, shard int) dist.ShardOptions {
			var opts dist.ShardOptions
			if attempt < 2 && shard == 0 {
				opts.DieAtSuperstep = 3
			}
			return opts
		},
	}
	spec := distTestSpec("t-restarts")
	deadline, _, _, err := be.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Run(context.Background(), spec, 0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("run did not finish: %+v", res)
	}
	if res.Evictions != 2 {
		t.Fatalf("Evictions = %d, want the 2 scripted restarts", res.Evictions)
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
}
