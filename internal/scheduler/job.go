package scheduler

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"hourglass"
	"hourglass/internal/units"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30m") and unmarshals from either that form or a plain number of
// seconds, so both `"period": "30m"` and `"period": 1800` work on the
// wire.
type Duration time.Duration

// MarshalJSON renders the Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or seconds-as-number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("scheduler: bad duration %q: %w", x, err)
		}
		*d = Duration(dd)
	case float64:
		*d = Duration(time.Duration(x * float64(time.Second)))
	default:
		return fmt.Errorf("scheduler: duration must be a string or seconds, got %T", v)
	}
	return nil
}

// JobSpec describes one recurrent job: what to run, how to provision
// it, how much slack its deadline carries, and how often it recurs.
type JobSpec struct {
	// ID is assigned by the controller when empty.
	ID string `json:"id,omitempty"`
	// Kind is the benchmark job (pagerank, sssp, graphcoloring).
	Kind hourglass.JobKind `json:"kind"`
	// Strategy is the provisioning strategy for every recurrence.
	Strategy hourglass.Strategy `json:"strategy"`
	// Slack is the §8.2 slack fraction: deadline = fixed + exec +
	// slack·exec.
	Slack float64 `json:"slack"`
	// Deadline, when positive, overrides the slack-derived relative
	// deadline. Slack-derived deadlines are feasible by construction;
	// an explicit one may undercut the last-resort bound, which the
	// admission gate rejects with 422.
	Deadline Duration `json:"deadline,omitempty"`
	// Period separates consecutive recurrence starts.
	Period Duration `json:"period"`
	// Runs bounds the total recurrences (0 = unbounded).
	Runs int `json:"runs,omitempty"`
	// Tenant attributes the job for multi-tenant admission accounting
	// ("" = "default").
	Tenant string `json:"tenant,omitempty"`
}

// TenantOrDefault returns the tenant label, defaulting untagged jobs
// into one shared bucket.
func (s JobSpec) TenantOrDefault() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// Validate admission-checks a spec so nothing invalid ever reaches
// the scheduling loop.
func (s JobSpec) Validate() error {
	if _, err := hourglass.ParseJobKind(string(s.Kind)); err != nil {
		return err
	}
	if err := hourglass.ValidateStrategy(s.Strategy); err != nil {
		return err
	}
	if s.Slack < 0 {
		return fmt.Errorf("scheduler: negative slack %v", s.Slack)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("scheduler: negative deadline %v", time.Duration(s.Deadline))
	}
	if s.Period <= 0 {
		return fmt.Errorf("scheduler: period must be positive, got %v", time.Duration(s.Period))
	}
	if s.Runs < 0 {
		return fmt.Errorf("scheduler: negative run count %d", s.Runs)
	}
	return nil
}

// RunRecord is one completed (or failed) recurrence.
type RunRecord struct {
	Index       int       `json:"index"`
	ScheduledAt time.Time `json:"scheduledAt"`
	StartedAt   time.Time `json:"startedAt"`
	FinishedAt  time.Time `json:"finishedAt"`
	// Offset is the market-trace start offset (virtual seconds) the
	// recurrence simulated from.
	Offset float64 `json:"offsetSeconds"`
	// WallSeconds is the real decision latency of the recurrence
	// (how long the simulation + provisioning decisions took).
	WallSeconds    float64 `json:"wallSeconds"`
	Cost           float64 `json:"costUSD"`
	NormCost       float64 `json:"normCost"`
	Finished       bool    `json:"finished"`
	MissedDeadline bool    `json:"missedDeadline"`
	Evictions      int     `json:"evictions"`
	Reconfigs      int     `json:"reconfigs"`
	Checkpoints    int     `json:"checkpoints"`
	Decisions      int     `json:"decisions"`
	Error          string  `json:"error,omitempty"`
}

// Aggregates accumulate over a job's lifetime, maintained
// incrementally so capped histories never lose the totals.
type Aggregates struct {
	Runs         int     `json:"runs"`
	Failed       int     `json:"failed"`
	Missed       int     `json:"missed"`
	Evictions    int     `json:"evictions"`
	Reconfigs    int     `json:"reconfigs"`
	CostUSD      float64 `json:"costUSD"`
	BaselineUSD  float64 `json:"baselineUSD"`
	MeanNormCost float64 `json:"meanNormCost"`
}

func (a *Aggregates) observe(rec RunRecord, baseline units.USD) {
	a.Runs++
	if rec.Error != "" {
		a.Failed++
	}
	if rec.MissedDeadline || (!rec.Finished && rec.Error == "") {
		a.Missed++
	}
	a.Evictions += rec.Evictions
	a.Reconfigs += rec.Reconfigs
	a.CostUSD += rec.Cost
	a.BaselineUSD += float64(baseline)
	if a.BaselineUSD > 0 {
		a.MeanNormCost = a.CostUSD / a.BaselineUSD
	}
}

// JobStatus is the control-plane view of one job.
type JobStatus struct {
	Spec       JobSpec    `json:"spec"`
	Created    time.Time  `json:"created"`
	NextRun    *time.Time `json:"nextRun,omitempty"` // nil once exhausted
	Dispatched int        `json:"dispatched"`
	Completed  int        `json:"completed"`
	Done       bool       `json:"done"`
	Agg        Aggregates `json:"aggregates"`
	// DeadlineSeconds is the relative per-recurrence deadline the
	// slack fraction resolves to.
	DeadlineSeconds float64 `json:"deadlineSeconds"`
	HistoryLen      int     `json:"historyLen"`
	// Queued reports the job is parked in the admission wait queue
	// (not yet scheduled); QueuePos is its 1-based EDF position.
	Queued   bool `json:"queued,omitempty"`
	QueuePos int  `json:"queuePos,omitempty"`
	// Deployment names the shared deployment the job is packed onto.
	Deployment string `json:"deployment,omitempty"`
}

// jobEntry is the controller's internal state for one job.
type jobEntry struct {
	spec     JobSpec
	created  time.Time
	nextRun  time.Time
	deadline units.Seconds // relative, resolved at admission
	horizon  units.Seconds // trace horizon bounding start offsets
	baseline units.USD

	dispatched int // recurrences handed to the worker pool
	completed  int // recurrences finished (ok or failed)
	cancelled  bool
	history    []RunRecord
	agg        Aggregates

	// Admission state (zero when the gate is disabled): a queued job
	// is withheld from collectDue until promoted; a placed one records
	// its deployment and the packing class/share for snapshot restore.
	queued     bool
	queuedAt   time.Time
	deployment string
	packConfig string
	demand     float64
}

// exhausted reports whether every bounded recurrence has been
// dispatched.
func (e *jobEntry) exhausted() bool {
	return e.spec.Runs > 0 && e.dispatched >= e.spec.Runs
}

// done reports whether the job will never run again.
func (e *jobEntry) done() bool {
	return e.cancelled || (e.exhausted() && e.completed >= e.dispatched)
}

func (e *jobEntry) status() JobStatus {
	st := JobStatus{
		Spec:            e.spec,
		Created:         e.created,
		Dispatched:      e.dispatched,
		Completed:       e.completed,
		Done:            e.done(),
		Agg:             e.agg,
		DeadlineSeconds: float64(e.deadline),
		HistoryLen:      len(e.history),
		Queued:          e.queued,
		Deployment:      e.deployment,
	}
	if !e.cancelled && !e.exhausted() && !e.queued {
		next := e.nextRun
		st.NextRun = &next
	}
	return st
}

// offsetFor draws the deterministic trace start offset for recurrence
// `index`: a hash of (controller seed, job ID, index) seeds the draw,
// so offsets are stable across daemon restarts and independent of
// execution order.
func offsetFor(seed int64, jobID string, index int, horizon units.Seconds) units.Seconds {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, c := range []byte(jobID) {
		h ^= uint64(c)
		h *= 0x100000001B3
	}
	h ^= uint64(index) * 0x9E3779B97F4A7C15
	// splitmix64 finish for avalanche.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	frac := float64(h>>11) / float64(1<<53)
	return units.Seconds(frac * float64(horizon))
}

// formatJobID renders sequential job IDs (job-1, job-2, ...).
func formatJobID(n int) string { return "job-" + strconv.Itoa(n) }
