package scheduler

import (
	"hourglass"
	"hourglass/internal/admission"
	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/perfmodel"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// Estimator is the admission-pricing seam: backends that can consult
// the market for a submission implement it, and Options.Admission
// requires one. `deadline` is the effective relative deadline
// (explicit override or slack-derived) and `at` the trace offset the
// first recurrence would simulate from — "current market prices" for
// that submission.
type Estimator interface {
	Estimate(spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error)
}

// systemEstimate prices one submission against a shared
// hourglass.System: the feasibility bound is the last-resort
// configuration's fixed + exec time (a deadline under it fails on
// every configuration), and the packing class/demand come from one
// provisioner consultation at the submission's trace offset — the
// same sim.Decide call the simulator's first decision makes, so the
// admission decision sees exactly the prices the run would.
func systemEstimate(sys *hourglass.System, sink obs.Sink, spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error) {
	env, err := sys.Env(spec.Kind)
	if err != nil {
		return admission.Estimate{}, err
	}
	est := admission.Estimate{
		DeadlineSeconds: float64(deadline),
		RequiredSeconds: float64(env.LRC.Fixed + env.LRC.Exec),
		ConfigID:        env.LRC.Config.ID(),
		Demand:          perfmodel.DeadlineUtilization(env.LRC.Exec, env.LRC.Fixed, deadline),
	}
	if !est.Feasible() {
		// The gate rejects; no market consultation needed.
		return est, nil
	}
	prov, err := sys.Provisioner(spec.Kind, spec.Strategy)
	if err != nil {
		return admission.Estimate{}, err
	}
	st := core.State{Now: at, WorkLeft: 1, Deadline: at + deadline}
	dec, cs, err := sim.Decide(env, prov, st, sink)
	if err != nil {
		return admission.Estimate{}, err
	}
	est.ExpectedCostUSD = obs.Finite(float64(dec.ExpectedCost))
	// Pack on the configuration the market chose when the job can
	// share it; a demand above unit capacity falls back to the
	// last-resort class (the job occupies a full deployment anyway).
	if d := perfmodel.DeadlineUtilization(cs.Exec, cs.Fixed, deadline); d <= admission.DeploymentCapacity {
		est.ConfigID = dec.Config.ID()
		est.Demand = d
	}
	return est, nil
}

// Estimate implements Estimator on the simulator backend.
func (b SystemBackend) Estimate(spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error) {
	return systemEstimate(b.Sys, b.Sink, spec, deadline, at)
}

// Estimate implements Estimator: engine recurrences are priced by the
// same env as simulated ones.
func (b *EngineBackend) Estimate(spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error) {
	return systemEstimate(b.Sys, b.Sink, spec, deadline, at)
}

// Estimate implements Estimator: dist recurrences are priced by the
// same env as simulated ones.
func (b *DistBackend) Estimate(spec JobSpec, deadline, at units.Seconds) (admission.Estimate, error) {
	return systemEstimate(b.Sys, b.Sink, spec, deadline, at)
}

var _ Estimator = SystemBackend{}
var _ Estimator = (*EngineBackend)(nil)
var _ Estimator = (*DistBackend)(nil)
