package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/faultinject"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// stubBackend is an instant, deterministic Backend for controller
// unit tests.
type stubBackend struct {
	mu    sync.Mutex
	runs  int
	fail  bool
	block bool // Run parks until ctx is cancelled
}

func (b *stubBackend) Admit(spec JobSpec) (units.Seconds, units.Seconds, units.USD, error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, 0, err
	}
	return 1000, units.Day, 10, nil
}

func (b *stubBackend) Run(ctx context.Context, spec JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	if b.block {
		<-ctx.Done()
		return sim.RunResult{}, ctx.Err()
	}
	if b.fail {
		return sim.RunResult{}, errors.New("synthetic failure")
	}
	return sim.RunResult{
		Cost: 2, Finished: true, Completion: start + deadline/2,
		Evictions: 1, Reconfigs: 2, Decisions: 5,
	}, nil
}

func (b *stubBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

func newTestController(t *testing.T, b Backend, vc *VirtualClock, store cloud.BlobStore) *Controller {
	t.Helper()
	c, err := New(Options{Backend: b, Clock: vc, Workers: 2, Seed: 7, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c
}

// waitFor polls cond with a real-time deadline; the simulated work
// completes in microseconds, so this only bridges goroutine handoff.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func pagerankSpec(period time.Duration, runs int) JobSpec {
	return JobSpec{
		Kind:     hourglass.PageRank,
		Strategy: hourglass.StrategyHourglass,
		Slack:    0.5,
		Period:   Duration(period),
		Runs:     runs,
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestController(t, &stubBackend{}, NewVirtualClock(epoch), nil)
	cases := []JobSpec{
		{Kind: "nope", Strategy: hourglass.StrategyHourglass, Slack: 0.5, Period: Duration(time.Minute)},
		{Kind: hourglass.PageRank, Strategy: "nope", Slack: 0.5, Period: Duration(time.Minute)},
		{Kind: hourglass.PageRank, Strategy: hourglass.StrategyHourglass, Slack: -1, Period: Duration(time.Minute)},
		{Kind: hourglass.PageRank, Strategy: hourglass.StrategyHourglass, Slack: 0.5, Period: 0},
		{Kind: hourglass.PageRank, Strategy: hourglass.StrategyHourglass, Slack: 0.5, Period: Duration(time.Minute), Runs: -1},
	}
	for i, spec := range cases {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
	spec := pagerankSpec(time.Minute, 1)
	spec.ID = "dup"
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(spec); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate ID accepted (err=%v)", err)
	}
}

func TestSubmitDuplicateIsTypedConflict(t *testing.T) {
	// Regression: the HTTP layer used to sniff err.Error() for "already
	// exists", so any rewording of the message silently downgraded the
	// 409 to a 400. The conflict is now a typed sentinel.
	c := newTestController(t, &stubBackend{}, NewVirtualClock(epoch), nil)
	spec := pagerankSpec(time.Minute, 1)
	spec.ID = "typed-dup"
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(spec)
	if !errors.Is(err, ErrJobExists) {
		t.Fatalf("duplicate submit: err = %v, want errors.Is(ErrJobExists)", err)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	body := `{"id":"typed-dup","kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"1m","runs":1}`
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit over HTTP: status %d, want 409", resp.StatusCode)
	}
}

func TestRestoreSkipsCorruptSnapshot(t *testing.T) {
	// Regression: a scribbled state object used to fail New outright.
	// A daemon must detect the damage and boot with an empty table.
	for name, blob := range map[string][]byte{
		"not JSON":     []byte("{{{ definitely not json"),
		"bad checksum": []byte(`{"crc32":"deadbeef","state":{"seq":3,"jobs":[]}}`),
	} {
		store := cloud.NewDatastore()
		store.Put("scheduler/state.json", blob)
		c := newTestController(t, &stubBackend{}, NewVirtualClock(epoch), store)
		if jobs := c.List(); len(jobs) != 0 {
			t.Errorf("%s: corrupt snapshot restored %d jobs", name, len(jobs))
		}
		// The table is usable: a fresh submit goes through.
		if _, err := c.Submit(pagerankSpec(time.Minute, 1)); err != nil {
			t.Errorf("%s: submit after corrupt-skip: %v", name, err)
		}
	}
}

func TestRestoreAcceptsLegacySnapshot(t *testing.T) {
	// Pre-envelope snapshots are plain snapshotState documents; they
	// must still restore (without checksum verification).
	legacy, err := json.Marshal(snapshotState{
		SavedAt: epoch,
		Seq:     5,
		Jobs: []snapshotJob{{
			Spec:      func() JobSpec { s := pagerankSpec(time.Minute, 2); s.ID = "job-5"; return s }(),
			Created:   epoch,
			NextRun:   epoch.Add(time.Hour),
			Completed: 1,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := cloud.NewDatastore()
	store.Put("scheduler/state.json", legacy)
	c := newTestController(t, &stubBackend{}, NewVirtualClock(epoch), store)
	st, ok := c.Get("job-5")
	if !ok || st.Completed != 1 {
		t.Fatalf("legacy snapshot not restored: %+v (ok=%v)", st, ok)
	}
}

func TestSnapshotRoundTripSurvivesFaultyStore(t *testing.T) {
	// Snapshot writes and reads go through retry + checksum, so a store
	// injecting transient errors must not lose the job table.
	faulty := faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{
		Seed: 17, PError: 0.6, MaxConsecutive: 2,
	})
	vc := NewVirtualClock(epoch)
	c := newTestController(t, &stubBackend{}, vc, faulty)
	st, err := c.Submit(pagerankSpec(30*time.Minute, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first run", func() bool { s, _ := c.Get(st.Spec.ID); return s.Completed == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("snapshot under faults: %v", err)
	}

	c2 := newTestController(t, &stubBackend{}, vc, faulty)
	got, ok := c2.Get(st.Spec.ID)
	if !ok || got.Completed != 1 {
		t.Fatalf("restore under faults: %+v (ok=%v)", got, ok)
	}
	if faulty.Stats().Errors == 0 {
		t.Error("fault schedule injected nothing — test is vacuous")
	}
}

func TestBoundedJobRunsToCompletion(t *testing.T) {
	b := &stubBackend{}
	vc := NewVirtualClock(epoch)
	c := newTestController(t, b, vc, nil)

	st, err := c.Submit(pagerankSpec(30*time.Minute, 3))
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	if id == "" {
		t.Fatal("no ID assigned")
	}

	// First recurrence fires immediately at submit time.
	waitFor(t, "first run", func() bool { s, _ := c.Get(id); return s.Completed == 1 })
	vc.Advance(30 * time.Minute)
	waitFor(t, "second run", func() bool { s, _ := c.Get(id); return s.Completed == 2 })
	vc.Advance(30 * time.Minute)
	waitFor(t, "third run", func() bool { s, _ := c.Get(id); return s.Completed == 3 })

	s, _ := c.Get(id)
	if !s.Done || s.NextRun != nil {
		t.Errorf("job not done after bounded runs: %+v", s)
	}
	hist, _ := c.History(id)
	if len(hist) != 3 {
		t.Fatalf("history length %d, want 3", len(hist))
	}
	for i, rec := range hist {
		if rec.Error != "" || !rec.Finished {
			t.Errorf("run %d: %+v", i, rec)
		}
		if rec.NormCost != 0.2 { // cost 2 over baseline 10
			t.Errorf("run %d: norm cost %v", i, rec.NormCost)
		}
	}
	// A done job schedules nothing more.
	vc.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if got := b.count(); got != 3 {
		t.Errorf("backend ran %d times, want 3", got)
	}
	if s.Agg.Evictions != 3 || s.Agg.Reconfigs != 6 || s.Agg.CostUSD != 6 {
		t.Errorf("aggregates: %+v", s.Agg)
	}
}

func TestCatchUpDispatch(t *testing.T) {
	b := &stubBackend{}
	vc := NewVirtualClock(epoch)
	c := newTestController(t, b, vc, nil)

	st, err := c.Submit(pagerankSpec(10*time.Minute, 0)) // unbounded
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial run", func() bool { s, _ := c.Get(st.Spec.ID); return s.Completed == 1 })

	// One large advance crosses three periods: the daemon catches up
	// on every missed recurrence.
	vc.Advance(30 * time.Minute)
	waitFor(t, "catch-up", func() bool { s, _ := c.Get(st.Spec.ID); return s.Completed == 4 })

	hist, _ := c.History(st.Spec.ID)
	seen := map[int]bool{}
	for _, rec := range hist {
		seen[rec.Index] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Errorf("missing recurrence index %d", i)
		}
	}
}

func TestDeleteJob(t *testing.T) {
	b := &stubBackend{}
	vc := NewVirtualClock(epoch)
	c := newTestController(t, b, vc, nil)

	st, err := c.Submit(pagerankSpec(10*time.Minute, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial run", func() bool { s, _ := c.Get(st.Spec.ID); return s.Completed == 1 })

	if !c.Delete(st.Spec.ID) {
		t.Fatal("delete failed")
	}
	if c.Delete(st.Spec.ID) {
		t.Error("double delete succeeded")
	}
	if _, ok := c.Get(st.Spec.ID); ok {
		t.Error("deleted job still visible")
	}
	before := b.count()
	vc.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if got := b.count(); got != before {
		t.Errorf("deleted job still ran (%d -> %d)", before, got)
	}
	if v := c.Metrics().Value(MetricJobsDeleted); v != 1 {
		t.Errorf("deleted counter %v", v)
	}
	if v := c.Metrics().Value(MetricJobsActive); v != 0 {
		t.Errorf("active gauge %v", v)
	}
}

func TestFailedRunsAreRecorded(t *testing.T) {
	b := &stubBackend{fail: true}
	vc := NewVirtualClock(epoch)
	c := newTestController(t, b, vc, nil)

	st, err := c.Submit(pagerankSpec(10*time.Minute, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failed run", func() bool { s, _ := c.Get(st.Spec.ID); return s.Completed == 1 })
	hist, _ := c.History(st.Spec.ID)
	if len(hist) != 1 || hist[0].Error == "" {
		t.Fatalf("history: %+v", hist)
	}
	if v := c.Metrics().Value(MetricRunsFailed); v != 1 {
		t.Errorf("failed counter %v", v)
	}
	s, _ := c.Get(st.Spec.ID)
	if s.Agg.Failed != 1 {
		t.Errorf("aggregates: %+v", s.Agg)
	}
}

func TestShutdownDrainDeadlineCancelsStuckRuns(t *testing.T) {
	b := &stubBackend{block: true}
	vc := NewVirtualClock(epoch)
	c, err := New(Options{Backend: b, Clock: vc, Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(pagerankSpec(time.Minute, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "run to start", func() bool { return b.count() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { _ = c.Shutdown(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never returned: drain deadline did not cancel the stuck run")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	b := &stubBackend{}
	vc := NewVirtualClock(epoch)
	store := cloud.NewDatastore()
	c := newTestController(t, b, vc, store)

	st1, err := c.Submit(pagerankSpec(30*time.Minute, 2))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(pagerankSpec(45*time.Minute, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both first runs", func() bool {
		a, _ := c.Get(st1.Spec.ID)
		bb, _ := c.Get(st2.Spec.ID)
		return a.Completed == 1 && bb.Completed == 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !store.Exists("scheduler/state.json") {
		t.Fatal("no snapshot written")
	}

	// A fresh controller over the same store resumes the job table.
	c2 := newTestController(t, b, vc, store)
	a, ok := c2.Get(st1.Spec.ID)
	if !ok || a.Completed != 1 || a.Agg.Runs != 1 {
		t.Fatalf("job 1 not restored: %+v (ok=%v)", a, ok)
	}
	hist, _ := c2.History(st1.Spec.ID)
	if len(hist) != 1 {
		t.Fatalf("restored history length %d", len(hist))
	}
	// New IDs continue after the restored sequence instead of
	// colliding with it.
	st3, err := c2.Submit(pagerankSpec(time.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st3.Spec.ID == st1.Spec.ID || st3.Spec.ID == st2.Spec.ID {
		t.Errorf("restored controller reissued ID %s", st3.Spec.ID)
	}
	// The bounded job still owes one recurrence; the unbounded one
	// keeps going.
	vc.Advance(45 * time.Minute)
	waitFor(t, "resumed schedules", func() bool {
		a, _ := c2.Get(st1.Spec.ID)
		bb, _ := c2.Get(st2.Spec.ID)
		return a.Completed == 2 && a.Done && bb.Completed == 2
	})
}

func TestOffsetForDeterministicAndBounded(t *testing.T) {
	horizon := units.Day
	seen := map[units.Seconds]bool{}
	for i := 0; i < 100; i++ {
		a := offsetFor(7, "job-1", i, horizon)
		b := offsetFor(7, "job-1", i, horizon)
		if a != b {
			t.Fatalf("offset not deterministic at index %d: %v vs %v", i, a, b)
		}
		if a < 0 || a >= horizon {
			t.Fatalf("offset %v outside [0, %v)", a, horizon)
		}
		seen[a] = true
	}
	if len(seen) < 90 {
		t.Errorf("offsets poorly distributed: %d unique of 100", len(seen))
	}
	if offsetFor(7, "job-1", 0, horizon) == offsetFor(7, "job-2", 0, horizon) {
		t.Error("different jobs drew the same offset")
	}
	if offsetFor(7, "job-1", 0, horizon) == offsetFor(8, "job-1", 0, horizon) {
		t.Error("different seeds drew the same offset")
	}
}

func TestDurationJSON(t *testing.T) {
	var spec JobSpec
	if err := json.Unmarshal([]byte(`{"kind":"pagerank","strategy":"hourglass","slack":0.5,"period":"30m"}`), &spec); err != nil {
		t.Fatal(err)
	}
	if time.Duration(spec.Period) != 30*time.Minute {
		t.Errorf("string period: %v", time.Duration(spec.Period))
	}
	if err := json.Unmarshal([]byte(`{"period":1800}`), &spec); err != nil {
		t.Fatal(err)
	}
	if time.Duration(spec.Period) != 30*time.Minute {
		t.Errorf("numeric period: %v", time.Duration(spec.Period))
	}
	if err := json.Unmarshal([]byte(`{"period":true}`), &spec); err == nil {
		t.Error("bool period accepted")
	}
	if err := json.Unmarshal([]byte(`{"period":"wat"}`), &spec); err == nil {
		t.Error("malformed period accepted")
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Errorf("marshal: %s, %v", out, err)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.Inc(MetricRunsStarted)
	m.Add(MetricCostUSD, 1.5)
	m.SetGauge(MetricJobsActive, 3)
	m.ObserveRunSeconds(0.002)
	m.ObserveRunSeconds(0.2)
	m.ObserveRunSeconds(42) // lands in +Inf

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE hourglass_runs_started_total counter",
		"hourglass_runs_started_total 1",
		"hourglass_cost_usd_total 1.5",
		"# TYPE hourglass_jobs_active gauge",
		"hourglass_jobs_active 3",
		"# TYPE hourglass_run_duration_seconds histogram",
		`hourglass_run_duration_seconds_bucket{le="0.005"} 1`,
		`hourglass_run_duration_seconds_bucket{le="0.5"} 2`,
		`hourglass_run_duration_seconds_bucket{le="+Inf"} 3`,
		"hourglass_run_duration_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if m.Value(MetricRunsStarted) != 1 {
		t.Error("Value(counter) broken")
	}
}
