package scheduler

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"

	"hourglass/internal/admission"
	"hourglass/internal/obs"
)

// Handler returns the daemon's control plane:
//
//	POST   /jobs              submit a JobSpec, returns its JobStatus
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         one job's status
//	DELETE /jobs/{id}         remove a job
//	GET    /jobs/{id}/history the job's run records
//	GET    /admission         admission gate state (404 when disabled)
//	GET    /healthz           liveness probe
//	GET    /metrics           Prometheus text exposition
//	GET    /debug/trace       recent trace events (JSONL), newest last
//	GET    /debug/pprof/*     standard pprof profiles
//
// With the admission gate enabled, POST /jobs answers 201 for an
// admitted job, 202 for one parked in the wait queue (queuePos in the
// body), 422 for an infeasible deadline (feasibility gap in the
// body), and 429 when both the pool and the queue are full.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", c.handleList)
	mux.HandleFunc("GET /jobs/{id}", c.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", c.handleDelete)
	mux.HandleFunc("GET /jobs/{id}/history", c.handleHistory)
	mux.HandleFunc("GET /admission", c.handleAdmission)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /debug/trace", c.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Controller) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := c.Submit(spec)
	if err != nil {
		var inf *admission.InfeasibleError
		switch {
		case errors.As(err, &inf):
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error":           inf.Error(),
				"gapSeconds":      inf.GapSeconds(),
				"deadlineSeconds": inf.DeadlineSeconds,
				"requiredSeconds": inf.RequiredSeconds,
			})
		case errors.Is(err, admission.ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrJobExists):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusCreated
	if st.Queued {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

func (c *Controller) handleAdmission(w http.ResponseWriter, _ *http.Request) {
	view, ok := c.AdmissionView()
	if !ok {
		http.Error(w, "admission gate is not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (c *Controller) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.List())
}

func (c *Controller) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Get(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Controller) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !c.Delete(r.PathValue("id")) {
		http.NotFound(w, r)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Controller) handleHistory(w http.ResponseWriter, r *http.Request) {
	hist, ok := c.History(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	if hist == nil {
		hist = []RunRecord{}
	}
	writeJSON(w, http.StatusOK, hist)
}

func (c *Controller) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	jobs, active := len(c.jobs), c.activeLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   jobs,
		"active": active,
		"now":    c.clock.Now(),
	})
}

func (c *Controller) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The retrier keeps its own atomics; reconcile them into the
	// registry at scrape time so the counters stay monotonic.
	attempts, retried := c.retry.Stats()
	c.metrics.Add(MetricStoreAttempts, float64(attempts)-c.metrics.Value(MetricStoreAttempts))
	c.metrics.Add(MetricStoreRetries, float64(retried)-c.metrics.Value(MetricStoreRetries))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = c.metrics.WriteTo(w)
}

// handleTrace dumps the recent trace ring as JSONL. It requires the
// controller's sink to expose Recent() — obs.Tracer does; a plain
// streaming sink (or no sink) answers 404.
func (c *Controller) handleTrace(w http.ResponseWriter, r *http.Request) {
	ring, ok := c.sink.(interface{ Recent() []obs.Event })
	if !ok {
		http.Error(w, "tracing is not enabled with a ring sink", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = obs.WriteJSONL(w, ring.Recent())
}
