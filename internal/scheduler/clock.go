// Package scheduler is the recurrent-job controller behind
// cmd/hourglass-serve: a long-running daemon that owns a table of
// recurring deadline-bound jobs (the paper's §3 workload model —
// "executed recurrently with a deadline"), fires each recurrence at
// its scheduled start against the shared market via sim.Runner, and
// exposes an HTTP control plane with per-job history and Prometheus
// metrics. The daemon is clock-abstracted so tests drive it on a
// virtual clock deterministically and instantly.
package scheduler

import (
	"sort"
	"sync"
	"time"
)

// Clock is the daemon's notion of time. The controller only ever
// needs "what time is it" and "wake me at t"; abstracting those two
// lets the scheduling loop run identically against the wall clock in
// production and a virtual clock in tests. Until takes an absolute
// deadline (not a delta) so a virtual clock can register the timer
// atomically against its own time — a relative API would race with
// concurrent Advance calls and could park a timer one period late.
type Clock interface {
	Now() time.Time
	// Until returns a channel that receives once the clock reaches t.
	// A deadline already passed fires immediately.
	Until(t time.Time) <-chan time.Time
}

// WallClock is the production clock.
type WallClock struct{}

// Now returns the wall time.
func (WallClock) Now() time.Time { return time.Now() }

// Until defers to time.After.
func (WallClock) Until(t time.Time) <-chan time.Time {
	d := time.Until(t)
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	return time.After(d)
}

// VirtualClock is a manually advanced clock: time only moves when
// Advance is called, and every timer whose deadline the advance
// crosses fires in deadline order. It makes the daemon's scheduling
// loop deterministic and lets a test sweep through days of
// recurrences in microseconds.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer
}

type vtimer struct {
	at time.Time
	ch chan time.Time
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Until registers a timer at the absolute virtual instant t.
func (c *VirtualClock) Until(t time.Time) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if !t.After(c.now) {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, &vtimer{at: t, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose
// deadline falls within the advance, in deadline order.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.Slice(c.timers, func(i, j int) bool { return c.timers[i].at.Before(c.timers[j].at) })
	remaining := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- t.at
		} else {
			remaining = append(remaining, t)
		}
	}
	c.timers = remaining
}

// Pending reports how many timers are armed (for tests).
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
