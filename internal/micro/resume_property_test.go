package micro_test

import (
	"errors"
	"fmt"
	"testing"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
)

// TestResumeAcrossClusteredWorkerCounts is the property the
// eviction-aware runtime stands on: pausing a canonical run whose
// vertex assignment comes from clustering micro-partitions to w1
// workers and resuming it under the clustering for w2 ≠ w1 must
// produce bits identical to an uninterrupted run. The engine-level
// pause/resume test uses hash assignments; this one exercises the
// exact assignments the runtime feeds the engine after a re-cluster.
func TestResumeAcrossClusteredWorkerCounts(t *testing.T) {
	p := graph.DefaultRMAT(9, 21)
	p.Undirected = true
	g := graph.RMAT(p)

	counts := []int{4, 8, 16} // the R4 family ladder the envs use
	part, err := micro.BuildForConfigs(g, partition.Hash{}, counts, partition.Multilevel{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assign := map[int][]int32{}
	for _, k := range counts {
		va, err := part.VertexAssignment(k)
		if err != nil {
			t.Fatalf("assignment for %d workers: %v", k, err)
		}
		assign[k] = va.Assign
	}

	apps := []struct {
		name  string
		fresh func() engine.Program
	}{
		{"pagerank", func() engine.Program { return &engine.PageRank{Iterations: 10} }},
		{"sssp", func() engine.Program { return &engine.SSSP{Source: 0} }},
		{"wcc", func() engine.Program { return &engine.WCC{} }},
	}
	for _, a := range apps {
		t.Run(a.name, func(t *testing.T) {
			ref, err := engine.Run(g, a.fresh(), engine.Config{
				Workers: 4, Assign: assign[4], Canonical: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Pause a third of the way in so real work remains on both
			// sides of the cut.
			stopAt := ref.Stats.Supersteps / 3
			if stopAt < 1 {
				stopAt = 1
			}
			for _, w1 := range counts {
				for _, w2 := range counts {
					if w1 == w2 {
						continue
					}
					t.Run(fmt.Sprintf("%d->%d", w1, w2), func(t *testing.T) {
						paused, err := engine.Run(g, a.fresh(), engine.Config{
							Workers: w1, Assign: assign[w1], Canonical: true, StopAfter: stopAt,
						})
						if !errors.Is(err, engine.ErrPaused) {
							t.Fatalf("pause: %v", err)
						}
						final, err := engine.Resume(g, a.fresh(), paused.Snapshot, engine.Config{
							Workers: w2, Assign: assign[w2], Canonical: true,
						})
						if err != nil {
							t.Fatalf("resume: %v", err)
						}
						for v := range ref.Values {
							if final.Values[v] != ref.Values[v] {
								t.Fatalf("vertex %d diverged: %x != %x", v, final.Values[v], ref.Values[v])
							}
						}
					})
				}
			}
		})
	}
}
