// Package micro implements the Hourglass fast-reload mechanism (§6 of
// the paper): an offline micro-partitioning step that over-shards the
// graph into lcm(worker counts) micro-partitions, and an online
// clustering step that merges micro-partitions into macro-partitions
// tailored to whatever deployment configuration was just provisioned.
// Clustering runs on the *quotient graph* (one vertex per
// micro-partition, edge weights = crossing edges), which is orders of
// magnitude smaller than the original graph, so a reconfiguration
// never re-partitions the full dataset.
package micro

import (
	"fmt"
	"sync"

	"hourglass/internal/graph"
	"hourglass/internal/partition"
)

// GCD returns the greatest common divisor of two positive ints.
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of the worker counts, the
// micro-partition count the paper prescribes ("the least common
// multiple of the number of worker machines used by configurations in
// C"), which guarantees equally-sized clusters for every configuration.
func LCM(ns []int) int {
	if len(ns) == 0 {
		return 1
	}
	l := ns[0]
	for _, n := range ns[1:] {
		if n <= 0 {
			panic(fmt.Sprintf("micro: non-positive worker count %d", n))
		}
		l = l / GCD(l, n) * n
	}
	return l
}

// Partitioning is the product of the offline phase: the vertex→micro
// assignment plus the reduced (quotient) graph used by the online
// clustering step. It is immutable after Build and safe for concurrent
// ClusterTo calls.
type Partitioning struct {
	// Micro assigns each vertex to one of Count micro-partitions.
	Micro partition.Partitioning
	// Count is the number of micro-partitions.
	Count int
	// BaseName records the offline partitioner used (for reporting).
	BaseName string

	quotient  *graph.Graph
	vweights  []int64
	clusterer partition.WeightedPartitioner

	mu    sync.Mutex
	cache map[int][]int32 // k -> micro→macro clustering
}

// Build runs the offline phase: partition g into count micro-partitions
// with base, then reduce to the quotient graph (Figure 4, steps 1–2).
// clusterer is used online to solve the recursive partitioning problem
// on the quotient (the paper uses METIS; we default to the multilevel
// partitioner when nil).
func Build(g *graph.Graph, base partition.Partitioner, count int, clusterer partition.WeightedPartitioner) (*Partitioning, error) {
	if count <= 0 {
		return nil, fmt.Errorf("micro: count = %d", count)
	}
	if count > g.NumVertices() && g.NumVertices() > 0 {
		count = g.NumVertices()
	}
	mp := base.Partition(g, count)
	if err := mp.Validate(); err != nil {
		return nil, fmt.Errorf("micro: base partitioner: %w", err)
	}
	q, vw := g.InducedQuotient(mp.Assign, count)
	if clusterer == nil {
		clusterer = partition.Multilevel{Seed: 1}
	}
	return &Partitioning{
		Micro:     mp,
		Count:     count,
		BaseName:  base.Name(),
		quotient:  q,
		vweights:  vw,
		clusterer: clusterer,
		cache:     make(map[int][]int32),
	}, nil
}

// BuildForConfigs is the common entry point: count = LCM of the worker
// counts appearing in the configuration set.
func BuildForConfigs(g *graph.Graph, base partition.Partitioner, workerCounts []int, clusterer partition.WeightedPartitioner) (*Partitioning, error) {
	return Build(g, base, LCM(workerCounts), clusterer)
}

// Quotient exposes the reduced graph (for inspection and tests).
func (p *Partitioning) Quotient() *graph.Graph { return p.quotient }

// MicroWeights returns the vertex counts per micro-partition.
func (p *Partitioning) MicroWeights() []int64 {
	out := make([]int64, len(p.vweights))
	copy(out, p.vweights)
	return out
}

// ClusterTo solves the online step for a k-worker configuration
// (Figure 4, steps 3–4): partition the quotient graph into k blocks
// weighted by micro-partition sizes, memoising the result per k.
// It returns the micro→macro mapping.
func (p *Partitioning) ClusterTo(k int) ([]int32, error) {
	if k <= 0 || k > p.Count {
		return nil, fmt.Errorf("micro: cannot cluster %d micro-partitions into %d blocks", p.Count, k)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.cache[k]; ok {
		return c, nil
	}
	part := p.clusterer.PartitionWeighted(p.quotient, p.vweights, k)
	if err := part.Validate(); err != nil {
		return nil, fmt.Errorf("micro: clusterer: %w", err)
	}
	p.cache[k] = part.Assign
	return part.Assign, nil
}

// VertexAssignment composes the offline and online maps into a full
// vertex→macro assignment for a k-worker configuration.
func (p *Partitioning) VertexAssignment(k int) (partition.Partitioning, error) {
	cluster, err := p.ClusterTo(k)
	if err != nil {
		return partition.Partitioning{}, err
	}
	assign := make([]int32, len(p.Micro.Assign))
	for v, m := range p.Micro.Assign {
		assign[v] = cluster[m]
	}
	return partition.Partitioning{Assign: assign, K: k}, nil
}

// QualityReport compares the clustered micro-partitioning against a
// from-scratch run of a base partitioner for one k — the Figure 8
// quantity (edge-cut degradation).
type QualityReport struct {
	K           int
	MicroCut    float64 // edge-cut fraction via cluster-of-micros
	DirectCut   float64 // edge-cut fraction of the base partitioner at k
	RandomCut   float64 // 1 − 1/k baseline
	Degradation float64 // MicroCut − DirectCut (points, can be negative)
}

// Quality evaluates the report for the given base partitioner and k.
func (p *Partitioning) Quality(g *graph.Graph, base partition.Partitioner, k int) (QualityReport, error) {
	va, err := p.VertexAssignment(k)
	if err != nil {
		return QualityReport{}, err
	}
	direct := base.Partition(g, k)
	r := QualityReport{
		K:         k,
		MicroCut:  partition.EdgeCutFraction(g, va.Assign),
		DirectCut: partition.EdgeCutFraction(g, direct.Assign),
		RandomCut: partition.RandomCutExpectation(k),
	}
	r.Degradation = r.MicroCut - r.DirectCut
	return r, nil
}

// MicrosOf returns the micro-partition ids assigned to worker block b
// under the k-way clustering — the unit of parallel, coordination-free
// recovery loading (§6.2 "parallel recovery").
func (p *Partitioning) MicrosOf(k int, b int32) ([]int32, error) {
	cluster, err := p.ClusterTo(k)
	if err != nil {
		return nil, err
	}
	var out []int32
	for m, blk := range cluster {
		if blk == b {
			out = append(out, int32(m))
		}
	}
	return out, nil
}
