package micro

import (
	"testing"
	"testing/quick"

	"hourglass/internal/graph"
	"hourglass/internal/partition"
)

func TestGCDLCM(t *testing.T) {
	cases := []struct {
		ns   []int
		want int
	}{
		{[]int{4, 8, 16}, 16},
		{[]int{3, 4}, 12},
		{[]int{2, 3, 5}, 30},
		{[]int{7}, 7},
		{nil, 1},
	}
	for _, c := range cases {
		if got := LCM(c.ns); got != c.want {
			t.Errorf("LCM(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
	if GCD(12, 18) != 6 {
		t.Errorf("GCD(12,18) = %d, want 6", GCD(12, 18))
	}
}

func TestLCMPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero worker count")
		}
	}()
	LCM([]int{4, 0})
}

func testGraph() *graph.Graph {
	p := graph.DefaultRMAT(11, 21)
	p.Undirected = true
	return graph.RMAT(p)
}

func TestBuildAndClusterBasics(t *testing.T) {
	g := testGraph()
	mp, err := BuildForConfigs(g, partition.Multilevel{Seed: 5}, []int{4, 8, 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Count != 16 {
		t.Fatalf("count = %d, want lcm(4,8,16)=16", mp.Count)
	}
	if mp.Quotient().NumVertices() != 16 {
		t.Fatalf("quotient has %d vertices", mp.Quotient().NumVertices())
	}
	for _, k := range []int{2, 4, 8, 16} {
		va, err := mp.VertexAssignment(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := va.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestClusterToCachesAndBounds(t *testing.T) {
	g := testGraph()
	mp, err := Build(g, partition.Hash{}, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mp.ClusterTo(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mp.ClusterTo(4)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("ClusterTo did not memoise")
	}
	if _, err := mp.ClusterTo(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := mp.ClusterTo(13); err == nil {
		t.Error("k > micro count accepted")
	}
}

func TestMicroQualityNearBase(t *testing.T) {
	// The headline claim of §6/Figure 8: clustering 64 micro-partitions
	// loses only a few percentage points of edge cut versus running the
	// base partitioner directly for the target k.
	g := testGraph()
	base := partition.Multilevel{Seed: 3}
	mp, err := Build(g, base, 64, partition.Multilevel{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		direct := base.Partition(g, k)
		directCut := partition.EdgeCutFraction(g, direct.Assign)
		va, err := mp.VertexAssignment(k)
		if err != nil {
			t.Fatal(err)
		}
		microCut := partition.EdgeCutFraction(g, va.Assign)
		random := partition.RandomCutExpectation(k)
		if microCut >= random {
			t.Errorf("k=%d: micro cut %.3f not better than random %.3f", k, microCut, random)
		}
		// Paper reports ≤ ~8% absolute degradation; allow 15 points of
		// headroom for the synthetic graph.
		if microCut > directCut+0.15 {
			t.Errorf("k=%d: micro cut %.3f much worse than direct %.3f", k, microCut, directCut)
		}
	}
}

func TestVertexAssignmentComposition(t *testing.T) {
	g := testGraph()
	mp, err := Build(g, partition.Chunked{}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := mp.ClusterTo(2)
	if err != nil {
		t.Fatal(err)
	}
	va, err := mp.VertexAssignment(2)
	if err != nil {
		t.Fatal(err)
	}
	for v := range va.Assign {
		if va.Assign[v] != cluster[mp.Micro.Assign[v]] {
			t.Fatalf("composition broken at vertex %d", v)
		}
	}
}

func TestMicrosOfPartitionsTheMicroSet(t *testing.T) {
	g := testGraph()
	mp, err := Build(g, partition.Hash{}, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	seen := make(map[int32]bool)
	for b := int32(0); b < int32(k); b++ {
		ms, err := mp.MicrosOf(k, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("micro %d assigned to two blocks", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("covered %d micros, want 12", len(seen))
	}
}

func TestBuildRejectsBadCount(t *testing.T) {
	g := graph.Path(4)
	if _, err := Build(g, partition.Hash{}, 0, nil); err == nil {
		t.Error("count=0 accepted")
	}
}

func TestBuildClampsCountToVertices(t *testing.T) {
	g := graph.Path(4)
	mp, err := Build(g, partition.Chunked{}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Count != 4 {
		t.Errorf("count = %d, want clamped to 4", mp.Count)
	}
}

// Property: equally-sized clusters — with the LCM micro count and a
// balanced base, every k dividing the count yields macro partitions
// whose vertex-count imbalance stays moderate.
func TestQuickClusterBalance(t *testing.T) {
	f := func(seed int64) bool {
		p := graph.DefaultRMAT(9, seed)
		p.Undirected = true
		g := graph.RMAT(p)
		mp, err := Build(g, partition.Chunked{}, 12, partition.Multilevel{Seed: seed})
		if err != nil {
			return false
		}
		for _, k := range []int{2, 3, 4, 6} {
			va, err := mp.VertexAssignment(k)
			if err != nil {
				return false
			}
			if partition.Imbalance(va.Assign, k, nil) > 1.6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQualityReport(t *testing.T) {
	g := testGraph()
	base := partition.Multilevel{Seed: 7}
	mp, err := Build(g, base, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mp.Quality(g, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 8 {
		t.Errorf("K = %d", r.K)
	}
	if r.MicroCut <= 0 || r.MicroCut >= 1 || r.DirectCut <= 0 {
		t.Errorf("cuts: %+v", r)
	}
	if r.RandomCut != 1-1.0/8 {
		t.Errorf("random cut = %v", r.RandomCut)
	}
	if r.MicroCut >= r.RandomCut {
		t.Errorf("micro cut %v not better than random %v", r.MicroCut, r.RandomCut)
	}
	if r.Degradation != r.MicroCut-r.DirectCut {
		t.Errorf("degradation inconsistent: %+v", r)
	}
	if _, err := mp.Quality(g, base, 64); err == nil {
		t.Error("k above micro count accepted")
	}
}
