// Package simnet is a discrete-event flow-level network simulator for
// the loading experiments (Figure 6 of the paper). A cluster has n
// worker nodes, each with a full-duplex NIC, plus an external
// datastore (S3 stand-in) with an aggregate bandwidth cap. Transfers
// are flows; concurrent flows share ports max–min fairly and the
// simulator advances virtual time from flow completion to flow
// completion (progressive filling).
package simnet

import (
	"fmt"
	"math"

	"hourglass/internal/units"
)

// DatastoreNode is the pseudo node id of the external datastore.
const DatastoreNode = -1

// Config sets cluster bandwidths in bytes per (virtual) second.
type Config struct {
	// NICBandwidth is each worker's send and receive capacity.
	NICBandwidth float64
	// DatastoreAggregate caps total concurrent datastore throughput.
	DatastoreAggregate float64
	// DatastorePerConn caps a single flow from/to the datastore (S3
	// throttles per connection).
	DatastorePerConn float64
	// Latency is the fixed per-flow startup cost.
	Latency units.Seconds
}

// DefaultConfig models an r4-class cluster: 10 Gb/s NICs (1.25 GB/s),
// an S3-like store sustaining 4 GB/s aggregate but 250 MB/s per
// connection, and 20 ms flow setup.
func DefaultConfig() Config {
	return Config{
		NICBandwidth:       1.25e9,
		DatastoreAggregate: 4e9,
		DatastorePerConn:   250e6,
		Latency:            0.020,
	}
}

// Cluster is an n-node simulated cluster.
type Cluster struct {
	n   int
	cfg Config
}

// NewCluster validates the configuration and builds a cluster.
func NewCluster(n int, cfg Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simnet: n = %d", n)
	}
	if cfg.NICBandwidth <= 0 || cfg.DatastoreAggregate <= 0 || cfg.DatastorePerConn <= 0 {
		return nil, fmt.Errorf("simnet: non-positive bandwidth in %+v", cfg)
	}
	return &Cluster{n: n, cfg: cfg}, nil
}

// N returns the number of worker nodes.
func (c *Cluster) N() int { return c.n }

// Flow is a point-to-point transfer. Src/Dst are node ids in [0, n) or
// DatastoreNode.
type Flow struct {
	Src, Dst int
	Bytes    int64
}

// SimulateFlows returns the virtual time until the last flow finishes,
// assuming all flows start at time zero and share ports max–min
// fairly. Zero-byte flows finish immediately (after latency).
func (c *Cluster) SimulateFlows(flows []Flow) units.Seconds {
	active := make([]flowState, 0, len(flows))
	for _, f := range flows {
		if f.Src == f.Dst {
			continue // local move, free
		}
		c.checkNode(f.Src)
		c.checkNode(f.Dst)
		if f.Bytes > 0 {
			active = append(active, flowState{float64(f.Bytes), f.Src, f.Dst})
		}
	}
	if len(active) == 0 {
		if len(flows) > 0 {
			return c.cfg.Latency
		}
		return 0
	}

	now := 0.0
	rates := make([]float64, len(active))
	alive := make([]bool, len(active))
	for i := range alive {
		alive[i] = true
	}
	left := len(active)
	for left > 0 {
		c.maxMinRates(active, alive, rates)
		// Next completion.
		next := math.Inf(1)
		for i, ok := range alive {
			if !ok {
				continue
			}
			t := active[i].remaining / rates[i]
			if t < next {
				next = t
			}
		}
		now += next
		for i, ok := range alive {
			if !ok {
				continue
			}
			active[i].remaining -= rates[i] * next
			if active[i].remaining <= 1e-6 {
				alive[i] = false
				left--
			}
		}
	}
	return units.Seconds(now) + c.cfg.Latency
}

func (c *Cluster) checkNode(id int) {
	if id != DatastoreNode && (id < 0 || id >= c.n) {
		panic(fmt.Sprintf("simnet: node %d outside cluster of %d", id, c.n))
	}
}

// port identifiers for the max-min computation: each worker has an up
// (send) and down (receive) port; the datastore has one aggregate port.
func (c *Cluster) portsOf(s flowState) []int {
	ports := make([]int, 0, 3)
	if s.src == DatastoreNode {
		ports = append(ports, 2*c.n) // datastore aggregate
	} else {
		ports = append(ports, 2*s.src) // src up
	}
	if s.dst == DatastoreNode {
		ports = append(ports, 2*c.n)
	} else {
		ports = append(ports, 2*s.dst+1) // dst down
	}
	return ports
}

// flowState tracks one in-flight transfer during simulation.
type flowState struct {
	remaining float64
	src, dst  int
}

// maxMinRates computes the max–min fair allocation for alive flows.
// Standard progressive filling: repeatedly find the port whose fair
// share is smallest, freeze its flows at that share, remove the port's
// capacity, and continue.
func (c *Cluster) maxMinRates(active []flowState, alive []bool, rates []float64) {
	nPorts := 2*c.n + 1
	capacity := make([]float64, nPorts)
	for i := 0; i < c.n; i++ {
		capacity[2*i] = c.cfg.NICBandwidth
		capacity[2*i+1] = c.cfg.NICBandwidth
	}
	capacity[2*c.n] = c.cfg.DatastoreAggregate

	fixed := make([]bool, len(active))
	for i := range rates {
		rates[i] = 0
	}
	// Per-connection datastore cap applies per flow, handled as a
	// per-flow ceiling during assignment.
	for {
		// Count unfixed flows per port.
		count := make([]int, nPorts)
		for i, ok := range alive {
			if !ok || fixed[i] {
				continue
			}
			for _, p := range c.portsOf(flowState{src: active[i].src, dst: active[i].dst}) {
				count[p]++
			}
		}
		// Find the bottleneck port.
		bottleneck, share := -1, math.Inf(1)
		for p := 0; p < nPorts; p++ {
			if count[p] == 0 {
				continue
			}
			s := capacity[p] / float64(count[p])
			if s < share {
				bottleneck, share = p, s
			}
		}
		if bottleneck < 0 {
			return // all flows fixed
		}
		// Freeze the bottleneck's flows at the fair share (clamped by
		// the per-connection datastore cap when the store is involved).
		for i, ok := range alive {
			if !ok || fixed[i] {
				continue
			}
			onPort := false
			touchesStore := active[i].src == DatastoreNode || active[i].dst == DatastoreNode
			for _, p := range c.portsOf(flowState{src: active[i].src, dst: active[i].dst}) {
				if p == bottleneck {
					onPort = true
				}
			}
			if !onPort {
				continue
			}
			r := share
			if touchesStore && r > c.cfg.DatastorePerConn {
				r = c.cfg.DatastorePerConn
			}
			if r <= 0 {
				// Degenerate: a port was drained to zero by clamped
				// flows. Trickle at 1 B/s so simulation always advances.
				r = 1
			}
			rates[i] = r
			fixed[i] = true
			for _, p := range c.portsOf(flowState{src: active[i].src, dst: active[i].dst}) {
				capacity[p] -= r
				if capacity[p] < 0 {
					capacity[p] = 0
				}
			}
		}
	}
}
