package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"hourglass/internal/units"
)

func cluster(t *testing.T, n int, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func approx(a, b units.Seconds, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol*math.Abs(float64(b))+1e-9
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, DefaultConfig()); err == nil {
		t.Error("n=0 accepted")
	}
	bad := DefaultConfig()
	bad.NICBandwidth = 0
	if _, err := NewCluster(2, bad); err == nil {
		t.Error("zero NIC accepted")
	}
}

func TestSingleFlowNodeToNode(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 1000, DatastorePerConn: 1000, Latency: 0}
	c := cluster(t, 2, cfg)
	// 1000 bytes at 100 B/s = 10 s.
	got := c.SimulateFlows([]Flow{{Src: 0, Dst: 1, Bytes: 1000}})
	if !approx(got, 10, 0.01) {
		t.Errorf("time = %v, want 10s", got)
	}
}

func TestTwoFlowsShareSenderNIC(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 1e9, DatastorePerConn: 1e9, Latency: 0}
	c := cluster(t, 3, cfg)
	// Node 0 sends 1000 B to both 1 and 2: sender NIC shared 50/50,
	// both finish at 20 s.
	got := c.SimulateFlows([]Flow{{0, 1, 1000}, {0, 2, 1000}})
	if !approx(got, 20, 0.01) {
		t.Errorf("time = %v, want 20s", got)
	}
}

func TestUnequalFlowsProgressiveFilling(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 1e9, DatastorePerConn: 1e9, Latency: 0}
	c := cluster(t, 3, cfg)
	// 0→1: 500 B, 0→2: 1500 B. Share 50/50 until t=10 (500 done), then
	// flow 2 gets full 100 B/s for remaining 1000 → t=20.
	got := c.SimulateFlows([]Flow{{0, 1, 500}, {0, 2, 1500}})
	if !approx(got, 20, 0.01) {
		t.Errorf("time = %v, want 20s", got)
	}
}

func TestDatastorePerConnectionCap(t *testing.T) {
	cfg := Config{NICBandwidth: 1000, DatastoreAggregate: 1000, DatastorePerConn: 100, Latency: 0}
	c := cluster(t, 2, cfg)
	// Single store connection capped at 100 B/s although NIC is 1000.
	got := c.SimulateFlows([]Flow{{DatastoreNode, 0, 1000}})
	if !approx(got, 10, 0.01) {
		t.Errorf("time = %v, want 10s", got)
	}
}

func TestDatastoreAggregateCap(t *testing.T) {
	cfg := Config{NICBandwidth: 1e9, DatastoreAggregate: 400, DatastorePerConn: 1e9, Latency: 0}
	c := cluster(t, 4, cfg)
	// 4 nodes each fetch 1000 B; aggregate 400 B/s → 100 B/s each → 10 s.
	flows := []Flow{
		{DatastoreNode, 0, 1000}, {DatastoreNode, 1, 1000},
		{DatastoreNode, 2, 1000}, {DatastoreNode, 3, 1000},
	}
	got := c.SimulateFlows(flows)
	if !approx(got, 10, 0.01) {
		t.Errorf("time = %v, want 10s", got)
	}
}

func TestLatencyOnlyFlows(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 100, DatastorePerConn: 100, Latency: 2}
	c := cluster(t, 2, cfg)
	if got := c.SimulateFlows([]Flow{{0, 1, 0}}); got != 2 {
		t.Errorf("zero-byte flow time = %v, want latency 2", got)
	}
	if got := c.SimulateFlows(nil); got != 0 {
		t.Errorf("no flows time = %v, want 0", got)
	}
	// Local flow is free (latency only).
	if got := c.SimulateFlows([]Flow{{1, 1, 5000}}); got != 2 {
		t.Errorf("local flow time = %v, want 2", got)
	}
}

func TestAllToAllSymmetric(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 1e9, DatastorePerConn: 1e9, Latency: 0}
	n := 4
	c := cluster(t, n, cfg)
	var flows []Flow
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				flows = append(flows, Flow{i, j, 300})
			}
		}
	}
	// Each node sends 900 B through a 100 B/s NIC → 9 s.
	got := c.SimulateFlows(flows)
	if !approx(got, 9, 0.02) {
		t.Errorf("all-to-all time = %v, want 9s", got)
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	c := cluster(t, 2, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	c.SimulateFlows([]Flow{{5, 0, 10}})
}

// Property: completion time is at least the single-flow lower bound
// (bytes / fastest possible path) and total simulated throughput never
// exceeds aggregate capacity.
func TestQuickLowerBound(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 250, DatastorePerConn: 80, Latency: 0}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		c, _ := NewCluster(3, cfg)
		var flows []Flow
		var total int64
		for i, b := range raw {
			bytes := int64(b%5000) + 1
			flows = append(flows, Flow{DatastoreNode, i % 3, bytes})
			total += bytes
		}
		got := c.SimulateFlows(flows)
		// Aggregate bound: cannot move faster than store aggregate.
		lower := units.Seconds(float64(total) / cfg.DatastoreAggregate)
		return got >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: adding a flow never speeds up completion.
func TestQuickMonotonicity(t *testing.T) {
	cfg := Config{NICBandwidth: 100, DatastoreAggregate: 300, DatastorePerConn: 100, Latency: 0}
	f := func(a, b uint16) bool {
		c, _ := NewCluster(2, cfg)
		base := []Flow{{0, 1, int64(a%9000 + 1)}}
		t1 := c.SimulateFlows(base)
		t2 := c.SimulateFlows(append(base, Flow{0, 1, int64(b%9000 + 1)}))
		return t2 >= t1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
