package partition

import (
	"hourglass/internal/graph"
)

// RecursiveBisection partitions by repeatedly splitting the (sub)graph
// in two with the multilevel partitioner — METIS's original
// formulation, used here as an ablation against the direct k-way
// approach. Non-power-of-two k splits unevenly (⌈k/2⌉ vs ⌊k/2⌋ with
// proportional weight targets approximated by vertex counts).
type RecursiveBisection struct {
	Seed int64
}

// Name implements Partitioner.
func (r RecursiveBisection) Name() string { return "bisection" }

// Partition implements Partitioner.
func (r RecursiveBisection) Partition(g *graph.Graph, k int) Partitioning {
	return r.PartitionWeighted(g, nil, k)
}

// PartitionWeighted implements WeightedPartitioner.
func (r RecursiveBisection) PartitionWeighted(g *graph.Graph, vw []int64, k int) Partitioning {
	n := g.NumVertices()
	assign := make([]int32, n)
	if k <= 1 || n == 0 {
		return Partitioning{Assign: assign, K: maxInt(k, 1)}
	}
	vertices := make([]graph.VertexID, n)
	for i := range vertices {
		vertices[i] = graph.VertexID(i)
	}
	r.split(g, vw, vertices, 0, k, assign, r.Seed)
	return Partitioning{Assign: assign, K: k}
}

// split assigns blocks [base, base+k) to the given vertex subset.
func (r RecursiveBisection) split(g *graph.Graph, vw []int64, vertices []graph.VertexID,
	base int32, k int, assign []int32, seed int64) {
	if k == 1 {
		for _, v := range vertices {
			assign[v] = base
		}
		return
	}
	leftK := (k + 1) / 2
	rightK := k - leftK

	// Build the induced subgraph over `vertices`.
	sub, _ := g.Induced(vertices)
	subVW := make([]int64, len(vertices))
	for i, v := range vertices {
		if vw != nil {
			subVW[i] = vw[v]
		} else {
			subVW[i] = 1
		}
	}
	// Bisect with target proportions leftK:rightK. The multilevel
	// partitioner balances 50/50; for uneven splits we emulate the
	// proportion by duplicating the right side's weight.
	ml := Multilevel{Seed: seed}
	var half Partitioning
	if leftK == rightK {
		half = ml.PartitionWeighted(sub, subVW, 2)
	} else {
		// Scale weights so a balanced 2-way cut approximates the
		// leftK:rightK proportion: weight each vertex by 1, then the
		// imbalance tolerance absorbs the ±1 block difference. For the
		// k=3-style splits this is a standard approximation.
		half = Multilevel{Seed: seed, MaxImbalance: 1.0 + float64(leftK-rightK)/float64(k) + 0.05}.
			PartitionWeighted(sub, subVW, 2)
	}
	var left, right []graph.VertexID
	for i, v := range vertices {
		if half.Assign[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Keep the larger side with the larger k.
	if leftK != rightK && len(left) < len(right) {
		left, right = right, left
	}
	r.split(g, vw, left, base, leftK, assign, seed*2+1)
	r.split(g, vw, right, base+int32(leftK), rightK, assign, seed*2+2)
}
