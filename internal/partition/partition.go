// Package partition implements the graph partitioners Hourglass builds
// on (§6 of the paper): hash partitioning (Pregel style), the FENNEL
// and LDG one-pass streaming partitioners, and a METIS-like multilevel
// k-way partitioner used both offline (micro-partitioning) and online
// (quotient clustering). It also provides the quality metrics the
// paper reports: edge-cut percentage and load balance.
package partition

import (
	"fmt"

	"hourglass/internal/graph"
)

// Partitioning assigns every vertex to one of K blocks.
type Partitioning struct {
	Assign []int32
	K      int
}

// Validate checks structural invariants: every assignment in [0, K).
func (p Partitioning) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("partition: K = %d", p.K)
	}
	for v, b := range p.Assign {
		if b < 0 || int(b) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to %d outside [0,%d)", v, b, p.K)
		}
	}
	return nil
}

// BlockSizes returns the number of vertices per block.
func (p Partitioning) BlockSizes() []int64 {
	sizes := make([]int64, p.K)
	for _, b := range p.Assign {
		sizes[b]++
	}
	return sizes
}

// BlockEdgeLoads returns, per block, the number of arcs whose source
// lives in that block — the work measure the paper balances (§8.3.3
// balances "total number of edges assigned to the different
// partitions", as GPS does).
func (p Partitioning) BlockEdgeLoads(g *graph.Graph) []int64 {
	loads := make([]int64, p.K)
	for v := 0; v < g.NumVertices(); v++ {
		loads[p.Assign[v]] += int64(g.Degree(graph.VertexID(v)))
	}
	return loads
}

// EdgeCutFraction returns the fraction of logical edges crossing block
// boundaries, the paper's partition-quality metric (Figure 8). For an
// undirected graph mirrored arcs are counted once.
func EdgeCutFraction(g *graph.Graph, assign []int32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var cut, total int64
	g.ForEachEdge(func(s, d graph.VertexID, w float32) {
		if g.Undirected() && s > d {
			return
		}
		total++
		if assign[s] != assign[d] {
			cut++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// WeightedEdgeCut sums the weights of crossing arcs (counting each
// undirected edge once). Used on quotient graphs where weights are
// crossing-edge multiplicities.
func WeightedEdgeCut(g *graph.Graph, assign []int32) float64 {
	var cut float64
	g.ForEachEdge(func(s, d graph.VertexID, w float32) {
		if g.Undirected() && s > d {
			return
		}
		if assign[s] != assign[d] {
			cut += float64(w)
		}
	})
	return cut
}

// Imbalance returns max block weight divided by mean block weight
// (1.0 = perfectly balanced). Weights default to 1 per vertex when vw
// is nil.
func Imbalance(assign []int32, k int, vw []int64) float64 {
	sizes := make([]int64, k)
	var total int64
	for v, b := range assign {
		w := int64(1)
		if vw != nil {
			w = vw[v]
		}
		sizes[b] += w
		total += w
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(k)
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / mean
}

// RandomCutExpectation returns the expected edge-cut fraction of a
// uniformly random assignment into n blocks, 1 - 1/n, the paper's
// Random baseline in Figure 8.
func RandomCutExpectation(n int) float64 { return 1 - 1/float64(n) }

// Partitioner produces a k-way assignment for a graph. Implementations
// must be deterministic for a fixed configuration.
type Partitioner interface {
	Name() string
	Partition(g *graph.Graph, k int) Partitioning
}

// WeightedPartitioner additionally accepts per-vertex weights, needed
// when clustering micro-partitions (quotient vertices carry the size
// of their member set).
type WeightedPartitioner interface {
	Partitioner
	PartitionWeighted(g *graph.Graph, vw []int64, k int) Partitioning
}
