package partition

import (
	"testing"

	"hourglass/internal/graph"
)

func TestRecursiveBisectionValid(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(10, 9))
	for _, k := range []int{1, 2, 3, 4, 7, 8} {
		p := RecursiveBisection{Seed: 1}.Partition(g, k)
		if err := p.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		sizes := p.BlockSizes()
		var total int64
		for _, s := range sizes {
			total += s
		}
		if total != int64(g.NumVertices()) {
			t.Errorf("k=%d: sizes sum %d", k, total)
		}
	}
}

func TestRecursiveBisectionQualityOnGrid(t *testing.T) {
	g := graph.Grid(24, 24)
	p := RecursiveBisection{Seed: 2}.Partition(g, 4)
	cut := EdgeCutFraction(g, p.Assign)
	if cut > 0.3 {
		t.Errorf("grid cut = %.3f, want < 0.3", cut)
	}
	if im := Imbalance(p.Assign, 4, nil); im > 1.35 {
		t.Errorf("imbalance = %.2f", im)
	}
}

func TestRecursiveBisectionComparableToKWay(t *testing.T) {
	g := graph.Community(graph.CommunityParams{
		Communities: 8, SizeMean: 64, IntraDegree: 16, InterFraction: 0.05, Seed: 4,
	})
	rb := RecursiveBisection{Seed: 1}.Partition(g, 8)
	kw := Multilevel{Seed: 1}.Partition(g, 8)
	rbCut := EdgeCutFraction(g, rb.Assign)
	kwCut := EdgeCutFraction(g, kw.Assign)
	// Both should be far below random; allow RB to be somewhat worse.
	if rbCut >= RandomCutExpectation(8) {
		t.Errorf("bisection cut %.3f not better than random", rbCut)
	}
	if rbCut > kwCut*2+0.1 {
		t.Errorf("bisection cut %.3f much worse than k-way %.3f", rbCut, kwCut)
	}
}

func TestRecursiveBisectionWeighted(t *testing.T) {
	g := graph.Ring(12)
	vw := make([]int64, 12)
	for i := range vw {
		vw[i] = 1
	}
	vw[0] = 6 // heavy vertex
	p := RecursiveBisection{Seed: 3}.PartitionWeighted(g, vw, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(p.Assign, 2, vw); im > 1.6 {
		t.Errorf("weighted imbalance = %.2f", im)
	}
}
