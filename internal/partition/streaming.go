package partition

import (
	"math"
	"math/rand"

	"hourglass/internal/graph"
)

// Fennel is the one-pass streaming partitioner of Tsourakakis et al.
// (reference [41] in the paper). Vertices arrive in a stream; each is
// placed in the block maximising
//
//	|N(v) ∩ S_i|  −  α·γ·|S_i|^(γ−1)
//
// i.e. neighbours already in the block minus a superlinear balance
// penalty. The paper configures γ = 1.5 and α = √k · m / n^1.5.
type Fennel struct {
	// Gamma is the balance exponent; 0 means the paper default 1.5.
	Gamma float64
	// Slackness caps block size at Slackness · n/k (0 = paper default 1.1).
	Slackness float64
	// Seed orders the stream; vertices are visited in a seeded shuffle
	// (a real stream order). Fixed seed ⇒ deterministic result.
	Seed int64
}

// Name implements Partitioner.
func (f Fennel) Name() string { return "fennel" }

// Partition implements Partitioner.
func (f Fennel) Partition(g *graph.Graph, k int) Partitioning {
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	slack := f.Slackness
	if slack == 0 {
		slack = 1.1
	}
	n := g.NumVertices()
	m := float64(g.NumLogicalEdges())
	alpha := math.Sqrt(float64(k)) * m / math.Pow(float64(n), gamma)
	if alpha == 0 {
		alpha = 1
	}
	maxLoad := int64(math.Ceil(slack * float64(n) / float64(k)))

	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int64, k)
	order := rand.New(rand.NewSource(f.Seed)).Perm(n)

	neighborsIn := make([]int32, k) // scratch: neighbours per block
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range neighborsIn {
			neighborsIn[i] = 0
		}
		for _, u := range g.Neighbors(v) {
			if b := assign[u]; b >= 0 {
				neighborsIn[b]++
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for b := 0; b < k; b++ {
			if sizes[b] >= maxLoad {
				continue
			}
			score := float64(neighborsIn[b]) - alpha*gamma*math.Pow(float64(sizes[b]), gamma-1)
			if score > bestScore {
				best, bestScore = b, score
			}
		}
		if best < 0 { // all blocks full (can happen with tight slack): pick lightest
			var min int64 = math.MaxInt64
			for b := 0; b < k; b++ {
				if sizes[b] < min {
					min, best = sizes[b], b
				}
			}
		}
		assign[v] = int32(best)
		sizes[best]++
	}
	return Partitioning{Assign: assign, K: k}
}

// LDG is the Linear Deterministic Greedy streaming partitioner of
// Stanton & Kliot (reference [37] in the paper): place v in the block
// with most neighbours, weighted by a linear remaining-capacity factor
// (1 − |S_i|/cap).
type LDG struct {
	Seed      int64
	Slackness float64 // 0 = 1.0 (strict capacity n/k)
}

// Name implements Partitioner.
func (l LDG) Name() string { return "ldg" }

// Partition implements Partitioner.
func (l LDG) Partition(g *graph.Graph, k int) Partitioning {
	slack := l.Slackness
	if slack == 0 {
		slack = 1.0
	}
	n := g.NumVertices()
	capacity := math.Ceil(slack * float64(n) / float64(k))
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int64, k)
	order := rand.New(rand.NewSource(l.Seed)).Perm(n)
	neighborsIn := make([]int32, k)
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range neighborsIn {
			neighborsIn[i] = 0
		}
		for _, u := range g.Neighbors(v) {
			if b := assign[u]; b >= 0 {
				neighborsIn[b]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for b := 0; b < k; b++ {
			penalty := 1 - float64(sizes[b])/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := float64(neighborsIn[b]) * penalty
			// Tie-break toward the lighter block for balance.
			if score > bestScore || (score == bestScore && sizes[b] < sizes[best]) {
				best, bestScore = b, score
			}
		}
		assign[v] = int32(best)
		sizes[best]++
	}
	return Partitioning{Assign: assign, K: k}
}
