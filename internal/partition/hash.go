package partition

import (
	"hourglass/internal/graph"
)

// Hash is the Pregel-style hash partitioner (reference [27] in the
// paper): vertex v goes to block hash(v) mod k. There is no
// partitioning phase at all — the assignment is implicit in the hash
// function — which is why short jobs favour it (§8.3.1).
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// hashVertex mixes the vertex id so that consecutive ids spread across
// blocks (plain modulo would put contiguous ranges together, which is
// accidentally *good* for meshes and unrepresentative of hashing).
func hashVertex(v graph.VertexID) uint32 {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, k int) Partitioning {
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(hashVertex(graph.VertexID(v)) % uint32(k))
	}
	return Partitioning{Assign: assign, K: k}
}

// Chunked assigns contiguous vertex ranges to blocks (file-block
// ownership, §7: "assigning chunks of the graph dataset to workers
// that load them and become owners of all the vertices in the assigned
// file blocks"). It is the micro-partition generator used with hashing.
type Chunked struct{}

// Name implements Partitioner.
func (Chunked) Name() string { return "chunked" }

// Partition implements Partitioner.
func (Chunked) Partition(g *graph.Graph, k int) Partitioning {
	n := g.NumVertices()
	assign := make([]int32, n)
	if n == 0 {
		return Partitioning{Assign: assign, K: k}
	}
	per := (n + k - 1) / k
	for v := 0; v < n; v++ {
		b := v / per
		if b >= k {
			b = k - 1
		}
		assign[v] = int32(b)
	}
	return Partitioning{Assign: assign, K: k}
}
