package partition

import (
	"testing"
	"testing/quick"

	"hourglass/internal/graph"
)

// allPartitioners returns every implementation, used by table-driven
// invariant tests.
func allPartitioners(seed int64) []Partitioner {
	return []Partitioner{
		Hash{},
		Chunked{},
		Fennel{Seed: seed},
		LDG{Seed: seed},
		Multilevel{Seed: seed},
	}
}

func TestValidate(t *testing.T) {
	good := Partitioning{Assign: []int32{0, 1, 0}, K: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid partitioning rejected: %v", err)
	}
	bad := Partitioning{Assign: []int32{0, 2}, K: 2}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if err := (Partitioning{K: 0}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestAllPartitionersProduceValidAssignments(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(10, 3))
	for _, p := range allPartitioners(1) {
		for _, k := range []int{1, 2, 3, 8, 16} {
			if p.Name() == "multilevel" && k == 1 {
				// covered by the dedicated trivial-k test below
			}
			part := p.Partition(g, k)
			if err := part.Validate(); err != nil {
				t.Errorf("%s k=%d: %v", p.Name(), k, err)
			}
			if len(part.Assign) != g.NumVertices() {
				t.Errorf("%s k=%d: assignment length %d", p.Name(), k, len(part.Assign))
			}
		}
	}
}

func TestPartitionersAreDeterministic(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(9, 4))
	for _, p := range allPartitioners(7) {
		a := p.Partition(g, 8)
		b := p.Partition(g, 8)
		for v := range a.Assign {
			if a.Assign[v] != b.Assign[v] {
				t.Errorf("%s: nondeterministic at vertex %d", p.Name(), v)
				break
			}
		}
	}
}

func TestEdgeCutFraction(t *testing.T) {
	// Path 0-1-2-3 split {0,1}/{2,3}: 1 of 3 edges cut.
	g := graph.Path(4)
	cut := EdgeCutFraction(g, []int32{0, 0, 1, 1})
	if want := 1.0 / 3.0; cut != want {
		t.Errorf("cut = %v, want %v", cut, want)
	}
	// All in one block: no cut.
	if c := EdgeCutFraction(g, []int32{0, 0, 0, 0}); c != 0 {
		t.Errorf("single block cut = %v, want 0", c)
	}
	// Alternating: every edge cut.
	if c := EdgeCutFraction(g, []int32{0, 1, 0, 1}); c != 1 {
		t.Errorf("alternating cut = %v, want 1", c)
	}
}

func TestWeightedEdgeCut(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 2, Weight: 3}},
		graph.Undirected(), graph.Weighted())
	cut := WeightedEdgeCut(g, []int32{0, 0, 1})
	if cut != 3 {
		t.Errorf("weighted cut = %v, want 3", cut)
	}
}

func TestImbalance(t *testing.T) {
	// 4 vertices in 2 blocks, perfectly balanced.
	if im := Imbalance([]int32{0, 0, 1, 1}, 2, nil); im != 1 {
		t.Errorf("balanced imbalance = %v, want 1", im)
	}
	// All in one block of two: max=4, mean=2 → 2.
	if im := Imbalance([]int32{0, 0, 0, 0}, 2, nil); im != 2 {
		t.Errorf("skewed imbalance = %v, want 2", im)
	}
	// Weighted.
	if im := Imbalance([]int32{0, 1}, 2, []int64{3, 1}); im != 1.5 {
		t.Errorf("weighted imbalance = %v, want 1.5", im)
	}
}

func TestRandomCutExpectation(t *testing.T) {
	if got := RandomCutExpectation(2); got != 0.5 {
		t.Errorf("random cut n=2: %v, want 0.5", got)
	}
	if got := RandomCutExpectation(4); got != 0.75 {
		t.Errorf("random cut n=4: %v, want 0.75", got)
	}
}

func TestChunkedIsContiguous(t *testing.T) {
	g := graph.Path(10)
	p := Chunked{}.Partition(g, 3)
	for v := 1; v < 10; v++ {
		if p.Assign[v] < p.Assign[v-1] {
			t.Fatalf("chunked assignment not monotone: %v", p.Assign)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelBeatsHashOnStructuredGraph(t *testing.T) {
	// A 32×32 grid has a tiny optimal cut; multilevel should get far
	// below hash (≈1−1/k) and below random.
	g := graph.Grid(32, 32)
	k := 4
	ml := Multilevel{Seed: 1}.Partition(g, k)
	h := Hash{}.Partition(g, k)
	mlCut := EdgeCutFraction(g, ml.Assign)
	hCut := EdgeCutFraction(g, h.Assign)
	if mlCut >= hCut/2 {
		t.Errorf("multilevel cut %.3f not clearly better than hash %.3f", mlCut, hCut)
	}
	if mlCut > 0.25 {
		t.Errorf("multilevel cut on grid = %.3f, want < 0.25", mlCut)
	}
}

func TestMultilevelBalance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(11, 8))
	for _, k := range []int{2, 4, 8} {
		p := Multilevel{Seed: 2}.Partition(g, k)
		if im := Imbalance(p.Assign, k, nil); im > 1.30 {
			t.Errorf("k=%d imbalance = %.3f, want ≤ 1.30", k, im)
		}
	}
}

func TestMultilevelWeightedVertices(t *testing.T) {
	// Star quotient-like graph: one heavy vertex, many light ones. The
	// heavy vertex must not be co-assigned with everything.
	g := graph.Complete(8)
	vw := []int64{70, 10, 10, 10, 10, 10, 10, 10}
	p := Multilevel{Seed: 3}.PartitionWeighted(g, vw, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(p.Assign, 2, vw); im > 1.35 {
		t.Errorf("weighted imbalance = %.3f, want ≤ 1.35", im)
	}
}

func TestMultilevelTrivialCases(t *testing.T) {
	g := graph.Path(5)
	p := Multilevel{Seed: 1}.Partition(g, 1)
	for _, b := range p.Assign {
		if b != 0 {
			t.Fatalf("k=1 must assign everything to block 0, got %v", p.Assign)
		}
	}
	empty := graph.NewBuilder(0).Build()
	pe := Multilevel{Seed: 1}.Partition(empty, 4)
	if len(pe.Assign) != 0 {
		t.Fatalf("empty graph should yield empty assignment")
	}
}

func TestFennelRespectsSlackness(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(10, 5))
	k := 8
	p := Fennel{Seed: 9, Slackness: 1.1}.Partition(g, k)
	maxLoad := int64(float64(g.NumVertices()) / float64(k) * 1.1)
	for b, s := range p.BlockSizes() {
		if s > maxLoad+1 {
			t.Errorf("block %d has %d vertices, cap ~%d", b, s, maxLoad)
		}
	}
}

func TestFennelBeatsHashOnCommunityGraph(t *testing.T) {
	g := graph.Community(graph.CommunityParams{
		Communities: 16, SizeMean: 64, IntraDegree: 16, InterFraction: 0.05, Seed: 6,
	})
	k := 4
	f := Fennel{Seed: 1}.Partition(g, k)
	h := Hash{}.Partition(g, k)
	fCut := EdgeCutFraction(g, f.Assign)
	hCut := EdgeCutFraction(g, h.Assign)
	if fCut >= hCut {
		t.Errorf("fennel cut %.3f not better than hash %.3f on community graph", fCut, hCut)
	}
}

func TestLDGRespectsCapacityLoosely(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(10, 6))
	k := 4
	p := LDG{Seed: 2}.Partition(g, k)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(p.Assign, k, nil); im > 1.5 {
		t.Errorf("LDG imbalance = %.2f, want ≤ 1.5", im)
	}
}

func TestBlockEdgeLoads(t *testing.T) {
	g := graph.Path(4) // degrees: 1,2,2,1 (undirected arcs)
	p := Partitioning{Assign: []int32{0, 0, 1, 1}, K: 2}
	loads := p.BlockEdgeLoads(g)
	if loads[0] != 3 || loads[1] != 3 {
		t.Errorf("edge loads = %v, want [3 3]", loads)
	}
}

// Property: for every partitioner and random graph, assignment is a
// valid total function and the block sizes sum to |V|.
func TestQuickPartitionTotality(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%7)
		g := graph.RMAT(graph.DefaultRMAT(8, seed))
		for _, p := range allPartitioners(seed) {
			part := p.Partition(g, k)
			if part.Validate() != nil {
				return false
			}
			var sum int64
			for _, s := range part.BlockSizes() {
				sum += s
			}
			if sum != int64(g.NumVertices()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: multilevel's cut never exceeds the expected random cut by
// more than noise on structured graphs.
func TestQuickMultilevelNotWorseThanRandom(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.WattsStrogatz(512, 8, 0.05, seed)
		p := Multilevel{Seed: seed}.Partition(g, 4)
		return EdgeCutFraction(g, p.Assign) < RandomCutExpectation(4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
