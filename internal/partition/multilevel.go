package partition

import (
	"math"
	"math/rand"
	"sort"

	"hourglass/internal/graph"
)

// Multilevel is a METIS-style multilevel k-way partitioner (Karypis &
// Kumar, reference [20] in the paper): the graph is coarsened by
// heavy-edge matching, the coarsest graph is partitioned by greedy
// region growing, and the partitioning is projected back through the
// levels with boundary Kernighan–Lin refinement at each. It supports
// vertex and edge weights, which is what lets Hourglass reuse it to
// cluster micro-partitions (quotient-graph vertices are weighted by
// member count, edges by crossing multiplicity).
type Multilevel struct {
	// Seed drives matching and seed-selection order. Fixed seed ⇒
	// deterministic partitioning.
	Seed int64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices (0 = max(32·k, 128)).
	CoarsenTo int
	// MaxImbalance is the allowed max/mean block weight ratio
	// (0 = 1.05, METIS's default 5% slack).
	MaxImbalance float64
	// RefinePasses bounds KL passes per level (0 = 8).
	RefinePasses int
}

// Name implements Partitioner.
func (m Multilevel) Name() string { return "multilevel" }

// Partition implements Partitioner.
func (m Multilevel) Partition(g *graph.Graph, k int) Partitioning {
	return m.PartitionWeighted(g, nil, k)
}

// PartitionWeighted implements WeightedPartitioner.
func (m Multilevel) PartitionWeighted(g *graph.Graph, vw []int64, k int) Partitioning {
	n := g.NumVertices()
	if k <= 1 || n == 0 {
		return Partitioning{Assign: make([]int32, n), K: maxInt(k, 1)}
	}
	wg := newWGraph(g, vw)
	coarsenTo := m.CoarsenTo
	if coarsenTo == 0 {
		coarsenTo = maxInt(32*k, 128)
	}
	imbalance := m.MaxImbalance
	if imbalance == 0 {
		imbalance = 1.05
	}
	passes := m.RefinePasses
	if passes == 0 {
		passes = 8
	}
	rng := rand.New(rand.NewSource(m.Seed + int64(k)*1_000_003))

	// Coarsening phase: stack of levels with their projection maps.
	type level struct {
		g    *wgraph
		proj []int32 // fine vertex -> coarse vertex (for the *next* level)
	}
	levels := []level{{g: wg}}
	cur := wg
	for cur.n > coarsenTo {
		match := cur.heavyEdgeMatch(rng)
		coarse, cmap := cur.contract(match)
		if coarse.n >= int(0.95*float64(cur.n)) {
			break // matching stalled (e.g. star graph); stop coarsening
		}
		levels[len(levels)-1].proj = cmap
		levels = append(levels, level{g: coarse})
		cur = coarse
	}

	// Initial partitioning on the coarsest graph.
	coarsest := levels[len(levels)-1].g
	assign := coarsest.greedyGrow(k, rng)
	coarsest.refine(assign, k, imbalance, passes)

	// Uncoarsening: project and refine at each finer level.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li].g
		cmap := levels[li].proj
		fineAssign := make([]int32, fine.n)
		for v := 0; v < fine.n; v++ {
			fineAssign[v] = assign[cmap[v]]
		}
		fine.refine(fineAssign, k, imbalance, passes)
		assign = fineAssign
	}
	return Partitioning{Assign: assign, K: k}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// wedge is a weighted arc in the working graph.
type wedge struct {
	to graph.VertexID
	w  float64
}

// wgraph is the symmetric weighted working representation used during
// coarsening/refinement.
type wgraph struct {
	n   int
	adj [][]wedge
	vw  []int64
}

// newWGraph symmetrises g (partitioning is an undirected problem) and
// collapses parallel arcs, attaching vertex weights (default 1).
func newWGraph(g *graph.Graph, vw []int64) *wgraph {
	n := g.NumVertices()
	w := &wgraph{n: n, adj: make([][]wedge, n), vw: make([]int64, n)}
	if vw != nil {
		copy(w.vw, vw)
	} else {
		for i := range w.vw {
			w.vw[i] = 1
		}
	}
	// Accumulate symmetric weights through a per-vertex map pass.
	acc := make([]map[graph.VertexID]float64, n)
	add := func(a, b graph.VertexID, wt float64) {
		if acc[a] == nil {
			acc[a] = make(map[graph.VertexID]float64)
		}
		acc[a][b] += wt
	}
	g.ForEachEdge(func(s, d graph.VertexID, wt float32) {
		if s == d {
			return
		}
		add(s, d, float64(wt))
		if !g.Undirected() {
			add(d, s, float64(wt))
		}
	})
	for v := 0; v < n; v++ {
		w.adj[v] = sortedWedges(acc[v])
	}
	return w
}

// sortedWedges converts an accumulator map to a slice sorted by target
// id, keeping every later step deterministic (map iteration order is
// random in Go).
func sortedWedges(acc map[graph.VertexID]float64) []wedge {
	if len(acc) == 0 {
		return nil
	}
	out := make([]wedge, 0, len(acc))
	for u, wt := range acc {
		out = append(out, wedge{u, wt})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].to < out[j].to })
	return out
}

// heavyEdgeMatch computes a maximal matching preferring heavy edges,
// visiting vertices in random order. match[v] == v means unmatched.
func (w *wgraph) heavyEdgeMatch(rng *rand.Rand) []int32 {
	match := make([]int32, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		if match[v] >= 0 {
			continue
		}
		best := graph.VertexID(-1)
		bestW := -1.0
		for _, e := range w.adj[v] {
			if match[e.to] < 0 && e.to != v && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	return match
}

// contract merges matched pairs into coarse vertices, summing vertex
// and edge weights. Returns the coarse graph and the fine→coarse map.
func (w *wgraph) contract(match []int32) (*wgraph, []int32) {
	cmap := make([]int32, w.n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < w.n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; m >= 0 && int(m) != v {
			cmap[m] = next
		}
		next++
	}
	coarse := &wgraph{n: int(next), adj: make([][]wedge, next), vw: make([]int64, next)}
	for v := 0; v < w.n; v++ {
		coarse.vw[cmap[v]] += w.vw[v]
	}
	acc := make([]map[graph.VertexID]float64, next)
	for v := 0; v < w.n; v++ {
		cv := cmap[v]
		for _, e := range w.adj[v] {
			cu := cmap[e.to]
			if cu == cv {
				continue
			}
			if acc[cv] == nil {
				acc[cv] = make(map[graph.VertexID]float64)
			}
			acc[cv][graph.VertexID(cu)] += e.w
		}
	}
	for v := int32(0); v < next; v++ {
		coarse.adj[v] = sortedWedges(acc[v])
	}
	return coarse, cmap
}

// greedyGrow produces an initial k-way assignment by growing regions
// from random seeds: repeatedly pick the unassigned vertex most
// connected to the lightest still-open block.
func (w *wgraph) greedyGrow(k int, rng *rand.Rand) []int32 {
	assign := make([]int32, w.n)
	for i := range assign {
		assign[i] = -1
	}
	var total int64
	for _, vw := range w.vw {
		total += vw
	}
	target := float64(total) / float64(k)
	weights := make([]int64, k)

	order := rng.Perm(w.n)
	oi := 0
	nextSeed := func() graph.VertexID {
		for oi < len(order) {
			v := order[oi]
			oi++
			if assign[v] < 0 {
				return graph.VertexID(v)
			}
		}
		return -1
	}

	for b := 0; b < k; b++ {
		seed := nextSeed()
		if seed < 0 {
			break
		}
		// BFS-like frontier growth by connection weight.
		assign[seed] = int32(b)
		weights[b] += w.vw[seed]
		frontier := map[graph.VertexID]float64{}
		addFrontier := func(v graph.VertexID) {
			for _, e := range w.adj[v] {
				if assign[e.to] < 0 {
					frontier[e.to] += e.w
				}
			}
		}
		addFrontier(seed)
		for float64(weights[b]) < target && len(frontier) > 0 {
			var best graph.VertexID = -1
			bestW := -1.0
			for v, wt := range frontier {
				if assign[v] >= 0 {
					delete(frontier, v)
					continue
				}
				// Deterministic tie-break on vertex id: map iteration
				// order is random.
				if wt > bestW || (wt == bestW && (best < 0 || v < best)) {
					best, bestW = v, wt
				}
			}
			if best < 0 {
				break
			}
			delete(frontier, best)
			assign[best] = int32(b)
			weights[b] += w.vw[best]
			addFrontier(best)
		}
	}
	// Any leftovers: prefer the lightest *under-target* neighbouring
	// block; otherwise fall back to the globally lightest block, so an
	// already-full region never keeps accreting.
	for v := 0; v < w.n; v++ {
		if assign[v] >= 0 {
			continue
		}
		best := -1
		var bestLoad int64 = math.MaxInt64
		for _, e := range w.adj[v] {
			b := assign[e.to]
			if b >= 0 && float64(weights[b]) < target && weights[b] < bestLoad {
				best, bestLoad = int(b), weights[b]
			}
		}
		if best < 0 {
			for b := 0; b < k; b++ {
				if weights[b] < bestLoad {
					best, bestLoad = b, weights[b]
				}
			}
		}
		assign[v] = int32(best)
		weights[best] += w.vw[v]
	}
	return assign
}

// refine runs greedy boundary Kernighan–Lin passes: move boundary
// vertices to the neighbouring block with the best gain, while keeping
// every block under maxImbalance × mean weight. Stops after `passes`
// or when a pass makes no move.
func (w *wgraph) refine(assign []int32, k int, maxImbalance float64, passes int) {
	var total int64
	weights := make([]int64, k)
	for v := 0; v < w.n; v++ {
		weights[assign[v]] += w.vw[v]
		total += w.vw[v]
	}
	maxW := int64(math.Ceil(maxImbalance * float64(total) / float64(k)))
	conn := make([]float64, k) // scratch: connection of v to each block

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < w.n; v++ {
			if len(w.adj[v]) == 0 {
				continue
			}
			home := assign[v]
			// Compute connection weights to adjacent blocks.
			touched := touchedBlocks(w.adj[v], assign, conn)
			internal := conn[home]
			bestBlock, bestGain := home, 0.0
			for _, b := range touched {
				if b == home {
					continue
				}
				if weights[b]+w.vw[v] > maxW {
					continue
				}
				gain := conn[b] - internal
				if gain > bestGain ||
					(gain == bestGain && gain > 0 && weights[b] < weights[bestBlock]) {
					bestBlock, bestGain = b, gain
				}
			}
			// Also allow zero-gain moves that strictly improve balance:
			// they unlock further gains in later passes.
			if bestBlock == home {
				for _, b := range touched {
					if b == home {
						continue
					}
					if conn[b] == internal && weights[b]+w.vw[v] < weights[home] {
						bestBlock = b
						break
					}
				}
			}
			if bestBlock != home {
				weights[home] -= w.vw[v]
				weights[bestBlock] += w.vw[v]
				assign[v] = bestBlock
				moved++
			}
			// Reset scratch.
			for _, b := range touched {
				conn[b] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
	w.rebalance(assign, k, weights, maxW, conn)
}

// rebalance forcibly sheds weight from blocks above maxW: every vertex
// of an overweight block is moved to the eligible block it is most
// connected to (falling back to the globally lightest block), even when
// the move costs cut quality. Called after the gain-driven passes so
// that the balance guarantee holds regardless of the initial
// partitioning. The pass repeats while progress is made.
func (w *wgraph) rebalance(assign []int32, k int, weights []int64, maxW int64, conn []float64) {
	for iter := 0; iter < 2*k+4; iter++ {
		over := int32(-1)
		for b := 0; b < k; b++ {
			if weights[b] > maxW {
				over = int32(b)
				break
			}
		}
		if over < 0 {
			return
		}
		moved := false
		for v := 0; v < w.n && weights[over] > maxW; v++ {
			if assign[v] != over {
				continue
			}
			touched := touchedBlocks(w.adj[v], assign, conn)
			best, bestConn := int32(-1), -1.0
			for _, b := range touched {
				if b == over {
					continue
				}
				if weights[b]+w.vw[v] > maxW {
					continue
				}
				if conn[b] > bestConn {
					best, bestConn = b, conn[b]
				}
			}
			for _, b := range touched {
				conn[b] = 0
			}
			if best < 0 {
				// No adjacent block has room: use the lightest block if
				// it can take the vertex.
				var lightest int32
				for b := int32(1); b < int32(k); b++ {
					if weights[b] < weights[lightest] {
						lightest = b
					}
				}
				if lightest == over || weights[lightest]+w.vw[v] > maxW {
					continue
				}
				best = lightest
			}
			weights[over] -= w.vw[v]
			weights[best] += w.vw[v]
			assign[v] = best
			moved = true
		}
		if !moved {
			return
		}
	}
}

// touchedBlocks fills conn[b] with the total edge weight from v's
// adjacency into block b and returns the distinct touched blocks
// (including the home block if any neighbour shares it).
func touchedBlocks(adj []wedge, assign []int32, conn []float64) []int32 {
	touched := make([]int32, 0, 8)
	for _, e := range adj {
		b := assign[e.to]
		if conn[b] == 0 {
			touched = append(touched, b)
		}
		conn[b] += e.w
	}
	return touched
}
