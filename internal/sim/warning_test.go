package sim

// Warning-window semantics (§9): when the eviction warning fits the
// checkpoint upload (WarningWindow >= t_save), the simulator turns the
// in-flight progress durable at the eviction instant instead of rolling
// back — a warned save that is billed inside the machines' paid window
// and advances the resume point. These tests pin that branch as a
// property over start offsets, on both sides of the window boundary.
// The warning only rescues compute-phase evictions; a replica lost
// inside the save window is already mid-upload and follows the
// survivor/rollback rules, so the timeline classifies each eviction by
// the phase it interrupted before asserting anything about saves.

import (
	"sync"
	"testing"

	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// eventSink records the structured stream for folding.
type eventSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *eventSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) snapshot() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.events...)
}

// fixedProv always picks one configuration with checkpointing on — the
// simplest trajectory that makes warned and unwarned runs comparable.
type fixedProv struct{ cfg core.ConfigStats }

func (p *fixedProv) Name() string { return "fixed" }
func (p *fixedProv) Decide(st core.State) (core.Decision, error) {
	keep := st.Current != nil && st.Current.ID() == p.cfg.Config.ID()
	return core.Decision{Config: p.cfg.Config, KeepCurrent: keep, UseCheckpoints: true}, nil
}

// transientStats picks the first evictable configuration.
func transientStats(t *testing.T, env *core.Env) core.ConfigStats {
	t.Helper()
	for i := range env.Stats {
		if env.Stats[i].Config.Transient {
			return env.Stats[i]
		}
	}
	t.Fatal("no transient configuration in the env")
	return core.ConfigStats{}
}

// computeEvictTimes returns the instants of evictions that interrupted
// a compute phase — the ones the §9 warning can rescue.
func computeEvictTimes(tl *Timeline) []units.Seconds {
	var times []units.Seconds
	for i, p := range tl.Phases {
		if p.Kind == PhaseEvicted && i > 0 && tl.Phases[i-1].Kind == PhaseCompute {
			times = append(times, p.Start)
		}
	}
	return times
}

// checkpointAt reports whether the event stream holds a checkpoint
// sealed at exactly t.
func checkpointAt(events []obs.Event, t units.Seconds) bool {
	for _, e := range events {
		if e.Type == obs.EvCheckpoint && e.T == float64(t) {
			return true
		}
	}
	return false
}

// TestWarnedSavePersistsInFlightProgress sweeps start offsets on a
// fixed spot configuration and, for every offset whose run suffers
// evictions, demands the §9 contract with WarningWindow == t_save
// (the boundary where the save just fits):
//
//   - every compute-phase eviction carries a warned save — an
//     EvCheckpoint sealed at the eviction instant — and the saved
//     frontier only ever advances (checkpoint WorkLeft never rises);
//   - the save is billed inside the paid window: folding the spend
//     stream reproduces the run's cost bit-exactly, and the fold's
//     checkpoint/eviction counts match the result's;
//   - in aggregate, the warned runs finish no later and no pricier than
//     unwarned runs from the same offsets (durable in-flight progress
//     can only help a fixed-config trajectory).
func TestWarnedSavePersistsInFlightProgress(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	spot := transientStats(t, env)
	if spot.Save <= 0 {
		t.Fatalf("transient config %s has no save cost to gate the window on", spot.Config.ID())
	}
	deadline := deadlineFor(env, 0.5)

	computeEvicts, advanced := 0, 0
	var warnedCost, plainCost units.USD
	var warnedSpan, plainSpan units.Seconds
	for i := 0; i < 24; i++ {
		start := units.Seconds(i) * units.Hour
		sink := &eventSink{}
		warned := &Runner{Env: env, WarningWindow: spot.Save, Trace: true, Sink: sink}
		wres, err := warned.Run(&fixedProv{cfg: spot}, start, start+deadline)
		if err != nil {
			t.Fatalf("offset %d: warned run: %v", i, err)
		}
		plain := &Runner{Env: env}
		pres, err := plain.Run(&fixedProv{cfg: spot}, start, start+deadline)
		if err != nil {
			t.Fatalf("offset %d: plain run: %v", i, err)
		}
		if !wres.Finished || !pres.Finished {
			t.Fatalf("offset %d: finished warned=%v plain=%v", i, wres.Finished, pres.Finished)
		}
		warnedCost += wres.Cost
		plainCost += pres.Cost
		warnedSpan += wres.Completion - start
		plainSpan += pres.Completion - start

		// Fold parity: billing (warned saves included) must reproduce
		// the result exactly whatever the eviction schedule did.
		events := sink.snapshot()
		sum := obs.Summarize(events)
		if sum.CostUSD != float64(wres.Cost) {
			t.Fatalf("offset %d: folded cost %v != result %v", i, sum.CostUSD, float64(wres.Cost))
		}
		if sum.Checkpoints != wres.Checkpoints || sum.Evictions != wres.Evictions {
			t.Fatalf("offset %d: fold counts ckpt %d/%d evict %d/%d", i,
				sum.Checkpoints, wres.Checkpoints, sum.Evictions, wres.Evictions)
		}
		if err := wres.Timeline.Validate(); err != nil {
			t.Fatalf("offset %d: timeline invalid: %v\n%s", i, err, wres.Timeline)
		}

		// Every compute-phase eviction must have sealed a warned save at
		// its instant.
		for _, ev := range computeEvictTimes(wres.Timeline) {
			computeEvicts++
			if !checkpointAt(events, ev) {
				t.Errorf("offset %d: compute-phase eviction at t=%v has no warned save", i, ev)
			}
		}

		// The durable frontier never regresses across the whole stream.
		durable := 1.0
		for _, e := range events {
			if e.Type != obs.EvCheckpoint {
				continue
			}
			if e.WorkLeft > durable {
				t.Errorf("offset %d: checkpoint at t=%.0f regressed the durable frontier (%.4f -> %.4f)",
					i, e.T, durable, e.WorkLeft)
			}
			if e.WorkLeft < durable {
				advanced++
			}
			durable = e.WorkLeft
		}
	}
	if computeEvicts == 0 {
		t.Fatal("no offset produced a compute-phase eviction — the sweep proves nothing")
	}
	if advanced == 0 {
		t.Fatal("no checkpoint ever advanced the resume point")
	}
	// Aggregate dominance (per-offset timing divergence can reshuffle
	// which evictions each run meets, so compare the sweep totals).
	if warnedCost > plainCost*1.01 {
		t.Errorf("warned sweep cost %v above plain %v", warnedCost, plainCost)
	}
	if warnedSpan > plainSpan*1.01 {
		t.Errorf("warned sweep makespan %v above plain %v", warnedSpan, plainSpan)
	}
	t.Logf("warned-save property held over %d compute-phase evictions across 24 offsets (cost %v vs %v)",
		computeEvicts, warnedCost, plainCost)
}

// TestWarningWindowBelowSaveRollsBack pins the other side of the
// branch: a window just short of t_save must not persist in-flight
// progress — no compute-phase eviction may coincide with a checkpoint
// (cadence saves seal at segment boundaries, never at the crossing).
func TestWarningWindowBelowSaveRollsBack(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	spot := transientStats(t, env)
	if spot.Save <= 0 {
		t.Fatalf("transient config %s has no save cost to gate the window on", spot.Config.ID())
	}
	deadline := deadlineFor(env, 0.5)

	computeEvicts := 0
	for i := 0; i < 24; i++ {
		start := units.Seconds(i) * units.Hour
		sink := &eventSink{}
		short := &Runner{Env: env, WarningWindow: spot.Save * 0.99, Trace: true, Sink: sink}
		res, err := short.Run(&fixedProv{cfg: spot}, start, start+deadline)
		if err != nil {
			t.Fatalf("offset %d: %v", i, err)
		}
		events := sink.snapshot()
		for _, ev := range computeEvictTimes(res.Timeline) {
			computeEvicts++
			if checkpointAt(events, ev) {
				t.Errorf("offset %d: save sealed at the eviction instant t=%v despite a too-short window", i, ev)
			}
		}
	}
	if computeEvicts == 0 {
		t.Fatal("no offset produced a compute-phase eviction — the sweep proves nothing")
	}
}
