package sim

import (
	"context"
	"errors"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// testEnv mirrors §8.1: historical month for eviction stats, live month
// for the simulated market.
func testEnv(t testing.TB, job perfmodel.Job) *core.Env {
	t.Helper()
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 1010})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		t.Fatal(err)
	}
	live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 2020})
	env, err := core.NewEnv(job, perfmodel.Default(), cloud.DefaultConfigs(), cloud.NewMarket(live), em)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func deadlineFor(env *core.Env, frac float64) units.Seconds {
	return env.LRC.Fixed + env.LRC.Exec + units.Seconds(frac*float64(env.LRC.Exec))
}

func TestOnDemandRunAlwaysMeetsDeadline(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}
	for _, start := range []units.Seconds{0, 3 * units.Hour, 2 * units.Day} {
		res, err := r.Run(&core.OnDemandOnly{Env: env}, start, start+deadlineFor(env, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished || res.MissedDeadline {
			t.Errorf("start %v: finished=%v missed=%v", start, res.Finished, res.MissedDeadline)
		}
		if res.Evictions != 0 {
			t.Errorf("on-demand run suffered %d evictions", res.Evictions)
		}
		// Cost ≈ the baseline (save-time differences only).
		base := float64(Baseline(env))
		if got := float64(res.Cost); got < base*0.95 || got > base*1.10 {
			t.Errorf("on-demand cost %v, baseline %v", res.Cost, Baseline(env))
		}
	}
}

func TestHourglassNeverMissesDeadlines(t *testing.T) {
	// The paper's core guarantee (always-0 labels in Figures 1 and 5).
	for _, job := range []perfmodel.Job{perfmodel.JobSSSP, perfmodel.JobPageRank} {
		env := testEnv(t, job)
		r := &Runner{Env: env}
		for _, frac := range []float64{0.1, 0.5, 1.0} {
			batch, err := r.RunBatch(func() core.Provisioner { return core.NewSlackAware(env) },
				frac, 30, 42)
			if err != nil {
				t.Fatalf("%s slack %v: %v", job.Name, frac, err)
			}
			if batch.MissedFraction != 0 {
				t.Errorf("%s slack %.0f%%: hourglass missed %.0f%% of deadlines",
					job.Name, frac*100, batch.MissedFraction*100)
			}
		}
	}
}

func TestHourglassGCNoMissesAndSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("long-job batch")
	}
	env := testEnv(t, perfmodel.JobGC)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner { return core.NewSlackAware(env) }, 0.5, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MissedFraction != 0 {
		t.Errorf("hourglass missed %.0f%% of GC deadlines", batch.MissedFraction*100)
	}
	if batch.MeanNormCost >= 1.0 {
		t.Errorf("hourglass GC normalized cost %.2f, expected below on-demand", batch.MeanNormCost)
	}
}

func TestHourglassCheaperThanOnDemand(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}
	hg, err := r.RunBatch(func() core.Provisioner { return core.NewSlackAware(env) }, 1.0, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	od, err := r.RunBatch(func() core.Provisioner { return &core.OnDemandOnly{Env: env} }, 1.0, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if hg.MeanNormCost >= od.MeanNormCost {
		t.Errorf("hourglass %.3f not cheaper than on-demand %.3f", hg.MeanNormCost, od.MeanNormCost)
	}
	// Figure 5 shape: with 100% slack the savings are substantial.
	if hg.MeanNormCost > 0.8 {
		t.Errorf("hourglass normalized cost %.2f, want < 0.8 at 100%% slack", hg.MeanNormCost)
	}
}

func TestGreedyMissesDeadlinesOnLongJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("long-job batch")
	}
	// The §2 dilemma: eager/greedy provisioning over a 4-hour job with a
	// small slack misses deadlines (79% in Figure 1).
	env := testEnv(t, perfmodel.JobGC)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner { return core.NewGreedy(env) }, 0.2, 25, 13)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MissedFraction == 0 {
		t.Errorf("greedy missed no deadlines on GC at 20%% slack — dilemma not reproduced")
	}
}

func TestDPWrapperNeverMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("long-job batch")
	}
	env := testEnv(t, perfmodel.JobGC)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner { return core.NewDP(core.NewGreedy(env), env) },
		0.3, 25, 17)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MissedFraction != 0 {
		t.Errorf("greedy+DP missed %.0f%% of deadlines", batch.MissedFraction*100)
	}
}

func TestRunAccountsEvictionsAndCheckpoints(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	r := &Runner{Env: env}
	// Greedy on a long job across many starts: some runs must observe
	// evictions and all transient segments checkpoint.
	sawEviction := false
	sawCheckpoint := false
	for i := 0; i < 20; i++ {
		start := units.Seconds(i) * 8 * units.Hour
		res, err := r.Run(core.NewGreedy(env), start, start+deadlineFor(env, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished {
			t.Fatalf("run %d did not finish", i)
		}
		if res.Evictions > 0 {
			sawEviction = true
		}
		if res.Checkpoints > 0 {
			sawCheckpoint = true
		}
		if res.Cost <= 0 {
			t.Errorf("run %d: non-positive cost", i)
		}
	}
	if !sawEviction {
		t.Error("no run observed an eviction — spot market too calm for the experiment")
	}
	if !sawCheckpoint {
		t.Error("no run checkpointed")
	}
}

func TestBaselinePositive(t *testing.T) {
	env := testEnv(t, perfmodel.JobSSSP)
	if Baseline(env) <= 0 {
		t.Fatal("baseline not positive")
	}
}

func TestBatchAggregation(t *testing.T) {
	env := testEnv(t, perfmodel.JobSSSP)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner { return &core.OnDemandOnly{Env: env} }, 0.5, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Runs != 10 {
		t.Errorf("runs = %d", batch.Runs)
	}
	if batch.MeanNormCost < 0.9 || batch.MeanNormCost > 1.1 {
		t.Errorf("on-demand normalized cost = %.3f, want ≈ 1", batch.MeanNormCost)
	}
	if batch.MissedFraction != 0 {
		t.Errorf("on-demand missed %.2f", batch.MissedFraction)
	}
}

func TestSpotOnRuns(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner { return core.NewSpotOn(env) }, 0.5, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Runs != 15 {
		t.Errorf("spotOn batch incomplete: %d", batch.Runs)
	}
}

func TestWarningWindowNeverHurts(t *testing.T) {
	// §9 extension: an eviction warning that fits the checkpoint upload
	// preserves in-flight progress, so cost must not increase and
	// deadlines must still hold — for the plan-aware strategies (which
	// fold the window into their failure branches) as much as for
	// plan-oblivious baselines that only benefit at runtime.
	env := testEnv(t, perfmodel.JobGC)
	strategies := []struct {
		name       string
		factory    func() core.Provisioner
		guaranteed bool // strategy promises MissedFraction == 0
	}{
		{"slack-aware", func() core.Provisioner {
			p := core.NewSlackAware(env)
			p.WarningWindow = 120
			return p
		}, true},
		{"relaxed", func() core.Provisioner {
			p := core.NewRelaxed(env, env.LRC.Exec/2)
			p.Inner.WarningWindow = 120
			return p
		}, false},
		{"spoton", func() core.Provisioner { return core.NewSpotOn(env) }, false},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			plain := &Runner{Env: env}
			warned := &Runner{Env: env, WarningWindow: 120}
			// The plain batch runs the unmodified strategy: the warning
			// must be absent from both the plan and the runtime.
			var plainFactory func() core.Provisioner
			switch s.name {
			case "slack-aware":
				plainFactory = func() core.Provisioner { return core.NewSlackAware(env) }
			case "relaxed":
				plainFactory = func() core.Provisioner { return core.NewRelaxed(env, env.LRC.Exec/2) }
			default:
				plainFactory = s.factory
			}
			pb, err := plain.RunBatch(plainFactory, 0.3, 20, 77)
			if err != nil {
				t.Fatal(err)
			}
			wp, err := warned.RunBatch(s.factory, 0.3, 20, 77)
			if err != nil {
				t.Fatal(err)
			}
			if s.guaranteed && wp.MissedFraction != 0 {
				t.Errorf("warning-aware run missed %.2f", wp.MissedFraction)
			}
			if wp.MissedFraction > pb.MissedFraction {
				t.Errorf("warning raised misses: %.2f vs %.2f", wp.MissedFraction, pb.MissedFraction)
			}
			if wp.MeanNormCost > pb.MeanNormCost*1.05 {
				t.Errorf("warning raised cost: %.3f vs %.3f", wp.MeanNormCost, pb.MeanNormCost)
			}
		})
	}
}

func TestRelaxedStrategyRuns(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}
	batch, err := r.RunBatch(func() core.Provisioner {
		return core.NewRelaxed(env, env.LRC.Exec/2)
	}, 0.2, 20, 31)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Runs != 20 {
		t.Fatalf("runs = %d", batch.Runs)
	}
	// Relaxed must be at most as expensive as strict Hourglass (it has
	// strictly more perceived slack).
	strict, err := r.RunBatch(func() core.Provisioner { return core.NewSlackAware(env) }, 0.2, 20, 31)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MeanNormCost > strict.MeanNormCost*1.1 {
		t.Errorf("relaxed %.3f costlier than strict %.3f", batch.MeanNormCost, strict.MeanNormCost)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}

	// A pre-cancelled context aborts before any work is simulated.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RunCtx(ctx, core.NewSlackAware(env), 0, deadlineFor(env, 0.5))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v (err=%v)", res, err)
	}
	if res.Finished {
		t.Error("cancelled run reported Finished")
	}

	// A live context leaves Run unchanged.
	res, err = r.RunCtx(context.Background(), core.NewSlackAware(env), 0, deadlineFor(env, 0.5))
	if err != nil || !res.Finished {
		t.Errorf("uncancelled run: %+v, %v", res, err)
	}
}

func TestHorizonExported(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env}
	if h := r.Horizon(); h <= 0 {
		t.Errorf("horizon %v", h)
	}
}

// replicatedStub always asks for a two-replica deployment (SpotOn
// style: primary + one buddy, checkpointing off).
type replicatedStub struct {
	primary, extra cloud.Config
}

func (p *replicatedStub) Name() string { return "replicated-stub" }

func (p *replicatedStub) Decide(core.State) (core.Decision, error) {
	return core.Decision{
		Config:   p.primary,
		Replicas: 2,
		Extra:    []cloud.Config{p.extra},
	}, nil
}

// flatTrace builds a step-1s price trace at a deep discount, with an
// optional spike above on-demand over [spikeAt, spikeAt+spikeLen).
func flatTrace(it cloud.InstanceType, dur, spikeAt, spikeLen units.Seconds) *cloud.PriceTrace {
	prices := make([]float64, int(dur))
	for i := range prices {
		prices[i] = 0.25 * float64(it.OnDemand)
	}
	for i := int(spikeAt); spikeLen > 0 && i < int(spikeAt+spikeLen) && i < len(prices); i++ {
		prices[i] = 3 * float64(it.OnDemand)
	}
	return &cloud.PriceTrace{Instance: it.Name, Step: 1, Prices: prices}
}

// replicatedSaveFixture computes the deployment geometry of a
// two-replica run on flat traces and returns an env whose traces spike
// the selected instances inside the save window of the first segment.
func replicatedSaveFixture(t *testing.T, spikeBoth bool) (*core.Env, *replicatedStub, units.Seconds) {
	t.Helper()
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 1010})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		t.Fatal(err)
	}
	mkEnv := func(ts cloud.TraceSet) *core.Env {
		env, err := core.NewEnv(perfmodel.JobPageRank, perfmodel.Default(),
			cloud.DefaultConfigs(), cloud.NewMarket(ts), em)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	const dur = 2 * units.Day
	flat := cloud.TraceSet{}
	for _, it := range cloud.Catalogue() {
		flat[it.Name] = flatTrace(it, dur, 0, 0)
	}
	env := mkEnv(flat)

	// Two transient configs on distinct instance types (distinct
	// markets, so one can be evicted while the other survives). Save
	// time shrinks with node count, so pick the configs with the
	// longest save windows to give the spike a target.
	var prim, extra *core.ConfigStats
	for i := range env.Stats {
		c := env.Stats[i].Config
		if !c.Transient {
			continue
		}
		if prim == nil || env.Stats[i].Save > prim.Save {
			prim = &env.Stats[i]
		}
	}
	for i := range env.Stats {
		c := env.Stats[i].Config
		if !c.Transient || c.Instance.Name == prim.Config.Instance.Name {
			continue
		}
		if extra == nil || env.Stats[i].Save > extra.Save {
			extra = &env.Stats[i]
		}
	}
	if prim == nil || extra == nil {
		t.Fatal("config set lacks two transient instance types")
	}
	if prim.Save < 2 {
		t.Fatalf("save window %v too short to aim a spike into", prim.Save)
	}

	// First segment geometry (start 0, flat market: immediately
	// available): deploy to readyAt, compute one full pass, then save.
	readyAt := prim.Boot + prim.Load
	if ra := extra.Boot + extra.Load; ra > readyAt {
		readyAt = ra
	}
	segEnd := readyAt + prim.Exec
	spikeAt := segEnd + prim.Save/2

	spiked := cloud.TraceSet{}
	for _, it := range cloud.Catalogue() {
		hit := it.Name == extra.Config.Instance.Name ||
			(spikeBoth && it.Name == prim.Config.Instance.Name)
		if hit {
			spiked[it.Name] = flatTrace(it, dur, spikeAt, 15*units.Minute)
		} else {
			spiked[it.Name] = flatTrace(it, dur, 0, 0)
		}
	}
	env = mkEnv(spiked)
	return env, &replicatedStub{primary: prim.Config, extra: extra.Config}, segEnd + prim.Save
}

func TestReplicaEvictedDuringSaveIsDroppedAndBilledToEviction(t *testing.T) {
	// Regression: with more than one live replica, a replica evicted
	// inside the save window used to be billed through the end of the
	// save, never counted as an eviction, and left in the live set.
	env, stub, saveEnd := replicatedSaveFixture(t, false)
	r := &Runner{Env: env, Trace: true}
	res, err := r.Run(stub, 0, 2*units.Day)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("run did not finish")
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (buddy lost mid-save)", res.Evictions)
	}
	if res.Timeline.Evictions() != 1 {
		t.Errorf("timeline evictions = %d, want 1", res.Timeline.Evictions())
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v\n%s", err, res.Timeline)
	}
	// The surviving primary completes the save on schedule.
	if !approxSeconds(res.Completion, saveEnd, 1) {
		t.Errorf("completion %v, want ≈ %v", res.Completion, saveEnd)
	}
}

func TestAllReplicasEvictedDuringSaveRollsBack(t *testing.T) {
	// Total loss mid-save: the save fails, the run rolls back and
	// redeploys once the market recovers, and both evictions count.
	env, stub, saveEnd := replicatedSaveFixture(t, true)
	r := &Runner{Env: env, Trace: true}
	res, err := r.Run(stub, 0, 2*units.Day)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("run did not finish")
	}
	if res.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", res.Evictions)
	}
	if res.Reconfigs != 2 {
		t.Errorf("reconfigs = %d, want 2 (initial deploy + recovery)", res.Reconfigs)
	}
	if res.Completion <= saveEnd {
		t.Errorf("completion %v not after the failed save %v", res.Completion, saveEnd)
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v\n%s", err, res.Timeline)
	}
}
