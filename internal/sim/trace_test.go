package sim

import (
	"bytes"
	"testing"

	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// TestTraceFoldMatchesRunResult is the tentpole acceptance check: a
// run's JSONL event stream, read back and folded with obs.Summarize,
// must reproduce the RunResult exactly — including the float64 cost
// bit-for-bit, which only holds because the runner emits one EvSpend
// per billing charge in accounting order (float addition is not
// associative) and JSON round-trips float64 exactly.
func TestTraceFoldMatchesRunResult(t *testing.T) {
	for _, tc := range []struct {
		name string
		job  perfmodel.Job
		prov func(env *core.Env) core.Provisioner
		frac float64
	}{
		{"ondemand/pagerank", perfmodel.JobPageRank,
			func(env *core.Env) core.Provisioner { return &core.OnDemandOnly{Env: env} }, 0.1},
		{"slackaware/pagerank", perfmodel.JobPageRank,
			func(env *core.Env) core.Provisioner { return core.NewSlackAware(env) }, 0.5},
		{"slackaware/sssp", perfmodel.JobSSSP,
			func(env *core.Env) core.Provisioner { return core.NewSlackAware(env) }, 0.3},
		{"greedy/pagerank", perfmodel.JobPageRank,
			func(env *core.Env) core.Provisioner { return core.NewGreedy(env) }, 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := testEnv(t, tc.job)
			var buf bytes.Buffer
			sink := obs.NewJSONL(&buf)
			r := &Runner{Env: env, Sink: sink}
			start := 5 * units.Hour // mid-trace so spot runs see evictions
			res, err := r.Run(tc.prov(env), start, start+deadlineFor(env, tc.frac))
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Err(); err != nil {
				t.Fatal(err)
			}

			events, err := obs.ReadJSONL(&buf)
			if err != nil {
				t.Fatal(err)
			}
			s := obs.Summarize(events)

			if s.Runs != 1 {
				t.Errorf("folded runs = %d, want 1", s.Runs)
			}
			if s.CostUSD != float64(res.Cost) {
				t.Errorf("folded cost = %v, run cost = %v (must match bit-exactly)",
					s.CostUSD, float64(res.Cost))
			}
			if s.Evictions != res.Evictions {
				t.Errorf("folded evictions = %d, run = %d", s.Evictions, res.Evictions)
			}
			if s.Deploys != res.Reconfigs {
				t.Errorf("folded deploys = %d, run reconfigs = %d", s.Deploys, res.Reconfigs)
			}
			if s.Checkpoints != res.Checkpoints {
				t.Errorf("folded checkpoints = %d, run = %d", s.Checkpoints, res.Checkpoints)
			}
			if s.Decisions != res.Decisions {
				t.Errorf("folded decisions = %d, run = %d", s.Decisions, res.Decisions)
			}
			if s.Finished != res.Finished || s.Missed != res.MissedDeadline {
				t.Errorf("folded finished=%v missed=%v, run finished=%v missed=%v",
					s.Finished, s.Missed, res.Finished, res.MissedDeadline)
			}
			if res.Finished && s.Completion != float64(res.Completion) {
				t.Errorf("folded completion = %v, run = %v", s.Completion, float64(res.Completion))
			}
		})
	}
}

// TestTraceDisabledByDefault guards the zero-overhead contract: a nil
// sink must leave the runner's behavior and results untouched.
func TestTraceDisabledByDefault(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	deadline := deadlineFor(env, 0.5)

	plain := &Runner{Env: env}
	res1, err := plain.Run(core.NewSlackAware(env), 0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced := &Runner{Env: env, Sink: obs.NewJSONL(&buf)}
	res2, err := traced.Run(core.NewSlackAware(env), 0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	res2.Timeline = res1.Timeline
	if res1 != res2 {
		t.Errorf("tracing changed the run: %+v vs %+v", res1, res2)
	}
	if buf.Len() == 0 {
		t.Error("traced run emitted no events")
	}
}
