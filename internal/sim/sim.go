// Package sim is the trace-driven execution simulator of §8.1: it
// replays a provisioning strategy against spot-price traces, charging
// real observed (synthetic, seeded) prices and suffering the evictions
// the trace implies, and reports cost and deadline outcomes. All times
// are virtual, so thousands of multi-hour runs simulate in seconds,
// exactly as the paper's methodology prescribes.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/units"
)

// RunResult reports one simulated job execution.
type RunResult struct {
	Cost           units.USD
	Finished       bool
	MissedDeadline bool
	Completion     units.Seconds // absolute completion time
	Evictions      int
	Reconfigs      int
	Checkpoints    int
	Decisions      int
	// Timeline is populated when Runner.Trace is set.
	Timeline *Timeline
}

// replica is one live deployment.
type replica struct {
	stats  *core.ConfigStats
	bootAt units.Seconds // when it became ready (uptime anchor)
	evict  units.Seconds // next eviction (absolute; +Inf if none)
}

// Runner executes single simulations.
type Runner struct {
	Env *core.Env
	// MaxDecisions guards against livelock (0 = 100_000).
	MaxDecisions int
	// WarningWindow simulates providers that warn this long before an
	// eviction (§9): if the window fits the checkpoint upload, the
	// in-flight progress is persisted instead of rolled back.
	WarningWindow units.Seconds
	// Trace records a per-phase Timeline into each RunResult.
	Trace bool
	// Sink, when set, receives the structured decision/lifecycle event
	// stream (obs JSONL schema): one EvDecision per provisioner
	// consultation, one EvSpend per billing charge in accumulation
	// order, EvDeploy/EvEvict/EvCheckpoint lifecycle markers and a
	// final EvDone. Folding the stream with obs.Summarize reproduces
	// the RunResult exactly. Nil disables tracing at zero cost.
	Sink obs.Sink
}

// emit publishes a trace event when a sink is configured.
func (r *Runner) emit(e obs.Event) {
	if r.Sink != nil {
		r.Sink.Emit(e)
	}
}

// emitSpend publishes one billing charge. Every res.Cost increment has
// a matching emitSpend in the same order, so a trace's folded cost
// reproduces the run's float accumulation sequence bit-for-bit.
func (r *Runner) emitSpend(at units.Seconds, config string, usd units.USD) {
	if r.Sink != nil {
		r.Sink.Emit(obs.Event{Type: obs.EvSpend, T: float64(at),
			Config: config, USD: float64(usd)})
	}
}

// Run simulates one job execution starting at `start` with an absolute
// deadline. The provisioner is consulted at the start, at every
// checkpoint boundary and after every eviction (§4).
func (r *Runner) Run(prov core.Provisioner, start, deadline units.Seconds) (RunResult, error) {
	return r.RunCtx(context.Background(), prov, start, deadline)
}

// RunCtx is Run with cancellation: the simulation aborts between
// decisions once ctx is done, so a long-running caller (the scheduler
// daemon) can abandon an in-flight run without waiting it out.
func (r *Runner) RunCtx(ctx context.Context, prov core.Provisioner, start, deadline units.Seconds) (RunResult, error) {
	maxDecisions := r.MaxDecisions
	if maxDecisions == 0 {
		maxDecisions = 100_000
	}
	env := r.Env
	market := env.Market

	t := start
	wDurable := 1.0 // work left as of the last durable checkpoint
	wLive := 1.0    // work left counting in-memory progress
	var live []replica
	var res RunResult
	var tl *Timeline
	if r.Trace {
		tl = &Timeline{}
		res.Timeline = tl
	}

	teardown := func() { live = nil }

	for {
		if wLive <= 0 {
			res.Finished = true
			res.Completion = t
			res.MissedDeadline = t > deadline
			tl.add(PhaseDone, t, t, "", 0)
			r.emit(obs.Event{Type: obs.EvDone, T: float64(t), Job: env.Job.Name,
				Done: true, Missed: res.MissedDeadline, USD: float64(res.Cost)})
			return res, nil
		}
		res.Decisions++
		if res.Decisions > maxDecisions {
			return res, fmt.Errorf("sim: exceeded %d decisions (provisioner livelock?)", maxDecisions)
		}
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("sim: run cancelled after %d decisions: %w", res.Decisions, err)
		}
		// Ask the provisioner what to run next.
		var curCfg *cloud.Config
		uptime := units.Seconds(0)
		if len(live) > 0 {
			curCfg = &live[0].stats.Config
			uptime = t - live[0].bootAt
		}
		st := core.State{
			Now: t, WorkLeft: wLive, Deadline: deadline, Current: curCfg, Uptime: uptime,
		}
		dec, primary, err := Decide(env, prov, st, r.Sink)
		if err != nil {
			return res, err
		}

		if !dec.KeepCurrent || len(live) == 0 {
			// (Re)deploy: tear down, wait for market availability, boot
			// and load. In-memory progress is lost unless a replica of
			// the same deployment survives (handled by KeepCurrent).
			teardown()
			wLive = wDurable
			res.Reconfigs++
			configs := append([]cloud.Config{dec.Config}, dec.Extra...)
			avails := make([]units.Seconds, len(configs))
			readyAt := t
			for i, c := range configs {
				avail, err := market.NextAvailable(c, t)
				if err != nil {
					return res, err
				}
				avails[i] = avail
				cs, ok := env.StatsFor(c)
				if !ok {
					return res, fmt.Errorf("sim: unknown replica config %s", c.ID())
				}
				ra := avail + cs.Boot + cs.Load
				if ra > readyAt {
					readyAt = ra
				}
			}
			// Pay for each replica from its availability to readiness.
			for i, c := range configs {
				cost, err := market.Cost(c, avails[i], readyAt)
				if err != nil {
					return res, err
				}
				res.Cost += cost
				r.emitSpend(avails[i], c.ID(), cost)
			}
			live = live[:0]
			sampler := Evictor{Market: market}
			for _, c := range configs {
				cs, _ := env.StatsFor(c)
				live = append(live, replica{stats: cs, bootAt: readyAt,
					evict: sampler.Next(c, readyAt)})
			}
			tl.add(PhaseDeploy, t, readyAt, dec.Config.ID(), wLive)
			r.emit(obs.Event{Type: obs.EvDeploy, T: float64(t), Job: env.Job.Name,
				Config: dec.Config.ID(), WorkLeft: wLive,
				DurSec: float64(readyAt - t), Reload: res.Reconfigs > 1})
			t = readyAt
		} else {
			// Keep running: refresh eviction forecasts (prices moved on).
			sampler := Evictor{Market: market}
			for i := range live {
				if live[i].stats.Config.Transient {
					live[i].evict = sampler.Next(live[i].stats.Config, t)
				}
			}
		}

		// Determine the next event: segment completion (checkpoint or
		// job end) or the earliest eviction.
		ckpt := units.Seconds(math.Inf(1))
		if dec.UseCheckpoints {
			ckpt = primary.Ckpt
		}
		remaining := units.Seconds(wLive * float64(primary.Exec))
		segment := units.Min(remaining, ckpt)
		if dec.MaxRun > 0 {
			// Respect the provisioner's planned useful interval — the
			// slack-aware guarantee depends on being re-consulted here.
			segment = units.Min(segment, dec.MaxRun)
		}
		if segment <= 0 {
			segment = units.Seconds(1)
		}
		segEnd := t + segment

		firstEvict := units.Seconds(math.Inf(1))
		evictIdx := -1
		for i := range live {
			if live[i].evict < firstEvict {
				firstEvict = live[i].evict
				evictIdx = i
			}
		}

		if firstEvict < segEnd {
			// Eviction mid-segment.
			for i := range live {
				end := units.Min(firstEvict, live[i].evict)
				cost, err := market.Cost(live[i].stats.Config, t, end)
				if err != nil {
					return res, err
				}
				res.Cost += cost
				r.emitSpend(t, live[i].stats.Config.ID(), cost)
			}
			res.Evictions++
			// Progress since t accrues only in memory; survivors keep it.
			elapsed := firstEvict - t
			wLive -= float64(elapsed) / float64(primary.Exec)
			if wLive < 0 {
				wLive = 0
			}
			t = firstEvict
			// §9 extension: a warning long enough to upload a checkpoint
			// turns the in-flight progress durable before the machines
			// vanish.
			if dec.UseCheckpoints && r.WarningWindow >= primary.Save {
				wDurable = wLive
				res.Checkpoints++
				r.emit(obs.Event{Type: obs.EvCheckpoint, T: float64(t), Job: env.Job.Name,
					Config: primary.Config.ID(), WorkLeft: wLive})
			}
			// Drop the evicted replica (and any other replica evicted
			// at the same instant).
			var survivors []replica
			for i := range live {
				if i != evictIdx && live[i].evict > t {
					survivors = append(survivors, live[i])
				}
			}
			tl.add(PhaseCompute, t-elapsed, t, primary.Config.ID(), wLive)
			tl.add(PhaseEvicted, t, t, primary.Config.ID(), wLive)
			r.emit(obs.Event{Type: obs.EvEvict, T: float64(t), Job: env.Job.Name,
				Config: primary.Config.ID(), WorkLeft: wLive})
			if len(survivors) == 0 {
				// Total loss: roll back to the last durable checkpoint.
				wLive = wDurable
				live = nil
			} else {
				// The survivor holds the in-memory state; promote it.
				live = survivors
			}
			continue
		}

		// Segment completes.
		for i := range live {
			cost, err := market.Cost(live[i].stats.Config, t, segEnd)
			if err != nil {
				return res, err
			}
			res.Cost += cost
			r.emitSpend(t, live[i].stats.Config.ID(), cost)
		}
		wLive -= float64(segment) / float64(primary.Exec)
		if wLive < 1e-12 {
			wLive = 0
		}
		tl.add(PhaseCompute, t, segEnd, primary.Config.ID(), wLive)
		t = segEnd

		// Persist state: a checkpoint if mid-job, the output write if
		// done. A replica evicted mid-save is billed only up to its
		// eviction and counted; as long as one replica survives the
		// window, its save completes and the run proceeds. Only a total
		// loss fails the save and rolls back to the durable checkpoint.
		saveEnd := t + primary.Save
		var savers []replica
		var evTimes []units.Seconds
		for i := range live {
			if live[i].evict < saveEnd {
				cost, err := market.Cost(live[i].stats.Config, t, live[i].evict)
				if err != nil {
					return res, err
				}
				res.Cost += cost
				r.emitSpend(t, live[i].stats.Config.ID(), cost)
				evTimes = append(evTimes, live[i].evict)
				continue
			}
			cost, err := market.Cost(live[i].stats.Config, t, saveEnd)
			if err != nil {
				return res, err
			}
			res.Cost += cost
			r.emitSpend(t, live[i].stats.Config.ID(), cost)
			savers = append(savers, live[i])
		}
		sort.Slice(evTimes, func(i, j int) bool { return evTimes[i] < evTimes[j] })
		res.Evictions += len(evTimes)
		segStart := t
		for _, ev := range evTimes {
			tl.add(PhaseSave, segStart, ev, primary.Config.ID(), wLive)
			tl.add(PhaseEvicted, ev, ev, primary.Config.ID(), wLive)
			r.emit(obs.Event{Type: obs.EvEvict, T: float64(ev), Job: env.Job.Name,
				Config: primary.Config.ID(), WorkLeft: wLive})
			segStart = ev
		}
		if len(savers) == 0 && len(evTimes) > 0 {
			// Every replica vanished before the save finished: the
			// checkpoint fails, roll back to the last durable one.
			t = segStart
			wLive = wDurable
			live = nil
			continue
		}
		live = savers
		tl.add(PhaseSave, segStart, saveEnd, primary.Config.ID(), wLive)
		t = saveEnd
		if wLive > 0 {
			if dec.UseCheckpoints {
				wDurable = wLive
				res.Checkpoints++
				r.emit(obs.Event{Type: obs.EvCheckpoint, T: float64(t), Job: env.Job.Name,
					Config: primary.Config.ID(), WorkLeft: wLive})
			}
			continue
		}
		wDurable = 0
		res.Finished = true
		res.Completion = t
		res.MissedDeadline = t > deadline
		tl.add(PhaseDone, t, t, primary.Config.ID(), 0)
		r.emit(obs.Event{Type: obs.EvDone, T: float64(t), Job: env.Job.Name,
			Config: primary.Config.ID(), Done: true,
			Missed: res.MissedDeadline, USD: float64(res.Cost)})
		return res, nil
	}
}

// BatchResult aggregates a batch of randomised runs (the paper averages
// ~2000 simulations per strategy with random trace start points).
type BatchResult struct {
	Runs           int
	MeanCost       units.USD
	MeanNormCost   float64 // vs. the on-demand baseline
	MissedFraction float64
	MeanEvictions  float64
	MeanReconfigs  float64
}

// Baseline is the normalisation denominator: one uninterrupted run on
// the last-resort configuration, checkpointing disabled (§8.2).
func Baseline(env *core.Env) units.USD {
	lrc := env.LRC
	dur := float64(lrc.Fixed) + float64(lrc.Exec)
	return units.USD(float64(lrc.Config.OnDemandRate()) * dur)
}

// RunBatch simulates n runs with uniformly random start offsets.
// provFactory must return a fresh provisioner per run (wrappers like
// DeadlineProtection carry latch state).
func (r *Runner) RunBatch(provFactory func() core.Provisioner, slackFraction float64, n int, seed int64) (BatchResult, error) {
	env := r.Env
	lrc := env.LRC
	// Deadline = fixed + exec + slackFraction·exec, the §8.2 scheme
	// ("10 different deadlines, which vary the slack available ... from
	// 10% to 100% of the execution time").
	rel := lrc.Fixed + lrc.Exec + units.Seconds(slackFraction*float64(lrc.Exec))
	rng := rand.New(rand.NewSource(seed))
	horizon := r.traceHorizon()
	baseline := float64(Baseline(env))

	// Pre-draw all start offsets so parallel execution cannot perturb
	// the deterministic sequence.
	starts := make([]units.Seconds, n)
	for i := range starts {
		starts[i] = units.Seconds(rng.Float64() * float64(horizon))
	}
	results := make([]RunResult, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = r.Run(provFactory(), starts[i], starts[i]+rel)
			}
		}()
	}
	wg.Wait()

	var agg BatchResult
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return agg, fmt.Errorf("run %d (start %v): %w", i, starts[i], errs[i])
		}
		res := results[i]
		// §8.2: reported costs include the offline partitioning phase.
		res.Cost += env.OfflineCost
		agg.Runs++
		agg.MeanCost += res.Cost
		if res.MissedDeadline || !res.Finished {
			agg.MissedFraction++
		}
		agg.MeanEvictions += float64(res.Evictions)
		agg.MeanReconfigs += float64(res.Reconfigs)
	}
	if agg.Runs > 0 {
		agg.MeanCost /= units.USD(agg.Runs)
		agg.MeanNormCost = float64(agg.MeanCost) / baseline
		agg.MissedFraction /= float64(agg.Runs)
		agg.MeanEvictions /= float64(agg.Runs)
		agg.MeanReconfigs /= float64(agg.Runs)
	}
	return agg, nil
}

// Horizon exposes the trace horizon to external schedulers that draw
// their own start offsets (cmd/hourglass-serve).
func (r *Runner) Horizon() units.Seconds { return r.traceHorizon() }

// traceHorizon returns the shortest trace duration in the market,
// bounding random start offsets.
func (r *Runner) traceHorizon() units.Seconds {
	min := units.Seconds(math.Inf(1))
	for i := range r.Env.Stats {
		c := r.Env.Stats[i].Config
		if !c.Transient {
			continue
		}
		if tr, err := r.Env.MarketTrace(c.Instance.Name); err == nil {
			if d := tr.Duration(); d < min {
				min = d
			}
		}
	}
	if math.IsInf(float64(min), 1) {
		return 30 * units.Day
	}
	return min
}
