package sim

import (
	"fmt"
	"math"
	"strings"

	"hourglass/internal/units"
)

// PhaseKind labels one span of a run's timeline.
type PhaseKind int

// Timeline phases, in the order they typically occur (Figure 2's
// execution flow).
const (
	PhaseDeploy PhaseKind = iota // market wait + boot + load
	PhaseCompute
	PhaseSave
	PhaseEvicted // instant marker: deployment lost
	PhaseDone    // instant marker: job finished
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseDeploy:
		return "deploy"
	case PhaseCompute:
		return "compute"
	case PhaseSave:
		return "save"
	case PhaseEvicted:
		return "evicted"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one span (or instant marker) of a run.
type Phase struct {
	Kind     PhaseKind
	Start    units.Seconds
	End      units.Seconds
	Config   string  // deployment id ("" for markers before any deployment)
	WorkLeft float64 // w at the end of the phase
}

// Timeline records the phases of a single run when Runner.Trace is set.
type Timeline struct {
	Phases []Phase
}

// add appends a phase.
func (tl *Timeline) add(kind PhaseKind, start, end units.Seconds, cfg string, w float64) {
	if tl == nil {
		return
	}
	tl.Phases = append(tl.Phases, Phase{kind, start, end, cfg, w})
}

// ComputeTime sums the compute spans.
func (tl *Timeline) ComputeTime() units.Seconds {
	var total units.Seconds
	for _, p := range tl.Phases {
		if p.Kind == PhaseCompute {
			total += p.End - p.Start
		}
	}
	return total
}

// OverheadTime sums the deploy and save spans — everything that is not
// forward progress.
func (tl *Timeline) OverheadTime() units.Seconds {
	var total units.Seconds
	for _, p := range tl.Phases {
		if p.Kind == PhaseDeploy || p.Kind == PhaseSave {
			total += p.End - p.Start
		}
	}
	return total
}

// Evictions counts the eviction markers.
func (tl *Timeline) Evictions() int {
	n := 0
	for _, p := range tl.Phases {
		if p.Kind == PhaseEvicted {
			n++
		}
	}
	return n
}

// String renders a compact human-readable trace.
func (tl *Timeline) String() string {
	var b strings.Builder
	for _, p := range tl.Phases {
		switch p.Kind {
		case PhaseEvicted, PhaseDone:
			fmt.Fprintf(&b, "%v %-8s %s (w=%.3f)\n", p.Start, p.Kind, p.Config, p.WorkLeft)
		default:
			fmt.Fprintf(&b, "%v %-8s %s for %v (w=%.3f)\n", p.Start, p.Kind, p.Config, p.End-p.Start, p.WorkLeft)
		}
	}
	return b.String()
}

// Validate checks structural invariants: phases are time-ordered and
// non-negative, work never increases except at eviction rollbacks. A
// rollback surfaces as a deploy phase re-anchored to the durable
// frontier, so a work increase recorded anywhere else — mid-compute,
// mid-save, at an eviction marker — is a bookkeeping bug (billing a
// dead replica, resurrecting lost progress) and fails validation.
func (tl *Timeline) Validate() error {
	var prevEnd units.Seconds
	prevW := math.Inf(1)
	for i, p := range tl.Phases {
		if p.End < p.Start {
			return fmt.Errorf("phase %d: negative span [%v, %v]", i, p.Start, p.End)
		}
		if p.Start < prevEnd-1e-9 {
			return fmt.Errorf("phase %d: overlaps previous (starts %v before %v)", i, p.Start, prevEnd)
		}
		if p.Kind != PhaseDeploy && p.WorkLeft > prevW+1e-9 {
			return fmt.Errorf("phase %d (%v): work left rose %.6f -> %.6f outside a deploy",
				i, p.Kind, prevW, p.WorkLeft)
		}
		prevEnd = p.End
		prevW = p.WorkLeft
	}
	return nil
}
