package sim

import (
	"fmt"
	"math"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/units"
)

// Evictor samples eviction times from the market's spot-price traces —
// the same process the trace-driven simulator suffers, factored out so
// the eviction-aware execution runtime (internal/runtime) injects
// evictions into *real* engine runs drawn from the identical
// distribution.
type Evictor struct {
	Market *cloud.Market
}

// Next returns the absolute time at or after `from` when the
// configuration is evicted (its spot price crosses the bid). On-demand
// configurations, trace exhaustion and trace errors all report +Inf:
// "no eviction on this horizon", matching how the simulator treats
// them.
func (e Evictor) Next(c cloud.Config, from units.Seconds) units.Seconds {
	if !c.Transient {
		return units.Seconds(math.Inf(1))
	}
	if at, ok, err := e.Market.NextEviction(c, from); err == nil && ok {
		return at
	}
	return units.Seconds(math.Inf(1))
}

// Decide consults the provisioner once and resolves the chosen
// configuration's profiled stats, emitting the EvDecision trace event
// exactly as Runner.RunCtx does (same fields, same Finite clamping) so
// traces from the simulator and the execution runtime fold alike.
func Decide(env *core.Env, prov core.Provisioner, st core.State, sink obs.Sink) (core.Decision, *core.ConfigStats, error) {
	dec, err := prov.Decide(st)
	if err != nil {
		return core.Decision{}, nil, err
	}
	cs, ok := env.StatsFor(dec.Config)
	if !ok {
		return core.Decision{}, nil, fmt.Errorf("sim: provisioner chose unknown config %s", dec.Config.ID())
	}
	if sink != nil {
		sink.Emit(obs.Event{Type: obs.EvDecision, T: float64(st.Now), Job: env.Job.Name,
			Config:     dec.Config.ID(),
			ECUSD:      obs.Finite(float64(dec.ExpectedCost)),
			SlackSec:   obs.Finite(float64(env.Slack(st))),
			WorkLeft:   st.WorkLeft,
			Keep:       dec.KeepCurrent,
			LastResort: dec.Config.ID() == env.LRC.Config.ID(),
		})
	}
	return dec, cs, nil
}
