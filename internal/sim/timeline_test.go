package sim

import (
	"strings"
	"testing"

	"hourglass/internal/core"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

func TestTimelineRecordsOnDemandRun(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	r := &Runner{Env: env, Trace: true}
	res, err := r.Run(&core.OnDemandOnly{Env: env}, 0, deadlineFor(env, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil {
		t.Fatal("no timeline recorded")
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := make([]PhaseKind, len(tl.Phases))
	for i, p := range tl.Phases {
		kinds[i] = p.Kind
	}
	// On-demand without evictions: deploy, compute, save, done.
	want := []PhaseKind{PhaseDeploy, PhaseCompute, PhaseSave, PhaseDone}
	if len(kinds) != len(want) {
		t.Fatalf("phases = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("phase %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Compute time equals the LRC exec time.
	if got := tl.ComputeTime(); !approxSeconds(got, env.LRC.Exec, 1) {
		t.Errorf("compute time %v, want %v", got, env.LRC.Exec)
	}
	if tl.Evictions() != 0 {
		t.Errorf("evictions = %d", tl.Evictions())
	}
	if tl.OverheadTime() <= 0 {
		t.Error("no overhead recorded")
	}
}

func approxSeconds(a, b units.Seconds, tol float64) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestTimelineWithEvictions(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	r := &Runner{Env: env, Trace: true}
	// Scan starts until a run with evictions appears.
	for i := 0; i < 30; i++ {
		start := units.Seconds(i) * 6 * units.Hour
		res, err := r.Run(core.NewGreedy(env), start, start+deadlineFor(env, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.Validate(); err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, res.Timeline)
		}
		if res.Evictions > 0 {
			if res.Timeline.Evictions() != res.Evictions {
				t.Errorf("timeline evictions %d != result %d", res.Timeline.Evictions(), res.Evictions)
			}
			out := res.Timeline.String()
			if !strings.Contains(out, "evicted") {
				t.Error("string rendering misses evictions")
			}
			return
		}
	}
	t.Skip("no evictions observed in 30 starts")
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.add(PhaseDone, 0, 0, "", 0) // must not panic
	env := testEnv(t, perfmodel.JobSSSP)
	r := &Runner{Env: env} // Trace off
	res, err := r.Run(&core.OnDemandOnly{Env: env}, 0, deadlineFor(env, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Error("timeline recorded with Trace off")
	}
}

func TestPhaseKindString(t *testing.T) {
	if PhaseDeploy.String() != "deploy" || PhaseEvicted.String() != "evicted" {
		t.Error("phase names wrong")
	}
	if PhaseKind(99).String() == "" {
		t.Error("unknown phase should render")
	}
}

func TestTimelineValidateCatchesWorkIncrease(t *testing.T) {
	// Regression: Validate documented "work never increases except at
	// eviction rollbacks" but never checked it, so a timeline recording
	// resurrected progress (the signature of billing or bookkeeping
	// bugs) validated clean.
	bad := &Timeline{Phases: []Phase{
		{Kind: PhaseDeploy, Start: 0, End: 10, WorkLeft: 1.0},
		{Kind: PhaseCompute, Start: 10, End: 20, WorkLeft: 0.5},
		{Kind: PhaseCompute, Start: 20, End: 30, WorkLeft: 0.8}, // work rose mid-compute
	}}
	if bad.Validate() == nil {
		t.Error("work increase outside a deploy accepted")
	}
	badSave := &Timeline{Phases: []Phase{
		{Kind: PhaseCompute, Start: 0, End: 10, WorkLeft: 0.4},
		{Kind: PhaseSave, Start: 10, End: 15, WorkLeft: 0.6},
	}}
	if badSave.Validate() == nil {
		t.Error("work increase at a save accepted")
	}
	// A rollback re-anchors at a deploy: that increase is legitimate.
	rollback := &Timeline{Phases: []Phase{
		{Kind: PhaseDeploy, Start: 0, End: 10, WorkLeft: 1.0},
		{Kind: PhaseCompute, Start: 10, End: 20, WorkLeft: 0.5},
		{Kind: PhaseEvicted, Start: 20, End: 20, WorkLeft: 0.5},
		{Kind: PhaseDeploy, Start: 20, End: 30, WorkLeft: 1.0}, // back to the durable frontier
		{Kind: PhaseCompute, Start: 30, End: 50, WorkLeft: 0},
		{Kind: PhaseDone, Start: 50, End: 50, WorkLeft: 0},
	}}
	if err := rollback.Validate(); err != nil {
		t.Errorf("legitimate rollback rejected: %v", err)
	}
}

func TestTimelineValidateCatchesOverlap(t *testing.T) {
	tl := &Timeline{Phases: []Phase{
		{Kind: PhaseCompute, Start: 10, End: 20},
		{Kind: PhaseCompute, Start: 15, End: 25},
	}}
	if tl.Validate() == nil {
		t.Error("overlapping phases accepted")
	}
	bad := &Timeline{Phases: []Phase{{Kind: PhaseCompute, Start: 20, End: 10}}}
	if bad.Validate() == nil {
		t.Error("negative span accepted")
	}
}
