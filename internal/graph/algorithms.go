package graph

import "sort"

// Induced builds the subgraph induced by the given vertex set and
// returns it with the local→global mapping. Edge weights are carried
// over; edges leaving the set are dropped. The input order defines the
// local ids.
func (g *Graph) Induced(vertices []VertexID) (*Graph, []VertexID) {
	local := make(map[VertexID]VertexID, len(vertices))
	for i, v := range vertices {
		local[v] = VertexID(i)
	}
	opts := []BuilderOption{}
	if g.Weighted() {
		opts = append(opts, Weighted())
	}
	b := NewBuilder(len(vertices), opts...)
	for _, v := range vertices {
		lv := local[v]
		weights := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			lu, ok := local[u]
			if !ok {
				continue
			}
			w := float32(1)
			if weights != nil {
				w = weights[i]
			}
			b.AddEdge(lv, lu, w)
		}
	}
	sub := b.Build()
	sub.undirected = g.undirected
	mapping := append([]VertexID(nil), vertices...)
	return sub, mapping
}

// ConnectedComponents labels weakly connected components with
// union-find — the sequential reference for the engine's WCC program
// and a building block for tools. Returns the label array (labels are
// the minimum vertex id of each component) and the component count.
func ConnectedComponents(g *Graph) ([]VertexID, int) {
	n := g.NumVertices()
	parent := make([]VertexID, n)
	for i := range parent {
		parent[i] = VertexID(i)
	}
	var find func(VertexID) VertexID
	find = func(x VertexID) VertexID {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // root at the smaller id
	}
	g.ForEachEdge(func(s, d VertexID, _ float32) { union(s, d) })
	labels := make([]VertexID, n)
	count := 0
	for v := 0; v < n; v++ {
		labels[v] = find(VertexID(v))
		if labels[v] == VertexID(v) {
			count++
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the biggest weakly
// connected component, sorted by id.
func LargestComponent(g *Graph) []VertexID {
	labels, _ := ConnectedComponents(g)
	sizes := map[VertexID]int{}
	for _, l := range labels {
		sizes[l]++
	}
	var best VertexID
	bestSize := -1
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < best) {
			best, bestSize = l, s
		}
	}
	var out []VertexID
	for v, l := range labels {
		if l == best {
			out = append(out, VertexID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClusteringCoefficient returns the local clustering coefficient of v:
// the fraction of its neighbour pairs that are themselves adjacent.
// Vertices of degree < 2 have coefficient 0.
func (g *Graph) ClusteringCoefficient(v VertexID) float64 {
	nb := g.Neighbors(v)
	if len(nb) < 2 {
		return 0
	}
	links := 0
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			if nb[i] != nb[j] && g.HasEdge(nb[i], nb[j]) {
				links++
			}
		}
	}
	pairs := len(nb) * (len(nb) - 1) / 2
	return float64(links) / float64(pairs)
}

// HasEdge reports whether the arc v→u exists (binary search over the
// sorted adjacency).
func (g *Graph) HasEdge(v, u VertexID) bool {
	nb := g.Neighbors(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= u })
	return i < len(nb) && nb[i] == u
}

// DegreePercentiles returns the requested percentiles (0–100) of the
// out-degree distribution, used in dataset reports.
func DegreePercentiles(g *Graph, ps ...float64) []int {
	n := g.NumVertices()
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(VertexID(v))
	}
	sort.Ints(degrees)
	out := make([]int, len(ps))
	for i, p := range ps {
		if n == 0 {
			continue
		}
		idx := int(p / 100 * float64(n-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[i] = degrees[idx]
	}
	return out
}
