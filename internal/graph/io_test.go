package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(DefaultRMAT(8, 77))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Reader compacts ids, so compare edge counts and degree multiset.
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("edges after round trip = %d, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestReadEdgeListCommentsAndWeights(t *testing.T) {
	in := `# a comment
% another
10 20 0.5
20 30
`
	g, err := ReadEdgeList(strings.NewReader(in), Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3 (compacted)", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if w := g.EdgeWeights(0); len(w) != 1 || w[0] != 0.5 {
		t.Errorf("weight = %v, want [0.5]", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",       // too few fields
		"a b\n",     // bad src
		"1 b\n",     // bad dst
		"1 2 zoo\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := DefaultRMAT(9, 5)
	p.Undirected = true
	p.Weighted = true
	g := RMAT(p)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch after round trip")
	}
	if back.Undirected() != g.Undirected() || back.Weighted() != g.Weighted() {
		t.Fatalf("flags lost in round trip")
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(VertexID(v)), back.Neighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: neighbor %d mismatch", v, i)
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestDatasetRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 5 {
		t.Fatalf("registry has %d datasets, want 5 (Table 2 real graphs)", len(ds))
	}
	if _, err := ByName("twitter"); err != nil {
		t.Errorf("ByName(twitter): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("ByName(nope) should fail")
	}
	names := SortedNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("SortedNames not sorted: %v", names)
		}
	}
}

func TestDatasetGenerationAndCache(t *testing.T) {
	d, err := ByName("human-gene")
	if err != nil {
		t.Fatal(err)
	}
	g1 := Load(d, 0.1)
	g2 := Load(d, 0.1)
	if g1 != g2 {
		t.Error("Load did not memoise")
	}
	if g1.NumVertices() < 64 {
		t.Errorf("scaled dataset too small: %d", g1.NumVertices())
	}
	st := ComputeStats(d, g1)
	if st.Name != "human-gene" || st.Vertices != g1.NumVertices() {
		t.Errorf("stats mismatch: %+v", st)
	}
}

func TestRMATDatasetSizes(t *testing.T) {
	d := RMATDataset(10)
	if d.PaperVertices != 1024 || d.PaperEdges != 1<<14 {
		t.Errorf("RMAT-10 paper sizes wrong: %+v", d)
	}
	g := d.Generate(1.0)
	if g.NumVertices() != 1024 {
		t.Errorf("RMAT-10 generated %d vertices, want 1024", g.NumVertices())
	}
}
