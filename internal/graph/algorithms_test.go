package graph

import (
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	g := Grid(3, 3)
	// Take the top-left 2x2 block: vertices 0,1,3,4.
	sub, mapping := g.Induced([]VertexID{0, 1, 3, 4})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	// Edges inside the block: 0-1, 0-3, 1-4, 3-4 → 4 logical.
	if sub.NumLogicalEdges() != 4 {
		t.Errorf("sub edges = %d, want 4", sub.NumLogicalEdges())
	}
	if mapping[2] != 3 {
		t.Errorf("mapping[2] = %d, want 3", mapping[2])
	}
	if sub.Undirected() != g.Undirected() {
		t.Error("directedness lost")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1},
	}, Undirected())
	labels, count := ConnectedComponents(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != 0 || labels[2] != 0 || labels[4] != 3 || labels[5] != 5 {
		t.Errorf("labels = %v", labels)
	}
	lc := LargestComponent(g)
	if len(lc) != 3 || lc[0] != 0 || lc[2] != 2 {
		t.Errorf("largest component = %v", lc)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if c := Complete(4).ClusteringCoefficient(0); c != 1 {
		t.Errorf("K4 coefficient = %v, want 1", c)
	}
	if c := Path(3).ClusteringCoefficient(1); c != 0 {
		t.Errorf("path coefficient = %v, want 0", c)
	}
	if c := Path(3).ClusteringCoefficient(0); c != 0 {
		t.Errorf("degree-1 coefficient = %v, want 0", c)
	}
}

func TestHasEdge(t *testing.T) {
	g := Ring(5)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) {
		t.Error("ring adjacency missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
}

func TestDegreePercentiles(t *testing.T) {
	g := Ring(10) // all degree 2
	ps := DegreePercentiles(g, 0, 50, 100)
	for _, p := range ps {
		if p != 2 {
			t.Errorf("percentiles = %v, want all 2", ps)
		}
	}
}

// Property: union-find components agree with a BFS labelling.
func TestQuickComponentsMatchBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := ErdosRenyi(200, 150, seed, true) // sparse: many components
		labels, count := ConnectedComponents(g)
		// BFS reference.
		ref := make([]int, g.NumVertices())
		for i := range ref {
			ref[i] = -1
		}
		comp := 0
		for s := 0; s < g.NumVertices(); s++ {
			if ref[s] >= 0 {
				continue
			}
			queue := []VertexID{VertexID(s)}
			ref[s] = comp
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, u := range g.Neighbors(v) {
					if ref[u] < 0 {
						ref[u] = comp
						queue = append(queue, u)
					}
				}
			}
			comp++
		}
		if comp != count {
			return false
		}
		// Same partition: labels equal iff ref equal.
		for a := 0; a < g.NumVertices(); a++ {
			for b := a + 1; b < g.NumVertices(); b += 7 { // sampled pairs
				if (labels[a] == labels[b]) != (ref[a] == ref[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: Induced over the full vertex set is edge-preserving.
func TestQuickInducedIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := RMAT(DefaultRMAT(7, seed))
		all := make([]VertexID, g.NumVertices())
		for i := range all {
			all[i] = VertexID(i)
		}
		sub, _ := g.Induced(all)
		return sub.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
