package graph

import (
	"math"
	"math/rand"
)

// RMATParams configure the recursive-matrix generator of Chakrabarti,
// Zhan & Faloutsos (reference [10] in the paper). The probabilities
// must sum to 1; Graph500 defaults are A=0.57 B=0.19 C=0.19 D=0.05.
type RMATParams struct {
	Scale      int // 2^Scale vertices
	EdgeFactor int // edges per vertex; the paper's RMAT-N has 2^(N+4) edges (factor 16)
	A, B, C, D float64
	Seed       int64
	Undirected bool
	Weighted   bool // uniform random weights in (0, 1] for SSSP
}

// DefaultRMAT returns Graph500-style parameters matching the paper's
// RMAT-N datasets (2^N vertices, 2^(N+4) edges).
func DefaultRMAT(scale int, seed int64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed}
}

// RMAT generates a scale-free graph with the recursive matrix model.
// The generator is deterministic for a fixed seed.
func RMAT(p RMATParams) *Graph {
	n := 1 << p.Scale
	m := n * p.EdgeFactor
	rng := rand.New(rand.NewSource(p.Seed))
	opts := []BuilderOption{Dedup(), DropSelfLoops()}
	if p.Undirected {
		opts = append(opts, Undirected())
	}
	if p.Weighted {
		opts = append(opts, Weighted())
	}
	b := NewBuilder(n, opts...)
	ab := p.A + p.B
	cNorm := p.C / (p.C + p.D)
	aNorm := p.A / (p.A + p.B)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 1 << (p.Scale - 1); bit >= 1; bit >>= 1 {
			r := rng.Float64()
			if r > ab { // bottom half
				src |= bit
				if rng.Float64() > cNorm {
					dst |= bit
				}
			} else if rng.Float64() > aNorm {
				dst |= bit
			}
		}
		w := float32(1)
		if p.Weighted {
			w = float32(1 - rng.Float64()) // (0, 1]
		}
		b.AddEdge(VertexID(src), VertexID(dst), w)
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) uniform random graph: m arcs drawn
// uniformly (self loops removed, duplicates deduped so the realised
// edge count can be slightly below m on dense settings).
func ErdosRenyi(n int, m int, seed int64, undirected bool) *Graph {
	rng := rand.New(rand.NewSource(seed))
	opts := []BuilderOption{Dedup(), DropSelfLoops()}
	if undirected {
		opts = append(opts, Undirected())
	}
	b := NewBuilder(n, opts...)
	for i := 0; i < m; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), 1)
	}
	return b.Build()
}

// PreferentialAttachment generates a Barabási–Albert style power-law
// graph: vertices arrive one at a time and attach k edges to existing
// vertices chosen proportionally to their current degree. It yields
// the heavy-tailed degree distribution typical of social networks.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	if n < k+1 {
		panic("graph: PreferentialAttachment needs n > k")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, Undirected(), Dedup(), DropSelfLoops())
	// repeated holds one entry per degree unit, enabling O(1)
	// degree-proportional sampling.
	repeated := make([]VertexID, 0, 2*n*k)
	// Seed clique over the first k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(VertexID(i), VertexID(j), 1)
			repeated = append(repeated, VertexID(i), VertexID(j))
		}
	}
	for v := k + 1; v < n; v++ {
		for e := 0; e < k; e++ {
			target := repeated[rng.Intn(len(repeated))]
			b.AddEdge(VertexID(v), target, 1)
			repeated = append(repeated, VertexID(v), target)
		}
	}
	return b.Build()
}

// CommunityParams configure the planted-partition generator used to
// model collaboration networks (dense communities, sparse cross
// links), the structure of the paper's Hollywood dataset.
type CommunityParams struct {
	Communities   int
	SizeMean      int     // mean community size (geometric-ish spread)
	IntraDegree   float64 // expected intra-community degree per vertex
	InterFraction float64 // fraction of edges rewired across communities
	Seed          int64
}

// Community generates a planted-partition graph.
func Community(p CommunityParams) *Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	sizes := make([]int, p.Communities)
	total := 0
	for i := range sizes {
		// Sizes spread around the mean by a factor in [0.5, 1.5].
		sizes[i] = int(float64(p.SizeMean) * (0.5 + rng.Float64()))
		if sizes[i] < 2 {
			sizes[i] = 2
		}
		total += sizes[i]
	}
	starts := make([]int, p.Communities+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
	}
	b := NewBuilder(total, Undirected(), Dedup(), DropSelfLoops())
	for c := 0; c < p.Communities; c++ {
		lo, size := starts[c], sizes[c]
		edges := int(float64(size) * p.IntraDegree / 2)
		for e := 0; e < edges; e++ {
			u := VertexID(lo + rng.Intn(size))
			var v VertexID
			if rng.Float64() < p.InterFraction {
				v = VertexID(rng.Intn(total))
			} else {
				v = VertexID(lo + rng.Intn(size))
			}
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// NearRegular generates a dense near-regular graph: every vertex gets
// approximately d random neighbours. Biological interaction networks
// (the paper's Human-Gene dataset: 22k vertices, 12M edges, average
// degree ~550) have this flat, dense shape rather than a power law.
func NearRegular(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, Undirected(), Dedup(), DropSelfLoops())
	arcs := n * d / 2
	for i := 0; i < arcs; i++ {
		u := VertexID(rng.Intn(n))
		// Bias the second endpoint to a window around u so the graph
		// has locality (as gene-neighbourhood graphs do) without being
		// a ring lattice.
		window := n / 8
		if window < 4 {
			window = 4
		}
		v := VertexID((int(u) + 1 + rng.Intn(window)) % n)
		b.AddEdge(u, v, 1)
	}
	return b.Build()
}

// WattsStrogatz generates a small-world ring lattice with rewiring
// probability beta. Used in property tests as a graph with known
// structure.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, Undirected(), Dedup(), DropSelfLoops())
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			dst := (v + j) % n
			if rng.Float64() < beta {
				dst = rng.Intn(n)
			}
			b.AddEdge(VertexID(v), VertexID(dst), 1)
		}
	}
	return b.Build()
}

// Path returns a simple path 0-1-...-n-1, handy in unit tests.
func Path(n int) *Graph {
	b := NewBuilder(n, Undirected())
	for v := 0; v < n-1; v++ {
		b.AddEdge(VertexID(v), VertexID(v+1), 1)
	}
	return b.Build()
}

// Ring returns a simple cycle of n vertices.
func Ring(n int) *Graph {
	b := NewBuilder(n, Undirected())
	for v := 0; v < n; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%n), 1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n, Undirected())
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(VertexID(u), VertexID(v), 1)
		}
	}
	return b.Build()
}

// Grid returns an r×c 4-neighbour mesh, a standard partitioning test
// case with a known small edge cut.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows*cols, Undirected())
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

// DegreeHistogram returns counts of vertices per log2 degree bucket,
// used by tests to check that generators produce the intended shape
// (power law vs. near-regular).
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(VertexID(v))
		bucket := 0
		if d > 0 {
			bucket = int(math.Log2(float64(d))) + 1
		}
		h[bucket]++
	}
	return h
}
