package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderBasicCSR(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
	if got := g.Neighbors(1); len(got) != 0 {
		t.Errorf("Neighbors(1) = %v, want empty", got)
	}
	if g.Degree(2) != 1 {
		t.Errorf("Degree(2) = %d, want 1", g.Degree(2))
	}
}

func TestBuilderUndirectedMirrors(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}}, Undirected())
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4 (mirrored)", g.NumEdges())
	}
	if g.NumLogicalEdges() != 2 {
		t.Fatalf("NumLogicalEdges = %d, want 2", g.NumLogicalEdges())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}, {0, 1, 5}, {1, 1, 1}, {1, 2, 1}},
		Dedup(), DropSelfLoops(), Weighted())
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	// First occurrence's weight wins after sort; both (0,1) copies sort
	// adjacently and weight 1 sorts before... actually sort is by
	// (src,dst) only, so either weight may be kept; assert it is one of
	// the provided.
	w := g.EdgeWeights(0)[0]
	if w != 1 && w != 5 {
		t.Errorf("weight = %v, want 1 or 5", w)
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5, 1)
}

func TestTranspose(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 2}, {1, 2, 3}}, Weighted())
	tr := g.Transpose()
	if got := tr.Neighbors(1); !reflect.DeepEqual(got, []VertexID{0}) {
		t.Errorf("transpose Neighbors(1) = %v, want [0]", got)
	}
	if got := tr.Neighbors(2); !reflect.DeepEqual(got, []VertexID{1}) {
		t.Errorf("transpose Neighbors(2) = %v, want [1]", got)
	}
	if tr.EdgeWeights(2)[0] != 3 {
		t.Errorf("transpose weight = %v, want 3", tr.EdgeWeights(2)[0])
	}
}

func TestForEachEdgeVisitsAll(t *testing.T) {
	g := Ring(5)
	count := 0
	g.ForEachEdge(func(src, dst VertexID, w float32) { count++ })
	if int64(count) != g.NumEdges() {
		t.Errorf("visited %d arcs, want %d", count, g.NumEdges())
	}
}

func TestInducedQuotient(t *testing.T) {
	// Path 0-1-2-3, blocks {0,1} and {2,3}: quotient has 2 vertices,
	// one logical edge of weight 1 (the 1-2 edge) and vertex weights 2,2.
	g := Path(4)
	q, vw := g.InducedQuotient([]int32{0, 0, 1, 1}, 2)
	if q.NumVertices() != 2 {
		t.Fatalf("quotient vertices = %d, want 2", q.NumVertices())
	}
	if !reflect.DeepEqual(vw, []int64{2, 2}) {
		t.Errorf("vertex weights = %v, want [2 2]", vw)
	}
	if q.NumLogicalEdges() != 1 {
		t.Errorf("quotient logical edges = %d, want 1", q.NumLogicalEdges())
	}
	if w := q.EdgeWeights(0); len(w) != 1 || w[0] != 1 {
		t.Errorf("crossing weight = %v, want [1]", w)
	}
}

func TestInducedQuotientWeightConservation(t *testing.T) {
	g := RMAT(DefaultRMAT(8, 42))
	assign := make([]int32, g.NumVertices())
	rng := rand.New(rand.NewSource(7))
	for i := range assign {
		assign[i] = int32(rng.Intn(5))
	}
	q, vw := g.InducedQuotient(assign, 5)
	var totalVW int64
	for _, w := range vw {
		totalVW += w
	}
	if totalVW != int64(g.NumVertices()) {
		t.Errorf("sum vertex weights = %d, want %d", totalVW, g.NumVertices())
	}
	// Crossing weight in quotient must equal number of crossing arcs.
	var crossing float64
	g.ForEachEdge(func(s, d VertexID, w float32) {
		if assign[s] != assign[d] {
			crossing += float64(w)
		}
	})
	var qw float64
	q.ForEachEdge(func(s, d VertexID, w float32) { qw += float64(w) })
	if qw != crossing {
		t.Errorf("quotient weight = %v, want %v", qw, crossing)
	}
}

func TestGeneratorsBasicShapes(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"path", Path(10), 10},
		{"ring", Ring(10), 10},
		{"complete", Complete(6), 6},
		{"grid", Grid(4, 5), 20},
	}
	for _, tc := range tests {
		if tc.g.NumVertices() != tc.n {
			t.Errorf("%s: vertices = %d, want %d", tc.name, tc.g.NumVertices(), tc.n)
		}
	}
	if Complete(6).NumLogicalEdges() != 15 {
		t.Errorf("K6 edges = %d, want 15", Complete(6).NumLogicalEdges())
	}
	if Grid(4, 5).NumLogicalEdges() != int64(4*4+3*5) {
		t.Errorf("grid edges = %d, want 31", Grid(4, 5).NumLogicalEdges())
	}
	if Ring(10).MaxDegree() != 2 {
		t.Errorf("ring max degree = %d, want 2", Ring(10).MaxDegree())
	}
}

func TestRMATDeterministicAndSkewed(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 99))
	b := RMAT(DefaultRMAT(10, 99))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Degree(VertexID(v)) != b.Degree(VertexID(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	c := RMAT(DefaultRMAT(10, 100))
	if c.NumEdges() == a.NumEdges() && degreesEqual(a, c) {
		t.Error("different seeds produced identical graphs")
	}
	// Scale-free: max degree far above average.
	if float64(a.MaxDegree()) < 4*a.AvgDegree() {
		t.Errorf("RMAT not skewed: max=%d avg=%.1f", a.MaxDegree(), a.AvgDegree())
	}
}

func degreesEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Degree(VertexID(v)) != b.Degree(VertexID(v)) {
			return false
		}
	}
	return true
}

func TestPreferentialAttachmentPowerLaw(t *testing.T) {
	g := PreferentialAttachment(4000, 4, 1)
	if g.NumVertices() != 4000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Heavy tail: the largest hub should dominate the average degree.
	if float64(g.MaxDegree()) < 8*g.AvgDegree() {
		t.Errorf("not heavy tailed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestNearRegularIsFlat(t *testing.T) {
	g := NearRegular(2000, 40, 5)
	// Near-regular: max degree within a small factor of the mean.
	if float64(g.MaxDegree()) > 3*g.AvgDegree() {
		t.Errorf("too skewed for near-regular: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestErdosRenyiEdgeBudget(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 3, false)
	if g.NumEdges() < 4500 || g.NumEdges() > 5000 {
		t.Errorf("edges = %d, want ~5000 after dedup", g.NumEdges())
	}
}

func TestWattsStrogatzDegreeBudget(t *testing.T) {
	g := WattsStrogatz(500, 6, 0.1, 11)
	// Each vertex contributes k/2 logical edges (some deduped).
	want := int64(500 * 3)
	if g.NumLogicalEdges() < want*8/10 || g.NumLogicalEdges() > want {
		t.Errorf("edges = %d, want close to %d", g.NumLogicalEdges(), want)
	}
}

// Property: for any generated graph, CSR invariants hold.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(seed int64, rawScale uint8) bool {
		scale := 6 + int(rawScale%4) // 6..9
		g := RMAT(DefaultRMAT(scale, seed))
		n := g.NumVertices()
		var total int64
		for v := 0; v < n; v++ {
			nb := g.Neighbors(VertexID(v))
			total += int64(len(nb))
			for i, u := range nb {
				if u < 0 || int(u) >= n {
					return false
				}
				if i > 0 && nb[i-1] > u { // builder sorts neighbours
					return false
				}
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: undirected graphs are symmetric.
func TestQuickUndirectedSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultRMAT(8, seed)
		p.Undirected = true
		g := RMAT(p)
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(VertexID(v)) {
				if !contains(g.Neighbors(u), VertexID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func contains(s []VertexID, v VertexID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestDegreeHistogramBuckets(t *testing.T) {
	h := DegreeHistogram(Ring(10))
	// All vertices have degree 2 → bucket log2(2)+1 = 2.
	if h[2] != 10 {
		t.Errorf("histogram = %v, want all 10 in bucket 2", h)
	}
}

func TestSizeBytesMatchesArrays(t *testing.T) {
	g := Path(10)
	want := int64(11*8 + g.NumEdges()*4)
	if g.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", g.SizeBytes(), want)
	}
}
