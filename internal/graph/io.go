package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as whitespace-separated "src dst
// [weight]" lines, the format of SNAP / network-repository datasets
// referenced by the paper. Mirrored arcs of undirected graphs are
// written once (src < dst).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.ForEachEdge(func(src, dst VertexID, weight float32) {
		if err != nil {
			return
		}
		if g.Undirected() && src > dst {
			return
		}
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", src, dst, weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", src, dst)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge-list stream. Lines starting with '#' or
// '%' are comments. Vertex ids may be sparse; they are compacted to a
// dense [0, n) range preserving first-appearance order.
func ReadEdgeList(r io.Reader, opts ...BuilderOption) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct {
		src, dst int64
		w        float32
	}
	var raw []rawEdge
	remap := make(map[int64]VertexID)
	next := VertexID(0)
	intern := func(id int64) VertexID {
		if v, ok := remap[id]; ok {
			return v
		}
		v := next
		remap[id] = v
		next++
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			f, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			w = float32(f)
		}
		raw = append(raw, rawEdge{src, dst, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range raw {
		intern(e.src)
		intern(e.dst)
	}
	b := NewBuilder(int(next), opts...)
	for _, e := range raw {
		b.AddEdge(remap[e.src], remap[e.dst], e.w)
	}
	return b.Build(), nil
}

// binaryMagic identifies the Hourglass binary graph format.
const binaryMagic = uint32(0x48475247) // "HGRG"

// WriteBinary serialises the CSR arrays in a compact little-endian
// format: the datastore stores graphs and checkpoints in this format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flags := uint32(0)
	if g.undirected {
		flags |= 1
	}
	if g.weights != nil {
		flags |= 2
	}
	header := []any{
		binaryMagic,
		flags,
		uint64(g.NumVertices()),
		uint64(len(g.adj)),
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	if g.weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserialises a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, flags uint32
	var nv, na uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &na); err != nil {
		return nil, err
	}
	g := &Graph{
		offsets:    make([]int64, nv+1),
		adj:        make([]VertexID, na),
		undirected: flags&1 != 0,
	}
	if err := binary.Read(br, binary.LittleEndian, &g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &g.adj); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		g.weights = make([]float32, na)
		if err := binary.Read(br, binary.LittleEndian, &g.weights); err != nil {
			return nil, err
		}
	}
	return g, nil
}
