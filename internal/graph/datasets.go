package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Dataset describes one of the benchmark graphs of Table 2. The real
// datasets (SNAP / network-repository downloads) are not available
// offline, so each entry carries a deterministic synthetic generator
// reproducing the dataset's *shape* — degree distribution and
// community structure — at a configurable scale. PaperVertices and
// PaperEdges record the original sizes for Table 2 reporting.
type Dataset struct {
	Name          string
	Network       string // as in Table 2: Biological, Collaboration, ...
	PaperVertices int64
	PaperEdges    int64
	// Generate builds the synthetic stand-in. scale in (0,1] shrinks
	// the graph; scale 1 targets roughly 1/64 of the paper sizes so the
	// whole suite runs on a laptop (documented in DESIGN.md).
	Generate func(scale float64) *Graph
}

// clampN keeps a scaled vertex count sane.
func clampN(n int) int {
	if n < 64 {
		return 64
	}
	return n
}

// datasets mirrors Table 2 of the paper.
var datasets = []Dataset{
	{
		Name: "human-gene", Network: "Biological",
		PaperVertices: 22283, PaperEdges: 12323680,
		Generate: func(scale float64) *Graph {
			n := clampN(int(4000 * scale))
			return NearRegular(n, 160, 0xC0FFEE)
		},
	},
	{
		Name: "hollywood", Network: "Collaboration",
		PaperVertices: 1069126, PaperEdges: 56306653,
		Generate: func(scale float64) *Graph {
			c := clampN(int(400*scale)) / 4
			if c < 8 {
				c = 8
			}
			return Community(CommunityParams{
				Communities: c, SizeMean: 64,
				IntraDegree: 24, InterFraction: 0.08, Seed: 0xAC7021,
			})
		},
	},
	{
		Name: "orkut", Network: "Social",
		PaperVertices: 3072626, PaperEdges: 117185083,
		Generate: func(scale float64) *Graph {
			n := clampN(int(48000 * scale))
			return PreferentialAttachment(n, 18, 0x0BAD5EED)
		},
	},
	{
		Name: "wiki", Network: "Web Pages",
		PaperVertices: 5115915, PaperEdges: 104591689,
		Generate: func(scale float64) *Graph {
			p := DefaultRMAT(16, 0x1717)
			p.Scale = rmatScaleFor(int(80000 * scale))
			p.EdgeFactor = 10
			p.Undirected = true
			return RMAT(p)
		},
	},
	{
		Name: "twitter", Network: "Social",
		PaperVertices: 52579678, PaperEdges: 1614106187,
		Generate: func(scale float64) *Graph {
			p := DefaultRMAT(17, 0x7717)
			p.Scale = rmatScaleFor(int(131072 * scale))
			p.EdgeFactor = 16
			p.Undirected = true
			return RMAT(p)
		},
	},
}

// rmatScaleFor returns the RMAT scale whose 2^scale vertex count is
// closest to (but at least 2^7) the requested n.
func rmatScaleFor(n int) int {
	s := 7
	for (1 << (s + 1)) <= n {
		s++
	}
	return s
}

// Datasets returns the Table 2 registry, in paper order, plus the
// synthetic RMAT family accessed via RMATDataset.
func Datasets() []Dataset {
	out := make([]Dataset, len(datasets))
	copy(out, datasets)
	return out
}

// ByName fetches a Table 2 dataset by its lowercase name.
func ByName(name string) (Dataset, error) {
	for _, d := range datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// RMATDataset returns the synthetic RMAT-N entry of Table 2: 2^N
// vertices and 2^(N+4) edges.
func RMATDataset(n int) Dataset {
	return Dataset{
		Name: fmt.Sprintf("rmat-%d", n), Network: "Synthetic",
		PaperVertices: 1 << n, PaperEdges: 1 << (n + 4),
		Generate: func(scale float64) *Graph {
			p := DefaultRMAT(n, int64(n)*31+7)
			p.Undirected = true
			// For RMAT the scale factor subtracts whole levels.
			for scale < 0.75 && p.Scale > 8 {
				p.Scale--
				scale *= 2
			}
			return RMAT(p)
		},
	}
}

var (
	cacheMu    sync.Mutex
	graphCache = map[string]*Graph{}
)

// Load generates (and memoises) the synthetic stand-in for a dataset
// at the given scale. Experiments that sweep over datasets share the
// cached instance, which is safe because graphs are immutable.
func Load(d Dataset, scale float64) *Graph {
	key := fmt.Sprintf("%s@%g", d.Name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := d.Generate(scale)
	graphCache[key] = g
	return g
}

// Stats summarises a graph for Table 2 style reporting.
type Stats struct {
	Name      string
	Network   string
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats builds the Table 2 row for a generated dataset.
func ComputeStats(d Dataset, g *Graph) Stats {
	return Stats{
		Name:      d.Name,
		Network:   d.Network,
		Vertices:  g.NumVertices(),
		Edges:     g.NumLogicalEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
}

// SortedNames returns dataset names sorted alphabetically (for stable
// CLI output).
func SortedNames() []string {
	names := make([]string, 0, len(datasets))
	for _, d := range datasets {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}
