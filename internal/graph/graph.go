// Package graph provides the in-memory graph representation used by
// every other Hourglass component: a compact CSR (compressed sparse
// row) structure, a mutable builder, deterministic synthetic
// generators, text/binary IO, and the registry of benchmark datasets
// from Table 2 of the paper.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Graphs are always contiguously numbered
// [0, NumVertices).
type VertexID = int32

// Edge is a directed edge with an optional weight. Undirected graphs
// store both directions.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Graph is an immutable CSR adjacency structure. For vertex v the
// outgoing edges are adj[offsets[v]:offsets[v+1]] with parallel
// weights (nil when the graph is unweighted).
type Graph struct {
	offsets []int64
	adj     []VertexID
	weights []float32 // nil for unweighted graphs
	// undirected records whether the builder mirrored every edge, which
	// lets metrics (edge cut, volume) avoid double counting.
	undirected bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of stored directed arcs. For a graph
// built undirected this is twice the number of logical edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) }

// NumLogicalEdges returns the number of logical edges: arcs for a
// directed graph, arc pairs for an undirected one.
func (g *Graph) NumLogicalEdges() int64 {
	if g.undirected {
		return int64(len(g.adj)) / 2
	}
	return int64(len(g.adj))
}

// Undirected reports whether every edge was mirrored at build time.
func (g *Graph) Undirected() bool { return g.undirected }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency slice of v. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v), or nil for
// an unweighted graph.
func (g *Graph) EdgeWeights(v VertexID) []float32 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// ForEachEdge calls fn for every stored arc. Iteration is in CSR order:
// sorted by source, then by insertion order of the builder.
func (g *Graph) ForEachEdge(fn func(src, dst VertexID, w float32)) {
	n := VertexID(g.NumVertices())
	for v := VertexID(0); v < n; v++ {
		start, end := g.offsets[v], g.offsets[v+1]
		for i := start; i < end; i++ {
			w := float32(1)
			if g.weights != nil {
				w = g.weights[i]
			}
			fn(v, g.adj[i], w)
		}
	}
}

// SizeBytes estimates the in-memory footprint of the CSR arrays. The
// loader cost model charges this many bytes for moving the graph.
func (g *Graph) SizeBytes() int64 {
	b := int64(len(g.offsets))*8 + int64(len(g.adj))*4
	if g.weights != nil {
		b += int64(len(g.weights)) * 4
	}
	return b
}

// MaxDegree returns the largest out-degree in the graph (0 for an
// empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// String summarises the graph.
func (g *Graph) String() string {
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d}", kind, g.NumVertices(), g.NumLogicalEdges())
}

// Builder accumulates edges and produces an immutable Graph. The zero
// value is not usable; call NewBuilder.
type Builder struct {
	n          int
	edges      []Edge
	undirected bool
	weighted   bool
	dedup      bool
	dropLoops  bool
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// Undirected mirrors every added edge so the CSR stores both arcs.
func Undirected() BuilderOption { return func(b *Builder) { b.undirected = true } }

// Weighted keeps per-edge weights; without it weights are dropped.
func Weighted() BuilderOption { return func(b *Builder) { b.weighted = true } }

// Dedup removes parallel edges (keeping the first occurrence's weight).
func Dedup() BuilderOption { return func(b *Builder) { b.dedup = true } }

// DropSelfLoops removes self loops at build time.
func DropSelfLoops() BuilderOption { return func(b *Builder) { b.dropLoops = true } }

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int, opts ...BuilderOption) *Builder {
	b := &Builder{n: n}
	for _, o := range opts {
		o(b)
	}
	return b
}

// AddEdge records an arc src→dst (plus dst→src when undirected).
func (b *Builder) AddEdge(src, dst VertexID, w float32) {
	if src < 0 || int(src) >= b.n || dst < 0 || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst, w})
}

// NumPendingEdges reports how many arcs have been added so far (before
// mirroring, dedup, or loop removal).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build freezes the builder into a CSR graph. The builder can be
// reused afterwards but the accumulated edges are retained.
func (b *Builder) Build() *Graph {
	edges := b.edges
	if b.dropLoops {
		kept := edges[:0:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	if b.undirected {
		mirrored := make([]Edge, 0, 2*len(edges))
		for _, e := range edges {
			mirrored = append(mirrored, e, Edge{e.Dst, e.Src, e.Weight})
		}
		edges = mirrored
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	if b.dedup {
		kept := edges[:0:0]
		for i, e := range edges {
			if i > 0 && e.Src == edges[i-1].Src && e.Dst == edges[i-1].Dst {
				continue
			}
			kept = append(kept, e)
		}
		edges = kept
	}

	g := &Graph{
		offsets:    make([]int64, b.n+1),
		adj:        make([]VertexID, len(edges)),
		undirected: b.undirected,
	}
	if b.weighted {
		g.weights = make([]float32, len(edges))
	}
	for _, e := range edges {
		g.offsets[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	cursor := make([]int64, b.n)
	for _, e := range edges {
		pos := g.offsets[e.Src] + cursor[e.Src]
		g.adj[pos] = e.Dst
		if g.weights != nil {
			g.weights[pos] = e.Weight
		}
		cursor[e.Src]++
	}
	return g
}

// FromEdges is a convenience constructor building a graph directly
// from an edge slice.
func FromEdges(n int, edges []Edge, opts ...BuilderOption) *Graph {
	b := NewBuilder(n, opts...)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst, e.Weight)
	}
	return b.Build()
}

// Transpose returns the graph with every arc reversed. For an
// undirected graph the transpose is (semantically) the graph itself,
// but a fresh copy is still produced.
func (g *Graph) Transpose() *Graph {
	b := NewBuilder(g.NumVertices())
	if g.weights != nil {
		b.weighted = true
	}
	b.undirected = false
	g.ForEachEdge(func(src, dst VertexID, w float32) {
		b.AddEdge(dst, src, w)
	})
	out := b.Build()
	out.undirected = g.undirected
	return out
}

// InducedQuotient contracts the graph according to the given vertex
// assignment into k super-vertices. The result is a weighted directed
// multigraph collapsed to simple form: an arc between two distinct
// blocks carries weight = sum of crossing arc weights, and vertex
// weights (returned separately) count the member vertices of each
// block. Self-arcs (intra-block edges) are dropped. This is the
// "reduced graph" of the paper's Figure 4.
func (g *Graph) InducedQuotient(assign []int32, k int) (*Graph, []int64) {
	if len(assign) != g.NumVertices() {
		panic("graph: assignment length mismatch")
	}
	vertexWeights := make([]int64, k)
	for _, blk := range assign {
		vertexWeights[blk]++
	}
	type arc struct{ a, b int32 }
	cross := make(map[arc]float64)
	g.ForEachEdge(func(src, dst VertexID, w float32) {
		bs, bd := assign[src], assign[dst]
		if bs == bd {
			return
		}
		cross[arc{bs, bd}] += float64(w)
	})
	b := NewBuilder(k, Weighted())
	for a, w := range cross {
		b.AddEdge(a.a, a.b, float32(w))
	}
	q := b.Build()
	q.undirected = g.undirected
	return q, vertexWeights
}
