package units

import (
	"math"
	"testing"
	"time"
)

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0.5, "0.50s"},
		{59, "59.00s"},
		{60, "1m00s"},
		{61, "1m01s"},
		{3600, "1h00m"},
		{3661, "1h01m"},
		{Seconds(2.5 * float64(Hour)), "2h30m"},
		{-90, "-1m30s"},
		{Seconds(math.Inf(1)), "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if Seconds(1.5).Duration() != 1500*time.Millisecond {
		t.Errorf("Duration = %v", Seconds(1.5).Duration())
	}
	if FromDuration(2*time.Minute) != 120 {
		t.Errorf("FromDuration = %v", FromDuration(2*time.Minute))
	}
}

func TestUSDString(t *testing.T) {
	if got := USD(1.23456).String(); got != "$1.2346" {
		t.Errorf("USD string = %q", got)
	}
}

func TestPerHourPerSecond(t *testing.T) {
	if got := PerHour(3600).PerSecond(); got != 1 {
		t.Errorf("PerSecond = %v, want 1", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(1, 2) != 1 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp broken")
	}
}

func TestConstants(t *testing.T) {
	if Minute != 60 || Hour != 3600 || Day != 86400 {
		t.Error("time constants drifted")
	}
}
