// Package units defines the scalar quantities used throughout Hourglass:
// virtual time in seconds and money in US dollars. Both are plain
// float64s so that the provisioning math (integrals, expectations) stays
// free of conversion noise, but the named types keep signatures honest.
package units

import (
	"fmt"
	"math"
	"time"
)

// Seconds is a span of virtual time. The simulator, the performance
// model and the provisioning strategy all operate on virtual seconds; a
// "4 hour" job costs microseconds of wall time to simulate.
type Seconds float64

// USD is an amount of money in US dollars.
type USD float64

// Common durations.
const (
	Second Seconds = 1
	Minute Seconds = 60
	Hour   Seconds = 3600
	Day    Seconds = 24 * Hour
)

// Duration converts virtual seconds into a time.Duration for display.
func (s Seconds) Duration() time.Duration {
	return time.Duration(float64(s) * float64(time.Second))
}

// FromDuration converts a time.Duration into virtual seconds.
func FromDuration(d time.Duration) Seconds {
	return Seconds(d.Seconds())
}

// String renders the span compactly, e.g. "2h30m", "3m20s" or "1.25s".
func (s Seconds) String() string {
	v := float64(s)
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v < 0:
		return "-" + (-s).String()
	case v >= float64(Hour):
		h := int(v / float64(Hour))
		m := int(v/float64(Minute)) % 60
		return fmt.Sprintf("%dh%02dm", h, m)
	case v >= float64(Minute):
		m := int(v / float64(Minute))
		sec := int(v) % 60
		return fmt.Sprintf("%dm%02ds", m, sec)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

// String renders dollars with four decimal places (spot prices are
// fractions of a cent per second).
func (u USD) String() string { return fmt.Sprintf("$%.4f", float64(u)) }

// PerHour is a price rate in dollars per hour, the unit cloud
// catalogues quote. PerSecond converts it to the simulator's granularity.
type PerHour float64

// PerSecond returns the equivalent rate in dollars per second.
func (p PerHour) PerSecond() USD { return USD(float64(p) / float64(Hour)) }

// Min returns the smaller of two spans.
func Min(a, b Seconds) Seconds {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two spans.
func Max(a, b Seconds) Seconds {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi Seconds) Seconds {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
