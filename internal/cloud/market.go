package cloud

import (
	"fmt"

	"hourglass/internal/units"
)

// Market answers the price/eviction questions the provisioner and the
// simulator ask, for a fixed trace set. Bids equal the on-demand price
// (§7: "we simply bid the on-demand price"; post-2017 AWS makes the
// bid irrelevant to eviction timing anyway).
type Market struct {
	traces TraceSet
	// BidFactor scales the bid relative to the on-demand price
	// (0 = 1.0, the paper's policy). Post-2017 AWS makes the bid
	// irrelevant to eviction timing; the knob exists for sensitivity
	// ablations against the older bid-based eviction model.
	BidFactor float64
}

// NewMarket wraps a trace set.
func NewMarket(traces TraceSet) *Market { return &Market{traces: traces} }

// bid returns the effective bid for an instance type.
func (m *Market) bid(it InstanceType) float64 {
	f := m.BidFactor
	if f == 0 {
		f = 1.0
	}
	return f * float64(it.OnDemand)
}

// TraceFor exposes the underlying price trace of an instance type
// (simulators use it to bound random start offsets).
func (m *Market) TraceFor(name string) (*PriceTrace, error) {
	return m.traces.Trace(name)
}

// SpotPrice returns the current $/hour spot price of an instance type.
func (m *Market) SpotPrice(it InstanceType, at units.Seconds) (float64, error) {
	t, err := m.traces.Trace(it.Name)
	if err != nil {
		return 0, err
	}
	return t.PriceAt(at), nil
}

// Rate returns the configuration's current price per second: the spot
// market price for transient configs, the list price otherwise.
func (m *Market) Rate(c Config, at units.Seconds) (units.USD, error) {
	if !c.Transient {
		return c.OnDemandRate(), nil
	}
	p, err := m.SpotPrice(c.Instance, at)
	if err != nil {
		return 0, err
	}
	return units.USD(p / float64(units.Hour) * float64(c.Count)), nil
}

// Cost integrates what running c over [t0, t1) costs.
func (m *Market) Cost(c Config, t0, t1 units.Seconds) (units.USD, error) {
	if t1 <= t0 {
		return 0, nil
	}
	if !c.Transient {
		return units.USD(float64(c.OnDemandRate()) * float64(t1-t0)), nil
	}
	t, err := m.traces.Trace(c.Instance.Name)
	if err != nil {
		return 0, err
	}
	return units.USD(float64(t.CostBetween(t0, t1)) * float64(c.Count)), nil
}

// NextEviction returns when a transient configuration started (or
// observed) at `from` is evicted: the first spot-price crossing above
// the on-demand bid. For on-demand configurations it returns ok=false
// (never evicted). Homogeneous deployments share one market, so a
// crossing evicts the whole configuration at once.
func (m *Market) NextEviction(c Config, from units.Seconds) (units.Seconds, bool, error) {
	if !c.Transient {
		return 0, false, nil
	}
	t, err := m.traces.Trace(c.Instance.Name)
	if err != nil {
		return 0, false, err
	}
	at, ok := t.NextCrossing(from, m.bid(c.Instance))
	return at, ok, nil
}

// Available reports whether the spot price is at or below the bid at
// time `at` (a request made during a spike is not fulfilled).
func (m *Market) Available(c Config, at units.Seconds) (bool, error) {
	if !c.Transient {
		return true, nil
	}
	p, err := m.SpotPrice(c.Instance, at)
	if err != nil {
		return false, err
	}
	return p <= m.bid(c.Instance), nil
}

// NextAvailable returns the earliest time ≥ from at which the spot
// request for c can be fulfilled.
func (m *Market) NextAvailable(c Config, from units.Seconds) (units.Seconds, error) {
	if !c.Transient {
		return from, nil
	}
	t, err := m.traces.Trace(c.Instance.Name)
	if err != nil {
		return 0, err
	}
	bid := m.bid(c.Instance)
	step := t.Step
	for off := units.Seconds(0); off < t.Duration(); off += step {
		if t.PriceAt(from+off) <= bid {
			return from + off, nil
		}
	}
	return 0, fmt.Errorf("cloud: %s never available in trace", c.ID())
}
