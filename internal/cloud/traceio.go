package cloud

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"hourglass/internal/units"
)

// WriteTraceCSV serialises a price trace as "seconds,price" rows with a
// one-line header. The format round-trips through ReadTraceCSV and is
// easy to produce from real AWS spot-price history dumps
// (describe-spot-price-history), letting users replace the synthetic
// months with real ones.
func WriteTraceCSV(w io.Writer, t *PriceTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# instance=%s step=%g\n", t.Instance, float64(t.Step)); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	for i, p := range t.Prices {
		rec := []string{
			strconv.FormatFloat(float64(i)*float64(t.Step), 'f', -1, 64),
			strconv.FormatFloat(p, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTraceCSV parses "seconds,price" rows into a fixed-step trace.
// Rows need not be evenly spaced: the price series is resampled onto
// the given step by last-observation-carried-forward, which is exactly
// how spot prices behave (a price persists until the next change).
// Rows must be sorted by time; a header line starting with '#' is
// skipped.
func ReadTraceCSV(r io.Reader, instance string, step units.Seconds) (*PriceTrace, error) {
	if step <= 0 {
		return nil, fmt.Errorf("cloud: non-positive step %v", step)
	}
	br := bufio.NewReader(r)
	// Skip the optional comment header.
	if b, err := br.Peek(1); err == nil && len(b) == 1 && b[0] == '#' {
		if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
			return nil, err
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = 2
	type point struct {
		at    float64
		price float64
	}
	var pts []point
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cloud: trace csv: %w", err)
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("cloud: trace csv time %q: %w", rec[0], err)
		}
		price, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("cloud: trace csv price %q: %w", rec[1], err)
		}
		if price < 0 {
			return nil, fmt.Errorf("cloud: negative price %g at %gs", price, at)
		}
		pts = append(pts, point{at, price})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("cloud: empty trace")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].at < pts[j].at }) {
		return nil, fmt.Errorf("cloud: trace rows not sorted by time")
	}
	horizon := pts[len(pts)-1].at + float64(step)
	n := int(math.Ceil(horizon / float64(step)))
	if n < 1 {
		n = 1
	}
	prices := make([]float64, n)
	cur := pts[0].price
	pi := 0
	for i := 0; i < n; i++ {
		at := float64(i) * float64(step)
		for pi < len(pts) && pts[pi].at <= at {
			cur = pts[pi].price
			pi++
		}
		prices[i] = cur
	}
	return &PriceTrace{Instance: instance, Step: step, Prices: prices}, nil
}
