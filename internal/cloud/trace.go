package cloud

import (
	"fmt"
	"math"
	"math/rand"

	"hourglass/internal/units"
)

// PriceTrace is a sampled spot-price series for one instance type.
type PriceTrace struct {
	Instance string
	// Step is the sampling interval.
	Step units.Seconds
	// Prices are $/hour samples; sample i covers [i·Step, (i+1)·Step).
	Prices []float64
}

// Duration is the total span covered by the trace.
func (t *PriceTrace) Duration() units.Seconds {
	return units.Seconds(len(t.Prices)) * t.Step
}

// PriceAt returns the $/hour spot price at virtual time ts. Times are
// clamped into the trace (queries wrap around, so simulations with
// random start offsets never run off the end).
func (t *PriceTrace) PriceAt(ts units.Seconds) float64 {
	if len(t.Prices) == 0 {
		return 0
	}
	i := int(ts/t.Step) % len(t.Prices)
	if i < 0 {
		i += len(t.Prices)
	}
	return t.Prices[i]
}

// CostBetween integrates the spot price over [t0, t1) for one
// instance, in dollars (AWS bills the market price, not the bid).
func (t *PriceTrace) CostBetween(t0, t1 units.Seconds) units.USD {
	if t1 <= t0 {
		return 0
	}
	var usd float64
	step := float64(t.Step)
	for cur := float64(t0); cur < float64(t1); {
		idxTime := math.Floor(cur/step) * step
		sliceEnd := math.Min(idxTime+step, float64(t1))
		price := t.PriceAt(units.Seconds(cur))
		usd += price / float64(units.Hour) * (sliceEnd - cur)
		cur = sliceEnd
	}
	return units.USD(usd)
}

// NextCrossing returns the first time ≥ from at which the spot price
// strictly exceeds bid ($/hour) — the eviction moment under the
// bid-equals-on-demand policy. ok=false if no crossing occurs within
// the trace horizon starting at from.
func (t *PriceTrace) NextCrossing(from units.Seconds, bid float64) (units.Seconds, bool) {
	if len(t.Prices) == 0 {
		return 0, false
	}
	start := int(from / t.Step)
	for off := 0; off < len(t.Prices); off++ {
		i := (start + off) % len(t.Prices)
		if i < 0 {
			i += len(t.Prices)
		}
		if t.Prices[i] > bid {
			ts := units.Seconds(start+off) * t.Step
			if ts < from {
				ts = from
			}
			return ts, true
		}
	}
	return 0, false
}

// GenParams tune the synthetic trace generator.
type GenParams struct {
	// Days of trace to generate.
	Days float64
	// Step is the sampling interval (0 = 60 s, the finest granularity
	// at which the paper's traces change).
	Step units.Seconds
	// BaseDiscount is the typical spot price as a fraction of
	// on-demand (0 = a per-instance-type default between 0.20 and
	// 0.32: larger instances trade at deeper discounts, matching the
	// ~75–86% savings the paper quotes and giving greedy provisioners
	// a price gradient across machine types).
	BaseDiscount float64
	// Volatility is the OU noise of the log-price (0 = 0.08).
	Volatility float64
	// Reversion is the OU mean-reversion rate per step (0 = 0.05).
	Reversion float64
	// SpikesPerDay is the expected number of demand spikes (0 = 5,
	// yielding MTTFs of a few hours as in the paper's 2016 traces).
	// During a spike the price multiplies by 3–8×, typically crossing
	// the on-demand bid and evicting.
	SpikesPerDay float64
	// SpikeMeanMinutes is the mean spike duration (0 = 30).
	SpikeMeanMinutes float64
	Seed             int64
}

// defaultDiscounts are the per-type spot price levels used when
// GenParams.BaseDiscount is zero.
var defaultDiscounts = map[string]float64{
	R4Large2.Name: 0.32,
	R4Large4.Name: 0.26,
	R4Large8.Name: 0.20,
}

func (p GenParams) withDefaults(instance string) GenParams {
	if p.Days == 0 {
		p.Days = 30
	}
	if p.Step == 0 {
		p.Step = 60
	}
	if p.BaseDiscount == 0 {
		if d, ok := defaultDiscounts[instance]; ok {
			p.BaseDiscount = d
		} else {
			p.BaseDiscount = 0.25
		}
	}
	if p.Volatility == 0 {
		p.Volatility = 0.08
	}
	if p.Reversion == 0 {
		p.Reversion = 0.05
	}
	if p.SpikesPerDay == 0 {
		p.SpikesPerDay = 5
	}
	if p.SpikeMeanMinutes == 0 {
		p.SpikeMeanMinutes = 30
	}
	return p
}

// Generate produces a synthetic spot trace for the instance type:
// mean-reverting log price around BaseDiscount×on-demand, with
// Poisson demand spikes that push the price above on-demand. The
// result is deterministic for a fixed seed.
func Generate(it InstanceType, p GenParams) *PriceTrace {
	p = p.withDefaults(it.Name)
	rng := rand.New(rand.NewSource(p.Seed ^ int64(len(it.Name))<<32 ^ hashName(it.Name)))
	steps := int(p.Days * float64(units.Day) / float64(p.Step))
	base := float64(it.OnDemand) * p.BaseDiscount
	prices := make([]float64, steps)
	x := 0.0 // OU state (log deviation from base)
	spikeLeft := 0
	spikeFactor := 1.0
	spikeProb := p.SpikesPerDay * float64(p.Step) / float64(units.Day)
	for i := 0; i < steps; i++ {
		x += -p.Reversion*x + p.Volatility*rng.NormFloat64()
		price := base * math.Exp(x)
		if spikeLeft == 0 && rng.Float64() < spikeProb {
			spikeLeft = 1 + int(rng.ExpFloat64()*p.SpikeMeanMinutes*float64(units.Minute)/float64(p.Step))
			spikeFactor = 3 + 5*rng.Float64()
		}
		if spikeLeft > 0 {
			price *= spikeFactor
			spikeLeft--
		}
		// Spot prices never exceed 10× on-demand (AWS caps at the
		// historical bid ceiling); floor at 10% of base.
		price = math.Min(price, 10*float64(it.OnDemand))
		price = math.Max(price, 0.1*base)
		prices[i] = price
	}
	return &PriceTrace{Instance: it.Name, Step: p.Step, Prices: prices}
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// TraceSet holds one trace per instance type.
type TraceSet map[string]*PriceTrace

// GenerateSet builds traces for every catalogue instance with
// per-instance decorrelated seeds.
func GenerateSet(instances []InstanceType, p GenParams) TraceSet {
	set := make(TraceSet, len(instances))
	for _, it := range instances {
		set[it.Name] = Generate(it, p)
	}
	return set
}

// Trace fetches the trace for an instance type.
func (s TraceSet) Trace(name string) (*PriceTrace, error) {
	t, ok := s[name]
	if !ok {
		return nil, fmt.Errorf("cloud: no trace for instance %q", name)
	}
	return t, nil
}
