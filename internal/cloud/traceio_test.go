package cloud

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := Generate(R4Large4, GenParams{Days: 1, Seed: 3})
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf, orig.Instance, orig.Step)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Prices) != len(orig.Prices) {
		t.Fatalf("length %d after round trip, want %d", len(back.Prices), len(orig.Prices))
	}
	for i := range orig.Prices {
		if back.Prices[i] != orig.Prices[i] {
			t.Fatalf("price[%d] = %v, want %v", i, back.Prices[i], orig.Prices[i])
		}
	}
}

func TestReadTraceCSVResamplesLOCF(t *testing.T) {
	// Price changes at 0s and 150s; resampled at 60s steps the price
	// carries forward: [1, 1, 1(at 120s), 2, ...].
	in := "0,1\n150,2\n"
	tr, err := ReadTraceCSV(strings.NewReader(in), "x", 60)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PriceAt(0) != 1 || tr.PriceAt(120) != 1 {
		t.Errorf("LOCF before change broken: %v %v", tr.PriceAt(0), tr.PriceAt(120))
	}
	if tr.PriceAt(180) != 2 {
		t.Errorf("price after change = %v, want 2", tr.PriceAt(180))
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"badtime", "x,1\n"},
		{"badprice", "0,x\n"},
		{"negative", "0,-1\n"},
		{"unsorted", "100,1\n0,2\n"},
		{"fields", "0,1,2\n"},
	}
	for _, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c.in), "x", 60); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ReadTraceCSV(strings.NewReader("0,1\n"), "x", 0); err == nil {
		t.Error("step 0 accepted")
	}
}

func TestReadTraceCSVSkipsHeader(t *testing.T) {
	in := "# instance=r4.2xlarge step=60\n0,0.5\n"
	tr, err := ReadTraceCSV(strings.NewReader(in), "r4.2xlarge", 60)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PriceAt(0) != 0.5 {
		t.Errorf("price = %v", tr.PriceAt(0))
	}
}
