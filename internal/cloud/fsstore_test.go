package cloud

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFSStoreRoundTrip(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("dist/job/ckpt/00000002/shard-000", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("dist/job/latest", []byte("ptr")); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get("dist/job/ckpt/00000002/shard-000")
	if err != nil || string(data) != "blob" {
		t.Fatalf("get: %q, %v", data, err)
	}
	if !s.Exists("dist/job/latest") || s.Exists("dist/job/nope") {
		t.Fatal("Exists mismatch")
	}
	want := []string{"dist/job/ckpt/00000002/shard-000", "dist/job/latest"}
	got := s.Keys()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	if err := s.Delete("dist/job/latest"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("dist/job/latest"); err != nil {
		t.Fatalf("second delete not idempotent: %v", err)
	}
	if _, _, err := s.Get("dist/job/latest"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
}

func TestFSStoreOverwriteIsAtomicRename(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Put("k", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := s.Get("k")
	if err != nil || string(data) != "c" {
		t.Fatalf("get: %q, %v", data, err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "k" {
		t.Fatalf("leftover entries: %v", entries)
	}
}

func TestFSStoreRejectsEscapingKeys(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../outside", "a/../../b", "/abs"} {
		if _, err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if s.Exists(key) {
			t.Errorf("Exists(%q) true", key)
		}
	}
}

func TestFSStoreKeysSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: an orphaned temp file.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-orphan"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := s.Keys()
	if len(got) != 1 || got[0] != "real" {
		t.Fatalf("Keys() = %v, want [real]", got)
	}
}

func TestFSStoreSharedAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("x/y", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	data, _, err := b.Get("x/y")
	if err != nil || string(data) != "shared" {
		t.Fatalf("cross-instance get: %q, %v", data, err)
	}
}
