package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hourglass/internal/units"
)

// ErrNotFound marks a Get against a key the store does not hold. It is
// a *permanent* failure: retry loops must give up on it immediately
// instead of backing off (errors.Is distinguishes it from the transient
// errors a fault-injecting store synthesises).
var ErrNotFound = errors.New("cloud: object not found")

// BlobStore is the minimal durable-store surface the recovery stack
// (engine checkpoints, controller snapshots) depends on. *Datastore is
// the well-behaved implementation; faultinject.Store wraps any
// BlobStore with a seeded schedule of transient errors, latency and
// corruption so the same recovery code can be driven against a
// misbehaving S3.
//
// Put and Get may fail transiently; callers on the durability path
// retry with backoff (cloud.Retrier). Exists and Keys are metadata
// operations and are expected to stay reliable.
type BlobStore interface {
	// Put stores a blob, returning the virtual upload time.
	Put(key string, data []byte) (units.Seconds, error)
	// Get fetches a copy of a blob and the virtual download time.
	// Missing keys fail with an error wrapping ErrNotFound.
	Get(key string) ([]byte, units.Seconds, error)
	// Delete removes a blob (idempotent). Failures must be reported,
	// not swallowed: a checkpoint namespace whose garbage collection
	// silently fails can resurrect stale state in a later recurrent
	// execution (CheckpointManager.Clear logs them).
	Delete(key string) error
	// Exists reports whether the key is stored.
	Exists(key string) bool
	// Keys returns the stored object keys in sorted order.
	Keys() []string
}

var _ BlobStore = (*Datastore)(nil)

// Datastore is the S3 stand-in: a durable blob store surviving full
// cluster failures (the paper modifies Giraph to checkpoint to S3
// rather than HDFS exactly for this reason, §7). Reads and writes
// report the virtual transfer time under simple bandwidth caps.
type Datastore struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// PerConnBandwidth caps one transfer; Aggregate caps the sum of a
	// parallel batch (bytes/second).
	PerConnBandwidth float64
	Aggregate        float64
}

// NewDatastore builds a store with S3-like default bandwidths
// (250 MB/s per connection, 4 GB/s aggregate).
func NewDatastore() *Datastore {
	return &Datastore{
		objects:          map[string][]byte{},
		PerConnBandwidth: 250e6,
		Aggregate:        4e9,
	}
}

// Put stores a blob and returns the virtual upload time. The error is
// always nil for the in-memory store; it exists so BlobStore
// implementations with failure modes share the signature.
func (d *Datastore) Put(key string, data []byte) (units.Seconds, error) {
	d.mu.Lock()
	d.objects[key] = append([]byte(nil), data...)
	d.mu.Unlock()
	return units.Seconds(float64(len(data)) / d.PerConnBandwidth), nil
}

// Get fetches a blob and the virtual download time. The returned slice
// is a defensive copy: callers may mutate it freely without corrupting
// the durable object (a checkpoint reload must never observe a
// caller's scribbles).
func (d *Datastore) Get(key string) ([]byte, units.Seconds, error) {
	d.mu.RLock()
	data, ok := d.objects[key]
	if ok {
		data = append([]byte(nil), data...)
	}
	d.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("cloud: datastore has no object %q: %w", key, ErrNotFound)
	}
	return data, units.Seconds(float64(len(data)) / d.PerConnBandwidth), nil
}

// GetReader is Get exposed as an io.Reader for codec pipelines.
func (d *Datastore) GetReader(key string) (*bytes.Reader, units.Seconds, error) {
	data, t, err := d.Get(key)
	if err != nil {
		return nil, 0, err
	}
	return bytes.NewReader(data), t, nil
}

// Delete removes a blob (idempotent; the in-memory store never fails).
func (d *Datastore) Delete(key string) error {
	d.mu.Lock()
	delete(d.objects, key)
	d.mu.Unlock()
	return nil
}

// Exists reports whether the key is stored.
func (d *Datastore) Exists(key string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.objects[key]
	return ok
}

// ParallelTransferTime returns the virtual time for n nodes to move
// bytesPerNode each concurrently, under the per-connection and
// aggregate caps — the timing model for parallel checkpoint uploads
// and micro-partition downloads.
func (d *Datastore) ParallelTransferTime(n int, bytesPerNode int64) units.Seconds {
	if n <= 0 || bytesPerNode <= 0 {
		return 0
	}
	perNode := d.PerConnBandwidth
	if share := d.Aggregate / float64(n); share < perNode {
		perNode = share
	}
	return units.Seconds(float64(bytesPerNode) / perNode)
}

// Keys returns the stored object keys in sorted order (for snapshot
// inventories and tests).
func (d *Datastore) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	keys := make([]string, 0, len(d.objects))
	for k := range d.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TotalBytes reports the stored volume (for tests and reporting).
func (d *Datastore) TotalBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, b := range d.objects {
		total += int64(len(b))
	}
	return total
}
