package cloud

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hourglass/internal/obs"
	"hourglass/internal/units"
)

// RetryPolicy shapes the exponential backoff used on the durability
// path (checkpoint uploads/downloads, controller snapshots). Delays
// are *virtual* seconds — the simulated transfer clock — so a Retrier
// never sleeps wall time.
type RetryPolicy struct {
	// Attempts is the total number of tries, first included (0 = 5).
	Attempts int
	// Base is the backoff before the second try (0 = 0.5 s virtual).
	Base units.Seconds
	// Factor multiplies the backoff after each failure (0 = 2).
	Factor float64
	// Jitter is the fraction of each backoff drawn uniformly at random
	// — full backoff b becomes b·(1−Jitter) + b·Jitter·U[0,1) — so
	// retrying replicas decorrelate instead of stampeding (0 = 0.5).
	Jitter float64
	// Seed makes the jitter sequence deterministic for a fixed policy
	// instance, keeping simulations reproducible.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.Base <= 0 {
		p.Base = 0.5
	}
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Retrier applies a RetryPolicy. It is safe for concurrent use; the
// jitter stream is shared (mutex-guarded), so per-call sequences stay
// deterministic for single-goroutine callers.
type Retrier struct {
	policy RetryPolicy

	// Sink, when set, receives one obs.EvRetry event per Do call that
	// needed more than one attempt (carrying the attempt count and the
	// last error). Set it before the Retrier is shared.
	Sink obs.Sink

	attempts atomic.Int64 // op invocations across all Do calls
	retried  atomic.Int64 // invocations beyond each Do's first

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a Retrier (zero policy fields take defaults).
func NewRetrier(p RetryPolicy) *Retrier {
	p = p.withDefaults()
	return &Retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Do runs op until it succeeds, fails permanently (ErrNotFound), or
// the attempt budget is spent. It returns the virtual backoff delay
// accumulated across retries and the last error (nil on success).
func (r *Retrier) Do(op func() error) (units.Seconds, error) {
	var delay units.Seconds
	backoff := r.policy.Base
	var err error
	tries := 0
	for attempt := 0; attempt < r.policy.Attempts; attempt++ {
		tries++
		r.attempts.Add(1)
		if attempt > 0 {
			r.retried.Add(1)
		}
		if err = op(); err == nil {
			r.report(tries, delay, nil)
			return delay, nil
		}
		if errors.Is(err, ErrNotFound) {
			r.report(tries, delay, err)
			return delay, err
		}
		if attempt == r.policy.Attempts-1 {
			break
		}
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		delay += units.Seconds(float64(backoff) * (1 - r.policy.Jitter + r.policy.Jitter*u))
		backoff = units.Seconds(float64(backoff) * r.policy.Factor)
	}
	r.report(tries, delay, err)
	return delay, err
}

// DoCtx is the wall-clock sibling of Do for operations talking to real
// endpoints (peer dials, live HTTP): the same policy, attempt budget,
// jitter stream and trace reporting, but each backoff actually sleeps,
// interruptible by ctx. Policy seconds are interpreted as wall seconds.
// It returns the backoff slept across retries and the last error; a
// cancelled wait returns ctx.Err() without burning further attempts.
func (r *Retrier) DoCtx(ctx context.Context, op func() error) (units.Seconds, error) {
	var delay units.Seconds
	backoff := r.policy.Base
	var err error
	tries := 0
	for attempt := 0; attempt < r.policy.Attempts; attempt++ {
		tries++
		r.attempts.Add(1)
		if attempt > 0 {
			r.retried.Add(1)
		}
		if err = op(); err == nil {
			r.report(tries, delay, nil)
			return delay, nil
		}
		if errors.Is(err, ErrNotFound) || ctx.Err() != nil {
			r.report(tries, delay, err)
			return delay, err
		}
		if attempt == r.policy.Attempts-1 {
			break
		}
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		wait := units.Seconds(float64(backoff) * (1 - r.policy.Jitter + r.policy.Jitter*u))
		backoff = units.Seconds(float64(backoff) * r.policy.Factor)
		t := time.NewTimer(time.Duration(float64(wait) * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			r.report(tries, delay, err)
			return delay, ctx.Err()
		case <-t.C:
		}
		delay += wait
	}
	r.report(tries, delay, err)
	return delay, err
}

// report emits a retry trace event when a Do call needed more than one
// attempt. Single-attempt successes stay silent: they are the steady
// state and would drown the ring.
func (r *Retrier) report(tries int, delay units.Seconds, err error) {
	if r.Sink == nil || tries <= 1 {
		return
	}
	e := obs.Event{Type: obs.EvRetry, Attempts: tries, DurSec: float64(delay)}
	if err != nil {
		e.Err = err.Error()
	}
	r.Sink.Emit(e)
}

// Stats reports the op invocations made across all Do calls and how
// many of those were retries (beyond each call's first attempt).
func (r *Retrier) Stats() (attempts, retried int64) {
	return r.attempts.Load(), r.retried.Load()
}
