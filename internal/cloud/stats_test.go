package cloud

import (
	"math"
	"testing"

	"hourglass/internal/units"
)

func TestComputeMarketStats(t *testing.T) {
	// Hand-built trace: bid 1.0; prices [0.2, 0.2, 1.5, 0.2] over 4
	// minutes: one crossing episode, 25% unavailable.
	it := InstanceType{Name: "test", OnDemand: 1.0}
	tr := &PriceTrace{Instance: "test", Step: 60, Prices: []float64{0.2, 0.2, 1.5, 0.2}}
	s := ComputeMarketStats(it, tr)
	if s.MeanSpot != (0.2+0.2+1.5+0.2)/4 {
		t.Errorf("mean = %v", s.MeanSpot)
	}
	if s.MedianSpot != 0.2 {
		t.Errorf("median = %v", s.MedianSpot)
	}
	if s.AboveBidFrac != 0.25 {
		t.Errorf("unavail = %v", s.AboveBidFrac)
	}
	days := float64(tr.Duration()) / float64(units.Day)
	if math.Abs(s.CrossingsPday-1/days) > 1e-9 {
		t.Errorf("crossings/day = %v, want %v", s.CrossingsPday, 1/days)
	}
	if s.MTTF <= 0 || math.IsInf(float64(s.MTTF), 1) {
		t.Errorf("MTTF = %v", s.MTTF)
	}
}

func TestComputeMarketStatsNoEvictions(t *testing.T) {
	it := InstanceType{Name: "calm", OnDemand: 1.0}
	tr := &PriceTrace{Instance: "calm", Step: 60, Prices: []float64{0.2, 0.3}}
	s := ComputeMarketStats(it, tr)
	if !math.IsInf(float64(s.MTTF), 1) {
		t.Errorf("calm market MTTF = %v, want +Inf", s.MTTF)
	}
	if s.CrossingsPday != 0 || s.AboveBidFrac != 0 {
		t.Errorf("calm market stats: %+v", s)
	}
}

func TestComputeMarketStatsEmpty(t *testing.T) {
	s := ComputeMarketStats(R4Large2, &PriceTrace{Instance: "x", Step: 60})
	if s.MeanSpot != 0 {
		t.Errorf("empty trace stats: %+v", s)
	}
}

func TestSyntheticMarketsAreDiscountedAndEvicting(t *testing.T) {
	for _, it := range Catalogue() {
		tr := Generate(it, GenParams{Days: 10, Seed: 42})
		s := ComputeMarketStats(it, tr)
		if s.MeanDiscount < 0.2 {
			t.Errorf("%s: discount %.2f too shallow", it.Name, s.MeanDiscount)
		}
		if s.CrossingsPday < 1 || s.CrossingsPday > 20 {
			t.Errorf("%s: %v evictions/day outside the paper-era regime", it.Name, s.CrossingsPday)
		}
		if s.MTTF < units.Hour || s.MTTF > units.Day {
			t.Errorf("%s: MTTF %v outside a few-hours regime", it.Name, s.MTTF)
		}
	}
}
