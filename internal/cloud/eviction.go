package cloud

import (
	"fmt"
	"sort"

	"hourglass/internal/units"
)

// EvictionModel is the empirical uptime→eviction-probability model of
// §5.1: for each instance type, a CDF of the probability of being
// revoked before reaching a given uptime, estimated from a *historical*
// trace (the paper derives statistics from October 2016 and simulates
// on November 2016; we mirror that with two differently-seeded
// synthetic months).
type EvictionModel struct {
	// samples[name] holds sorted observed uptimes-until-eviction.
	samples map[string][]units.Seconds
	mttf    map[string]units.Seconds
	// avgSpot[name] is the historical average spot price ($/h).
	avgSpot map[string]float64
}

// BuildEvictionModel samples the historical trace set at evenly spaced
// start offsets, measures time-to-first-crossing for each instance
// type, and assembles per-type CDFs and MTTFs. samplesPerType controls
// resolution (0 = 512).
func BuildEvictionModel(traces TraceSet, samplesPerType int) (*EvictionModel, error) {
	if samplesPerType <= 0 {
		samplesPerType = 512
	}
	m := &EvictionModel{
		samples: map[string][]units.Seconds{},
		mttf:    map[string]units.Seconds{},
		avgSpot: map[string]float64{},
	}
	for name, tr := range traces {
		it, err := InstanceByName(name)
		if err != nil {
			return nil, err
		}
		bid := float64(it.OnDemand)
		horizon := tr.Duration()
		stride := horizon / units.Seconds(samplesPerType)
		var ups []units.Seconds
		var total units.Seconds
		for i := 0; i < samplesPerType; i++ {
			start := units.Seconds(i) * stride
			// Begin measuring from the first moment the instance could
			// actually be acquired (price at or below bid).
			for tr.PriceAt(start) > bid && start < horizon {
				start += tr.Step
			}
			at, ok := tr.NextCrossing(start, bid)
			up := horizon // censored: no eviction within horizon
			if ok {
				up = at - start
			}
			ups = append(ups, up)
			total += up
		}
		sort.Slice(ups, func(i, j int) bool { return ups[i] < ups[j] })
		m.samples[name] = ups
		m.mttf[name] = total / units.Seconds(samplesPerType)
		var sum float64
		for _, p := range tr.Prices {
			sum += p
		}
		m.avgSpot[name] = sum / float64(len(tr.Prices))
	}
	return m, nil
}

// CDF returns P(evicted before uptime) for the instance type: the
// fraction of historical samples with uptime-until-eviction ≤ u.
func (m *EvictionModel) CDF(name string, u units.Seconds) float64 {
	ups := m.samples[name]
	if len(ups) == 0 {
		return 0
	}
	// Binary search for the first sample > u.
	i := sort.Search(len(ups), func(i int) bool { return ups[i] > u })
	return float64(i) / float64(len(ups))
}

// MTTF returns the mean time to eviction for the instance type.
func (m *EvictionModel) MTTF(name string) (units.Seconds, error) {
	v, ok := m.mttf[name]
	if !ok {
		return 0, fmt.Errorf("cloud: no eviction stats for %q", name)
	}
	return v, nil
}

// AvgSpotPrice returns the historical mean spot price ($/hour), the
// price estimate provisioners use for configurations they are not
// currently running.
func (m *EvictionModel) AvgSpotPrice(name string) (float64, error) {
	v, ok := m.avgSpot[name]
	if !ok {
		return 0, fmt.Errorf("cloud: no price stats for %q", name)
	}
	return v, nil
}

// SurvivalBetween returns the conditional probability of surviving
// from uptime a to uptime b (a ≤ b): (1-CDF(b)) / (1-CDF(a)).
func (m *EvictionModel) SurvivalBetween(name string, a, b units.Seconds) float64 {
	fa := m.CDF(name, a)
	fb := m.CDF(name, b)
	if fa >= 1 {
		return 0
	}
	return (1 - fb) / (1 - fa)
}
