package cloud

import (
	"math"
	"sort"

	"hourglass/internal/units"
)

// MarketStats summarises one instance type's spot market over a trace
// — the "historical statistics" the paper derives from the October
// trace (§8.1): average prices, discount level, eviction frequency.
type MarketStats struct {
	Instance      string
	OnDemand      float64 // $/h list price
	MeanSpot      float64 // $/h
	MedianSpot    float64
	MeanDiscount  float64 // 1 − meanSpot/onDemand
	CrossingsPday float64 // evictions per day (price-over-bid episodes)
	AboveBidFrac  float64 // fraction of time the market is unavailable
	MTTF          units.Seconds
}

// ComputeMarketStats scans a trace and derives the summary.
func ComputeMarketStats(it InstanceType, tr *PriceTrace) MarketStats {
	s := MarketStats{Instance: it.Name, OnDemand: float64(it.OnDemand)}
	if len(tr.Prices) == 0 {
		return s
	}
	bid := float64(it.OnDemand)
	sorted := make([]float64, len(tr.Prices))
	copy(sorted, tr.Prices)
	sort.Float64s(sorted)
	s.MedianSpot = sorted[len(sorted)/2]

	var sum float64
	above := 0
	crossings := 0
	prevAbove := false
	for _, p := range tr.Prices {
		sum += p
		isAbove := p > bid
		if isAbove {
			above++
			if !prevAbove {
				crossings++
			}
		}
		prevAbove = isAbove
	}
	n := float64(len(tr.Prices))
	s.MeanSpot = sum / n
	s.MeanDiscount = 1 - s.MeanSpot/s.OnDemand
	days := float64(tr.Duration()) / float64(units.Day)
	if days > 0 {
		s.CrossingsPday = float64(crossings) / days
	}
	s.AboveBidFrac = float64(above) / n
	if crossings > 0 {
		// Mean available stretch between eviction episodes.
		s.MTTF = units.Seconds(float64(tr.Duration()) * (1 - s.AboveBidFrac) / float64(crossings))
	} else {
		s.MTTF = units.Seconds(math.Inf(1))
	}
	return s
}
