package cloud

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hourglass/internal/units"
)

// FSStore is a filesystem-backed BlobStore: every blob is one file
// under Root, with the key's '/' separators mapped to directories.
// Unlike the in-memory Datastore it is shared *across processes*, so
// a distributed run's shard workers (internal/dist) and its
// coordinator can exchange per-shard checkpoint blobs through it —
// the stand-in for the S3 bucket the paper's modified Giraph
// checkpoints into (§7), now with real files and real fsync-ordered
// visibility.
//
// Writes are atomic (temp file + rename in the same directory), so a
// reader never observes a half-written blob; a crash mid-Put leaves
// at worst an orphaned .tmp file that Keys ignores. Virtual transfer
// times are zero: a real filesystem already charges real time.
type FSStore struct {
	root string
}

// NewFSStore opens (creating if needed) a store rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, errors.New("cloud: empty FSStore root")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cloud: fsstore root: %w", err)
	}
	return &FSStore{root: dir}, nil
}

// Root returns the store's base directory.
func (s *FSStore) Root() string { return s.root }

// path maps a key to its file path, rejecting escapes from the root.
func (s *FSStore) path(key string) (string, error) {
	if key == "" || strings.Contains(key, "..") || strings.HasPrefix(key, "/") {
		return "", fmt.Errorf("cloud: invalid blob key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put stores a blob atomically.
func (s *FSStore) Put(key string, data []byte) (units.Seconds, error) {
	p, err := s.path(key)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return 0, fmt.Errorf("cloud: fsstore put %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("cloud: fsstore put %q: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cloud: fsstore put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cloud: fsstore put %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("cloud: fsstore put %q: %w", key, err)
	}
	return 0, nil
}

// Get fetches a blob. Missing keys wrap ErrNotFound.
func (s *FSStore) Get(key string) ([]byte, units.Seconds, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, fmt.Errorf("cloud: fsstore has no object %q: %w", key, ErrNotFound)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: fsstore get %q: %w", key, err)
	}
	return data, 0, nil
}

// Delete removes a blob (idempotent).
func (s *FSStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cloud: fsstore delete %q: %w", key, err)
	}
	return nil
}

// Exists reports whether the key is stored.
func (s *FSStore) Exists(key string) bool {
	p, err := s.path(key)
	if err != nil {
		return false
	}
	info, err := os.Stat(p)
	return err == nil && !info.IsDir()
}

// Keys walks the root and returns all stored keys in sorted order,
// skipping in-flight temp files.
func (s *FSStore) Keys() []string {
	var keys []string
	_ = filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		rel, rerr := filepath.Rel(s.root, p)
		if rerr != nil {
			return nil
		}
		keys = append(keys, filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(keys)
	return keys
}

var _ BlobStore = (*FSStore)(nil)
