// Package cloud models the IaaS environment Hourglass provisions
// from: the instance catalogue (the paper's r4 memory-optimized
// family), deployment configurations, spot-price traces with
// price-crossing evictions (the AWS post-2017 model where the bid is
// effectively the on-demand price, §7), an empirical eviction model
// derived from historical traces, and an S3-like blob datastore.
//
// The real AWS price traces used by the paper ([44], us-east-1
// Oct/Nov 2016) are not available offline; Generate produces seeded
// synthetic traces with the same structure — deep discounts punctured
// by demand spikes that cross the on-demand price and evict — so the
// provisioning code paths are exercised identically (see DESIGN.md).
package cloud

import (
	"fmt"

	"hourglass/internal/units"
)

// InstanceType describes a machine type in the catalogue.
type InstanceType struct {
	Name      string
	VCPUs     int
	MemoryGiB float64
	// OnDemand is the hourly on-demand price, which is also the bid
	// used for spot requests (§7).
	OnDemand units.PerHour
}

// R4 family, us-east-1 prices of the paper's era.
var (
	R4Large2 = InstanceType{Name: "r4.2xlarge", VCPUs: 8, MemoryGiB: 61, OnDemand: 0.532}
	R4Large4 = InstanceType{Name: "r4.4xlarge", VCPUs: 16, MemoryGiB: 122, OnDemand: 1.064}
	R4Large8 = InstanceType{Name: "r4.8xlarge", VCPUs: 32, MemoryGiB: 244, OnDemand: 2.128}
)

// Catalogue returns the instance types available to configurations.
func Catalogue() []InstanceType { return []InstanceType{R4Large2, R4Large4, R4Large8} }

// InstanceByName looks up a catalogue entry.
func InstanceByName(name string) (InstanceType, error) {
	for _, it := range Catalogue() {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
}

// Config is a deployment configuration: a homogeneous set of machines
// (§8.1 justifies homogeneity by Giraph's synchronous model), either
// all transient (spot) or all on-demand.
type Config struct {
	Instance  InstanceType
	Count     int
	Transient bool
}

// ID renders a stable identifier, e.g. "spot/r4.4xlarge x8".
func (c Config) ID() string {
	kind := "ondemand"
	if c.Transient {
		kind = "spot"
	}
	return fmt.Sprintf("%s/%s x%d", kind, c.Instance.Name, c.Count)
}

// OnDemandRate is the configuration's full on-demand price per second.
func (c Config) OnDemandRate() units.USD {
	return units.USD(float64(c.Instance.OnDemand.PerSecond()) * float64(c.Count))
}

// TotalMemoryGiB is the aggregate memory, the feasibility gate for a
// given graph size.
func (c Config) TotalMemoryGiB() float64 {
	return c.Instance.MemoryGiB * float64(c.Count)
}

// DefaultWorkerCounts are the deployment sizes used in the paper's
// evaluation (§8.1: 16, 8, and 4 worker machines).
var DefaultWorkerCounts = []int{4, 8, 16}

// MaxTotalVCPUs bounds a deployment's aggregate compute so that the
// configuration grid spans the paper's ~2.5× execution-time spread
// (§2: 4 h on the fastest configuration, up to 10 h on others). The
// paper's deployments pair instance size with worker count
// (r4.2xlarge×16, r4.4xlarge×8, r4.8xlarge×4 — all 128 vCPUs).
const MaxTotalVCPUs = 128

// DefaultConfigs builds the paper's transient deployment
// configurations (instance types × sizes, capped at MaxTotalVCPUs)
// plus their on-demand counterparts.
func DefaultConfigs() []Config {
	var out []Config
	for _, transient := range []bool{true, false} {
		for _, it := range Catalogue() {
			for _, n := range DefaultWorkerCounts {
				if it.VCPUs*n > MaxTotalVCPUs {
					continue
				}
				out = append(out, Config{Instance: it, Count: n, Transient: transient})
			}
		}
	}
	return out
}

// SpotConfigs filters the transient configurations.
func SpotConfigs(all []Config) []Config {
	var out []Config
	for _, c := range all {
		if c.Transient {
			out = append(out, c)
		}
	}
	return out
}

// OnDemandConfigs filters the reliable configurations.
func OnDemandConfigs(all []Config) []Config {
	var out []Config
	for _, c := range all {
		if !c.Transient {
			out = append(out, c)
		}
	}
	return out
}
