package cloud

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hourglass/internal/units"
)

func TestCatalogueLookup(t *testing.T) {
	if len(Catalogue()) != 3 {
		t.Fatalf("catalogue size = %d, want 3", len(Catalogue()))
	}
	it, err := InstanceByName("r4.4xlarge")
	if err != nil || it.VCPUs != 16 {
		t.Errorf("lookup r4.4xlarge: %+v, %v", it, err)
	}
	if _, err := InstanceByName("m1.tiny"); err == nil {
		t.Error("unknown instance accepted")
	}
}

func TestConfigAccessors(t *testing.T) {
	c := Config{Instance: R4Large2, Count: 16, Transient: true}
	if c.ID() != "spot/r4.2xlarge x16" {
		t.Errorf("ID = %q", c.ID())
	}
	if c.TotalMemoryGiB() != 16*61 {
		t.Errorf("memory = %v", c.TotalMemoryGiB())
	}
	wantRate := units.USD(0.532 / 3600 * 16)
	if math.Abs(float64(c.OnDemandRate()-wantRate)) > 1e-12 {
		t.Errorf("rate = %v, want %v", c.OnDemandRate(), wantRate)
	}
}

func TestDefaultConfigs(t *testing.T) {
	all := DefaultConfigs()
	if len(all) != 12 {
		t.Fatalf("configs = %d, want 12 (6 spot + 6 on-demand under the vCPU cap)", len(all))
	}
	if len(SpotConfigs(all)) != 6 || len(OnDemandConfigs(all)) != 6 {
		t.Fatalf("spot/od split wrong")
	}
	for _, c := range all {
		if c.Instance.VCPUs*c.Count > MaxTotalVCPUs {
			t.Errorf("%s exceeds the capacity cap", c.ID())
		}
	}
}

func TestGenerateDeterministicAndDiscounted(t *testing.T) {
	p := GenParams{Days: 3, Seed: 42}
	a := Generate(R4Large2, p)
	b := Generate(R4Large2, p)
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
	// Median price should be well below on-demand (deep discount).
	below := 0
	for _, pr := range a.Prices {
		if pr < float64(R4Large2.OnDemand)*0.5 {
			below++
		}
	}
	if frac := float64(below) / float64(len(a.Prices)); frac < 0.7 {
		t.Errorf("only %.0f%% of samples deeply discounted", frac*100)
	}
	// But spikes must exist: some samples above on-demand.
	above := 0
	for _, pr := range a.Prices {
		if pr > float64(R4Large2.OnDemand) {
			above++
		}
	}
	if above == 0 {
		t.Error("trace never crosses on-demand: no evictions possible")
	}
}

func TestPriceAtWrapsAround(t *testing.T) {
	tr := &PriceTrace{Instance: "x", Step: 60, Prices: []float64{1, 2, 3}}
	if tr.PriceAt(0) != 1 || tr.PriceAt(61) != 2 || tr.PriceAt(180) != 1 {
		t.Errorf("PriceAt wrap broken: %v %v %v", tr.PriceAt(0), tr.PriceAt(61), tr.PriceAt(180))
	}
}

func TestCostBetweenIntegrates(t *testing.T) {
	tr := &PriceTrace{Instance: "x", Step: units.Seconds(units.Hour), Prices: []float64{1, 3}}
	// 1 hour at $1/h + 30 min at $3/h = 2.5.
	got := tr.CostBetween(0, units.Seconds(1.5*float64(units.Hour)))
	if math.Abs(float64(got)-2.5) > 1e-9 {
		t.Errorf("cost = %v, want 2.5", got)
	}
	if tr.CostBetween(10, 10) != 0 {
		t.Error("empty interval must cost 0")
	}
}

func TestNextCrossing(t *testing.T) {
	tr := &PriceTrace{Instance: "x", Step: 60, Prices: []float64{0.1, 0.1, 0.9, 0.1}}
	at, ok := tr.NextCrossing(0, 0.5)
	if !ok || at != 120 {
		t.Errorf("crossing = %v,%v, want 120,true", at, ok)
	}
	// From inside the spike sample, crossing is immediate.
	at, ok = tr.NextCrossing(130, 0.5)
	if !ok || at != 130 {
		t.Errorf("crossing from 130 = %v,%v, want 130,true", at, ok)
	}
	flat := &PriceTrace{Instance: "x", Step: 60, Prices: []float64{0.1, 0.2}}
	if _, ok := flat.NextCrossing(0, 0.5); ok {
		t.Error("crossing found in flat trace")
	}
}

func newTestMarket(t *testing.T) (*Market, TraceSet) {
	t.Helper()
	set := GenerateSet(Catalogue(), GenParams{Days: 5, Seed: 7})
	return NewMarket(set), set
}

func TestMarketRateAndCost(t *testing.T) {
	m, _ := newTestMarket(t)
	od := Config{Instance: R4Large8, Count: 4, Transient: false}
	rate, err := m.Rate(od, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rate)-2.128/3600*4) > 1e-12 {
		t.Errorf("on-demand rate = %v", rate)
	}
	cost, err := m.Cost(od, 0, units.Seconds(units.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(cost)-2.128*4) > 1e-9 {
		t.Errorf("on-demand hour cost = %v, want %v", cost, 2.128*4)
	}
	spot := Config{Instance: R4Large8, Count: 4, Transient: true}
	sc, err := m.Cost(spot, 0, units.Seconds(units.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if sc <= 0 || sc >= cost {
		t.Errorf("spot hour cost = %v, want within (0, %v)", sc, cost)
	}
}

func TestMarketEvictionOnlyForTransient(t *testing.T) {
	m, _ := newTestMarket(t)
	od := Config{Instance: R4Large2, Count: 4, Transient: false}
	if _, ok, err := m.NextEviction(od, 0); err != nil || ok {
		t.Errorf("on-demand evicted: ok=%v err=%v", ok, err)
	}
	spot := Config{Instance: R4Large2, Count: 4, Transient: true}
	at, ok, err := m.NextEviction(spot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("trace has no spike for this seed — regenerate with another seed")
	}
	if at < 0 {
		t.Errorf("eviction at %v", at)
	}
	// At the eviction time the price must exceed the bid.
	p, err := m.SpotPrice(spot.Instance, at)
	if err != nil {
		t.Fatal(err)
	}
	if p <= float64(spot.Instance.OnDemand) {
		t.Errorf("price at eviction %v not above bid", p)
	}
}

func TestMarketAvailability(t *testing.T) {
	m, _ := newTestMarket(t)
	spot := Config{Instance: R4Large4, Count: 8, Transient: true}
	at, ok, err := m.NextEviction(spot, 0)
	if err != nil || !ok {
		t.Skip("no eviction in trace")
	}
	avail, err := m.Available(spot, at)
	if err != nil {
		t.Fatal(err)
	}
	if avail {
		t.Error("config available during spike")
	}
	next, err := m.NextAvailable(spot, at)
	if err != nil {
		t.Fatal(err)
	}
	if next < at {
		t.Errorf("NextAvailable %v before eviction %v", next, at)
	}
	avail, _ = m.Available(spot, next)
	if !avail {
		t.Error("NextAvailable returned unavailable moment")
	}
}

func TestEvictionModel(t *testing.T) {
	set := GenerateSet(Catalogue(), GenParams{Days: 10, Seed: 99})
	em, err := BuildEvictionModel(set, 128)
	if err != nil {
		t.Fatal(err)
	}
	name := R4Large2.Name
	// CDF is monotone in uptime, within [0,1].
	prev := -1.0
	for _, u := range []units.Seconds{0, units.Hour, 4 * units.Hour, units.Day, 10 * units.Day} {
		c := em.CDF(name, u)
		if c < prev || c < 0 || c > 1 {
			t.Fatalf("CDF not monotone: %v at %v after %v", c, u, prev)
		}
		prev = c
	}
	mttf, err := em.MTTF(name)
	if err != nil || mttf <= 0 {
		t.Errorf("MTTF = %v, %v", mttf, err)
	}
	avg, err := em.AvgSpotPrice(name)
	if err != nil || avg <= 0 || avg >= float64(R4Large2.OnDemand) {
		t.Errorf("avg spot = %v, %v", avg, err)
	}
	if _, err := em.MTTF("nope"); err == nil {
		t.Error("missing instance accepted")
	}
}

func TestSurvivalBetween(t *testing.T) {
	set := GenerateSet(Catalogue(), GenParams{Days: 10, Seed: 99})
	em, err := BuildEvictionModel(set, 128)
	if err != nil {
		t.Fatal(err)
	}
	s := em.SurvivalBetween(R4Large2.Name, units.Hour, 2*units.Hour)
	if s < 0 || s > 1 {
		t.Errorf("survival = %v", s)
	}
	if em.SurvivalBetween(R4Large2.Name, 0, 0) != 1 {
		t.Error("survival over empty interval must be 1")
	}
}

func TestDatastorePutGet(t *testing.T) {
	d := NewDatastore()
	up, err := d.Put("a", []byte("hello"))
	if err != nil || up <= 0 {
		t.Errorf("upload time = %v, err = %v", up, err)
	}
	data, down, err := d.Get("a")
	if err != nil || string(data) != "hello" || down <= 0 {
		t.Errorf("get = %q %v %v", data, down, err)
	}
	if _, _, err := d.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: err = %v, want ErrNotFound", err)
	}
	if !d.Exists("a") || d.Exists("b") {
		t.Error("Exists wrong")
	}
	d.Delete("a")
	if d.Exists("a") {
		t.Error("Delete failed")
	}
}

func TestDatastoreParallelTransferTime(t *testing.T) {
	d := NewDatastore()
	// 4 nodes: per-conn 250 MB/s, aggregate 4 GB/s → per-node 250 MB/s.
	t4 := d.ParallelTransferTime(4, 250_000_000)
	if math.Abs(float64(t4)-1.0) > 1e-9 {
		t.Errorf("4-node transfer = %v, want 1s", t4)
	}
	// 32 nodes: aggregate-bound at 125 MB/s each.
	t32 := d.ParallelTransferTime(32, 250_000_000)
	if math.Abs(float64(t32)-2.0) > 1e-9 {
		t.Errorf("32-node transfer = %v, want 2s", t32)
	}
	if d.ParallelTransferTime(0, 100) != 0 || d.ParallelTransferTime(4, 0) != 0 {
		t.Error("degenerate transfers must be free")
	}
}

// Property: cost integration is additive over adjacent intervals.
func TestQuickCostAdditivity(t *testing.T) {
	tr := Generate(R4Large4, GenParams{Days: 2, Seed: 5})
	f := func(rawA, rawB, rawC uint32) bool {
		horizon := float64(tr.Duration())
		a := float64(rawA%100000) / 100000 * horizon / 2
		b := a + float64(rawB%100000)/100000*horizon/4
		c := b + float64(rawC%100000)/100000*horizon/4
		whole := float64(tr.CostBetween(units.Seconds(a), units.Seconds(c)))
		split := float64(tr.CostBetween(units.Seconds(a), units.Seconds(b))) +
			float64(tr.CostBetween(units.Seconds(b), units.Seconds(c)))
		return math.Abs(whole-split) < 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: NextCrossing returns a time whose price exceeds the bid.
func TestQuickNextCrossingConsistent(t *testing.T) {
	tr := Generate(R4Large8, GenParams{Days: 3, Seed: 11})
	bid := float64(R4Large8.OnDemand)
	f := func(raw uint32) bool {
		from := units.Seconds(float64(raw%1000) / 1000 * float64(tr.Duration()))
		at, ok := tr.NextCrossing(from, bid)
		if !ok {
			return true
		}
		return at >= from && tr.PriceAt(at) > bid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBidFactorChangesEvictions(t *testing.T) {
	set := GenerateSet(Catalogue(), GenParams{Days: 5, Seed: 7})
	spot := Config{Instance: R4Large2, Count: 4, Transient: true}
	normal := NewMarket(set)
	generous := NewMarket(set)
	generous.BidFactor = 3.0 // bid 3× on-demand: far fewer crossings
	atN, okN, err := normal.NextEviction(spot, 0)
	if err != nil {
		t.Fatal(err)
	}
	atG, okG, err := generous.NextEviction(spot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if okN && okG && atG < atN {
		t.Errorf("higher bid evicted earlier: %v vs %v", atG, atN)
	}
	if okN && !okG {
		t.Log("generous bid eliminated evictions entirely — acceptable")
	}
}

func TestDatastoreKeys(t *testing.T) {
	d := NewDatastore()
	if got := d.Keys(); len(got) != 0 {
		t.Fatalf("fresh store has keys %v", got)
	}
	d.Put("b", []byte("2"))
	d.Put("a", []byte("1"))
	d.Put("c", []byte("3"))
	got := d.Keys()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("keys %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys %v not sorted as %v", got, want)
		}
	}
	d.Delete("b")
	if got := d.Keys(); len(got) != 2 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestDatastoreGetReturnsDefensiveCopy(t *testing.T) {
	// Regression: Get used to return the internal slice, so a caller
	// mutating the bytes corrupted the "durable" object and a later
	// reload restored the corrupted state.
	d := NewDatastore()
	d.Put("ckpt", []byte("pristine"))

	data, _, err := d.Get("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 'X' // caller scribbles over its copy
	}
	back, _, err := d.Get("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "pristine" {
		t.Fatalf("durable object corrupted through Get aliasing: %q", back)
	}

	r, _, err := d.GetReader("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'Y'
	}
	back, _, _ = d.Get("ckpt")
	if string(back) != "pristine" {
		t.Fatalf("durable object corrupted through GetReader aliasing: %q", back)
	}
}

func TestRetrierSucceedsAfterTransientFailures(t *testing.T) {
	r := NewRetrier(RetryPolicy{Attempts: 5, Base: 1, Seed: 7})
	calls := 0
	delay, err := r.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	// Two backoffs: 1s and 2s, each jittered into [0.5·b, b).
	if delay < 1.5 || delay >= 3 {
		t.Errorf("accumulated backoff %v outside [1.5, 3)", delay)
	}
}

func TestRetrierGivesUpAfterAttempts(t *testing.T) {
	r := NewRetrier(RetryPolicy{Attempts: 3, Base: 1, Seed: 1})
	calls := 0
	_, err := r.Do(func() error { calls++; return fmt.Errorf("always down") })
	if err == nil || calls != 3 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestRetrierStopsOnNotFound(t *testing.T) {
	r := NewRetrier(RetryPolicy{Attempts: 5, Base: 1, Seed: 1})
	calls := 0
	delay, err := r.Do(func() error {
		calls++
		return fmt.Errorf("wrapped: %w", ErrNotFound)
	})
	if !errors.Is(err, ErrNotFound) || calls != 1 || delay != 0 {
		t.Fatalf("not-found retried: calls=%d delay=%v err=%v", calls, delay, err)
	}
}

func TestRetrierJitterDeterministic(t *testing.T) {
	run := func() units.Seconds {
		r := NewRetrier(RetryPolicy{Attempts: 4, Base: 1, Seed: 99})
		d, _ := r.Do(func() error { return fmt.Errorf("down") })
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different backoff: %v vs %v", a, b)
	}
}
