package core

import "hourglass/internal/units"

// Relaxed implements the paper's "relaxed-Hourglass" discussion
// (§8.2, "Relaxing the Deadlines"): run the standard slack-aware
// strategy against a target *larger* than the real deadline. The
// strategy then operates with an inflated slack and, under evictions,
// switches to the last resort too late — trading occasional missed
// deadlines for additional savings. Useful when the deadline is soft.
type Relaxed struct {
	Inner *SlackAware
	// Extra is added to the real deadline before deciding.
	Extra units.Seconds
}

// NewRelaxed wraps a slack-aware strategy with an inflated target.
func NewRelaxed(env *Env, extra units.Seconds) *Relaxed {
	return &Relaxed{Inner: NewSlackAware(env), Extra: extra}
}

// Name implements Provisioner.
func (r *Relaxed) Name() string { return "hourglass-relaxed" }

// Decide implements Provisioner.
func (r *Relaxed) Decide(s State) (Decision, error) {
	s.Deadline += r.Extra
	return r.Inner.Decide(s)
}
