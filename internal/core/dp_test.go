package core

import (
	"testing"

	"hourglass/internal/perfmodel"
)

// stubProvisioner always returns a fixed decision (test double for the
// DP wrapper's inner strategy).
type stubProvisioner struct{ dec Decision }

func (s *stubProvisioner) Name() string                   { return "stub" }
func (s *stubProvisioner) Decide(State) (Decision, error) { return s.dec, nil }

func TestDPRejectsSlowOnDemandFallback(t *testing.T) {
	// Regression: during a market spike a greedy inner provisioner may
	// fall back to the *cheapest* on-demand configuration, which can be
	// too slow for the remaining horizon. DP must override it with the
	// last resort (this caused rare missed deadlines before the fix).
	env := testEnv(t, perfmodel.JobPageRank)
	var slow *ConfigStats
	for i := range env.Stats {
		cs := &env.Stats[i]
		if !cs.Config.Transient && cs.Config.ID() != env.LRC.Config.ID() && cs.Omega < 0.7 {
			slow = cs
			break
		}
	}
	if slow == nil {
		t.Skip("no slow on-demand config in the set")
	}
	inner := &stubProvisioner{dec: Decision{Config: slow.Config, Replicas: 1}}
	dp := NewDP(inner, env)

	// Tight horizon: the slow config cannot finish, DP must use the LRC.
	s := stateWithSlack(env, 0.1)
	dec, err := dp.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.ID() != env.LRC.Config.ID() {
		t.Errorf("DP accepted %s which misses the deadline", dec.Config.ID())
	}

	// Generous horizon: the slow config fits, DP passes it through.
	dp2 := NewDP(inner, env)
	s2 := stateWithSlack(env, 1.0)
	// Slack 100% of LRC exec may still be too tight for ω<0.5; widen.
	s2.Deadline += env.LRC.Exec * 3
	dec, err = dp2.Decide(s2)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.ID() != slow.Config.ID() {
		t.Errorf("DP rejected feasible on-demand %s, chose %s", slow.Config.ID(), dec.Config.ID())
	}
}

func TestSpotOnDiffersFromProteus(t *testing.T) {
	// SpotOn uses the plain cost-per-work score (no checkpoint/rework
	// terms); its scores must differ from Proteus's on transient
	// configurations.
	env := testEnv(t, perfmodel.JobGC)
	proteus := NewGreedy(env)
	simple := &Greedy{Env: env, SpotOnly: true, Simple: true}
	for i := range env.Stats {
		cs := &env.Stats[i]
		if !cs.Config.Transient {
			continue
		}
		a := proteus.costPerWork(cs, 0)
		b := simple.costPerWork(cs, 0)
		if a <= b {
			t.Errorf("%s: proteus score %v not above simple score %v", cs.Config.ID(), a, b)
		}
	}
}
