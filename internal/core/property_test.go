package core

import (
	"testing"
	"testing/quick"

	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// Economic invariants of the expected-cost model. These are the
// properties a provisioning engine must satisfy regardless of trace or
// calibration; violations indicate recursion or memoisation bugs.

// EC never exceeds the last-resort cost: falling back immediately is
// always an available plan, so the optimum is bounded by it. (Small
// tolerance: the immediate interval is priced at live rates which can
// sit above the historical average used by the bound.)
func TestQuickECBoundedByLastResort(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	p := NewSlackAware(env)
	f := func(rawW, rawSlack uint16) bool {
		w := 0.05 + float64(rawW%1000)/1000*0.95
		frac := float64(rawSlack%1000) / 1000
		s := stateWithSlack(env, frac)
		s.WorkLeft = w
		// Recompute the deadline consistently with the reduced work: the
		// state is "mid-run", so just shrink the horizon proportionally.
		dec, err := p.Decide(s)
		if err != nil {
			return false
		}
		bound := float64(env.LRCFinishCost(w))
		return float64(dec.ExpectedCost) <= bound*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// More remaining work never costs less, all else equal.
func TestQuickECMonotoneInWork(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	p := NewSlackAware(env)
	f := func(raw uint16) bool {
		w := 0.1 + float64(raw%800)/1000 // [0.1, 0.9)
		s := stateWithSlack(env, 0.6)
		s.WorkLeft = w
		lo := p.Evaluate(s)
		s2 := s
		s2.WorkLeft = w + 0.1
		hi := p.Evaluate(s2)
		// Allow 5% tolerance for memo-bucket boundaries.
		return float64(hi) >= float64(lo)*0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// A longer deadline (more slack) never makes the optimal plan
// materially more expensive: every feasible plan remains feasible.
func TestQuickECMonotoneInSlack(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	p := NewSlackAware(env)
	f := func(raw uint16) bool {
		frac := float64(raw%800) / 1000 // [0, 0.8)
		s1 := stateWithSlack(env, frac)
		s2 := stateWithSlack(env, frac+0.2)
		c1 := p.Evaluate(s1)
		c2 := p.Evaluate(s2)
		return float64(c2) <= float64(c1)*1.05+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Zero work costs zero, for every strategy.
func TestZeroWorkCostsZero(t *testing.T) {
	env := testEnv(t, perfmodel.JobSSSP)
	s := stateWithSlack(env, 0.5)
	s.WorkLeft = 0
	if got := NewSlackAware(env).Evaluate(s); got != 0 {
		t.Errorf("EC(w=0) = %v", got)
	}
	x := NewExactEC(env)
	x.Step = 10
	if got, err := x.Evaluate(s); err != nil || got != 0 {
		t.Errorf("exact EC(w=0) = %v, %v", got, err)
	}
}

// The exact evaluator is deterministic: same state, same cost.
func TestExactECDeterministic(t *testing.T) {
	env := testEnv(t, perfmodel.JobSSSP)
	s := stateWithSlack(env, 0.5)
	x1 := NewExactEC(env)
	x1.Step = 10
	a, err := x1.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	x2 := NewExactEC(env)
	x2.Step = 10
	b, err := x2.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("exact EC nondeterministic: %v vs %v", a, b)
	}
}

// The useful interval shrinks to nothing as the deadline approaches —
// and so does the planned MaxRun the simulator relies on.
func TestUsefulVanishesAtDeadline(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	var spot *ConfigStats
	for i := range env.Stats {
		if env.Stats[i].Config.Transient {
			spot = &env.Stats[i]
			break
		}
	}
	prev := units.Seconds(1e18)
	for _, frac := range []float64{1.0, 0.5, 0.2, 0.05, 0.0} {
		s := stateWithSlack(env, frac)
		u := env.Useful(spot, s, true)
		if u > prev {
			t.Errorf("useful grew as slack shrank: %v at %.2f", u, frac)
		}
		prev = u
	}
	s := stateWithSlack(env, 0.0)
	if env.Useful(spot, s, true) > 0 {
		t.Error("useful positive with zero slack (would break the guarantee)")
	}
}
