package core

import (
	"math"
	"testing"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// testEnv assembles an environment with a synthetic "October"
// (historical) month feeding the eviction model and a "November"
// (live) month feeding the market, mirroring §8.1.
func testEnv(t testing.TB, job perfmodel.Job) *Env {
	t.Helper()
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 1010})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		t.Fatal(err)
	}
	live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 2020})
	env, err := NewEnv(job, perfmodel.Default(), cloud.DefaultConfigs(), cloud.NewMarket(live), em)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// stateWithSlack builds a fresh-start state whose deadline leaves the
// given slack fraction of LRC exec time.
func stateWithSlack(env *Env, frac float64) State {
	rel := env.LRC.Fixed + env.LRC.Exec + units.Seconds(frac*float64(env.LRC.Exec))
	return State{Now: 1000, WorkLeft: 1, Deadline: 1000 + rel}
}

func TestNewEnvFiltersInfeasible(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	for _, cs := range env.Stats {
		if !env.Model.Feasible(env.Job, cs.Config) {
			t.Errorf("infeasible config %s in stats", cs.Config.ID())
		}
		if cs.Config.Transient && (math.IsInf(float64(cs.MTTF), 1) || cs.MTTF <= 0) {
			t.Errorf("%s: bad MTTF %v", cs.Config.ID(), cs.MTTF)
		}
		if cs.Omega <= 0 || cs.Omega > 1+1e-9 {
			t.Errorf("%s: ω = %v", cs.Config.ID(), cs.Omega)
		}
	}
	if env.LRC.Config.Transient {
		t.Error("LRC transient")
	}
}

func TestSlackMath(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	s := stateWithSlack(env, 0.5)
	want := 0.5 * float64(env.LRC.Exec)
	if got := float64(env.Slack(s)); math.Abs(got-want) > 1e-6 {
		t.Errorf("slack = %v, want %v", got, want)
	}
	// Slack shrinks as time passes with no progress.
	s2 := s
	s2.Now += 100
	if env.Slack(s2) >= env.Slack(s) {
		t.Error("slack did not shrink with time")
	}
	// Slack grows as work completes.
	s3 := s
	s3.WorkLeft = 0.5
	if env.Slack(s3) <= env.Slack(s) {
		t.Error("slack did not grow with progress")
	}
}

func TestUsefulBounds(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	s := stateWithSlack(env, 0.5)
	for i := range env.Stats {
		cs := &env.Stats[i]
		u := env.Useful(cs, s, true)
		if u > cs.Ckpt {
			t.Errorf("%s: useful %v exceeds checkpoint interval %v", cs.Config.ID(), u, cs.Ckpt)
		}
		if u > units.Seconds(s.WorkLeft*float64(cs.Exec))+1e-9 {
			t.Errorf("%s: useful %v exceeds remaining exec", cs.Config.ID(), u)
		}
		if u > env.Slack(s)-cs.Save {
			t.Errorf("%s: useful %v exceeds slack budget", cs.Config.ID(), u)
		}
		// Continuing is never worse than fresh.
		if env.Useful(cs, s, false) < u {
			t.Errorf("%s: continuing useful below fresh", cs.Config.ID())
		}
	}
}

func TestExpectedProgressSane(t *testing.T) {
	env := testEnv(t, perfmodel.JobPageRank)
	s := stateWithSlack(env, 1.0)
	for i := range env.Stats {
		cs := &env.Stats[i]
		p := env.ExpectedProgress(cs, s, true)
		if p < 0 || p > 1+1e-9 {
			t.Errorf("%s: progress %v", cs.Config.ID(), p)
		}
	}
}

func TestEvictionProbMonotone(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	var spot *ConfigStats
	for i := range env.Stats {
		if env.Stats[i].Config.Transient {
			spot = &env.Stats[i]
			break
		}
	}
	if spot == nil {
		t.Fatal("no transient config")
	}
	p1 := env.EvictionProb(spot, 0, units.Hour)
	p2 := env.EvictionProb(spot, 0, 4*units.Hour)
	if p1 < 0 || p2 > 1 || p2 < p1 {
		t.Errorf("eviction prob not monotone: %v then %v", p1, p2)
	}
	od := env.LRC
	if env.EvictionProb(&od, 0, units.Hour) != 0 {
		t.Error("on-demand eviction prob nonzero")
	}
}

func TestSlackAwarePrefersTransientWithSlack(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	p := NewSlackAware(env)
	dec, err := p.Decide(stateWithSlack(env, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Config.Transient {
		t.Errorf("with 50%% slack the strategy chose %s", dec.Config.ID())
	}
	if math.IsInf(float64(dec.ExpectedCost), 1) || dec.ExpectedCost <= 0 {
		t.Errorf("expected cost = %v", dec.ExpectedCost)
	}
	// Transient plan should beat the all-on-demand cost.
	if float64(dec.ExpectedCost) >= float64(env.LRCFinishCost(1)) {
		t.Errorf("expected cost %v not below LRC cost %v", dec.ExpectedCost, env.LRCFinishCost(1))
	}
}

func TestSlackAwareFallsBackWithoutSlack(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	p := NewSlackAware(env)
	// Deadline just fits the LRC: no room for any transient attempt.
	s := stateWithSlack(env, 0.0)
	dec, err := p.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.Transient {
		t.Errorf("with zero slack the strategy chose transient %s", dec.Config.ID())
	}
	if dec.Config.ID() != env.LRC.Config.ID() {
		t.Errorf("fallback config %s, want LRC %s", dec.Config.ID(), env.LRC.Config.ID())
	}
}

func TestSlackAwareDecisionTimeIsMilliseconds(t *testing.T) {
	// Figure 9's headline: approximate decisions take milliseconds even
	// for the 4-hour job at 100% slack.
	env := testEnv(t, perfmodel.JobGC)
	p := NewSlackAware(env)
	start := time.Now()
	if _, err := p.Decide(stateWithSlack(env, 1.0)); err != nil {
		t.Fatal(err)
	}
	// Wall-clock bound kept loose (CI machines vary); the op budget is
	// the real determinism guarantee.
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("decision took %v, want well under 10s", d)
	}
	// The budget check is post-increment, so a small overshoot from
	// in-flight branches is expected.
	if p.LastOps > p.OpBudget+10_000 {
		t.Errorf("decision used %d ops, budget %d", p.LastOps, p.OpBudget)
	}
}

func TestGreedyIgnoresDeadline(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	g := NewGreedy(env)
	// Even with zero slack, greedy still picks a transient deployment
	// (that is the dilemma of §2).
	dec, err := g.Decide(stateWithSlack(env, 0.0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Config.Transient {
		t.Skipf("market spike at decision point; greedy fell back to %s", dec.Config.ID())
	}
}

func TestDPTripsAndLatches(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	dp := NewDP(NewGreedy(env), env)
	// Plenty of slack: delegate.
	dec, err := dp.Decide(stateWithSlack(env, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.ID() == env.LRC.Config.ID() && dec.Config.Transient == false {
		t.Log("greedy happened to pick LRC; acceptable")
	}
	// Exhausted slack: trip to LRC.
	s := stateWithSlack(env, 0.0)
	s.Now += 100 // negative slack now
	dec, err = dp.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.Transient {
		t.Error("DP did not trip to on-demand")
	}
	// Latched: even if slack reappears (it cannot in reality), stay.
	dec, err = dp.Decide(stateWithSlack(env, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config.Transient {
		t.Error("DP unlatched")
	}
	dp.Reset()
	if _, err := dp.Decide(stateWithSlack(env, 1.0)); err != nil {
		t.Fatal(err)
	}
	if dp.Name() != "proteus+dp" {
		t.Errorf("DP name = %q", dp.Name())
	}
}

func TestOnDemandOnlyAlwaysLRC(t *testing.T) {
	env := testEnv(t, perfmodel.JobSSSP)
	o := &OnDemandOnly{Env: env}
	for _, frac := range []float64{0, 0.5, 1} {
		dec, err := o.Decide(stateWithSlack(env, frac))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Config.ID() != env.LRC.Config.ID() {
			t.Errorf("ondemand chose %s", dec.Config.ID())
		}
	}
}

func TestSpotOnChoosesCheckpointOrReplication(t *testing.T) {
	env := testEnv(t, perfmodel.JobGC)
	so := NewSpotOn(env)
	dec, err := so.Decide(stateWithSlack(env, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Replicas == 2 {
		if len(dec.Extra) != 1 {
			t.Error("replicated decision missing buddy config")
		}
		if dec.UseCheckpoints {
			t.Error("replicated decision still checkpoints")
		}
		if dec.Extra[0].Instance.Name == dec.Config.Instance.Name {
			t.Error("replica on the same market")
		}
	} else if dec.Config.Transient && !dec.UseCheckpoints {
		t.Error("single transient deployment must checkpoint")
	}
}

func TestExactECMatchesApproxOnShortJob(t *testing.T) {
	// Figure 9's DFO: ~3% average error where the optimal finishes.
	env := testEnv(t, perfmodel.JobSSSP)
	p := NewSlackAware(env)
	x := NewExactEC(env)
	x.Step = 5 // coarser than the paper's 1s to keep the test quick
	for _, frac := range []float64{0.2, 0.6, 1.0} {
		s := stateWithSlack(env, frac)
		exact, err := x.Evaluate(s)
		if err != nil {
			t.Fatalf("slack %.0f%%: exact did not finish: %v", frac*100, err)
		}
		approx := p.Evaluate(s)
		dfo := math.Abs(float64(approx-exact)) / float64(exact)
		if dfo > 0.35 {
			t.Errorf("slack %.0f%%: DFO = %.1f%% (approx %v vs exact %v)", frac*100, dfo*100, approx, exact)
		}
	}
}

func TestExactECBudgetExhaustsOnLongJob(t *testing.T) {
	// The flip side of Figure 9: the integral formulation cannot decide
	// for the 4-hour job in reasonable time.
	env := testEnv(t, perfmodel.JobGC)
	x := NewExactEC(env)
	x.Step = 1
	x.OpBudget = 2e6
	if _, err := x.Evaluate(stateWithSlack(env, 0.5)); err == nil {
		t.Skip("exact finished within budget — acceptable on this trace, shape checked in benches")
	}
}

func TestInfeasibleSentinel(t *testing.T) {
	if !math.IsInf(float64(Infeasible), 1) {
		t.Error("Infeasible must be +Inf")
	}
}
