package core

import (
	"errors"
	"math"

	"hourglass/internal/units"
)

// ErrBudget is returned when the exact EC evaluation exceeds its
// operation budget — the "did not finish" outcome of Figure 9.
var ErrBudget = errors.New("core: exact EC evaluation exceeded budget")

// ExactEC evaluates EC(t,w) by the full §5.2 formulation: the failure
// branch integrates the eviction density over every discretised
// instant of the useful interval (instead of collapsing it to the
// MTTF), and the success branch re-optimises over all configurations
// at every checkpoint boundary (instead of sticking with the current
// one). This is the "Optimal" line of Figure 9 — accurate but
// intractable for long jobs and large slacks, which is exactly what
// the figure demonstrates.
type ExactEC struct {
	Env *Env
	// Step is the time discretisation of the integral (the paper uses
	// 1 s, the finest granularity of observed price changes).
	Step units.Seconds
	// OpBudget bounds branch evaluations before giving up (0 = 5e7).
	OpBudget int64

	ops  int64
	memo ecMemo
}

// NewExactEC builds the evaluator with a 1-second integral step.
func NewExactEC(env *Env) *ExactEC {
	return &ExactEC{Env: env, Step: 1, OpBudget: 5e7}
}

// Ops reports how many branch evaluations the last Evaluate used.
func (x *ExactEC) Ops() int64 { return x.ops }

// Evaluate computes EC(t,w) exactly (fresh decision, historical
// average prices, like SlackAware.Evaluate) or returns ErrBudget.
func (x *ExactEC) Evaluate(s State) (units.USD, error) {
	if x.OpBudget == 0 {
		x.OpBudget = 5e7
	}
	if x.Step <= 0 {
		x.Step = 1
	}
	x.ops = 0
	x.memo = ecMemo{}
	cost, err := x.ecFull(s.Now, s.WorkLeft, s.Deadline, 0)
	if err != nil {
		return 0, err
	}
	return cost, nil
}

// key discretises the memo grid at the integral step and a fine work
// resolution (the exact evaluator must not profit from coarse buckets).
func (x *ExactEC) key(t units.Seconds, w float64) ecKey {
	return ecKey{int64(t / x.Step), int64(w * 1e6)}
}

func (x *ExactEC) ecFull(t units.Seconds, w float64, deadline units.Seconds, depth int) (units.USD, error) {
	if w <= 0 {
		return 0, nil
	}
	if depth > maxRecursion {
		return x.Env.LRCFinishCost(w), nil
	}
	k := x.key(t, w)
	if v, ok := x.memo[k]; ok {
		return v, nil
	}
	x.memo[k] = x.Env.LRCFinishCost(w) // conservative seed for cycles
	best := Infeasible
	for i := range x.Env.Stats {
		cs := &x.Env.Stats[i]
		c, err := x.branch(cs, t, w, deadline, 0, true, depth)
		if err != nil {
			return 0, err
		}
		if c < best {
			best = c
		}
	}
	if math.IsInf(float64(best), 1) {
		best = x.Env.LRCFinishCost(w)
	}
	x.memo[k] = best
	return best, nil
}

func (x *ExactEC) branch(cs *ConfigStats, t units.Seconds, w float64,
	deadline units.Seconds, uptime units.Seconds, fresh bool, depth int) (units.USD, error) {
	if w <= 0 {
		return 0, nil
	}
	x.ops++
	if x.ops > x.OpBudget {
		return 0, ErrBudget
	}
	if depth > maxRecursion {
		return x.Env.LRCFinishCost(w), nil
	}
	st := State{Now: t, WorkLeft: w, Deadline: deadline}
	rate := cs.AvgRate
	if !cs.Config.Transient {
		overhead := cs.Save
		if fresh {
			overhead = cs.Fixed
		}
		total := float64(overhead) + w*float64(cs.Exec)
		if units.Seconds(total) > st.Horizon() {
			return Infeasible, nil
		}
		return units.USD(float64(rate) * total), nil
	}
	useful := x.Env.Useful(cs, st, fresh)
	if useful <= 0 {
		return Infeasible, nil
	}
	setup := units.Seconds(0)
	if fresh {
		setup = cs.Boot + cs.Load
	}
	tint := setup + useful + cs.Save
	name := cs.Config.Instance.Name
	f0 := x.Env.Evictions.CDF(name, uptime)
	fEnd := x.Env.Evictions.CDF(name, uptime+tint)
	pFail := fEnd - f0
	if f0 < 1 {
		pFail /= 1 - f0
	} else {
		pFail = 1
	}

	// Success branch: the exact model re-optimises at the checkpoint
	// boundary — the better of continuing this configuration or
	// switching to the globally best fresh one.
	progress := x.Env.ExpectedProgress(cs, st, fresh)
	wNext := w - progress
	cont, err := x.branch(cs, t+tint, wNext, deadline, uptime+tint, false, depth+1)
	if err != nil {
		return 0, err
	}
	sw, err := x.ecFull(t+tint, wNext, deadline, depth+1)
	if err != nil {
		return 0, err
	}
	tail := cont
	if sw < tail {
		tail = sw
	}
	if math.IsInf(float64(tail), 1) && wNext > 0 {
		tail = x.Env.LRCFinishCost(wNext)
	}
	succ := units.USD(float64(rate)*float64(tint)) + tail

	// Failure branch: integrate over every discretised failure instant
	// within the interval (the §5.2 costTfail integral).
	var fail float64
	if pFail > 0 {
		window := fEnd - f0
		prev := f0
		for xs := x.Step; xs <= tint; xs += x.Step {
			x.ops++
			if x.ops > x.OpBudget {
				return 0, ErrBudget
			}
			cur := x.Env.Evictions.CDF(name, uptime+xs)
			weight := (cur - prev) / window
			prev = cur
			if weight <= 0 {
				continue
			}
			followUp, err := x.ecFull(t+xs, w, deadline, depth+1)
			if err != nil {
				return 0, err
			}
			fail += weight * (float64(rate)*float64(xs) + float64(followUp))
		}
	}
	return units.USD(pFail*fail + (1-pFail)*float64(succ)), nil
}
