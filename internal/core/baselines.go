package core

import (
	"math"

	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

// Greedy is the Proteus-style provisioner (§8.2): it "greedily selects
// the deployment expected to reduce the cost per unit of work produced
// at each moment", with no notion of deadline. Cost per work for a
// configuration is its current price rate divided by its normalized
// capacity, inflated by the expected checkpoint overhead.
type Greedy struct {
	Env *Env
	// SpotOnly restricts candidates to transient configurations unless
	// none is feasible (both Proteus and SpotOn hunt spot savings).
	SpotOnly bool
	// Hysteresis keeps the current deployment unless a candidate beats
	// its cost-per-work by this relative margin (0 = 0.10) — switching
	// costs a full reload, so thrashing on price noise is never worth
	// it.
	Hysteresis float64
	// Simple drops the checkpoint/rework overhead terms from the
	// cost-per-work score (SpotOn's plainer greedy core).
	Simple bool
}

// NewGreedy builds the Proteus-like baseline.
func NewGreedy(env *Env) *Greedy { return &Greedy{Env: env, SpotOnly: true} }

// Name implements Provisioner.
func (g *Greedy) Name() string { return "proteus" }

// costPerWork estimates $(per unit of normalized work) for cs at now.
func (g *Greedy) costPerWork(cs *ConfigStats, now units.Seconds) float64 {
	if cs.Omega <= 0 {
		return math.Inf(1)
	}
	rate := float64(g.Env.CurrentRate(cs, now))
	overhead := 1.0
	if cs.Config.Transient && !g.Simple {
		// Checkpoint time and expected half-interval rework per MTTF.
		if !math.IsInf(float64(cs.Ckpt), 1) && cs.Ckpt > 0 {
			overhead += float64(cs.Save) / float64(cs.Ckpt)
		}
		if !math.IsInf(float64(cs.MTTF), 1) && cs.MTTF > 0 {
			overhead += float64(cs.Ckpt) / 2 / float64(cs.MTTF)
		}
	}
	return rate * overhead / cs.Omega
}

// Decide implements Provisioner.
func (g *Greedy) Decide(s State) (Decision, error) {
	best := Decision{ExpectedCost: Infeasible}
	bestScore := math.Inf(1)
	for pass := 0; pass < 2; pass++ {
		for i := range g.Env.Stats {
			cs := &g.Env.Stats[i]
			if g.SpotOnly && pass == 0 && !cs.Config.Transient {
				continue
			}
			if pass == 1 && cs.Config.Transient {
				continue
			}
			// Skip spot configs whose market is currently spiking
			// (requests would not be fulfilled).
			if cs.Config.Transient {
				if ok, err := g.Env.Market.Available(cs.Config, s.Now); err == nil && !ok {
					continue
				}
			}
			score := g.costPerWork(cs, s.Now)
			if s.Current != nil && cs.Config.ID() == s.Current.ID() {
				h := g.Hysteresis
				if h == 0 {
					h = 0.10
				}
				score /= 1 + h
			}
			if score < bestScore {
				bestScore = score
				keep := s.Current != nil && cs.Config.ID() == s.Current.ID()
				best = Decision{
					Config:         cs.Config,
					KeepCurrent:    keep,
					Replicas:       1,
					ExpectedCost:   units.USD(score * s.WorkLeft * float64(g.Env.LRC.Exec)),
					UseCheckpoints: cs.Config.Transient,
				}
			}
		}
		if !math.IsInf(bestScore, 1) {
			break // found a spot candidate; skip the on-demand pass
		}
	}
	return best, nil
}

// SpotOn is the SpotOn-style provisioner (§8.2): the same greedy
// cost-per-work core, but it additionally chooses between (i) a single
// transient deployment with periodic checkpointing and (ii) replicated
// transient deployments (different markets) with checkpointing off.
type SpotOn struct {
	Env *Env
}

// NewSpotOn builds the baseline.
func NewSpotOn(env *Env) *SpotOn { return &SpotOn{Env: env} }

// Name implements Provisioner.
func (s *SpotOn) Name() string { return "spoton" }

// Decide implements Provisioner.
func (s *SpotOn) Decide(st State) (Decision, error) {
	g := &Greedy{Env: s.Env, SpotOnly: true, Simple: true, Hysteresis: 0.05}
	base, err := g.Decide(st)
	if err != nil {
		return Decision{}, err
	}
	if !base.Config.Transient {
		return base, nil
	}
	cs, ok := s.Env.StatsFor(base.Config)
	if !ok {
		return base, nil
	}
	// Replication candidate: cheapest feasible transient config on a
	// *different* instance type (decorrelated market).
	var buddy *ConfigStats
	buddyRate := math.Inf(1)
	for i := range s.Env.Stats {
		c := &s.Env.Stats[i]
		if !c.Config.Transient || c.Config.Instance.Name == cs.Config.Instance.Name {
			continue
		}
		if ok, err := s.Env.Market.Available(c.Config, st.Now); err != nil || !ok {
			continue
		}
		if r := float64(s.Env.CurrentRate(c, st.Now)); r < buddyRate {
			buddy, buddyRate = c, r
		}
	}
	// Compare overheads: checkpointing costs save/ckpt plus expected
	// rework; replication doubles the spend but loses (almost) nothing
	// to single evictions.
	ckptOverhead := 1.0
	if !math.IsInf(float64(cs.Ckpt), 1) && cs.Ckpt > 0 {
		ckptOverhead += float64(cs.Save)/float64(cs.Ckpt) + float64(cs.Ckpt)/2/float64(cs.MTTF)
	}
	if buddy != nil {
		primaryRate := float64(s.Env.CurrentRate(cs, st.Now))
		replOverhead := (primaryRate + buddyRate) / primaryRate
		if replOverhead < ckptOverhead {
			base.Replicas = 2
			base.Extra = []cloud.Config{buddy.Config}
			base.UseCheckpoints = false
		}
	}
	return base, nil
}

// DeadlineProtection is the "+DP" wrapper the paper derives for the
// baselines (§8.2): delegate to the inner provisioner while slack
// remains to tolerate another eviction, then switch to the last-resort
// configuration for good.
type DeadlineProtection struct {
	Inner Provisioner
	Env   *Env
	// Margin is extra safety slack retained before tripping (0 = none).
	Margin units.Seconds

	tripped bool
}

// NewDP wraps a provisioner with deadline protection.
func NewDP(inner Provisioner, env *Env) *DeadlineProtection {
	return &DeadlineProtection{Inner: inner, Env: env}
}

// Name implements Provisioner.
func (d *DeadlineProtection) Name() string { return d.Inner.Name() + "+dp" }

// Reset clears the trip latch (call between simulated runs).
func (d *DeadlineProtection) Reset() { d.tripped = false }

// lrcDecision is the latched last-resort verdict.
func (d *DeadlineProtection) lrcDecision(s State) Decision {
	keep := s.Current != nil && s.Current.ID() == d.Env.LRC.Config.ID()
	return Decision{
		Config:       d.Env.LRC.Config,
		KeepCurrent:  keep,
		Replicas:     1,
		ExpectedCost: d.Env.LRCFinishCost(s.WorkLeft),
	}
}

// Decide implements Provisioner. The wrapper trips when the slack can
// no longer absorb the *next* transient exposure window — the upcoming
// segment (bounded by the checkpoint interval) plus deployment and save
// overheads, all of which an eviction could waste entirely.
func (d *DeadlineProtection) Decide(s State) (Decision, error) {
	if d.tripped {
		return d.lrcDecision(s), nil
	}
	if d.Env.Slack(s) <= d.Margin {
		d.tripped = true
		return d.lrcDecision(s), nil
	}
	inner, err := d.Inner.Decide(s)
	if err != nil {
		return Decision{}, err
	}
	if !inner.Config.Transient {
		// The inner provisioner may fall back to a *cheap* on-demand
		// configuration (e.g. during a market spike); accept it only if
		// that configuration still meets the deadline, else trip to the
		// last resort.
		if cs, ok := d.Env.StatsFor(inner.Config); ok {
			need := float64(cs.Fixed) + s.WorkLeft*float64(cs.Exec)
			if units.Seconds(need) <= s.Horizon() {
				return inner, nil
			}
		}
		d.tripped = true
		return d.lrcDecision(s), nil
	}
	cs, ok := d.Env.StatsFor(inner.Config)
	if !ok {
		return d.lrcDecision(s), nil
	}
	segment := units.Min(units.Seconds(s.WorkLeft*float64(cs.Exec)), cs.Ckpt)
	if inner.MaxRun > 0 {
		segment = units.Min(segment, inner.MaxRun)
	}
	exposure := segment + cs.Save
	if inner.KeepCurrent {
		exposure += cs.Save
	} else {
		exposure += cs.Boot + cs.Load
	}
	if d.Env.Slack(s)-exposure <= d.Margin {
		d.tripped = true
		return d.lrcDecision(s), nil
	}
	return inner, nil
}

// OnDemandOnly always runs the last-resort configuration — the
// normalisation baseline of every cost figure.
type OnDemandOnly struct {
	Env *Env
}

// Name implements Provisioner.
func (o *OnDemandOnly) Name() string { return "ondemand" }

// Decide implements Provisioner.
func (o *OnDemandOnly) Decide(s State) (Decision, error) {
	keep := s.Current != nil && s.Current.ID() == o.Env.LRC.Config.ID()
	return Decision{
		Config:       o.Env.LRC.Config,
		KeepCurrent:  keep,
		Replicas:     1,
		ExpectedCost: o.Env.LRCFinishCost(s.WorkLeft),
	}, nil
}
