package core

import (
	"math"

	"hourglass/internal/units"
)

// SlackAware is the Hourglass provisioning strategy (§5): pick the
// configuration minimising the expected cost EC(t,w) of finishing the
// job before the deadline, computed with the efficient approximation
// of §5.3 — on success a configuration keeps running through
// consecutive checkpoint intervals, and the failure integral collapses
// to a single evaluation at the configuration's MTTF.
type SlackAware struct {
	Env *Env
	// MinFailStep bounds how little slack a simulated failure consumes
	// (0 = 60 s); it guarantees recursion termination.
	MinFailStep units.Seconds
	// TimeBucket/WorkBucket discretise the memoisation grid. Zero
	// values auto-scale to the decision horizon: the time bucket is
	// max(60 s, horizon/200) and the work bucket 1/200, keeping the
	// dynamic program near-constant cost regardless of job length.
	TimeBucket units.Seconds
	WorkBucket float64
	// OpBudget caps branch evaluations per decision; beyond it the
	// conservative last-resort cost is substituted (0 = 2e6).
	OpBudget int64
	// WarningWindow enables the §9 extension: when the provider warns
	// this long before evictions and the window fits a checkpoint,
	// the failure branch credits the progress made before the eviction
	// instead of assuming total loss.
	WarningWindow units.Seconds

	// LastOps reports the evaluations used by the most recent decision.
	LastOps int64

	// scratch is reused across Decide calls within one job run: the
	// memoised recursion depends only on absolute time, work and the
	// deadline (deep levels price at historical averages), so entries
	// stay valid while the deadline is unchanged.
	scratch      *awScratch
	scratchDL    units.Seconds
	scratchValid bool
}

// NewSlackAware builds the strategy with default discretisation.
func NewSlackAware(env *Env) *SlackAware {
	return &SlackAware{Env: env, MinFailStep: 60, OpBudget: 2e6}
}

// Name implements Provisioner.
func (p *SlackAware) Name() string { return "hourglass" }

type ecKey struct {
	t int64
	w int64
}

type ecMemo map[ecKey]units.USD

type branchKey struct {
	cfg   int
	t     int64
	w     int64
	u     int64
	fresh bool
}

// awScratch is the per-decision working state.
type awScratch struct {
	full       ecMemo
	branch     map[branchKey]units.USD
	ops        int64
	budget     int64
	timeBucket units.Seconds
	workBucket float64
}

func (p *SlackAware) newScratch(horizon units.Seconds) *awScratch {
	budget := p.OpBudget
	if budget == 0 {
		budget = 2e6
	}
	tb := p.TimeBucket
	if tb == 0 {
		tb = units.Max(60, horizon/200)
	}
	wb := p.WorkBucket
	if wb == 0 {
		wb = 1.0 / 200
	}
	return &awScratch{full: ecMemo{}, branch: map[branchKey]units.USD{},
		budget: budget, timeBucket: tb, workBucket: wb}
}

func (sc *awScratch) key(t units.Seconds, w float64) ecKey {
	return ecKey{int64(t / sc.timeBucket), int64(w / sc.workBucket)}
}

// Decide implements Provisioner: evaluate EC(t,w)|c for every feasible
// configuration (continuing the current one counts its lower overhead)
// and return the argmin. The last-resort configuration is always a
// candidate, so a decision always exists.
func (p *SlackAware) Decide(s State) (Decision, error) {
	if !p.scratchValid || p.scratchDL != s.Deadline {
		p.scratch = p.newScratch(s.Horizon())
		p.scratchDL = s.Deadline
		p.scratchValid = true
	}
	sc := p.scratch
	sc.ops = 0
	best := Decision{ExpectedCost: Infeasible}
	for i := range p.Env.Stats {
		cs := &p.Env.Stats[i]
		fresh := s.Current == nil || cs.Config.ID() != s.Current.ID()
		uptime := units.Seconds(0)
		if !fresh {
			uptime = s.Uptime
		}
		// A spot request during a price spike is not fulfilled: skip
		// configurations whose market is currently above the bid.
		if fresh && cs.Config.Transient {
			if ok, err := p.Env.Market.Available(cs.Config, s.Now); err == nil && !ok {
				continue
			}
		}
		// Immediate intervals are priced at the current market rate
		// (§5.1 "the price charged by the service provider at the
		// provisioning moment"); deeper recursion uses historical
		// averages.
		rate := p.Env.CurrentRate(cs, s.Now)
		cost := p.branchCost(sc, i, s.Now, s.WorkLeft, s.Deadline, uptime, fresh, rate, 0)
		if cost < best.ExpectedCost ||
			(cost == best.ExpectedCost && !best.KeepCurrent && !fresh) {
			best = Decision{
				Config:         cs.Config,
				KeepCurrent:    !fresh,
				Replicas:       1,
				ExpectedCost:   cost,
				UseCheckpoints: cs.Config.Transient,
			}
			if cs.Config.Transient {
				// Never run past the planned useful interval: that is
				// what preserves the always-meet-deadline invariant.
				best.MaxRun = p.Env.Useful(cs, s, fresh)
			}
		}
	}
	p.LastOps = sc.ops
	if math.IsInf(float64(best.ExpectedCost), 1) {
		// No transient plan fits: fall back to the last resort.
		keep := s.Current != nil && s.Current.ID() == p.Env.LRC.Config.ID()
		return Decision{
			Config:       p.Env.LRC.Config,
			KeepCurrent:  keep,
			Replicas:     1,
			ExpectedCost: p.Env.LRCFinishCost(s.WorkLeft),
		}, nil
	}
	return best, nil
}

// Evaluate computes EC(t,w) for a fresh decision under historical
// average prices (the apples-to-apples quantity Figure 9 compares
// against the exact integral).
func (p *SlackAware) Evaluate(s State) units.USD {
	sc := p.newScratch(s.Horizon())
	v := p.ecFull(sc, s.Now, s.WorkLeft, s.Deadline, 0)
	p.LastOps = sc.ops
	return v
}

// maxRecursion caps recursion depth as a safety net.
const maxRecursion = 4096

// branchCost computes EC(t,w)|c (§5.2 cases 3 and 4) under the §5.3
// approximation. Depth-0 calls use live market rates and are not
// memoised; deeper calls use historical average rates and are.
func (p *SlackAware) branchCost(sc *awScratch, idx int, t units.Seconds, w float64,
	deadline units.Seconds, uptime units.Seconds, fresh bool, rate units.USD, depth int) units.USD {
	if w <= 0 {
		return 0
	}
	sc.ops++
	if depth > maxRecursion || sc.ops > sc.budget {
		return p.Env.LRCFinishCost(w)
	}
	memoise := depth > 0
	var bk branchKey
	if memoise {
		ek := sc.key(t, w)
		bk = branchKey{cfg: idx, t: ek.t, w: ek.w, u: int64(uptime / sc.timeBucket), fresh: fresh}
		if v, ok := sc.branch[bk]; ok {
			return v
		}
		// Conservative seed breaks cycles introduced by bucketing.
		sc.branch[bk] = p.Env.LRCFinishCost(w)
	}
	v := p.branchCostUncached(sc, idx, t, w, deadline, uptime, fresh, rate, depth)
	if memoise {
		sc.branch[bk] = v
	}
	return v
}

func (p *SlackAware) branchCostUncached(sc *awScratch, idx int, t units.Seconds, w float64,
	deadline units.Seconds, uptime units.Seconds, fresh bool, rate units.USD, depth int) units.USD {
	cs := &p.Env.Stats[idx]
	st := State{Now: t, WorkLeft: w, Deadline: deadline}
	if !cs.Config.Transient {
		// Case 3: on-demand — deterministic completion. We also charge
		// the boot/load overhead (machines bill from boot), a small
		// refinement over the paper's formula.
		overhead := cs.Save
		if fresh {
			overhead = cs.Fixed
		}
		total := float64(overhead) + w*float64(cs.Exec)
		if units.Seconds(total) > st.Horizon() {
			return Infeasible
		}
		return units.USD(float64(rate) * total)
	}
	// Case 4: transient.
	useful := p.Env.Useful(cs, st, fresh)
	if useful <= 0 {
		return Infeasible
	}
	setup := units.Seconds(0)
	if fresh {
		setup = cs.Boot + cs.Load
	}
	tint := setup + useful + cs.Save
	pFail := p.Env.EvictionProb(cs, uptime, tint)
	progress := p.Env.ExpectedProgress(cs, st, fresh)

	// Success branch: keep running this configuration (approximation:
	// reconfigurations not due to evictions are rare).
	wNext := w - progress
	succTail := p.branchCost(sc, idx, t+tint, wNext, deadline, uptime+tint, false, cs.AvgRate, depth+1)
	if math.IsInf(float64(succTail), 1) && wNext > 0 {
		// Continuing c is no longer viable: finish on the last resort.
		succTail = p.Env.LRCFinishCost(wNext)
	}
	succ := units.USD(float64(rate)*float64(tint)) + succTail

	// Failure branch, evaluated once at the MTTF (not integrated): the
	// work since the last checkpoint is lost, time burns, and a fresh
	// decision is made. With an eviction warning long enough to fit an
	// emergency checkpoint (§9), the progress up to the eviction is
	// credited instead.
	failAt := units.Clamp(cs.MTTF-uptime, p.MinFailStep, tint)
	wAtFail := w
	if p.WarningWindow >= cs.Save {
		computeTime := units.Clamp(failAt-setup, 0, useful)
		wAtFail = w - cs.Omega*float64(computeTime)/float64(p.Env.LRC.Exec)
		if wAtFail < 0 {
			wAtFail = 0
		}
	}
	fail := units.USD(float64(rate)*float64(failAt)) + p.ecFull(sc, t+failAt, wAtFail, deadline, depth+1)

	return units.USD(pFail*float64(fail) + (1-pFail)*float64(succ))
}

// ecFull is EC(t,w): the cost of the best configuration chosen fresh
// at (t,w), memoised on a discretised grid. Used for post-eviction
// follow-up costs, where current prices are unknowable and historical
// averages are used instead.
func (p *SlackAware) ecFull(sc *awScratch, t units.Seconds, w float64,
	deadline units.Seconds, depth int) units.USD {
	if w <= 0 {
		return 0
	}
	sc.ops++
	if depth > maxRecursion || sc.ops > sc.budget {
		return p.Env.LRCFinishCost(w)
	}
	k := sc.key(t, w)
	if v, ok := sc.full[k]; ok {
		return v
	}
	// Seed with the last-resort cost so cycles resolve conservatively.
	sc.full[k] = p.Env.LRCFinishCost(w)
	best := Infeasible
	for i := range p.Env.Stats {
		cs := &p.Env.Stats[i]
		c := p.branchCost(sc, i, t, w, deadline, 0, true, cs.AvgRate, depth+1)
		if c < best {
			best = c
		}
	}
	if math.IsInf(float64(best), 1) {
		best = p.Env.LRCFinishCost(w)
	}
	sc.full[k] = best
	return best
}
