// Package core implements the paper's primary contribution: the
// slack-aware provisioning strategy of §5 — the expected-cost model
// EC(t,w), its efficient approximation (§5.3) and the exact integral
// formulation (§5.2) — together with the baseline provisioners the
// evaluation compares against (Proteus-style greedy, SpotOn, the
// deadline-protection wrapper, and on-demand only).
package core

import (
	"fmt"
	"math"

	"hourglass/internal/checkpoint"
	"hourglass/internal/cloud"
	"hourglass/internal/perfmodel"
	"hourglass/internal/units"
)

// ConfigStats caches the Table 1 quantities for one configuration.
type ConfigStats struct {
	Config cloud.Config
	Exec   units.Seconds // t_exec: full-job compute time on this config
	Load   units.Seconds // t_load
	Save   units.Seconds // t_save
	Boot   units.Seconds // t_boot
	Fixed  units.Seconds // t_fixed = boot + load + save
	Omega  float64       // ω_c = t_lrc_exec / t_exec
	MTTF   units.Seconds // mean time to eviction (∞ for on-demand)
	Ckpt   units.Seconds // optimal checkpoint interval (Daly)
	// AvgRate is the historical mean price per second (used for
	// future-looking recursion where current prices are unknowable).
	AvgRate units.USD
}

// Env bundles everything a provisioner consults: the job, the
// performance model, the configuration set with cached stats, the
// market (current prices) and the eviction model (historical CDFs).
type Env struct {
	Job       perfmodel.Job
	Model     *perfmodel.Model
	Market    *cloud.Market
	Evictions *cloud.EvictionModel

	LRC      ConfigStats
	Stats    []ConfigStats // feasible configs only, LRC included
	statsMap map[string]*ConfigStats

	// OfflineCost is the price of the loading strategy's offline
	// partitioning phase (billed on one on-demand machine of the LRC
	// type); §8.2 includes it in every reported cost. Zero for
	// strategies without an offline phase.
	OfflineCost units.USD
}

// NewEnv validates the configuration set, locates the last-resort
// configuration and precomputes per-config statistics.
func NewEnv(job perfmodel.Job, model *perfmodel.Model, configs []cloud.Config,
	market *cloud.Market, evictions *cloud.EvictionModel) (*Env, error) {
	lrcCfg, err := model.LRC(job, configs)
	if err != nil {
		return nil, err
	}
	env := &Env{Job: job, Model: model, Market: market, Evictions: evictions,
		statsMap: map[string]*ConfigStats{}}
	for _, c := range configs {
		if !model.Feasible(job, c) {
			continue
		}
		cs, err := env.buildStats(c, lrcCfg)
		if err != nil {
			return nil, err
		}
		env.Stats = append(env.Stats, cs)
	}
	lrcStats, err := env.buildStats(lrcCfg, lrcCfg)
	if err != nil {
		return nil, err
	}
	env.LRC = lrcStats
	for i := range env.Stats {
		env.statsMap[env.Stats[i].Config.ID()] = &env.Stats[i]
	}
	if len(env.Stats) == 0 {
		return nil, fmt.Errorf("core: no feasible configuration for job %s", job.Name)
	}
	env.OfflineCost = units.USD(float64(model.OfflineTime(job)) *
		float64(lrcCfg.Instance.OnDemand.PerSecond()))
	return env, nil
}

func (e *Env) buildStats(c cloud.Config, lrc cloud.Config) (ConfigStats, error) {
	cs := ConfigStats{
		Config: c,
		Exec:   e.Model.ExecTime(e.Job, c, lrc),
		Load:   e.Model.LoadTime(e.Job, c),
		Save:   e.Model.SaveTime(e.Job, c),
		Boot:   e.Model.Boot(c),
		Omega:  e.Model.NormalizedCapacity(e.Job, c, lrc),
	}
	cs.Fixed = cs.Boot + cs.Load + cs.Save
	if c.Transient {
		mttf, err := e.Evictions.MTTF(c.Instance.Name)
		if err != nil {
			return ConfigStats{}, err
		}
		cs.MTTF = mttf
		cs.Ckpt = checkpoint.DalyInterval(cs.Save, mttf)
		avg, err := e.Evictions.AvgSpotPrice(c.Instance.Name)
		if err != nil {
			return ConfigStats{}, err
		}
		cs.AvgRate = units.USD(avg / float64(units.Hour) * float64(c.Count))
	} else {
		cs.MTTF = units.Seconds(math.Inf(1))
		cs.Ckpt = units.Seconds(math.Inf(1))
		cs.AvgRate = c.OnDemandRate()
	}
	return cs, nil
}

// MarketTrace exposes the price trace backing an instance type.
func (e *Env) MarketTrace(name string) (*cloud.PriceTrace, error) {
	return e.Market.TraceFor(name)
}

// StatsFor returns the cached stats of a configuration.
func (e *Env) StatsFor(c cloud.Config) (*ConfigStats, bool) {
	cs, ok := e.statsMap[c.ID()]
	return cs, ok
}

// State is a provisioning decision point.
type State struct {
	// Now is the current virtual time (also indexes the price trace).
	Now units.Seconds
	// WorkLeft is w(t) ∈ [0,1], the fraction of the job remaining.
	WorkLeft float64
	// Deadline is the absolute termination deadline t_deadline.
	Deadline units.Seconds
	// Current is the configuration currently deployed (nil if none —
	// job start or just-evicted).
	Current *cloud.Config
	// Uptime is how long Current has been up (conditions the eviction
	// CDF).
	Uptime units.Seconds
}

// Horizon is the time remaining to the deadline.
func (s State) Horizon() units.Seconds { return s.Deadline - s.Now }

// Slack implements the paper's slack(t) = horizon(t) − t_lrc_fixed −
// w(t)·t_lrc_exec.
func (e *Env) Slack(s State) units.Seconds {
	return s.Horizon() - e.LRC.Fixed - units.Seconds(s.WorkLeft*float64(e.LRC.Exec))
}

// Useful implements useful(c,t) = min(w·t_exec, slack − overhead,
// t_ckpt), where overhead is t_fixed for a fresh deployment of c and
// t_save when c keeps running (§5.1).
func (e *Env) Useful(cs *ConfigStats, s State, fresh bool) units.Seconds {
	overhead := cs.Save
	if fresh {
		overhead = cs.Fixed
	}
	remainExec := units.Seconds(s.WorkLeft * float64(cs.Exec))
	u := units.Min(remainExec, e.Slack(s)-overhead)
	return units.Min(u, cs.Ckpt)
}

// ExpectedProgress is ω_c·useful(c,t)/t_lrc_exec: the work fraction a
// useful interval completes.
func (e *Env) ExpectedProgress(cs *ConfigStats, s State, fresh bool) float64 {
	u := e.Useful(cs, s, fresh)
	if u <= 0 {
		return 0
	}
	return cs.Omega * float64(u) / float64(e.LRC.Exec)
}

// LRCFinishCost is the deterministic cost of completing work w on the
// last-resort configuration starting fresh at time t.
func (e *Env) LRCFinishCost(w float64) units.USD {
	dur := float64(e.LRC.Fixed) + w*float64(e.LRC.Exec)
	return units.USD(float64(e.LRC.Config.OnDemandRate()) * dur)
}

// CurrentRate returns the price per second of c at time now, falling
// back to the historical average if the market lookup fails.
func (e *Env) CurrentRate(cs *ConfigStats, now units.Seconds) units.USD {
	r, err := e.Market.Rate(cs.Config, now)
	if err != nil {
		return cs.AvgRate
	}
	return r
}

// EvictionProb returns P(evicted within the next dt | survived uptime
// u) for a transient configuration; 0 for on-demand.
func (e *Env) EvictionProb(cs *ConfigStats, uptime, dt units.Seconds) float64 {
	if !cs.Config.Transient || dt <= 0 {
		return 0
	}
	name := cs.Config.Instance.Name
	fa := e.Evictions.CDF(name, uptime)
	fb := e.Evictions.CDF(name, uptime+dt)
	if fa >= 1 {
		return 1
	}
	return (fb - fa) / (1 - fa)
}

// Decision is a provisioner's verdict.
type Decision struct {
	// Config to deploy (or keep) now.
	Config cloud.Config
	// KeepCurrent is true when Config equals the running deployment
	// (no teardown, no reload).
	KeepCurrent bool
	// Replicas > 1 requests SpotOn-style replicated deployments
	// (additional replicas use distinct instance types); checkpointing
	// is disabled while replicated.
	Replicas int
	// Extra holds the additional replica configurations when
	// Replicas > 1 (Config is the primary).
	Extra []cloud.Config
	// ExpectedCost is the provisioner's estimate of finishing cost.
	ExpectedCost units.USD
	// UseCheckpoints reports whether periodic checkpointing is on.
	UseCheckpoints bool
	// MaxRun bounds the compute time before the provisioner must be
	// consulted again (the planned useful interval, which keeps the
	// slack invariant); 0 = no bound.
	MaxRun units.Seconds
}

// Provisioner decides which configuration to run next. Implementations
// are consulted at job start, after evictions, and at checkpoint
// boundaries (§4 step 4).
type Provisioner interface {
	Name() string
	Decide(s State) (Decision, error)
}

// Infeasible is the sentinel "fails deadline" cost (second EC case).
var Infeasible = units.USD(math.Inf(1))
