package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"hourglass/internal/cloud"
)

func TestZeroPolicyIsTransparent(t *testing.T) {
	s := Wrap(cloud.NewDatastore(), Policy{})
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get("k")
	if err != nil || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, err)
	}
	if !s.Exists("k") || len(s.Keys()) != 1 {
		t.Error("metadata ops broken")
	}
	s.Delete("k")
	if s.Exists("k") {
		t.Error("delete broken")
	}
	st := s.Stats()
	if st.Errors+st.ReadCorruptions+st.WriteCorruptions+st.Truncations != 0 {
		t.Errorf("zero policy injected faults: %+v", st)
	}
}

func TestTransientErrorsAreBounded(t *testing.T) {
	// PError=1 with MaxConsecutive=2: exactly two failures per key,
	// then the operation must go through.
	s := Wrap(cloud.NewDatastore(), Policy{Seed: 1, PError: 1, MaxConsecutive: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := s.Put("k", []byte("v")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
			continue
		}
		break
	}
	if fails != 2 {
		t.Fatalf("injected %d consecutive failures, want 2", fails)
	}
	if !s.Exists("k") {
		t.Fatal("write never landed")
	}
}

func TestReadCorruptionIsTransient(t *testing.T) {
	base := cloud.NewDatastore()
	payload := bytes.Repeat([]byte{0x11}, 256)
	base.Put("obj", payload)

	s := Wrap(base, Policy{Seed: 3, PReadCorrupt: 1})
	data, _, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(data, payload) {
		t.Fatal("read corruption did not fire")
	}
	// The durable object is untouched: a direct read is clean.
	clean, _, _ := base.Get("obj")
	if !bytes.Equal(clean, payload) {
		t.Fatal("read-side corruption leaked into the store")
	}
}

func TestWriteCorruptionIsDurable(t *testing.T) {
	base := cloud.NewDatastore()
	s := Wrap(base, Policy{Seed: 5, PWriteCorrupt: 1})
	payload := bytes.Repeat([]byte{0x22}, 256)
	if _, err := s.Put("obj", payload); err != nil {
		t.Fatal(err)
	}
	stored, _, _ := base.Get("obj")
	if bytes.Equal(stored, payload) {
		t.Fatal("write corruption did not fire")
	}
	// The caller's buffer must not have been scribbled on.
	if !bytes.Equal(payload, bytes.Repeat([]byte{0x22}, 256)) {
		t.Fatal("Put mutated the caller's buffer")
	}
}

func TestTruncationShortensReads(t *testing.T) {
	base := cloud.NewDatastore()
	base.Put("obj", bytes.Repeat([]byte{0x33}, 512))
	s := Wrap(base, Policy{Seed: 7, PTruncate: 1})
	data, _, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= 512 {
		t.Fatalf("truncation did not fire: %d bytes", len(data))
	}
}

func TestLatencyIsAdded(t *testing.T) {
	s := Wrap(cloud.NewDatastore(), Policy{Seed: 9, MaxLatency: 10})
	var base, injected float64
	for i := 0; i < 20; i++ {
		tt, err := s.Put("k", bytes.Repeat([]byte{1}, 1000))
		if err != nil {
			t.Fatal(err)
		}
		injected += float64(tt)
		base += 1000.0 / 250e6
	}
	if injected <= base {
		t.Errorf("no latency added: %v vs %v", injected, base)
	}
	if s.Stats().AddedLatency <= 0 {
		t.Error("latency not accounted")
	}
}

func TestScheduleIsDeterministic(t *testing.T) {
	run := func() Stats {
		s := Wrap(cloud.NewDatastore(), Policy{
			Seed: 42, PError: 0.3, PWriteCorrupt: 0.2, PReadCorrupt: 0.2, PTruncate: 0.1,
		})
		for i := 0; i < 50; i++ {
			s.Put("k", []byte("payload-payload"))
			s.Get("k")
		}
		return s.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
}
