// Package faultinject is a seeded, deterministic fault-injection layer
// for the recovery stack. It wraps any cloud.BlobStore with a
// misbehaving façade — transient request errors, added (virtual)
// latency, corrupted and truncated payloads — so the checkpoint,
// snapshot and restore paths can be driven through their rarest
// branches systematically instead of waiting for production to find
// them. The same seed always produces the same fault schedule, so a
// chaos run that trips an invariant is replayable bit-for-bit.
//
// The design splits faults along the axis that matters for recovery
// code:
//
//   - transient faults (request errors, read-side corruption and
//     truncation, latency) go away when the operation is retried —
//     they exercise the retry/backoff and checksum-reread paths;
//   - durable faults (write-side corruption) persist in the store —
//     they exercise detection (CRC mismatch) and fallback (skip the
//     bad checkpoint, restore an older one, or start fresh).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

// ErrInjected marks every transient error synthesised by a Store, so
// tests can tell injected failures from real bugs with errors.Is.
var ErrInjected = errors.New("faultinject: injected transient error")

// Policy is a seeded schedule of faults. Probabilities are per
// operation; the zero value injects nothing.
type Policy struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// PError is the probability that a Put or Get fails with a
	// transient error (wrapping ErrInjected) without touching data.
	PError float64
	// PWriteCorrupt is the probability that a Put silently stores a
	// corrupted payload — a *durable* fault that retries cannot undo;
	// only checksum validation on the read side catches it.
	PWriteCorrupt float64
	// PReadCorrupt is the probability that a Get returns a corrupted
	// copy of an intact object — a transient fault a checksum-driven
	// retry recovers from.
	PReadCorrupt float64
	// PTruncate is the probability that a Get returns only a prefix of
	// the object (a partial download).
	PTruncate float64
	// MaxLatency, when positive, adds a uniform [0, MaxLatency) virtual
	// delay to each operation's reported transfer time.
	MaxLatency units.Seconds
	// MaxConsecutive bounds consecutive transient faults per key
	// (0 = 3), so a retry loop with a larger attempt budget always
	// converges. Durable write corruption is not bounded — it is the
	// job of the read path to survive it.
	MaxConsecutive int
}

// Stats counts what a Store injected (one atomic snapshot via Stats()).
type Stats struct {
	Puts, Gets       int64
	Errors           int64
	WriteCorruptions int64
	ReadCorruptions  int64
	Truncations      int64
	AddedLatency     units.Seconds
}

// Store wraps a BlobStore with a Policy. It is safe for concurrent
// use; the fault stream is drawn from one mutex-guarded generator, so
// a fixed seed gives a reproducible schedule for a fixed operation
// order.
type Store struct {
	base   cloud.BlobStore
	policy Policy

	mu          sync.Mutex
	rng         *rand.Rand
	consecutive map[string]int
	stats       Stats
}

var _ cloud.BlobStore = (*Store)(nil)

// Wrap builds a fault-injecting façade over base.
func Wrap(base cloud.BlobStore, p Policy) *Store {
	if p.MaxConsecutive <= 0 {
		p.MaxConsecutive = 3
	}
	return &Store{
		base:        base,
		policy:      p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		consecutive: map[string]int{},
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// roll draws the fault verdict for one operation on key. It owns all
// rng access so the schedule is a single deterministic stream.
func (s *Store) roll(key string, isPut bool) (fail, corrupt, truncate bool, latency units.Seconds, rng func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if isPut {
		s.stats.Puts++
	} else {
		s.stats.Gets++
	}
	if s.policy.MaxLatency > 0 {
		latency = units.Seconds(s.rng.Float64() * float64(s.policy.MaxLatency))
		s.stats.AddedLatency += latency
	}
	if s.rng.Float64() < s.policy.PError && s.consecutive[key] < s.policy.MaxConsecutive {
		s.consecutive[key]++
		s.stats.Errors++
		fail = true
		return
	}
	s.consecutive[key] = 0
	if isPut {
		if s.rng.Float64() < s.policy.PWriteCorrupt {
			s.stats.WriteCorruptions++
			corrupt = true
		}
	} else {
		if s.rng.Float64() < s.policy.PReadCorrupt {
			s.stats.ReadCorruptions++
			corrupt = true
		}
		if s.rng.Float64() < s.policy.PTruncate {
			s.stats.Truncations++
			truncate = true
		}
	}
	// Hand back a locked accessor for follow-up draws (corruption
	// offsets), keeping every random decision on the one stream.
	rng = func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rng.Float64()
	}
	return
}

// mangle flips a few bytes of data in place, deterministically under
// the store's rng stream.
func mangle(data []byte, draw func() float64) {
	if len(data) == 0 {
		return
	}
	flips := 1 + int(draw()*3)
	for i := 0; i < flips; i++ {
		pos := int(draw() * float64(len(data)))
		if pos >= len(data) {
			pos = len(data) - 1
		}
		data[pos] ^= 0xA5
	}
}

// Put implements cloud.BlobStore. A transient fault fails the write
// before anything is stored; a durable fault stores a corrupted copy
// while reporting success.
func (s *Store) Put(key string, data []byte) (units.Seconds, error) {
	fail, corrupt, _, latency, draw := s.roll(key, true)
	if fail {
		return latency, fmt.Errorf("faultinject: put %q: %w", key, ErrInjected)
	}
	if corrupt {
		mutated := append([]byte(nil), data...)
		mangle(mutated, draw)
		data = mutated
	}
	t, err := s.base.Put(key, data)
	return t + latency, err
}

// Get implements cloud.BlobStore. Read-side corruption and truncation
// only touch the returned copy — the durable object stays intact, so a
// retry observes clean bytes.
func (s *Store) Get(key string) ([]byte, units.Seconds, error) {
	fail, corrupt, truncate, latency, draw := s.roll(key, false)
	if fail {
		return nil, latency, fmt.Errorf("faultinject: get %q: %w", key, ErrInjected)
	}
	data, t, err := s.base.Get(key)
	if err != nil {
		return nil, t + latency, err
	}
	if truncate && len(data) > 0 {
		data = data[:int(draw()*float64(len(data)))]
	}
	if corrupt {
		mangle(data, draw)
	}
	return data, t + latency, nil
}

// Delete implements cloud.BlobStore (metadata ops stay reliable).
func (s *Store) Delete(key string) error { return s.base.Delete(key) }

// Exists implements cloud.BlobStore.
func (s *Store) Exists(key string) bool { return s.base.Exists(key) }

// Keys implements cloud.BlobStore.
func (s *Store) Keys() []string { return s.base.Keys() }
