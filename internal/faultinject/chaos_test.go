package faultinject_test

// The chaos suite: ~100 seeded fault schedules driven through the
// three recovery surfaces — engine checkpoint/crash/reload cycles,
// full provisioning simulations, and controller snapshot/restore —
// asserting the paper's correctness properties hold under a
// misbehaving durable store: results stay bit-identical to fault-free
// runs, slack-aware provisioning still misses zero deadlines, recorded
// timelines validate, and durable work never regresses outside a
// rollback. Every schedule is seeded, so a failure replays exactly.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/engine"
	"hourglass/internal/faultinject"
	"hourglass/internal/graph"
	"hourglass/internal/perfmodel"
	"hourglass/internal/scheduler"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

const (
	engineSchedules     = 40
	simSchedules        = 40
	schedulerSchedules  = 20
	totalFaultSchedules = engineSchedules + simSchedules + schedulerSchedules
)

// chaosSeedBase shifts every schedule's seed, so a soak run can sweep
// a fresh seed range each night instead of replaying the same 100
// schedules forever:
//
//	go test ./internal/faultinject/ -chaos-seed-base=$(( $(date +%s) / 86400 * 100 ))
//
// The default 0 keeps CI and local runs deterministic; a reported
// failure names the effective seed, which replays with the same base.
var chaosSeedBase = flag.Int64("chaos-seed-base", 0, "offset added to every chaos schedule seed")

func TestChaosSuiteCoversAHundredSchedules(t *testing.T) {
	if totalFaultSchedules < 100 {
		t.Fatalf("chaos suite covers %d seeded schedules, want >= 100", totalFaultSchedules)
	}
}

// chaosPolicy derives a fault schedule from one seed: every
// probability is itself drawn from the seed, so the suite sweeps the
// policy space instead of hammering one operating point.
func chaosPolicy(seed int64) faultinject.Policy {
	rng := rand.New(rand.NewSource(seed))
	return faultinject.Policy{
		Seed:           seed,
		PError:         0.1 + 0.4*rng.Float64(),
		PWriteCorrupt:  0.05 + 0.15*rng.Float64(),
		PReadCorrupt:   0.05 + 0.15*rng.Float64(),
		PTruncate:      0.05 + 0.10*rng.Float64(),
		MaxLatency:     units.Seconds(5 * rng.Float64()),
		MaxConsecutive: 2,
	}
}

func undirectedRMAT(scale int, seed int64) *graph.Graph {
	p := graph.DefaultRMAT(scale, seed)
	p.Undirected = true
	return graph.RMAT(p)
}

// TestChaosEngineCrashReloadCycles drives checkpointed executions
// through seeded fault schedules with random crash points: run a few
// supersteps, checkpoint into the faulty store, maybe "crash" (drop
// all in-memory state and reload from the store — possibly restoring
// an older checkpoint, or nothing at all when every blob was
// corrupted), and continue. Whatever the schedule does, the final
// values must be bit-identical to a fault-free reference.
func TestChaosEngineCrashReloadCycles(t *testing.T) {
	type app struct {
		name  string
		graph *graph.Graph
		fresh func() engine.Program
	}
	apps := []app{
		{"pagerank", undirectedRMAT(8, 3), func() engine.Program { return &engine.PageRank{Iterations: 10} }},
		{"sssp", undirectedRMAT(8, 4), func() engine.Program { return &engine.SSSP{Source: 0} }},
		{"coloring", undirectedRMAT(8, 5), func() engine.Program { return &engine.GraphColoring{} }},
	}
	workers := []int{1, 2, 4}
	// References are per (app, workers): reductions are deterministic
	// for a fixed worker count, so the chaos run must match its own
	// fault-free shape bit for bit.
	refs := map[[2]int][]float64{}
	refFor := func(ai, w int) []float64 {
		key := [2]int{ai, w}
		if v, ok := refs[key]; ok {
			return v
		}
		res, err := engine.Run(apps[ai].graph, apps[ai].fresh(), engine.Config{Workers: w})
		if err != nil {
			t.Fatalf("%s reference: %v", apps[ai].name, err)
		}
		refs[key] = res.Values
		return res.Values
	}

	var injected int64
	for i := 0; i < engineSchedules; i++ {
		seed := *chaosSeedBase + int64(1000+i)
		a := apps[i%len(apps)]
		w := workers[i%len(workers)]
		t.Run(fmt.Sprintf("seed=%d/%s/w=%d", seed, a.name, w), func(t *testing.T) {
			store := faultinject.Wrap(cloud.NewDatastore(), chaosPolicy(seed))
			crashes := rand.New(rand.NewSource(seed * 31))
			m := &engine.CheckpointManager{Store: store, Job: fmt.Sprintf("chaos/%s/%d", a.name, seed)}

			var snap *engine.Snapshot
			cfg := engine.Config{Workers: w, StopAfter: 2}
			for steps := 0; ; steps++ {
				if steps > 300 {
					t.Fatal("no convergence in 300 crash/reload cycles")
				}
				var res engine.Result
				var err error
				if snap == nil {
					res, err = engine.Run(a.graph, a.fresh(), cfg)
				} else {
					res, err = engine.Resume(a.graph, a.fresh(), snap, cfg)
				}
				switch {
				case errors.Is(err, engine.ErrPaused):
					if _, err := m.Save(res.Snapshot); err != nil {
						t.Fatalf("save: %v", err)
					}
					if crashes.Float64() < 0.5 {
						// Crash: all in-memory state gone; a fresh manager
						// restores whatever the damaged store still holds.
						m = &engine.CheckpointManager{Store: store, Job: m.Job}
						loaded, _, err := m.Load()
						switch {
						case errors.Is(err, engine.ErrNoCheckpoint):
							snap = nil // every checkpoint corrupted: start over
						case err != nil:
							t.Fatalf("load: %v", err)
						default:
							snap = loaded
						}
					} else {
						snap = res.Snapshot
					}
				case err != nil:
					t.Fatalf("run: %v", err)
				default:
					ref := refFor(i%len(apps), w)
					for v := range ref {
						if res.Values[v] != ref[v] {
							t.Fatalf("vertex %d diverged after faults: %v != %v", v, res.Values[v], ref[v])
						}
					}
					st := store.Stats()
					injected += st.Errors + st.WriteCorruptions + st.ReadCorruptions + st.Truncations
					return
				}
			}
		})
	}
	// Short-converging apps may dodge their schedule; across the whole
	// sweep the store must have misbehaved plenty.
	if injected < int64(engineSchedules) {
		t.Errorf("only %d faults injected across %d schedules — suite is too tame", injected, engineSchedules)
	}
}

// TestChaosSimProvisioningInvariants replays seeded market months and
// asserts the paper's guarantees end to end: slack-aware provisioning
// finishes within the deadline on every schedule, the recorded
// timeline validates (including the work-monotonicity invariant), and
// the durable frontier recorded at each deploy never regresses.
func TestChaosSimProvisioningInvariants(t *testing.T) {
	historical := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: 1010})
	em, err := cloud.BuildEvictionModel(historical, 256)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []perfmodel.Job{perfmodel.JobPageRank, perfmodel.JobSSSP}
	slacks := []float64{0.1, 0.5, 1.0}
	warnings := []units.Seconds{0, 120}

	for i := 0; i < simSchedules; i++ {
		seed := *chaosSeedBase + int64(9000+i)
		job := jobs[i%len(jobs)]
		slack := slacks[i%len(slacks)]
		warn := warnings[i%len(warnings)]
		t.Run(fmt.Sprintf("seed=%d/%s/slack=%.1f/warn=%v", seed, job.Name, slack, warn), func(t *testing.T) {
			live := cloud.GenerateSet(cloud.Catalogue(), cloud.GenParams{Days: 8, Seed: seed})
			env, err := core.NewEnv(job, perfmodel.Default(), cloud.DefaultConfigs(), cloud.NewMarket(live), em)
			if err != nil {
				t.Fatal(err)
			}
			r := &sim.Runner{Env: env, Trace: true, WarningWindow: warn}
			start := units.Seconds(i) * 5 * units.Hour
			deadline := env.LRC.Fixed + env.LRC.Exec + units.Seconds(slack*float64(env.LRC.Exec))

			prov := core.NewSlackAware(env)
			prov.WarningWindow = warn
			res, err := r.Run(prov, start, start+deadline)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Finished || res.MissedDeadline {
				t.Fatalf("slack-aware broke the guarantee: finished=%v missed=%v",
					res.Finished, res.MissedDeadline)
			}
			if err := res.Timeline.Validate(); err != nil {
				t.Fatalf("timeline invalid: %v\n%s", err, res.Timeline)
			}
			// Durable work is monotone: each deploy re-anchors at the
			// durable frontier, which only ever moves forward.
			prevDurable := 2.0
			for _, p := range res.Timeline.Phases {
				if p.Kind != sim.PhaseDeploy {
					continue
				}
				if p.WorkLeft > prevDurable+1e-9 {
					t.Fatalf("durable work regressed %.6f -> %.6f\n%s",
						prevDurable, p.WorkLeft, res.Timeline)
				}
				prevDurable = p.WorkLeft
			}

			// The baselines must at least keep their books straight on
			// the same market (deadlines are theirs to miss).
			for _, mk := range []func() core.Provisioner{
				func() core.Provisioner { return core.NewSpotOn(env) },
				func() core.Provisioner { return core.NewGreedy(env) },
			} {
				bres, err := r.Run(mk(), start, start+deadline)
				if err != nil {
					t.Fatal(err)
				}
				if err := bres.Timeline.Validate(); err != nil {
					t.Fatalf("%s timeline invalid: %v\n%s", mk().Name(), err, bres.Timeline)
				}
			}
		})
	}
}

// chaosBackend is an instant Backend for controller chaos runs.
type chaosBackend struct{}

func (chaosBackend) Admit(spec scheduler.JobSpec) (units.Seconds, units.Seconds, units.USD, error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, 0, err
	}
	return 1000, units.Day, 10, nil
}

func (chaosBackend) Run(_ context.Context, _ scheduler.JobSpec, start, deadline units.Seconds) (sim.RunResult, error) {
	return sim.RunResult{Cost: 2, Finished: true, Completion: start + deadline/2}, nil
}

func chaosSpec(id string) scheduler.JobSpec {
	return scheduler.JobSpec{
		ID:       id,
		Kind:     hourglass.PageRank,
		Strategy: hourglass.StrategyHourglass,
		Slack:    0.5,
		Period:   scheduler.Duration(30 * time.Minute),
		Runs:     1,
	}
}

func waitCompleted(t *testing.T, c *scheduler.Controller, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := c.Get(id); ok && st.Completed >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never completed %d runs", id, n)
}

// TestChaosControllerSnapshotRestore cycles the daemon through
// seeded fault schedules: run a job table to completion, snapshot
// into the faulty store on shutdown, and boot a successor over the
// same store. The successor must either restore the table exactly
// (checksum intact) or detect the damage and start cleanly empty —
// never fail to boot, never load corrupt state.
func TestChaosControllerSnapshotRestore(t *testing.T) {
	epoch := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	restored := 0
	for i := 0; i < schedulerSchedules; i++ {
		seed := *chaosSeedBase + int64(40_000+i)
		store := faultinject.Wrap(cloud.NewDatastore(), chaosPolicy(seed))
		vc := scheduler.NewVirtualClock(epoch)
		c1, err := scheduler.New(scheduler.Options{
			Backend: chaosBackend{}, Clock: vc, Workers: 2, Seed: seed, Store: store,
		})
		if err != nil {
			t.Fatalf("seed %d: boot: %v", seed, err)
		}
		for _, id := range []string{"chaos-a", "chaos-b"} {
			if _, err := c1.Submit(chaosSpec(id)); err != nil {
				t.Fatalf("seed %d: submit %s: %v", seed, id, err)
			}
		}
		waitCompleted(t, c1, "chaos-a", 1)
		waitCompleted(t, c1, "chaos-b", 1)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := c1.Shutdown(ctx); err != nil {
			cancel()
			t.Fatalf("seed %d: snapshot under faults: %v", seed, err)
		}
		cancel()

		c2, err := scheduler.New(scheduler.Options{
			Backend: chaosBackend{}, Clock: vc, Workers: 2, Seed: seed, Store: store,
		})
		if err != nil {
			t.Fatalf("seed %d: restore boot: %v", seed, err)
		}
		jobs := c2.List()
		switch len(jobs) {
		case 2:
			restored++
			for _, st := range jobs {
				if st.Completed != 1 || !st.Done {
					t.Errorf("seed %d: job %s restored wrong: %+v", seed, st.Spec.ID, st)
				}
			}
		case 0:
			// Snapshot was durably corrupted in the store: a clean
			// fresh start is the correct recovery.
		default:
			t.Errorf("seed %d: partial restore of %d jobs", seed, len(jobs))
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		_ = c2.Shutdown(ctx2)
		cancel2()
	}
	if restored == 0 {
		t.Error("no schedule restored intact — retry/checksum path never exercised")
	}

	// A schedule that corrupts every write must force the fresh-start
	// branch deterministically.
	store := faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{Seed: 99, PWriteCorrupt: 1})
	vc := scheduler.NewVirtualClock(epoch)
	c1, err := scheduler.New(scheduler.Options{Backend: chaosBackend{}, Clock: vc, Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(chaosSpec("doomed")); err != nil {
		t.Fatal(err)
	}
	waitCompleted(t, c1, "doomed", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	c2, err := scheduler.New(scheduler.Options{Backend: chaosBackend{}, Clock: vc, Workers: 2, Store: store})
	if err != nil {
		t.Fatalf("corrupted snapshot failed the boot: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c2.Shutdown(ctx)
	}()
	if jobs := c2.List(); len(jobs) != 0 {
		t.Errorf("corrupt snapshot restored %d jobs, want fresh start", len(jobs))
	}
}
