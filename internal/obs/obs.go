// Package obs is Hourglass's shared observability layer: a metrics
// Registry (counters, gauges, histograms, labeled series, Prometheus
// text exposition) and a structured trace plane (typed Events, a
// ring-buffered Tracer, JSONL sinks, and a fold that summarises a
// trace back into the paper's Table-2-style cost/evictions/misses
// numbers).
//
// The package is dependency-free by design — the engine, simulator,
// scheduler and cloud substrates all publish through it, so it must
// not pull client libraries into the hot path. Publishers hold a Sink
// behind a nil check: a disabled sink costs nothing (no allocations,
// no calls) and an enabled one costs one Emit per event.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Event is one structured trace record. A single flat schema covers
// every event type; unused fields marshal away under omitempty, so a
// JSONL line carries only the fields its type populates.
type Event struct {
	// Type discriminates the record (Ev* constants).
	Type string `json:"type"`
	// T is the event's virtual timestamp in seconds (sim events) or is
	// omitted for purely mechanical events (engine supersteps).
	T float64 `json:"t,omitempty"`
	// Job labels the emitting job or run ("pagerank", "job-3").
	Job string `json:"job,omitempty"`
	// Config is the deployment configuration id involved.
	Config string `json:"config,omitempty"`

	// Decision fields (EvDecision).
	ECUSD      float64 `json:"ec_usd,omitempty"`  // provisioner's expected cost estimate
	SlackSec   float64 `json:"slack_s,omitempty"` // slack remaining at the decision point
	WorkLeft   float64 `json:"work_left,omitempty"`
	Keep       bool    `json:"keep,omitempty"`        // keep the current deployment
	LastResort bool    `json:"last_resort,omitempty"` // chose the last-resort configuration

	// Lifecycle fields (EvDeploy/EvEvict/EvCheckpoint/EvDone/EvSpend).
	USD    float64 `json:"usd,omitempty"`   // spend delta (EvSpend) or total (EvDone)
	DurSec float64 `json:"dur_s,omitempty"` // span length (deploy: wait+boot+load)
	Reload bool    `json:"reload,omitempty"`
	Missed bool    `json:"missed,omitempty"`
	Done   bool    `json:"done,omitempty"` // job finished (EvDone with Done=false = abandoned)

	// Engine superstep fields (EvSuperstep).
	Superstep  int   `json:"superstep,omitempty"`
	Active     int64 `json:"active,omitempty"`      // frontier size (compute calls)
	Messages   int64 `json:"messages,omitempty"`    // logical sends this step
	Combined   int64 `json:"combined,omitempty"`    // sends folded at the sender
	NsStep     int64 `json:"ns,omitempty"`          // wall nanoseconds for the step
	ArenaBytes int64 `json:"arena_bytes,omitempty"` // pooled inbox arena footprint

	// Distributed message-plane fields (EvSuperstep from a dist
	// coordinator, EvShardEvict on shard loss).
	Shard      int    `json:"shard,omitempty"`       // shard id (EvShardEvict)
	Proc       string `json:"proc,omitempty"`        // process identity: the worker set (EvDeploy) or the lost worker (EvShardEvict)
	WireFrames int64  `json:"wire_frames,omitempty"` // frames in+out this step
	WireBytes  int64  `json:"wire_bytes,omitempty"`  // bytes in+out this step

	// Retry fields (EvRetry).
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`

	// Warm-standby recovery fields (EvWarning/EvStandby/EvCutover/
	// EvDeltaSave). Ready reports whether a standby set was projected
	// to boot inside the warning window; Chain is a delta checkpoint's
	// distance from its full ancestor (0 = full blob); DeltaBytes is
	// the delta-encoded footprint of a checkpoint whose full encoding
	// would have cost WireBytes.
	Ready      bool  `json:"ready,omitempty"`
	Chain      int   `json:"chain,omitempty"`
	DeltaBytes int64 `json:"delta_bytes,omitempty"`

	// Admission-control fields (EvAdmit/EvQueue/EvReject/EvPack/
	// EvRelease). Tenant labels the submitting tenant; Deployment is
	// the shared deployment a job was packed onto or released from;
	// QueuePos is the 1-based wait-queue position at enqueue time;
	// GapSec is how far an infeasible deadline falls short of the
	// minimum feasible one. EvAdmit reuses DurSec for the queue wait
	// of a promoted job (0 for jobs admitted immediately).
	Tenant     string  `json:"tenant,omitempty"`
	Deployment string  `json:"deployment,omitempty"`
	QueuePos   int     `json:"queue_pos,omitempty"`
	GapSec     float64 `json:"gap_s,omitempty"`
}

// Event types. The sim lifecycle mirrors Figure 2's execution flow;
// spend records are emitted once per billing charge so folding them in
// file order reproduces the run's cost accumulation bit-for-bit.
const (
	EvDecision   = "decision"
	EvDeploy     = "deploy"
	EvSpend      = "spend"
	EvEvict      = "evict"
	EvCheckpoint = "checkpoint"
	EvDone       = "done"
	EvSuperstep  = "superstep"
	EvRun        = "run"
	EvRetry      = "retry"
	// EvShardEvict marks a distributed shard worker declared dead by
	// the coordinator (connection loss or barrier-vote timeout).
	EvShardEvict = "shard_evict"
	// Warm-standby lifecycle (internal/runtime): an eviction warning
	// fires WarningWindow seconds ahead of the reclaim boundary; a
	// standby set is launched (or judged infeasible) in response; a
	// ready standby takes over at the boundary with near-zero boot.
	EvWarning = "warning"
	EvStandby = "standby"
	EvCutover = "cutover"
	// EvDeltaSave marks a checkpoint sealed as a delta manifest: only
	// changed vertices were encoded, Chain deep in the parent chain.
	EvDeltaSave = "delta_save"
	// Admission-control lifecycle (internal/admission): a submission is
	// admitted (and packed onto a deployment), parked in the wait
	// queue, or rejected; a placed job releases its deployment share
	// when it completes or is deleted.
	EvAdmit   = "admit"
	EvQueue   = "queue"
	EvReject  = "reject"
	EvPack    = "pack"
	EvRelease = "release"
)

// Sink receives events. Implementations must be safe for concurrent
// Emit calls; publishers guard every Emit behind a nil check so a nil
// Sink disables tracing for free.
type Sink interface {
	Emit(e Event)
}

// Finite sanitises a float for JSON encoding: NaN and ±Inf (legal
// sentinel costs inside the provisioner) marshal as 0.
func Finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// Tracer is a fixed-capacity ring buffer of recent events with an
// optional downstream sink. It backs /debug/trace in the daemon: the
// ring answers "what just happened" without unbounded growth, while
// the downstream sink (a JSONL writer, say) keeps the full stream.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	out  Sink
}

// NewTracer builds a ring of the given capacity (min 1) forwarding
// every event to out when non-nil.
func NewTracer(capacity int, out Sink) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity), out: out}
}

// Emit implements Sink.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	if t.out != nil {
		t.out.Emit(e)
	}
}

// Recent returns the ring's contents, oldest first.
func (t *Tracer) Recent() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// JSONL streams events as one JSON object per line. Safe for
// concurrent use; the first encoding error latches and suppresses
// further writes (check Err before trusting the output).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL wraps w in a line-per-event sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// WriteJSONL writes events to w, one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace. Blank lines are skipped; a malformed
// line fails with its line number so truncated traces are diagnosable.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return events, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// Tee fans an event out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		if s != nil {
			s.Emit(e)
		}
	}
}
