package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a dependency-free metrics registry rendered in
// Prometheus text exposition format: plain counters and gauges,
// histograms, and single-label counter families ("labeled series").
// All methods are safe for concurrent use. Names follow Prometheus
// conventions; metrics auto-register on first touch so publishers
// never need a registration phase, but pre-registering (Add with a
// zero delta) makes the full surface visible to the first scrape.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
	families map[string]*family
	help     map[string]string
}

// histogram buckets hold per-bucket (non-cumulative) counts; the
// cumulative `le` form Prometheus expects is derived at render.
type histogram struct {
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // len(buckets)+1; last is the +Inf overflow
	sum     float64
	count   uint64
}

// family is a counter family with one label key.
type family struct {
	label string
	vals  map[string]float64 // label value -> counter
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
		families: map[string]*family{},
		help:     map[string]string{},
	}
}

// SetHelp attaches a HELP line to a metric name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Add increments a counter by delta (registering it at zero first).
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// SetGauge records an instantaneous value.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddLabeled increments one series of a single-label counter family,
// e.g. AddLabeled("hourglass_job_cost_usd_total", "job", "job-1", c).
// The label key is fixed at the family's first use.
func (r *Registry) AddLabeled(name, labelKey, labelValue string, delta float64) {
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{label: labelKey, vals: map[string]float64{}}
		r.families[name] = f
	}
	f.vals[labelValue] += delta
	r.mu.Unlock()
}

// RegisterHistogram declares a histogram with the given ascending
// upper bounds (+Inf is implicit). Re-registering a name replaces it.
func (r *Registry) RegisterHistogram(name string, buckets []float64) {
	h := &histogram{
		buckets: append([]float64(nil), buckets...),
		counts:  make([]uint64, len(buckets)+1),
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Observe records a value into a registered histogram; observations
// against an unregistered name are dropped.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return
	}
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.buckets)]++
}

// Value reads a counter (or, failing that, a gauge) — for tests.
func (r *Registry) Value(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counters[name]; ok {
		return v
	}
	return r.gauges[name]
}

// LabeledValue reads one series of a counter family — for tests.
func (r *Registry) LabeledValue(name, labelValue string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.vals[labelValue]
	}
	return 0
}

// HistogramCount returns a histogram's total observation count.
func (r *Registry) HistogramCount(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h.count
	}
	return 0
}

// WriteTo renders the registry in Prometheus text exposition format:
// scalars (counters and gauges interleaved by name), then counter
// families, then histograms, each block sorted by metric name.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	emit := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	emitHelp := func(name, kind string) error {
		if help := r.help[name]; help != "" {
			if err := emit("# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		return emit("# TYPE %s %s\n", name, kind)
	}

	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kind, v := "counter", r.counters[name]
		if gv, ok := r.gauges[name]; ok {
			kind, v = "gauge", gv
		}
		if err := emitHelp(name, kind); err != nil {
			return n, err
		}
		if err := emit("%s %s\n", name, fmtFloat(v)); err != nil {
			return n, err
		}
	}

	famNames := make([]string, 0, len(r.families))
	for name := range r.families {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)
	for _, name := range famNames {
		f := r.families[name]
		if err := emitHelp(name, "counter"); err != nil {
			return n, err
		}
		vals := make([]string, 0, len(f.vals))
		for lv := range f.vals {
			vals = append(vals, lv)
		}
		sort.Strings(vals)
		for _, lv := range vals {
			// %q matches the exposition format's label escaping
			// (backslash, double quote, newline).
			if err := emit("%s{%s=%q} %s\n", name, f.label, lv, fmtFloat(f.vals[lv])); err != nil {
				return n, err
			}
		}
	}

	histNames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := r.hists[name]
		if err := emitHelp(name, "histogram"); err != nil {
			return n, err
		}
		var cum uint64
		for i, ub := range h.buckets {
			cum += h.counts[i]
			if err := emit("%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(ub), cum); err != nil {
				return n, err
			}
		}
		cum += h.counts[len(h.buckets)]
		if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, fmtFloat(h.sum), name, cum); err != nil {
			return n, err
		}
	}
	return n, nil
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
