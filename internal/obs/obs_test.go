package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingWrapsOldestFirst(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Type: EvSuperstep, Superstep: i})
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Superstep != 3+i {
			t.Errorf("ring[%d] = superstep %d, want %d", i, e.Superstep, 3+i)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.Emit(Event{Type: EvDecision})
	tr.Emit(Event{Type: EvDeploy})
	got := tr.Recent()
	if len(got) != 2 || got[0].Type != EvDecision || got[1].Type != EvDeploy {
		t.Fatalf("partial ring = %+v", got)
	}
}

func TestTracerForwardsDownstream(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(2, sink)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Type: EvSpend, USD: float64(i)})
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("downstream saw %d events, want all 5", len(events))
	}
}

func TestJSONLRoundTripPreservesFloats(t *testing.T) {
	// Cost folding relies on float64 values surviving the JSON round
	// trip bit-for-bit.
	vals := []float64{0.1, 1.0 / 3.0, 1e-17, 12345.6789, math.Pi}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, v := range vals {
		sink.Emit(Event{Type: EvSpend, USD: v})
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.USD != vals[i] {
			t.Errorf("event %d: %v round-tripped to %v", i, vals[i], e.USD)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"type\":\"spend\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse failure", err)
	}
}

func TestFiniteSanitises(t *testing.T) {
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := Finite(v); got != 0 {
			t.Errorf("Finite(%v) = %v, want 0", v, got)
		}
	}
	if got := Finite(3.5); got != 3.5 {
		t.Errorf("Finite(3.5) = %v", got)
	}
}

func TestSummarizeFoldsLifecycle(t *testing.T) {
	events := []Event{
		{Type: EvDecision, Config: "spot-1"},
		{Type: EvDeploy, Config: "spot-1"},
		{Type: EvSpend, USD: 0.25},
		{Type: EvSpend, USD: 0.5},
		{Type: EvEvict, Config: "spot-1"},
		{Type: EvDecision, Config: "od-1", LastResort: true},
		{Type: EvDeploy, Config: "od-1", Reload: true},
		{Type: EvSpend, USD: 1.0},
		{Type: EvCheckpoint},
		{Type: EvDone, Done: true, T: 3600},
		{Type: EvSuperstep, Active: 10, Messages: 100, Combined: 40, NsStep: 5000},
		{Type: EvRetry, Attempts: 3},
	}
	s := Summarize(events)
	if s.CostUSD != 1.75 || s.Decisions != 2 || s.Deploys != 2 || s.Evictions != 1 ||
		s.Checkpoints != 1 || s.Runs != 1 || !s.Finished || s.Missed || s.Completion != 3600 {
		t.Errorf("sim fold wrong: %+v", s)
	}
	if s.Supersteps != 1 || s.Active != 10 || s.Messages != 100 || s.Combined != 40 ||
		s.EngineNs != 5000 || s.RetryAttempts != 3 {
		t.Errorf("engine/retry fold wrong: %+v", s)
	}
	if out := s.String(); !strings.Contains(out, "evictions   1") {
		t.Errorf("String() = %q", out)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewTracer(4, nil), NewTracer(4, nil)
	tee := Tee{a, nil, b}
	tee.Emit(Event{Type: EvDone})
	if len(a.Recent()) != 1 || len(b.Recent()) != 1 {
		t.Fatal("tee did not reach both sinks")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Type: EvSuperstep, Superstep: i})
				_ = tr.Recent()
			}
		}()
	}
	wg.Wait()
	if len(tr.Recent()) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(tr.Recent()))
	}
}
