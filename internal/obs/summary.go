package obs

import (
	"fmt"
	"strings"
)

// Summary is a trace folded into the paper's Table-2-style per-run
// numbers: what the run cost, how often it was evicted, and whether
// the deadline held — plus the engine-side activity when the trace
// carries superstep records.
type Summary struct {
	// Sim lifecycle.
	Runs        int     // done markers seen
	CostUSD     float64 // sum of spend deltas, in emission order
	Decisions   int
	Deploys     int // reconfigurations (every deploy tears down the old one)
	Evictions   int
	Checkpoints int
	Finished    bool    // last done marker reported completion
	Missed      bool    // last done marker reported a deadline miss
	Completion  float64 // virtual completion time of the last run

	// Engine activity.
	Supersteps int
	Active     int64 // total compute calls
	Messages   int64 // total logical sends
	Combined   int64 // sends folded at the sender
	EngineNs   int64 // summed wall time of traced supersteps

	// Retries across durability paths.
	RetryAttempts int

	// Warm-standby recovery. Warnings counts eviction forewarnings,
	// WarmCutovers the ones a pre-booted standby absorbed, and
	// StandbyMisses the ones that fell back to reactive recovery.
	// RecoverySec sums the downtime between each eviction boundary and
	// the replacement set being compute-ready (a warm cutover
	// contributes ~0); DeltaBytes/FullBytes split checkpoint footprint
	// by encoding so delta savings are visible in one fold.
	Warnings      int
	WarmCutovers  int
	StandbyMisses int
	RecoverySec   float64
	DeltaBytes    int64
	FullBytes     int64
}

// Summarize folds a trace. Spend deltas are accumulated in event
// order, which reproduces the simulator's own cost accumulation
// sequence exactly (float addition is order-dependent): a folded
// summary of a run's trace equals the run's printed results bit for
// bit.
func Summarize(events []Event) Summary {
	var s Summary
	for _, e := range events {
		switch e.Type {
		case EvSpend:
			s.CostUSD += e.USD
		case EvDecision:
			s.Decisions++
		case EvDeploy:
			s.Deploys++
			if e.Reload {
				s.RecoverySec += e.DurSec
			}
		case EvEvict:
			s.Evictions++
		case EvCheckpoint:
			s.Checkpoints++
			if e.Chain == 0 {
				s.FullBytes += e.WireBytes
			}
		case EvWarning:
			s.Warnings++
		case EvStandby:
			if !e.Ready {
				s.StandbyMisses++
			}
		case EvCutover:
			s.WarmCutovers++
			s.RecoverySec += e.DurSec
		case EvDeltaSave:
			s.DeltaBytes += e.DeltaBytes
		case EvDone:
			s.Runs++
			s.Finished = e.Done
			s.Missed = e.Missed
			s.Completion = e.T
		case EvSuperstep:
			s.Supersteps++
			s.Active += e.Active
			s.Messages += e.Messages
			s.Combined += e.Combined
			s.EngineNs += e.NsStep
		case EvRetry:
			s.RetryAttempts += e.Attempts
		}
	}
	return s
}

// String renders the summary as a compact table.
func (s Summary) String() string {
	var b strings.Builder
	if s.Runs > 0 || s.Decisions > 0 {
		deadline := "met"
		if s.Missed {
			deadline = "MISSED"
		}
		if !s.Finished {
			deadline = "unfinished"
		}
		fmt.Fprintf(&b, "runs        %d\n", s.Runs)
		fmt.Fprintf(&b, "cost        $%.4f\n", s.CostUSD)
		fmt.Fprintf(&b, "deadline    %s (completion t=%.0fs)\n", deadline, s.Completion)
		fmt.Fprintf(&b, "evictions   %d\n", s.Evictions)
		fmt.Fprintf(&b, "deploys     %d\n", s.Deploys)
		fmt.Fprintf(&b, "checkpoints %d\n", s.Checkpoints)
		fmt.Fprintf(&b, "decisions   %d\n", s.Decisions)
	}
	if s.Supersteps > 0 {
		avg := int64(0)
		if s.Supersteps > 0 {
			avg = s.EngineNs / int64(s.Supersteps)
		}
		fmt.Fprintf(&b, "supersteps  %d (avg %d ns/step)\n", s.Supersteps, avg)
		fmt.Fprintf(&b, "compute     %d calls\n", s.Active)
		fmt.Fprintf(&b, "messages    %d sent, %d combined at sender\n", s.Messages, s.Combined)
	}
	if s.RetryAttempts > 0 {
		fmt.Fprintf(&b, "retries     %d attempts\n", s.RetryAttempts)
	}
	if s.Warnings > 0 || s.WarmCutovers > 0 || s.StandbyMisses > 0 {
		fmt.Fprintf(&b, "standby     %d warnings, %d warm cutovers, %d misses (recovery %.0fs)\n",
			s.Warnings, s.WarmCutovers, s.StandbyMisses, s.RecoverySec)
	}
	if s.DeltaBytes > 0 || s.FullBytes > 0 {
		fmt.Fprintf(&b, "ckpt bytes  %d full, %d delta\n", s.FullBytes, s.DeltaBytes)
	}
	if b.Len() == 0 {
		return "empty trace\n"
	}
	return b.String()
}
