package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryScalars(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("hg_runs_total", "Runs.")
	r.Add("hg_runs_total", 0) // pre-register
	r.Inc("hg_runs_total")
	r.Add("hg_runs_total", 2)
	r.SetGauge("hg_active", 7)
	if v := r.Value("hg_runs_total"); v != 3 {
		t.Errorf("counter = %v, want 3", v)
	}
	if v := r.Value("hg_active"); v != 7 {
		t.Errorf("gauge = %v, want 7", v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP hg_runs_total Runs.",
		"# TYPE hg_runs_total counter",
		"hg_runs_total 3",
		"# TYPE hg_active gauge",
		"hg_active 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.AddLabeled("hg_job_cost_usd_total", "job", "job-1", 1.5)
	r.AddLabeled("hg_job_cost_usd_total", "job", "job-2", 2.0)
	r.AddLabeled("hg_job_cost_usd_total", "job", "job-1", 0.5)
	if v := r.LabeledValue("hg_job_cost_usd_total", "job-1"); v != 2 {
		t.Errorf("job-1 = %v, want 2", v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	i1 := strings.Index(out, `hg_job_cost_usd_total{job="job-1"} 2`)
	i2 := strings.Index(out, `hg_job_cost_usd_total{job="job-2"} 2`)
	if i1 < 0 || i2 < 0 || i2 < i1 {
		t.Errorf("labeled series missing or unsorted:\n%s", out)
	}
}

// parseHistogram extracts the rendered le buckets, _sum and _count for
// one histogram family.
func parseHistogram(t *testing.T, out, name string) (les []string, cums []uint64, count uint64) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+"_bucket{le=\"") {
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			q := strings.Index(rest, "\"}")
			if q < 0 {
				t.Fatalf("malformed bucket line %q", line)
			}
			les = append(les, rest[:q])
			v, err := strconv.ParseUint(strings.TrimSpace(rest[q+2:]), 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			cums = append(cums, v)
		}
		if strings.HasPrefix(line, name+"_count ") {
			v, err := strconv.ParseUint(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = v
		}
	}
	return les, cums, count
}

func TestRegistryHistogramCumulativeRender(t *testing.T) {
	r := NewRegistry()
	r.RegisterHistogram("hg_lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50, 500} {
		r.Observe("hg_lat_seconds", v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	les, cums, count := parseHistogram(t, b.String(), "hg_lat_seconds")
	wantLes := []string{"0.1", "1", "10", "+Inf"}
	wantCums := []uint64{1, 3, 4, 6}
	if len(les) != len(wantLes) {
		t.Fatalf("les = %v, want %v", les, wantLes)
	}
	for i := range wantLes {
		if les[i] != wantLes[i] || cums[i] != wantCums[i] {
			t.Errorf("bucket %d: le=%s cum=%d, want le=%s cum=%d",
				i, les[i], cums[i], wantLes[i], wantCums[i])
		}
	}
	// Buckets must be monotonically non-decreasing and +Inf == _count.
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("bucket %d not cumulative: %d < %d", i, cums[i], cums[i-1])
		}
	}
	if cums[len(cums)-1] != count {
		t.Errorf("+Inf bucket %d != _count %d", cums[len(cums)-1], count)
	}
	if got := r.HistogramCount("hg_lat_seconds"); got != 6 {
		t.Errorf("HistogramCount = %d, want 6", got)
	}
}

func TestRegistryObserveUnregisteredDropped(t *testing.T) {
	r := NewRegistry()
	r.Observe("nope", 1) // must not panic or register
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "nope") {
		t.Errorf("unregistered histogram leaked into exposition")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	r.RegisterHistogram("hg_h", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Inc("hg_c")
				r.SetGauge("hg_g", float64(i))
				r.Observe("hg_h", float64(i%5))
				r.AddLabeled("hg_f", "k", "v"+strconv.Itoa(g%2), 1)
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if v := r.Value("hg_c"); v != 4000 {
		t.Errorf("counter = %v, want 4000", v)
	}
	if n := r.HistogramCount("hg_h"); n != 4000 {
		t.Errorf("histogram count = %d, want 4000", n)
	}
}
