package perfmodel

import (
	"testing"
	"time"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

func TestFitParallelOverheadExact(t *testing.T) {
	// Synthesise timings from the model itself with α = 0.05 and check
	// the fit recovers it: t(n) ∝ (1+α(n−1))/n.
	alpha := 0.05
	timing := func(n int) time.Duration {
		return time.Duration(1e9 * (1 + alpha*float64(n-1)) / float64(n))
	}
	ms := []Measurement{
		{Workers: 1, Elapsed: timing(1)},
		{Workers: 8, Elapsed: timing(8)},
	}
	got, err := FitParallelOverhead(ms)
	if err != nil {
		t.Fatal(err)
	}
	if got < alpha*0.95 || got > alpha*1.05 {
		t.Errorf("fitted α = %v, want ≈ %v", got, alpha)
	}
}

func TestFitParallelOverheadPerfectScaling(t *testing.T) {
	ms := []Measurement{
		{Workers: 1, Elapsed: 800 * time.Millisecond},
		{Workers: 8, Elapsed: 100 * time.Millisecond},
	}
	got, err := FitParallelOverhead(ms)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("perfect scaling fitted α = %v, want 0", got)
	}
}

func TestFitParallelOverheadErrors(t *testing.T) {
	if _, err := FitParallelOverhead(nil); err == nil {
		t.Error("empty measurements accepted")
	}
	same := []Measurement{{Workers: 4, Elapsed: 1}, {Workers: 4, Elapsed: 2}}
	if _, err := FitParallelOverhead(same); err == nil {
		t.Error("single worker count accepted")
	}
}

func TestMeasureScalingRuns(t *testing.T) {
	p := graph.DefaultRMAT(11, 7)
	p.Undirected = true
	g := graph.RMAT(p)
	ms, err := MeasureScaling(g, func() engine.Program {
		return &engine.PageRank{Iterations: 5}
	}, []int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Elapsed <= 0 || ms[1].Messages == 0 {
		t.Errorf("measurements: %+v", ms)
	}
}

func TestCalibratedModel(t *testing.T) {
	p := graph.DefaultRMAT(11, 8)
	p.Undirected = true
	g := graph.RMAT(p)
	m, err := Default().Calibrated(g, func() engine.Program {
		return &engine.PageRank{Iterations: 5}
	}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.ParallelOverhead < 0 || m.ParallelOverhead > 3 {
		t.Errorf("calibrated overhead = %v", m.ParallelOverhead)
	}
	// Loading configuration must be preserved.
	if m.Loading != Default().Loading {
		t.Error("calibration clobbered loading strategy")
	}
}
