// Package perfmodel estimates the execution, boot, load and checkpoint
// times of Table 1 (t_exec, t_boot, t_load, t_save) for every
// deployment configuration. The paper treats the construction of the
// performance model as orthogonal (§5.1, citing Ernest/CherryPick); we
// use a calibrated analytic model: machine speed proportional to
// vCPUs, a parallel-efficiency discount per extra worker (synchronous
// BSP barriers get more expensive with scale), and byte-level transfer
// models shared with the loader package. Work is assumed to progress
// uniformly (the paper's explicit approximation).
package perfmodel

import (
	"fmt"
	"math"

	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

// Job describes one recurring graph-processing job, calibrated against
// the last-resort configuration exactly as the paper reports (§8.2:
// SSSP 3 min, PageRank-30 20 min, GC 4 h on Twitter).
type Job struct {
	Name string
	// LRCExecTime is the pure compute time on the last-resort config.
	LRCExecTime units.Seconds
	// GraphBytes is the on-disk dataset size (drives t_load).
	GraphBytes int64
	// StateBytes is the checkpoint size (drives t_save).
	StateBytes int64
	// MemoryGiB is the aggregate memory the loaded graph needs; gates
	// configuration feasibility.
	MemoryGiB float64
}

// The paper's three benchmark jobs on the Twitter dataset.
var (
	JobSSSP = Job{Name: "sssp", LRCExecTime: 3 * units.Minute,
		GraphBytes: 26e9, StateBytes: 1.5e9, MemoryGiB: 350}
	JobPageRank = Job{Name: "pagerank", LRCExecTime: 20 * units.Minute,
		GraphBytes: 26e9, StateBytes: 2e9, MemoryGiB: 350}
	JobGC = Job{Name: "graphcoloring", LRCExecTime: 4 * units.Hour,
		GraphBytes: 26e9, StateBytes: 3e9, MemoryGiB: 350}
)

// Jobs returns the benchmark jobs in paper order.
func Jobs() []Job { return []Job{JobSSSP, JobPageRank, JobGC} }

// LoadStrategy selects the loading path used on (re)deployments.
type LoadStrategy int

// Loading strategies (§6): hash shuffle, single-node stream, offline
// METIS per configuration, or Hourglass micro-partitions.
const (
	// LoadHash: no offline phase; parallel chunk fetch then an
	// all-to-all entity shuffle on every load.
	LoadHash LoadStrategy = iota
	// LoadStream: no offline phase; the whole dataset streams through
	// one node on every load.
	LoadStream
	// LoadMETIS: an offline METIS run *per distinct worker count*; a
	// reconfiguration scatters each partition across stored chunks, so
	// reloads still pay the shuffle (§6.1 "Loading Phase").
	LoadMETIS
	// LoadMicro: one offline METIS run total (micro-partitioning);
	// reloads fetch exactly the owned micro-partitions in parallel
	// with no shuffle (fast reload, §6.2).
	LoadMicro
)

// String implements fmt.Stringer.
func (l LoadStrategy) String() string {
	switch l {
	case LoadHash:
		return "hash"
	case LoadStream:
		return "stream"
	case LoadMETIS:
		return "metis"
	case LoadMicro:
		return "micro"
	default:
		return fmt.Sprintf("LoadStrategy(%d)", int(l))
	}
}

// Model carries the calibration constants.
type Model struct {
	// BootTime covers instance provisioning plus Hadoop+Giraph
	// bootstrap; spot requests add TransientBootPenalty (§1 cites [28]
	// on spot start delays).
	BootTime             units.Seconds
	TransientBootPenalty units.Seconds
	// ParallelOverhead is the per-extra-worker efficiency loss of the
	// synchronous execution model.
	ParallelOverhead float64
	// Loading selects the strategy priced by LoadTime.
	Loading LoadStrategy
	// Transfer bandwidths (bytes/s), mirroring loader.DefaultModel.
	StorePerConn   float64
	StoreAggregate float64
	NICBandwidth   float64
	ParseRate      float64
	RPCRate        float64
	// EntityExpansion inflates shuffled bytes (hash loading).
	EntityExpansion float64
	// PartitionRate is the offline partitioner's throughput in dataset
	// bytes/second (METIS-class partitioners are slow, §3.2).
	PartitionRate float64
	// MetisBase marks the micro-partitioner's offline base as
	// METIS-class (one offline run); false means hash micro-partitions
	// (file-chunk ownership, no offline phase — §7). Only affects
	// LoadMicro.
	MetisBase bool
	// DistinctWorkerCounts is how many offline partitionings LoadMETIS
	// must precompute (one per deployment size; the paper uses 3).
	DistinctWorkerCounts int
}

// Default returns the calibrated model with micro-partition loading.
func Default() *Model {
	return &Model{
		BootTime:             90,
		TransientBootPenalty: 60,
		ParallelOverhead:     0.035,
		Loading:              LoadMicro,
		StorePerConn:         250e6,
		StoreAggregate:       4e9,
		NICBandwidth:         1.25e9,
		ParseRate:            200e6,
		RPCRate:              8e6,
		EntityExpansion:      4,
		PartitionRate:        8e6,
		DistinctWorkerCounts: len(cloud.DefaultWorkerCounts),
	}
}

// WithLoading returns a copy using a different loading strategy
// (ablations toggle micro-partitioning off this way). LoadMETIS
// implies a METIS-class base.
func (m *Model) WithLoading(l LoadStrategy) *Model {
	c := *m
	c.Loading = l
	if l == LoadMETIS {
		c.MetisBase = true
	}
	return &c
}

// WithMetisBase returns a copy whose micro-partitioner uses a
// METIS-class offline base (the µMETIS of Figures 7 and 8).
func (m *Model) WithMetisBase() *Model {
	c := *m
	c.MetisBase = true
	return &c
}

// speed is the relative compute rate of one machine.
func speed(it cloud.InstanceType) float64 { return float64(it.VCPUs) }

// Capacity returns the absolute processing capacity of a
// configuration: n·speed discounted by the synchronous-barrier
// efficiency 1/(1+overhead·(n−1)).
func (m *Model) Capacity(c cloud.Config) float64 {
	n := float64(c.Count)
	return n * speed(c.Instance) / (1 + m.ParallelOverhead*(n-1))
}

// Feasible reports whether the configuration can hold the job.
func (m *Model) Feasible(job Job, c cloud.Config) bool {
	return c.TotalMemoryGiB() >= job.MemoryGiB && c.Count > 0
}

// LRC returns the last-resort configuration: the fastest *feasible*
// on-demand configuration (Table 1).
func (m *Model) LRC(job Job, configs []cloud.Config) (cloud.Config, error) {
	best := cloud.Config{}
	bestCap := -1.0
	for _, c := range configs {
		if c.Transient || !m.Feasible(job, c) {
			continue
		}
		if cap := m.Capacity(c); cap > bestCap {
			best, bestCap = c, cap
		}
	}
	if bestCap < 0 {
		return cloud.Config{}, fmt.Errorf("perfmodel: no feasible on-demand configuration for %s", job.Name)
	}
	return best, nil
}

// ExecTime estimates the full-job compute time on c, scaling the
// calibrated LRC time by relative capacity. Infeasible configurations
// return +Inf.
func (m *Model) ExecTime(job Job, c cloud.Config, lrc cloud.Config) units.Seconds {
	if !m.Feasible(job, c) {
		return units.Seconds(math.Inf(1))
	}
	return job.LRCExecTime * units.Seconds(m.Capacity(lrc)/m.Capacity(c))
}

// NormalizedCapacity is Table 1's ω_c = t_lrc_exec / t_c_exec.
func (m *Model) NormalizedCapacity(job Job, c cloud.Config, lrc cloud.Config) float64 {
	te := m.ExecTime(job, c, lrc)
	if math.IsInf(float64(te), 1) {
		return 0
	}
	return float64(job.LRCExecTime) / float64(te)
}

// storeRatePerNode is the sustainable per-node datastore throughput
// for an n-node parallel transfer (multiple connections per node).
func (m *Model) storeRatePerNode(n int) float64 {
	per := m.NICBandwidth
	if agg := m.StoreAggregate / float64(n); agg < per {
		per = agg
	}
	return per
}

// LoadTime estimates t_load for the configured strategy.
func (m *Model) LoadTime(job Job, c cloud.Config) units.Seconds {
	n := c.Count
	bytes := float64(job.GraphBytes)
	switch m.Loading {
	case LoadStream:
		fetch := bytes / m.StorePerConn
		parse := bytes / m.ParseRate
		return units.Seconds(fetch + parse)
	case LoadHash, LoadMETIS:
		perNode := bytes / float64(n)
		fetch := perNode / m.storeRatePerNode(n)
		parse := perNode / m.ParseRate
		crossing := bytes * m.EntityExpansion * float64(n-1) / float64(n) / float64(n)
		shuffle := crossing / m.RPCRate
		return units.Seconds(fetch + parse + shuffle)
	case LoadMicro:
		perNode := bytes / float64(n)
		fetch := perNode / m.storeRatePerNode(n)
		parse := perNode / m.ParseRate
		return units.Seconds(fetch + parse)
	default:
		panic(fmt.Sprintf("perfmodel: unknown load strategy %d", m.Loading))
	}
}

// SaveTime estimates t_save: a parallel upload of the checkpoint.
func (m *Model) SaveTime(job Job, c cloud.Config) units.Seconds {
	perNode := float64(job.StateBytes) / float64(c.Count)
	rate := m.storeRatePerNode(c.Count)
	if m.StorePerConn < rate {
		// Checkpoint shards are single objects: per-connection capped.
		rate = m.StorePerConn
	}
	return units.Seconds(perNode / rate)
}

// Boot returns t_boot for the configuration class.
func (m *Model) Boot(c cloud.Config) units.Seconds {
	if c.Transient {
		return m.BootTime + m.TransientBootPenalty
	}
	return m.BootTime
}

// FixedTime is Table 1's t_fixed = t_boot + t_load + t_save.
func (m *Model) FixedTime(job Job, c cloud.Config) units.Seconds {
	return m.Boot(c) + m.LoadTime(job, c) + m.SaveTime(job, c)
}

// DeadlineUtilization is the share of a deployment's compute a job
// needs to meet a relative deadline on it: exec/(deadline−fixed),
// where exec is the full-job compute time on that deployment and
// fixed its boot+load+save overhead. The admission layer bin-packs
// these shares against unit capacity per deployment — the classic EDF
// utilization bound: any set of jobs whose shares sum to ≤ 1 can be
// time-multiplexed on one worker set with every deadline met. A share
// above 1 (or a deadline inside the fixed overhead, reported as +Inf)
// means the deployment cannot meet the deadline even running the job
// alone.
func DeadlineUtilization(exec, fixed, deadline units.Seconds) float64 {
	den := float64(deadline - fixed)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(exec) / den
}

// OfflinePartitionRuns is the number of offline partitioning passes
// the loading strategy needs before the first execution: one per
// distinct worker count for plain METIS, exactly one for
// micro-partitioning, none for hash/stream.
func (m *Model) OfflinePartitionRuns() int {
	switch m.Loading {
	case LoadMETIS:
		n := m.DistinctWorkerCounts
		if n == 0 {
			n = 3
		}
		return n
	case LoadMicro:
		if m.MetisBase {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// OfflineTime is the total offline partitioning time for the job.
func (m *Model) OfflineTime(job Job) units.Seconds {
	if m.PartitionRate <= 0 {
		return 0
	}
	perRun := float64(job.GraphBytes) / m.PartitionRate
	return units.Seconds(perRun * float64(m.OfflinePartitionRuns()))
}
