package perfmodel

import (
	"math"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

func TestLRCIsFastestFeasibleOnDemand(t *testing.T) {
	m := Default()
	configs := cloud.DefaultConfigs()
	lrc, err := m.LRC(JobGC, configs)
	if err != nil {
		t.Fatal(err)
	}
	if lrc.Transient {
		t.Fatal("LRC must be on-demand")
	}
	if !m.Feasible(JobGC, lrc) {
		t.Fatal("LRC infeasible")
	}
	for _, c := range configs {
		if c.Transient || !m.Feasible(JobGC, c) {
			continue
		}
		if m.Capacity(c) > m.Capacity(lrc) {
			t.Errorf("config %s faster than LRC %s", c.ID(), lrc.ID())
		}
	}
}

func TestExecTimeCalibration(t *testing.T) {
	m := Default()
	configs := cloud.DefaultConfigs()
	lrc, err := m.LRC(JobGC, configs)
	if err != nil {
		t.Fatal(err)
	}
	// On the LRC itself the exec time equals the calibrated value.
	if got := m.ExecTime(JobGC, lrc, lrc); got != JobGC.LRCExecTime {
		t.Errorf("LRC exec = %v, want %v", got, JobGC.LRCExecTime)
	}
	// Paper §2: other configurations take up to ~2.5× longer (4h → 10h).
	worst := units.Seconds(0)
	for _, c := range configs {
		if !m.Feasible(JobGC, c) {
			continue
		}
		te := m.ExecTime(JobGC, c, lrc)
		if te < JobGC.LRCExecTime-1e-9 {
			t.Errorf("%s faster than LRC: %v", c.ID(), te)
		}
		if te > worst {
			worst = te
		}
	}
	if ratio := float64(worst) / float64(JobGC.LRCExecTime); ratio < 1.5 || ratio > 8 {
		t.Errorf("worst/LRC exec ratio = %.2f, want within [1.5, 8]", ratio)
	}
}

func TestInfeasibleConfigs(t *testing.T) {
	m := Default()
	small := cloud.Config{Instance: cloud.R4Large2, Count: 4, Transient: true} // 244 GiB < 350
	if m.Feasible(JobGC, small) {
		t.Fatal("244 GiB config should be infeasible for a 350 GiB job")
	}
	lrc := cloud.Config{Instance: cloud.R4Large8, Count: 4}
	if !math.IsInf(float64(m.ExecTime(JobGC, small, lrc)), 1) {
		t.Error("infeasible exec time should be +Inf")
	}
	if m.NormalizedCapacity(JobGC, small, lrc) != 0 {
		t.Error("infeasible ω should be 0")
	}
}

func TestNormalizedCapacityBounds(t *testing.T) {
	m := Default()
	configs := cloud.DefaultConfigs()
	lrc, _ := m.LRC(JobPageRank, configs)
	for _, c := range configs {
		if !m.Feasible(JobPageRank, c) {
			continue
		}
		w := m.NormalizedCapacity(JobPageRank, c, lrc)
		if w <= 0 || w > 1+1e-9 {
			t.Errorf("%s: ω = %v outside (0,1]", c.ID(), w)
		}
	}
}

func TestLoadTimeOrdering(t *testing.T) {
	m := Default()
	c := cloud.Config{Instance: cloud.R4Large4, Count: 8, Transient: true}
	micro := m.WithLoading(LoadMicro).LoadTime(JobGC, c)
	hash := m.WithLoading(LoadHash).LoadTime(JobGC, c)
	metis := m.WithLoading(LoadMETIS).LoadTime(JobGC, c)
	stream := m.WithLoading(LoadStream).LoadTime(JobGC, c)
	if !(micro < hash && micro < stream) {
		t.Errorf("want micro fastest, got micro=%v hash=%v stream=%v", micro, hash, stream)
	}
	if metis != hash {
		t.Errorf("METIS reload should pay the same shuffle as hash: %v vs %v", metis, hash)
	}
	// Figure 6 magnitude: micro should be ≥5× faster than the
	// alternatives at 8 nodes.
	if ratio := float64(stream) / float64(micro); ratio < 5 {
		t.Errorf("stream/micro = %.1f, want ≥ 5", ratio)
	}
	if ratio := float64(hash) / float64(micro); ratio < 5 {
		t.Errorf("hash/micro = %.1f, want ≥ 5", ratio)
	}
}

func TestOfflinePartitioningCosts(t *testing.T) {
	m := Default()
	if m.WithLoading(LoadHash).OfflinePartitionRuns() != 0 ||
		m.WithLoading(LoadStream).OfflinePartitionRuns() != 0 {
		t.Error("hash/stream must have no offline phase")
	}
	if m.WithLoading(LoadMicro).OfflinePartitionRuns() != 0 {
		t.Error("micro with a hash base needs no offline phase (§7)")
	}
	if m.WithLoading(LoadMicro).WithMetisBase().OfflinePartitionRuns() != 1 {
		t.Error("microMETIS runs METIS exactly once")
	}
	if runs := m.WithLoading(LoadMETIS).OfflinePartitionRuns(); runs != 3 {
		t.Errorf("plain METIS runs = %d, want one per worker count (3)", runs)
	}
	metis := m.WithLoading(LoadMETIS).OfflineTime(JobGC)
	micro := m.WithLoading(LoadMicro).WithMetisBase().OfflineTime(JobGC)
	if metis != 3*micro {
		t.Errorf("offline time METIS %v, micro %v; want 3×", metis, micro)
	}
	if micro <= 0 {
		t.Error("offline time must be positive for micro")
	}
}

func TestLoadTimeScalesDown(t *testing.T) {
	m := Default()
	c4 := cloud.Config{Instance: cloud.R4Large8, Count: 4, Transient: true}
	c16 := cloud.Config{Instance: cloud.R4Large8, Count: 16, Transient: true}
	if m.LoadTime(JobGC, c16) >= m.LoadTime(JobGC, c4) {
		t.Error("micro loading should speed up with machines")
	}
}

func TestSaveAndBootAndFixed(t *testing.T) {
	m := Default()
	spot := cloud.Config{Instance: cloud.R4Large8, Count: 4, Transient: true}
	od := cloud.Config{Instance: cloud.R4Large8, Count: 4, Transient: false}
	if m.Boot(spot) <= m.Boot(od) {
		t.Error("spot boot should include the transient penalty")
	}
	if m.SaveTime(JobGC, spot) <= 0 {
		t.Error("save time must be positive")
	}
	want := m.Boot(spot) + m.LoadTime(JobGC, spot) + m.SaveTime(JobGC, spot)
	if m.FixedTime(JobGC, spot) != want {
		t.Errorf("fixed = %v, want %v", m.FixedTime(JobGC, spot), want)
	}
}

func TestJobsRegistry(t *testing.T) {
	jobs := Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	if jobs[0].LRCExecTime != 3*units.Minute || jobs[2].LRCExecTime != 4*units.Hour {
		t.Error("job calibration drifted from the paper values")
	}
}

func TestLoadStrategyString(t *testing.T) {
	if LoadHash.String() != "hash" || LoadMicro.String() != "micro" || LoadStream.String() != "stream" {
		t.Error("LoadStrategy names wrong")
	}
	if LoadStrategy(42).String() == "" {
		t.Error("unknown strategy should still render")
	}
}
