package perfmodel

import (
	"fmt"
	"time"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

// Measurement is one calibration sample: a real engine run at a worker
// count.
type Measurement struct {
	Workers  int
	Elapsed  time.Duration
	Messages int64
}

// MeasureScaling runs the program at each worker count on the real BSP
// engine and reports wall-clock times — the §8.1 step of extracting
// simulation parameters from real deployments, at laptop scale.
func MeasureScaling(g *graph.Graph, prog func() engine.Program, counts []int, repeats int) ([]Measurement, error) {
	if repeats <= 0 {
		repeats = 3
	}
	out := make([]Measurement, 0, len(counts))
	for _, w := range counts {
		var best time.Duration
		var msgs int64
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res, err := engine.Run(g, prog(), engine.Config{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("perfmodel: calibration run (workers=%d): %w", w, err)
			}
			elapsed := time.Since(start)
			if rep == 0 || elapsed < best {
				best = elapsed
			}
			msgs = res.Stats.MessagesSent
		}
		out = append(out, Measurement{Workers: w, Elapsed: best, Messages: msgs})
	}
	return out, nil
}

// FitParallelOverhead fits the model's per-extra-worker efficiency
// loss from scaling measurements: with capacity(n) = n·s/(1+α(n−1)),
// the runtime ratio between the smallest and largest measured counts
// determines α. Returns 0 (perfect scaling) when speedup meets or
// exceeds linear. A single measurement cannot be fit.
func FitParallelOverhead(ms []Measurement) (float64, error) {
	if len(ms) < 2 {
		return 0, fmt.Errorf("perfmodel: need ≥2 measurements, got %d", len(ms))
	}
	lo, hi := ms[0], ms[0]
	for _, m := range ms[1:] {
		if m.Workers < lo.Workers {
			lo = m
		}
		if m.Workers > hi.Workers {
			hi = m
		}
	}
	if lo.Workers == hi.Workers {
		return 0, fmt.Errorf("perfmodel: all measurements at %d workers", lo.Workers)
	}
	// t(n) ∝ (1+α(n−1))/n ⇒ with r = t_hi/t_lo:
	//   r·n_hi·(1+α(n_lo−1)) = n_lo·(1+α(n_hi−1))
	r := float64(hi.Elapsed) / float64(lo.Elapsed)
	nLo, nHi := float64(lo.Workers), float64(hi.Workers)
	den := nLo*(nHi-1) - r*nHi*(nLo-1)
	if den <= 0 {
		return 0, nil // super-linear or degenerate: no overhead evidence
	}
	alpha := (r*nHi - nLo) / den
	if alpha < 0 {
		alpha = 0
	}
	return alpha, nil
}

// Calibrated returns a copy of the model with ParallelOverhead fitted
// from real engine scaling runs of the given program.
func (m *Model) Calibrated(g *graph.Graph, prog func() engine.Program, counts []int) (*Model, error) {
	ms, err := MeasureScaling(g, prog, counts, 2)
	if err != nil {
		return nil, err
	}
	alpha, err := FitParallelOverhead(ms)
	if err != nil {
		return nil, err
	}
	c := *m
	if alpha > 0 {
		c.ParallelOverhead = alpha
	}
	return &c, nil
}
