package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"hourglass/internal/units"
)

func TestDalyIntervalFormula(t *testing.T) {
	// √(2·8·3600) = 240.
	got := DalyInterval(8, 3600)
	if math.Abs(float64(got)-240) > 1e-9 {
		t.Errorf("interval = %v, want 240", got)
	}
}

func TestDalyDegenerate(t *testing.T) {
	if !math.IsInf(float64(DalyInterval(0, 100)), 1) {
		t.Error("tSave=0 should never checkpoint")
	}
	if !math.IsInf(float64(DalyInterval(10, 0)), 1) {
		t.Error("mttf=0 should be Inf")
	}
	if !math.IsInf(float64(DalyHigherOrder(0, 100)), 1) {
		t.Error("higher-order tSave=0 should be Inf")
	}
	if DalyHigherOrder(500, 100) != 100 {
		t.Error("tSave ≥ 2·MTTF should degenerate to MTTF")
	}
}

func TestHigherOrderCloseToFirstOrderWhenCheap(t *testing.T) {
	fo := float64(DalyInterval(1, 10000))
	ho := float64(DalyHigherOrder(1, 10000))
	if math.Abs(fo-ho)/fo > 0.05 {
		t.Errorf("orders diverge for cheap checkpoints: %v vs %v", fo, ho)
	}
}

func TestExpectedOverheadMinimisedNearDaly(t *testing.T) {
	tSave, mttf := units.Seconds(10), units.Seconds(7200)
	opt := DalyInterval(tSave, mttf)
	base := ExpectedOverhead(opt, tSave, mttf)
	for _, factor := range []float64{0.25, 0.5, 2, 4} {
		other := ExpectedOverhead(opt*units.Seconds(factor), tSave, mttf)
		if other < base-1e-12 {
			t.Errorf("interval %v× Daly has lower overhead (%v < %v)", factor, other, base)
		}
	}
}

func TestExpectedOverheadDegenerate(t *testing.T) {
	if !math.IsInf(ExpectedOverhead(0, 1, 1), 1) {
		t.Error("zero interval should be Inf")
	}
}

// Property: the Daly interval grows with both tSave and MTTF.
func TestQuickDalyMonotone(t *testing.T) {
	f := func(a uint16, b uint32) bool {
		s1 := units.Seconds(a%1000 + 1)
		m1 := units.Seconds(b%100000 + 100)
		i1 := DalyInterval(s1, m1)
		return DalyInterval(s1*2, m1) >= i1 && DalyInterval(s1, m1*2) >= i1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
