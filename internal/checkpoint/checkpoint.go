// Package checkpoint computes optimal checkpoint intervals. Hourglass
// follows Flint and the paper (§5.1) in using Daly's first-order
// result: the interval that minimises expected lost work given the
// checkpoint cost and the mean time to failure.
package checkpoint

import (
	"math"

	"hourglass/internal/units"
)

// DalyInterval returns the optimal time between checkpoints for a
// configuration whose checkpoint takes tSave and whose mean time to
// failure is mttf: √(2·tSave·MTTF) (the paper's t_ckpt formula).
// Degenerate inputs yield +Inf (never checkpoint).
func DalyInterval(tSave, mttf units.Seconds) units.Seconds {
	if tSave <= 0 || mttf <= 0 {
		return units.Seconds(math.Inf(1))
	}
	return units.Seconds(math.Sqrt(2 * float64(tSave) * float64(mttf)))
}

// DalyHigherOrder returns Daly's higher-order estimate, which corrects
// the first-order interval when tSave is not ≪ MTTF:
//
//	t = √(2·tSave·M) · [1 + √(tSave/(2M))/3 + (tSave/(2M))/9] − tSave
//
// valid for tSave < 2M; otherwise the optimum degenerates to M.
func DalyHigherOrder(tSave, mttf units.Seconds) units.Seconds {
	if tSave <= 0 || mttf <= 0 {
		return units.Seconds(math.Inf(1))
	}
	s, m := float64(tSave), float64(mttf)
	if s >= 2*m {
		return mttf
	}
	r := math.Sqrt(s / (2 * m))
	t := math.Sqrt(2*s*m)*(1+r/3+r*r/9) - s
	return units.Seconds(t)
}

// ExpectedOverhead estimates the fraction of runtime spent on
// checkpointing plus expected recomputation for a given interval:
// tSave/interval (checkpoint cost) + interval/(2·MTTF) (mean half an
// interval lost per failure). Used by ablation benches to verify the
// Daly interval is near the minimum.
func ExpectedOverhead(interval, tSave, mttf units.Seconds) float64 {
	if interval <= 0 || mttf <= 0 {
		return math.Inf(1)
	}
	return float64(tSave)/float64(interval) + float64(interval)/(2*float64(mttf))
}
