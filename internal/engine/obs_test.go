package engine

import (
	"testing"

	"hourglass/internal/graph"
	"hourglass/internal/obs"
)

type captureSink struct{ events []obs.Event }

func (c *captureSink) Emit(e obs.Event) { c.events = append(c.events, e) }

// TestSuperstepEvents checks the engine's per-superstep trace stream:
// one EvSuperstep per superstep, aggregate counters matching Stats,
// monotonic superstep numbers, and wall-clock timings present.
func TestSuperstepEvents(t *testing.T) {
	g := graph.Path(64)
	sink := &captureSink{}
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 3, Sink: sink})

	if len(sink.events) != res.Stats.Supersteps {
		t.Fatalf("got %d superstep events, want %d", len(sink.events), res.Stats.Supersteps)
	}
	var msgs, calls int64
	for i, e := range sink.events {
		if e.Type != obs.EvSuperstep {
			t.Fatalf("event %d: type %q, want %q", i, e.Type, obs.EvSuperstep)
		}
		if e.Superstep != i+1 {
			t.Errorf("event %d: superstep %d, want %d", i, e.Superstep, i+1)
		}
		if e.Job != "sssp" {
			t.Errorf("event %d: job %q, want sssp", i, e.Job)
		}
		if e.NsStep < 0 {
			t.Errorf("event %d: negative ns %d", i, e.NsStep)
		}
		if e.ArenaBytes < 0 {
			t.Errorf("event %d: negative arena bytes %d", i, e.ArenaBytes)
		}
		msgs += e.Messages
		calls += e.Active
	}
	if msgs != int64(res.Stats.MessagesSent) {
		t.Errorf("summed messages %d, Stats.MessagesSent %d", msgs, res.Stats.MessagesSent)
	}
	if calls != int64(res.Stats.ComputeCalls) {
		t.Errorf("summed active %d, Stats.ComputeCalls %d", calls, res.Stats.ComputeCalls)
	}
}

// TestSuperstepCombinedCounter: PageRank's combiner folds same-target
// messages at the sender, so on a dense graph the combined count must
// be visible in the trace and bounded by the logical message count.
func TestSuperstepCombinedCounter(t *testing.T) {
	g := graph.Complete(32)
	sink := &captureSink{}
	runOK(t, g, &PageRank{Iterations: 3}, Config{Workers: 2, Sink: sink})

	var combined, msgs int64
	for _, e := range sink.events {
		combined += e.Combined
		msgs += e.Messages
	}
	if combined == 0 {
		t.Error("complete-graph PageRank folded no messages at the sender")
	}
	if combined > msgs {
		t.Errorf("combined %d exceeds logical messages %d", combined, msgs)
	}
}

// TestNilSinkIdenticalResults: tracing must not perturb execution.
func TestNilSinkIdenticalResults(t *testing.T) {
	g := graph.Path(32)
	plain := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2})
	traced := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2, Sink: &captureSink{}})
	if plain.Stats != traced.Stats {
		t.Errorf("stats diverged: %+v vs %+v", plain.Stats, traced.Stats)
	}
	for v := range plain.Values {
		if plain.Values[v] != traced.Values[v] {
			t.Fatalf("values diverged at %d", v)
		}
	}
}
