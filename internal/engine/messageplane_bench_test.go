package engine

import (
	"fmt"
	"testing"

	"hourglass/internal/graph"
)

// BenchmarkEngineMessagePlane is the engine's message-plane baseline:
// PageRank (combiner, dense every superstep), SSSP (combiner,
// frontier-shaped), and WCC (combiner, shrinking frontier) on a
// power-law RMAT graph at 1/4/8 workers, plus PageRank with the
// combiner hidden to exercise the pooled non-combiner path. Numbers
// feed BENCH_ENGINE.json (scripts/bench_engine.sh).
func BenchmarkEngineMessagePlane(b *testing.B) {
	p := graph.DefaultRMAT(12, 42)
	p.Undirected = true
	p.Weighted = true
	g := graph.RMAT(p)

	progs := []struct {
		name string
		mk   func() Program
	}{
		{"pagerank", func() Program { return &PageRank{Iterations: 10} }},
		{"pagerank-plain", func() Program { return &uncombined{&PageRank{Iterations: 10}} }},
		{"sssp", func() Program { return &SSSP{Source: 0} }},
		{"wcc", func() Program { return WCC{} }},
	}
	for _, pr := range progs {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", pr.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				var supersteps int64
				for i := 0; i < b.N; i++ {
					res, err := Run(g, pr.mk(), Config{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					supersteps += int64(res.Stats.Supersteps)
				}
				if supersteps > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(supersteps), "ns/superstep")
				}
			})
		}
	}
}
