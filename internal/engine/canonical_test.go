package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

func canonicalGraph(scale int, seed int64) *graph.Graph {
	p := graph.DefaultRMAT(scale, seed)
	p.Undirected = true
	return graph.RMAT(p)
}

// TestCanonicalPageRankBitIdenticalAcrossWorkerCounts is the property
// the eviction-aware runtime relies on: under Config.Canonical the
// floating-point sums of PageRank (per-vertex message folds and the
// dangling-mass aggregator) depend only on the multiset of inputs, so
// every worker count produces the same bits. Without Canonical this
// fails: sender-side combining folds in arrival order, and roughly
// half the vertices differ in their final ulps between worker counts.
func TestCanonicalPageRankBitIdenticalAcrossWorkerCounts(t *testing.T) {
	g := canonicalGraph(9, 11)
	ref, err := engine.Run(g, &engine.PageRank{Iterations: 10}, engine.Config{Workers: 1, Canonical: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8, 16} {
		res, err := engine.Run(g, &engine.PageRank{Iterations: 10}, engine.Config{Workers: w, Canonical: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for v := range ref.Values {
			if res.Values[v] != ref.Values[v] {
				t.Fatalf("workers=%d vertex %d: %x != %x", w, v, res.Values[v], ref.Values[v])
			}
		}
	}
}

// TestCanonicalMatchesDefaultWithinTolerance sanity-checks that the
// canonical reduction computes the same quantity as the default path,
// differing only in rounding order.
func TestCanonicalMatchesDefaultWithinTolerance(t *testing.T) {
	g := canonicalGraph(8, 12)
	def, err := engine.Run(g, &engine.PageRank{Iterations: 10}, engine.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := engine.Run(g, &engine.PageRank{Iterations: 10}, engine.Config{Workers: 4, Canonical: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range def.Values {
		if !engine.FloatEqual(def.Values[v], canon.Values[v], 1e-12) {
			t.Fatalf("vertex %d: canonical %v vs default %v", v, canon.Values[v], def.Values[v])
		}
	}
}

// TestCanonicalPauseResumeAcrossWorkerCounts pauses a canonical
// PageRank run mid-flight and resumes it under a different worker
// count; the final bits must match an uninterrupted canonical run.
func TestCanonicalPauseResumeAcrossWorkerCounts(t *testing.T) {
	g := canonicalGraph(8, 13)
	fresh := func() engine.Program { return &engine.PageRank{Iterations: 10} }
	ref, err := engine.Run(g, fresh(), engine.Config{Workers: 3, Canonical: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{1, 4}, {4, 1}, {2, 8}, {8, 3}} {
		res, err := engine.Run(g, fresh(), engine.Config{Workers: pair[0], Canonical: true, StopAfter: 4})
		if !errors.Is(err, engine.ErrPaused) {
			t.Fatalf("pause at %d workers: %v", pair[0], err)
		}
		final, err := engine.Resume(g, fresh(), res.Snapshot, engine.Config{Workers: pair[1], Canonical: true})
		if err != nil {
			t.Fatalf("resume at %d workers: %v", pair[1], err)
		}
		for v := range ref.Values {
			if final.Values[v] != ref.Values[v] {
				t.Fatalf("%d->%d workers, vertex %d: %x != %x",
					pair[0], pair[1], v, final.Values[v], ref.Values[v])
			}
		}
	}
}

// TestRunCtxInterrupt exercises the eviction signal: a cancelled
// context aborts the run with ErrInterrupted and no snapshot.
func TestRunCtxInterrupt(t *testing.T) {
	g := canonicalGraph(8, 14)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := engine.RunCtx(ctx, g, &engine.PageRank{Iterations: 10}, engine.Config{Workers: 2})
	if !errors.Is(err, engine.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if res.Snapshot != nil || res.Values != nil {
		t.Fatalf("interrupted run leaked state: %+v", res)
	}
}

// TestRunCtxInterruptMidSuperstep cancels while a Compute call is
// sleeping; the worker poll must abandon the superstep promptly
// instead of finishing the frontier.
func TestRunCtxInterruptMidSuperstep(t *testing.T) {
	g := canonicalGraph(8, 15)
	ctx, cancel := context.WithCancel(context.Background())
	slow := &slowProgram{inner: &engine.SSSP{Source: 0}, sleep: 5 * time.Millisecond, cancel: cancel}
	start := time.Now()
	_, err := engine.RunCtx(ctx, g, slow, engine.Config{Workers: 2})
	if !errors.Is(err, engine.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("interrupt took %v, poll not reached", elapsed)
	}
}

// slowProgram delays each Compute call and cancels its own run on the
// first call of superstep 2, simulating a wedge.
type slowProgram struct {
	inner  engine.Program
	sleep  time.Duration
	cancel context.CancelFunc
}

func (s *slowProgram) Name() string { return s.inner.Name() }
func (s *slowProgram) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return s.inner.Init(g, v)
}
func (s *slowProgram) Compute(ctx *engine.Context, v graph.VertexID, msgs []float64) {
	if ctx.Superstep() == 2 {
		s.cancel()
		time.Sleep(s.sleep)
	}
	s.inner.Compute(ctx, v, msgs)
}
