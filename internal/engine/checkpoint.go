package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"hourglass/internal/graph"
)

// Snapshot is a consistent checkpoint of an execution, taken at a
// superstep barrier. It contains only location-independent vertex
// state, so it can be restored on a deployment with a different number
// of workers and a different partitioning — the property that lets
// Hourglass recover from evictions onto arbitrary configurations (§6).
type Snapshot struct {
	Program     string
	Superstep   int
	NumVertices int
	Values      []float64
	Active      []bool
	// Pending are the messages delivered but not yet consumed (the
	// inbox of the superstep the snapshot resumes into).
	Pending   []Message
	AggValues map[string]float64
	// Aux carries program-specific per-vertex state (AuxState).
	Aux []byte
}

// snapshot captures the current barrier state of a run. Pending holds
// the delivered-but-unconsumed inbox: with a combiner that is the one
// folded value per messaged vertex (checkpoints shrink accordingly);
// otherwise the vertex's arena slice in arrival order. Entries are
// sorted by destination so the wire layout matches the historical
// vertex-ascending order.
func (r *run) snapshot() (*Snapshot, error) {
	s := &Snapshot{
		Program:     r.prog.Name(),
		Superstep:   r.superstep,
		NumVertices: r.g.NumVertices(),
		Values:      append([]float64(nil), r.values...),
		Active:      append([]bool(nil), r.active...),
		AggValues:   map[string]float64{},
	}
	for _, w := range r.workers {
		for _, v := range w.cur {
			if r.comb != nil {
				if r.inSet[v] {
					s.Pending = append(s.Pending, Message{v, r.inVal[v]})
				}
			} else if n := r.msgLen[v]; n > 0 {
				end := r.msgEnd[v]
				for _, val := range w.arena[end-n : end] {
					s.Pending = append(s.Pending, Message{v, val})
				}
			}
		}
	}
	sort.SliceStable(s.Pending, func(i, j int) bool { return s.Pending[i].Dst < s.Pending[j].Dst })
	for name, agg := range r.aggs {
		s.AggValues[name] = agg.value
	}
	if aux, ok := r.prog.(AuxState); ok {
		b, err := aux.MarshalAux()
		if err != nil {
			return nil, fmt.Errorf("engine: aux snapshot: %w", err)
		}
		s.Aux = b
	}
	return s, nil
}

const snapshotMagic = uint32(0x48474350) // "HGCP"

// WriteTo serialises the snapshot (checkpoint upload to the datastore).
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) {
		if bw.err == nil {
			bw.err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	write(snapshotMagic)
	writeString(bw, write, s.Program)
	write(uint32(s.Superstep))
	write(uint64(s.NumVertices))
	write(s.Values)
	active := make([]uint8, len(s.Active))
	for i, a := range s.Active {
		if a {
			active[i] = 1
		}
	}
	write(active)
	write(uint64(len(s.Pending)))
	for _, m := range s.Pending {
		write(int32(m.Dst))
		write(m.Val)
	}
	write(uint32(len(s.AggValues)))
	for name, v := range s.AggValues {
		writeString(bw, write, name)
		write(v)
	}
	write(uint64(len(s.Aux)))
	if bw.err == nil && len(s.Aux) > 0 {
		_, bw.err = bw.Write(s.Aux)
	}
	if bw.err == nil {
		bw.err = bw.w.(*bufio.Writer).Flush()
	}
	return bw.n, bw.err
}

func writeString(bw *countingWriter, write func(any), s string) {
	write(uint32(len(s)))
	if bw.err == nil {
		_, bw.err = bw.Write([]byte(s))
	}
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadSnapshot deserialises a checkpoint written by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("engine: bad checkpoint magic %#x", magic)
	}
	s := &Snapshot{AggValues: map[string]float64{}}
	var err error
	if s.Program, err = readString(br); err != nil {
		return nil, err
	}
	var step uint32
	if err := binary.Read(br, binary.LittleEndian, &step); err != nil {
		return nil, err
	}
	s.Superstep = int(step)
	var nv uint64
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	s.NumVertices = int(nv)
	s.Values = make([]float64, nv)
	if err := binary.Read(br, binary.LittleEndian, &s.Values); err != nil {
		return nil, err
	}
	activeRaw := make([]uint8, nv)
	if err := binary.Read(br, binary.LittleEndian, &activeRaw); err != nil {
		return nil, err
	}
	s.Active = make([]bool, nv)
	for i, a := range activeRaw {
		s.Active[i] = a != 0
	}
	var np uint64
	if err := binary.Read(br, binary.LittleEndian, &np); err != nil {
		return nil, err
	}
	s.Pending = make([]Message, np)
	for i := range s.Pending {
		var dst int32
		var val float64
		if err := binary.Read(br, binary.LittleEndian, &dst); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &val); err != nil {
			return nil, err
		}
		s.Pending[i] = Message{graph.VertexID(dst), val}
	}
	var na uint32
	if err := binary.Read(br, binary.LittleEndian, &na); err != nil {
		return nil, err
	}
	for i := uint32(0); i < na; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		s.AggValues[name] = v
	}
	var nx uint64
	if err := binary.Read(br, binary.LittleEndian, &nx); err != nil {
		return nil, err
	}
	if nx > 0 {
		s.Aux = make([]byte, nx)
		if _, err := io.ReadFull(br, s.Aux); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func readString(br io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// SizeBytes estimates the serialised size without writing (used by the
// perf model to price a checkpoint upload).
func (s *Snapshot) SizeBytes() int64 {
	b := int64(4 + 4 + len(s.Program) + 4 + 8)
	b += int64(len(s.Values)) * 8
	b += int64(len(s.Active))
	b += 8 + int64(len(s.Pending))*12
	b += 4
	for name := range s.AggValues {
		b += int64(4+len(name)) + 8
	}
	b += 8 + int64(len(s.Aux))
	return b
}
