package engine

import (
	"errors"
	"math"
	"sync"
	"testing"

	"hourglass/internal/graph"
)

// foldProbe is a combiner program that records the largest msgs slice
// Compute ever observed. With a combiner present the engine must fold
// every message addressed to a vertex into a single value — including
// pending messages restored from a checkpoint. It sums what it sees so
// the fold total is also checkable.
type foldProbe struct {
	mu      sync.Mutex
	maxMsgs int
}

func (p *foldProbe) Name() string { return "foldprobe" }
func (p *foldProbe) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 0, false
}
func (p *foldProbe) Combine(a, b float64) float64 { return a + b }
func (p *foldProbe) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	p.mu.Lock()
	if len(msgs) > p.maxMsgs {
		p.maxMsgs = len(msgs)
	}
	p.mu.Unlock()
	sum := ctx.Value(v)
	for _, m := range msgs {
		sum += m
	}
	ctx.SetValue(v, sum)
	ctx.VoteToHalt(v)
}

// TestResumeFoldsPendingWithCombiner is the regression test for the
// old delivery loop's `len(box) == 1` combiner branch: a checkpoint
// carrying several uncombined messages for one vertex (e.g. written by
// an engine without sender-side combining) left duplicates in the
// inbox, so Compute saw more than one message despite the combiner.
// The message plane must fold unconditionally.
func TestResumeFoldsPendingWithCombiner(t *testing.T) {
	g := graph.Path(4)
	probe := &foldProbe{}
	snap := &Snapshot{
		Program:     probe.Name(),
		Superstep:   3,
		NumVertices: g.NumVertices(),
		Values:      make([]float64, g.NumVertices()),
		Active:      make([]bool, g.NumVertices()),
		Pending:     []Message{{1, 1}, {1, 2}, {1, 4}, {2, 8}},
		AggValues:   map[string]float64{},
	}
	res, err := Resume(g, probe, snap, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if probe.maxMsgs > 1 {
		t.Errorf("combiner program saw %d messages in one Compute call, want ≤1", probe.maxMsgs)
	}
	if res.Values[1] != 7 || res.Values[2] != 8 {
		t.Errorf("folded values = %v/%v, want 7/8", res.Values[1], res.Values[2])
	}
}

// TestPauseResumeEquivalence pauses runs mid-flight on both message
// planes (dense combiner slots and pooled arenas), resumes them — on a
// different worker count, as fast reload does — and checks the final
// values match an uninterrupted run. Exact equality where the fold is
// exact (min), tight epsilon where float sums reassociate (PageRank).
func TestPauseResumeEquivalence(t *testing.T) {
	p := graph.DefaultRMAT(10, 21)
	p.Undirected = true
	p.Weighted = true
	g := graph.RMAT(p)
	cases := []struct {
		name string
		mk   func() Program
		eps  float64
	}{
		{"sssp-combined", func() Program { return &SSSP{Source: 3} }, 0},
		{"sssp-pooled", func() Program { return &uncombined{&SSSP{Source: 3}} }, 0},
		{"wcc-combined", func() Program { return WCC{} }, 0},
		{"pagerank-combined", func() Program { return &PageRank{Iterations: 12} }, 1e-12},
		{"labelprop-pooled", func() Program { return &LabelPropagation{Rounds: 8} }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := runOK(t, g, tc.mk(), Config{Workers: 4})
			for _, stopAfter := range []int{1, 3} {
				res, err := Run(g, tc.mk(), Config{Workers: 4, StopAfter: stopAfter})
				if err == nil {
					continue // finished before the pause point
				}
				if !errors.Is(err, ErrPaused) {
					t.Fatal(err)
				}
				resumed, err := Resume(g, tc.mk(), res.Snapshot, Config{Workers: 3})
				if err != nil {
					t.Fatal(err)
				}
				for v := range full.Values {
					if !FloatEqual(full.Values[v], resumed.Values[v], tc.eps) {
						t.Fatalf("stopAfter=%d diverged at vertex %d: %v vs %v",
							stopAfter, v, resumed.Values[v], full.Values[v])
					}
				}
			}
		})
	}
}

// TestWorklistComputesExactFrontier checks the active worklists
// neither drop nor duplicate work: SSSP on an undirected path has a
// fully determined schedule — each superstep computes the frontier
// vertex plus (from superstep 2 on) the already-settled predecessor
// the frontier pinged back, and nothing else.
func TestWorklistComputesExactFrontier(t *testing.T) {
	n := 64
	g := graph.Path(n)
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 4, CollectStepStats: true})
	if len(res.StepStats) != n+1 {
		t.Fatalf("got %d supersteps, want %d", len(res.StepStats), n+1)
	}
	for i, st := range res.StepStats {
		want := int64(2)
		if i <= 1 || i == n {
			want = 1
		}
		if st.Active != want {
			t.Errorf("superstep %d computed %d vertices, want %d", i, st.Active, want)
		}
	}
	// 2n-1 total compute calls: strictly frontier-proportional, no
	// full-graph sweeps.
	if res.Stats.ComputeCalls != int64(2*n-1) {
		t.Errorf("ComputeCalls = %d, want %d (frontier-proportional)", res.Stats.ComputeCalls, 2*n-1)
	}
}

// TestHaltedVertexReawakensOnce: a vertex messaged by many senders
// spread over several workers in the same superstep must be
// re-enqueued exactly once, on both message planes.
func TestHaltedVertexReawakensOnce(t *testing.T) {
	// Directed star toward vertex 0: eight leaves on four workers all
	// message vertex 0 in superstep 0.
	edges := []graph.Edge{}
	for i := 1; i < 9; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0, Weight: 1})
	}
	g := graph.FromEdges(9, edges)
	for _, tc := range []struct {
		name string
		prog Program
	}{
		{"combined", WCC{}},
		{"pooled", &uncombined{WCC{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := runOK(t, g, tc.prog, Config{Workers: 4, CollectStepStats: true})
			if res.Values[0] != 0 {
				t.Fatalf("component[0] = %v, want 0", res.Values[0])
			}
			// Superstep 0 computes all 9 vertices; superstep 1 computes
			// vertex 0 once (a single worklist entry despite in-degree 8).
			if res.StepStats[0].Active != 9 {
				t.Errorf("superstep 0 computed %d vertices, want 9", res.StepStats[0].Active)
			}
			if res.StepStats[1].Active != 1 {
				t.Errorf("superstep 1 computed %d vertices, want 1", res.StepStats[1].Active)
			}
		})
	}
}

// TestEightWorkerPowerLawUnderRace drives both message planes with 8
// workers on a power-law RMAT graph, including two concurrent runs on
// the shared graph — the -race CI job turns this into a data-race
// audit of the compute/delivery sharding.
func TestEightWorkerPowerLawUnderRace(t *testing.T) {
	p := graph.DefaultRMAT(11, 5)
	p.Undirected = true
	g := graph.RMAT(p)

	var wg sync.WaitGroup
	results := make([]Result, 2)
	for i, prog := range []Program{
		&PageRank{Iterations: 8},                  // combiner plane
		&uncombined{&LabelPropagation{Rounds: 8}}, // pooled plane
	} {
		wg.Add(1)
		go func(i int, prog Program) {
			defer wg.Done()
			res, err := Run(g, prog, Config{Workers: 8})
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, prog)
	}
	wg.Wait()

	sum := 0.0
	for _, r := range results[0].Values {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("concurrent pagerank mass = %v, want 1", sum)
	}
	if n := Communities(results[1].Values); n < 1 || n > g.NumVertices() {
		t.Errorf("labelprop found %d communities", n)
	}

	// And the dense plane must agree with a single-worker reference.
	ref := runOK(t, g, &PageRank{Iterations: 8}, Config{Workers: 1})
	for v := range ref.Values {
		if !FloatEqual(ref.Values[v], results[0].Values[v], 1e-12) {
			t.Fatalf("8-worker rank diverged at %d: %v vs %v", v, results[0].Values[v], ref.Values[v])
		}
	}
}
