package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/faultinject"
	"hourglass/internal/units"
)

// TestClearRemovesNumberedBlobs is the regression test for the stale
// checkpoint resurrection bug: Clear used to delete only the latest
// pointer, so a later recurrent execution of the same job that lost
// its own pointer would fall back to the *previous* execution's
// high-superstep blob.
func TestClearRemovesNumberedBlobs(t *testing.T) {
	store := cloud.NewDatastore()
	m := &CheckpointManager{Store: store, Job: "recur/pr"}
	g := undirectedRMAT(8, 21)

	// Execution 1 checkpoints at superstep 6, then completes and clears.
	res1, err := Run(g, &PageRank{Iterations: 10}, Config{Workers: 2, StopAfter: 6})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res1.Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := m.Clear(); err != nil {
		t.Fatalf("clear: %v", err)
	}
	for _, k := range store.Keys() {
		if strings.HasPrefix(k, "ckpt/recur/pr/") {
			t.Fatalf("blob %q survived Clear", k)
		}
	}

	// Execution 2 of the same recurrent job checkpoints at superstep 2,
	// then its latest pointer dangles. The fallback scan must restore
	// execution 2's superstep-2 checkpoint — with the old Clear, the
	// leftover superstep-6 blob from execution 1 would win instead.
	res2, err := Run(g, &PageRank{Iterations: 10}, Config{Workers: 2, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res2.Snapshot); err != nil {
		t.Fatal(err)
	}
	store.Put(fmt.Sprintf("ckpt/%s/latest", m.Job), []byte("ckpt/recur/pr/99999999"))
	snap, _, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Superstep != res2.Snapshot.Superstep {
		t.Fatalf("resurrected superstep %d from a previous execution, want %d",
			snap.Superstep, res2.Snapshot.Superstep)
	}
}

// failDeleteStore fails every Delete, simulating a store whose
// garbage-collection permission was revoked.
type failDeleteStore struct {
	cloud.BlobStore
}

var errNoDelete = errors.New("delete forbidden")

func (s *failDeleteStore) Delete(string) error { return errNoDelete }

// TestClearReportsDeleteErrors asserts Delete failures are returned,
// not swallowed, and that RunDurable logs them on its success path.
func TestClearReportsDeleteErrors(t *testing.T) {
	store := &failDeleteStore{BlobStore: cloud.NewDatastore()}
	var logged []string
	m := &CheckpointManager{
		Store: store,
		Job:   "nogc/pr",
		Logf:  func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	}
	g := undirectedRMAT(8, 22)
	if _, _, err := m.RunDurable(g, &PageRank{Iterations: 6}, Config{Workers: 2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Clear(); !errors.Is(err, errNoDelete) {
		t.Fatalf("Clear swallowed the delete failure: %v", err)
	}
	if len(logged) == 0 {
		t.Fatal("RunDurable did not log the Clear failure")
	}
	if !strings.Contains(logged[0], "nogc/pr") {
		t.Fatalf("log line does not identify the job: %q", logged[0])
	}
}

// failAfterStore lets the first `allow` Puts through, then fails every
// later Put — the second checkpoint save exhausts the retry budget.
type failAfterStore struct {
	cloud.BlobStore
	allow int
	puts  int
}

var errQuotaExceeded = errors.New("write quota exceeded")

func (s *failAfterStore) Put(key string, data []byte) (units.Seconds, error) {
	s.puts++
	if s.puts > s.allow {
		return 0, errQuotaExceeded
	}
	return s.BlobStore.Put(key, data)
}

// TestRunDurableReturnsIOTimeOnSaveFailure is the regression test for
// the discarded-ioTime bug: when a checkpoint save fails, RunDurable
// used to return 0 I/O time, so callers could not bill the uploads and
// backoff already spent. The store is layered over fault injection so
// the surviving saves also carry injected latency.
func TestRunDurableReturnsIOTimeOnSaveFailure(t *testing.T) {
	inner := faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{
		Seed: 7, MaxLatency: 0.2,
	})
	// A save is two Puts (blob + latest pointer): the first checkpoint
	// succeeds, the second fails.
	store := &failAfterStore{BlobStore: inner, allow: 2}
	m := &CheckpointManager{Store: store, Job: "quota/pr"}
	g := undirectedRMAT(8, 23)

	_, ioTime, err := m.RunDurable(g, &PageRank{Iterations: 10}, Config{Workers: 2}, 2)
	if !errors.Is(err, errQuotaExceeded) {
		t.Fatalf("err = %v, want the injected save failure", err)
	}
	if ioTime <= 0 {
		t.Fatalf("ioTime = %v: the successful first save and the failed save's backoff were discarded", ioTime)
	}
}

// TestSaveReturnsPartialTimeOnFailure pins the Save contract the
// runtime's billing relies on: an exhausted retry budget still reports
// the virtual time burned before giving up.
func TestSaveReturnsPartialTimeOnFailure(t *testing.T) {
	store := &failAfterStore{BlobStore: cloud.NewDatastore(), allow: 0}
	m := &CheckpointManager{Store: store, Job: "deny/pr"}
	g := undirectedRMAT(8, 24)
	res, err := Run(g, &PageRank{Iterations: 6}, Config{Workers: 1, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	spent, err := m.Save(res.Snapshot)
	if err == nil {
		t.Fatal("save succeeded against a write-denied store")
	}
	if spent <= 0 {
		t.Fatalf("spent = %v: retry backoff not billed on failure", spent)
	}
}
