package engine

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hourglass/internal/graph"
)

func runOK(t *testing.T, g *graph.Graph, p Program, cfg Config) Result {
	t.Helper()
	res, err := Run(g, p, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name(), err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := Run(g, &SSSP{}, Config{Workers: 0}); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := Run(g, &SSSP{}, Config{Workers: 2, Assign: []int32{0}}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Run(g, &SSSP{}, Config{Workers: 2, Assign: []int32{0, 1, 2, 0}}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestSSSPOnPath(t *testing.T) {
	g := graph.Path(5)
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2})
	for v, want := range []float64{0, 1, 2, 3, 4} {
		if res.Values[v] != want {
			t.Errorf("dist[%d] = %v, want %v", v, res.Values[v], want)
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	// 0 →(5) 1, 0 →(1) 2 →(1) 1: shortest 0→1 is 2 via vertex 2.
	g := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
	}, graph.Weighted())
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 1})
	if res.Values[1] != 2 {
		t.Errorf("dist[1] = %v, want 2", res.Values[1])
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2})
	if !math.IsInf(res.Values[2], 1) {
		t.Errorf("dist[2] = %v, want +Inf", res.Values[2])
	}
}

func TestSSSPMatchesDijkstraOnRandomGraph(t *testing.T) {
	p := graph.DefaultRMAT(9, 17)
	p.Undirected = true
	p.Weighted = true
	g := graph.RMAT(p)
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 4})
	want := dijkstra(g, 0)
	for v := range want {
		if !FloatEqual(res.Values[v], want[v], 1e-9) {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

// dijkstra is a reference implementation (O(V²), fine for tests).
func dijkstra(g *graph.Graph, src graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		weights := g.EdgeWeights(graph.VertexID(u))
		for i, nb := range g.Neighbors(graph.VertexID(u)) {
			w := 1.0
			if weights != nil {
				w = float64(weights[i])
			}
			if dist[u]+w < dist[nb] {
				dist[nb] = dist[u] + w
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	p := graph.DefaultRMAT(9, 5)
	p.Undirected = true // no dangling sinks, rank mass conserved
	g := graph.RMAT(p)
	res := runOK(t, g, &PageRank{Iterations: 20}, Config{Workers: 4})
	sum := 0.0
	for _, r := range res.Values {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("rank sum = %v, want 1", sum)
	}
}

func TestPageRankRingIsUniform(t *testing.T) {
	g := graph.Ring(10)
	res := runOK(t, g, &PageRank{Iterations: 30}, Config{Workers: 3})
	for v, r := range res.Values {
		if !FloatEqual(r, 0.1, 1e-9) {
			t.Errorf("rank[%d] = %v, want 0.1", v, r)
		}
	}
}

func TestPageRankHubGetsMoreRank(t *testing.T) {
	// Star: center receives from all leaves.
	edges := []graph.Edge{}
	for i := 1; i < 10; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0, Weight: 1})
	}
	// Center links back to leaf 1 so rank keeps flowing.
	edges = append(edges, graph.Edge{Src: 0, Dst: 1, Weight: 1})
	g := graph.FromEdges(10, edges)
	res := runOK(t, g, &PageRank{Iterations: 30}, Config{Workers: 2})
	for v := 2; v < 10; v++ {
		if res.Values[0] <= res.Values[v] {
			t.Errorf("hub rank %v not above leaf %d rank %v", res.Values[0], v, res.Values[v])
		}
	}
}

func TestPageRankDeterministicAcrossWorkerCounts(t *testing.T) {
	p := graph.DefaultRMAT(8, 5)
	p.Undirected = true
	g := graph.RMAT(p)
	r1 := runOK(t, g, &PageRank{Iterations: 10}, Config{Workers: 1})
	r8 := runOK(t, g, &PageRank{Iterations: 10}, Config{Workers: 8})
	for v := range r1.Values {
		if !FloatEqual(r1.Values[v], r8.Values[v], 1e-12) {
			t.Fatalf("rank[%d] differs across worker counts: %v vs %v", v, r1.Values[v], r8.Values[v])
		}
	}
}

func TestWCCOnTwoComponents(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1},
	}, graph.Undirected())
	res := runOK(t, g, WCC{}, Config{Workers: 2})
	for v := 0; v < 3; v++ {
		if res.Values[v] != 0 {
			t.Errorf("component[%d] = %v, want 0", v, res.Values[v])
		}
	}
	for v := 3; v < 6; v++ {
		if res.Values[v] != 3 {
			t.Errorf("component[%d] = %v, want 3", v, res.Values[v])
		}
	}
}

func TestBFSLevels(t *testing.T) {
	g := graph.Grid(3, 3) // vertex 0 at corner
	res := runOK(t, g, &BFS{Source: 0}, Config{Workers: 2})
	want := []float64{0, 1, 2, 1, 2, 3, 2, 3, 4}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Errorf("level[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestGraphColoringValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.Ring(11)},
		{"complete", graph.Complete(8)},
		{"grid", graph.Grid(8, 8)},
		{"rmat", undirectedRMAT(10, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := runOK(t, tc.g, &GraphColoring{}, Config{Workers: 4})
			colors, ok := ValidateColoring(tc.g, res.Values)
			if !ok {
				t.Fatal("invalid coloring: adjacent vertices share a color")
			}
			if colors < 1 {
				t.Fatal("no colors used")
			}
			maxColors := tc.g.MaxDegree() + 1 // greedy bound
			if colors > maxColors {
				t.Errorf("used %d colors, greedy bound %d", colors, maxColors)
			}
		})
	}
}

func TestGraphColoringCompleteUsesNColors(t *testing.T) {
	g := graph.Complete(6)
	res := runOK(t, g, &GraphColoring{}, Config{Workers: 2})
	colors, ok := ValidateColoring(g, res.Values)
	if !ok || colors != 6 {
		t.Errorf("K6 coloring: %d colors, valid=%v; want exactly 6", colors, ok)
	}
}

func undirectedRMAT(scale int, seed int64) *graph.Graph {
	p := graph.DefaultRMAT(scale, seed)
	p.Undirected = true
	return graph.RMAT(p)
}

func TestStatsPopulated(t *testing.T) {
	g := graph.Path(6)
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2})
	if res.Stats.Supersteps == 0 || res.Stats.MessagesSent == 0 || res.Stats.ComputeCalls == 0 {
		t.Errorf("empty stats: %+v", res.Stats)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	g := graph.Ring(4)
	// PageRank with huge iteration count trips the guard.
	_, err := Run(g, &PageRank{Iterations: 100}, Config{Workers: 1, MaxSupersteps: 5})
	if err == nil {
		t.Fatal("expected superstep-limit error")
	}
}

func TestPauseAndResumeSameConfig(t *testing.T) {
	g := undirectedRMAT(9, 7)
	full := runOK(t, g, &PageRank{Iterations: 12}, Config{Workers: 4})

	res, err := Run(g, &PageRank{Iterations: 12}, Config{Workers: 4, StopAfter: 5})
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	if res.Snapshot == nil {
		t.Fatal("paused run has no snapshot")
	}
	resumed, err := Resume(g, &PageRank{Iterations: 12}, res.Snapshot, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range full.Values {
		if !FloatEqual(full.Values[v], resumed.Values[v], 1e-12) {
			t.Fatalf("resume diverged at vertex %d: %v vs %v", v, resumed.Values[v], full.Values[v])
		}
	}
}

func TestResumeOnDifferentWorkerCount(t *testing.T) {
	// The fast-reload property: a checkpoint from a 4-worker run must
	// restore correctly on 2 or 8 workers with a different assignment.
	g := undirectedRMAT(9, 8)
	full := runOK(t, g, &PageRank{Iterations: 10}, Config{Workers: 4})
	res, err := Run(g, &PageRank{Iterations: 10}, Config{Workers: 4, StopAfter: 4})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		resumed, err := Resume(g, &PageRank{Iterations: 10}, res.Snapshot, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v := range full.Values {
			if !FloatEqual(full.Values[v], resumed.Values[v], 1e-12) {
				t.Fatalf("workers=%d diverged at %d", workers, v)
			}
		}
	}
}

func TestResumeGraphColoringWithAuxState(t *testing.T) {
	g := undirectedRMAT(9, 9)
	fullProg := &GraphColoring{}
	full := runOK(t, g, fullProg, Config{Workers: 4})

	pauseProg := &GraphColoring{}
	res, err := Run(g, pauseProg, Config{Workers: 4, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("expected pause, got %v", err)
	}
	// Round-trip the snapshot through the binary codec too.
	var buf bytes.Buffer
	if _, err := res.Snapshot.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumeProg := &GraphColoring{}
	resumed, err := Resume(g, resumeProg, snap, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ValidateColoring(g, resumed.Values); !ok {
		t.Fatal("resumed coloring invalid")
	}
	// Jones–Plassmann is deterministic given priorities, so the resumed
	// coloring must equal the uninterrupted one.
	for v := range full.Values {
		if full.Values[v] != resumed.Values[v] {
			t.Fatalf("color[%d] = %v after resume, want %v", v, resumed.Values[v], full.Values[v])
		}
	}
}

func TestResumeRejectsMismatches(t *testing.T) {
	g := graph.Path(4)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 1, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := Resume(g, &SSSP{}, res.Snapshot, Config{Workers: 1}); err == nil {
		t.Error("program mismatch accepted")
	}
	if _, err := Resume(graph.Path(5), &PageRank{Iterations: 8}, res.Snapshot, Config{Workers: 1}); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
	if _, err := Resume(g, &PageRank{Iterations: 8}, nil, Config{Workers: 1}); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := &Snapshot{
		Program:     "pagerank",
		Superstep:   3,
		NumVertices: 2,
		Values:      []float64{0.25, 0.75},
		Active:      []bool{true, false},
		Pending:     []Message{{0, 1.5}, {1, 2.5}},
		AggValues:   map[string]float64{"sum": 4.2},
		Aux:         []byte{9, 8, 7},
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if s.SizeBytes() != n {
		t.Errorf("SizeBytes = %d, actual %d", s.SizeBytes(), n)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != s.Program || back.Superstep != s.Superstep ||
		back.NumVertices != s.NumVertices || len(back.Pending) != 2 ||
		back.AggValues["sum"] != 4.2 || !bytes.Equal(back.Aux, s.Aux) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.Values[1] != 0.75 || back.Active[0] != true || back.Active[1] != false {
		t.Errorf("vertex state mismatch: %+v", back)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte{0, 1, 2, 3})); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

// aggregatorProbe exercises the aggregator machinery: counts active
// vertices each superstep via a sum aggregator and stops when the
// count seen from the previous superstep reaches the vertex count.
type aggregatorProbe struct{ seen []float64 }

func (a *aggregatorProbe) Name() string { return "aggprobe" }
func (a *aggregatorProbe) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 0, true
}
func (a *aggregatorProbe) Aggregators() []AggregatorSpec {
	return []AggregatorSpec{{Name: "count", Identity: 0, Reduce: func(x, y float64) float64 { return x + y }}}
}
func (a *aggregatorProbe) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	if v == 0 {
		a.seen = append(a.seen, ctx.AggregatedValue("count"))
	}
	ctx.Aggregate("count", 1)
	if ctx.Superstep() >= 2 {
		ctx.VoteToHalt(v)
	}
}

func TestAggregatorsReduceAcrossWorkers(t *testing.T) {
	g := graph.Ring(12)
	probe := &aggregatorProbe{}
	runOK(t, g, probe, Config{Workers: 4})
	// Superstep 0 sees the identity, later supersteps see 12.
	if probe.seen[0] != 0 {
		t.Errorf("superstep 0 aggregate = %v, want identity 0", probe.seen[0])
	}
	if probe.seen[1] != 12 {
		t.Errorf("superstep 1 aggregate = %v, want 12", probe.seen[1])
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	// On a star toward vertex 0, min-combining SSSP messages must not
	// change results (correctness is covered elsewhere); here we check
	// the inbox actually collapses: run WCC on a complete graph and
	// ensure it terminates quickly with combined messages.
	g := graph.Complete(16)
	res := runOK(t, g, WCC{}, Config{Workers: 4})
	for _, v := range res.Values {
		if v != 0 {
			t.Fatalf("complete graph must collapse to component 0, got %v", v)
		}
	}
}

func TestCustomAssignmentRouting(t *testing.T) {
	g := graph.Path(8)
	assign := []int32{0, 1, 0, 1, 0, 1, 0, 1}
	res := runOK(t, g, &SSSP{Source: 0}, Config{Workers: 2, Assign: assign})
	for v := 0; v < 8; v++ {
		if res.Values[v] != float64(v) {
			t.Fatalf("dist[%d] = %v with custom assignment", v, res.Values[v])
		}
	}
}

func TestRemoteMessagesTrackPartitionQuality(t *testing.T) {
	// A good partitioning keeps neighbours co-located, so the engine
	// should ship far fewer cross-worker messages than under hashing —
	// the §3.2 claim connecting partition quality to runtime.
	g := graph.Grid(24, 24)
	workers := 4
	// Contiguous stripes of the grid: near-optimal locality.
	striped := make([]int32, g.NumVertices())
	per := (g.NumVertices() + workers - 1) / workers
	for v := range striped {
		striped[v] = int32(v / per)
	}
	good := runOK(t, g, &PageRank{Iterations: 5},
		Config{Workers: workers, Assign: striped})
	hashed := runOK(t, g, &PageRank{Iterations: 5}, Config{Workers: workers})
	if good.Stats.MessagesSent != hashed.Stats.MessagesSent {
		t.Fatalf("total messages differ: %d vs %d", good.Stats.MessagesSent, hashed.Stats.MessagesSent)
	}
	if good.Stats.RemoteMessages*2 >= hashed.Stats.RemoteMessages {
		t.Errorf("striped remote=%d not well below hashed remote=%d",
			good.Stats.RemoteMessages, hashed.Stats.RemoteMessages)
	}
	if good.Stats.RemoteMessages > good.Stats.MessagesSent {
		t.Error("remote exceeds total")
	}
}

// uncombined wraps a Program to hide its Combiner interface, forcing
// the engine down the append-every-message path. Aggregators are
// forwarded (only combining is suppressed).
type uncombined struct{ Program }

func (u *uncombined) Aggregators() []AggregatorSpec {
	if a, ok := u.Program.(Aggregators); ok {
		return a.Aggregators()
	}
	return nil
}

func TestCombinerEquivalence(t *testing.T) {
	// Results must be identical with and without message combining
	// (PageRank sums and SSSP mins are associative+commutative).
	g := undirectedRMAT(9, 33)
	pr := runOK(t, g, &PageRank{Iterations: 10}, Config{Workers: 4})
	prPlain := runOK(t, g, &uncombined{&PageRank{Iterations: 10}}, Config{Workers: 4})
	for v := range pr.Values {
		if !FloatEqual(pr.Values[v], prPlain.Values[v], 1e-9) {
			t.Fatalf("pagerank combiner changed result at %d: %v vs %v",
				v, pr.Values[v], prPlain.Values[v])
		}
	}
	sp := runOK(t, g, &SSSP{Source: 1}, Config{Workers: 4})
	spPlain := runOK(t, g, &uncombined{&SSSP{Source: 1}}, Config{Workers: 4})
	for v := range sp.Values {
		if !FloatEqual(sp.Values[v], spPlain.Values[v], 0) {
			t.Fatalf("sssp combiner changed result at %d", v)
		}
	}
	// And combining must actually reduce inbox traffic on dense graphs
	// (same messages sent, fewer stored — observable via identical
	// stats but it must not *increase* anything).
	if pr.Stats.MessagesSent != prPlain.Stats.MessagesSent {
		t.Errorf("combiner changed send counts: %d vs %d",
			pr.Stats.MessagesSent, prPlain.Stats.MessagesSent)
	}
}
