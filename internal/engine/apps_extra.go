package engine

import (
	"hourglass/internal/graph"
)

// LabelPropagation is a community-detection program (the recurrent
// analysis that motivates the paper's cost argument in §1): each
// vertex repeatedly adopts the most frequent label among its
// neighbours, breaking ties toward the smaller label. Runs for a fixed
// number of rounds (the algorithm is not guaranteed to converge on
// bipartite-ish structures, so a bound is standard practice).
type LabelPropagation struct {
	Rounds int // 0 = 20
}

// Name implements Program.
func (l *LabelPropagation) Name() string { return "labelprop" }

func (l *LabelPropagation) rounds() int {
	if l.Rounds == 0 {
		return 20
	}
	return l.Rounds
}

// Init implements Program: every vertex starts in its own community.
func (l *LabelPropagation) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return float64(v), true
}

// Compute implements Program.
func (l *LabelPropagation) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	if ctx.Superstep() > 0 {
		best, bestCount := ctx.Value(v), 0
		counts := map[float64]int{}
		for _, m := range msgs {
			counts[m]++
			c := counts[m]
			if c > bestCount || (c == bestCount && m < best) {
				best, bestCount = m, c
			}
		}
		if bestCount > 0 {
			ctx.SetValue(v, best)
		}
	}
	if ctx.Superstep() < l.rounds() {
		ctx.SendToNeighbors(v, ctx.Value(v))
	} else {
		ctx.VoteToHalt(v)
	}
}

// Communities returns the distinct labels in a result.
func Communities(values []float64) int {
	set := map[float64]bool{}
	for _, v := range values {
		set[v] = true
	}
	return len(set)
}

// KCore computes membership of the k-core for a fixed K: the maximal
// subgraph in which every vertex has degree ≥ K. Iterative peeling: a
// vertex whose count of surviving neighbours drops below K leaves the
// core and notifies its neighbours. Vertex value = 1 if the vertex is
// in the K-core, else 0. Coreness of every vertex can be obtained by
// sweeping K (see CorenessSweep).
type KCore struct {
	K int

	remaining []int32
	alive     []bool
}

// Name implements Program.
func (c *KCore) Name() string { return "kcore" }

// Init implements Program.
func (c *KCore) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 1, true
}

// InitAux implements AuxState (per-vertex survival bookkeeping).
func (c *KCore) InitAux(g *graph.Graph) {
	n := g.NumVertices()
	c.remaining = make([]int32, n)
	c.alive = make([]bool, n)
	for v := 0; v < n; v++ {
		c.remaining[v] = int32(g.Degree(graph.VertexID(v)))
		c.alive[v] = true
	}
}

// Compute implements Program. Messages are peel notifications: each
// one decrements the receiver's surviving-neighbour count.
func (c *KCore) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	if !c.alive[v] {
		ctx.VoteToHalt(v)
		return
	}
	c.remaining[v] -= int32(len(msgs))
	if int(c.remaining[v]) < c.K {
		c.alive[v] = false
		ctx.SetValue(v, 0)
		for _, u := range ctx.Graph().Neighbors(v) {
			if u != v {
				ctx.Send(u, 1)
			}
		}
	}
	ctx.VoteToHalt(v)
}

// MarshalAux implements AuxState.
func (c *KCore) MarshalAux() ([]byte, error) {
	buf := make([]byte, 0, len(c.remaining)*5)
	for i, r := range c.remaining {
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		if c.alive[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf, nil
}

// UnmarshalAux implements AuxState.
func (c *KCore) UnmarshalAux(b []byte) error {
	n := len(b) / 5
	c.remaining = make([]int32, n)
	c.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		off := i * 5
		c.remaining[i] = int32(b[off]) | int32(b[off+1])<<8 | int32(b[off+2])<<16 | int32(b[off+3])<<24
		c.alive[i] = b[off+4] == 1
	}
	return nil
}

// CorenessSweep runs KCore for K = 1..max and returns each vertex's
// coreness (the largest K whose core contains it).
func CorenessSweep(g *graph.Graph, workers int, maxK int) ([]int, error) {
	coreness := make([]int, g.NumVertices())
	for k := 1; k <= maxK; k++ {
		res, err := Run(g, &KCore{K: k}, Config{Workers: workers})
		if err != nil {
			return nil, err
		}
		stillIn := false
		for v, val := range res.Values {
			if val == 1 {
				coreness[v] = k
				stillIn = true
			}
		}
		if !stillIn {
			break
		}
	}
	return coreness, nil
}

// DegreeCentrality is the simplest one-superstep program: vertex value
// = out-degree. Useful as an engine smoke test and a calibration
// microbenchmark.
type DegreeCentrality struct{}

// Name implements Program.
func (DegreeCentrality) Name() string { return "degree" }

// Init implements Program.
func (DegreeCentrality) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 0, true
}

// Compute implements Program.
func (DegreeCentrality) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	ctx.SetValue(v, float64(ctx.Graph().Degree(v)))
	ctx.VoteToHalt(v)
}

// TriangleCount counts triangles on an undirected graph in three
// supersteps of id-ordered wedge closing: vertex a probes higher-id
// neighbours b (phase 0); b forwards each probe origin a to its
// higher-id neighbours c (phase 1); c confirms the wedge a–b–c as a
// triangle when a is adjacent to c (phase 2, local CSR lookup). Each
// triangle a<b<c is counted exactly once, at its highest vertex, so
// the global count is the plain sum of vertex values.
type TriangleCount struct{}

// Name implements Program.
func (TriangleCount) Name() string { return "triangles" }

// Init implements Program.
func (TriangleCount) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 0, true
}

// Compute implements Program.
func (TriangleCount) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	g := ctx.Graph()
	switch ctx.Superstep() {
	case 0:
		// Probe: tell higher-id neighbours about v.
		for _, u := range g.Neighbors(v) {
			if u > v {
				ctx.Send(u, float64(v))
			}
		}
	case 1:
		// Forward: for each probe origin o < v, tell higher-id
		// neighbours w > v to check adjacency with o.
		for _, m := range msgs {
			o := graph.VertexID(m)
			for _, w := range g.Neighbors(v) {
				if w > v {
					ctx.Send(w, float64(o))
				}
			}
		}
	case 2:
		// Close: count wedges o–x–v that close into triangles.
		for _, m := range msgs {
			o := graph.VertexID(m)
			if hasNeighbor(g, v, o) {
				ctx.SetValue(v, ctx.Value(v)+1)
			}
		}
	}
	ctx.VoteToHalt(v)
}

// hasNeighbor binary-searches v's sorted adjacency for u.
func hasNeighbor(g *graph.Graph, v, u graph.VertexID) bool {
	nb := g.Neighbors(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case nb[mid] == u:
			return true
		case nb[mid] < u:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// TotalTriangles sums a TriangleCount result into the global triangle
// count (each triangle is recorded once, at its highest vertex).
func TotalTriangles(values []float64) int64 {
	var sum float64
	for _, v := range values {
		sum += v
	}
	return int64(sum)
}
