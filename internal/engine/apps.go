package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hourglass/internal/graph"
)

// PageRank implements the classic iterative PageRank ([9] in the
// paper) for a fixed number of iterations (the paper runs 30).
// Vertex value = current rank.
type PageRank struct {
	Iterations int
	Damping    float64 // 0 = 0.85
}

// Name implements Program.
func (p *PageRank) Name() string { return "pagerank" }

func (p *PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// Init implements Program.
func (p *PageRank) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return 1.0 / float64(g.NumVertices()), true
}

// Aggregators implements engine.Aggregators: the "dangling" aggregator
// collects rank stranded on zero-out-degree vertices so it can be
// redistributed uniformly, keeping total rank mass at 1.
func (p *PageRank) Aggregators() []AggregatorSpec {
	return []AggregatorSpec{{
		Name:     "dangling",
		Identity: 0,
		Reduce:   func(a, b float64) float64 { return a + b },
	}}
}

// Compute implements Program.
func (p *PageRank) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	g := ctx.Graph()
	n := float64(g.NumVertices())
	d := p.damping()
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		// Dangling mass from the previous superstep is spread uniformly.
		sum += ctx.AggregatedValue("dangling") / n
		ctx.SetValue(v, (1-d)/n+d*sum)
	}
	if ctx.Superstep() < p.Iterations {
		if deg := g.Degree(v); deg > 0 {
			ctx.SendToNeighbors(v, ctx.Value(v)/float64(deg))
		} else {
			ctx.Aggregate("dangling", ctx.Value(v))
		}
	} else {
		ctx.VoteToHalt(v)
	}
}

// Combine implements Combiner: partial rank sums add.
func (p *PageRank) Combine(a, b float64) float64 { return a + b }

// SSSP computes single-source shortest paths (the paper's 3-minute
// benchmark). Vertex value = tentative distance; +Inf = unreached.
type SSSP struct {
	Source graph.VertexID
}

// Name implements Program.
func (s *SSSP) Name() string { return "sssp" }

// Init implements Program.
func (s *SSSP) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	if v == s.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program.
func (s *SSSP) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	dist := ctx.Value(v)
	improved := ctx.Superstep() == 0 && v == s.Source
	for _, m := range msgs {
		if m < dist {
			dist = m
			improved = true
		}
	}
	if improved {
		ctx.SetValue(v, dist)
		g := ctx.Graph()
		weights := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			w := 1.0
			if weights != nil {
				w = float64(weights[i])
			}
			ctx.Send(u, dist+w)
		}
	}
	ctx.VoteToHalt(v)
}

// Combine implements Combiner: only the minimum candidate matters.
func (s *SSSP) Combine(a, b float64) float64 { return math.Min(a, b) }

// WCC labels weakly connected components by propagating minimum vertex
// id (HashMin). Vertex value = component id.
type WCC struct{}

// Name implements Program.
func (WCC) Name() string { return "wcc" }

// Init implements Program.
func (WCC) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return float64(v), true
}

// Compute implements Program.
func (WCC) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	cur := ctx.Value(v)
	improved := ctx.Superstep() == 0
	for _, m := range msgs {
		if m < cur {
			cur = m
			improved = true
		}
	}
	if improved {
		ctx.SetValue(v, cur)
		ctx.SendToNeighbors(v, cur)
	}
	ctx.VoteToHalt(v)
}

// Combine implements Combiner.
func (WCC) Combine(a, b float64) float64 { return math.Min(a, b) }

// BFS computes hop distance from a source on an unweighted graph.
type BFS struct {
	Source graph.VertexID
}

// Name implements Program.
func (b *BFS) Name() string { return "bfs" }

// Init implements Program.
func (b *BFS) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	if v == b.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program.
func (b *BFS) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	if math.IsInf(ctx.Value(v), 1) && len(msgs) > 0 {
		ctx.SetValue(v, msgs[0])
		ctx.SendToNeighbors(v, msgs[0]+1)
	} else if ctx.Superstep() == 0 && v == b.Source {
		ctx.SendToNeighbors(v, 1)
	}
	ctx.VoteToHalt(v)
}

// Combine implements Combiner: any single BFS level message suffices.
func (b *BFS) Combine(a, x float64) float64 { return math.Min(a, x) }

// GraphColoring implements Jones–Plassmann greedy coloring, the
// Pregel-style formulation of the paper's GC benchmark (following
// Salihoglu & Widom [31]): each round, every uncolored vertex whose
// random priority is a local maximum among *uncolored* neighbours
// picks the smallest color unused by its neighbourhood and announces
// it. Vertex value = color (-1 while undecided).
//
// GraphColoring keeps auxiliary per-vertex state (the set of colors
// taken by neighbours and the count of uncolored higher-priority
// neighbours), exercising the engine's AuxState checkpoint path.
type GraphColoring struct {
	// neighborColors[v] marks colors already taken around v.
	neighborColors []map[int32]bool
	// pendingHigher[v] counts uncolored neighbours with higher priority.
	pendingHigher []int32
}

// Name implements Program.
func (c *GraphColoring) Name() string { return "graphcoloring" }

// priority returns a deterministic pseudo-random priority for v, with
// the vertex id breaking ties totally.
func gcPriority(v graph.VertexID) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x<<32 | uint64(uint32(v))
}

// Init implements Program.
func (c *GraphColoring) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return -1, true
}

// InitAux implements AuxState.
func (c *GraphColoring) InitAux(g *graph.Graph) {
	n := g.NumVertices()
	c.neighborColors = make([]map[int32]bool, n)
	c.pendingHigher = make([]int32, n)
	for v := 0; v < n; v++ {
		mine := gcPriority(graph.VertexID(v))
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if u != graph.VertexID(v) && gcPriority(u) > mine {
				c.pendingHigher[v]++
			}
		}
	}
}

// Compute implements Program. Messages carry the chosen color of a
// *higher-priority* neighbour (the sender encodes nothing else: color
// as float64).
func (c *GraphColoring) Compute(ctx *Context, v graph.VertexID, msgs []float64) {
	if ctx.Value(v) >= 0 { // already colored
		ctx.VoteToHalt(v)
		return
	}
	for _, m := range msgs {
		color := int32(m)
		if c.neighborColors[v] == nil {
			c.neighborColors[v] = make(map[int32]bool)
		}
		c.neighborColors[v][color] = true
		c.pendingHigher[v]--
	}
	if c.pendingHigher[v] <= 0 {
		// All higher-priority neighbours decided: pick smallest free color.
		color := int32(0)
		for c.neighborColors[v][color] {
			color++
		}
		ctx.SetValue(v, float64(color))
		// Notify lower-priority uncolored neighbours.
		g := ctx.Graph()
		mine := gcPriority(v)
		for _, u := range g.Neighbors(v) {
			if u != v && gcPriority(u) < mine {
				ctx.Send(u, float64(color))
			}
		}
		ctx.VoteToHalt(v)
		return
	}
	// Still waiting on higher-priority neighbours; stay active only via
	// incoming messages.
	ctx.VoteToHalt(v)
}

// MarshalAux implements AuxState.
func (c *GraphColoring) MarshalAux() ([]byte, error) {
	var buf bytes.Buffer
	n := len(c.pendingHigher)
	if err := binary.Write(&buf, binary.LittleEndian, uint64(n)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, c.pendingHigher); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		colors := make([]int32, 0, len(c.neighborColors[v]))
		for col := range c.neighborColors[v] {
			colors = append(colors, col)
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(colors))); err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, colors); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalAux implements AuxState.
func (c *GraphColoring) UnmarshalAux(b []byte) error {
	r := bytes.NewReader(b)
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	c.pendingHigher = make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, &c.pendingHigher); err != nil {
		return err
	}
	c.neighborColors = make([]map[int32]bool, n)
	for v := uint64(0); v < n; v++ {
		var k uint32
		if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
			return err
		}
		if k == 0 {
			continue
		}
		colors := make([]int32, k)
		if err := binary.Read(r, binary.LittleEndian, &colors); err != nil {
			return err
		}
		c.neighborColors[v] = make(map[int32]bool, k)
		for _, col := range colors {
			c.neighborColors[v][col] = true
		}
	}
	return nil
}

// MarshalVertexAux implements VertexAux: v's pending-higher count and
// neighbour-color set, colors ascending so identical state always
// serialises to identical bytes (a map walk would not).
func (c *GraphColoring) MarshalVertexAux(v graph.VertexID) []byte {
	colors := make([]int32, 0, len(c.neighborColors[v]))
	for col := range c.neighborColors[v] {
		colors = append(colors, col)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
	buf := make([]byte, 0, 8+4*len(colors))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.pendingHigher[v]))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(colors)))
	for _, col := range colors {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(col))
	}
	return buf
}

// UnmarshalVertexAux implements VertexAux. InitAux must have run (it
// sizes the arrays); the entry replaces v's baseline state entirely.
func (c *GraphColoring) UnmarshalVertexAux(v graph.VertexID, b []byte) error {
	if int(v) >= len(c.pendingHigher) {
		return fmt.Errorf("engine: vertex aux for vertex %d of %d (InitAux not run?)", v, len(c.pendingHigher))
	}
	if len(b) < 8 {
		return fmt.Errorf("engine: vertex aux blob is %d bytes", len(b))
	}
	pending := int32(binary.LittleEndian.Uint32(b))
	k := binary.LittleEndian.Uint32(b[4:])
	if uint64(len(b)) != 8+4*uint64(k) {
		return fmt.Errorf("engine: vertex aux blob is %d bytes for %d colors", len(b), k)
	}
	c.pendingHigher[v] = pending
	if k == 0 {
		c.neighborColors[v] = nil
		return nil
	}
	set := make(map[int32]bool, k)
	for i := uint32(0); i < k; i++ {
		set[int32(binary.LittleEndian.Uint32(b[8+4*i:]))] = true
	}
	c.neighborColors[v] = set
	return nil
}

// ValidateColoring checks that no edge connects two vertices of the
// same color and returns the number of colors used.
func ValidateColoring(g *graph.Graph, colors []float64) (int, bool) {
	used := map[int32]bool{}
	ok := true
	g.ForEachEdge(func(s, d graph.VertexID, w float32) {
		if s != d && colors[s] == colors[d] {
			ok = false
		}
	})
	for _, c := range colors {
		used[int32(c)] = true
	}
	return len(used), ok
}
