package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"hourglass/internal/cloud"
	"hourglass/internal/graph"
	"hourglass/internal/units"
)

// CheckpointManager persists engine snapshots in the durable datastore
// — the reproduction of the paper's §7 modification ("we have modified
// the checkpointing mechanism of Giraph such that it reads/stores
// checkpoints from/to Amazon S3 ... this allows a recovery from a full
// system failure"). Keys are namespaced per job so recurrent executions
// coexist.
//
// The store is allowed to misbehave (see internal/faultinject): every
// blob is sealed with a CRC32 trailer over the codec frames, transient
// store errors are retried with exponential backoff + jitter, and a
// corrupted or partial checkpoint is detected and *skipped* — Load
// falls back to the newest older checkpoint that validates instead of
// silently restoring garbage.
type CheckpointManager struct {
	Store cloud.BlobStore
	// Job is the key namespace, typically "<program>/<dataset>".
	Job string
	// Retry overrides the backoff policy for store operations
	// (nil = cloud.RetryPolicy defaults, seeded from Job).
	Retry *cloud.Retrier

	retryOnce    sync.Once
	defaultRetry *cloud.Retrier
}

// key is the datastore object name for a superstep's checkpoint.
func (m *CheckpointManager) key(superstep int) string {
	return fmt.Sprintf("ckpt/%s/%08d", m.Job, superstep)
}

// latestKey tracks the most recent complete checkpoint.
func (m *CheckpointManager) latestKey() string {
	return fmt.Sprintf("ckpt/%s/latest", m.Job)
}

// retrier resolves the configured or default backoff policy.
func (m *CheckpointManager) retrier() *cloud.Retrier {
	if m.Retry != nil {
		return m.Retry
	}
	m.retryOnce.Do(func() {
		var seed int64 = 1469598103934665603
		for _, c := range m.Job {
			seed ^= int64(c)
			seed *= 1099511628211
		}
		m.defaultRetry = cloud.NewRetrier(cloud.RetryPolicy{Seed: seed})
	})
	return m.defaultRetry
}

// putRetry uploads a blob, retrying transient store errors. The
// returned time includes the successful transfer plus backoff delays.
func (m *CheckpointManager) putRetry(key string, data []byte) (units.Seconds, error) {
	var xfer units.Seconds
	delay, err := m.retrier().Do(func() error {
		t, err := m.Store.Put(key, data)
		xfer = t
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("engine: checkpoint upload %q: %w", key, err)
	}
	return xfer + delay, nil
}

// getRetry downloads a blob, retrying transient store errors.
func (m *CheckpointManager) getRetry(key string) ([]byte, units.Seconds, error) {
	var blob []byte
	var xfer units.Seconds
	delay, err := m.retrier().Do(func() error {
		b, t, err := m.Store.Get(key)
		blob, xfer = b, t
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return blob, xfer + delay, nil
}

// frameMagic seals the CRC trailer ("HGCR").
const frameMagic = uint32(0x48474352)

// frameTrailerLen is the sealFrame overhead in bytes.
const frameTrailerLen = 8

// ErrCorruptCheckpoint reports a checkpoint blob whose CRC32 trailer
// is missing, truncated, or does not match the codec frames.
var ErrCorruptCheckpoint = errors.New("engine: corrupt checkpoint frame")

// sealFrame appends a magic + CRC32 (IEEE) trailer over the payload.
func sealFrame(payload []byte) []byte {
	out := make([]byte, len(payload)+frameTrailerLen)
	copy(out, payload)
	binary.LittleEndian.PutUint32(out[len(payload):], frameMagic)
	binary.LittleEndian.PutUint32(out[len(payload)+4:], crc32.ChecksumIEEE(payload))
	return out
}

// openFrame validates and strips the trailer, failing with
// ErrCorruptCheckpoint on any mismatch (truncation included).
func openFrame(blob []byte) ([]byte, error) {
	if len(blob) < frameTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptCheckpoint, len(blob))
	}
	payload, trailer := blob[:len(blob)-frameTrailerLen], blob[len(blob)-frameTrailerLen:]
	if binary.LittleEndian.Uint32(trailer[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorruptCheckpoint)
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: CRC32 mismatch", ErrCorruptCheckpoint)
	}
	return payload, nil
}

// Save uploads a snapshot sealed with a CRC32 trailer and advances the
// latest pointer, returning the virtual upload time (retry backoff
// included). Transient store errors are retried; only an exhausted
// retry budget fails the save.
func (m *CheckpointManager) Save(s *Snapshot) (units.Seconds, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return 0, err
	}
	t0, err := m.putRetry(m.key(s.Superstep), sealFrame(buf.Bytes()))
	if err != nil {
		return 0, err
	}
	t1, err := m.putRetry(m.latestKey(), []byte(m.key(s.Superstep)))
	if err != nil {
		return 0, err
	}
	return t0 + t1, nil
}

// ErrNoCheckpoint reports an empty namespace (fresh job).
var ErrNoCheckpoint = errors.New("engine: no checkpoint available")

// loadKey fetches and validates one checkpoint object.
func (m *CheckpointManager) loadKey(key string) (*Snapshot, units.Seconds, error) {
	blob, t, err := m.getRetry(key)
	if err != nil {
		return nil, 0, err
	}
	payload, err := openFrame(blob)
	if err != nil {
		return nil, 0, err
	}
	snap, err := ReadSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	return snap, t, nil
}

// Load fetches the most recent checkpoint that validates, with its
// download time. A corrupted or dangling latest checkpoint is skipped:
// Load scans older checkpoints in the namespace (newest first) and
// restores the first intact one. Only a namespace with no restorable
// checkpoint at all returns ErrNoCheckpoint.
func (m *CheckpointManager) Load() (*Snapshot, units.Seconds, error) {
	// A cleanly absent pointer means "fresh job" (or a completed one —
	// Clear removes only the pointer and leaves blobs to GC, which must
	// NOT be resurrected by the fallback scan).
	if !m.Store.Exists(m.latestKey()) {
		return nil, 0, ErrNoCheckpoint
	}
	var total units.Seconds
	skip := ""
	if ptr, t, err := m.getRetry(m.latestKey()); err == nil {
		total += t
		skip = string(ptr)
		snap, t1, err := m.loadKey(skip)
		if err == nil {
			return snap, total + t1, nil
		}
	}
	// The pointer or its target is unreadable or corrupt: fall back to
	// the newest older checkpoint that validates.
	snap, t, err := m.scanFallback(skip)
	if err != nil {
		return nil, 0, err
	}
	return snap, total + t, nil
}

// scanFallback walks the job's checkpoint objects newest-first,
// skipping the already-rejected key, and returns the first that
// validates.
func (m *CheckpointManager) scanFallback(skip string) (*Snapshot, units.Seconds, error) {
	prefix := fmt.Sprintf("ckpt/%s/", m.Job)
	latest := m.latestKey()
	var candidates []string
	for _, k := range m.Store.Keys() {
		if !strings.HasPrefix(k, prefix) || k == latest || k == skip {
			continue
		}
		candidates = append(candidates, k)
	}
	// Keys embed the zero-padded superstep, so lexicographic descending
	// order is newest-first.
	sort.Sort(sort.Reverse(sort.StringSlice(candidates)))
	var total units.Seconds
	for _, k := range candidates {
		snap, t, err := m.loadKey(k)
		total += t
		if err != nil {
			continue
		}
		return snap, total, nil
	}
	return nil, 0, ErrNoCheckpoint
}

// Clear removes the latest pointer (checkpoints themselves are left
// for garbage collection, as S3 lifecycle rules would).
func (m *CheckpointManager) Clear() {
	m.Store.Delete(m.latestKey())
}

// RunDurable executes prog with periodic durable checkpoints every
// `every` supersteps, resuming from the latest checkpoint if one
// exists. It is the full execution loop of the paper's Figure 2 at the
// engine level: run → checkpoint → (crash?) → reload → continue. The
// returned virtual I/O time is the sum of checkpoint uploads (compute
// time is the caller's concern — the perfmodel prices it).
func (m *CheckpointManager) RunDurable(g *graph.Graph, prog Program, cfg Config, every int) (Result, units.Seconds, error) {
	if every <= 0 {
		return Result{}, 0, fmt.Errorf("engine: checkpoint interval %d", every)
	}
	var ioTime units.Seconds
	snap, loadTime, err := m.Load()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh start.
	case err != nil:
		return Result{}, 0, err
	default:
		ioTime += loadTime
	}

	for {
		runCfg := cfg
		runCfg.StopAfter = every
		var res Result
		var err error
		if snap == nil {
			res, err = Run(g, prog, runCfg)
		} else {
			res, err = Resume(g, prog, snap, runCfg)
		}
		switch {
		case err == nil:
			m.Clear()
			return res, ioTime, nil
		case errors.Is(err, ErrPaused):
			saveTime, serr := m.Save(res.Snapshot)
			if serr != nil {
				return Result{}, 0, serr
			}
			ioTime += saveTime
			snap = res.Snapshot
		default:
			return Result{}, 0, err
		}
	}
}
