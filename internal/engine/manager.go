package engine

import (
	"bytes"
	"errors"
	"fmt"

	"hourglass/internal/cloud"
	"hourglass/internal/graph"
	"hourglass/internal/units"
)

// CheckpointManager persists engine snapshots in the durable datastore
// — the reproduction of the paper's §7 modification ("we have modified
// the checkpointing mechanism of Giraph such that it reads/stores
// checkpoints from/to Amazon S3 ... this allows a recovery from a full
// system failure"). Keys are namespaced per job so recurrent executions
// coexist.
type CheckpointManager struct {
	Store *cloud.Datastore
	// Job is the key namespace, typically "<program>/<dataset>".
	Job string
}

// key is the datastore object name for a superstep's checkpoint.
func (m *CheckpointManager) key(superstep int) string {
	return fmt.Sprintf("ckpt/%s/%08d", m.Job, superstep)
}

// latestKey tracks the most recent complete checkpoint.
func (m *CheckpointManager) latestKey() string {
	return fmt.Sprintf("ckpt/%s/latest", m.Job)
}

// Save uploads a snapshot and atomically advances the latest pointer,
// returning the virtual upload time.
func (m *CheckpointManager) Save(s *Snapshot) (units.Seconds, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return 0, err
	}
	t := m.Store.Put(m.key(s.Superstep), buf.Bytes())
	m.Store.Put(m.latestKey(), []byte(m.key(s.Superstep)))
	return t, nil
}

// ErrNoCheckpoint reports an empty namespace (fresh job).
var ErrNoCheckpoint = errors.New("engine: no checkpoint available")

// Load fetches the most recent checkpoint and its download time.
func (m *CheckpointManager) Load() (*Snapshot, units.Seconds, error) {
	ptr, t0, err := m.Store.Get(m.latestKey())
	if err != nil {
		return nil, 0, ErrNoCheckpoint
	}
	blob, t1, err := m.Store.Get(string(ptr))
	if err != nil {
		return nil, 0, fmt.Errorf("engine: dangling latest pointer %q: %w", ptr, err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(blob))
	if err != nil {
		return nil, 0, err
	}
	return snap, t0 + t1, nil
}

// Clear removes the latest pointer (checkpoints themselves are left
// for garbage collection, as S3 lifecycle rules would).
func (m *CheckpointManager) Clear() {
	m.Store.Delete(m.latestKey())
}

// RunDurable executes prog with periodic durable checkpoints every
// `every` supersteps, resuming from the latest checkpoint if one
// exists. It is the full execution loop of the paper's Figure 2 at the
// engine level: run → checkpoint → (crash?) → reload → continue. The
// returned virtual I/O time is the sum of checkpoint uploads (compute
// time is the caller's concern — the perfmodel prices it).
func (m *CheckpointManager) RunDurable(g *graph.Graph, prog Program, cfg Config, every int) (Result, units.Seconds, error) {
	if every <= 0 {
		return Result{}, 0, fmt.Errorf("engine: checkpoint interval %d", every)
	}
	var ioTime units.Seconds
	snap, loadTime, err := m.Load()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh start.
	case err != nil:
		return Result{}, 0, err
	default:
		ioTime += loadTime
	}

	for {
		runCfg := cfg
		runCfg.StopAfter = every
		var res Result
		var err error
		if snap == nil {
			res, err = Run(g, prog, runCfg)
		} else {
			res, err = Resume(g, prog, snap, runCfg)
		}
		switch {
		case err == nil:
			m.Clear()
			return res, ioTime, nil
		case errors.Is(err, ErrPaused):
			saveTime, serr := m.Save(res.Snapshot)
			if serr != nil {
				return Result{}, 0, serr
			}
			ioTime += saveTime
			snap = res.Snapshot
		default:
			return Result{}, 0, err
		}
	}
}
