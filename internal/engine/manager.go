package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"sort"
	"strings"
	"sync"

	"hourglass/internal/cloud"
	"hourglass/internal/graph"
	"hourglass/internal/units"
)

// CheckpointManager persists engine snapshots in the durable datastore
// — the reproduction of the paper's §7 modification ("we have modified
// the checkpointing mechanism of Giraph such that it reads/stores
// checkpoints from/to Amazon S3 ... this allows a recovery from a full
// system failure"). Keys are namespaced per job so recurrent executions
// coexist.
//
// The store is allowed to misbehave (see internal/faultinject): every
// blob is sealed with a CRC32 trailer over the codec frames, transient
// store errors are retried with exponential backoff + jitter, and a
// corrupted or partial checkpoint is detected and *skipped* — Load
// falls back to the newest older checkpoint that validates instead of
// silently restoring garbage.
type CheckpointManager struct {
	Store cloud.BlobStore
	// Job is the key namespace, typically "<program>/<dataset>".
	Job string
	// Retry overrides the backoff policy for store operations
	// (nil = cloud.RetryPolicy defaults, seeded from Job).
	Retry *cloud.Retrier
	// Logf receives non-fatal maintenance failures (e.g. Clear errors
	// on the RunDurable success path). Nil logs via the standard
	// library logger.
	Logf func(format string, args ...any)

	retryOnce    sync.Once
	defaultRetry *cloud.Retrier
}

// logf routes non-fatal errors to the configured or default logger.
func (m *CheckpointManager) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// key is the datastore object name for a superstep's checkpoint.
func (m *CheckpointManager) key(superstep int) string {
	return fmt.Sprintf("ckpt/%s/%08d", m.Job, superstep)
}

// latestKey tracks the most recent complete checkpoint.
func (m *CheckpointManager) latestKey() string {
	return fmt.Sprintf("ckpt/%s/latest", m.Job)
}

// retrier resolves the configured or default backoff policy.
func (m *CheckpointManager) retrier() *cloud.Retrier {
	if m.Retry != nil {
		return m.Retry
	}
	m.retryOnce.Do(func() {
		var seed int64 = 1469598103934665603
		for _, c := range m.Job {
			seed ^= int64(c)
			seed *= 1099511628211
		}
		m.defaultRetry = cloud.NewRetrier(cloud.RetryPolicy{Seed: seed})
	})
	return m.defaultRetry
}

// putRetry uploads a blob, retrying transient store errors. The
// returned time includes the transfer plus backoff delays — even on
// failure, so callers can bill the virtual time burned by the
// exhausted retry budget.
func (m *CheckpointManager) putRetry(key string, data []byte) (units.Seconds, error) {
	var xfer units.Seconds
	delay, err := m.retrier().Do(func() error {
		t, err := m.Store.Put(key, data)
		xfer = t
		return err
	})
	if err != nil {
		return xfer + delay, fmt.Errorf("engine: checkpoint upload %q: %w", key, err)
	}
	return xfer + delay, nil
}

// getRetry downloads a blob, retrying transient store errors.
func (m *CheckpointManager) getRetry(key string) ([]byte, units.Seconds, error) {
	var blob []byte
	var xfer units.Seconds
	delay, err := m.retrier().Do(func() error {
		b, t, err := m.Store.Get(key)
		blob, xfer = b, t
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return blob, xfer + delay, nil
}

// frameMagic seals the CRC trailer ("HGCR").
const frameMagic = uint32(0x48474352)

// frameTrailerLen is the sealFrame overhead in bytes.
const frameTrailerLen = 8

// ErrCorruptCheckpoint reports a checkpoint blob whose CRC32 trailer
// is missing, truncated, or does not match the codec frames.
var ErrCorruptCheckpoint = errors.New("engine: corrupt checkpoint frame")

// sealFrame appends a magic + CRC32 (IEEE) trailer over the payload.
func sealFrame(payload []byte) []byte {
	out := make([]byte, len(payload)+frameTrailerLen)
	copy(out, payload)
	binary.LittleEndian.PutUint32(out[len(payload):], frameMagic)
	binary.LittleEndian.PutUint32(out[len(payload)+4:], crc32.ChecksumIEEE(payload))
	return out
}

// openFrame validates and strips the trailer, failing with
// ErrCorruptCheckpoint on any mismatch (truncation included).
func openFrame(blob []byte) ([]byte, error) {
	if len(blob) < frameTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptCheckpoint, len(blob))
	}
	payload, trailer := blob[:len(blob)-frameTrailerLen], blob[len(blob)-frameTrailerLen:]
	if binary.LittleEndian.Uint32(trailer[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorruptCheckpoint)
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: CRC32 mismatch", ErrCorruptCheckpoint)
	}
	return payload, nil
}

// Save uploads a snapshot sealed with a CRC32 trailer and advances the
// latest pointer, returning the virtual upload time (retry backoff
// included). Transient store errors are retried; only an exhausted
// retry budget fails the save. The returned time is meaningful even on
// failure: it covers whatever uploads and backoff delays were spent
// before giving up, so callers can bill the partial progress.
func (m *CheckpointManager) Save(s *Snapshot) (units.Seconds, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return 0, err
	}
	t0, err := m.putRetry(m.key(s.Superstep), sealFrame(buf.Bytes()))
	if err != nil {
		return t0, err
	}
	t1, err := m.putRetry(m.latestKey(), []byte(m.key(s.Superstep)))
	if err != nil {
		return t0 + t1, err
	}
	return t0 + t1, nil
}

// ErrNoCheckpoint reports an empty namespace (fresh job).
var ErrNoCheckpoint = errors.New("engine: no checkpoint available")

// loadKey fetches and validates one checkpoint object.
func (m *CheckpointManager) loadKey(key string) (*Snapshot, units.Seconds, error) {
	blob, t, err := m.getRetry(key)
	if err != nil {
		return nil, 0, err
	}
	payload, err := openFrame(blob)
	if err != nil {
		return nil, 0, err
	}
	snap, err := ReadSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	return snap, t, nil
}

// Load fetches the most recent checkpoint that validates, with its
// download time. A corrupted or dangling latest checkpoint is skipped:
// Load scans older checkpoints in the namespace (newest first) and
// restores the first intact one. Only a namespace with no restorable
// checkpoint at all returns ErrNoCheckpoint.
func (m *CheckpointManager) Load() (*Snapshot, units.Seconds, error) {
	// A cleanly absent pointer means "fresh job" (or a completed one —
	// Clear deletes the whole namespace, and even if some blob deletes
	// failed, leftovers must NOT be resurrected by the fallback scan).
	if !m.Store.Exists(m.latestKey()) {
		return nil, 0, ErrNoCheckpoint
	}
	var total units.Seconds
	skip := ""
	if ptr, t, err := m.getRetry(m.latestKey()); err == nil {
		total += t
		skip = string(ptr)
		snap, t1, err := m.loadKey(skip)
		if err == nil {
			return snap, total + t1, nil
		}
	}
	// The pointer or its target is unreadable or corrupt: fall back to
	// the newest older checkpoint that validates.
	snap, t, err := m.scanFallback(skip)
	if err != nil {
		return nil, 0, err
	}
	return snap, total + t, nil
}

// scanFallback walks the job's checkpoint objects newest-first,
// skipping the already-rejected key, and returns the first that
// validates.
func (m *CheckpointManager) scanFallback(skip string) (*Snapshot, units.Seconds, error) {
	prefix := fmt.Sprintf("ckpt/%s/", m.Job)
	latest := m.latestKey()
	var candidates []string
	for _, k := range m.Store.Keys() {
		if !strings.HasPrefix(k, prefix) || k == latest || k == skip {
			continue
		}
		candidates = append(candidates, k)
	}
	// Keys embed the zero-padded superstep, so lexicographic descending
	// order is newest-first.
	sort.Sort(sort.Reverse(sort.StringSlice(candidates)))
	var total units.Seconds
	for _, k := range candidates {
		snap, t, err := m.loadKey(k)
		total += t
		if err != nil {
			continue
		}
		return snap, total, nil
	}
	return nil, 0, ErrNoCheckpoint
}

// Clear removes the latest pointer AND every numbered checkpoint blob
// in the job's namespace. Deleting only the pointer is not enough for
// recurrent jobs: the next execution of the same job writes fresh
// checkpoints under the same namespace, and if its latest pointer is
// ever damaged, Load's fallback scan walks the namespace newest-first
// — where a leftover high-superstep blob from the PREVIOUS execution
// would win and resurrect stale state. Delete failures are collected
// and returned (never swallowed) so callers can log them; the
// namespace may then still hold blobs, which is why RunDurable logs
// rather than ignores the error.
func (m *CheckpointManager) Clear() error {
	var errs []error
	if err := m.Store.Delete(m.latestKey()); err != nil {
		errs = append(errs, fmt.Errorf("engine: clear %q: %w", m.latestKey(), err))
	}
	prefix := fmt.Sprintf("ckpt/%s/", m.Job)
	for _, k := range m.Store.Keys() {
		if !strings.HasPrefix(k, prefix) || k == m.latestKey() {
			continue
		}
		if err := m.Store.Delete(k); err != nil {
			errs = append(errs, fmt.Errorf("engine: clear %q: %w", k, err))
		}
	}
	return errors.Join(errs...)
}

// RunDurable executes prog with periodic durable checkpoints every
// `every` supersteps, resuming from the latest checkpoint if one
// exists. It is the full execution loop of the paper's Figure 2 at the
// engine level: run → checkpoint → (crash?) → reload → continue. The
// returned virtual I/O time is the sum of checkpoint uploads (compute
// time is the caller's concern — the perfmodel prices it). On a save
// failure, the I/O time already spent — including the failed save's
// partial uploads and exhausted retry backoff — is returned alongside
// the error so callers can bill the partial progress.
func (m *CheckpointManager) RunDurable(g *graph.Graph, prog Program, cfg Config, every int) (Result, units.Seconds, error) {
	if every <= 0 {
		return Result{}, 0, fmt.Errorf("engine: checkpoint interval %d", every)
	}
	var ioTime units.Seconds
	snap, loadTime, err := m.Load()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh start.
	case err != nil:
		return Result{}, 0, err
	default:
		ioTime += loadTime
	}

	for {
		runCfg := cfg
		runCfg.StopAfter = every
		var res Result
		var err error
		if snap == nil {
			res, err = Run(g, prog, runCfg)
		} else {
			res, err = Resume(g, prog, snap, runCfg)
		}
		switch {
		case err == nil:
			if cerr := m.Clear(); cerr != nil {
				m.logf("engine: checkpoint GC for job %q incomplete: %v", m.Job, cerr)
			}
			return res, ioTime, nil
		case errors.Is(err, ErrPaused):
			saveTime, serr := m.Save(res.Snapshot)
			ioTime += saveTime
			if serr != nil {
				return Result{}, ioTime, serr
			}
			snap = res.Snapshot
		default:
			return Result{}, ioTime, err
		}
	}
}
