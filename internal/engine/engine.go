// Package engine is a from-scratch Pregel-style BSP graph-processing
// engine — the stand-in for Apache Giraph in the paper's prototype
// (§7). Vertices hold a float64 value, exchange float64 messages in
// synchronous supersteps, and vote to halt; workers are goroutines
// that own partitions of the vertex space. The engine supports
// combiners, aggregators, per-program auxiliary state, and
// whole-computation checkpoints that can be restored under a
// *different* worker count/partitioning — the property Hourglass's
// fast-reload recovery relies on.
//
// # Message plane
//
// The superstep hot path is allocation-free after warm-up and its cost
// is proportional to the number of active vertices, not to the graph:
//
//   - Combiner programs fold messages at Send time: each worker owns a
//     dense per-destination slot (value + presence flag), so a
//     destination vertex carries at most one staged value per worker
//     and delivery is a merge of the touched slots, sharded by the
//     destination's owner. No per-message or per-vertex list is ever
//     materialised.
//   - Non-combiner programs go through pooled per-destination-worker
//     outboxes; delivery counting-sorts each worker's incoming
//     messages into a reusable flat arena, and Compute receives
//     sub-slices of that arena in the exact arrival order the old
//     append-based inboxes produced.
//   - Active worklists replace the O(V) liveness scan: a vertex is
//     enqueued for the next superstep once, either when it stays
//     active after Compute or when its first message arrives, so
//     frontier algorithms (SSSP, BFS, WCC tails) pay only for the
//     frontier.
//
// Presence flags are []bool rather than packed bit sets so that
// delivery shards can clear a sender's slots for their own vertex
// range without sharing words across goroutines.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hourglass/internal/graph"
	"hourglass/internal/obs"
)

// Message is the unit exchanged between vertices. All bundled programs
// encode their payloads (distances, ranks, colors, component ids) as
// float64.
type Message struct {
	Dst graph.VertexID
	Val float64
}

// Context is the per-superstep view a Program's Compute sees. It is
// scoped to one worker and must not be retained across supersteps.
type Context struct {
	w         *worker
	host      ContextHost
	superstep int
}

// ContextHost is an external execution substrate driving Programs
// through the Context API: the distributed shard workers
// (internal/dist) run unmodified vertex programs by implementing this
// interface. The in-process engine never sets it, so the single nil
// check it costs on each Context method is branch-predicted away on
// the hot path.
type ContextHost interface {
	Graph() *graph.Graph
	Value(v graph.VertexID) float64
	SetValue(v graph.VertexID, x float64)
	Send(dst graph.VertexID, val float64)
	VoteToHalt(v graph.VertexID)
	Aggregate(name string, val float64)
	AggregatedValue(name string) float64
}

// NewHostContext binds a Context to an external host. The caller
// advances the superstep with SetSuperstep between barriers.
func NewHostContext(h ContextHost) *Context { return &Context{host: h} }

// SetSuperstep sets the superstep a host-backed Context reports
// (hosts only; the in-process engine manages it internally).
func (c *Context) SetSuperstep(s int) { c.superstep = s }

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// Graph returns the input graph.
func (c *Context) Graph() *graph.Graph {
	if c.host != nil {
		return c.host.Graph()
	}
	return c.w.run.g
}

// Value returns vertex v's current value.
func (c *Context) Value(v graph.VertexID) float64 {
	if c.host != nil {
		return c.host.Value(v)
	}
	return c.w.run.values[v]
}

// SetValue updates the value of a vertex owned by this worker. Programs
// must only set values of the vertex currently being computed.
func (c *Context) SetValue(v graph.VertexID, x float64) {
	if c.host != nil {
		c.host.SetValue(v, x)
		return
	}
	c.w.run.values[v] = x
}

// Send delivers a message to dst at the next superstep. With a
// combiner the message is folded into the worker's dense slot for dst
// immediately; otherwise it is staged in the pooled outbox of dst's
// owner. Either way the logical send is counted, so Stats.MessagesSent
// (and the perfmodel calibration inputs derived from it) are
// independent of the transport.
func (c *Context) Send(dst graph.VertexID, val float64) {
	if c.host != nil {
		c.host.Send(dst, val)
		return
	}
	w := c.w
	r := w.run
	ow := r.owner[dst]
	if r.comb != nil {
		if w.accSet[dst] {
			w.accVal[dst] = r.comb.Combine(w.accVal[dst], val)
			w.comb++
		} else {
			w.accSet[dst] = true
			w.accVal[dst] = val
			w.staged[ow] = append(w.staged[ow], dst)
		}
	} else {
		w.outbox[ow] = append(w.outbox[ow], Message{dst, val})
	}
	w.sent++
	if int(ow) != w.id {
		w.remote++
	}
}

// SendToNeighbors broadcasts val to all out-neighbours of v.
func (c *Context) SendToNeighbors(v graph.VertexID, val float64) {
	for _, u := range c.Graph().Neighbors(v) {
		c.Send(u, val)
	}
}

// VoteToHalt deactivates v; an incoming message reactivates it.
func (c *Context) VoteToHalt(v graph.VertexID) {
	if c.host != nil {
		c.host.VoteToHalt(v)
		return
	}
	c.w.run.active[v] = false
}

// Aggregate contributes to a named aggregator; the reduced value is
// visible through AggregatedValue in the *next* superstep.
func (c *Context) Aggregate(name string, val float64) {
	if c.host != nil {
		c.host.Aggregate(name, val)
		return
	}
	agg, ok := c.w.run.aggs[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	if c.w.run.canonical {
		// Keep the raw terms: the barrier folds them value-sorted so the
		// reduction is independent of compute order and worker count.
		c.w.aggList[name] = append(c.w.aggList[name], val)
		return
	}
	cur, seen := c.w.aggLocal[name]
	if !seen {
		c.w.aggLocal[name] = val
		return
	}
	c.w.aggLocal[name] = agg.reduce(cur, val)
}

// AggregatedValue returns the reduction of the previous superstep's
// contributions (the aggregator's identity before any contribution).
func (c *Context) AggregatedValue(name string) float64 {
	if c.host != nil {
		return c.host.AggregatedValue(name)
	}
	agg, ok := c.w.run.aggs[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	return agg.value
}

// Program is a vertex-centric computation.
type Program interface {
	// Name identifies the program in logs and checkpoints.
	Name() string
	// Init returns a vertex's initial value and whether it starts active.
	Init(g *graph.Graph, v graph.VertexID) (value float64, active bool)
	// Compute processes the messages delivered to v this superstep. It
	// runs only for vertices that are active or have incoming messages.
	// The msgs slice aliases engine-owned buffers and is only valid for
	// the duration of the call.
	Compute(ctx *Context, v graph.VertexID, msgs []float64)
}

// Combiner optionally merges messages addressed to the same vertex,
// cutting memory and exchange volume (Pregel's combiner). Combine must
// be commutative and associative; programs whose Compute inspects
// individual messages (rather than a fold of them) must not implement
// it.
type Combiner interface {
	Combine(a, b float64) float64
}

// AggregatorSpec declares a named aggregator a program uses.
type AggregatorSpec struct {
	Name string
	// Identity is the value seen when nothing was contributed.
	Identity float64
	// Reduce merges two contributions (must be commutative+associative).
	Reduce func(a, b float64) float64
}

// Aggregators is implemented by programs that need aggregators.
type Aggregators interface {
	Aggregators() []AggregatorSpec
}

// AuxState is implemented by programs with per-vertex state beyond the
// single float64 value; the engine includes it in checkpoints.
type AuxState interface {
	// InitAux sizes the auxiliary state for the graph.
	InitAux(g *graph.Graph)
	// MarshalAux / UnmarshalAux serialise the state for checkpoints.
	MarshalAux() ([]byte, error)
	UnmarshalAux([]byte) error
}

// VertexAux is implemented by AuxState programs whose auxiliary state
// decomposes per vertex. Distributed shards require it: each shard
// checkpoints only its owned vertices' entries, and a resume — possibly
// under a different shard count — overlays them onto a fresh InitAux.
// Marshalling must be deterministic (identical state → identical bytes)
// so checkpoints stay bit-identical across runs.
type VertexAux interface {
	AuxState
	// MarshalVertexAux serialises one vertex's auxiliary state.
	MarshalVertexAux(v graph.VertexID) []byte
	// UnmarshalVertexAux restores one vertex's auxiliary state onto
	// the InitAux baseline.
	UnmarshalVertexAux(v graph.VertexID, b []byte) error
}

// Config controls an execution.
type Config struct {
	// Workers is the number of worker goroutines (≥1).
	Workers int
	// Assign maps vertex→worker; nil means hash partitioning.
	Assign []int32
	// MaxSupersteps aborts runaway programs (0 = 10_000).
	MaxSupersteps int
	// StopAfter pauses the run after this many additional supersteps,
	// returning ErrPaused with a resumable snapshot (0 = run to
	// completion). Used to emulate evictions mid-computation.
	StopAfter int
	// CollectStepStats records per-superstep activity into
	// Result.StepStats (costs one pass of bookkeeping per step).
	CollectStepStats bool
	// Sink, when set, receives one obs.EvSuperstep event per superstep
	// (frontier size, messages sent/combined, wall ns, arena bytes).
	// A nil sink costs nothing on the hot path: no timing, no event
	// construction, no allocations.
	Sink obs.Sink
	// Canonical forces order-invariant reductions: sender-side combining
	// is disabled, each vertex's message slice is sorted ascending
	// before Compute, and aggregator contributions are collected and
	// folded in sorted order at the barrier. Floating-point folds (sums
	// in particular) then depend only on the multiset of inputs, never
	// on worker count or delivery order, so results are bit-identical
	// across any sequence of worker-count changes — the property the
	// eviction-aware runtime's chaos suite asserts. Messages and
	// aggregator contributions must not be NaN or -0.0 (sort order
	// among them is unspecified). Costs one sort per message-receiving
	// vertex per superstep; leave it off for throughput runs.
	Canonical bool
}

// ErrPaused is returned when Config.StopAfter interrupted the run; the
// Result carries a Snapshot to resume from.
var ErrPaused = errors.New("engine: paused before completion")

// ErrInterrupted is returned by RunCtx/ResumeCtx when the context is
// cancelled: the in-flight superstep is abandoned and no snapshot is
// produced — in-memory state is treated as lost, exactly the semantics
// of a spot eviction. Recovery goes through the last durable
// checkpoint (CheckpointManager), not the returned Result.
var ErrInterrupted = errors.New("engine: interrupted mid-run")

// Stats summarise an execution. For resumed runs, Supersteps is the
// absolute superstep counter while MessagesSent/ComputeCalls cover the
// resumed portion only.
type Stats struct {
	Supersteps   int
	MessagesSent int64
	ComputeCalls int64
	// RemoteMessages counts messages that crossed workers — the
	// network traffic a real deployment would pay, and the quantity
	// good partitionings minimise (§3.2).
	RemoteMessages int64
}

// StepStats records one superstep's activity (Config.CollectStepStats).
type StepStats struct {
	Superstep int
	Active    int64 // vertices computed
	Messages  int64 // messages sent during the step
}

// Result of a run.
type Result struct {
	Values []float64
	Stats  Stats
	// StepStats is populated when Config.CollectStepStats is set.
	StepStats []StepStats
	// Snapshot is non-nil when the run was paused (ErrPaused).
	Snapshot *Snapshot
}

type aggregator struct {
	identity float64
	reduce   func(a, b float64) float64
	value    float64
}

// run is the shared state of one execution.
type run struct {
	g       *graph.Graph
	prog    Program
	values  []float64
	active  []bool
	queued  []bool  // v is already on a next-superstep worklist
	owner   []int32 // vertex -> worker
	aggs    map[string]*aggregator
	workers []*worker
	comb    Combiner

	// Combiner-path inbox: at most one folded value per vertex.
	inVal []float64
	inSet []bool

	// Non-combiner inbox: per-vertex views into the owner's arena.
	// Vertex v's messages live at arena[msgEnd[v]-msgLen[v]:msgEnd[v]].
	msgEnd []int32
	msgLen []int32

	superstep int
	sent      int64
	calls     int64
	remote    int64

	collectSteps bool
	stepStats    []StepStats
	sink         obs.Sink

	// canonical is Config.Canonical; aggScratch is the reusable merge
	// buffer for canonical aggregator reduction.
	canonical  bool
	aggScratch []float64

	// done aborts the run when closed (RunCtx/ResumeCtx); aborted is
	// set by whichever goroutine observes the cancellation first.
	done    <-chan struct{}
	aborted atomic.Bool
}

type worker struct {
	run  *run
	id   int
	ctx  *Context         // reused across supersteps
	cur  []graph.VertexID // this superstep's worklist
	next []graph.VertexID // next superstep's worklist, deduped via run.queued

	// Combiner path: dense per-destination fold slot plus the
	// destinations touched this superstep, sharded by their owner so
	// delivery shards read only their own vertices.
	accVal []float64
	accSet []bool
	staged [][]graph.VertexID

	// Non-combiner path: pooled outboxes per destination worker, and
	// the inbox arena + dirty list for this worker's own vertex range.
	outbox [][]Message
	arena  []float64
	dirty  []graph.VertexID

	aggLocal map[string]float64
	// aggList collects raw aggregator contributions under canonical
	// mode, so the barrier can fold them in a value-sorted order that
	// does not depend on compute order or worker count.
	aggList map[string][]float64
	sent    int64
	calls   int64
	remote  int64
	comb    int64 // sends folded into an occupied slot (combiner path)
}

// Run executes prog on g under cfg, starting from scratch.
func Run(g *graph.Graph, prog Program, cfg Config) (Result, error) {
	return RunCtx(context.Background(), g, prog, cfg)
}

// RunCtx is Run with cancellation: once ctx is done the engine abandons
// the in-flight superstep (workers poll between vertices, the driver
// loop polls at every barrier) and returns ErrInterrupted. The eviction
// signal of the runtime driver (internal/runtime) arrives through this
// path.
func RunCtx(ctx context.Context, g *graph.Graph, prog Program, cfg Config) (Result, error) {
	r, err := newRun(g, prog, cfg)
	if err != nil {
		return Result{}, err
	}
	r.done = ctx.Done()
	// Initialise vertex values and auxiliary state.
	for v := 0; v < g.NumVertices(); v++ {
		val, act := prog.Init(g, graph.VertexID(v))
		r.values[v] = val
		r.active[v] = act
		if act {
			r.enqueue(graph.VertexID(v))
		}
	}
	if aux, ok := prog.(AuxState); ok {
		aux.InitAux(g)
	}
	r.promote()
	return r.loop(cfg.StopAfter, cfg.MaxSupersteps)
}

// Resume continues a paused or checkpointed execution. The config may
// use a different worker count or partitioning than the one that
// produced the snapshot — vertex state is location-independent.
func Resume(g *graph.Graph, prog Program, snap *Snapshot, cfg Config) (Result, error) {
	return ResumeCtx(context.Background(), g, prog, snap, cfg)
}

// ResumeCtx is Resume with cancellation (see RunCtx).
func ResumeCtx(ctx context.Context, g *graph.Graph, prog Program, snap *Snapshot, cfg Config) (Result, error) {
	if snap == nil {
		return Result{}, errors.New("engine: nil snapshot")
	}
	if snap.NumVertices != g.NumVertices() {
		return Result{}, fmt.Errorf("engine: snapshot for %d vertices, graph has %d", snap.NumVertices, g.NumVertices())
	}
	if snap.Program != prog.Name() {
		return Result{}, fmt.Errorf("engine: snapshot of %q cannot resume %q", snap.Program, prog.Name())
	}
	r, err := newRun(g, prog, cfg)
	if err != nil {
		return Result{}, err
	}
	r.done = ctx.Done()
	copy(r.values, snap.Values)
	copy(r.active, snap.Active)
	for v, act := range r.active {
		if act {
			r.enqueue(graph.VertexID(v))
		}
	}
	r.injectPending(snap.Pending)
	for name, v := range snap.AggValues {
		if a, ok := r.aggs[name]; ok {
			a.value = v
		}
	}
	r.superstep = snap.Superstep
	if aux, ok := prog.(AuxState); ok {
		aux.InitAux(g)
		if err := aux.UnmarshalAux(snap.Aux); err != nil {
			return Result{}, fmt.Errorf("engine: aux restore: %w", err)
		}
	}
	r.promote()
	return r.loop(cfg.StopAfter, cfg.MaxSupersteps)
}

func newRun(g *graph.Graph, prog Program, cfg Config) (*run, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("engine: workers = %d", cfg.Workers)
	}
	n := g.NumVertices()
	r := &run{
		g:      g,
		prog:   prog,
		values: make([]float64, n),
		active: make([]bool, n),
		queued: make([]bool, n),
		owner:  make([]int32, n),
		aggs:   map[string]*aggregator{},
	}
	if cfg.Assign != nil {
		if len(cfg.Assign) != n {
			return nil, fmt.Errorf("engine: assignment length %d for %d vertices", len(cfg.Assign), n)
		}
		copy(r.owner, cfg.Assign)
		for v, w := range r.owner {
			if w < 0 || int(w) >= cfg.Workers {
				return nil, fmt.Errorf("engine: vertex %d assigned to worker %d of %d", v, w, cfg.Workers)
			}
		}
	} else {
		for v := range r.owner {
			r.owner[v] = int32(v % cfg.Workers)
		}
	}
	r.collectSteps = cfg.CollectStepStats
	r.sink = cfg.Sink
	r.canonical = cfg.Canonical
	// Canonical mode needs every message term individually (a send-time
	// fold is inherently arrival-ordered), so the combiner is bypassed
	// and messages take the pooled-arena path.
	if c, ok := prog.(Combiner); ok && !r.canonical {
		r.comb = c
		r.inVal = make([]float64, n)
		r.inSet = make([]bool, n)
	} else {
		r.msgEnd = make([]int32, n)
		r.msgLen = make([]int32, n)
	}
	if a, ok := prog.(Aggregators); ok {
		for _, spec := range a.Aggregators() {
			r.aggs[spec.Name] = &aggregator{identity: spec.Identity, reduce: spec.Reduce, value: spec.Identity}
		}
	}
	// Worklists and staged-destination lists have exact capacity bounds
	// (a worker's worklist holds at most its owned vertices; a sender
	// stages at most one slot per destination vertex), so size them up
	// front and the superstep loop never grows a buffer.
	owned := make([]int, cfg.Workers)
	for _, o := range r.owner {
		owned[o]++
	}
	r.workers = make([]*worker, cfg.Workers)
	for w := range r.workers {
		wk := &worker{run: r, id: w, aggLocal: map[string]float64{}}
		if r.canonical {
			wk.aggList = map[string][]float64{}
		}
		wk.ctx = &Context{w: wk}
		wk.cur = make([]graph.VertexID, 0, owned[w])
		wk.next = make([]graph.VertexID, 0, owned[w])
		if r.comb != nil {
			wk.accVal = make([]float64, n)
			wk.accSet = make([]bool, n)
			wk.staged = make([][]graph.VertexID, cfg.Workers)
			for d := range wk.staged {
				wk.staged[d] = make([]graph.VertexID, 0, owned[d])
			}
		} else {
			wk.outbox = make([][]Message, cfg.Workers)
			wk.dirty = make([]graph.VertexID, 0, owned[w])
		}
		r.workers[w] = wk
	}
	return r, nil
}

// enqueue puts v on its owner's next-superstep worklist if it is not
// already queued. Callers must be the goroutine owning v's range (or
// run single-threaded at init/inject time).
func (r *run) enqueue(v graph.VertexID) {
	if !r.queued[v] {
		r.queued[v] = true
		w := r.workers[r.owner[v]]
		w.next = append(w.next, v)
	}
}

// promote rotates the initial worklists into place: init/inject
// enqueue onto next, and the loop consumes cur.
func (r *run) promote() {
	for _, w := range r.workers {
		w.cur, w.next = w.next, w.cur
	}
}

// injectPending seeds a resumed run's inbox from a snapshot's pending
// messages. With a combiner, every message folds unconditionally into
// the dense slot — a checkpoint may legitimately carry several
// messages for one vertex (e.g. one written by an engine without
// sender-side combining), and Compute must still observe at most one
// folded value. Without a combiner, messages are counting-sorted into
// the owners' arenas exactly like a regular delivery.
func (r *run) injectPending(pending []Message) {
	if r.comb != nil {
		for _, m := range pending {
			if r.inSet[m.Dst] {
				r.inVal[m.Dst] = r.comb.Combine(r.inVal[m.Dst], m.Val)
			} else {
				r.inSet[m.Dst] = true
				r.inVal[m.Dst] = m.Val
				r.enqueue(m.Dst)
			}
		}
		return
	}
	for _, m := range pending {
		if r.msgLen[m.Dst] == 0 {
			w := r.workers[r.owner[m.Dst]]
			w.dirty = append(w.dirty, m.Dst)
			r.enqueue(m.Dst)
		}
		r.msgLen[m.Dst]++
	}
	for _, w := range r.workers {
		w.layoutArena()
	}
	for _, m := range pending {
		w := r.workers[r.owner[m.Dst]]
		w.arena[r.msgEnd[m.Dst]] = m.Val
		r.msgEnd[m.Dst]++
	}
}

// layoutArena sizes w.arena for the counts accumulated in run.msgLen
// over w.dirty and points msgEnd at each vertex's start offset; the
// fill pass then advances msgEnd to the end of each vertex's slice.
func (w *worker) layoutArena() {
	r := w.run
	total := 0
	for _, v := range w.dirty {
		r.msgEnd[v] = int32(total)
		total += int(r.msgLen[v])
	}
	if cap(w.arena) < total {
		w.arena = make([]float64, total, total+total/4)
	} else {
		w.arena = w.arena[:total]
	}
}

// loop drives supersteps until quiescence, pause, or the step limit.
func (r *run) loop(stopAfter, maxSupersteps int) (Result, error) {
	if maxSupersteps == 0 {
		maxSupersteps = 10_000
	}
	steps := 0
	for {
		if !r.anyWork() {
			return Result{Values: r.values, Stats: r.stats(), StepStats: r.stepStats}, nil
		}
		if r.interrupted() {
			return Result{Stats: r.stats()}, ErrInterrupted
		}
		if r.superstep >= maxSupersteps {
			return Result{}, fmt.Errorf("engine: %s exceeded %d supersteps", r.prog.Name(), maxSupersteps)
		}
		if stopAfter > 0 && steps >= stopAfter {
			snap, err := r.snapshot()
			if err != nil {
				return Result{}, err
			}
			return Result{Values: r.values, Stats: r.stats(), StepStats: r.stepStats, Snapshot: snap}, ErrPaused
		}
		r.step()
		steps++
		if r.aborted.Load() {
			// A worker saw the cancellation mid-superstep: the step's
			// partial state is inconsistent and discarded.
			return Result{Stats: r.stats()}, ErrInterrupted
		}
	}
}

// interrupted reports (and latches) whether the run's context was
// cancelled at a barrier.
func (r *run) interrupted() bool {
	if r.done == nil {
		return false
	}
	select {
	case <-r.done:
		r.aborted.Store(true)
		return true
	default:
		return false
	}
}

// anyWork reports whether any worker has queued vertices — O(workers),
// not O(vertices).
func (r *run) anyWork() bool {
	for _, w := range r.workers {
		if len(w.cur) > 0 {
			return true
		}
	}
	return false
}

// step executes one superstep: parallel compute over the active
// worklists, then sharded message delivery and aggregator reduction at
// the barrier.
func (r *run) step() {
	comb := r.comb != nil
	var stepStart time.Time
	if r.sink != nil {
		stepStart = time.Now()
	}
	var wg sync.WaitGroup
	for _, w := range r.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx := w.ctx
			ctx.superstep = r.superstep
			for i, v := range w.cur {
				if r.done != nil && i&255 == 0 {
					select {
					case <-r.done:
						// Abandon the in-flight superstep: the run's
						// state is now inconsistent and the caller only
						// sees ErrInterrupted.
						r.aborted.Store(true)
						return
					default:
					}
				}
				r.queued[v] = false
				var msgs []float64
				if comb {
					if r.inSet[v] {
						r.inSet[v] = false
						msgs = r.inVal[v : v+1]
					}
				} else if n := r.msgLen[v]; n > 0 {
					end := r.msgEnd[v]
					msgs = w.arena[end-n : end]
					r.msgLen[v] = 0
					if r.canonical && n > 1 {
						// The arena slice is consumed this superstep, so
						// sorting in place is safe; Compute then folds a
						// canonically ordered multiset.
						sort.Float64s(msgs)
					}
				}
				r.active[v] = true // message receipt reactivates
				r.prog.Compute(ctx, v, msgs)
				w.calls++
				if r.active[v] && !r.queued[v] {
					r.queued[v] = true
					w.next = append(w.next, v)
				}
			}
			w.cur = w.cur[:0]
		}(w)
	}
	wg.Wait()
	if r.aborted.Load() {
		return
	}

	// Barrier: deliver staged messages. Each goroutine owns one
	// destination worker's vertex range, so inbox state, worklist
	// appends, and sender slot clears never race.
	var dg sync.WaitGroup
	for _, dw := range r.workers {
		dg.Add(1)
		go func(dw *worker) {
			defer dg.Done()
			if comb {
				dw.deliverCombined()
			} else {
				dw.deliverPooled()
			}
		}(dw)
	}
	dg.Wait()

	var stepSent, stepCalls, stepComb int64
	for _, w := range r.workers {
		stepSent += w.sent
		stepCalls += w.calls
		stepComb += w.comb
		r.sent += w.sent
		r.calls += w.calls
		r.remote += w.remote
		w.sent, w.calls, w.remote, w.comb = 0, 0, 0, 0
	}
	if r.collectSteps {
		r.stepStats = append(r.stepStats, StepStats{
			Superstep: r.superstep, Active: stepCalls, Messages: stepSent,
		})
	}
	for name, agg := range r.aggs {
		if r.canonical {
			// Merge every worker's raw contributions and fold them in
			// ascending value order: the reduction becomes a function of
			// the contribution multiset alone, independent of compute
			// order and worker count.
			merged := r.aggScratch[:0]
			for _, w := range r.workers {
				if lst := w.aggList[name]; len(lst) > 0 {
					merged = append(merged, lst...)
					w.aggList[name] = lst[:0]
				}
			}
			sort.Float64s(merged)
			val := agg.identity
			for i, c := range merged {
				if i == 0 {
					val = c
				} else {
					val = agg.reduce(val, c)
				}
			}
			agg.value = val
			r.aggScratch = merged[:0]
			continue
		}
		val := agg.identity
		contributed := false
		for _, w := range r.workers {
			if c, ok := w.aggLocal[name]; ok {
				if contributed {
					val = agg.reduce(val, c)
				} else {
					val = c
					contributed = true
				}
				delete(w.aggLocal, name)
			}
		}
		agg.value = val
	}
	for _, w := range r.workers {
		w.cur, w.next = w.next, w.cur
	}
	if r.sink != nil {
		var arena int64
		for _, w := range r.workers {
			arena += int64(len(w.arena)) * 8
		}
		r.sink.Emit(obs.Event{
			Type:       obs.EvSuperstep,
			Job:        r.prog.Name(),
			Superstep:  r.superstep + 1, // 1-based, so the last event equals Stats.Supersteps
			Active:     stepCalls,
			Messages:   stepSent,
			Combined:   stepComb,
			NsStep:     time.Since(stepStart).Nanoseconds(),
			ArenaBytes: arena,
		})
	}
	r.superstep++
}

// deliverCombined merges every sender's staged slots for dw's vertex
// range into the dense inbox, folding across senders in worker order,
// and clears the sender slots (distinct bytes per destination worker,
// so concurrent shards never touch the same memory).
func (dw *worker) deliverCombined() {
	r := dw.run
	for _, sw := range r.workers {
		staged := sw.staged[dw.id]
		for _, v := range staged {
			if r.inSet[v] {
				r.inVal[v] = r.comb.Combine(r.inVal[v], sw.accVal[v])
			} else {
				r.inSet[v] = true
				r.inVal[v] = sw.accVal[v]
				if !r.queued[v] {
					r.queued[v] = true
					dw.next = append(dw.next, v)
				}
			}
			sw.accSet[v] = false
		}
		sw.staged[dw.id] = staged[:0]
	}
}

// deliverPooled counting-sorts the messages addressed to dw's vertex
// range into dw's arena, preserving the (sender worker, send order)
// arrival order of the previous append-based inboxes, and recycles the
// consumed outboxes.
func (dw *worker) deliverPooled() {
	r := dw.run
	dw.dirty = dw.dirty[:0]
	for _, sw := range r.workers {
		for _, m := range sw.outbox[dw.id] {
			if r.msgLen[m.Dst] == 0 {
				dw.dirty = append(dw.dirty, m.Dst)
				if !r.queued[m.Dst] {
					r.queued[m.Dst] = true
					dw.next = append(dw.next, m.Dst)
				}
			}
			r.msgLen[m.Dst]++
		}
	}
	dw.layoutArena()
	for _, sw := range r.workers {
		box := sw.outbox[dw.id]
		for _, m := range box {
			dw.arena[r.msgEnd[m.Dst]] = m.Val
			r.msgEnd[m.Dst]++
		}
		sw.outbox[dw.id] = box[:0]
	}
}

func (r *run) stats() Stats {
	return Stats{Supersteps: r.superstep, MessagesSent: r.sent,
		ComputeCalls: r.calls, RemoteMessages: r.remote}
}

// FloatEqual is a helper for programs/tests comparing converged values.
// Equal values (including infinities) always compare true.
func FloatEqual(a, b, eps float64) bool { return a == b || math.Abs(a-b) <= eps }
