// Package engine is a from-scratch Pregel-style BSP graph-processing
// engine — the stand-in for Apache Giraph in the paper's prototype
// (§7). Vertices hold a float64 value, exchange float64 messages in
// synchronous supersteps, and vote to halt; workers are goroutines
// that own partitions of the vertex space and exchange messages
// through per-worker staging buffers at superstep barriers. The engine
// supports combiners, aggregators, per-program auxiliary state, and
// whole-computation checkpoints that can be restored under a
// *different* worker count/partitioning — the property Hourglass's
// fast-reload recovery relies on.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hourglass/internal/graph"
)

// Message is the unit exchanged between vertices. All bundled programs
// encode their payloads (distances, ranks, colors, component ids) as
// float64.
type Message struct {
	Dst graph.VertexID
	Val float64
}

// Context is the per-superstep view a Program's Compute sees. It is
// scoped to one worker and must not be retained across supersteps.
type Context struct {
	w         *worker
	superstep int
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// Graph returns the input graph.
func (c *Context) Graph() *graph.Graph { return c.w.run.g }

// Value returns vertex v's current value.
func (c *Context) Value(v graph.VertexID) float64 { return c.w.run.values[v] }

// SetValue updates the value of a vertex owned by this worker. Programs
// must only set values of the vertex currently being computed.
func (c *Context) SetValue(v graph.VertexID, x float64) { c.w.run.values[v] = x }

// Send delivers a message to dst at the next superstep.
func (c *Context) Send(dst graph.VertexID, val float64) {
	r := c.w.run
	w := r.owner[dst]
	buf := &c.w.outbox[w]
	*buf = append(*buf, Message{dst, val})
	c.w.sent++
	if int(w) != c.w.id {
		c.w.remote++
	}
}

// SendToNeighbors broadcasts val to all out-neighbours of v.
func (c *Context) SendToNeighbors(v graph.VertexID, val float64) {
	for _, u := range c.w.run.g.Neighbors(v) {
		c.Send(u, val)
	}
}

// VoteToHalt deactivates v; an incoming message reactivates it.
func (c *Context) VoteToHalt(v graph.VertexID) { c.w.run.active[v] = false }

// Aggregate contributes to a named aggregator; the reduced value is
// visible through AggregatedValue in the *next* superstep.
func (c *Context) Aggregate(name string, val float64) {
	agg, ok := c.w.run.aggs[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	cur, seen := c.w.aggLocal[name]
	if !seen {
		c.w.aggLocal[name] = val
		return
	}
	c.w.aggLocal[name] = agg.reduce(cur, val)
}

// AggregatedValue returns the reduction of the previous superstep's
// contributions (the aggregator's identity before any contribution).
func (c *Context) AggregatedValue(name string) float64 {
	agg, ok := c.w.run.aggs[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	return agg.value
}

// Program is a vertex-centric computation.
type Program interface {
	// Name identifies the program in logs and checkpoints.
	Name() string
	// Init returns a vertex's initial value and whether it starts active.
	Init(g *graph.Graph, v graph.VertexID) (value float64, active bool)
	// Compute processes the messages delivered to v this superstep. It
	// runs only for vertices that are active or have incoming messages.
	Compute(ctx *Context, v graph.VertexID, msgs []float64)
}

// Combiner optionally merges messages addressed to the same vertex,
// cutting memory and exchange volume (Pregel's combiner).
type Combiner interface {
	Combine(a, b float64) float64
}

// AggregatorSpec declares a named aggregator a program uses.
type AggregatorSpec struct {
	Name string
	// Identity is the value seen when nothing was contributed.
	Identity float64
	// Reduce merges two contributions (must be commutative+associative).
	Reduce func(a, b float64) float64
}

// Aggregators is implemented by programs that need aggregators.
type Aggregators interface {
	Aggregators() []AggregatorSpec
}

// AuxState is implemented by programs with per-vertex state beyond the
// single float64 value; the engine includes it in checkpoints.
type AuxState interface {
	// InitAux sizes the auxiliary state for the graph.
	InitAux(g *graph.Graph)
	// MarshalAux / UnmarshalAux serialise the state for checkpoints.
	MarshalAux() ([]byte, error)
	UnmarshalAux([]byte) error
}

// Config controls an execution.
type Config struct {
	// Workers is the number of worker goroutines (≥1).
	Workers int
	// Assign maps vertex→worker; nil means hash partitioning.
	Assign []int32
	// MaxSupersteps aborts runaway programs (0 = 10_000).
	MaxSupersteps int
	// StopAfter pauses the run after this many additional supersteps,
	// returning ErrPaused with a resumable snapshot (0 = run to
	// completion). Used to emulate evictions mid-computation.
	StopAfter int
	// CollectStepStats records per-superstep activity into
	// Result.StepStats (costs one pass of bookkeeping per step).
	CollectStepStats bool
}

// ErrPaused is returned when Config.StopAfter interrupted the run; the
// Result carries a Snapshot to resume from.
var ErrPaused = errors.New("engine: paused before completion")

// Stats summarise an execution. For resumed runs, Supersteps is the
// absolute superstep counter while MessagesSent/ComputeCalls cover the
// resumed portion only.
type Stats struct {
	Supersteps   int
	MessagesSent int64
	ComputeCalls int64
	// RemoteMessages counts messages that crossed workers — the
	// network traffic a real deployment would pay, and the quantity
	// good partitionings minimise (§3.2).
	RemoteMessages int64
}

// StepStats records one superstep's activity (Config.CollectStepStats).
type StepStats struct {
	Superstep int
	Active    int64 // vertices computed
	Messages  int64 // messages sent during the step
}

// Result of a run.
type Result struct {
	Values []float64
	Stats  Stats
	// StepStats is populated when Config.CollectStepStats is set.
	StepStats []StepStats
	// Snapshot is non-nil when the run was paused (ErrPaused).
	Snapshot *Snapshot
}

type aggregator struct {
	identity float64
	reduce   func(a, b float64) float64
	value    float64
}

// run is the shared state of one execution.
type run struct {
	g       *graph.Graph
	prog    Program
	values  []float64
	active  []bool
	inbox   [][]float64 // per vertex, messages for the current superstep
	owner   []int32     // vertex -> worker
	aggs    map[string]*aggregator
	workers []*worker
	comb    Combiner

	superstep int
	sent      int64
	calls     int64
	remote    int64

	collectSteps bool
	stepStats    []StepStats
}

type worker struct {
	run      *run
	id       int
	vertices []graph.VertexID
	outbox   [][]Message // per destination worker
	aggLocal map[string]float64
	sent     int64
	calls    int64
	remote   int64
}

// Run executes prog on g under cfg, starting from scratch.
func Run(g *graph.Graph, prog Program, cfg Config) (Result, error) {
	r, err := newRun(g, prog, cfg)
	if err != nil {
		return Result{}, err
	}
	// Initialise vertex values and auxiliary state.
	for v := 0; v < g.NumVertices(); v++ {
		val, act := prog.Init(g, graph.VertexID(v))
		r.values[v] = val
		r.active[v] = act
	}
	if aux, ok := prog.(AuxState); ok {
		aux.InitAux(g)
	}
	return r.loop(cfg.StopAfter, cfg.MaxSupersteps)
}

// Resume continues a paused or checkpointed execution. The config may
// use a different worker count or partitioning than the one that
// produced the snapshot — vertex state is location-independent.
func Resume(g *graph.Graph, prog Program, snap *Snapshot, cfg Config) (Result, error) {
	if snap == nil {
		return Result{}, errors.New("engine: nil snapshot")
	}
	if snap.NumVertices != g.NumVertices() {
		return Result{}, fmt.Errorf("engine: snapshot for %d vertices, graph has %d", snap.NumVertices, g.NumVertices())
	}
	if snap.Program != prog.Name() {
		return Result{}, fmt.Errorf("engine: snapshot of %q cannot resume %q", snap.Program, prog.Name())
	}
	r, err := newRun(g, prog, cfg)
	if err != nil {
		return Result{}, err
	}
	copy(r.values, snap.Values)
	copy(r.active, snap.Active)
	for _, m := range snap.Pending {
		r.inbox[m.Dst] = append(r.inbox[m.Dst], m.Val)
	}
	for name, v := range snap.AggValues {
		if a, ok := r.aggs[name]; ok {
			a.value = v
		}
	}
	r.superstep = snap.Superstep
	if aux, ok := prog.(AuxState); ok {
		aux.InitAux(g)
		if err := aux.UnmarshalAux(snap.Aux); err != nil {
			return Result{}, fmt.Errorf("engine: aux restore: %w", err)
		}
	}
	return r.loop(cfg.StopAfter, cfg.MaxSupersteps)
}

func newRun(g *graph.Graph, prog Program, cfg Config) (*run, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("engine: workers = %d", cfg.Workers)
	}
	n := g.NumVertices()
	r := &run{
		g:      g,
		prog:   prog,
		values: make([]float64, n),
		active: make([]bool, n),
		inbox:  make([][]float64, n),
		owner:  make([]int32, n),
		aggs:   map[string]*aggregator{},
	}
	if cfg.Assign != nil {
		if len(cfg.Assign) != n {
			return nil, fmt.Errorf("engine: assignment length %d for %d vertices", len(cfg.Assign), n)
		}
		copy(r.owner, cfg.Assign)
		for v, w := range r.owner {
			if w < 0 || int(w) >= cfg.Workers {
				return nil, fmt.Errorf("engine: vertex %d assigned to worker %d of %d", v, w, cfg.Workers)
			}
		}
	} else {
		for v := range r.owner {
			r.owner[v] = int32(v % cfg.Workers)
		}
	}
	r.collectSteps = cfg.CollectStepStats
	if c, ok := prog.(Combiner); ok {
		r.comb = c
	}
	if a, ok := prog.(Aggregators); ok {
		for _, spec := range a.Aggregators() {
			r.aggs[spec.Name] = &aggregator{identity: spec.Identity, reduce: spec.Reduce, value: spec.Identity}
		}
	}
	r.workers = make([]*worker, cfg.Workers)
	for w := range r.workers {
		r.workers[w] = &worker{
			run:      r,
			id:       w,
			outbox:   make([][]Message, cfg.Workers),
			aggLocal: map[string]float64{},
		}
	}
	for v := 0; v < n; v++ {
		w := r.workers[r.owner[v]]
		w.vertices = append(w.vertices, graph.VertexID(v))
	}
	return r, nil
}

// loop drives supersteps until quiescence, pause, or the step limit.
func (r *run) loop(stopAfter, maxSupersteps int) (Result, error) {
	if maxSupersteps == 0 {
		maxSupersteps = 10_000
	}
	steps := 0
	for {
		if !r.anyWork() {
			return Result{Values: r.values, Stats: r.stats(), StepStats: r.stepStats}, nil
		}
		if r.superstep >= maxSupersteps {
			return Result{}, fmt.Errorf("engine: %s exceeded %d supersteps", r.prog.Name(), maxSupersteps)
		}
		if stopAfter > 0 && steps >= stopAfter {
			snap, err := r.snapshot()
			if err != nil {
				return Result{}, err
			}
			return Result{Values: r.values, Stats: r.stats(), StepStats: r.stepStats, Snapshot: snap}, ErrPaused
		}
		r.step()
		steps++
	}
}

// anyWork reports whether any vertex is active or has pending messages.
func (r *run) anyWork() bool {
	for v, act := range r.active {
		if act || len(r.inbox[v]) > 0 {
			return true
		}
	}
	return false
}

// step executes one superstep: parallel compute, then message exchange
// and aggregator reduction at the barrier.
func (r *run) step() {
	var wg sync.WaitGroup
	for _, w := range r.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx := &Context{w: w, superstep: r.superstep}
			for _, v := range w.vertices {
				msgs := r.inbox[v]
				if !r.active[v] && len(msgs) == 0 {
					continue
				}
				r.active[v] = true // message receipt reactivates
				r.prog.Compute(ctx, v, msgs)
				w.calls++
			}
		}(w)
	}
	wg.Wait()

	// Barrier: clear inboxes, deliver staged messages, fold aggregators.
	for v := range r.inbox {
		r.inbox[v] = r.inbox[v][:0]
	}
	var dg sync.WaitGroup
	for dst := range r.workers {
		dg.Add(1)
		go func(dst int) {
			defer dg.Done()
			for _, src := range r.workers {
				for _, m := range src.outbox[dst] {
					box := r.inbox[m.Dst]
					if r.comb != nil && len(box) == 1 {
						box[0] = r.comb.Combine(box[0], m.Val)
					} else {
						r.inbox[m.Dst] = append(box, m.Val)
					}
				}
			}
		}(dst)
	}
	dg.Wait()
	var stepSent, stepCalls int64
	for _, w := range r.workers {
		for dst := range w.outbox {
			w.outbox[dst] = w.outbox[dst][:0]
		}
		stepSent += w.sent
		stepCalls += w.calls
		r.sent += w.sent
		r.calls += w.calls
		r.remote += w.remote
		w.sent, w.calls, w.remote = 0, 0, 0
	}
	if r.collectSteps {
		r.stepStats = append(r.stepStats, StepStats{
			Superstep: r.superstep, Active: stepCalls, Messages: stepSent,
		})
	}
	for name, agg := range r.aggs {
		val := agg.identity
		contributed := false
		for _, w := range r.workers {
			if c, ok := w.aggLocal[name]; ok {
				if contributed {
					val = agg.reduce(val, c)
				} else {
					val = c
					contributed = true
				}
				delete(w.aggLocal, name)
			}
		}
		agg.value = val
	}
	r.superstep++
}

func (r *run) stats() Stats {
	return Stats{Supersteps: r.superstep, MessagesSent: r.sent,
		ComputeCalls: r.calls, RemoteMessages: r.remote}
}

// FloatEqual is a helper for programs/tests comparing converged values.
// Equal values (including infinities) always compare true.
func FloatEqual(a, b, eps float64) bool { return a == b || math.Abs(a-b) <= eps }
