package engine_test

import (
	"errors"
	"testing"

	"hourglass/internal/engine"
)

// TestGraphColoringAuxCheckpointBound pauses a canonical 16-worker
// Jones–Plassmann run at every barrier and measures the aux-state part
// of each snapshot. GraphColoring is the only shipped program with
// AuxState, and its aux blob is the wildcard in checkpoint pricing:
// values and active flags are a fixed 9 bytes/vertex, but the
// neighbor-color sets grow as the run progresses.
//
// The bound is structural, read off MarshalAux's layout (8-byte count,
// 4 bytes per pending-higher counter, then per vertex a 4-byte length
// plus 4 bytes per recorded color). A vertex can record at most one
// color per neighbor, so:
//
//	aux <= 8 + 8·V + 4·A   (A = stored arcs, both directions)
//
// On the Graph500 default family (edge factor 16, undirected, so
// A <= 32·V) that caps aux at 136 bytes/vertex — 17x the plain float64
// value vector. DESIGN.md quotes these numbers; if the layout changes,
// update both.
func TestGraphColoringAuxCheckpointBound(t *testing.T) {
	g := canonicalGraph(10, 7)
	V := int64(g.NumVertices())
	arcs := g.NumEdges()
	structural := 8 + 8*V + 4*arcs

	cfg := engine.Config{Workers: 16, Canonical: true, StopAfter: 1}
	prog := &engine.GraphColoring{}
	res, err := engine.Run(g, prog, cfg)
	var maxAux, maxTotal int64
	barriers := 0
	for errors.Is(err, engine.ErrPaused) {
		snap := res.Snapshot
		if snap == nil {
			t.Fatal("paused without a snapshot")
		}
		barriers++
		aux := int64(len(snap.Aux))
		if aux > structural {
			t.Fatalf("superstep %d: aux %d bytes exceeds structural bound %d (= 8 + 8·%d + 4·%d)",
				snap.Superstep, aux, structural, V, arcs)
		}
		if aux > maxAux {
			maxAux = aux
		}
		if tot := snap.SizeBytes(); tot > maxTotal {
			maxTotal = tot
		}
		res, err = engine.Resume(g, prog, snap, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	if barriers < 2 {
		t.Fatalf("run paused at %d barriers, want at least 2 to see aux growth", barriers)
	}

	// The documented per-vertex factor for the default RMAT family:
	// 17x the 8-byte value vector (136 bytes/vertex).
	if factorCap := 17*8*V + 8; maxAux > factorCap {
		t.Errorf("peak aux %d bytes (%.1f B/vertex) exceeds documented 136 B/vertex cap",
			maxAux, float64(maxAux)/float64(V))
	}
	t.Logf("w=16 canonical coloring: %d barriers, peak aux %d bytes (%.1f B/vertex, structural cap %.1f), peak snapshot %d bytes (%.1f B/vertex)",
		barriers, maxAux, float64(maxAux)/float64(V), float64(structural)/float64(V),
		maxTotal, float64(maxTotal)/float64(V))
}
