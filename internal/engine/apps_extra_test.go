package engine

import (
	"errors"
	"testing"

	"hourglass/internal/graph"
)

func TestLabelPropagationFindsPlantedCommunities(t *testing.T) {
	g := graph.Community(graph.CommunityParams{
		Communities: 4, SizeMean: 40, IntraDegree: 12, InterFraction: 0.02, Seed: 3,
	})
	res := runOK(t, g, &LabelPropagation{Rounds: 15}, Config{Workers: 4})
	got := Communities(res.Values)
	// Label propagation should find few communities — far fewer than
	// one per vertex, at least as many as the planted count would merge.
	if got > g.NumVertices()/4 {
		t.Errorf("found %d communities on %d vertices — no propagation happened", got, g.NumVertices())
	}
	if got < 1 {
		t.Errorf("no communities at all")
	}
}

func TestLabelPropagationCliqueCollapses(t *testing.T) {
	g := graph.Complete(10)
	res := runOK(t, g, &LabelPropagation{Rounds: 10}, Config{Workers: 2})
	if got := Communities(res.Values); got != 1 {
		t.Errorf("clique communities = %d, want 1", got)
	}
}

func TestKCoreOnCliquePlusTail(t *testing.T) {
	// K5 (vertices 0–4) with a path 4-5-6 hanging off: the 4-core is
	// exactly the clique; the tail peels away.
	b := graph.NewBuilder(7, graph.Undirected())
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1)
		}
	}
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	g := b.Build()

	res := runOK(t, g, &KCore{K: 4}, Config{Workers: 2})
	for v := 0; v < 5; v++ {
		if res.Values[v] != 1 {
			t.Errorf("clique vertex %d not in 4-core", v)
		}
	}
	for v := 5; v < 7; v++ {
		if res.Values[v] != 0 {
			t.Errorf("tail vertex %d in 4-core", v)
		}
	}
}

func TestKCoreCascadingPeel(t *testing.T) {
	// A path: the 2-core of a path is empty (peeling cascades from the
	// endpoints inward).
	g := graph.Path(9)
	res := runOK(t, g, &KCore{K: 2}, Config{Workers: 3})
	for v, val := range res.Values {
		if val != 0 {
			t.Errorf("path vertex %d survived the 2-core", v)
		}
	}
	// A ring's 2-core is the whole ring.
	ring := graph.Ring(9)
	res = runOK(t, ring, &KCore{K: 2}, Config{Workers: 3})
	for v, val := range res.Values {
		if val != 1 {
			t.Errorf("ring vertex %d peeled from the 2-core", v)
		}
	}
}

func TestCorenessSweep(t *testing.T) {
	// K5 plus tail: clique vertices have coreness 4, vertex 5 has
	// coreness 1, vertex 6 has coreness 1.
	b := graph.NewBuilder(7, graph.Undirected())
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1)
		}
	}
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	g := b.Build()
	coreness, err := CorenessSweep(g, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 4, 4, 4, 1, 1}
	for v := range want {
		if coreness[v] != want[v] {
			t.Errorf("coreness[%d] = %d, want %d", v, coreness[v], want[v])
		}
	}
}

func TestKCoreResumeWithAux(t *testing.T) {
	g := undirectedRMAT(9, 12)
	full := runOK(t, g, &KCore{K: 3}, Config{Workers: 4})
	res, err := Run(g, &KCore{K: 3}, Config{Workers: 4, StopAfter: 1})
	if !errors.Is(err, ErrPaused) {
		t.Skip("k-core finished in one superstep on this graph")
	}
	resumed, err := Resume(g, &KCore{K: 3}, res.Snapshot, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range full.Values {
		if full.Values[v] != resumed.Values[v] {
			t.Fatalf("k-core resume diverged at %d", v)
		}
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := graph.Grid(3, 3)
	res := runOK(t, g, DegreeCentrality{}, Config{Workers: 2})
	// Corner 0 has degree 2, center 4 has degree 4.
	if res.Values[0] != 2 || res.Values[4] != 4 {
		t.Errorf("degrees = %v", res.Values)
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"triangle", graph.Complete(3), 1},
		{"k4", graph.Complete(4), 4},
		{"k5", graph.Complete(5), 10},
		{"ring", graph.Ring(6), 0},
		{"path", graph.Path(5), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runOK(t, tc.g, TriangleCount{}, Config{Workers: 3})
			if got := TotalTriangles(res.Values); got != tc.want {
				t.Errorf("triangles = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := undirectedRMAT(8, 21)
	res := runOK(t, g, TriangleCount{}, Config{Workers: 4})
	want := bruteForceTriangles(g)
	if got := TotalTriangles(res.Values); got != want {
		t.Errorf("triangles = %d, brute force = %d", got, want)
	}
}

func bruteForceTriangles(g *graph.Graph) int64 {
	var count int64
	n := graph.VertexID(g.NumVertices())
	for a := graph.VertexID(0); a < n; a++ {
		for _, b := range g.Neighbors(a) {
			if b <= a {
				continue
			}
			for _, c := range g.Neighbors(b) {
				if c <= b {
					continue
				}
				if hasNeighbor(g, a, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestHasNeighbor(t *testing.T) {
	g := graph.Path(4)
	if !hasNeighbor(g, 1, 2) || !hasNeighbor(g, 1, 0) {
		t.Error("adjacency lookup false negative")
	}
	if hasNeighbor(g, 0, 3) || hasNeighbor(g, 0, 0) {
		t.Error("adjacency lookup false positive")
	}
}
