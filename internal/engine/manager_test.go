package engine

import (
	"errors"
	"fmt"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/faultinject"
	"hourglass/internal/graph"
)

func TestCheckpointManagerSaveLoad(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "test/pagerank"}
	g := undirectedRMAT(8, 3)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 2, StopAfter: 3})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	up, err := m.Save(res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if up <= 0 {
		t.Errorf("upload time = %v", up)
	}
	back, down, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if down <= 0 {
		t.Errorf("download time = %v", down)
	}
	if back.Superstep != res.Snapshot.Superstep || back.Program != "pagerank" {
		t.Errorf("loaded snapshot mismatch: %+v", back)
	}
}

func TestCheckpointManagerNoCheckpoint(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "empty"}
	if _, _, err := m.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("expected ErrNoCheckpoint, got %v", err)
	}
}

func TestRunDurableMatchesDirectRun(t *testing.T) {
	g := undirectedRMAT(9, 4)
	direct := runOK(t, g, &PageRank{Iterations: 12}, Config{Workers: 4})

	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "durable/pr"}
	res, ioTime, err := m.RunDurable(g, &PageRank{Iterations: 12}, Config{Workers: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ioTime <= 0 {
		t.Errorf("no checkpoint I/O recorded")
	}
	for v := range direct.Values {
		if !FloatEqual(direct.Values[v], res.Values[v], 1e-12) {
			t.Fatalf("durable run diverged at %d", v)
		}
	}
}

func TestRunDurableSurvivesFullFailure(t *testing.T) {
	// Simulate a total eviction: run durably for a while, "crash"
	// (abandon the Result), then a *fresh* manager over the same store
	// resumes from the durable checkpoint on a different worker count.
	g := undirectedRMAT(9, 5)
	store := cloud.NewDatastore()
	prog := &GraphColoring{}

	// Phase 1: run 2 supersteps and checkpoint, then crash.
	res, err := Run(g, prog, Config{Workers: 4, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	m1 := &CheckpointManager{Store: store, Job: "gc/twitter"}
	if _, err := m1.Save(res.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recovery on a new "deployment".
	m2 := &CheckpointManager{Store: store, Job: "gc/twitter"}
	recovered, _, err := m2.RunDurable(g, &GraphColoring{}, Config{Workers: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	reference := runOK(t, g, &GraphColoring{}, Config{Workers: 4})
	for v := range reference.Values {
		if reference.Values[v] != recovered.Values[v] {
			t.Fatalf("recovered coloring diverged at %d", v)
		}
	}
	// Completion clears the latest pointer.
	if _, _, err := m2.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Error("latest pointer not cleared after completion")
	}
}

func TestRunDurableRejectsBadInterval(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "bad"}
	if _, _, err := m.RunDurable(graph.Path(3), &SSSP{}, Config{Workers: 1}, 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
}

func TestSaveRetriesTransientStoreErrors(t *testing.T) {
	// A store that fails every op twice before succeeding: the manager's
	// backoff must absorb the faults and still land the checkpoint.
	store := faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{
		Seed: 11, PError: 1, MaxConsecutive: 2,
	})
	m := &CheckpointManager{Store: store, Job: "retry/pr"}
	g := undirectedRMAT(8, 3)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 2, StopAfter: 3})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	up, err := m.Save(res.Snapshot)
	if err != nil {
		t.Fatalf("save did not survive transient errors: %v", err)
	}
	if up <= 0 {
		t.Errorf("upload time = %v", up)
	}
	back, _, err := m.Load()
	if err != nil || back.Superstep != res.Snapshot.Superstep {
		t.Fatalf("load after retries: %+v, %v", back, err)
	}
	if st := store.Stats(); st.Errors == 0 {
		t.Error("fault schedule injected nothing — test is vacuous")
	}
}

func TestLoadSkipsCorruptLatestAndFallsBack(t *testing.T) {
	// Two checkpoints; the newer one is then corrupted in place. Load
	// must detect the bad CRC and restore the older intact checkpoint
	// instead of returning garbage.
	store := cloud.NewDatastore()
	m := &CheckpointManager{Store: store, Job: "corrupt/pr"}
	g := undirectedRMAT(8, 4)

	res, err := Run(g, &PageRank{Iterations: 9}, Config{Workers: 2, StopAfter: 3})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res.Snapshot); err != nil {
		t.Fatal(err)
	}
	older := res.Snapshot.Superstep

	res2, err := Resume(g, &PageRank{Iterations: 9}, res.Snapshot, Config{Workers: 2, StopAfter: 3})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res2.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint blob in the durable store.
	key := fmt.Sprintf("ckpt/%s/%08d", m.Job, res2.Snapshot.Superstep)
	blob, _, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	store.Put(key, blob)

	snap, _, err := m.Load()
	if err != nil {
		t.Fatalf("load with corrupt latest: %v", err)
	}
	if snap.Superstep != older {
		t.Fatalf("restored superstep %d, want fallback to %d", snap.Superstep, older)
	}
}

func TestLoadAllCorruptReturnsNoCheckpoint(t *testing.T) {
	store := cloud.NewDatastore()
	m := &CheckpointManager{Store: store, Job: "allbad/pr"}
	g := undirectedRMAT(8, 5)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 1, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res.Snapshot); err != nil {
		t.Fatal(err)
	}
	// Truncate the only checkpoint below its trailer.
	key := fmt.Sprintf("ckpt/%s/%08d", m.Job, res.Snapshot.Superstep)
	store.Put(key, []byte{1, 2, 3})
	if _, _, err := m.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt-only namespace: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLoadDanglingPointerFallsBack(t *testing.T) {
	store := cloud.NewDatastore()
	m := &CheckpointManager{Store: store, Job: "dangle/pr"}
	g := undirectedRMAT(8, 6)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 2, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	if _, err := m.Save(res.Snapshot); err != nil {
		t.Fatal(err)
	}
	// Scribble the latest pointer so it dangles.
	store.Put(fmt.Sprintf("ckpt/%s/latest", m.Job), []byte("ckpt/dangle/pr/99999999"))
	snap, _, err := m.Load()
	if err != nil {
		t.Fatalf("dangling pointer not recovered: %v", err)
	}
	if snap.Superstep != res.Snapshot.Superstep {
		t.Fatalf("recovered superstep %d, want %d", snap.Superstep, res.Snapshot.Superstep)
	}
}

func TestFrameRoundTripAndCorruptionDetection(t *testing.T) {
	payload := []byte("the quick brown fox")
	sealed := sealFrame(payload)
	back, err := openFrame(sealed)
	if err != nil || string(back) != string(payload) {
		t.Fatalf("round trip: %q, %v", back, err)
	}
	for _, tc := range [][]byte{
		nil,
		sealed[:3],                   // shorter than the trailer
		sealed[:len(sealed)-1],       // truncated
		append([]byte{0}, sealed...), // shifted
	} {
		if _, err := openFrame(tc); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("blob %v accepted (err=%v)", tc, err)
		}
	}
	flipped := append([]byte(nil), sealed...)
	flipped[5] ^= 1
	if _, err := openFrame(flipped); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("bit flip accepted (err=%v)", err)
	}
}
