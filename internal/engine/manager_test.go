package engine

import (
	"errors"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/graph"
)

func TestCheckpointManagerSaveLoad(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "test/pagerank"}
	g := undirectedRMAT(8, 3)
	res, err := Run(g, &PageRank{Iterations: 8}, Config{Workers: 2, StopAfter: 3})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	up, err := m.Save(res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if up <= 0 {
		t.Errorf("upload time = %v", up)
	}
	back, down, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if down <= 0 {
		t.Errorf("download time = %v", down)
	}
	if back.Superstep != res.Snapshot.Superstep || back.Program != "pagerank" {
		t.Errorf("loaded snapshot mismatch: %+v", back)
	}
}

func TestCheckpointManagerNoCheckpoint(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "empty"}
	if _, _, err := m.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("expected ErrNoCheckpoint, got %v", err)
	}
}

func TestRunDurableMatchesDirectRun(t *testing.T) {
	g := undirectedRMAT(9, 4)
	direct := runOK(t, g, &PageRank{Iterations: 12}, Config{Workers: 4})

	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "durable/pr"}
	res, ioTime, err := m.RunDurable(g, &PageRank{Iterations: 12}, Config{Workers: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ioTime <= 0 {
		t.Errorf("no checkpoint I/O recorded")
	}
	for v := range direct.Values {
		if !FloatEqual(direct.Values[v], res.Values[v], 1e-12) {
			t.Fatalf("durable run diverged at %d", v)
		}
	}
}

func TestRunDurableSurvivesFullFailure(t *testing.T) {
	// Simulate a total eviction: run durably for a while, "crash"
	// (abandon the Result), then a *fresh* manager over the same store
	// resumes from the durable checkpoint on a different worker count.
	g := undirectedRMAT(9, 5)
	store := cloud.NewDatastore()
	prog := &GraphColoring{}

	// Phase 1: run 2 supersteps and checkpoint, then crash.
	res, err := Run(g, prog, Config{Workers: 4, StopAfter: 2})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	m1 := &CheckpointManager{Store: store, Job: "gc/twitter"}
	if _, err := m1.Save(res.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recovery on a new "deployment".
	m2 := &CheckpointManager{Store: store, Job: "gc/twitter"}
	recovered, _, err := m2.RunDurable(g, &GraphColoring{}, Config{Workers: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	reference := runOK(t, g, &GraphColoring{}, Config{Workers: 4})
	for v := range reference.Values {
		if reference.Values[v] != recovered.Values[v] {
			t.Fatalf("recovered coloring diverged at %d", v)
		}
	}
	// Completion clears the latest pointer.
	if _, _, err := m2.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Error("latest pointer not cleared after completion")
	}
}

func TestRunDurableRejectsBadInterval(t *testing.T) {
	m := &CheckpointManager{Store: cloud.NewDatastore(), Job: "bad"}
	if _, _, err := m.RunDurable(graph.Path(3), &SSSP{}, Config{Workers: 1}, 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
}
