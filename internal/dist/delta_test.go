package dist

// Delta-checkpoint acceptance tests: chained manifests must round-trip
// bit-identically across shard counts, corruption anywhere in a chain
// must fall back to the newest fully-valid chain (ultimately the full
// root), and delta blobs must actually be smaller than full ones on a
// converging program.

import (
	"context"
	"errors"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/obs"
)

// snapshot copies the captured event list for summary folding.
func (s *captureSink) snapshot() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.events...)
}

// TestDistDeltaChainRoundTrip builds a maximal chain — one full root
// plus DeltaChain deltas at checkpoint-every-1 cadence — kills the
// session at its tip, and resumes at a different shard count. The
// overlay restore must land exactly on the tip and stay bit-identical.
func TestDistDeltaChainRoundTrip(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	store := cloud.NewDatastore()
	sink := &captureSink{}
	cfg := Config{
		Job:             "pagerank-delta",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 1,
		DeltaChain:      3,
		Store:           store,
		Sink:            sink,
	}
	_, err := RunCluster(context.Background(), cfg, 4, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 0 {
			opts.DieAtSuperstep = 4
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}

	// Checkpoints 1..4 sealed (checkpoint S is the state entering
	// superstep S): full at 1, then a delta chain of 3.
	ckpts := sink.byType(obs.EvCheckpoint)
	if len(ckpts) != 4 {
		t.Fatalf("%d checkpoints, want 4", len(ckpts))
	}
	for i, e := range ckpts {
		if e.Superstep != i+1 || e.Chain != i {
			t.Errorf("checkpoint %d: superstep %d chain %d, want %d/%d",
				i, e.Superstep, e.Chain, i+1, i)
		}
	}
	if deltas := sink.byType(obs.EvDeltaSave); len(deltas) != 3 {
		t.Fatalf("%d delta-save events, want 3", len(deltas))
	}

	// Resume at a different shard count: every worker reloads the whole
	// 4-blob chain per link and re-partitions.
	rep, err := RunCluster(context.Background(), cfg, 3, nil)
	if err != nil {
		t.Fatalf("resume with 3 shards: %v", err)
	}
	if !rep.Resumed || rep.StartSuperstep != 4 {
		t.Fatalf("resumed=%v start=%d, want resume at the chain tip 4", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "delta chain resume")
}

// TestDistDeltaChainBoundForcesFull checks the chain bound: with
// DeltaChain=2 at every-1 cadence the chain pattern must be
// full,δ,δ,full,δ,δ,... — a corrupt-chain blast radius bounded by the
// config, not the run length.
func TestDistDeltaChainBoundForcesFull(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	store := cloud.NewDatastore()
	sink := &captureSink{}
	cfg := Config{
		Job:             "pagerank-bound",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 1,
		DeltaChain:      2,
		Store:           store,
		Sink:            sink,
	}
	if _, err := RunCluster(context.Background(), cfg, 2, nil); err != nil {
		t.Fatal(err)
	}
	for i, e := range sink.byType(obs.EvCheckpoint) {
		if want := i % 3; e.Chain != want {
			t.Errorf("checkpoint at superstep %d: chain %d, want %d", e.Superstep, e.Chain, want)
		}
	}
}

// TestDistDeltaCorruptMidChain corrupts a delta blob in the middle of
// the chain: every manifest whose restore list crosses the corrupt link
// must be rejected, and resume lands on the newest chain that verifies
// end to end.
func TestDistDeltaCorruptMidChain(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-midchain",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 1,
		DeltaChain:      4,
		Store:           store,
	}
	_, err := RunCluster(context.Background(), cfg, 2, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 0 {
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}
	// Chain on disk: full@1 ← δ@2 ← δ@3 ← δ@4. Corrupt the δ@3 blob of
	// shard 0: manifests 4 and 3 become unrestorable, manifest 2 stays
	// valid.
	key := shardBlobKey(cfg.Job, 3, 0)
	data, _, err := store.Get(key)
	if err != nil {
		t.Fatalf("mid-chain blob missing: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if _, err := store.Put(key, data); err != nil {
		t.Fatal(err)
	}
	rep, err := RunCluster(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatalf("resume after mid-chain corruption: %v", err)
	}
	if !rep.Resumed || rep.StartSuperstep != 2 {
		t.Fatalf("resumed=%v start=%d, want fallback to superstep 2", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "mid-chain fallback resume")
}

// TestDistDeltaCorruptFullRoot corrupts the chain's full root: nothing
// downstream of it can be trusted, so the session must restart from
// scratch — and still converge bit-identically.
func TestDistDeltaCorruptFullRoot(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-rootloss",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 1,
		DeltaChain:      4,
		Store:           store,
	}
	_, err := RunCluster(context.Background(), cfg, 2, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 0 {
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}
	key := shardBlobKey(cfg.Job, 1, 0)
	data, _, err := store.Get(key)
	if err != nil {
		t.Fatalf("root blob missing: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if _, err := store.Put(key, data); err != nil {
		t.Fatal(err)
	}
	rep, err := RunCluster(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatalf("restart after root corruption: %v", err)
	}
	if rep.Resumed {
		t.Fatalf("resumed at superstep %d over a corrupt full root", rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "fresh restart after root loss")
}

// TestDistDeltaSparseSavings runs a converging program (WCC: label
// propagation settles after the first couple of supersteps) at every-1
// cadence and demands that the average delta checkpoint is materially
// smaller than the average full one — the whole point of encoding
// deltas.
func TestDistDeltaSparseSavings(t *testing.T) {
	pspec := ProgramSpec{Name: "wcc"}
	ref := refRun(t, pspec, false)
	store := cloud.NewDatastore()
	sink := &captureSink{}
	cfg := Config{
		Job:             "wcc-sparse",
		Program:         pspec,
		Graph:           testGraph,
		CheckpointEvery: 1,
		DeltaChain:      8,
		Store:           store,
		Sink:            sink,
	}
	rep, err := RunCluster(context.Background(), cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "sparse delta run")

	var fullBytes, deltaBytes, fulls, deltas, minDelta int64
	for _, e := range sink.byType(obs.EvCheckpoint) {
		if e.Chain == 0 {
			fullBytes += e.WireBytes
			fulls++
		} else {
			deltaBytes += e.WireBytes
			deltas++
			if minDelta == 0 || e.WireBytes < minDelta {
				minDelta = e.WireBytes
			}
		}
	}
	if fulls == 0 || deltas == 0 {
		t.Fatalf("checkpoint mix fulls=%d deltas=%d, want both", fulls, deltas)
	}
	avgFull := fullBytes / fulls
	avgDelta := deltaBytes / deltas
	if avgDelta*2 >= avgFull {
		t.Fatalf("avg delta %dB not materially below avg full %dB", avgDelta, avgFull)
	}
	// Once labels settle, a delta is near-empty: the convergence tail is
	// where chained checkpoints pay off hardest.
	if minDelta*10 >= avgFull {
		t.Errorf("smallest delta %dB, want under a tenth of a full %dB", minDelta, avgFull)
	}
	t.Logf("wcc deltas: avg %dB over %d deltas vs avg %dB over %d fulls", avgDelta, deltas, avgFull, fulls)
	// The summary fold sees the same split.
	sum := obs.Summarize(sink.snapshot())
	if sum.FullBytes != fullBytes || sum.DeltaBytes != deltaBytes {
		t.Errorf("fold full/delta bytes %d/%d, want %d/%d", sum.FullBytes, sum.DeltaBytes, fullBytes, deltaBytes)
	}
}
