package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hourglass/internal/cloud"
)

// peerFlushThreshold is the staged-entry count at which a shard ships
// a partial batch to its peer mid-compute. Small enough that sends
// overlap vertex compute (the double-buffered staging: the encoded
// frame travels on the writer goroutine while the combining slots
// accept the next entries), large enough that frame overhead stays
// negligible (~96 KB of payload per frame).
const peerFlushThreshold = 8192

// peerHelloTimeout bounds how long an accepted peer connection may
// take to identify itself before the acceptor drops it.
const peerHelloTimeout = 10 * time.Second

// peerDialPolicy bounds the connect-time dial retries: a peer that is
// still binding its listener (slow process boot, standby prefetch in
// flight) gets a few jittered chances before the session gives up.
// Total worst-case backoff stays under ~4 s wall time so a genuinely
// absent peer still fails well inside the barrier watchdog.
var peerDialPolicy = cloud.RetryPolicy{Attempts: 6, Base: 0.1, Factor: 2, Jitter: 0.5}

// peerMesh is one shard's view of the shard-to-shard data plane: a
// listener accepting one inbound link per peer (batches in), one
// dialed outbound link per peer (batches out, drained by a dedicated
// writer goroutine so compute never blocks on the wire), and the
// arrival channel the session's superstep drain consumes.
//
// Incoming batches are decoded on the per-link reader goroutines and
// handed to the single consumer through in; the fold into the
// parity-indexed inbox stays on the session goroutine, so ingestion
// needs no locks while read+decode still overlap compute.
type peerMesh struct {
	self int
	ln   net.Listener
	out  []*peerLink // by shard id, nil for self

	in   chan batchMsg
	errc chan error
	quit chan struct{}
	wg   sync.WaitGroup

	// conns guards the accepted inbound connections for teardown and
	// the dropConns chaos hook.
	mu       sync.Mutex
	inbound  []net.Conn
	dropped  bool
	closed   bool
	frames   atomic.Int64 // peer-plane frames written + read
	bytes    atomic.Int64 // peer-plane bytes written + read
	reported struct{ frames, bytes int64 }
}

// peerLink is one outbound connection: frames pushed to q are written
// and flushed in bursts by a goroutine owned by the mesh.
type peerLink struct {
	conn net.Conn
	q    *frameQueue
}

// newPeerMesh opens the peer listener. It is called before the hello
// so the announced address is already accepting when any peer learns
// it from the welcome.
func newPeerMesh(listenAddr string) (*peerMesh, error) {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: peer listener on %s: %w", listenAddr, err)
	}
	return &peerMesh{
		ln:   ln,
		in:   make(chan batchMsg, 256),
		errc: make(chan error, 1),
		quit: make(chan struct{}),
	}, nil
}

// addr is the dialable address peers are told about.
func (m *peerMesh) addr() string { return m.ln.Addr().String() }

// connect wires the mesh after the welcome named every peer: the
// accept loop starts taking inbound links, and one outbound link is
// dialed to each peer. Dial order is by ascending shard id; because
// inbound and outbound links are separate connections, no shard ever
// waits on a peer's dial to finish its own. Each dial is retried under
// peerDialPolicy — jittered exponential backoff, seeded per shard so
// concurrent dialers decorrelate — because peers boot independently
// and a slow one must not kill the whole session. Cancelling ctx
// interrupts any in-flight dial or backoff sleep (a peer that never
// comes up cannot wedge the session past its teardown).
func (m *peerMesh) connect(ctx context.Context, self int, peers []string) error {
	m.self = self
	m.out = make([]*peerLink, len(peers))
	m.wg.Add(1)
	go m.accept()
	var d net.Dialer
	policy := peerDialPolicy
	policy.Seed = int64(self + 1)
	retrier := cloud.NewRetrier(policy)
	for j, addr := range peers {
		if j == self {
			continue
		}
		var conn net.Conn
		_, err := retrier.DoCtx(ctx, func() error {
			var derr error
			conn, derr = d.DialContext(ctx, "tcp", addr)
			return derr
		})
		if err != nil {
			return fmt.Errorf("dist: shard %d dialing peer %d at %s: %w", self, j, addr, err)
		}
		if _, err := writeFrame(conn, fPeerHello, peerHelloMsg{Version: wireVersion, From: uint32(self)}.encode()); err != nil {
			conn.Close()
			return fmt.Errorf("dist: shard %d peer hello to %d: %w", self, j, err)
		}
		link := &peerLink{conn: conn, q: newFrameQueue()}
		m.out[j] = link
		m.wg.Add(1)
		go m.writer(link)
	}
	return nil
}

// accept takes inbound peer links until the listener closes. Each link
// must open with a peer hello; a reader goroutine then pumps its
// batches into the arrival channel.
func (m *peerMesh) accept() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed: teardown
		}
		if err := conn.SetReadDeadline(time.Now().Add(peerHelloTimeout)); err != nil {
			conn.Close()
			m.fail(fmt.Errorf("dist: shard %d arming peer hello deadline: %w", m.self, err))
			continue
		}
		typ, payload, _, err := readFrame(conn)
		if err != nil || typ != fPeerHello {
			conn.Close()
			m.fail(fmt.Errorf("dist: shard %d inbound peer link without hello (type %d, err %v)", m.self, typ, err))
			continue
		}
		h, err := decodePeerHello(payload)
		if err != nil || h.Version != wireVersion {
			conn.Close()
			m.fail(fmt.Errorf("dist: shard %d inbound peer hello version %d: %v", m.self, h.Version, err))
			continue
		}
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			conn.Close()
			m.fail(fmt.Errorf("dist: shard %d clearing peer hello deadline: %w", m.self, err))
			continue
		}
		m.mu.Lock()
		if m.closed || m.dropped {
			m.mu.Unlock()
			conn.Close()
			continue
		}
		m.inbound = append(m.inbound, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go m.reader(conn, int(h.From))
	}
}

// reader pumps one inbound link: frames are decoded here (overlapping
// the session's compute) and folded later by the single consumer.
func (m *peerMesh) reader(conn net.Conn, from int) {
	defer m.wg.Done()
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		typ, payload, size, err := readFrame(br)
		if err != nil {
			m.fail(fmt.Errorf("dist: shard %d peer link from %d: %w", m.self, from, err))
			return
		}
		m.frames.Add(1)
		m.bytes.Add(int64(size))
		if typ != fBatch {
			m.fail(fmt.Errorf("dist: shard %d: frame type %d on peer link from %d", m.self, typ, from))
			return
		}
		b, err := decodeBatch(payload)
		if err != nil {
			m.fail(err)
			return
		}
		if int(b.From) != from {
			m.fail(fmt.Errorf("dist: batch claims sender %d on peer link from %d", b.From, from))
			return
		}
		select {
		case m.in <- b:
		case <-m.quit:
			return
		}
	}
}

// writer drains one outbound link's queue, writing bursts and flushing
// once per burst — the far side of the double buffer: while a frame
// burst is on the wire here, the session goroutine stages the next one.
func (m *peerMesh) writer(link *peerLink) {
	defer m.wg.Done()
	bw := bufio.NewWriterSize(link.conn, 1<<16)
	for {
		frames, ok := link.q.popAll()
		if !ok {
			return
		}
		for _, f := range frames {
			if _, err := bw.Write(f); err != nil {
				m.fail(fmt.Errorf("dist: shard %d peer write: %w", m.self, err))
				return
			}
			m.frames.Add(1)
			m.bytes.Add(int64(len(f)))
		}
		if err := bw.Flush(); err != nil {
			m.fail(fmt.Errorf("dist: shard %d peer flush: %w", m.self, err))
			return
		}
	}
}

// send queues one batch frame for the link to shard j.
func (m *peerMesh) send(j int, payload []byte) {
	m.out[j].q.push(fBatch, payload)
}

// fail records the first asynchronous mesh error; errors after close()
// are dropped so a clean session end does not masquerade as a loss.
// Errors after dropConns are NOT dropped — the chaos hook exists to
// make the dead data plane surface.
func (m *peerMesh) fail(err error) {
	m.mu.Lock()
	suppress := m.closed
	m.mu.Unlock()
	if suppress {
		return
	}
	select {
	case m.errc <- err:
	default:
	}
}

// counters returns the peer-plane wire totals accumulated since the
// previous call — the delta the next inboxed vote reports. Only the
// session goroutine calls it.
func (m *peerMesh) counters() (frames, bytes uint64) {
	f, b := m.frames.Load(), m.bytes.Load()
	frames = uint64(f - m.reported.frames)
	bytes = uint64(b - m.reported.bytes)
	m.reported.frames, m.reported.bytes = f, b
	return frames, bytes
}

// dropConns abruptly severs every peer connection and the listener
// while leaving the mesh bookkeeping (and the coordinator connection)
// intact — the chaos hook standing in for a network partition or a
// peer process dying mid-flush. Subsequent reads and writes fail and
// surface on errc.
func (m *peerMesh) dropConns() {
	m.mu.Lock()
	m.dropped = true
	inbound := m.inbound
	m.inbound = nil
	m.mu.Unlock()
	m.ln.Close()
	for _, c := range inbound {
		c.Close()
	}
	for _, l := range m.out {
		if l != nil {
			l.conn.Close()
		}
	}
}

// close tears the mesh down: listener, links, queues, goroutines.
func (m *peerMesh) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	inbound := m.inbound
	m.inbound = nil
	m.mu.Unlock()
	close(m.quit)
	m.ln.Close()
	for _, c := range inbound {
		c.Close()
	}
	for _, l := range m.out {
		if l != nil {
			l.q.close()
			l.conn.Close()
		}
	}
	m.wg.Wait()
}
