package dist

import (
	"context"
	"errors"
	"net"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/obs"
)

// buildShardBinary compiles cmd/hourglass-shard once per test binary.
func buildShardBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hourglass-shard")
	cmd := exec.Command("go", "build", "-o", bin, "hourglass/cmd/hourglass-shard")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hourglass-shard: %v\n%s", err, out)
	}
	return bin
}

// spawnShard launches one worker process against the coordinator.
func spawnShard(t *testing.T, bin, addr, storeDir string, dieAt int) *exec.Cmd {
	t.Helper()
	args := []string{"-coordinator", addr, "-store", storeDir, "-once"}
	if dieAt > 0 {
		args = append(args, "-die-at", strconv.Itoa(dieAt))
	}
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard process: %v", err)
	}
	return cmd
}

// TestDistProcess runs the coordinator against eight real OS shard
// processes over loopback, for PageRank and SSSP, and demands
// bit-identical values versus the single-process engine. Eight
// processes means a 56-link peer mesh — the widest fan-out the CI
// integration step exercises (under -race on the coordinator side).
func TestDistProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and compiles a binary")
	}
	bin := buildShardBinary(t)
	storeDir := t.TempDir()
	store, err := cloud.NewFSStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pspec     ProgramSpec
		canonical bool
	}{
		{ProgramSpec{Name: "pagerank", Iterations: 10}, true},
		{ProgramSpec{Name: "sssp", Source: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.pspec.Name, func(t *testing.T) {
			ref := refRun(t, tc.pspec, tc.canonical)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			const shards = 8
			procs := make([]*exec.Cmd, shards)
			for i := range procs {
				procs[i] = spawnShard(t, bin, ln.Addr().String(), storeDir, 0)
			}
			rep, err := AcceptAndRun(context.Background(), ln, shards, Config{
				Job:            "proc-" + tc.pspec.Name,
				Program:        tc.pspec,
				Graph:          testGraph,
				Canonical:      tc.canonical,
				BarrierTimeout: 30 * time.Second,
				Store:          store,
			})
			for _, p := range procs {
				if werr := p.Wait(); werr != nil {
					t.Errorf("shard process: %v", werr)
				}
			}
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			assertBitIdentical(t, rep.Values, ref.Values, "8 shard processes")
			if rep.CoordBatchFrames != 0 {
				t.Errorf("%d batch frames routed through the coordinator, want 0", rep.CoordBatchFrames)
			}
		})
	}
}

// TestDistProcessKillRecovery kills a real shard process mid-superstep
// (the worker exits with the injected-death code), then resumes with a
// replacement process: the recovered run must reload the per-shard
// checkpoint blobs from the shared directory and finish bit-identical
// to an uninterrupted single-process run.
func TestDistProcessKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and compiles a binary")
	}
	bin := buildShardBinary(t)
	storeDir := t.TempDir()
	store, err := cloud.NewFSStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	sink := &captureSink{}
	cfg := Config{
		Job:             "proc-kill",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		BarrierTimeout:  30 * time.Second,
		Store:           store,
		Sink:            sink,
	}
	const shards = 2

	// Session 1: one worker is rigged to die mid-superstep 5.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	healthy := spawnShard(t, bin, ln.Addr().String(), storeDir, 0)
	doomed := spawnShard(t, bin, ln.Addr().String(), storeDir, 5)
	_, err = AcceptAndRun(context.Background(), ln, shards, cfg)
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("session 1: %v, want ShardLostError", err)
	}
	var exit *exec.ExitError
	if werr := doomed.Wait(); !errors.As(werr, &exit) || exit.ExitCode() != 3 {
		t.Fatalf("doomed process exit: %v, want code 3", werr)
	}
	if werr := healthy.Wait(); werr == nil {
		t.Log("healthy worker exited cleanly after teardown")
	}
	if got := len(sink.byType(obs.EvShardEvict)); got != 1 {
		t.Fatalf("%d shard-evict events, want 1", got)
	}

	// Session 2: two fresh processes resume from the shared directory.
	for i := 0; i < shards; i++ {
		spawned := spawnShard(t, bin, ln.Addr().String(), storeDir, 0)
		defer spawned.Wait()
	}
	rep, err := AcceptAndRun(context.Background(), ln, shards, cfg)
	if err != nil {
		t.Fatalf("session 2: %v", err)
	}
	if !rep.Resumed || rep.StartSuperstep != 4 {
		t.Fatalf("resumed=%v start=%d, want resume at superstep 4", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "process kill recovery")

	// The checkpoint blobs really are files on disk.
	if keys := store.Keys(); len(keys) == 0 {
		t.Error("no checkpoint files under the shared directory")
	}
}
