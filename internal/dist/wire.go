// Package dist shards the BSP engine across OS processes: a
// coordinator owns superstep barriers, canonical aggregator reduction
// and checkpoint manifests, while N shard workers each own a
// micro-partition of the vertex space and exchange superstep-tagged
// message batches directly over a shard-to-shard peer mesh, with the
// same length-prefixed binary frame protocol on every TCP link.
//
// The data plane never touches the coordinator: every shard opens a
// peer listener before its hello (the hello announces the address,
// the welcome distributes the full list), dials each peer once at
// cluster start, and streams batches straight to the owning shard.
// Batches overlap with compute — the sender-side combining slots
// (PR 2) flush to their peer as they fill during vertex compute, on a
// per-peer writer goroutine, instead of serialising compute → flush →
// barrier. Because no central router orders the frames, each barrier
// vote carries per-peer sent-batch counts; the coordinator folds them
// and tells every receiver in EndBatches exactly how many batches its
// superstep must deliver before it may report its frontier.
//
// Under canonical mode individual message terms are shipped instead
// of folded slots and sorted at the destination, making distributed
// results bit-identical to the in-process engine's canonical runs
// regardless of shard count, flush timing or peer arrival order.
//
// Eviction = killing a shard process. The coordinator declares the
// shard dead (connection loss or barrier-vote timeout), emits an
// obs.EvShardEvict event and tears the session down; a fresh session
// resumes from the newest valid per-shard checkpoint set, with every
// shard reloading the micro-partition blobs in parallel from the
// shared blob store — the paper's §6 parallel reload, over real files
// when the store is a cloud.FSStore.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// wireVersion gates the handshake: a coordinator and shard disagree
// loudly at Hello/Welcome time instead of corrupting a run later.
// Version 2 is the peer-mesh plane: hello/welcome carry peer
// addresses, barriers carry per-peer batch counts, EndBatches carries
// the expected arrival count, and batches flow shard-to-shard.
// Version 3 adds the worker's self-declared process identity to the
// hello, so shard-loss events name the actual process that died.
// Version 4 adds delta checkpoints: checkpoint requests carry the
// delta flag and parent superstep, acks report whether the shard
// wrote a full blob instead.
const wireVersion = 4

// MaxFrameBytes bounds a single frame's payload. Batches are chunked
// well below this (batchChunk); the bound exists so a corrupt length
// prefix cannot make a reader allocate gigabytes.
const MaxFrameBytes = 64 << 20

// Frame types. A frame is
//
//	u32 payloadLen | u8 type | payload | u32 crc32(type ∥ payload)
//
// with all integers little-endian and the CRC using the IEEE
// polynomial (matching the engine's checkpoint trailers).
const (
	fHello         = 1  // shard → coordinator: version + peer listener address
	fWelcome       = 2  // coordinator → shard: identity, job spec, peer list, resume state
	fProceed       = 3  // coordinator → shard: run superstep S (or halt)
	fBatch         = 4  // shard → shard (peer mesh): messages sent during S
	fBarrier       = 5  // shard → coordinator: compute-done vote + stats + per-peer batch counts
	fEndBatches    = 6  // coordinator → shard: all voted; expect this many batches for S
	fInboxed       = 7  // shard → coordinator: delivery done, next frontier + peer wire counters
	fCheckpoint    = 8  // coordinator → shard: write your checkpoint blob
	fCheckpointAck = 9  // shard → coordinator: blob written (or error)
	fValues        = 10 // shard → coordinator: final owned vertex values
	fPeerHello     = 11 // shard → shard: opens a peer connection (version + dialer id)
)

// frameHeaderLen is the fixed per-frame overhead: u32 length, u8 type
// up front and the u32 CRC trailer.
const frameHeaderLen = 4 + 1 + 4

var (
	// ErrFrameTooLarge reports a length prefix above MaxFrameBytes.
	ErrFrameTooLarge = errors.New("dist: frame exceeds size limit")
	// ErrCorruptFrame reports a truncated payload, a CRC mismatch, or a
	// payload that does not decode as its frame type.
	ErrCorruptFrame = errors.New("dist: corrupt frame")
)

// appendFrame encodes one frame onto dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(hdr[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	return append(dst, trailer[:]...)
}

// writeFrame writes one frame, returning the bytes put on the wire.
func writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	buf := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), typ, payload)
	n, err := w.Write(buf)
	return n, err
}

// readFrame reads one frame from a stream. The returned payload is
// freshly allocated. Size is the total wire bytes consumed.
func readFrame(r io.Reader) (typ byte, payload []byte, size int, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameBytes {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	typ = hdr[4]
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: truncated payload: %v", ErrCorruptFrame, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: truncated trailer: %v", ErrCorruptFrame, err)
	}
	crc := crc32.ChecksumIEEE(hdr[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(trailer[:]) != crc {
		return 0, nil, 0, fmt.Errorf("%w: CRC32 mismatch on type %d", ErrCorruptFrame, typ)
	}
	return typ, payload, frameHeaderLen + int(n), nil
}

// DecodeFrame decodes one frame from the head of b, returning the
// remainder. It is the pure-slice twin of readFrame and the fuzz
// target: it must never panic, whatever bytes it is fed.
func DecodeFrame(b []byte) (typ byte, payload []byte, rest []byte, err error) {
	if len(b) < 5 {
		return 0, nil, b, fmt.Errorf("%w: short header (%d bytes)", ErrCorruptFrame, len(b))
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > MaxFrameBytes {
		return 0, nil, b, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	typ = b[4]
	total := frameHeaderLen + int(n)
	if len(b) < total {
		return 0, nil, b, fmt.Errorf("%w: %d of %d bytes", ErrCorruptFrame, len(b), total)
	}
	payload = b[5 : 5+n]
	crc := crc32.ChecksumIEEE(b[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(b[5+n:total]) != crc {
		return 0, nil, b, fmt.Errorf("%w: CRC32 mismatch on type %d", ErrCorruptFrame, typ)
	}
	return typ, payload, b[total:], nil
}

// wbuf appends primitive values in the wire's little-endian layout.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8) { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}
func (w *wbuf) u64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u32(uint32(x))
	}
}
func (w *wbuf) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *wbuf) u64s(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}
func (w *wbuf) strs(v []string) {
	w.u32(uint32(len(v)))
	for _, s := range v {
		w.str(s)
	}
}

// rbuf consumes primitive values with bounds checks everywhere: a
// truncated or hostile payload latches err and yields zero values, it
// never panics and never allocates more than the remaining input could
// justify.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorruptFrame, what, r.off)
	}
}

func (r *rbuf) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *rbuf) bool() bool     { return r.u8() != 0 }
func (r *rbuf) remaining() int { return len(r.b) - r.off }

func (r *rbuf) str() string {
	n := r.u32()
	if r.err != nil || int(n) > r.remaining() {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *rbuf) i32s() []int32 {
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/4 {
		r.fail("[]int32")
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out
}

func (r *rbuf) f64s() []float64 {
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/8 {
		r.fail("[]float64")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

func (r *rbuf) u64s() []uint64 {
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/8 {
		r.fail("[]uint64")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

func (r *rbuf) strs() []string {
	n := r.u32()
	// Each entry costs at least the 4-byte length prefix.
	if r.err != nil || int(n) > r.remaining()/4+1 {
		r.fail("[]string")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

// finish rejects payloads with trailing garbage, so a frame either
// decodes exactly or not at all.
func (r *rbuf) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(r.b)-r.off)
	}
	return nil
}

// helloMsg opens a shard's coordinator connection. PeerAddr is the
// shard's peer-mesh listener: the coordinator collects every hello's
// address and redistributes the full list in the welcomes, which is
// how shards learn where to dial each other. Proc is the worker's
// self-declared process identity ("pid:1234", "goroutine:0.2"): shard
// ids follow accept order, so only the worker itself can tell the
// coordinator which process ended up behind which id.
type helloMsg struct {
	Version  uint32
	PeerAddr string
	Proc     string
}

func (m helloMsg) encode() []byte {
	var w wbuf
	w.u32(m.Version)
	w.str(m.PeerAddr)
	w.str(m.Proc)
	return w.b
}

func decodeHello(p []byte) (helloMsg, error) {
	r := rbuf{b: p}
	m := helloMsg{Version: r.u32(), PeerAddr: r.str(), Proc: r.str()}
	return m, r.finish()
}

// peerHelloMsg opens a shard-to-shard connection: the dialer
// identifies itself so the acceptor can attribute every batch on the
// link. Version is checked like the coordinator handshake — a mesh
// must not silently mix wire dialects.
type peerHelloMsg struct {
	Version uint32
	From    uint32
}

func (m peerHelloMsg) encode() []byte {
	var w wbuf
	w.u32(m.Version)
	w.u32(m.From)
	return w.b
}

func decodePeerHello(p []byte) (peerHelloMsg, error) {
	r := rbuf{b: p}
	m := peerHelloMsg{Version: r.u32(), From: r.u32()}
	return m, r.finish()
}

// aggPairs is a name-parallel value list. Names are sorted by the
// sender so identical state always serialises to identical bytes.
type aggPairs struct {
	Names []string
	Vals  []float64
}

func (w *wbuf) aggs(a aggPairs) {
	w.u32(uint32(len(a.Names)))
	for i, name := range a.Names {
		w.str(name)
		w.f64(a.Vals[i])
	}
}

func (r *rbuf) aggs() aggPairs {
	n := r.u32()
	// Each entry costs at least 12 bytes (empty name + f64).
	if r.err != nil || int(n) > r.remaining()/12+1 {
		r.fail("aggregator pairs")
		return aggPairs{}
	}
	a := aggPairs{Names: make([]string, 0, n), Vals: make([]float64, 0, n)}
	for i := uint32(0); i < n && r.err == nil; i++ {
		a.Names = append(a.Names, r.str())
		a.Vals = append(a.Vals, r.f64())
	}
	return a
}

// welcomeMsg hands a shard everything it needs to (re)build its state:
// identity, the program and graph specs, the vertex→shard assignment,
// the peer-mesh address of every shard (index = shard id), and — when
// resuming — the checkpoint blobs to reload plus the aggregator
// values visible at the resume superstep.
type welcomeMsg struct {
	Version   uint32
	Shard     uint32
	Shards    uint32
	Canonical bool
	Start     uint32 // first superstep of this session
	Program   string // ProgramSpec JSON
	Graph     string // GraphSpec JSON
	Assign    []int32
	Aggs      aggPairs
	BlobKeys  []string // resume blobs (empty = fresh start)
	Peers     []string // peer listener address per shard id
}

func (m welcomeMsg) encode() []byte {
	var w wbuf
	w.u32(m.Version)
	w.u32(m.Shard)
	w.u32(m.Shards)
	w.bool(m.Canonical)
	w.u32(m.Start)
	w.str(m.Program)
	w.str(m.Graph)
	w.i32s(m.Assign)
	w.aggs(m.Aggs)
	w.strs(m.BlobKeys)
	w.strs(m.Peers)
	return w.b
}

func decodeWelcome(p []byte) (welcomeMsg, error) {
	r := rbuf{b: p}
	m := welcomeMsg{
		Version:   r.u32(),
		Shard:     r.u32(),
		Shards:    r.u32(),
		Canonical: r.bool(),
		Start:     r.u32(),
		Program:   r.str(),
		Graph:     r.str(),
		Assign:    r.i32s(),
		Aggs:      r.aggs(),
		BlobKeys:  r.strs(),
		Peers:     r.strs(),
	}
	return m, r.finish()
}

// proceedMsg starts superstep S on every shard (or, with Halt set,
// ends the session). Aggs carries the reduced aggregator values
// visible during S.
type proceedMsg struct {
	Superstep uint32
	Halt      bool
	Aggs      aggPairs
}

func (m proceedMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.bool(m.Halt)
	w.aggs(m.Aggs)
	return w.b
}

func decodeProceed(p []byte) (proceedMsg, error) {
	r := rbuf{b: p}
	m := proceedMsg{Superstep: r.u32(), Halt: r.bool(), Aggs: r.aggs()}
	return m, r.finish()
}

// batchMsg carries messages sent during superstep S from one shard to
// another over their direct peer link — the serialised form of the
// sender's per-destination combining slots (or raw message terms under
// canonical mode). With the mesh, From/To are redundancy the receiver
// validates against the link's peer hello and its own id.
type batchMsg struct {
	Superstep uint32
	From      uint32
	To        uint32
	Dst       []int32
	Val       []float64
}

func (m batchMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.u32(m.From)
	w.u32(m.To)
	w.i32s(m.Dst)
	w.f64s(m.Val)
	return w.b
}

func decodeBatch(p []byte) (batchMsg, error) {
	r := rbuf{b: p}
	m := batchMsg{
		Superstep: r.u32(),
		From:      r.u32(),
		To:        r.u32(),
		Dst:       r.i32s(),
		Val:       r.f64s(),
	}
	if err := r.finish(); err != nil {
		return m, err
	}
	if len(m.Dst) != len(m.Val) {
		return m, fmt.Errorf("%w: batch with %d destinations, %d values", ErrCorruptFrame, len(m.Dst), len(m.Val))
	}
	return m, nil
}

// barrierMsg is a shard's compute-done vote for superstep S: all its
// batches are on the peer mesh, here are its counters, per-peer
// sent-batch counts and aggregator contributions. SentTo[j] is the
// number of batch frames this shard put on its link to shard j during
// S — the coordinator folds the column sums and tells each receiver
// how many arrivals complete its superstep, replacing the ordering
// guarantee the relay used to provide. Under canonical mode Contribs
// carries every raw term (the coordinator folds them value-sorted);
// otherwise at most one locally folded partial per name.
type barrierMsg struct {
	Superstep uint32
	Sent      uint64
	Calls     uint64
	Combined  uint64
	Remote    uint64
	SentTo    []uint64
	AggNames  []string
	Contribs  [][]float64
}

func (m barrierMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.u64(m.Sent)
	w.u64(m.Calls)
	w.u64(m.Combined)
	w.u64(m.Remote)
	w.u64s(m.SentTo)
	w.u32(uint32(len(m.AggNames)))
	for i, name := range m.AggNames {
		w.str(name)
		w.f64s(m.Contribs[i])
	}
	return w.b
}

func decodeBarrier(p []byte) (barrierMsg, error) {
	r := rbuf{b: p}
	m := barrierMsg{
		Superstep: r.u32(),
		Sent:      r.u64(),
		Calls:     r.u64(),
		Combined:  r.u64(),
		Remote:    r.u64(),
		SentTo:    r.u64s(),
	}
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/8+1 {
		r.fail("aggregator contributions")
		return m, r.finish()
	}
	m.AggNames = make([]string, 0, n)
	m.Contribs = make([][]float64, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		m.AggNames = append(m.AggNames, r.str())
		m.Contribs = append(m.Contribs, r.f64s())
	}
	return m, r.finish()
}

// endBatchesMsg tells a shard every peer has voted for superstep S and
// Expect batch frames are addressed to it: the shard keeps draining
// its peer links until that many S-tagged batches have arrived. The
// payload is per-shard (the column sum of the barrier SentTo matrix),
// no longer a broadcast.
type endBatchesMsg struct {
	Superstep uint32
	Expect    uint64
}

func (m endBatchesMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.u64(m.Expect)
	return w.b
}

func decodeEndBatches(p []byte) (endBatchesMsg, error) {
	r := rbuf{b: p}
	m := endBatchesMsg{Superstep: r.u32(), Expect: r.u64()}
	return m, r.finish()
}

// inboxedMsg reports a shard's frontier for the *upcoming* superstep
// (Superstep = the step the frontier feeds). The sum across shards
// drives the global halt decision, exactly like the engine's anyWork.
// PeerFrames/PeerBytes carry the shard's peer-plane wire counters
// (frames written + read since the last report), so the coordinator's
// session totals and EvSuperstep deltas still see the data plane it
// no longer relays.
type inboxedMsg struct {
	Superstep  uint32
	Frontier   uint64
	PeerFrames uint64
	PeerBytes  uint64
}

func (m inboxedMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.u64(m.Frontier)
	w.u64(m.PeerFrames)
	w.u64(m.PeerBytes)
	return w.b
}

func decodeInboxed(p []byte) (inboxedMsg, error) {
	r := rbuf{b: p}
	m := inboxedMsg{Superstep: r.u32(), Frontier: r.u64(), PeerFrames: r.u64(), PeerBytes: r.u64()}
	return m, r.finish()
}

// checkpointMsg asks a shard to persist its partition state for a
// resume into superstep Superstep, under the given blob key. With
// Delta set the shard should encode only state changed since the
// parent manifest at superstep Parent — falling back to a full blob
// (flagged in the ack) if its in-memory base doesn't match.
type checkpointMsg struct {
	Superstep uint32
	Key       string
	Delta     bool
	Parent    uint32 // parent manifest superstep, meaningful when Delta
}

func (m checkpointMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.str(m.Key)
	w.bool(m.Delta)
	w.u32(m.Parent)
	return w.b
}

func decodeCheckpoint(p []byte) (checkpointMsg, error) {
	r := rbuf{b: p}
	m := checkpointMsg{Superstep: r.u32(), Key: r.str()}
	m.Delta = r.bool()
	m.Parent = r.u32()
	return m, r.finish()
}

// checkpointAckMsg confirms (or fails) a shard's blob write. Full
// reports that the shard wrote a full blob even though a delta was
// requested (its diff base didn't match the requested parent).
type checkpointAckMsg struct {
	Superstep uint32
	Bytes     uint64
	Err       string // "" = success
	Full      bool
}

func (m checkpointAckMsg) encode() []byte {
	var w wbuf
	w.u32(m.Superstep)
	w.u64(m.Bytes)
	w.str(m.Err)
	w.bool(m.Full)
	return w.b
}

func decodeCheckpointAck(p []byte) (checkpointAckMsg, error) {
	r := rbuf{b: p}
	m := checkpointAckMsg{Superstep: r.u32(), Bytes: r.u64(), Err: r.str()}
	m.Full = r.bool()
	return m, r.finish()
}

// valuesMsg returns a shard's owned final vertex values after halt.
type valuesMsg struct {
	Vertex []int32
	Val    []float64
}

func (m valuesMsg) encode() []byte {
	var w wbuf
	w.i32s(m.Vertex)
	w.f64s(m.Val)
	return w.b
}

func decodeValues(p []byte) (valuesMsg, error) {
	r := rbuf{b: p}
	m := valuesMsg{Vertex: r.i32s(), Val: r.f64s()}
	if err := r.finish(); err != nil {
		return m, err
	}
	if len(m.Vertex) != len(m.Val) {
		return m, fmt.Errorf("%w: values with %d vertices, %d values", ErrCorruptFrame, len(m.Vertex), len(m.Val))
	}
	return m, nil
}
