package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/obs"
)

// captureSink records events for assertions.
type captureSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *captureSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *captureSink) byType(typ string) []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.Event
	for _, e := range s.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// testGraph is the shared input: small enough for -race, irregular
// enough that every shard count splits it differently.
var testGraph = GraphSpec{Scale: 8, Seed: 7, Undirected: true, Weighted: true}

// refRun executes the single-process engine reference.
func refRun(t *testing.T, pspec ProgramSpec, canonical bool) engine.Result {
	t.Helper()
	g, err := testGraph.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pspec.New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(g, prog, engine.Config{Workers: 4, Canonical: canonical})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d = %v, want %v (not bit-identical)", label, v, got[v], want[v])
		}
	}
}

// TestDistBitIdentity runs each supported program over 1, 2 and 4
// shard processes' worth of workers (in-process, loopback TCP) and
// demands bit-identical values and matching counters versus the
// single-process engine: canonical mode for the order-sensitive
// PageRank sums, plain combiner mode for the min-folding programs.
func TestDistBitIdentity(t *testing.T) {
	cases := []struct {
		pspec     ProgramSpec
		canonical bool
	}{
		{ProgramSpec{Name: "pagerank", Iterations: 10}, true},
		{ProgramSpec{Name: "sssp", Source: 0}, false},
		{ProgramSpec{Name: "wcc"}, false},
		{ProgramSpec{Name: "bfs", Source: 3}, false},
		// GraphColoring exercises the engine.VertexAux path: per-vertex
		// aux state initialised from the topology on every shard and its
		// message folds order-invariant by construction.
		{ProgramSpec{Name: "graphcoloring"}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.pspec.Name, func(t *testing.T) {
			t.Parallel()
			ref := refRun(t, tc.pspec, tc.canonical)
			for _, shards := range []int{1, 2, 4} {
				sink := &captureSink{}
				cfg := Config{
					Job:       fmt.Sprintf("%s-%d", tc.pspec.Name, shards),
					Program:   tc.pspec,
					Graph:     testGraph,
					Canonical: tc.canonical,
					Store:     cloud.NewDatastore(),
					Sink:      sink,
				}
				rep, err := RunCluster(context.Background(), cfg, shards, nil)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				assertBitIdentical(t, rep.Values, ref.Values, fmt.Sprintf("%d shards", shards))
				if rep.Stats.Supersteps != ref.Stats.Supersteps {
					t.Errorf("%d shards: %d supersteps, engine %d", shards, rep.Stats.Supersteps, ref.Stats.Supersteps)
				}
				if rep.Stats.ComputeCalls != ref.Stats.ComputeCalls {
					t.Errorf("%d shards: %d compute calls, engine %d", shards, rep.Stats.ComputeCalls, ref.Stats.ComputeCalls)
				}
				if rep.Stats.MessagesSent != ref.Stats.MessagesSent {
					t.Errorf("%d shards: %d messages, engine %d", shards, rep.Stats.MessagesSent, ref.Stats.MessagesSent)
				}
				if shards == 1 && rep.Stats.RemoteMessages != 0 {
					t.Errorf("1 shard: %d remote messages, want 0", rep.Stats.RemoteMessages)
				}
				// The wire counters must see every frame of a real session:
				// at minimum the per-shard handshake and per-step control.
				steps := sink.byType(obs.EvSuperstep)
				if len(steps) != ref.Stats.Supersteps {
					t.Errorf("%d shards: %d superstep events, want %d", shards, len(steps), ref.Stats.Supersteps)
				}
				for _, e := range steps {
					if e.WireFrames <= 0 || e.WireBytes <= 0 {
						t.Errorf("%d shards: superstep %d event missing wire counters: %+v", shards, e.Superstep, e)
					}
				}
				if rep.WireFrames <= 0 || rep.WireBytes <= 0 {
					t.Errorf("%d shards: empty wire totals %d/%d", shards, rep.WireFrames, rep.WireBytes)
				}
				// The data plane is the peer mesh: not a single batch
				// frame may ever reach the coordinator.
				if rep.CoordBatchFrames != 0 {
					t.Errorf("%d shards: %d batch frames routed through the coordinator, want 0", shards, rep.CoordBatchFrames)
				}
			}
		})
	}
}

// TestDistKillRecovery is the PR's acceptance test: PageRank sharded
// over 4 worker processes' protocol, one shard killed mid-superstep
// (abrupt connection drop with the worklist half-consumed), recovery
// through per-shard checkpoint blob reload, final values bit-identical
// to an uninterrupted single-process run.
func TestDistKillRecovery(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	if ref.Stats.Supersteps <= 6 {
		t.Fatalf("reference run too short (%d supersteps) for a kill at superstep 5", ref.Stats.Supersteps)
	}
	sink := &captureSink{}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-kill",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		Store:           store,
		Sink:            sink,
	}
	rep, restarts, err := ExecuteWithRecovery(context.Background(), cfg, FixedShards(4), 2, func(attempt, shard int) ShardOptions {
		opts := ShardOptions{Store: store}
		if attempt == 0 && shard == 2 {
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if restarts != 1 {
		t.Fatalf("%d restarts, want exactly 1", restarts)
	}
	if !rep.Resumed {
		t.Fatal("final session did not resume from a checkpoint")
	}
	if rep.StartSuperstep != 4 {
		t.Errorf("resumed at superstep %d, want 4 (kill at 5, checkpoint every 2)", rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "recovered run")

	evicts := sink.byType(obs.EvShardEvict)
	if len(evicts) != 1 {
		t.Fatalf("%d shard-evict events, want 1", len(evicts))
	}
	if evicts[0].Superstep != 5 {
		t.Errorf("evict at superstep %d, want 5", evicts[0].Superstep)
	}
	if evicts[0].Job != "pagerank" {
		t.Errorf("evict job %q, want pagerank", evicts[0].Job)
	}
	if rep.Checkpoints == 0 {
		t.Error("resumed session wrote no further checkpoints")
	}
	if rep.CoordBatchFrames != 0 {
		t.Errorf("%d batch frames routed through the coordinator, want 0", rep.CoordBatchFrames)
	}
}

// TestDistPeerKillRecovery covers the mesh's own failure mode: the
// peer-plane connections of one shard are severed halfway through a
// superstep's worklist — mid-flush, with partial batches already on
// the wire — while its coordinator connection stays up. The broken
// data plane must surface as a ShardLostError (not a hang), and the
// job must recover from the newest checkpoint bit-identically.
func TestDistPeerKillRecovery(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	if ref.Stats.Supersteps <= 6 {
		t.Fatalf("reference run too short (%d supersteps) for a peer kill at superstep 5", ref.Stats.Supersteps)
	}
	sink := &captureSink{}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-peerkill",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		BarrierTimeout:  2 * time.Second,
		Store:           store,
		Sink:            sink,
	}
	rep, restarts, err := ExecuteWithRecovery(context.Background(), cfg, FixedShards(4), 2, func(attempt, shard int) ShardOptions {
		opts := ShardOptions{Store: store}
		if attempt == 0 && shard == 1 {
			opts.DropPeersAtSuperstep = 5
		}
		return opts
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if restarts != 1 {
		t.Fatalf("%d restarts, want exactly 1", restarts)
	}
	if !rep.Resumed || rep.StartSuperstep != 4 {
		t.Fatalf("resumed=%v start=%d, want resume at superstep 4", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "post-peer-kill recovery")
	if len(sink.byType(obs.EvShardEvict)) == 0 {
		t.Error("no shard-evict event for the severed peer plane")
	}
	if rep.CoordBatchFrames != 0 {
		t.Errorf("%d batch frames routed through the coordinator, want 0", rep.CoordBatchFrames)
	}
}

// TestDistGraphColoringAuxRecovery checkpoints and resumes a program
// whose per-vertex auxiliary state rides in the shard blobs
// (engine.VertexAux), resuming under a *different* shard count so the
// aux overlay is re-filtered by the new ownership.
func TestDistGraphColoringAuxRecovery(t *testing.T) {
	pspec := ProgramSpec{Name: "graphcoloring"}
	ref := refRun(t, pspec, false)
	if ref.Stats.Supersteps <= 3 {
		t.Fatalf("reference run too short (%d supersteps) for a kill at superstep 2", ref.Stats.Supersteps)
	}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "gc-reshard",
		Program:         pspec,
		Graph:           testGraph,
		CheckpointEvery: 1,
		Store:           store,
	}
	_, err := RunCluster(context.Background(), cfg, 4, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 2 {
			opts.DieAtSuperstep = 2
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}
	rep, err := RunCluster(context.Background(), cfg, 3, nil)
	if err != nil {
		t.Fatalf("resume with 3 shards: %v", err)
	}
	if !rep.Resumed {
		t.Fatal("session did not resume from a checkpoint")
	}
	assertBitIdentical(t, rep.Values, ref.Values, "graphcoloring resharded resume")
}

// TestDistResumeAcrossShardCounts kills a 4-shard session and resumes
// it with 3 shards: every shard reloads the full 4-blob set and keeps
// what the new assignment gives it, and the result stays bit-identical.
func TestDistResumeAcrossShardCounts(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-reshard",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		Store:           store,
	}
	_, err := RunCluster(context.Background(), cfg, 4, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 0 {
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}
	rep, err := RunCluster(context.Background(), cfg, 3, nil)
	if err != nil {
		t.Fatalf("resume with 3 shards: %v", err)
	}
	if !rep.Resumed || rep.StartSuperstep != 4 {
		t.Fatalf("resumed=%v start=%d, want resume at superstep 4", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "resharded resume")
}

// TestDistBarrierWatchdog covers the muted-shard failure mode: a shard
// that computes but stops voting must be declared dead within the
// watchdog window (not hang the job), and the job must then recover.
func TestDistBarrierWatchdog(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	sink := &captureSink{}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-mute",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		BarrierTimeout:  500 * time.Millisecond,
		Store:           store,
		Sink:            sink,
	}
	begin := time.Now()
	_, err := RunCluster(context.Background(), cfg, 3, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 1 {
			opts.MuteAtSuperstep = 3
		}
		return opts
	})
	elapsed := time.Since(begin)
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("muted session: %v, want ShardLostError", err)
	}
	if lost.Superstep != 3 {
		t.Errorf("shard declared dead at superstep %d, want 3", lost.Superstep)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to fire (window 500ms)", elapsed)
	}
	if len(sink.byType(obs.EvShardEvict)) != 1 {
		t.Errorf("%d shard-evict events, want 1", len(sink.byType(obs.EvShardEvict)))
	}
	rep, err := RunCluster(context.Background(), cfg, 3, nil)
	if err != nil {
		t.Fatalf("recovery session: %v", err)
	}
	if !rep.Resumed {
		t.Error("recovery session did not resume from the superstep-2 checkpoint")
	}
	assertBitIdentical(t, rep.Values, ref.Values, "post-watchdog recovery")
}

// TestDistChecksCheckpointIntegrity corrupts the newest checkpoint's
// blob and manifests that resume falls back to the older checkpoint
// instead of failing or restoring garbage.
func TestDistCheckpointFallback(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-corrupt",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		Store:           store,
	}
	_, err := RunCluster(context.Background(), cfg, 2, func(i int) ShardOptions {
		opts := ShardOptions{Store: store}
		if i == 0 {
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	var lost *ShardLostError
	if !errors.As(err, &lost) {
		t.Fatalf("first session: %v, want ShardLostError", err)
	}
	// Corrupt one blob of the superstep-4 checkpoint.
	key := shardBlobKey(cfg.Job, 4, 0)
	data, _, err := store.Get(key)
	if err != nil {
		t.Fatalf("checkpoint blob missing: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if _, err := store.Put(key, data); err != nil {
		t.Fatal(err)
	}
	rep, err := RunCluster(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatalf("resume after corruption: %v", err)
	}
	if !rep.Resumed || rep.StartSuperstep != 2 {
		t.Fatalf("resumed=%v start=%d, want fallback to superstep 2", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "fallback resume")
}

// TestDistFreshAfterClear ensures ClearJob really empties a namespace:
// the next session must start from superstep 0.
func TestDistFreshAfterClear(t *testing.T) {
	pspec := ProgramSpec{Name: "wcc"}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "wcc-clear",
		Program:         pspec,
		Graph:           testGraph,
		CheckpointEvery: 1,
		Store:           store,
	}
	if _, err := RunCluster(context.Background(), cfg, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := ClearJob(store, cfg.Job); err != nil {
		t.Fatal(err)
	}
	for _, k := range store.Keys() {
		t.Errorf("key %q survived ClearJob", k)
	}
	rep, err := RunCluster(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed {
		t.Error("session resumed from a cleared namespace")
	}
}

// cancelAfterSink cancels a context once it has seen `after` superstep
// events — the deterministic stand-in for "the driver decided to stop
// the cluster mid-run".
type cancelAfterSink struct {
	after  int
	cancel context.CancelFunc

	mu sync.Mutex
	n  int
}

func (s *cancelAfterSink) Emit(e obs.Event) {
	if e.Type != obs.EvSuperstep {
		return
	}
	s.mu.Lock()
	s.n++
	trip := s.n == s.after
	s.mu.Unlock()
	if trip {
		s.cancel()
	}
}

// TestDistRunClusterCancel is the tentpole's cancellation acceptance
// check at the dist layer: cancelling the context mid-run must stop a
// live cluster — coordinator error, every shard goroutine exited —
// within the barrier-timeout budget, and the error must NOT look like
// a shard loss (recovery loops abort instead of retrying a deliberate
// stop).
func TestDistRunClusterCancel(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	store := cloud.NewDatastore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Job:             "pagerank-cancel",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		BarrierTimeout:  5 * time.Second,
		Store:           store,
		Sink:            &cancelAfterSink{after: 3, cancel: cancel},
	}
	begin := time.Now()
	_, err := RunCluster(ctx, cfg, 3, nil)
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("cancelled cluster reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cluster error = %v, want context.Canceled in its chain", err)
	}
	var lost *ShardLostError
	if errors.As(err, &lost) {
		t.Fatalf("cancellation surfaced as shard loss (%v) — recovery would retry a deliberate stop", err)
	}
	if elapsed > cfg.BarrierTimeout {
		t.Fatalf("teardown took %v, budget %v", elapsed, cfg.BarrierTimeout)
	}
	// RunCluster returning at all proves every shard goroutine exited:
	// it waits on them. And a recovery loop over the same dead context
	// must abort before booting anything.
	_, restarts, rerr := ExecuteWithRecovery(ctx, cfg, FixedShards(3), 4, nil)
	if rerr == nil || restarts != 0 {
		t.Fatalf("ExecuteWithRecovery on a cancelled context: restarts=%d err=%v, want immediate abort", restarts, rerr)
	}
}

// TestDistExecuteWithRecoveryReshard drives one job through three
// sessions at three *different* worker counts — 4, then 3, then 2 —
// by killing a shard on the first two attempts. The ShardPlan is the
// tentpole's resize path: each recovery attempt resumes the same blob
// set under a new assignment, and the final values stay bit-identical.
func TestDistExecuteWithRecoveryReshard(t *testing.T) {
	pspec := ProgramSpec{Name: "pagerank", Iterations: 10}
	ref := refRun(t, pspec, true)
	if ref.Stats.Supersteps <= 6 {
		t.Fatalf("reference run too short (%d supersteps) for kills at supersteps 3 and 5", ref.Stats.Supersteps)
	}
	store := cloud.NewDatastore()
	cfg := Config{
		Job:             "pagerank-replan",
		Program:         pspec,
		Graph:           testGraph,
		Canonical:       true,
		CheckpointEvery: 2,
		Store:           store,
	}
	counts := []int{4, 3, 2}
	plan := func(attempt int) int {
		if attempt >= len(counts) {
			return counts[len(counts)-1]
		}
		return counts[attempt]
	}
	rep, restarts, err := ExecuteWithRecovery(context.Background(), cfg, plan, 3, func(attempt, shard int) ShardOptions {
		opts := ShardOptions{Store: store}
		switch {
		case attempt == 0 && shard == 1:
			opts.DieAtSuperstep = 3
		case attempt == 1 && shard == 0:
			opts.DieAtSuperstep = 5
		}
		return opts
	})
	if err != nil {
		t.Fatalf("resharded recovery failed: %v", err)
	}
	if restarts != 2 {
		t.Fatalf("%d restarts, want exactly 2", restarts)
	}
	// Attempt 0 died at superstep 3 (durable: 2), attempt 1 resumed at
	// 2 and died at 5 (durable: 4), attempt 2 finished from 4.
	if !rep.Resumed || rep.StartSuperstep != 4 {
		t.Fatalf("resumed=%v start=%d, want final session resuming at superstep 4", rep.Resumed, rep.StartSuperstep)
	}
	assertBitIdentical(t, rep.Values, ref.Values, "resharded recovery 4→3→2")
}
