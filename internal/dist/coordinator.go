package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/obs"
)

// Config describes one distributed job from the coordinator's side.
type Config struct {
	// Job namespaces the checkpoint keys in Store.
	Job string
	// Program and Graph are the specs every process instantiates.
	Program ProgramSpec
	Graph   GraphSpec
	// Canonical selects order-invariant reductions (see engine.Config):
	// required for bit-identical results across shard counts and
	// recoveries when the program's reductions are order-sensitive.
	Canonical bool
	// Assign maps vertex→shard; nil assigns round-robin (v mod shards).
	Assign []int32
	// CheckpointEvery writes a checkpoint after every k supersteps
	// (0 = never).
	CheckpointEvery int
	// DeltaChain enables delta checkpoints: up to DeltaChain deltas are
	// sealed between full checkpoints (0 = every checkpoint is full).
	// A delta's shard blobs encode only state changed since the parent
	// manifest, shrinking t_save at the price of a bounded restore
	// chain.
	DeltaChain int
	// ForceCheckpointAt, when > 0, checkpoints after that superstep
	// even off the CheckpointEvery cadence — the warm-standby driver
	// sets it to the projected eviction boundary so the final save
	// lands inside the warning window.
	ForceCheckpointAt int
	// MaxSupersteps aborts runaway sessions (0 = 10_000).
	MaxSupersteps int
	// BarrierTimeout is the watchdog: a shard that delivers no expected
	// frame within it is declared dead (0 = 10s).
	BarrierTimeout time.Duration
	// Store holds checkpoint blobs and manifests. Must be reachable by
	// every shard under the same keys (cloud.FSStore on a shared
	// directory for process shards).
	Store cloud.BlobStore
	// Sink receives EvSuperstep / EvCheckpoint / EvShardEvict events.
	Sink obs.Sink
	// Logf receives diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Report summarises one completed session.
type Report struct {
	Values []float64
	Stats  engine.Stats
	// WireFrames / WireBytes count the session's total wire traffic,
	// both directions: coordinator control frames plus the peer-mesh
	// data plane (shards report their peer-plane counters with every
	// inboxed vote).
	WireFrames int64
	WireBytes  int64
	// CoordBatchFrames counts batch frames that arrived on the
	// coordinator's connections. The mesh plane routes batches
	// shard-to-shard, so this is always 0 on a healthy session — a
	// batch here is a protocol violation and the identity tests assert
	// the zero.
	CoordBatchFrames int64
	// Checkpoints completed during the session.
	Checkpoints int
	// Resumed reports whether the session started from a checkpoint,
	// and StartSuperstep which superstep it started at.
	Resumed        bool
	StartSuperstep int
}

// ShardLostError reports a shard declared dead mid-session: connection
// loss, protocol violation, or barrier-watchdog expiry. The session is
// torn down; a new session against the same Store resumes from the
// newest complete checkpoint.
type ShardLostError struct {
	Shard     int
	Superstep int
	Cause     error
}

func (e *ShardLostError) Error() string {
	return fmt.Sprintf("dist: shard %d lost at superstep %d: %v", e.Shard, e.Superstep, e.Cause)
}

func (e *ShardLostError) Unwrap() error { return e.Cause }

// frameQueue is an unbounded FIFO of encoded frames feeding one
// writer goroutine (a coordinator-side shard connection, or a shard's
// outbound peer link). Unbounded on purpose: a bounded queue would let
// one slow TCP receiver backpressure the producer into deadlock across
// the barrier.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames [][]byte
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one frame (no-op after close).
func (q *frameQueue) push(typ byte, payload []byte) {
	frame := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), typ, payload)
	q.mu.Lock()
	if !q.closed {
		q.frames = append(q.frames, frame)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// popAll blocks until frames are queued (or the queue closes) and
// drains them, so the writer can write a burst and flush once.
func (q *frameQueue) popAll() ([][]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	frames := q.frames
	q.frames = nil
	return frames, len(frames) > 0 || !q.closed
}

func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.frames = nil
	q.cond.Broadcast()
	q.mu.Unlock()
}

// shardEvent is a non-batch frame (or reader error) surfaced to the
// coordinator's main loop.
type shardEvent struct {
	shard   int
	typ     byte
	payload []byte
	err     error
}

// session is one coordinator run over an established set of shard
// connections.
type session struct {
	ctx     context.Context
	cfg     Config
	shards  int
	timeout time.Duration

	prog     engine.Program
	progJSON string
	graphJS  string
	n        int
	assign   []int32

	aggNames []string
	aggSpec  map[string]engine.AggregatorSpec
	view     map[string]float64

	conns  []net.Conn
	queues []*frameQueue
	events chan shardEvent
	quit   chan struct{}
	wg     sync.WaitGroup

	// procs holds each shard's self-declared process identity from its
	// hello ("pid:1234"); empty until the handshake names a shard.
	procs []string

	wireFrames atomic.Int64
	wireBytes  atomic.Int64
	coordBatch atomic.Int64

	superstep int
	report    Report

	// lastCkpt is the newest manifest this session knows is sealed (the
	// resumed one, then each one checkpointAll seals) — the candidate
	// parent for the next delta.
	lastCkpt *manifest
}

// RunCoordinator drives one session over conns (conn i = shard i):
// handshake, superstep loop with barriers, checkpoints, halt, value
// collection. On shard loss it returns *ShardLostError after emitting
// obs.EvShardEvict; the caller restarts with fresh connections and the
// same Store to resume. Cancelling ctx aborts the session at its next
// barrier wait (a non-ShardLostError, so recovery loops stop retrying)
// and the deferred teardown closes every shard connection on the way
// out.
func RunCoordinator(ctx context.Context, conns []net.Conn, cfg Config) (*Report, error) {
	if len(conns) == 0 {
		return nil, errors.New("dist: no shard connections")
	}
	if cfg.Store == nil {
		return nil, errors.New("dist: Config.Store is required")
	}
	if cfg.Job == "" {
		return nil, errors.New("dist: Config.Job is required")
	}
	s := &session{
		ctx:     ctx,
		cfg:     cfg,
		shards:  len(conns),
		timeout: cfg.BarrierTimeout,
		conns:   conns,
		events:  make(chan shardEvent, len(conns)*4),
		quit:    make(chan struct{}),
	}
	if s.timeout <= 0 {
		s.timeout = 10 * time.Second
	}
	if err := s.prepare(); err != nil {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	defer func() {
		close(s.quit)
		for _, q := range s.queues {
			q.close()
		}
		for _, c := range s.conns {
			c.Close()
		}
		s.wg.Wait()
	}()
	return s.run()
}

// prepare instantiates the specs and the vertex assignment.
func (s *session) prepare() error {
	var err error
	s.prog, err = s.cfg.Program.New()
	if err != nil {
		return err
	}
	g, err := s.cfg.Graph.Build()
	if err != nil {
		return err
	}
	s.n = g.NumVertices()
	if s.progJSON, err = marshalSpec(s.cfg.Program); err != nil {
		return err
	}
	if s.graphJS, err = marshalSpec(s.cfg.Graph); err != nil {
		return err
	}
	if s.cfg.Assign != nil {
		if len(s.cfg.Assign) != s.n {
			return fmt.Errorf("dist: assignment length %d for %d vertices", len(s.cfg.Assign), s.n)
		}
		for v, o := range s.cfg.Assign {
			if o < 0 || int(o) >= s.shards {
				return fmt.Errorf("dist: vertex %d assigned to shard %d of %d", v, o, s.shards)
			}
		}
		s.assign = s.cfg.Assign
	} else {
		s.assign = make([]int32, s.n)
		for v := range s.assign {
			s.assign[v] = int32(v % s.shards)
		}
	}
	s.aggSpec = map[string]engine.AggregatorSpec{}
	s.view = map[string]float64{}
	if a, ok := s.prog.(engine.Aggregators); ok {
		for _, spec := range a.Aggregators() {
			s.aggSpec[spec.Name] = spec
			s.view[spec.Name] = spec.Identity
			s.aggNames = append(s.aggNames, spec.Name)
		}
		sort.Strings(s.aggNames)
	}
	return nil
}

// viewPairs snapshots the reduced aggregator values, name-sorted.
func (s *session) viewPairs() aggPairs {
	a := aggPairs{
		Names: s.aggNames,
		Vals:  make([]float64, len(s.aggNames)),
	}
	for i, name := range s.aggNames {
		a.Vals[i] = s.view[name]
	}
	return a
}

// reader pumps one shard's connection to the main loop. The data plane
// is the peer mesh: a batch frame on a coordinator connection is a
// protocol violation (counted in Report.CoordBatchFrames, asserted zero
// by the identity tests) and costs the sender its session.
func (s *session) reader(shard int) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(s.conns[shard], 1<<16)
	for {
		typ, payload, size, err := readFrame(br)
		if err != nil {
			s.post(shardEvent{shard: shard, err: err})
			return
		}
		s.wireFrames.Add(1)
		s.wireBytes.Add(int64(size))
		if typ == fBatch {
			s.coordBatch.Add(1)
			s.post(shardEvent{shard: shard, err: errors.New("dist: batch frame routed through coordinator (mesh protocol violation)")})
			return
		}
		s.post(shardEvent{shard: shard, typ: typ, payload: payload})
	}
}

// post delivers an event to the main loop unless the session is
// tearing down.
func (s *session) post(ev shardEvent) {
	select {
	case s.events <- ev:
	case <-s.quit:
	}
}

// writer drains one shard's frame queue onto its connection.
func (s *session) writer(shard int) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(s.conns[shard], 1<<16)
	for {
		frames, ok := s.popOrQuit(shard)
		if !ok {
			return
		}
		for _, f := range frames {
			if _, err := bw.Write(f); err != nil {
				s.post(shardEvent{shard: shard, err: err})
				return
			}
			s.wireFrames.Add(1)
			s.wireBytes.Add(int64(len(f)))
		}
		if err := bw.Flush(); err != nil {
			s.post(shardEvent{shard: shard, err: err})
			return
		}
	}
}

func (s *session) popOrQuit(shard int) ([][]byte, bool) {
	return s.queues[shard].popAll()
}

// lost declares a shard dead: emits the eviction event and returns the
// error the caller propagates.
func (s *session) lost(shard int, cause error) error {
	if s.cfg.Sink != nil {
		var proc string
		if shard < len(s.procs) {
			proc = s.procs[shard]
		}
		s.cfg.Sink.Emit(obs.Event{
			Type:      obs.EvShardEvict,
			Job:       s.prog.Name(),
			Shard:     shard,
			Proc:      proc,
			Superstep: s.superstep,
			Err:       cause.Error(),
		})
	}
	s.cfg.logf("dist: shard %d lost at superstep %d: %v", shard, s.superstep, cause)
	return &ShardLostError{Shard: shard, Superstep: s.superstep, Cause: cause}
}

// gather waits until every shard delivered one frame of the given
// type, returning payloads indexed by shard. Reader errors, protocol
// violations and watchdog expiry all become ShardLostError; a
// cancelled ctx aborts the wait with the ctx error instead (not a
// loss — recovery loops must stop, not resume). The entry check makes
// a cancellation that landed between phases deterministic: the next
// gather refuses to start rather than racing ready events against the
// closed Done channel. final marks the session's last phase, where a
// disconnect from a shard that already delivered is the normal end of
// its session, not a loss.
func (s *session) gather(typ byte, phase string, final bool) ([][]byte, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: session cancelled before gathering %s: %w", phase, err)
	}
	out := make([][]byte, s.shards)
	seen := make([]bool, s.shards)
	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	for got := 0; got < s.shards; {
		var ev shardEvent
		select {
		case ev = <-s.events:
		case <-s.ctx.Done():
			return nil, fmt.Errorf("dist: session cancelled while gathering %s: %w", phase, s.ctx.Err())
		case <-timer.C:
			for i := range seen {
				if !seen[i] {
					return nil, s.lost(i, fmt.Errorf("dist: no %s within %v (barrier watchdog)", phase, s.timeout))
				}
			}
			return nil, fmt.Errorf("dist: watchdog fired with all %s present", phase)
		}
		if ev.err != nil {
			if final && seen[ev.shard] {
				continue
			}
			return nil, s.lost(ev.shard, ev.err)
		}
		if ev.typ != typ {
			return nil, s.lost(ev.shard, fmt.Errorf("dist: frame type %d while gathering %s", ev.typ, phase))
		}
		if seen[ev.shard] {
			return nil, s.lost(ev.shard, fmt.Errorf("dist: duplicate %s", phase))
		}
		seen[ev.shard] = true
		out[ev.shard] = ev.payload
		got++
	}
	return out, nil
}

// broadcast queues one frame for every shard.
func (s *session) broadcast(typ byte, payload []byte) {
	for _, q := range s.queues {
		q.push(typ, payload)
	}
}

func (s *session) run() (*Report, error) {
	// Resume decision: newest checkpoint whose whole blob set
	// validates, or a fresh start.
	start := 0
	var blobKeys []string
	if m, err := loadLatestManifest(s.cfg.Store, s.cfg.Job); err == nil {
		if m.Program != s.progJSON || m.Graph != s.graphJS || m.Canonical != s.cfg.Canonical {
			return nil, fmt.Errorf("dist: checkpoint for job %q belongs to a different computation", s.cfg.Job)
		}
		start = m.Superstep
		blobKeys = m.chainKeys
		s.lastCkpt = m
		for i, name := range m.Aggs.Names {
			if _, ok := s.aggSpec[name]; ok {
				s.view[name] = m.Aggs.Vals[i]
			}
		}
		s.report.Resumed = true
	} else if !errors.Is(err, ErrNoCheckpoint) {
		return nil, err
	}
	s.superstep = start
	s.report.StartSuperstep = start

	s.queues = make([]*frameQueue, s.shards)
	for i := range s.queues {
		s.queues[i] = newFrameQueue()
	}
	s.wg.Add(2 * s.shards)
	for i := 0; i < s.shards; i++ {
		go s.reader(i)
		go s.writer(i)
	}

	// Handshake: Hello from everyone (each announcing its peer-plane
	// listener), then per-shard Welcomes carrying the full peer list so
	// the shards can wire the mesh among themselves.
	hellos, err := s.gather(fHello, "hello", false)
	if err != nil {
		return nil, err
	}
	peers := make([]string, s.shards)
	s.procs = make([]string, s.shards)
	for i, p := range hellos {
		h, derr := decodeHello(p)
		if derr != nil {
			return nil, s.lost(i, derr)
		}
		if h.Version != wireVersion {
			return nil, s.lost(i, fmt.Errorf("dist: shard speaks wire version %d, coordinator speaks %d", h.Version, wireVersion))
		}
		if h.PeerAddr == "" {
			return nil, s.lost(i, errors.New("dist: hello without a peer-plane address"))
		}
		peers[i] = h.PeerAddr
		s.procs[i] = h.Proc
	}
	for i := 0; i < s.shards; i++ {
		w := welcomeMsg{
			Version:   wireVersion,
			Shard:     uint32(i),
			Shards:    uint32(s.shards),
			Canonical: s.cfg.Canonical,
			Start:     uint32(start),
			Program:   s.progJSON,
			Graph:     s.graphJS,
			Assign:    s.assign,
			Aggs:      s.viewPairs(),
			BlobKeys:  blobKeys,
			Peers:     peers,
		}
		s.queues[i].push(fWelcome, w.encode())
	}

	frontier, err := s.awaitFrontier(start)
	if err != nil {
		return nil, err
	}

	maxSteps := s.cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 10_000
	}
	S := start
	for frontier > 0 {
		// Deterministic cancellation point: a ctx cancelled at (or
		// before) the previous barrier stops the session here, before
		// any shard is told to proceed into S.
		if err := s.ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: session cancelled before superstep %d: %w", S, err)
		}
		if S-start >= maxSteps {
			return nil, fmt.Errorf("dist: exceeded %d supersteps without halting", maxSteps)
		}
		wf0, wb0 := s.wireFrames.Load(), s.wireBytes.Load()
		s.broadcast(fProceed, proceedMsg{Superstep: uint32(S), Aggs: s.viewPairs()}.encode())

		votes, err := s.gather(fBarrier, "barrier vote", false)
		if err != nil {
			return nil, err
		}
		barriers := make([]barrierMsg, s.shards)
		var stepSent, stepCalls, stepComb, stepRemote int64
		for i, p := range votes {
			b, derr := decodeBarrier(p)
			if derr != nil {
				return nil, s.lost(i, derr)
			}
			if int(b.Superstep) != S {
				return nil, s.lost(i, fmt.Errorf("dist: barrier for superstep %d during %d", b.Superstep, S))
			}
			if len(b.SentTo) != s.shards {
				return nil, s.lost(i, fmt.Errorf("dist: barrier names %d peers for %d shards", len(b.SentTo), s.shards))
			}
			barriers[i] = b
			stepSent += int64(b.Sent)
			stepCalls += int64(b.Calls)
			stepComb += int64(b.Combined)
			stepRemote += int64(b.Remote)
		}
		s.foldAggs(barriers)
		s.report.Stats.MessagesSent += stepSent
		s.report.Stats.ComputeCalls += stepCalls
		s.report.Stats.RemoteMessages += stepRemote
		s.report.Stats.Supersteps++

		// All barriers in ⇒ every batch of superstep S has been handed
		// to a peer link. Fold the votes' per-peer sent counts into one
		// expected-arrival total per shard; each shard drains its mesh
		// until that many batches have landed. Only S-tagged batches can
		// be in flight: Proceed(S+1) is gated on every shard's Inboxed
		// vote, which follows its completed drain.
		for j := 0; j < s.shards; j++ {
			var expect uint64
			for i := range barriers {
				expect += barriers[i].SentTo[j]
			}
			s.queues[j].push(fEndBatches, endBatchesMsg{Superstep: uint32(S), Expect: expect}.encode())
		}

		frontier, err = s.awaitFrontier(S + 1)
		if err != nil {
			return nil, err
		}
		s.superstep = S + 1

		if s.cfg.Sink != nil {
			s.cfg.Sink.Emit(obs.Event{
				Type:       obs.EvSuperstep,
				Job:        s.prog.Name(),
				Superstep:  S + 1, // 1-based, matching the engine
				Active:     stepCalls,
				Messages:   stepSent,
				Combined:   stepComb,
				WireFrames: s.wireFrames.Load() - wf0,
				WireBytes:  s.wireBytes.Load() - wb0,
			})
		}

		onCadence := s.cfg.CheckpointEvery > 0 && (S+1-start)%s.cfg.CheckpointEvery == 0
		forced := s.cfg.ForceCheckpointAt > 0 && S+1 == s.cfg.ForceCheckpointAt
		if (onCadence || forced) && frontier > 0 {
			if err := s.checkpointAll(S + 1); err != nil {
				return nil, err
			}
		}
		S++
	}

	// Halt: collect the final values.
	s.broadcast(fProceed, proceedMsg{Superstep: uint32(S), Halt: true, Aggs: s.viewPairs()}.encode())
	valueFrames, err := s.gather(fValues, "final values", true)
	if err != nil {
		return nil, err
	}
	values := make([]float64, s.n)
	covered := make([]bool, s.n)
	for i, p := range valueFrames {
		vm, derr := decodeValues(p)
		if derr != nil {
			return nil, s.lost(i, derr)
		}
		for j, vtx := range vm.Vertex {
			if vtx < 0 || int(vtx) >= s.n || covered[vtx] {
				return nil, s.lost(i, fmt.Errorf("dist: bad or duplicate final value for vertex %d", vtx))
			}
			if s.assign[vtx] != int32(i) {
				return nil, s.lost(i, fmt.Errorf("dist: shard reported vertex %d owned by shard %d", vtx, s.assign[vtx]))
			}
			covered[vtx] = true
			values[vtx] = vm.Val[j]
		}
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("dist: no shard reported a final value for vertex %d", v)
		}
	}
	s.report.Values = values
	s.report.WireFrames = s.wireFrames.Load()
	s.report.WireBytes = s.wireBytes.Load()
	s.report.CoordBatchFrames = s.coordBatch.Load()
	rep := s.report
	return &rep, nil
}

// awaitFrontier gathers Inboxed votes for a superstep and returns the
// global frontier size. The votes also carry each shard's peer-plane
// wire counters since its previous vote, folded into the session
// totals here so Report and the EvSuperstep deltas keep covering the
// data plane now that batches bypass the coordinator.
func (s *session) awaitFrontier(superstep int) (uint64, error) {
	frames, err := s.gather(fInboxed, "inboxed vote", false)
	if err != nil {
		return 0, err
	}
	var frontier uint64
	for i, p := range frames {
		m, derr := decodeInboxed(p)
		if derr != nil {
			return 0, s.lost(i, derr)
		}
		if int(m.Superstep) != superstep {
			return 0, s.lost(i, fmt.Errorf("dist: inboxed vote for superstep %d during %d", m.Superstep, superstep))
		}
		frontier += m.Frontier
		s.wireFrames.Add(int64(m.PeerFrames))
		s.wireBytes.Add(int64(m.PeerBytes))
	}
	return frontier, nil
}

// foldAggs reduces the shards' barrier contributions exactly like the
// engine's barrier fold: canonical merges every raw term and folds
// value-sorted; otherwise one partial per shard folds in shard order.
// Values are recomputed each superstep (identity when nothing
// contributed), never carried over.
func (s *session) foldAggs(barriers []barrierMsg) {
	if len(s.aggNames) == 0 {
		return
	}
	if s.cfg.Canonical {
		merged := map[string][]float64{}
		for _, b := range barriers {
			for i, name := range b.AggNames {
				if _, ok := s.aggSpec[name]; ok {
					merged[name] = append(merged[name], b.Contribs[i]...)
				}
			}
		}
		for _, name := range s.aggNames {
			spec := s.aggSpec[name]
			lst := merged[name]
			sort.Float64s(lst)
			val := spec.Identity
			for i, c := range lst {
				if i == 0 {
					val = c
				} else {
					val = spec.Reduce(val, c)
				}
			}
			s.view[name] = val
		}
		return
	}
	for _, name := range s.aggNames {
		spec := s.aggSpec[name]
		val := spec.Identity
		contributed := false
		for _, b := range barriers {
			for i, n2 := range b.AggNames {
				if n2 != name || len(b.Contribs[i]) == 0 {
					continue
				}
				if contributed {
					val = spec.Reduce(val, b.Contribs[i][0])
				} else {
					val = b.Contribs[i][0]
					contributed = true
				}
			}
		}
		s.view[name] = val
	}
}

// checkpointAll runs one checkpoint round for a resume into superstep
// R: every shard writes its blob, and once every ack is in the
// coordinator seals the set with a manifest and flips the latest
// pointer. A failed blob write skips the manifest (the previous
// checkpoint stays authoritative) but does not abort the run.
//
// With Config.DeltaChain > 0 and a sealed parent no deeper than the
// chain bound, the round is a delta: shards are asked to encode only
// state changed since the parent, and the manifest links to it by
// superstep + payload CRC. A shard whose diff base doesn't match the
// requested parent writes a full blob instead (flagged in its ack) —
// harmless under the oldest-first overlay restore — and the manifest
// stays a delta.
func (s *session) checkpointAll(R int) error {
	delta := s.cfg.DeltaChain > 0 && s.lastCkpt != nil &&
		s.lastCkpt.Chain < s.cfg.DeltaChain && s.lastCkpt.Chain < maxChainDepth-1
	var parent uint32
	if delta {
		parent = uint32(s.lastCkpt.Superstep)
	}
	keys := make([]string, s.shards)
	for i := range keys {
		keys[i] = shardBlobKey(s.cfg.Job, R, i)
		s.queues[i].push(fCheckpoint, checkpointMsg{
			Superstep: uint32(R), Key: keys[i], Delta: delta, Parent: parent,
		}.encode())
	}
	acks, err := s.gather(fCheckpointAck, "checkpoint ack", false)
	if err != nil {
		return err
	}
	var totalBytes uint64
	for i, p := range acks {
		ack, derr := decodeCheckpointAck(p)
		if derr != nil {
			return s.lost(i, derr)
		}
		if int(ack.Superstep) != R {
			return s.lost(i, fmt.Errorf("dist: checkpoint ack for superstep %d during %d", ack.Superstep, R))
		}
		if ack.Err != "" {
			s.cfg.logf("dist: shard %d checkpoint at superstep %d failed: %s", i, R, ack.Err)
			return nil
		}
		totalBytes += ack.Bytes
	}
	m := &manifest{
		Job:       s.cfg.Job,
		Superstep: R,
		Shards:    s.shards,
		Program:   s.progJSON,
		Graph:     s.graphJS,
		Canonical: s.cfg.Canonical,
		Aggs:      s.viewPairs(),
		BlobKeys:  keys,
		Parent:    -1,
	}
	if delta {
		m.Parent = s.lastCkpt.Superstep
		m.Chain = s.lastCkpt.Chain + 1
		m.ParentCRC = s.lastCkpt.selfCRC
	}
	mk := manifestKey(s.cfg.Job, R)
	if _, err := s.cfg.Store.Put(mk, m.encodeSealed()); err != nil {
		s.cfg.logf("dist: manifest write at superstep %d failed: %v", R, err)
		return nil
	}
	if _, err := s.cfg.Store.Put(latestPointerKey(s.cfg.Job), []byte(mk)); err != nil {
		s.cfg.logf("dist: latest pointer write at superstep %d failed: %v", R, err)
		return nil
	}
	s.lastCkpt = m
	s.report.Checkpoints++
	if s.cfg.Sink != nil {
		s.cfg.Sink.Emit(obs.Event{
			Type:      obs.EvCheckpoint,
			Job:       s.prog.Name(),
			Superstep: R,
			WireBytes: int64(totalBytes),
			Chain:     m.Chain,
		})
		if delta {
			s.cfg.Sink.Emit(obs.Event{
				Type:       obs.EvDeltaSave,
				Job:        s.prog.Name(),
				Superstep:  R,
				Chain:      m.Chain,
				DeltaBytes: int64(totalBytes),
			})
		}
	}
	return nil
}

// ClearJob removes every checkpoint object a job left in the store.
func ClearJob(store cloud.BlobStore, job string) error {
	return clearNamespace(store, job)
}
