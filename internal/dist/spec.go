package dist

import (
	"encoding/json"
	"fmt"
	"sync"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

// ProgramSpec names a bundled vertex program in a form that survives
// the wire: the coordinator and every shard instantiate their own copy
// from the same spec, so program state never has to be serialised.
//
// Programs with engine.AuxState are supported when they also implement
// engine.VertexAux: each shard initialises the whole-graph aux from
// the topology, and the owned vertices' entries travel per-vertex in
// the checkpoint blobs (GraphColoring). An aux program without the
// per-vertex split is still rejected.
type ProgramSpec struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations,omitempty"` // pagerank
	Damping    float64 `json:"damping,omitempty"`    // pagerank
	Source     int64   `json:"source,omitempty"`     // sssp, bfs
}

// New instantiates the named program.
func (s ProgramSpec) New() (engine.Program, error) {
	var p engine.Program
	switch s.Name {
	case "pagerank":
		it := s.Iterations
		if it <= 0 {
			it = 10
		}
		p = &engine.PageRank{Iterations: it, Damping: s.Damping}
	case "sssp":
		p = &engine.SSSP{Source: graph.VertexID(s.Source)}
	case "wcc":
		p = engine.WCC{}
	case "bfs":
		p = &engine.BFS{Source: graph.VertexID(s.Source)}
	case "graphcoloring":
		p = &engine.GraphColoring{}
	default:
		return nil, fmt.Errorf("dist: unknown program %q", s.Name)
	}
	if _, ok := p.(engine.AuxState); ok {
		if _, ok := p.(engine.VertexAux); !ok {
			return nil, fmt.Errorf("dist: program %q carries aux state without per-vertex access, unsupported in distributed mode", s.Name)
		}
	}
	return p, nil
}

// GraphSpec describes a deterministic RMAT input: the same spec builds
// the same graph on every process, so the topology never crosses the
// wire (the paper's workers likewise load their partitions from shared
// storage, not from the master).
type GraphSpec struct {
	Scale      int   `json:"scale"`
	Seed       int64 `json:"seed"`
	EdgeFactor int   `json:"edge_factor,omitempty"` // 0 = 16 (Graph500)
	Undirected bool  `json:"undirected,omitempty"`
	Weighted   bool  `json:"weighted,omitempty"`
}

// buildCache memoizes materialised graphs by spec. The topology is
// immutable (CSR with read-only accessors; vertex values live outside
// it), so every shard in a process — and every successive session of a
// recovering job — shares one build instead of regenerating the RMAT
// edge list per handshake. Generating scale 12 costs ~60 ms, an order
// of magnitude more than a mesh superstep, so the rebuild-per-session
// tax dominated both recovery latency and the dist benchmarks. The
// cache is never evicted: a process serves a handful of specs at most.
var buildCache sync.Map // GraphSpec → *graph.Graph

// Build materialises the graph (memoized per spec).
func (s GraphSpec) Build() (*graph.Graph, error) {
	if g, ok := buildCache.Load(s); ok {
		return g.(*graph.Graph), nil
	}
	if s.Scale <= 0 || s.Scale > 30 {
		return nil, fmt.Errorf("dist: graph scale %d out of range", s.Scale)
	}
	p := graph.DefaultRMAT(s.Scale, s.Seed)
	if s.EdgeFactor > 0 {
		p.EdgeFactor = s.EdgeFactor
	}
	p.Undirected = s.Undirected
	p.Weighted = s.Weighted
	g, _ := buildCache.LoadOrStore(s, graph.RMAT(p))
	return g.(*graph.Graph), nil
}

// marshalSpec / unmarshal helpers keep the JSON encoding in one place.
func marshalSpec(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("dist: encoding spec: %w", err)
	}
	return string(b), nil
}

func unmarshalProgramSpec(s string) (ProgramSpec, error) {
	var p ProgramSpec
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return p, fmt.Errorf("dist: decoding program spec: %w", err)
	}
	return p, nil
}

func unmarshalGraphSpec(s string) (GraphSpec, error) {
	var g GraphSpec
	if err := json.Unmarshal([]byte(s), &g); err != nil {
		return g, fmt.Errorf("dist: decoding graph spec: %w", err)
	}
	return g, nil
}
