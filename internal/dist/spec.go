package dist

import (
	"encoding/json"
	"fmt"

	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

// ProgramSpec names a bundled vertex program in a form that survives
// the wire: the coordinator and every shard instantiate their own copy
// from the same spec, so program state never has to be serialised.
//
// Programs with engine.AuxState (GraphColoring) are rejected: their
// per-vertex auxiliary state is whole-graph and cannot yet be split
// into per-shard checkpoint blobs. See DESIGN.md.
type ProgramSpec struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations,omitempty"` // pagerank
	Damping    float64 `json:"damping,omitempty"`    // pagerank
	Source     int64   `json:"source,omitempty"`     // sssp, bfs
}

// New instantiates the named program.
func (s ProgramSpec) New() (engine.Program, error) {
	var p engine.Program
	switch s.Name {
	case "pagerank":
		it := s.Iterations
		if it <= 0 {
			it = 10
		}
		p = &engine.PageRank{Iterations: it, Damping: s.Damping}
	case "sssp":
		p = &engine.SSSP{Source: graph.VertexID(s.Source)}
	case "wcc":
		p = engine.WCC{}
	case "bfs":
		p = &engine.BFS{Source: graph.VertexID(s.Source)}
	default:
		return nil, fmt.Errorf("dist: unknown program %q", s.Name)
	}
	if _, ok := p.(engine.AuxState); ok {
		return nil, fmt.Errorf("dist: program %q carries aux state, unsupported in distributed mode", s.Name)
	}
	return p, nil
}

// GraphSpec describes a deterministic RMAT input: the same spec builds
// the same graph on every process, so the topology never crosses the
// wire (the paper's workers likewise load their partitions from shared
// storage, not from the master).
type GraphSpec struct {
	Scale      int   `json:"scale"`
	Seed       int64 `json:"seed"`
	EdgeFactor int   `json:"edge_factor,omitempty"` // 0 = 16 (Graph500)
	Undirected bool  `json:"undirected,omitempty"`
	Weighted   bool  `json:"weighted,omitempty"`
}

// Build materialises the graph.
func (s GraphSpec) Build() (*graph.Graph, error) {
	if s.Scale <= 0 || s.Scale > 30 {
		return nil, fmt.Errorf("dist: graph scale %d out of range", s.Scale)
	}
	p := graph.DefaultRMAT(s.Scale, s.Seed)
	if s.EdgeFactor > 0 {
		p.EdgeFactor = s.EdgeFactor
	}
	p.Undirected = s.Undirected
	p.Weighted = s.Weighted
	return graph.RMAT(p), nil
}

// marshalSpec / unmarshal helpers keep the JSON encoding in one place.
func marshalSpec(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("dist: encoding spec: %w", err)
	}
	return string(b), nil
}

func unmarshalProgramSpec(s string) (ProgramSpec, error) {
	var p ProgramSpec
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return p, fmt.Errorf("dist: decoding program spec: %w", err)
	}
	return p, nil
}

func unmarshalGraphSpec(s string) (GraphSpec, error) {
	var g GraphSpec
	if err := json.Unmarshal([]byte(s), &g); err != nil {
		return g, fmt.Errorf("dist: decoding graph spec: %w", err)
	}
	return g, nil
}
