package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// AcceptAndRun accepts `shards` connections on ln and runs one
// coordinator session over them. Shard ids follow accept order (the
// Welcome tells each shard which id it got). Accepting is bounded by
// the watchdog window so a missing shard process fails the session
// instead of hanging it.
func AcceptAndRun(ln net.Listener, shards int, cfg Config) (*Report, error) {
	timeout := cfg.BarrierTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conns := make([]net.Conn, 0, shards)
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for len(conns) < shards {
		if tl, ok := ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Now().Add(timeout))
		}
		c, err := ln.Accept()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dist: accepting shard %d of %d: %w", len(conns), shards, err)
		}
		conns = append(conns, c)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Time{})
	}
	return RunCoordinator(conns, cfg)
}

// RunCluster runs one session with the coordinator and all shard
// workers in this process, wired over loopback TCP — the one-machine
// deployment and the unit-test harness. shardOpts, when non-nil,
// supplies per-shard options (chaos hooks); a zero-Store option
// inherits cfg.Store.
func RunCluster(cfg Config, shards int, shardOpts func(i int) ShardOptions) (*Report, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: %d shards", shards)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: loopback listener: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		opts := ShardOptions{Store: cfg.Store}
		if shardOpts != nil {
			opts = shardOpts(i)
			if opts.Store == nil {
				opts.Store = cfg.Store
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Session errors surface coordinator-side (shard loss); a
			// shard's own view is diagnostics only.
			if err := Dial(addr, opts); err != nil {
				cfg.logf("dist: in-process shard: %v", err)
			}
		}()
	}
	rep, err := AcceptAndRun(ln, shards, cfg)
	// Coordinator teardown closed every connection, so the shard
	// goroutines are unblocked and exiting.
	wg.Wait()
	return rep, err
}

// ExecuteWithRecovery drives a job to completion across shard losses:
// each *ShardLostError tears the session down and a fresh one resumes
// from the newest complete checkpoint in cfg.Store (or from scratch if
// none was written yet). Other errors, and loss beyond maxRestarts,
// abort. Returns the final report and the number of restarts taken.
func ExecuteWithRecovery(cfg Config, shards, maxRestarts int, shardOpts func(attempt, shard int) ShardOptions) (*Report, int, error) {
	for attempt := 0; ; attempt++ {
		var perShard func(i int) ShardOptions
		if shardOpts != nil {
			a := attempt
			perShard = func(i int) ShardOptions { return shardOpts(a, i) }
		}
		rep, err := RunCluster(cfg, shards, perShard)
		if err == nil {
			return rep, attempt, nil
		}
		var lost *ShardLostError
		if !errors.As(err, &lost) || attempt >= maxRestarts {
			return nil, attempt, err
		}
		cfg.logf("dist: restarting after %v (attempt %d of %d)", err, attempt+1, maxRestarts)
	}
}
