package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// AcceptAndRun accepts `shards` connections on ln and runs one
// coordinator session over them. Shard ids follow accept order (the
// Welcome tells each shard which id it got). Accepting is bounded by
// the watchdog window so a missing shard process fails the session
// instead of hanging it, and by ctx: cancellation interrupts a pending
// Accept (the listener is left open — callers reuse it across recovery
// sessions) and aborts the session.
func AcceptAndRun(ctx context.Context, ln net.Listener, shards int, cfg Config) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: session cancelled: %w", err)
	}
	timeout := cfg.BarrierTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	// Cancellation unblocks Accept by expiring the listener deadline;
	// the listener itself stays open for the caller.
	stop := context.AfterFunc(ctx, func() {
		if tl, ok := ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Now())
		}
	})
	defer stop()
	conns := make([]net.Conn, 0, shards)
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for len(conns) < shards {
		if tl, ok := ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Now().Add(timeout))
		}
		c, err := ln.Accept()
		if err != nil {
			closeAll()
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("dist: session cancelled while accepting shard %d of %d: %w", len(conns), shards, cerr)
			}
			return nil, fmt.Errorf("dist: accepting shard %d of %d: %w", len(conns), shards, err)
		}
		conns = append(conns, c)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Time{})
	}
	return RunCoordinator(ctx, conns, cfg)
}

// RunCluster runs one session with the coordinator and all shard
// workers in this process, wired over loopback TCP — the one-machine
// deployment and the unit-test harness. Cancelling ctx tears the whole
// cluster down: the coordinator aborts at its next barrier wait and
// every shard goroutine has exited by the time RunCluster returns.
// shardOpts, when non-nil, supplies per-shard options (chaos hooks); a
// zero-Store option inherits cfg.Store.
func RunCluster(ctx context.Context, cfg Config, shards int, shardOpts func(i int) ShardOptions) (*Report, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: %d shards", shards)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: loopback listener: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		opts := ShardOptions{Store: cfg.Store}
		if shardOpts != nil {
			opts = shardOpts(i)
			if opts.Store == nil {
				opts.Store = cfg.Store
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Session errors surface coordinator-side (shard loss); a
			// shard's own view is diagnostics only.
			if err := Dial(ctx, addr, opts); err != nil {
				cfg.logf("dist: in-process shard: %v", err)
			}
		}()
	}
	rep, err := AcceptAndRun(ctx, ln, shards, cfg)
	// Coordinator teardown closed every connection (and a cancelled ctx
	// reaches the shards directly), so the shard goroutines are
	// unblocked and exiting.
	wg.Wait()
	return rep, err
}

// ShardPlan maps a recovery attempt (0 = the first session) to the
// worker count that attempt runs with. Recovery resumes from per-shard
// checkpoint blobs filtered by the *current* assignment, so successive
// attempts are free to shrink or grow the cluster — the paper's
// re-provision-at-a-different-worker-count loop, and the hook the
// runtime driver uses when the provisioner re-decides after a loss.
type ShardPlan func(attempt int) int

// FixedShards is the trivial plan: every attempt runs `n` workers.
func FixedShards(n int) ShardPlan { return func(int) int { return n } }

// ExecuteWithRecovery drives a job to completion across shard losses:
// each *ShardLostError tears the session down and a fresh one resumes
// from the newest complete checkpoint in cfg.Store (or from scratch if
// none was written yet) with plan(attempt) workers. Other errors —
// including ctx cancellation, which aborts the live session within
// cfg.BarrierTimeout — and loss beyond maxRestarts abort. Returns the
// final report and the number of restarts taken.
func ExecuteWithRecovery(ctx context.Context, cfg Config, plan ShardPlan, maxRestarts int, shardOpts func(attempt, shard int) ShardOptions) (*Report, int, error) {
	if plan == nil {
		return nil, 0, errors.New("dist: nil shard plan")
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt, fmt.Errorf("dist: cancelled before attempt %d: %w", attempt, err)
		}
		var perShard func(i int) ShardOptions
		if shardOpts != nil {
			a := attempt
			perShard = func(i int) ShardOptions { return shardOpts(a, i) }
		}
		rep, err := RunCluster(ctx, cfg, plan(attempt), perShard)
		if err == nil {
			return rep, attempt, nil
		}
		var lost *ShardLostError
		if !errors.As(err, &lost) || attempt >= maxRestarts {
			return nil, attempt, err
		}
		// attempt is 0-based, so the restart about to happen is number
		// attempt+1 of the maxRestarts the budget allows.
		cfg.logf("dist: restarting after %v (restart %d of %d, next session %d workers)",
			err, attempt+1, maxRestarts, plan(attempt+1))
	}
}
