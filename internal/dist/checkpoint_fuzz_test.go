package dist

// Checkpoint-object fuzzing: delta blobs and chained manifests come
// back from a blob store the coordinator does not control, so both
// decoders must be panic-free and over-read-free on arbitrary bytes.
// Valid seeds double as round-trip regressions: whatever decodes from
// a freshly encoded object must re-encode to the identical sealed
// payload.

import (
	"bytes"
	"testing"
)

// fuzzBlobSeeds builds representative shard blobs: full, delta with a
// parent link, aux-carrying, and pending-only.
func fuzzBlobSeeds() [][]byte {
	return [][]byte{
		(&shardBlob{Superstep: 2, Shard: 0, Full: true, Parent: 0,
			Vertex: []int32{0, 4, 8}, Value: []float64{0.1, 0.2, 0.3},
			Active:  []bool{true, false, true},
			PendDst: []int32{4}, PendVal: []float64{0.5}}).encode(),
		(&shardBlob{Superstep: 5, Shard: 1, Full: false, Parent: 4,
			Vertex: []int32{12}, Value: []float64{7}, Active: []bool{true}}).encode(),
		(&shardBlob{Superstep: 3, Shard: 2, Full: true,
			AuxVtx: []int32{1, 5}, Aux: [][]byte{{1, 2, 3}, {}}}).encode(),
		(&shardBlob{Superstep: 1, Shard: 0, Full: true}).encode(),
	}
}

// FuzzDecodeShardBlob asserts the blob decoder never panics and that
// every successfully decoded blob re-encodes to the same sealed bytes
// — the canonical-form property the chain CRCs rely on.
func FuzzDecodeShardBlob(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	for _, seed := range fuzzBlobSeeds() {
		f.Add(seed)
		// A flipped mid-payload bit must be caught by the seal.
		bad := append([]byte(nil), seed...)
		bad[len(bad)/2] ^= 0x10
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeShardBlob(data)
		if err != nil {
			return
		}
		if len(b.Value) != len(b.Vertex) || len(b.Active) != len(b.Vertex) ||
			len(b.PendVal) != len(b.PendDst) || len(b.Aux) != len(b.AuxVtx) {
			t.Fatalf("decoded blob with mismatched section lengths: %+v", b)
		}
		if !bytes.Equal(b.encode(), data) {
			t.Fatal("decoded blob does not re-encode to the original sealed payload")
		}
	})
}

// FuzzDecodeManifest asserts the manifest decoder never panics, keeps
// the chain-link invariants (a delta's parent precedes it, a full root
// has depth 0), and round-trips to the identical sealed payload.
func FuzzDecodeManifest(f *testing.F) {
	full := &manifest{Job: "j", Superstep: 2, Shards: 2,
		Program: `{"Name":"pagerank","Iterations":10}`, Graph: `{"Scale":8,"Seed":7}`,
		Canonical: true,
		Aggs:      aggPairs{Names: []string{"sum"}, Vals: []float64{1.5}},
		BlobKeys:  []string{"dist/j/ckpt/00000002/shard-000", "dist/j/ckpt/00000002/shard-001"},
		Parent:    -1, Chain: 0}
	delta := &manifest{Job: "j", Superstep: 3, Shards: 2,
		Program: full.Program, Graph: full.Graph, Canonical: true,
		BlobKeys: []string{"dist/j/ckpt/00000003/shard-000", "dist/j/ckpt/00000003/shard-001"},
		Parent:   2, Chain: 1, ParentCRC: 0xDEADBEEF}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	for _, m := range []*manifest{full, delta} {
		seed := m.encodeSealed()
		f.Add(seed)
		bad := append([]byte(nil), seed...)
		bad[len(bad)/3] ^= 0x40
		f.Add(bad)
	}
	// An inconsistent link (parent after self) must be rejected even
	// with a valid seal.
	f.Add((&manifest{Job: "j", Superstep: 2, Shards: 1, Parent: 5, Chain: 1}).encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.Parent >= 0 && (m.Parent >= m.Superstep || m.Chain < 1 || m.Chain > maxChainDepth) {
			t.Fatalf("decoder admitted an inconsistent chain link: parent %d chain %d superstep %d",
				m.Parent, m.Chain, m.Superstep)
		}
		if m.Parent < 0 && m.Chain != 0 {
			t.Fatalf("decoder admitted a full manifest at chain depth %d", m.Chain)
		}
		if !bytes.Equal(m.encode(), data) {
			t.Fatal("decoded manifest does not re-encode to the original sealed payload")
		}
	})
}
