package dist

// Peer-dial retry tests: a standby or slow-booting peer binds its
// listener late, and the mesh's bounded, jittered dial retry is what
// keeps the session alive across that window. The failing-first half
// proves the retry is load-bearing: with a single attempt the same
// schedule kills the connect.

import (
	"context"
	"net"
	"testing"
	"time"

	"hourglass/internal/cloud"
)

// reservePort grabs a loopback port and releases it, so a test can
// bring a listener up on a known address *later*.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// lateListener binds addr after delay and swallows one inbound peer
// connection (reading its hello) so a successful dial completes.
func lateListener(t *testing.T, addr string, delay time.Duration, done chan<- error) {
	time.Sleep(delay)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		done <- err
		return
	}
	defer ln.Close()
	conn, err := ln.Accept()
	if err != nil {
		done <- err
		return
	}
	defer conn.Close()
	_, _, _, err = readFrame(conn)
	done <- err
}

// TestPeerDialRetriesSlowPeer: the peer's listener comes up 500 ms
// after the dialing shard starts connecting. The retry schedule (6
// attempts, exponential backoff reaching past that window) must carry
// the connect to success.
func TestPeerDialRetriesSlowPeer(t *testing.T) {
	m, err := newPeerMesh("")
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	peerAddr := reservePort(t)
	done := make(chan error, 1)
	go lateListener(t, peerAddr, 500*time.Millisecond, done)

	begin := time.Now()
	if err := m.connect(context.Background(), 0, []string{m.addr(), peerAddr}); err != nil {
		t.Fatalf("connect across a 500ms listener gap: %v", err)
	}
	if elapsed := time.Since(begin); elapsed < 400*time.Millisecond {
		t.Fatalf("connect returned in %v — it cannot have waited for the late listener", elapsed)
	}
	if err := <-done; err != nil {
		t.Fatalf("late peer never saw the hello: %v", err)
	}
}

// TestPeerDialSingleAttemptFails is the failing-first counterpart:
// with the retry policy cut to one attempt, the identical late-listener
// schedule must kill the connect — proof the bounded retry (and not
// some hidden OS-level grace) is what absorbs slow peers.
func TestPeerDialSingleAttemptFails(t *testing.T) {
	saved := peerDialPolicy
	peerDialPolicy = cloud.RetryPolicy{Attempts: 1, Base: 0.1, Factor: 2, Jitter: 0.5}
	defer func() { peerDialPolicy = saved }()

	m, err := newPeerMesh("")
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	peerAddr := reservePort(t)
	if err := m.connect(context.Background(), 0, []string{m.addr(), peerAddr}); err == nil {
		t.Fatal("single-attempt dial to an unbound port succeeded")
	}
}

// TestPeerDialRetryCancelled: cancelling the session context mid-
// backoff must abort the dial loop promptly instead of sleeping out
// the full schedule against a peer that will never come up.
func TestPeerDialRetryCancelled(t *testing.T) {
	m, err := newPeerMesh("")
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	err = m.connect(ctx, 0, []string{m.addr(), reservePort(t)})
	if err == nil {
		t.Fatal("connect to an unbound port succeeded")
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("cancelled connect held on for %v", elapsed)
	}
}
