package dist

import (
	"context"
	"fmt"
	"testing"

	"hourglass/internal/cloud"
)

// BenchmarkEngineMessagePlaneDist is the loopback-TCP twin of
// internal/engine's BenchmarkEngineMessagePlane: the same programs on
// the same RMAT graph, but every superstep crosses the wire message
// plane (frames, CRCs, peer-mesh batch delivery) between in-process
// shards on loopback TCP. The ns/superstep gap between the two
// benchmarks is the price of the process split; the shards=2/4/8
// spread shows how the mesh scales with fan-out. Numbers feed
// BENCH_ENGINE.json (scripts/bench_engine.sh).
func BenchmarkEngineMessagePlaneDist(b *testing.B) {
	gspec := GraphSpec{Scale: 12, Seed: 42, Undirected: true, Weighted: true}
	cases := []struct {
		pspec     ProgramSpec
		canonical bool
	}{
		{ProgramSpec{Name: "pagerank", Iterations: 10}, true},
		{ProgramSpec{Name: "sssp", Source: 0}, false},
		{ProgramSpec{Name: "wcc"}, false},
	}
	for _, tc := range cases {
		for _, shards := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", tc.pspec.Name, shards), func(b *testing.B) {
				b.ReportAllocs()
				var supersteps, frames, bytes int64
				for i := 0; i < b.N; i++ {
					rep, err := RunCluster(context.Background(), Config{
						Job:       fmt.Sprintf("bench-%s-%d", tc.pspec.Name, shards),
						Program:   tc.pspec,
						Graph:     gspec,
						Canonical: tc.canonical,
						Store:     cloud.NewDatastore(),
					}, shards, nil)
					if err != nil {
						b.Fatal(err)
					}
					supersteps += int64(rep.Stats.Supersteps)
					frames += rep.WireFrames
					bytes += rep.WireBytes
				}
				if supersteps > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(supersteps), "ns/superstep")
					b.ReportMetric(float64(frames)/float64(supersteps), "frames/superstep")
					b.ReportMetric(float64(bytes)/float64(supersteps), "wirebytes/superstep")
				}
			})
		}
	}
}
