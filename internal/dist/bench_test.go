package dist

import (
	"context"
	"fmt"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/obs"
)

// BenchmarkEngineMessagePlaneDist is the loopback-TCP twin of
// internal/engine's BenchmarkEngineMessagePlane: the same programs on
// the same RMAT graph, but every superstep crosses the wire message
// plane (frames, CRCs, peer-mesh batch delivery) between in-process
// shards on loopback TCP. The ns/superstep gap between the two
// benchmarks is the price of the process split; the shards=2/4/8
// spread shows how the mesh scales with fan-out. Numbers feed
// BENCH_ENGINE.json (scripts/bench_engine.sh).
func BenchmarkEngineMessagePlaneDist(b *testing.B) {
	gspec := GraphSpec{Scale: 12, Seed: 42, Undirected: true, Weighted: true}
	cases := []struct {
		pspec     ProgramSpec
		canonical bool
	}{
		{ProgramSpec{Name: "pagerank", Iterations: 10}, true},
		{ProgramSpec{Name: "sssp", Source: 0}, false},
		{ProgramSpec{Name: "wcc"}, false},
	}
	for _, tc := range cases {
		for _, shards := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", tc.pspec.Name, shards), func(b *testing.B) {
				b.ReportAllocs()
				var supersteps, frames, bytes int64
				for i := 0; i < b.N; i++ {
					rep, err := RunCluster(context.Background(), Config{
						Job:       fmt.Sprintf("bench-%s-%d", tc.pspec.Name, shards),
						Program:   tc.pspec,
						Graph:     gspec,
						Canonical: tc.canonical,
						Store:     cloud.NewDatastore(),
					}, shards, nil)
					if err != nil {
						b.Fatal(err)
					}
					supersteps += int64(rep.Stats.Supersteps)
					frames += rep.WireFrames
					bytes += rep.WireBytes
				}
				if supersteps > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(supersteps), "ns/superstep")
					b.ReportMetric(float64(frames)/float64(supersteps), "frames/superstep")
					b.ReportMetric(float64(bytes)/float64(supersteps), "wirebytes/superstep")
				}
			})
		}
	}
}

// BenchmarkCheckpointPlaneDist measures the checkpoint plane at
// every-superstep cadence with an 8-deep delta chain: how many bytes a
// full snapshot costs versus a parent-linked delta. PageRank is the
// worst case (every vertex value changes every iteration, so a delta
// carries the whole state); WCC converges, so its deltas must stay
// materially below the fulls — the benchmark enforces that floor
// itself, and the recorded numbers feed BENCH_ENGINE.json
// (scripts/bench_engine.sh gates both against regression).
func BenchmarkCheckpointPlaneDist(b *testing.B) {
	gspec := GraphSpec{Scale: 12, Seed: 42, Undirected: true, Weighted: true}
	cases := []struct {
		pspec     ProgramSpec
		canonical bool
	}{
		{ProgramSpec{Name: "pagerank", Iterations: 10}, true},
		{ProgramSpec{Name: "wcc"}, false},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/shards=4", tc.pspec.Name), func(b *testing.B) {
			b.ReportAllocs()
			var supersteps, fullBytes, deltaBytes, fulls, deltas int64
			for i := 0; i < b.N; i++ {
				sink := &captureSink{}
				rep, err := RunCluster(context.Background(), Config{
					Job:             fmt.Sprintf("bench-ckpt-%s", tc.pspec.Name),
					Program:         tc.pspec,
					Graph:           gspec,
					Canonical:       tc.canonical,
					CheckpointEvery: 1,
					DeltaChain:      8,
					Store:           cloud.NewDatastore(),
					Sink:            sink,
				}, 4, nil)
				if err != nil {
					b.Fatal(err)
				}
				supersteps += int64(rep.Stats.Supersteps)
				for _, e := range sink.byType(obs.EvCheckpoint) {
					if e.Chain == 0 {
						fullBytes += e.WireBytes
						fulls++
					} else {
						deltaBytes += e.WireBytes
						deltas++
					}
				}
			}
			if fulls == 0 || deltas == 0 {
				b.Fatalf("checkpoint mix fulls=%d deltas=%d, want both", fulls, deltas)
			}
			avgFull := fullBytes / fulls
			avgDelta := deltaBytes / deltas
			if tc.pspec.Name == "wcc" && avgDelta*2 >= avgFull {
				b.Fatalf("wcc avg delta %dB not materially below avg full %dB", avgDelta, avgFull)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(supersteps), "ns/superstep")
			b.ReportMetric(float64(avgFull), "fullbytes/ckpt")
			b.ReportMetric(float64(avgDelta), "deltabytes/ckpt")
		})
	}
}
