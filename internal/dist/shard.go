package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
)

// ShardOptions configure a shard worker.
type ShardOptions struct {
	// Store holds checkpoint blobs (required; a process shard uses a
	// cloud.FSStore rooted at the directory shared with the
	// coordinator).
	Store cloud.BlobStore
	// PeerListen is the listen address for the shard-to-shard data
	// plane ("" = 127.0.0.1:0). The bound address is announced to the
	// coordinator in the hello and redistributed to every peer.
	PeerListen string
	// PeerAdvertise overrides the announced peer address (for
	// multi-machine deployments where the bind address is not the
	// dialable one). "" announces the listener's own address.
	PeerAdvertise string
	// DieAtSuperstep, when > 0, abruptly drops the connection halfway
	// through computing that superstep's worklist — the chaos hook that
	// stands in for a spot eviction killing the process mid-superstep.
	DieAtSuperstep int
	// MuteAtSuperstep, when > 0, computes that superstep normally but
	// never sends the barrier vote, leaving the connection open. It
	// exercises the coordinator's barrier watchdog.
	MuteAtSuperstep int
	// Proc is the worker's self-declared process identity, announced in
	// the hello and attached to the coordinator's shard-loss events
	// ("" = "pid:<os pid>"). Launchers that multiplex workers inside one
	// process set it per worker ("goroutine:0.2").
	Proc string
	// PrefetchJob, when non-empty, warms a read-through blob cache with
	// the job's newest checkpoint chain before the handshake — the
	// warm-standby overlap: a standby worker pulls the restore set while
	// the primary session is still finishing, so welcome-time reload
	// pays only for blobs written after the prefetch (the final
	// in-window delta). Best effort; a failed or useless prefetch just
	// means cold reads.
	PrefetchJob string
	// DropPeersAtSuperstep, when > 0, severs every peer-mesh
	// connection halfway through that superstep's worklist — mid-flush,
	// since staged slots ship as they fill — while keeping the
	// coordinator connection. It exercises the dead-peer path: the
	// broken data plane surfaces as a shard loss and the job recovers
	// from the newest checkpoint.
	DropPeersAtSuperstep int
	// Logf receives diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

// ErrShardDied is returned by RunShard when DieAtSuperstep triggered.
var ErrShardDied = errors.New("dist: shard killed by fault injection")

func (o ShardOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RunShard serves one coordinator session on an established
// connection: handshake, peer-mesh wiring, state build (fresh or
// checkpoint reload), then the superstep protocol until halt or error.
// Cancelling ctx aborts the session wherever it is blocked — coordinator
// frame waits, peer dials and inbox drains all select on ctx.Done — so
// a torn-down cluster leaves no shard goroutine behind.
func RunShard(ctx context.Context, conn net.Conn, opts ShardOptions) error {
	defer conn.Close()
	if opts.Store == nil {
		return errors.New("dist: ShardOptions.Store is required")
	}
	if opts.PrefetchJob != "" {
		ps := newPrefetchStore(opts.Store)
		ps.warm(opts.PrefetchJob)
		opts.Store = ps
	}
	s := &shardSession{
		runCtx: ctx,
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 1<<16),
		bw:     bufio.NewWriterSize(conn, 1<<16),
		opts:   opts,
	}
	return s.run()
}

// Dial connects to a coordinator and serves one session.
func Dial(ctx context.Context, addr string, opts ShardOptions) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dialing coordinator %s: %w", addr, err)
	}
	return RunShard(ctx, conn, opts)
}

// Serve runs sessions against a coordinator address in a loop: each
// completed or broken session is followed by a reconnect, so one shard
// process can serve the successive sessions a recovering job goes
// through. Serve returns when ctx is cancelled, or when a connection
// cannot be established within the retry budget (e.g. the coordinator
// is gone for good).
func Serve(ctx context.Context, addr string, opts ShardOptions) error {
	const (
		retryEvery = 100 * time.Millisecond
		retryFor   = 30 * time.Second
	)
	for {
		var conn net.Conn
		var err error
		deadline := time.Now().Add(retryFor)
		for {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("dist: shard serve loop cancelled: %w", cerr)
			}
			var d net.Dialer
			conn, err = d.DialContext(ctx, "tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("dist: coordinator %s unreachable for %v: %w", addr, retryFor, err)
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("dist: shard serve loop cancelled: %w", ctx.Err())
			case <-time.After(retryEvery):
			}
		}
		if err := RunShard(ctx, conn, opts); err != nil {
			opts.logf("dist: shard session ended: %v", err)
			if ctx.Err() != nil {
				return err
			}
			if errors.Is(err, ErrShardDied) {
				// The injected death is one-shot: the next session (the
				// recovery attempt) must be allowed to finish.
				opts.DieAtSuperstep = 0
			}
			opts.DropPeersAtSuperstep = 0
		}
	}
}

// coordFrame is one frame (or terminal error) off the coordinator
// connection, pumped by a reader goroutine so the session can wait on
// the coordinator and the peer mesh at once.
type coordFrame struct {
	typ     byte
	payload []byte
	err     error
}

// shardSession is the state of one shard over one coordinator session.
// It implements engine.ContextHost, so unmodified engine.Programs run
// against it through the regular Context API.
//
// Inboxes are double-buffered by superstep parity: a message sent
// during superstep S is consumed at S+1 and lands in buffer (S+1)&1.
// The parity index (rather than a single cur/next swap) makes batch
// ingestion independent of where the shard is in its own step
// lifecycle — a peer racing ahead mid-superstep delivers batches
// tagged S into the right buffer while this shard is still computing
// S itself. Arrival accounting (batches counted against the expected
// total announced in EndBatches) is what tells the shard when the
// superstep's inbox is complete, since no central router orders the
// frames any more.
type shardSession struct {
	runCtx context.Context
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	opts   ShardOptions

	mesh    *peerMesh
	coordIn chan coordFrame
	done    chan struct{} // closed when run() returns; unblocks coordReader

	id        int
	shards    int
	canonical bool

	g     *graph.Graph
	prog  engine.Program
	ctx   *engine.Context
	comb  engine.Combiner
	aux   engine.VertexAux // non-nil when the program carries per-vertex aux state
	owner []int32
	owned []graph.VertexID // this shard's vertices, ascending

	values []float64
	active []bool

	// Parity-indexed inbox + worklist state.
	queued [2][]bool
	work   [2][]graph.VertexID
	inVal  [2][]float64   // combiner path: dense folded inbox
	inSet  [2][]bool      //
	inMsgs [2][][]float64 // raw path: per-vertex message lists

	// Remote send staging. Combiner path: the PR 2 dense slots, with
	// the touched destinations recorded per destination shard — the
	// batching unit on the wire. Raw path: per-shard (dst, val) pairs.
	// Either path ships to the owning peer as soon as a destination's
	// staging reaches peerFlushThreshold, overlapping compute with the
	// send; sentTo counts the shipped frames per peer for the barrier
	// vote's delivery accounting.
	accVal []float64
	accSet []bool
	staged [][]graph.VertexID
	outDst [][]int32
	outVal [][]float64
	sentTo []uint64

	aggNames []string // sorted; registered aggregator names
	aggSpec  map[string]engine.AggregatorSpec
	aggView  map[string]float64   // reduced values visible this superstep
	aggList  map[string][]float64 // canonical: raw contributions this step
	aggLocal map[string]float64   // non-canonical: folded partial this step
	aggSeen  map[string]bool

	superstep int
	sent      int64
	calls     int64
	combined  int64
	remote    int64

	// Delta-checkpoint diff base: a snapshot of the owned partition
	// (indexed like s.owned) as of the manifest at baseStep — the resumed
	// manifest after a reload, then each checkpoint this shard wrote.
	// baseStep = -1 means no base (fresh start): the next checkpoint is
	// necessarily full.
	baseStep int
	baseVal  []float64
	baseAct  []bool
	baseAux  [][]byte // nil for auxless programs
}

// send encodes one frame into the write buffer (no flush).
func (s *shardSession) send(typ byte, payload []byte) error {
	_, err := writeFrame(s.bw, typ, payload)
	return err
}

// flush pushes buffered frames onto the wire.
func (s *shardSession) flush() error { return s.bw.Flush() }

// sendInboxed reports the upcoming superstep's frontier plus the
// peer-plane wire counters accumulated since the last report.
func (s *shardSession) sendInboxed(superstep, frontier int) error {
	pf, pb := s.mesh.counters()
	m := inboxedMsg{
		Superstep:  uint32(superstep),
		Frontier:   uint64(frontier),
		PeerFrames: pf,
		PeerBytes:  pb,
	}
	if err := s.send(fInboxed, m.encode()); err != nil {
		return err
	}
	return s.flush()
}

func (s *shardSession) run() error {
	// The peer listener opens before the hello so the announced
	// address is already accepting by the time any peer learns it.
	mesh, err := newPeerMesh(s.opts.PeerListen)
	if err != nil {
		return err
	}
	s.mesh = mesh
	defer mesh.close()
	peerAddr := mesh.addr()
	if s.opts.PeerAdvertise != "" {
		peerAddr = s.opts.PeerAdvertise
	}
	proc := s.opts.Proc
	if proc == "" {
		proc = fmt.Sprintf("pid:%d", os.Getpid())
	}
	if err := s.send(fHello, helloMsg{Version: wireVersion, PeerAddr: peerAddr, Proc: proc}.encode()); err != nil {
		return err
	}
	if err := s.flush(); err != nil {
		return err
	}
	typ, payload, _, err := readFrame(s.br)
	if err != nil {
		return fmt.Errorf("dist: reading welcome: %w", err)
	}
	if typ != fWelcome {
		return fmt.Errorf("dist: expected welcome, got frame type %d", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	if w.Version != wireVersion {
		return fmt.Errorf("dist: coordinator speaks wire version %d, shard speaks %d", w.Version, wireVersion)
	}
	if err := s.init(w); err != nil {
		return err
	}
	if len(w.Peers) != s.shards {
		return fmt.Errorf("dist: welcome names %d peers for %d shards", len(w.Peers), s.shards)
	}
	if err := mesh.connect(s.runCtx, s.id, w.Peers); err != nil {
		return err
	}
	start := int(w.Start)
	if err := s.sendInboxed(start, len(s.work[start&1])); err != nil {
		return err
	}

	s.coordIn = make(chan coordFrame, 4)
	s.done = make(chan struct{})
	defer close(s.done)
	go s.coordReader()
	for {
		// Between supersteps only the coordinator drives the session;
		// peer batches for the next step wait in the mesh's arrival
		// channel until that step's drain. A peer-plane error is
		// likewise consulted only inside a superstep — after halt the
		// mesh tearing down is the normal end of a session.
		var fr coordFrame
		select {
		case fr = <-s.coordIn:
		case <-s.runCtx.Done():
			return fmt.Errorf("dist: shard %d session cancelled: %w", s.id, s.runCtx.Err())
		}
		if fr.err != nil {
			return fmt.Errorf("dist: shard %d: %w", s.id, fr.err)
		}
		switch fr.typ {
		case fCheckpoint:
			req, err := decodeCheckpoint(fr.payload)
			if err != nil {
				return err
			}
			if err := s.checkpoint(req); err != nil {
				return err
			}
		case fProceed:
			p, err := decodeProceed(fr.payload)
			if err != nil {
				return err
			}
			if p.Halt {
				return s.sendValues()
			}
			if err := s.step(p); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: shard %d: unexpected frame type %d", s.id, fr.typ)
		}
	}
}

// coordReader pumps the coordinator connection into coordIn so the
// session can select over it together with the peer mesh.
func (s *shardSession) coordReader() {
	for {
		typ, payload, _, err := readFrame(s.br)
		fr := coordFrame{typ: typ, payload: payload, err: err}
		select {
		case s.coordIn <- fr:
		case <-s.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// init builds the shard's state from the welcome: graph and program
// from their specs, then either a fresh Init pass or a parallel reload
// of the checkpoint blob set (keeping only owned vertices, so the blob
// set may come from a session with a different shard count).
func (s *shardSession) init(w welcomeMsg) error {
	pspec, err := unmarshalProgramSpec(w.Program)
	if err != nil {
		return err
	}
	gspec, err := unmarshalGraphSpec(w.Graph)
	if err != nil {
		return err
	}
	s.prog, err = pspec.New()
	if err != nil {
		return err
	}
	s.g, err = gspec.Build()
	if err != nil {
		return err
	}
	n := s.g.NumVertices()
	s.id, s.shards, s.canonical = int(w.Shard), int(w.Shards), w.Canonical
	if s.shards <= 0 || s.id < 0 || s.id >= s.shards {
		return fmt.Errorf("dist: shard id %d of %d", s.id, s.shards)
	}
	if len(w.Assign) != n {
		return fmt.Errorf("dist: assignment length %d for %d vertices", len(w.Assign), n)
	}
	s.owner = w.Assign
	for v, o := range s.owner {
		if o < 0 || int(o) >= s.shards {
			return fmt.Errorf("dist: vertex %d assigned to shard %d of %d", v, o, s.shards)
		}
		if int(o) == s.id {
			s.owned = append(s.owned, graph.VertexID(v))
		}
	}
	if c, ok := s.prog.(engine.Combiner); ok && !s.canonical {
		s.comb = c
	}
	if aux, ok := s.prog.(engine.AuxState); ok {
		// Every shard initialises the whole-graph aux (it is derived
		// from the topology alone); only owned vertices' entries are
		// ever mutated or checkpointed here, per-vertex via VertexAux.
		va, ok := s.prog.(engine.VertexAux)
		if !ok {
			return fmt.Errorf("dist: program %q carries aux state without per-vertex access", s.prog.Name())
		}
		aux.InitAux(s.g)
		s.aux = va
	}

	s.values = make([]float64, n)
	s.active = make([]bool, n)
	for p := 0; p < 2; p++ {
		s.queued[p] = make([]bool, n)
		if s.comb != nil {
			s.inVal[p] = make([]float64, n)
			s.inSet[p] = make([]bool, n)
		} else {
			s.inMsgs[p] = make([][]float64, n)
		}
	}
	if s.comb != nil {
		s.accVal = make([]float64, n)
		s.accSet = make([]bool, n)
		s.staged = make([][]graph.VertexID, s.shards)
	} else {
		s.outDst = make([][]int32, s.shards)
		s.outVal = make([][]float64, s.shards)
	}
	s.sentTo = make([]uint64, s.shards)

	s.aggSpec = map[string]engine.AggregatorSpec{}
	s.aggView = map[string]float64{}
	if a, ok := s.prog.(engine.Aggregators); ok {
		for _, spec := range a.Aggregators() {
			s.aggSpec[spec.Name] = spec
			s.aggView[spec.Name] = spec.Identity
			s.aggNames = append(s.aggNames, spec.Name)
		}
		sort.Strings(s.aggNames)
	}
	if s.canonical {
		s.aggList = map[string][]float64{}
	} else {
		s.aggLocal = map[string]float64{}
		s.aggSeen = map[string]bool{}
	}
	s.setAggView(w.Aggs)
	s.ctx = engine.NewHostContext(s)

	start := int(w.Start)
	par := start & 1
	s.baseStep = -1
	if len(w.BlobKeys) == 0 {
		// Fresh start: Init every vertex (bundled programs derive values
		// from the graph alone, so non-owned values are consistent too);
		// only owned vertices join the worklist.
		for v := 0; v < n; v++ {
			val, act := s.prog.Init(s.g, graph.VertexID(v))
			s.values[v] = val
			if int(s.owner[v]) == s.id {
				s.active[v] = act
				if act {
					s.enqueue(par, graph.VertexID(v))
				}
			}
		}
		return nil
	}
	// Resume: reload the blob set and keep what we own. Every shard
	// does this concurrently — the §6 parallel micro-partition reload —
	// and because filtering is by the *current* assignment, the blob
	// set may have been written under a different shard count. The key
	// list is a whole manifest chain, oldest manifest first: fetches
	// and decodes run in parallel, application is sequential in chain
	// order so newer (delta) blobs overlay ancestor state per vertex.
	// Pending inboxes are never delta-encoded and only the resume
	// superstep's are live, so they apply only from blobs written at
	// `start`; worklist enqueues wait until the overlay has settled
	// every owned vertex's final activity.
	blobs := make([]*shardBlob, len(w.BlobKeys))
	errs := make([]error, len(w.BlobKeys))
	var wg sync.WaitGroup
	for bi, key := range w.BlobKeys {
		wg.Add(1)
		go func(bi int, key string) {
			defer wg.Done()
			data, _, err := s.opts.Store.Get(key)
			if err != nil {
				errs[bi] = fmt.Errorf("dist: shard %d loading blob %q: %w", s.id, key, err)
				return
			}
			blob, err := decodeShardBlob(data)
			if err != nil {
				errs[bi] = fmt.Errorf("dist: shard %d blob %q: %w", s.id, key, err)
				return
			}
			blobs[bi] = blob
		}(bi, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for bi, blob := range blobs {
		key := w.BlobKeys[bi]
		for i, vtx := range blob.Vertex {
			if vtx < 0 || int(vtx) >= n {
				return fmt.Errorf("dist: blob %q names vertex %d of %d", key, vtx, n)
			}
			s.values[vtx] = blob.Value[i]
			if int(s.owner[vtx]) == s.id {
				s.active[vtx] = blob.Active[i]
			}
		}
		if blob.Superstep == start {
			for i, d := range blob.PendDst {
				if d < 0 || int(d) >= n {
					return fmt.Errorf("dist: blob %q pending for vertex %d of %d", key, d, n)
				}
				if int(s.owner[d]) == s.id {
					s.deliverLocal(par, graph.VertexID(d), blob.PendVal[i], false)
				}
			}
		}
		if len(blob.AuxVtx) > 0 && s.aux == nil {
			return fmt.Errorf("dist: blob %q carries aux state for auxless program %q", key, s.prog.Name())
		}
		for i, vtx := range blob.AuxVtx {
			if vtx < 0 || int(vtx) >= n {
				return fmt.Errorf("dist: blob %q aux for vertex %d of %d", key, vtx, n)
			}
			if int(s.owner[vtx]) != s.id {
				continue
			}
			if err := s.aux.UnmarshalVertexAux(graph.VertexID(vtx), blob.Aux[i]); err != nil {
				return fmt.Errorf("dist: blob %q aux for vertex %d: %w", key, vtx, err)
			}
		}
	}
	for _, v := range s.owned {
		if s.active[v] {
			s.enqueue(par, v)
		}
	}
	s.snapshotBase(start)
	return nil
}

// snapshotBase records the owned partition's current state as the diff
// base for the next delta checkpoint — called after a reload (base =
// the resumed manifest) and after every blob this shard writes.
func (s *shardSession) snapshotBase(step int) {
	s.baseStep = step
	if s.baseVal == nil {
		s.baseVal = make([]float64, len(s.owned))
		s.baseAct = make([]bool, len(s.owned))
	}
	if s.aux != nil && s.baseAux == nil {
		s.baseAux = make([][]byte, len(s.owned))
	}
	for i, v := range s.owned {
		s.baseVal[i] = s.values[v]
		s.baseAct[i] = s.active[v]
		if s.aux != nil {
			s.baseAux[i] = append([]byte(nil), s.aux.MarshalVertexAux(v)...)
		}
	}
}

// enqueue adds v to the parity-par worklist once.
func (s *shardSession) enqueue(par int, v graph.VertexID) {
	if !s.queued[par][v] {
		s.queued[par][v] = true
		s.work[par] = append(s.work[par], v)
	}
}

// deliverLocal folds or appends one message for an owned vertex into
// the parity-par inbox. countCombine controls whether a slot fold
// increments the combined-before-send counter (true only for sends
// originating on this shard).
func (s *shardSession) deliverLocal(par int, dst graph.VertexID, val float64, countCombine bool) {
	if s.comb != nil {
		if s.inSet[par][dst] {
			s.inVal[par][dst] = s.comb.Combine(s.inVal[par][dst], val)
			if countCombine {
				s.combined++
			}
		} else {
			s.inSet[par][dst] = true
			s.inVal[par][dst] = val
			s.enqueue(par, dst)
		}
		return
	}
	if len(s.inMsgs[par][dst]) == 0 {
		s.enqueue(par, dst)
	}
	s.inMsgs[par][dst] = append(s.inMsgs[par][dst], val)
}

// Graph implements engine.ContextHost.
func (s *shardSession) Graph() *graph.Graph { return s.g }

// Value implements engine.ContextHost.
func (s *shardSession) Value(v graph.VertexID) float64 { return s.values[v] }

// SetValue implements engine.ContextHost.
func (s *shardSession) SetValue(v graph.VertexID, x float64) { s.values[v] = x }

// VoteToHalt implements engine.ContextHost.
func (s *shardSession) VoteToHalt(v graph.VertexID) { s.active[v] = false }

// Send implements engine.ContextHost: local messages go straight into
// the next-parity inbox; remote messages fold into the dense combining
// slot for their destination (or the raw outbox under canonical mode),
// and ship to the owning peer as soon as the destination's staging
// fills — compute and communication overlap instead of serialising.
// A vertex whose slot already shipped simply opens a new slot; the
// receiver folds the partials with the same Combine, so the split is
// invisible (and under canonical mode raw terms are sorted at the
// destination regardless of how they were chunked).
func (s *shardSession) Send(dst graph.VertexID, val float64) {
	to := s.owner[dst]
	np := (s.superstep + 1) & 1
	if int(to) == s.id {
		s.deliverLocal(np, dst, val, true)
	} else {
		if s.comb != nil {
			if s.accSet[dst] {
				s.accVal[dst] = s.comb.Combine(s.accVal[dst], val)
				s.combined++
			} else {
				s.accSet[dst] = true
				s.accVal[dst] = val
				s.staged[to] = append(s.staged[to], dst)
				if len(s.staged[to]) >= peerFlushThreshold {
					s.shipCombined(int(to))
				}
			}
		} else {
			s.outDst[to] = append(s.outDst[to], int32(dst))
			s.outVal[to] = append(s.outVal[to], val)
			if len(s.outDst[to]) >= peerFlushThreshold {
				s.shipRaw(int(to))
			}
		}
		s.remote++
	}
	s.sent++
}

// Aggregate implements engine.ContextHost, mirroring the engine's two
// reduction modes: canonical keeps raw terms for the coordinator's
// value-sorted fold, otherwise contributions fold locally and the
// coordinator merges one partial per shard.
func (s *shardSession) Aggregate(name string, val float64) {
	spec, ok := s.aggSpec[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	if s.canonical {
		s.aggList[name] = append(s.aggList[name], val)
		return
	}
	if s.aggSeen[name] {
		s.aggLocal[name] = spec.Reduce(s.aggLocal[name], val)
	} else {
		s.aggSeen[name] = true
		s.aggLocal[name] = val
	}
}

// AggregatedValue implements engine.ContextHost.
func (s *shardSession) AggregatedValue(name string) float64 {
	v, ok := s.aggView[name]
	if !ok {
		panic(fmt.Sprintf("engine: unregistered aggregator %q", name))
	}
	return v
}

// setAggView overlays coordinator-reduced aggregator values.
func (s *shardSession) setAggView(a aggPairs) {
	for i, name := range a.Names {
		if _, ok := s.aggSpec[name]; ok {
			s.aggView[name] = a.Vals[i]
		}
	}
}

// shipCombined serialises the staged combining slots for peer `to`
// into one batch frame and hands it to the peer writer. The slots are
// reset so staging continues immediately — the double buffer's
// compute-side half.
func (s *shardSession) shipCombined(to int) {
	stagedTo := s.staged[to]
	if len(stagedTo) == 0 {
		return
	}
	dsts := make([]int32, len(stagedTo))
	vals := make([]float64, len(stagedTo))
	for i, v := range stagedTo {
		dsts[i] = int32(v)
		vals[i] = s.accVal[v]
		s.accSet[v] = false
	}
	s.staged[to] = stagedTo[:0]
	s.ship(to, dsts, vals)
}

// shipRaw serialises the staged raw message terms for peer `to`.
func (s *shardSession) shipRaw(to int) {
	if len(s.outDst[to]) == 0 {
		return
	}
	dsts, vals := s.outDst[to], s.outVal[to]
	s.ship(to, dsts, vals)
	s.outDst[to] = dsts[:0]
	s.outVal[to] = vals[:0]
}

// ship frames one batch for peer `to` and counts it for the barrier
// vote's per-peer delivery accounting.
func (s *shardSession) ship(to int, dsts []int32, vals []float64) {
	m := batchMsg{
		Superstep: uint32(s.superstep),
		From:      uint32(s.id),
		To:        uint32(to),
		Dst:       dsts,
		Val:       vals,
	}
	s.mesh.send(to, m.encode())
	s.sentTo[to]++
}

// flushRemaining ships whatever is still staged for every peer — the
// tail the threshold flushes did not cover.
func (s *shardSession) flushRemaining() {
	for to := 0; to < s.shards; to++ {
		if to == s.id {
			continue
		}
		if s.comb != nil {
			s.shipCombined(to)
		} else {
			s.shipRaw(to)
		}
	}
}

// step executes one superstep: compute the sorted owned worklist with
// staged slots shipping to peers as they fill, vote at the barrier
// with per-peer batch counts, drain the peer mesh until the expected
// arrivals for S are all in, then report the next frontier.
func (s *shardSession) step(p proceedMsg) error {
	S := int(p.Superstep)
	par, npar := S&1, (S+1)&1
	s.superstep = S
	s.setAggView(p.Aggs)
	s.ctx.SetSuperstep(S)

	work := s.work[par]
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	die := s.opts.DieAtSuperstep > 0 && S == s.opts.DieAtSuperstep
	drop := s.opts.DropPeersAtSuperstep > 0 && S == s.opts.DropPeersAtSuperstep
	if die && len(work) == 0 {
		s.conn.Close()
		return fmt.Errorf("%w (shard %d, superstep %d)", ErrShardDied, s.id, S)
	}
	for i, v := range work {
		if i >= (len(work)+1)/2 {
			if die {
				// Mid-superstep death: drop the connection with the worklist
				// half-consumed and batches partially shipped — exactly what
				// a spot eviction does to a worker process.
				s.conn.Close()
				return fmt.Errorf("%w (shard %d, superstep %d)", ErrShardDied, s.id, S)
			}
			if drop {
				// Mid-flush peer partition: the data plane dies under a
				// live control connection. Subsequent ships fail on the
				// writer goroutine and surface below.
				drop = false
				s.mesh.dropConns()
			}
		}
		s.queued[par][v] = false
		msgs := s.consume(par, v)
		s.active[v] = true // message receipt reactivates
		s.prog.Compute(s.ctx, v, msgs)
		s.calls++
		if s.active[v] && !s.queued[npar][v] {
			s.queued[npar][v] = true
			s.work[npar] = append(s.work[npar], v)
		}
	}
	s.work[par] = work[:0]

	if s.opts.MuteAtSuperstep > 0 && S == s.opts.MuteAtSuperstep {
		// Stop voting: hold the connection open but never send the
		// barrier. The coordinator's watchdog must declare us dead.
		for {
			select {
			case fr := <-s.coordIn:
				if fr.err != nil {
					return fmt.Errorf("dist: shard %d muted at superstep %d: %w", s.id, S, fr.err)
				}
			case <-s.mesh.in:
			case <-s.mesh.errc:
			case <-s.runCtx.Done():
				return fmt.Errorf("dist: shard %d session cancelled: %w", s.id, s.runCtx.Err())
			}
		}
	}

	s.flushRemaining()
	if err := s.sendBarrier(S); err != nil {
		return err
	}
	if err := s.flush(); err != nil {
		return err
	}

	// Drain the peer mesh until the coordinator's EndBatches names the
	// expected arrival count for S and that many batches have landed.
	// Batches may well all arrive before the barrier fold completes —
	// they flowed peer-to-peer while everyone was still computing.
	var arrived, expect uint64
	haveEnd := false
	for !haveEnd || arrived < expect {
		select {
		case fr := <-s.coordIn:
			if fr.err != nil {
				return fmt.Errorf("dist: shard %d awaiting batches: %w", s.id, fr.err)
			}
			if fr.typ != fEndBatches {
				return fmt.Errorf("dist: shard %d: unexpected frame type %d during superstep %d", s.id, fr.typ, S)
			}
			end, err := decodeEndBatches(fr.payload)
			if err != nil {
				return err
			}
			if int(end.Superstep) != S {
				return fmt.Errorf("dist: shard %d: end-of-batches for superstep %d during %d", s.id, end.Superstep, S)
			}
			expect, haveEnd = end.Expect, true
			if arrived > expect {
				return fmt.Errorf("dist: shard %d: %d batches for superstep %d, expected %d", s.id, arrived, S, expect)
			}
		case b := <-s.mesh.in:
			if int(b.Superstep) != S {
				return fmt.Errorf("dist: shard %d: batch for superstep %d during %d", s.id, b.Superstep, S)
			}
			if err := s.ingestBatch(b); err != nil {
				return err
			}
			arrived++
			if haveEnd && arrived > expect {
				return fmt.Errorf("dist: shard %d: %d batches for superstep %d, expected %d", s.id, arrived, S, expect)
			}
		case err := <-s.mesh.errc:
			return fmt.Errorf("dist: shard %d: peer plane failed during superstep %d: %w", s.id, S, err)
		case <-s.runCtx.Done():
			return fmt.Errorf("dist: shard %d inbox drain cancelled during superstep %d: %w", s.id, S, s.runCtx.Err())
		}
	}
	return s.sendInboxed(S+1, len(s.work[npar]))
}

// consume returns v's inbox for this superstep and clears it. Under
// canonical mode the message multiset is sorted ascending, so Compute
// folds it independently of arrival order — the distributed half of
// the engine's bit-identity guarantee.
func (s *shardSession) consume(par int, v graph.VertexID) []float64 {
	if s.comb != nil {
		if s.inSet[par][v] {
			s.inSet[par][v] = false
			return s.inVal[par][v : v+1]
		}
		return nil
	}
	msgs := s.inMsgs[par][v]
	s.inMsgs[par][v] = msgs[:0]
	if s.canonical && len(msgs) > 1 {
		sort.Float64s(msgs)
	}
	return msgs
}

// ingestBatch folds a peer batch into the inbox of the superstep
// after the batch's tag.
func (s *shardSession) ingestBatch(b batchMsg) error {
	if int(b.To) != s.id {
		return fmt.Errorf("dist: shard %d received batch for shard %d", s.id, b.To)
	}
	par := (int(b.Superstep) + 1) & 1
	n := s.g.NumVertices()
	for i, d := range b.Dst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("dist: batch names vertex %d of %d", d, n)
		}
		dst := graph.VertexID(d)
		if int(s.owner[dst]) != s.id {
			return fmt.Errorf("dist: batch delivers vertex %d owned by shard %d to shard %d", d, s.owner[dst], s.id)
		}
		s.deliverLocal(par, dst, b.Val[i], false)
	}
	return nil
}

// sendBarrier votes compute-done with this step's counters, per-peer
// batch counts and aggregator contributions, then resets the per-step
// counters.
func (s *shardSession) sendBarrier(S int) error {
	m := barrierMsg{
		Superstep: uint32(S),
		Sent:      uint64(s.sent),
		Calls:     uint64(s.calls),
		Combined:  uint64(s.combined),
		Remote:    uint64(s.remote),
		SentTo:    s.sentTo,
	}
	for _, name := range s.aggNames {
		if s.canonical {
			if lst := s.aggList[name]; len(lst) > 0 {
				m.AggNames = append(m.AggNames, name)
				m.Contribs = append(m.Contribs, lst)
				s.aggList[name] = nil
			}
		} else if s.aggSeen[name] {
			m.AggNames = append(m.AggNames, name)
			m.Contribs = append(m.Contribs, []float64{s.aggLocal[name]})
			delete(s.aggSeen, name)
		}
	}
	err := s.send(fBarrier, m.encode())
	s.sent, s.calls, s.combined, s.remote = 0, 0, 0, 0
	for i := range s.sentTo {
		s.sentTo[i] = 0
	}
	return err
}

// checkpoint writes this shard's blob for a resume into req.Superstep:
// owned values and activity, the pending inbox of that superstep's
// parity buffer (delivered but unconsumed — the same snapshot boundary
// engine checkpoints use), and — for VertexAux programs — each owned
// vertex's auxiliary state. Checkpoints run in the quiescent window
// after every shard's frontier report, so no batch is in flight.
//
// A delta request with a matching diff base encodes only owned
// vertices whose value/activity/aux changed since the base (the
// pending inbox stays complete — it has no stable identity to diff);
// a stale or missing base falls back to a full blob, flagged in the
// ack. Either way the written blob becomes the next diff base.
func (s *shardSession) checkpoint(req checkpointMsg) error {
	par := int(req.Superstep) & 1
	asDelta := req.Delta && s.baseStep >= 0 && s.baseStep == int(req.Parent)
	blob := &shardBlob{
		Superstep: int(req.Superstep),
		Shard:     s.id,
		Full:      !asDelta,
		Parent:    int(req.Parent),
	}
	var aux []byte
	for i, v := range s.owned {
		if s.aux != nil {
			aux = s.aux.MarshalVertexAux(v)
		}
		if asDelta {
			if s.values[v] == s.baseVal[i] && s.active[v] == s.baseAct[i] &&
				(s.aux == nil || bytes.Equal(aux, s.baseAux[i])) {
				continue
			}
		}
		blob.Vertex = append(blob.Vertex, int32(v))
		blob.Value = append(blob.Value, s.values[v])
		blob.Active = append(blob.Active, s.active[v])
		if s.aux != nil {
			blob.AuxVtx = append(blob.AuxVtx, int32(v))
			blob.Aux = append(blob.Aux, append([]byte(nil), aux...))
		}
	}
	for _, v := range s.owned {
		if s.comb != nil {
			if s.inSet[par][v] {
				blob.PendDst = append(blob.PendDst, int32(v))
				blob.PendVal = append(blob.PendVal, s.inVal[par][v])
			}
		} else {
			for _, val := range s.inMsgs[par][v] {
				blob.PendDst = append(blob.PendDst, int32(v))
				blob.PendVal = append(blob.PendVal, val)
			}
		}
	}
	data := blob.encode()
	ack := checkpointAckMsg{Superstep: req.Superstep, Bytes: uint64(len(data)), Full: req.Delta && !asDelta}
	if _, err := s.opts.Store.Put(req.Key, data); err != nil {
		ack.Err = err.Error()
		s.opts.logf("dist: shard %d checkpoint %q failed: %v", s.id, req.Key, err)
	} else {
		s.snapshotBase(int(req.Superstep))
	}
	if err := s.send(fCheckpointAck, ack.encode()); err != nil {
		return err
	}
	return s.flush()
}

// sendValues reports the owned final values and ends the session.
func (s *shardSession) sendValues() error {
	m := valuesMsg{
		Vertex: make([]int32, len(s.owned)),
		Val:    make([]float64, len(s.owned)),
	}
	for i, v := range s.owned {
		m.Vertex[i] = int32(v)
		m.Val[i] = s.values[v]
	}
	if err := s.send(fValues, m.encode()); err != nil {
		return err
	}
	return s.flush()
}
