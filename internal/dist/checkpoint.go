package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"hourglass/internal/cloud"
)

// Checkpoint layout in the blob store, namespaced per job:
//
//	dist/<job>/ckpt/<superstep %08d>/shard-<i %03d>   per-shard state blob
//	dist/<job>/ckpt/<superstep %08d>/manifest         coordinator manifest
//	dist/<job>/latest                                 → newest manifest key
//
// Each shard uploads its own blob (owned vertex values + activity +
// the pending inbox of the resume superstep); the coordinator seals
// the set with a manifest once every ack is in, then flips the latest
// pointer. Recovery reads the manifest and hands every shard the full
// blob list: shards reload all blobs in parallel and keep what they
// own, so a session can resume under a different shard count — the
// paper's §6 micro-partition reload across configurations.
//
// Blobs and manifests carry the engine checkpoint CRC trailer scheme
// (magic + CRC32 over the payload), so a corrupt or truncated object
// is detected and the coordinator falls back to the next-older
// manifest whose whole blob set validates, mirroring
// engine.CheckpointManager's fallback scan.

// distMagic seals dist checkpoint objects ("HGDS").
const distMagic = uint32(0x48474453)

// sealTrailerLen is the magic + CRC32 trailer size.
const sealTrailerLen = 8

// ErrCorruptObject reports a dist checkpoint object that fails CRC or
// structural validation.
var ErrCorruptObject = errors.New("dist: corrupt checkpoint object")

// ErrNoCheckpoint reports an empty namespace (fresh job).
var ErrNoCheckpoint = errors.New("dist: no checkpoint available")

// seal appends the magic + CRC32 trailer.
func seal(payload []byte) []byte {
	out := make([]byte, len(payload)+sealTrailerLen)
	copy(out, payload)
	binary.LittleEndian.PutUint32(out[len(payload):], distMagic)
	binary.LittleEndian.PutUint32(out[len(payload)+4:], crc32.ChecksumIEEE(payload))
	return out
}

// unseal validates and strips the trailer.
func unseal(blob []byte) ([]byte, error) {
	if len(blob) < sealTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptObject, len(blob))
	}
	payload, trailer := blob[:len(blob)-sealTrailerLen], blob[len(blob)-sealTrailerLen:]
	if binary.LittleEndian.Uint32(trailer[:4]) != distMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorruptObject)
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: CRC32 mismatch", ErrCorruptObject)
	}
	return payload, nil
}

// namespacePrefix is the root of a job's dist keys.
func namespacePrefix(job string) string { return fmt.Sprintf("dist/%s/", job) }

// latestPointerKey tracks the newest sealed manifest.
func latestPointerKey(job string) string { return fmt.Sprintf("dist/%s/latest", job) }

// manifestKey names the manifest for a resume superstep.
func manifestKey(job string, superstep int) string {
	return fmt.Sprintf("dist/%s/ckpt/%08d/manifest", job, superstep)
}

// shardBlobKey names one shard's state blob.
func shardBlobKey(job string, superstep, shard int) string {
	return fmt.Sprintf("dist/%s/ckpt/%08d/shard-%03d", job, superstep, shard)
}

// shardBlob is one shard's checkpointed partition state: the values
// and activity of its owned vertices, the pending inbox of the
// superstep the blob resumes into, and — for engine.VertexAux
// programs — each owned vertex's auxiliary state so a resume (possibly
// under a different shard count) overlays them onto a fresh InitAux.
type shardBlob struct {
	Superstep int
	Shard     int
	Vertex    []int32
	Value     []float64
	Active    []bool
	PendDst   []int32
	PendVal   []float64
	AuxVtx    []int32
	Aux       [][]byte
}

func (b *shardBlob) encode() []byte {
	var w wbuf
	w.u32(uint32(b.Superstep))
	w.u32(uint32(b.Shard))
	w.u32(uint32(len(b.Vertex)))
	for i, v := range b.Vertex {
		w.u32(uint32(v))
		w.f64(b.Value[i])
		w.bool(b.Active[i])
	}
	w.u32(uint32(len(b.PendDst)))
	for i, d := range b.PendDst {
		w.u32(uint32(d))
		w.f64(b.PendVal[i])
	}
	w.u32(uint32(len(b.AuxVtx)))
	for i, v := range b.AuxVtx {
		w.u32(uint32(v))
		w.u32(uint32(len(b.Aux[i])))
		w.b = append(w.b, b.Aux[i]...)
	}
	return seal(w.b)
}

func decodeShardBlob(blob []byte) (*shardBlob, error) {
	payload, err := unseal(blob)
	if err != nil {
		return nil, err
	}
	r := rbuf{b: payload}
	b := &shardBlob{Superstep: int(r.u32()), Shard: int(r.u32())}
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/13+1 {
		return nil, fmt.Errorf("%w: vertex count", ErrCorruptObject)
	}
	b.Vertex = make([]int32, 0, n)
	b.Value = make([]float64, 0, n)
	b.Active = make([]bool, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		b.Vertex = append(b.Vertex, int32(r.u32()))
		b.Value = append(b.Value, r.f64())
		b.Active = append(b.Active, r.bool())
	}
	np := r.u32()
	if r.err != nil || int(np) > r.remaining()/12+1 {
		return nil, fmt.Errorf("%w: pending count", ErrCorruptObject)
	}
	b.PendDst = make([]int32, 0, np)
	b.PendVal = make([]float64, 0, np)
	for i := uint32(0); i < np && r.err == nil; i++ {
		b.PendDst = append(b.PendDst, int32(r.u32()))
		b.PendVal = append(b.PendVal, r.f64())
	}
	na := r.u32()
	if r.err != nil || int(na) > r.remaining()/8+1 {
		return nil, fmt.Errorf("%w: aux count", ErrCorruptObject)
	}
	if na > 0 {
		b.AuxVtx = make([]int32, 0, na)
		b.Aux = make([][]byte, 0, na)
	}
	for i := uint32(0); i < na && r.err == nil; i++ {
		vtx := int32(r.u32())
		bl := r.u32()
		if r.err != nil || int(bl) > r.remaining() {
			return nil, fmt.Errorf("%w: aux blob length", ErrCorruptObject)
		}
		b.AuxVtx = append(b.AuxVtx, vtx)
		b.Aux = append(b.Aux, append([]byte(nil), r.b[r.off:r.off+int(bl)]...))
		r.off += int(bl)
	}
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptObject, err)
	}
	return b, nil
}

// manifest seals one complete checkpoint: which blobs belong to it and
// the aggregator values visible at the resume superstep. Job/program/
// graph specs are embedded so a resuming coordinator can verify it is
// restoring the same computation.
type manifest struct {
	Job       string
	Superstep int
	Shards    int
	Program   string // ProgramSpec JSON
	Graph     string // GraphSpec JSON
	Canonical bool
	Aggs      aggPairs
	BlobKeys  []string
}

func (m *manifest) encode() []byte {
	var w wbuf
	w.str(m.Job)
	w.u32(uint32(m.Superstep))
	w.u32(uint32(m.Shards))
	w.str(m.Program)
	w.str(m.Graph)
	w.bool(m.Canonical)
	w.aggs(m.Aggs)
	w.u32(uint32(len(m.BlobKeys)))
	for _, k := range m.BlobKeys {
		w.str(k)
	}
	return seal(w.b)
}

func decodeManifest(blob []byte) (*manifest, error) {
	payload, err := unseal(blob)
	if err != nil {
		return nil, err
	}
	r := rbuf{b: payload}
	m := &manifest{
		Job:       r.str(),
		Superstep: int(r.u32()),
		Shards:    int(r.u32()),
		Program:   r.str(),
		Graph:     r.str(),
		Canonical: r.bool(),
		Aggs:      r.aggs(),
	}
	nk := r.u32()
	if r.err != nil || int(nk) > r.remaining()/4+1 {
		return nil, fmt.Errorf("%w: blob key count", ErrCorruptObject)
	}
	m.BlobKeys = make([]string, 0, nk)
	for i := uint32(0); i < nk && r.err == nil; i++ {
		m.BlobKeys = append(m.BlobKeys, r.str())
	}
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptObject, err)
	}
	return m, nil
}

// loadManifest fetches and validates one manifest AND every blob it
// references (existence + CRC + per-blob structure). The coordinator
// pays this extra read so a resuming session never welcomes shards
// with a manifest whose blob set cannot actually restore.
func loadManifest(store cloud.BlobStore, key string) (*manifest, error) {
	blob, _, err := store.Get(key)
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(blob)
	if err != nil {
		return nil, err
	}
	for _, bk := range m.BlobKeys {
		data, _, err := store.Get(bk)
		if err != nil {
			return nil, fmt.Errorf("dist: manifest %q references unreadable blob %q: %w", key, bk, err)
		}
		if _, err := decodeShardBlob(data); err != nil {
			return nil, fmt.Errorf("dist: manifest %q references corrupt blob %q: %w", key, bk, err)
		}
	}
	return m, nil
}

// loadLatestManifest resolves the newest restorable checkpoint for a
// job, falling back across older manifests exactly like
// engine.CheckpointManager.Load: a corrupt pointer, manifest or blob
// set is skipped, and only a namespace with nothing restorable returns
// ErrNoCheckpoint.
func loadLatestManifest(store cloud.BlobStore, job string) (*manifest, error) {
	if !store.Exists(latestPointerKey(job)) {
		return nil, ErrNoCheckpoint
	}
	skip := ""
	if ptr, _, err := store.Get(latestPointerKey(job)); err == nil {
		skip = string(ptr)
		if m, err := loadManifest(store, skip); err == nil {
			return m, nil
		}
	}
	// Fallback scan, newest manifest first (keys embed the zero-padded
	// superstep, so lexicographic descending order is newest-first).
	prefix := namespacePrefix(job) + "ckpt/"
	var candidates []string
	for _, k := range store.Keys() {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, "/manifest") && k != skip {
			candidates = append(candidates, k)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(candidates)))
	for _, k := range candidates {
		if m, err := loadManifest(store, k); err == nil {
			return m, nil
		}
	}
	return nil, ErrNoCheckpoint
}

// clearNamespace deletes a job's latest pointer and every checkpoint
// object. Like engine.CheckpointManager.Clear, delete failures are
// collected rather than swallowed so callers can log them.
func clearNamespace(store cloud.BlobStore, job string) error {
	var errs []error
	if err := store.Delete(latestPointerKey(job)); err != nil {
		errs = append(errs, err)
	}
	prefix := namespacePrefix(job)
	for _, k := range store.Keys() {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if err := store.Delete(k); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
