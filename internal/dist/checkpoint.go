package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"hourglass/internal/cloud"
)

// Checkpoint layout in the blob store, namespaced per job:
//
//	dist/<job>/ckpt/<superstep %08d>/shard-<i %03d>   per-shard state blob
//	dist/<job>/ckpt/<superstep %08d>/manifest         coordinator manifest
//	dist/<job>/latest                                 → newest manifest key
//
// Each shard uploads its own blob (owned vertex values + activity +
// the pending inbox of the resume superstep); the coordinator seals
// the set with a manifest once every ack is in, then flips the latest
// pointer. Recovery reads the manifest and hands every shard the full
// blob list: shards reload all blobs in parallel and keep what they
// own, so a session can resume under a different shard count — the
// paper's §6 micro-partition reload across configurations.
//
// Blobs and manifests carry the engine checkpoint CRC trailer scheme
// (magic + CRC32 over the payload), so a corrupt or truncated object
// is detected and the coordinator falls back to the next-older
// manifest whose whole blob set validates, mirroring
// engine.CheckpointManager's fallback scan.
//
// Delta chains (§9 warm standby): a manifest may be a *delta* —
// Parent names the parent manifest's superstep and ParentCRC pins the
// exact parent payload, its shard blobs encode only vertices whose
// value/activity/aux changed since that parent (the pending inbox is
// always complete: it is the resume superstep's live message state and
// has no stable identity to diff against). Restoring a delta resolves
// the chain back to its full root and overlays blob sets oldest-first;
// because the root is always full and overlays are newest-wins per
// vertex, mixed full/delta blobs — and reshards mid-chain — restore
// bit-identically. Chain depth is bounded (Config.DeltaChain forces a
// periodic full), and a corrupt link anywhere invalidates the whole
// candidate so the fallback scan lands on the newest manifest whose
// entire chain validates.

// distMagic seals dist checkpoint objects ("HGDS").
const distMagic = uint32(0x48474453)

// sealTrailerLen is the magic + CRC32 trailer size.
const sealTrailerLen = 8

// ErrCorruptObject reports a dist checkpoint object that fails CRC or
// structural validation.
var ErrCorruptObject = errors.New("dist: corrupt checkpoint object")

// ErrNoCheckpoint reports an empty namespace (fresh job).
var ErrNoCheckpoint = errors.New("dist: no checkpoint available")

// seal appends the magic + CRC32 trailer.
func seal(payload []byte) []byte {
	out := make([]byte, len(payload)+sealTrailerLen)
	copy(out, payload)
	binary.LittleEndian.PutUint32(out[len(payload):], distMagic)
	binary.LittleEndian.PutUint32(out[len(payload)+4:], crc32.ChecksumIEEE(payload))
	return out
}

// unseal validates and strips the trailer.
func unseal(blob []byte) ([]byte, error) {
	if len(blob) < sealTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptObject, len(blob))
	}
	payload, trailer := blob[:len(blob)-sealTrailerLen], blob[len(blob)-sealTrailerLen:]
	if binary.LittleEndian.Uint32(trailer[:4]) != distMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorruptObject)
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: CRC32 mismatch", ErrCorruptObject)
	}
	return payload, nil
}

// namespacePrefix is the root of a job's dist keys.
func namespacePrefix(job string) string { return fmt.Sprintf("dist/%s/", job) }

// latestPointerKey tracks the newest sealed manifest.
func latestPointerKey(job string) string { return fmt.Sprintf("dist/%s/latest", job) }

// manifestKey names the manifest for a resume superstep.
func manifestKey(job string, superstep int) string {
	return fmt.Sprintf("dist/%s/ckpt/%08d/manifest", job, superstep)
}

// shardBlobKey names one shard's state blob.
func shardBlobKey(job string, superstep, shard int) string {
	return fmt.Sprintf("dist/%s/ckpt/%08d/shard-%03d", job, superstep, shard)
}

// shardBlob is one shard's checkpointed partition state: the values
// and activity of its owned vertices, the pending inbox of the
// superstep the blob resumes into, and — for engine.VertexAux
// programs — each owned vertex's auxiliary state so a resume (possibly
// under a different shard count) overlays them onto a fresh InitAux.
//
// A delta blob (Full=false) carries only owned vertices whose
// value/activity/aux changed since the parent manifest at superstep
// Parent; the pending section is always complete for the resume
// superstep. Restores overlay blobs chain-oldest-first, so absent
// vertices inherit ancestor state.
type shardBlob struct {
	Superstep int
	Shard     int
	Full      bool
	Parent    int // parent manifest superstep; meaningful when !Full
	Vertex    []int32
	Value     []float64
	Active    []bool
	PendDst   []int32
	PendVal   []float64
	AuxVtx    []int32
	Aux       [][]byte
}

func (b *shardBlob) encode() []byte {
	var w wbuf
	w.u32(uint32(b.Superstep))
	w.u32(uint32(b.Shard))
	w.bool(b.Full)
	w.u32(uint32(b.Parent))
	w.u32(uint32(len(b.Vertex)))
	for i, v := range b.Vertex {
		w.u32(uint32(v))
		w.f64(b.Value[i])
		w.bool(b.Active[i])
	}
	w.u32(uint32(len(b.PendDst)))
	for i, d := range b.PendDst {
		w.u32(uint32(d))
		w.f64(b.PendVal[i])
	}
	w.u32(uint32(len(b.AuxVtx)))
	for i, v := range b.AuxVtx {
		w.u32(uint32(v))
		w.u32(uint32(len(b.Aux[i])))
		w.b = append(w.b, b.Aux[i]...)
	}
	return seal(w.b)
}

func decodeShardBlob(blob []byte) (*shardBlob, error) {
	payload, err := unseal(blob)
	if err != nil {
		return nil, err
	}
	r := rbuf{b: payload}
	b := &shardBlob{Superstep: int(r.u32()), Shard: int(r.u32())}
	b.Full = r.bool()
	b.Parent = int(r.u32())
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/13+1 {
		return nil, fmt.Errorf("%w: vertex count", ErrCorruptObject)
	}
	b.Vertex = make([]int32, 0, n)
	b.Value = make([]float64, 0, n)
	b.Active = make([]bool, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		b.Vertex = append(b.Vertex, int32(r.u32()))
		b.Value = append(b.Value, r.f64())
		b.Active = append(b.Active, r.bool())
	}
	np := r.u32()
	if r.err != nil || int(np) > r.remaining()/12+1 {
		return nil, fmt.Errorf("%w: pending count", ErrCorruptObject)
	}
	b.PendDst = make([]int32, 0, np)
	b.PendVal = make([]float64, 0, np)
	for i := uint32(0); i < np && r.err == nil; i++ {
		b.PendDst = append(b.PendDst, int32(r.u32()))
		b.PendVal = append(b.PendVal, r.f64())
	}
	na := r.u32()
	if r.err != nil || int(na) > r.remaining()/8+1 {
		return nil, fmt.Errorf("%w: aux count", ErrCorruptObject)
	}
	if na > 0 {
		b.AuxVtx = make([]int32, 0, na)
		b.Aux = make([][]byte, 0, na)
	}
	for i := uint32(0); i < na && r.err == nil; i++ {
		vtx := int32(r.u32())
		bl := r.u32()
		if r.err != nil || int(bl) > r.remaining() {
			return nil, fmt.Errorf("%w: aux blob length", ErrCorruptObject)
		}
		b.AuxVtx = append(b.AuxVtx, vtx)
		b.Aux = append(b.Aux, append([]byte(nil), r.b[r.off:r.off+int(bl)]...))
		r.off += int(bl)
	}
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptObject, err)
	}
	return b, nil
}

// maxChainDepth bounds parent-link walks during recovery so a cyclic
// or absurdly deep chain (corruption, a bug) fails fast instead of
// looping; Config.DeltaChain keeps real chains far shorter.
const maxChainDepth = 64

// manifest seals one complete checkpoint: which blobs belong to it and
// the aggregator values visible at the resume superstep. Job/program/
// graph specs are embedded so a resuming coordinator can verify it is
// restoring the same computation. A delta manifest (Parent >= 0) links
// to its parent by superstep and pins the exact parent payload with
// ParentCRC (the parent's seal CRC); Chain is its distance from the
// full root.
type manifest struct {
	Job       string
	Superstep int
	Shards    int
	Program   string // ProgramSpec JSON
	Graph     string // GraphSpec JSON
	Canonical bool
	Aggs      aggPairs
	BlobKeys  []string
	Parent    int // parent manifest superstep; -1 = full root
	Chain     int // delta depth from the full root (0 = full)
	ParentCRC uint32

	// selfCRC is the CRC32 of this manifest's sealed payload — the value
	// a child's ParentCRC must match. Set by encodeSealed/decodeManifest,
	// never serialized.
	selfCRC uint32
	// chainKeys is the resolved restore list — every chain blob key,
	// oldest manifest first — populated by loadManifest. For a full
	// manifest it equals BlobKeys.
	chainKeys []string
}

func (m *manifest) encode() []byte {
	var w wbuf
	w.str(m.Job)
	w.u32(uint32(m.Superstep))
	w.u32(uint32(m.Shards))
	w.str(m.Program)
	w.str(m.Graph)
	w.bool(m.Canonical)
	w.aggs(m.Aggs)
	w.u32(uint32(len(m.BlobKeys)))
	for _, k := range m.BlobKeys {
		w.str(k)
	}
	w.u32(uint32(m.Parent + 1)) // 0 = full root
	w.u32(uint32(m.Chain))
	w.u32(m.ParentCRC)
	return seal(w.b)
}

// encodeSealed encodes the manifest and reports the seal CRC a child
// delta must carry as ParentCRC (also recorded in m.selfCRC).
func (m *manifest) encodeSealed() []byte {
	blob := m.encode()
	m.selfCRC = binary.LittleEndian.Uint32(blob[len(blob)-4:])
	return blob
}

func decodeManifest(blob []byte) (*manifest, error) {
	payload, err := unseal(blob)
	if err != nil {
		return nil, err
	}
	r := rbuf{b: payload}
	m := &manifest{
		Job:       r.str(),
		Superstep: int(r.u32()),
		Shards:    int(r.u32()),
		Program:   r.str(),
		Graph:     r.str(),
		Canonical: r.bool(),
		Aggs:      r.aggs(),
	}
	nk := r.u32()
	if r.err != nil || int(nk) > r.remaining()/4+1 {
		return nil, fmt.Errorf("%w: blob key count", ErrCorruptObject)
	}
	m.BlobKeys = make([]string, 0, nk)
	for i := uint32(0); i < nk && r.err == nil; i++ {
		m.BlobKeys = append(m.BlobKeys, r.str())
	}
	m.Parent = int(r.u32()) - 1
	m.Chain = int(r.u32())
	m.ParentCRC = r.u32()
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptObject, err)
	}
	if m.Parent >= 0 && (m.Parent >= m.Superstep || m.Chain < 1 || m.Chain > maxChainDepth) {
		return nil, fmt.Errorf("%w: inconsistent chain link (parent %d, chain %d)", ErrCorruptObject, m.Parent, m.Chain)
	}
	if m.Parent < 0 && m.Chain != 0 {
		return nil, fmt.Errorf("%w: full manifest with chain depth %d", ErrCorruptObject, m.Chain)
	}
	m.selfCRC = crc32.ChecksumIEEE(payload)
	return m, nil
}

// loadManifest fetches and validates one manifest AND every blob it
// references (existence + CRC + per-blob structure), then — for a
// delta — resolves and validates the whole parent chain the same way,
// checking each link's ParentCRC against the actual parent payload.
// The coordinator pays this extra read so a resuming session never
// welcomes shards with a manifest whose blob set cannot actually
// restore; m.chainKeys comes back ready to hand out (chain blob keys,
// oldest manifest first).
func loadManifest(store cloud.BlobStore, key string) (*manifest, error) {
	m, err := loadOneManifest(store, key)
	if err != nil {
		return nil, err
	}
	chain := []*manifest{m}
	child := m
	for child.Parent >= 0 {
		if len(chain) > maxChainDepth {
			return nil, fmt.Errorf("%w: manifest chain deeper than %d", ErrCorruptObject, maxChainDepth)
		}
		pkey := manifestKey(child.Job, child.Parent)
		p, err := loadOneManifest(store, pkey)
		if err != nil {
			return nil, fmt.Errorf("dist: manifest %q chain parent %q: %w", key, pkey, err)
		}
		if p.selfCRC != child.ParentCRC {
			return nil, fmt.Errorf("%w: manifest %q parent CRC %08x != %08x", ErrCorruptObject, pkey, p.selfCRC, child.ParentCRC)
		}
		chain = append(chain, p)
		child = p
	}
	if root := chain[len(chain)-1]; root.Parent >= 0 || root.Chain != 0 {
		return nil, fmt.Errorf("%w: manifest chain for %q has no full root", ErrCorruptObject, key)
	}
	m.chainKeys = nil
	for i := len(chain) - 1; i >= 0; i-- {
		m.chainKeys = append(m.chainKeys, chain[i].BlobKeys...)
	}
	return m, nil
}

// loadOneManifest fetches and validates a single manifest and its own
// blob set, without chain resolution. Blob validation runs in parallel:
// chained restores touch many blobs and the standby path is latency-
// sensitive inside the warning window.
func loadOneManifest(store cloud.BlobStore, key string) (*manifest, error) {
	blob, _, err := store.Get(key)
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(blob)
	if err != nil {
		return nil, err
	}
	errs := make([]error, len(m.BlobKeys))
	var wg sync.WaitGroup
	for i, bk := range m.BlobKeys {
		wg.Add(1)
		go func(i int, bk string) {
			defer wg.Done()
			data, _, err := store.Get(bk)
			if err != nil {
				errs[i] = fmt.Errorf("dist: manifest %q references unreadable blob %q: %w", key, bk, err)
				return
			}
			if _, err := decodeShardBlob(data); err != nil {
				errs[i] = fmt.Errorf("dist: manifest %q references corrupt blob %q: %w", key, bk, err)
			}
		}(i, bk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// loadLatestManifest resolves the newest restorable checkpoint for a
// job, falling back across older manifests exactly like
// engine.CheckpointManager.Load: a corrupt pointer, manifest or blob
// set is skipped, and only a namespace with nothing restorable returns
// ErrNoCheckpoint.
func loadLatestManifest(store cloud.BlobStore, job string) (*manifest, error) {
	if !store.Exists(latestPointerKey(job)) {
		return nil, ErrNoCheckpoint
	}
	skip := ""
	if ptr, _, err := store.Get(latestPointerKey(job)); err == nil {
		skip = string(ptr)
		if m, err := loadManifest(store, skip); err == nil {
			return m, nil
		}
	}
	// Fallback scan, newest manifest first (keys embed the zero-padded
	// superstep, so lexicographic descending order is newest-first).
	prefix := namespacePrefix(job) + "ckpt/"
	var candidates []string
	for _, k := range store.Keys() {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, "/manifest") && k != skip {
			candidates = append(candidates, k)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(candidates)))
	for _, k := range candidates {
		if m, err := loadManifest(store, k); err == nil {
			return m, nil
		}
	}
	return nil, ErrNoCheckpoint
}

// clearNamespace deletes a job's latest pointer and every checkpoint
// object. Like engine.CheckpointManager.Clear, delete failures are
// collected rather than swallowed so callers can log them.
func clearNamespace(store cloud.BlobStore, job string) error {
	var errs []error
	if err := store.Delete(latestPointerKey(job)); err != nil {
		errs = append(errs, err)
	}
	prefix := namespacePrefix(job)
	for _, k := range store.Keys() {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if err := store.Delete(k); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
