package dist

import (
	"sync"

	"hourglass/internal/cloud"
	"hourglass/internal/units"
)

// prefetchStore is a read-through blob cache a standby shard wraps its
// store in: while the primary session is still finishing its in-flight
// superstep, the standby warms the cache with the newest checkpoint
// chain so the welcome-time restore pays zero (virtual) download time
// for everything but the final in-window checkpoint. Writes pass
// through and invalidate, so a blob rewritten after prefetch is never
// served stale.
type prefetchStore struct {
	cloud.BlobStore

	mu    sync.Mutex
	cache map[string][]byte
}

func newPrefetchStore(inner cloud.BlobStore) *prefetchStore {
	return &prefetchStore{BlobStore: inner, cache: map[string][]byte{}}
}

// warm resolves the job's newest restorable manifest chain and pulls
// every chain blob plus the manifest objects into the cache. Best
// effort: a job with no checkpoint yet, or any read failure, leaves
// the cache partially filled and the session falls back to cold reads.
func (p *prefetchStore) warm(job string) {
	m, err := loadLatestManifest(p.BlobStore, job)
	if err != nil {
		return
	}
	keys := append([]string(nil), m.chainKeys...)
	keys = append(keys, manifestKey(job, m.Superstep))
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			data, _, err := p.BlobStore.Get(k)
			if err != nil {
				return
			}
			p.mu.Lock()
			p.cache[k] = data
			p.mu.Unlock()
		}(k)
	}
	wg.Wait()
}

// Get serves cached blobs at zero virtual cost and falls through to
// the inner store otherwise.
func (p *prefetchStore) Get(key string) ([]byte, units.Seconds, error) {
	p.mu.Lock()
	data, ok := p.cache[key]
	p.mu.Unlock()
	if ok {
		return append([]byte(nil), data...), 0, nil
	}
	return p.BlobStore.Get(key)
}

// Put invalidates the cached copy before writing through.
func (p *prefetchStore) Put(key string, data []byte) (units.Seconds, error) {
	p.mu.Lock()
	delete(p.cache, key)
	p.mu.Unlock()
	return p.BlobStore.Put(key, data)
}

// Delete invalidates the cached copy before deleting through.
func (p *prefetchStore) Delete(key string) error {
	p.mu.Lock()
	delete(p.cache, key)
	p.mu.Unlock()
	return p.BlobStore.Delete(key)
}
