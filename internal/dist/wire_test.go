package dist

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestFrameRoundTrip drives every message type through its encoder,
// the frame layer and back.
func TestFrameRoundTrip(t *testing.T) {
	welcome := welcomeMsg{
		Version:   wireVersion,
		Shard:     2,
		Shards:    4,
		Canonical: true,
		Start:     6,
		Program:   `{"name":"pagerank","iterations":10}`,
		Graph:     `{"scale":8,"seed":7}`,
		Assign:    []int32{0, 1, 2, 3, 0, 1},
		Aggs:      aggPairs{Names: []string{"dangling"}, Vals: []float64{0.25}},
		BlobKeys:  []string{"dist/j/ckpt/00000006/shard-000", "dist/j/ckpt/00000006/shard-001"},
		Peers:     []string{"127.0.0.1:4001", "127.0.0.1:4002", "127.0.0.1:4003", "127.0.0.1:4004"},
	}
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, fWelcome, welcome.encode()); err != nil {
		t.Fatal(err)
	}
	typ, payload, size, err := readFrame(&buf)
	if err != nil || typ != fWelcome {
		t.Fatalf("readFrame: type %d err %v", typ, err)
	}
	if size != frameHeaderLen+len(welcome.encode()) {
		t.Errorf("size %d, want %d", size, frameHeaderLen+len(welcome.encode()))
	}
	got, err := decodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 2 || got.Shards != 4 || !got.Canonical || got.Start != 6 ||
		got.Program != welcome.Program || len(got.Assign) != 6 || len(got.BlobKeys) != 2 ||
		got.Aggs.Names[0] != "dangling" || got.Aggs.Vals[0] != 0.25 ||
		len(got.Peers) != 4 || got.Peers[2] != "127.0.0.1:4003" {
		t.Fatalf("welcome round trip mismatch: %+v", got)
	}

	batch := batchMsg{Superstep: 3, From: 1, To: 2, Dst: []int32{5, 9}, Val: []float64{0.5, math.Inf(1)}}
	b, _, rest, err := func() (batchMsg, byte, []byte, error) {
		frame := appendFrame(nil, fBatch, batch.encode())
		typ, payload, rest, err := DecodeFrame(frame)
		if err != nil {
			return batchMsg{}, typ, rest, err
		}
		m, err := decodeBatch(payload)
		return m, typ, rest, err
	}()
	if err != nil || len(rest) != 0 {
		t.Fatalf("batch decode: %v (rest %d)", err, len(rest))
	}
	if b.To != 2 || b.Dst[1] != 9 || !math.IsInf(b.Val[1], 1) {
		t.Fatalf("batch round trip mismatch: %+v", b)
	}

	barrier := barrierMsg{Superstep: 3, Sent: 10, Calls: 7, Combined: 4, Remote: 6,
		SentTo:   []uint64{0, 3, 1, 2},
		AggNames: []string{"a", "b"}, Contribs: [][]float64{{1, 2}, {3}}}
	bb, err := decodeBarrier(barrier.encode())
	if err != nil || bb.Combined != 4 || len(bb.Contribs[0]) != 2 || bb.Contribs[1][0] != 3 ||
		len(bb.SentTo) != 4 || bb.SentTo[1] != 3 {
		t.Fatalf("barrier round trip: %+v err %v", bb, err)
	}

	hello := helloMsg{Version: wireVersion, PeerAddr: "127.0.0.1:4100"}
	hh, err := decodeHello(hello.encode())
	if err != nil || hh.PeerAddr != hello.PeerAddr || hh.Version != wireVersion {
		t.Fatalf("hello round trip: %+v err %v", hh, err)
	}

	ph := peerHelloMsg{Version: wireVersion, From: 3}
	pp, err := decodePeerHello(ph.encode())
	if err != nil || pp.From != 3 || pp.Version != wireVersion {
		t.Fatalf("peer hello round trip: %+v err %v", pp, err)
	}

	eb := endBatchesMsg{Superstep: 7, Expect: 42}
	ee, err := decodeEndBatches(eb.encode())
	if err != nil || ee.Superstep != 7 || ee.Expect != 42 {
		t.Fatalf("end-batches round trip: %+v err %v", ee, err)
	}

	ib := inboxedMsg{Superstep: 5, Frontier: 11, PeerFrames: 9, PeerBytes: 4096}
	ii, err := decodeInboxed(ib.encode())
	if err != nil || ii.Frontier != 11 || ii.PeerFrames != 9 || ii.PeerBytes != 4096 {
		t.Fatalf("inboxed round trip: %+v err %v", ii, err)
	}
}

// TestFrameCorruption checks the reader rejects (never misreads)
// damaged frames.
func TestFrameCorruption(t *testing.T) {
	frame := appendFrame(nil, fProceed, proceedMsg{Superstep: 4}.encode())

	for cut := 1; cut < len(frame); cut++ {
		if _, _, _, err := DecodeFrame(frame[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		typ, payload, _, err := DecodeFrame(bad)
		if err != nil {
			continue
		}
		// A flipped bit may still frame correctly only if it kept the
		// CRC valid — impossible for a single-bit flip, except flips in
		// the length prefix that still describe a self-consistent frame;
		// those must at least fail payload decoding.
		if typ == fProceed {
			if _, derr := decodeProceed(payload); derr == nil {
				t.Fatalf("bit flip at %d yielded a decodable proceed frame", i)
			}
		}
	}

	huge := make([]byte, 8)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length prefix: %v, want ErrFrameTooLarge", err)
	}
}

// FuzzDecodeFrame asserts the stream decoder never panics and never
// over-reads: whatever the input, it either fails or consumes exactly
// one well-formed frame. Message decoders run on every successfully
// framed payload, so their bounds checks are in the loop too.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(appendFrame(nil, fHello, helloMsg{Version: wireVersion, PeerAddr: "127.0.0.1:4100"}.encode()))
	f.Add(appendFrame(nil, fPeerHello, peerHelloMsg{Version: wireVersion, From: 2}.encode()))
	f.Add(appendFrame(nil, fEndBatches, endBatchesMsg{Superstep: 4, Expect: 17}.encode()))
	f.Add(appendFrame(nil, fInboxed, inboxedMsg{Superstep: 4, Frontier: 8, PeerFrames: 3, PeerBytes: 2048}.encode()))
	f.Add(appendFrame(nil, fBarrier, barrierMsg{Superstep: 1, SentTo: []uint64{0, 2}}.encode()))
	f.Add(appendFrame(nil, fProceed, proceedMsg{Superstep: 3, Aggs: aggPairs{Names: []string{"x"}, Vals: []float64{1}}}.encode()))
	f.Add(appendFrame(nil, fBatch, batchMsg{Superstep: 1, From: 0, To: 1, Dst: []int32{4}, Val: []float64{0.5}}.encode()))
	f.Add(appendFrame(nil, fBarrier, barrierMsg{Superstep: 2, AggNames: []string{"a"}, Contribs: [][]float64{{1}}}.encode()))
	f.Add(appendFrame(nil, fWelcome, welcomeMsg{Version: 1, Shards: 2, Assign: []int32{0, 1}}.encode()))
	f.Add(appendFrame(nil, fValues, valuesMsg{Vertex: []int32{0}, Val: []float64{3}}.encode()))
	f.Add(appendFrame(nil, fCheckpoint, checkpointMsg{Superstep: 2, Key: "dist/j/ckpt/00000002/shard-000"}.encode()))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if consumed := len(data) - len(rest); consumed < frameHeaderLen || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Every message decoder must be panic-free on arbitrary framed
		// payloads and reject trailing garbage.
		switch typ {
		case fHello:
			_, _ = decodeHello(payload)
		case fPeerHello:
			_, _ = decodePeerHello(payload)
		case fWelcome:
			_, _ = decodeWelcome(payload)
		case fProceed:
			_, _ = decodeProceed(payload)
		case fBatch:
			if m, err := decodeBatch(payload); err == nil && len(m.Dst) != len(m.Val) {
				t.Fatal("batch decoded with mismatched lengths")
			}
		case fBarrier:
			_, _ = decodeBarrier(payload)
		case fEndBatches:
			_, _ = decodeEndBatches(payload)
		case fInboxed:
			_, _ = decodeInboxed(payload)
		case fCheckpoint:
			_, _ = decodeCheckpoint(payload)
		case fCheckpointAck:
			_, _ = decodeCheckpointAck(payload)
		case fValues:
			if m, err := decodeValues(payload); err == nil && len(m.Vertex) != len(m.Val) {
				t.Fatal("values decoded with mismatched lengths")
			}
		}
	})
}
