// Package loader models the three graph-loading strategies compared in
// Figure 6 of the paper on top of the simnet flow simulator:
//
//   - Stream loader: the master node fetches the whole dataset through a
//     single datastore connection (stream-based partitioners need a
//     centralised pass, §6.1).
//   - Hash loader: every worker fetches an arbitrary file chunk in
//     parallel, parses it, then shuffles each vertex to its owner —
//     paying an all-to-all exchange of parsed entities.
//   - Micro loader: every worker fetches exactly its own
//     micro-partitions in parallel; no shuffle at all (the fast-reload
//     path, §6.2 "parallel recovery").
package loader

import (
	"fmt"

	"hourglass/internal/graph"
	"hourglass/internal/simnet"
	"hourglass/internal/units"
)

// Model carries the byte-level cost parameters of loading.
type Model struct {
	// Net configures the simulated cluster and datastore.
	Net simnet.Config
	// VertexBytes and EdgeBytes are the on-disk encoding sizes.
	VertexBytes, EdgeBytes int64
	// EntityExpansion is the in-memory entity size relative to disk
	// bytes; the hash loader shuffles *parsed entities* (§6.1: machines
	// "read and parse the data into in-memory entities ... that are
	// then forwarded over the network").
	EntityExpansion float64
	// ParseRate is per-node parse throughput in disk bytes/second.
	ParseRate float64
	// RPCRate caps per-node shuffle throughput (serialisation-bound
	// entity RPC, the reason hash loading is far slower than raw NIC
	// speed in Giraph-like systems).
	RPCRate float64
}

// DefaultModel matches the calibration constants in DESIGN.md: 16-byte
// on-disk edges, 4× entity expansion, 200 MB/s parse, 60 MB/s entity RPC.
func DefaultModel() Model {
	return Model{
		Net:             simnet.DefaultConfig(),
		VertexBytes:     8,
		EdgeBytes:       16,
		EntityExpansion: 4,
		ParseRate:       200e6,
		RPCRate:         60e6,
	}
}

// Result decomposes a loading run.
type Result struct {
	Fetch, Parse, Shuffle units.Seconds
}

// Total is the end-to-end loading time (phases are sequential).
func (r Result) Total() units.Seconds { return r.Fetch + r.Parse + r.Shuffle }

// DiskBytes returns the on-disk size of the dataset under the model.
func (m Model) DiskBytes(g *graph.Graph) int64 {
	return m.VertexBytes*int64(g.NumVertices()) + m.EdgeBytes*g.NumEdges()
}

// vertexDiskBytes is the on-disk footprint of vertex v with its edges.
func (m Model) vertexDiskBytes(g *graph.Graph, v graph.VertexID) int64 {
	return m.VertexBytes + m.EdgeBytes*int64(g.Degree(v))
}

// blockBytes sums on-disk bytes per block of the assignment.
func (m Model) blockBytes(g *graph.Graph, assign []int32, k int) []int64 {
	out := make([]int64, k)
	for v := 0; v < g.NumVertices(); v++ {
		out[assign[v]] += m.vertexDiskBytes(g, graph.VertexID(v))
	}
	return out
}

// Stream simulates the stream loader: one flow datastore→master with
// the entire dataset, then a single-node parse. As in the paper we
// ignore the streaming partitioner's own compute time.
func (m Model) Stream(g *graph.Graph, k int) (Result, error) {
	c, err := simnet.NewCluster(k, m.Net)
	if err != nil {
		return Result{}, err
	}
	total := m.DiskBytes(g)
	fetch := c.SimulateFlows([]simnet.Flow{{Src: simnet.DatastoreNode, Dst: 0, Bytes: total}})
	parse := units.Seconds(float64(total) / m.ParseRate)
	return Result{Fetch: fetch, Parse: parse}, nil
}

// Hash simulates the hash loader: each worker fetches a contiguous
// 1/k chunk of the file (many block-sized connections, so the fetch
// parallelises), parses it, then shuffles every vertex whose owner
// under `assign` is a different worker. Entity bytes = disk bytes ×
// EntityExpansion; per-node shuffle throughput is additionally capped
// by RPCRate.
func (m Model) Hash(g *graph.Graph, assign []int32, k int) (Result, error) {
	if len(assign) != g.NumVertices() {
		return Result{}, fmt.Errorf("loader: assignment length %d for %d vertices", len(assign), g.NumVertices())
	}
	c, err := simnet.NewCluster(k, m.Net)
	if err != nil {
		return Result{}, err
	}
	n := g.NumVertices()
	per := (n + k - 1) / k
	chunkOf := func(v int) int {
		b := v / per
		if b >= k {
			b = k - 1
		}
		return b
	}
	// Phase 1: parallel chunk fetch.
	chunkBytes := make([]int64, k)
	for v := 0; v < n; v++ {
		chunkBytes[chunkOf(v)] += m.vertexDiskBytes(g, graph.VertexID(v))
	}
	fetchFlows := make([]simnet.Flow, 0, k)
	maxChunk := int64(0)
	for i, b := range chunkBytes {
		fetchFlows = append(fetchFlows, blockFetchFlows(i, b)...)
		if b > maxChunk {
			maxChunk = b
		}
	}
	fetch := c.SimulateFlows(fetchFlows)
	parse := units.Seconds(float64(maxChunk) / m.ParseRate)

	// Phase 2: all-to-all entity shuffle, rate-limited by RPC.
	shuffleNet := m.Net
	if m.RPCRate < shuffleNet.NICBandwidth {
		shuffleNet.NICBandwidth = m.RPCRate
	}
	sc, err := simnet.NewCluster(k, shuffleNet)
	if err != nil {
		return Result{}, err
	}
	matrix := make([][]int64, k)
	for i := range matrix {
		matrix[i] = make([]int64, k)
	}
	for v := 0; v < n; v++ {
		src, dst := chunkOf(v), int(assign[v])
		if src != dst {
			entity := int64(float64(m.vertexDiskBytes(g, graph.VertexID(v))) * m.EntityExpansion)
			matrix[src][dst] += entity
		}
	}
	var shuffleFlows []simnet.Flow
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if matrix[i][j] > 0 {
				shuffleFlows = append(shuffleFlows, simnet.Flow{Src: i, Dst: j, Bytes: matrix[i][j]})
			}
		}
	}
	shuffle := sc.SimulateFlows(shuffleFlows)
	return Result{Fetch: fetch, Parse: parse, Shuffle: shuffle}, nil
}

// Micro simulates the fast-reload loader: worker b fetches exactly the
// bytes of its macro-partition (one connection per micro-partition
// blob, so per-node throughput is bounded by the NIC / aggregate store
// bandwidth, not the per-connection cap), parses in parallel, and
// never shuffles.
func (m Model) Micro(g *graph.Graph, assign []int32, k int) (Result, error) {
	if len(assign) != g.NumVertices() {
		return Result{}, fmt.Errorf("loader: assignment length %d for %d vertices", len(assign), g.NumVertices())
	}
	c, err := simnet.NewCluster(k, m.Net)
	if err != nil {
		return Result{}, err
	}
	blocks := m.blockBytes(g, assign, k)
	var flows []simnet.Flow
	maxBlock := int64(0)
	for b, bytes := range blocks {
		flows = append(flows, blockFetchFlows(b, bytes)...)
		if bytes > maxBlock {
			maxBlock = bytes
		}
	}
	fetch := c.SimulateFlows(flows)
	parse := units.Seconds(float64(maxBlock) / m.ParseRate)
	return Result{Fetch: fetch, Parse: parse}, nil
}

// blockFetchFlows splits a node's fetch into parallel connections so a
// single datastore connection's cap does not throttle a whole node.
// Eight connections per node is enough to saturate a 10 Gb NIC against
// a 250 MB/s per-connection store.
func blockFetchFlows(node int, bytes int64) []simnet.Flow {
	const conns = 8
	if bytes == 0 {
		return nil
	}
	per := bytes / conns
	flows := make([]simnet.Flow, 0, conns)
	rem := bytes
	for i := 0; i < conns && rem > 0; i++ {
		b := per
		if i == conns-1 || b == 0 {
			b = rem
		}
		flows = append(flows, simnet.Flow{Src: simnet.DatastoreNode, Dst: node, Bytes: b})
		rem -= b
	}
	return flows
}
